// Package plum's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one bench per exhibit) and adds ablation
// benches for the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches execute the full paper-scale experiment per iteration, so
// expect seconds per op; the point is regeneration, not micro-timing.
package plum

import (
	"fmt"
	"runtime"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/experiments"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/refine"
	"plum/internal/remap"
	"plum/internal/sfc"
)

// ------------------------------------------------------- paper exhibits

// BenchmarkTable1AdaptionProgression regenerates Table 1: grid-size
// progression through one refinement and one coarsening for the three
// edge-marking strategies.
func BenchmarkTable1AdaptionProgression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable1()
		if len(t.Rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig8AdaptionSpeedup regenerates Figure 8: parallel speedup of
// the refinement and coarsening stages, P = 1…64.
func BenchmarkFig8AdaptionSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig8()
		if len(f.Curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkFig9Anatomy regenerates Figure 9: adaption vs. reassignment vs.
// remapping time, Local_1 and Local_2.
func BenchmarkFig9Anatomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig9()
		if len(f.Curves) != 2 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkFig10MapperComparison regenerates Figure 10: optimal vs.
// heuristic processor assignment, F = 1, 2, 4, 8.
func BenchmarkFig10MapperComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig10()
		if len(f.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig11RemapScaling regenerates Figure 11: remapping time vs.
// number of elements moved.
func BenchmarkFig11RemapScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig11()
		if len(f.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig12SolverImprovement regenerates Figure 12: flow-solver time
// with and without load balancing.
func BenchmarkFig12SolverImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFig12()
		if len(f.Curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkExtensionRepeatedAdaption regenerates the repeated-adaption
// study (the paper's closing conjecture; not a figure in the paper).
func BenchmarkExtensionRepeatedAdaption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := experiments.RunExtensionRepeated(8, 4)
		if e.FinalGain() <= 1 {
			b.Fatal("no gain")
		}
	}
}

// ------------------------------------------------------------ ablations

// BenchmarkAblationPartitioners compares the full partitioner family —
// graph-based and SFC backends — on the standard adapted mesh (Local_2
// refinement) at equal k. ns/op is the wall-time comparison (the SFC
// backends must beat Multilevel here); the "imbalance" metric reports the
// paper's Wmax/Wavg, which all backends keep within the 1.10 operating
// point.
func BenchmarkAblationPartitioners(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)
	for _, meth := range partition.Methods {
		b.Run(meth.String(), func(b *testing.B) {
			var imb float64
			for i := 0; i < b.N; i++ {
				asg := partition.Partition(g, 16, meth)
				if len(asg) != g.N {
					b.Fatal("bad assignment")
				}
				imb = partition.Imbalance(g, asg, 16)
			}
			b.ReportMetric(imb, "imbalance")
		})
	}
}

// BenchmarkSFCIncrementalRepartition isolates the payoff of the cached
// curve order: repartitioning after a weight update (what happens every
// adaption step) is a single O(n) scan plus the FM smoothing pass, versus
// a from-scratch partition for the graph backends.
func BenchmarkSFCIncrementalRepartition(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)
	r := refine.NewBandFM(0)
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		s := partition.NewSFC(g, c)
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				asg := s.Repartition(g, 16)
				r.Refine(g, asg, 16, 2)
				if len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		})
	}
}

// BenchmarkSFCKeys measures raw key throughput of the two curve kernels,
// serial versus the GOMAXPROCS worker pool (identical output either way).
func BenchmarkSFCKeys(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		for _, bw := range benchWorkers() {
			b.Run(fmt.Sprintf("%s/workers=%d", c, bw), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					keys := sfc.KeysWorkers(c, g.Centroid, bw)
					if len(keys) != g.N {
						b.Fatal("bad keys")
					}
				}
			})
		}
	}
}

// benchWorkers returns the worker counts the parallel-pipeline benches
// compare: the serial baseline and the machine's full parallelism (when
// they differ).
func benchWorkers() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// BenchmarkNewSFC is the acceptance benchmark of the parallel SFC
// pipeline: the full from-scratch build — parallel key generation,
// parallel sample sort, parallel weighted cut — on the adapted paper mesh
// at k=16, workers=1 versus workers=GOMAXPROCS. The assignments are
// identical at every worker count; only the wall time may differ.
func BenchmarkNewSFC(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		for _, bw := range benchWorkers() {
			b.Run(fmt.Sprintf("%s/workers=%d", c, bw), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := partition.NewSFCWorkers(g, c, bw)
					asg := s.Repartition(g, 16)
					if len(asg) != g.N {
						b.Fatal("bad assignment")
					}
				}
			})
		}
	}
}

// BenchmarkRepartition isolates the O(n) incremental cut (the operation
// the framework runs after every adaption step), serial versus chunked.
func BenchmarkRepartition(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)
	for _, bw := range benchWorkers() {
		s := partition.NewSFCWorkers(g, sfc.Hilbert, bw)
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				asg := s.Repartition(g, 16)
				if len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		})
	}
}

// BenchmarkAblationDualGraph quantifies the paper's central design choice:
// partitioning the constant initial-mesh dual stays the same price after
// adaption, while partitioning the adapted mesh directly grows with it.
func BenchmarkAblationDualGraph(b *testing.B) {
	adapted := experiments.BaseMesh()
	a := adapt.New(adapted)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()

	b.Run("constant-dual", func(b *testing.B) {
		g := dual.Build(adapted) // level-0 roots only: size fixed forever
		g.UpdateWeights(adapted)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			partition.Partition(g, 16, partition.MethodInertial)
		}
	})
	b.Run("adapted-mesh", func(b *testing.B) {
		g := dual.BuildActive(adapted) // grows with every refinement
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			partition.Partition(g, 16, partition.MethodInertial)
		}
	})
}

// BenchmarkAblationIncidence verifies the paper's data-structure claim:
// the edge→element incidence lists "eliminate extensive searches".
func BenchmarkAblationIncidence(b *testing.B) {
	m := experiments.BaseMesh()
	probe := []mesh.EdgeID{1, 1000, 30000, 70000}
	b.Run("incidence-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, e := range probe {
				n += len(m.Edges[e].Elems)
			}
			if n == 0 {
				b.Fatal("no incident elements")
			}
		}
	})
	b.Run("exhaustive-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, e := range probe {
				for ti := range m.Elems {
					t := &m.Elems[ti]
					if !t.Active() {
						continue
					}
					for _, te := range t.E {
						if te == e {
							n++
							break
						}
					}
				}
			}
			if n == 0 {
				b.Fatal("no incident elements")
			}
		}
	})
}

// BenchmarkAblationMappers isolates the two reassignment algorithms on a
// P=64, F=4 similarity matrix (the Fig. 10 gap, measured on the host).
func BenchmarkAblationMappers(b *testing.B) {
	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)
	const p, f = 64, 4
	oldAsg := partition.Partition(g, p, partition.MethodInertial)
	newPart := partition.Partition(g, p*f, partition.MethodInertial)
	sim := remap.Build(oldAsg, newPart, g.Wremap, p, f)
	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if mp, _ := sim.Heuristic(); len(mp) != p*f {
				b.Fatal("bad mapping")
			}
		}
	})
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if mp, _ := sim.Optimal(); len(mp) != p*f {
				b.Fatal("bad mapping")
			}
		}
	})
}

// ------------------------------------------------------- micro-benches

// BenchmarkRefineLocal2 measures one paper-scale Local_2 refinement.
func BenchmarkRefineLocal2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.BaseMesh()
		a := adapt.New(m)
		a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
		st := a.Refine()
		if st.TotalSubdivided() == 0 {
			b.Fatal("no refinement")
		}
	}
}

// BenchmarkCoarsenFull measures coarsening everything back to the initial
// mesh after a Local_1 refinement.
func BenchmarkCoarsenFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.BaseMesh()
		a := adapt.New(m)
		a.MarkStrategyRefine(adapt.Local1, experiments.Seed)
		a.Refine()
		a.MarkStrategyCoarsen(adapt.Local1, experiments.Seed)
		st := a.Coarsen()
		if st.GroupsRemoved == 0 {
			b.Fatal("no coarsening")
		}
	}
}

// BenchmarkDualBuild measures construction of the paper-scale dual graph.
func BenchmarkDualBuild(b *testing.B) {
	m := experiments.BaseMesh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dual.Build(m)
		if g.N != m.NumActiveElems() {
			b.Fatal("bad dual")
		}
	}
}

// BenchmarkParallelRefineP64 measures the distributed refinement pipeline
// at P=64 including SPL maintenance and propagation accounting.
func BenchmarkParallelRefineP64(b *testing.B) {
	mdl := machine.SP2()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := experiments.BaseMesh()
		g := dual.Build(m)
		asg := partition.Partition(g, 64, partition.MethodInertial)
		b.StartTimer()

		d := par.NewDist(m, 64, asg)
		a := adapt.New(m)
		a.MarkStrategyRefine(adapt.Random, experiments.Seed)
		_, tm := d.ParallelRefine(a, mdl)
		if tm.Total <= 0 {
			b.Fatal("no timing")
		}
	}
}
