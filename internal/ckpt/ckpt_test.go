package ckpt

import (
	"reflect"
	"testing"
)

func state(cycle int, owners []int32, weights []int64) State {
	return State{Cycle: cycle, Streak: cycle % 3, Owners: owners, Weights: weights}
}

func TestRestoreEmpty(t *testing.T) {
	c := New()
	if _, ok := c.Restore(); ok {
		t.Fatal("Restore on an empty checkpoint reported ok")
	}
}

func TestRestoreByteExact(t *testing.T) {
	c := New()
	want := state(4, []int32{0, 1, 2, 1, 0}, []int64{5, 6, 7, 8, 9})
	c.Capture(State{Cycle: want.Cycle, Streak: want.Streak,
		Owners:  append([]int32(nil), want.Owners...),
		Weights: append([]int64(nil), want.Weights...)})
	got, ok := c.Restore()
	if !ok {
		t.Fatal("Restore failed after Capture")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restore mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// A restored slice must be a deep copy: mutating it and re-restoring
// must hand back the original capture.
func TestRestoreIsolation(t *testing.T) {
	c := New()
	c.Capture(state(1, []int32{3, 1, 4}, []int64{1, 5, 9}))
	got, _ := c.Restore()
	got.Owners[0] = 99
	got.Weights[2] = -1
	again, _ := c.Restore()
	if again.Owners[0] != 3 || again.Weights[2] != 9 {
		t.Fatalf("mutating a restored state leaked into the capture: %+v", again)
	}
	// The capture must also not alias the caller's input slices.
	in := state(2, []int32{7, 7, 7}, []int64{2, 2, 2})
	c.Capture(in)
	in.Owners[1] = 0
	in.Weights[1] = 0
	got, _ = c.Restore()
	if got.Owners[1] != 7 || got.Weights[1] != 2 {
		t.Fatalf("capture aliased the input slices: %+v", got)
	}
}

// Re-capturing an identical state must write zero delta words, and a
// capture with k changed entries exactly k.
func TestDeltaAccounting(t *testing.T) {
	c := New()
	owners := []int32{0, 1, 2, 3, 0, 1, 2, 3}
	weights := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	c.Capture(state(0, owners, weights))
	st := c.Stats()
	if st.FullWords != int64(len(owners)+len(weights)) || st.DeltaWords != 0 {
		t.Fatalf("first capture: full=%d delta=%d, want full=%d delta=0",
			st.FullWords, st.DeltaWords, len(owners)+len(weights))
	}
	c.Capture(state(1, owners, weights))
	if got := c.Stats(); got.DeltaWords != 0 || got.FullWords != st.FullWords {
		t.Fatalf("identical re-capture wrote words: %+v", got)
	}
	owners2 := append([]int32(nil), owners...)
	owners2[2] = 9
	owners2[5] = 9
	weights2 := append([]int64(nil), weights...)
	weights2[7] = 100
	c.Capture(state(2, owners2, weights2))
	if got := c.Stats(); got.DeltaWords != 3 || got.FullWords != st.FullWords {
		t.Fatalf("3-entry change: full=%d delta=%d, want full=%d delta=3",
			got.FullWords, got.DeltaWords, st.FullWords)
	}
	got, _ := c.Restore()
	if !reflect.DeepEqual(got.Owners, owners2) || !reflect.DeepEqual(got.Weights, weights2) {
		t.Fatalf("patched restore mismatch: %+v", got)
	}
}

// A length change (adaption grew the mesh) falls back to a full clone
// and restores byte-exact.
func TestLengthChangeClones(t *testing.T) {
	c := New()
	c.Capture(state(0, []int32{0, 1}, []int64{1, 2}))
	full0 := c.Stats().FullWords
	owners := []int32{1, 0, 1, 0}
	weights := []int64{4, 3, 2, 1}
	c.Capture(state(1, owners, weights))
	st := c.Stats()
	if st.FullWords != full0+int64(len(owners)+len(weights)) {
		t.Fatalf("length change did not clone: %+v", st)
	}
	got, _ := c.Restore()
	if !reflect.DeepEqual(got.Owners, owners) || !reflect.DeepEqual(got.Weights, weights) {
		t.Fatalf("restore after length change mismatch: %+v", got)
	}
	if st = c.Stats(); st.Restores != 1 || st.Captures != 2 {
		t.Fatalf("counter mismatch: %+v", st)
	}
}

// Arbitrary capture sequences: the restore always equals the last
// capture exactly, regardless of the patch/clone path taken.
func TestCaptureSequences(t *testing.T) {
	c := New()
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	var want State
	for step := 0; step < 50; step++ {
		n := 1 + next(20)
		owners := make([]int32, n)
		weights := make([]int64, n)
		for i := range owners {
			owners[i] = int32(next(8))
			weights[i] = int64(next(100))
		}
		want = state(step, owners, weights)
		c.Capture(State{Cycle: want.Cycle, Streak: want.Streak,
			Owners:  append([]int32(nil), owners...),
			Weights: append([]int64(nil), weights...)})
		got, ok := c.Restore()
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: restore mismatch:\n got %+v\nwant %+v", step, got, want)
		}
	}
}
