// Package ckpt snapshots the recoverable state of a balance cycle so a
// rank crash mid-remap can be rolled back to a known-good point and
// repaired by a survivor remap. A Checkpoint keeps exactly one capture —
// the state as of the last Capture call — and patches it in place
// against the new state (delta/copy-on-write): a steady cycle whose
// ownership and weights barely move writes only the changed words, so
// checkpointing costs near zero when nothing is going wrong. Restore
// hands back deep copies, so a caller that mutates the restored slices
// never corrupts the capture.
//
// The package is deliberately dumb: no file I/O, no concurrency, no
// knowledge of meshes or ranks. The core framework decides what state is
// recoverable (ownership, element weights, the rollback streak) and when
// to capture it; ckpt only guarantees the restore is byte-exact.
package ckpt

// State is the recoverable snapshot of one balance cycle, taken before
// the cycle starts mutating ownership. Slices are element-indexed and
// owned by the caller at Capture time (copied in) and by the caller
// again at Restore time (copied out).
type State struct {
	// Cycle is the balance cycle the snapshot belongs to.
	Cycle int
	// Streak is the consecutive-rollback streak at capture time.
	Streak int
	// Owners is the element → owning-rank map.
	Owners []int32
	// Weights are the per-element computational weights.
	Weights []int64
}

// Stats counts the checkpoint traffic so the near-zero steady-state cost
// claim is measurable: FullWords are words written by whole-slice clones
// (first capture, or a length change after adaption), DeltaWords words
// written by in-place patching of changed entries only.
type Stats struct {
	Captures   int
	Restores   int
	FullWords  int64
	DeltaWords int64
}

// Checkpoint holds the latest captured State.
type Checkpoint struct {
	have  bool
	state State
	stats Stats
}

// New returns an empty checkpoint.
func New() *Checkpoint { return &Checkpoint{} }

// Capture snapshots s, replacing any earlier capture. The slices are
// copied, never aliased; when the new slices have the lengths of the
// previous capture, only entries that actually changed are written.
func (c *Checkpoint) Capture(s State) {
	c.stats.Captures++
	c.state.Cycle = s.Cycle
	c.state.Streak = s.Streak
	c.state.Owners, c.stats.FullWords, c.stats.DeltaWords =
		patchInt32(c.state.Owners, s.Owners, c.have, c.stats.FullWords, c.stats.DeltaWords)
	c.state.Weights, c.stats.FullWords, c.stats.DeltaWords =
		patchInt64(c.state.Weights, s.Weights, c.have, c.stats.FullWords, c.stats.DeltaWords)
	c.have = true
}

// Restore returns a deep copy of the captured state, or ok=false when
// nothing has been captured yet.
func (c *Checkpoint) Restore() (s State, ok bool) {
	if !c.have {
		return State{}, false
	}
	c.stats.Restores++
	return State{
		Cycle:   c.state.Cycle,
		Streak:  c.state.Streak,
		Owners:  append([]int32(nil), c.state.Owners...),
		Weights: append([]int64(nil), c.state.Weights...),
	}, true
}

// Stats returns the accumulated capture/restore counters.
func (c *Checkpoint) Stats() Stats { return c.stats }

// patchInt32 updates dst to equal src, cloning only when the shape
// changed (or on the first capture) and otherwise writing just the
// entries that differ. It returns the new buffer and updated counters.
func patchInt32(dst, src []int32, have bool, full, delta int64) ([]int32, int64, int64) {
	if !have || len(dst) != len(src) {
		return append(dst[:0:0], src...), full + int64(len(src)), delta
	}
	for i, v := range src {
		if dst[i] != v {
			dst[i] = v
			delta++
		}
	}
	return dst, full, delta
}

// patchInt64 is patchInt32 for 64-bit weight words.
func patchInt64(dst, src []int64, have bool, full, delta int64) ([]int64, int64, int64) {
	if !have || len(dst) != len(src) {
		return append(dst[:0:0], src...), full + int64(len(src)), delta
	}
	for i, v := range src {
		if dst[i] != v {
			dst[i] = v
			delta++
		}
	}
	return dst, full, delta
}
