package dual

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
)

func TestBuildUnitCube(t *testing.T) {
	m := meshgen.UnitCube()
	g := Build(m)
	if g.N != 6 {
		t.Fatalf("N = %d, want 6", g.N)
	}
	// Kuhn cube: the 6 path tets form a cycle around the main diagonal —
	// every tet shares internal faces with exactly 2 others.
	for v := 0; v < g.N; v++ {
		if got := g.Degree(v); got != 2 {
			t.Errorf("dual vertex %d degree = %d, want 2", v, got)
		}
	}
	if g.NumEdges() != 6 {
		t.Errorf("dual edges = %d, want 6", g.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		if g.Wcomp[v] != 1 || g.Wremap[v] != 1 {
			t.Errorf("vertex %d weights (%d,%d), want (1,1)", v, g.Wcomp[v], g.Wremap[v])
		}
	}
}

func TestDualInvariantUnderAdaption(t *testing.T) {
	// The paper's central claim: the dual graph's complexity and
	// connectivity remain constant during adaptive computation.
	m := meshgen.SmallBox()
	g := Build(m)
	n0, e0 := g.N, g.NumEdges()

	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.4}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(m)
	if g.N != n0 || g.NumEdges() != e0 {
		t.Fatalf("dual changed under refinement: (%d,%d) -> (%d,%d)", n0, e0, g.N, g.NumEdges())
	}

	// Rebuilding from the adapted mesh gives the same graph.
	g2 := Build(m)
	if g2.N != n0 || g2.NumEdges() != e0 {
		t.Fatalf("rebuilt dual differs: (%d,%d)", g2.N, g2.NumEdges())
	}

	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen()
	g.UpdateWeights(m)
	if g.N != n0 || g.NumEdges() != e0 {
		t.Fatalf("dual changed under coarsening")
	}
}

func TestWeightsAfterRefinement(t *testing.T) {
	m := meshgen.UnitCube()
	g := Build(m)
	a := adapt.New(m)
	// Fully refine everything once: every root gets 8 leaves, tree of 9.
	a.MarkRegion(geom.All{}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(m)
	for v := 0; v < g.N; v++ {
		if g.Wcomp[v] != 8 {
			t.Errorf("vertex %d Wcomp = %d, want 8 (leaves only)", v, g.Wcomp[v])
		}
		if g.Wremap[v] != 9 {
			t.Errorf("vertex %d Wremap = %d, want 9 (whole tree)", v, g.Wremap[v])
		}
	}
	if g.TotalWcomp() != int64(m.NumActiveElems()) {
		t.Errorf("TotalWcomp %d != active elems %d", g.TotalWcomp(), m.NumActiveElems())
	}
	if g.TotalWremap() != int64(m.NumElemsTotal()) {
		t.Errorf("TotalWremap %d != total elems %d", g.TotalWremap(), m.NumElemsTotal())
	}
}

func TestWeightsAfterCoarsening(t *testing.T) {
	m := meshgen.UnitCube()
	g := Build(m)
	a := adapt.New(m)
	a.MarkRegion(geom.All{}, adapt.MarkRefine)
	a.Refine()
	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen()
	g.UpdateWeights(m)
	for v := 0; v < g.N; v++ {
		if g.Wcomp[v] != 1 || g.Wremap[v] != 1 {
			t.Errorf("vertex %d weights (%d,%d) after full coarsen, want (1,1)", v, g.Wcomp[v], g.Wremap[v])
		}
	}
}

func TestDualAdjacencySymmetric(t *testing.T) {
	m := meshgen.SmallBox()
	g := Build(m)
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 4 {
			t.Fatalf("tet %d has %d face neighbours (max 4)", v, g.Degree(v))
		}
		for _, w := range g.Adj[v] {
			found := false
			for _, x := range g.Adj[w] {
				if x == int32(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", v, w)
			}
		}
	}
}

func TestBoundaryTetsHaveFewerNeighbors(t *testing.T) {
	m := meshgen.SmallBox()
	g := Build(m)
	nBoundary := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) < 4 {
			nBoundary++
		}
	}
	if nBoundary == 0 {
		t.Error("no boundary tets found")
	}
	// Total face count consistency: 4*N = 2*internal + boundary.
	internal := g.NumEdges()
	boundary := 4*g.N - 2*internal
	if boundary != m.NumActiveFaces() {
		t.Errorf("dual implies %d boundary faces, mesh has %d", boundary, m.NumActiveFaces())
	}
}

func TestUpdateWeightsPanicsOnWrongMesh(t *testing.T) {
	m := meshgen.UnitCube()
	g := Build(m)
	other := meshgen.SmallBox()
	defer func() {
		if recover() == nil {
			t.Error("UpdateWeights on mismatched mesh must panic")
		}
	}()
	g.UpdateWeights(other)
}

var _ = mesh.InvalidElem // keep import for doc-reference clarity
