// Package dual implements the dual-graph representation at the heart of
// the paper's load-balancing framework: the tetrahedral elements of the
// *initial* computational mesh are the vertices of the dual graph, and an
// edge exists between two dual vertices when the corresponding elements
// share a face.
//
// The key property (and the paper's central argument) is that the dual
// graph's complexity and connectivity remain constant during the course of
// an adaptive computation: new grids obtained by adaption are translated
// into two weights per dual vertex —
//
//	Wcomp:  the number of leaf elements in the refinement tree (only
//	        leaves participate in the flow computation);
//	Wremap: the total number of elements in the refinement tree (all
//	        descendants move with the root when it is reassigned).
//
// Partitioning and load-balancing times therefore depend only on the
// initial problem size, not on the adapted mesh.
package dual

import (
	"fmt"

	"plum/internal/geom"
	"plum/internal/mesh"
)

// Graph is the weighted dual graph of an initial tetrahedral mesh.
type Graph struct {
	// N is the number of dual vertices (= initial mesh elements).
	N int
	// Adj holds, for each dual vertex, the dual vertices whose elements
	// share a face with it (≤ 4 entries).
	Adj [][]int32
	// Wcomp is the computational weight of each dual vertex.
	Wcomp []int64
	// Wremap is the data-redistribution weight of each dual vertex.
	Wremap []int64
	// EdgeWeight is the uniform runtime-communication weight attached to
	// every dual edge (the paper uses uniform edge weights for its test
	// cases).
	EdgeWeight int64
	// Centroid caches each root element's centroid for geometric
	// (inertial) partitioning.
	Centroid []geom.Vec3
}

// Build constructs the dual graph of m's initial (level-0) elements. It
// must be called on the initial mesh, before or after adaption — level-0
// elements are never removed, so the graph is identical either way.
// Weights are initialized from the current refinement forest (Wcomp =
// Wremap = 1 on an unadapted mesh).
func Build(m *mesh.Mesh) *Graph {
	// Level-0 elements occupy a prefix of the element slab only on a
	// freshly generated mesh, so collect them explicitly.
	var roots []mesh.ElemID
	rootIdx := make(map[mesh.ElemID]int32)
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Level == 0 && !t.Dead {
			rootIdx[mesh.ElemID(i)] = int32(len(roots))
			roots = append(roots, mesh.ElemID(i))
		}
	}
	n := len(roots)
	g := &Graph{
		N:          n,
		Adj:        make([][]int32, n),
		Wcomp:      make([]int64, n),
		Wremap:     make([]int64, n),
		EdgeWeight: 1,
		Centroid:   make([]geom.Vec3, n),
	}

	// Face adjacency via a map from sorted vertex triples to elements.
	type faceKey [3]mesh.VertID
	mk := func(a, b, c mesh.VertID) faceKey {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return faceKey{a, b, c}
	}
	faces := make(map[faceKey]int32, 2*n)
	for i, el := range roots {
		t := &m.Elems[el]
		g.Centroid[i] = m.ElemCentroid(el)
		for _, fv := range mesh.ElemFaceVerts {
			k := mk(t.V[fv[0]], t.V[fv[1]], t.V[fv[2]])
			if j, ok := faces[k]; ok {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], int32(i))
				delete(faces, k)
			} else {
				faces[k] = int32(i)
			}
		}
	}
	g.UpdateWeights(m)
	return g
}

// BuildActive constructs the dual graph of the mesh's current *active*
// elements — what a partitioner would have to process if it worked on the
// adapted mesh directly instead of the constant initial-mesh dual. It
// exists to quantify the paper's central argument (the ablation bench
// BenchmarkAblationDualGraph): this graph grows with every adaption while
// Build's graph does not.
func BuildActive(m *mesh.Mesh) *Graph {
	var actives []mesh.ElemID
	idx := make(map[mesh.ElemID]int32)
	for i := range m.Elems {
		if m.Elems[i].Active() {
			idx[mesh.ElemID(i)] = int32(len(actives))
			actives = append(actives, mesh.ElemID(i))
		}
	}
	n := len(actives)
	g := &Graph{
		N:          n,
		Adj:        make([][]int32, n),
		Wcomp:      make([]int64, n),
		Wremap:     make([]int64, n),
		EdgeWeight: 1,
		Centroid:   make([]geom.Vec3, n),
	}
	type faceKey [3]mesh.VertID
	mk := func(a, b, c mesh.VertID) faceKey {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return faceKey{a, b, c}
	}
	faces := make(map[faceKey]int32, 2*n)
	for i, el := range actives {
		t := &m.Elems[el]
		g.Centroid[i] = m.ElemCentroid(el)
		g.Wcomp[i] = 1
		g.Wremap[i] = 1
		for _, fv := range mesh.ElemFaceVerts {
			k := mk(t.V[fv[0]], t.V[fv[1]], t.V[fv[2]])
			if j, ok := faces[k]; ok {
				g.Adj[i] = append(g.Adj[i], j)
				g.Adj[j] = append(g.Adj[j], int32(i))
				delete(faces, k)
			} else {
				faces[k] = int32(i)
			}
		}
	}
	return g
}

// UpdateWeights recomputes Wcomp and Wremap from the mesh's current
// refinement forest — this is the "translation" of an adapted grid onto
// the constant dual graph. It assumes roots are exactly the level-0
// elements in their original order (as produced by Build).
func (g *Graph) UpdateWeights(m *mesh.Mesh) {
	for i := range g.Wcomp {
		g.Wcomp[i] = 0
		g.Wremap[i] = 0
	}
	idx := make(map[mesh.ElemID]int32, g.N)
	n := int32(0)
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Level == 0 && !t.Dead {
			idx[mesh.ElemID(i)] = n
			n++
		}
	}
	if int(n) != g.N {
		panic(fmt.Sprintf("dual: mesh has %d roots, graph has %d", n, g.N))
	}
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Dead {
			continue
		}
		r := idx[t.Root]
		g.Wremap[r]++
		if t.Active() {
			g.Wcomp[r]++
		}
	}
}

// TotalWcomp returns the sum of computational weights (the number of
// active elements in the mesh).
func (g *Graph) TotalWcomp() int64 {
	var s int64
	for _, w := range g.Wcomp {
		s += w
	}
	return s
}

// TotalWremap returns the sum of redistribution weights.
func (g *Graph) TotalWremap() int64 {
	var s int64
	for _, w := range g.Wremap {
		s += w
	}
	return s
}

// NumEdges returns the number of (undirected) dual edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// Degree returns the degree of dual vertex v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Agglomerate groups dual vertices into superelements of roughly the given
// size by greedy BFS growth, returning a new graph and the mapping from
// original vertices to superelements. The paper suggests this to bound
// partitioning time for extremely large initial meshes.
func (g *Graph) Agglomerate(size int) (*Graph, []int32) {
	if size < 1 {
		size = 1
	}
	group := make([]int32, g.N)
	for i := range group {
		group[i] = -1
	}
	var nGroups int32
	queue := make([]int32, 0, size)
	for s := 0; s < g.N; s++ {
		if group[s] >= 0 {
			continue
		}
		id := nGroups
		nGroups++
		cnt := 0
		queue = append(queue[:0], int32(s))
		group[s] = id
		for len(queue) > 0 && cnt < size {
			v := queue[0]
			queue = queue[1:]
			cnt++
			for _, w := range g.Adj[v] {
				if group[w] < 0 && cnt+len(queue) < size {
					group[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	coarse := &Graph{
		N:          int(nGroups),
		Adj:        make([][]int32, nGroups),
		Wcomp:      make([]int64, nGroups),
		Wremap:     make([]int64, nGroups),
		EdgeWeight: g.EdgeWeight,
		Centroid:   make([]geom.Vec3, nGroups),
	}
	wsum := make([]float64, nGroups)
	seen := make(map[[2]int32]bool)
	for v := 0; v < g.N; v++ {
		gv := group[v]
		coarse.Wcomp[gv] += g.Wcomp[v]
		coarse.Wremap[gv] += g.Wremap[v]
		coarse.Centroid[gv] = coarse.Centroid[gv].Add(g.Centroid[v])
		wsum[gv]++
		for _, w := range g.Adj[v] {
			gw := group[w]
			if gv == gw {
				continue
			}
			a, b := gv, gw
			if a > b {
				a, b = b, a
			}
			if !seen[[2]int32{a, b}] {
				seen[[2]int32{a, b}] = true
				coarse.Adj[a] = append(coarse.Adj[a], b)
				coarse.Adj[b] = append(coarse.Adj[b], a)
			}
		}
	}
	for i := range coarse.Centroid {
		if wsum[i] > 0 {
			coarse.Centroid[i] = coarse.Centroid[i].Scale(1 / wsum[i])
		}
	}
	return coarse, group
}
