package experiments

import (
	"fmt"

	"plum/internal/machine"
)

// The high-P communication sweep: a purely modeled experiment charging one
// remap-shaped flow set through every exchange schedule at processor
// counts far beyond what the mesh experiments run, to expose where the
// message-setup term flips the schedule ranking. The flow set mimics a
// settled SFC repartition at scale: each rank exchanges small element sets
// with its curve neighbors (distance 1/2/3 at 4/2/1 elements) plus
// long-range hypercube partners (rank ^ 2^k, one element each) standing in
// for the stray far moves a remap always has. Everything is charged
// through machine.ChargeFlows — the same code path the real executors
// use — so the table is a statement about the model, not a reimplementation
// of it.

// commProcs and commNodes are the sweep axes: processor count × ranks per
// node. Powers of two keep the hypercube partner set exact.
var (
	commProcs = []int{64, 1024, 16384, 131072}
	commNodes = []int{16, 64}
)

// commFlows builds the canonical src-major flow list for p ranks: SFC
// curve neighbors at distance 1, 2, 3 carrying 4, 2, 1 elements, plus
// hypercube partners src^2^k for k = 4 … log2(p)−1 carrying one element.
// Words per flow follow the remap executor's convention: ElemWords per
// element plus the 1/32 header overhead.
func commFlows(p, elemWords int) []machine.Flow {
	wordsFor := func(elems int64) int64 {
		w := elems * int64(elemWords)
		return w + w/32
	}
	var flows []machine.Flow
	var dsts []int32
	for src := 0; src < p; src++ {
		dsts = dsts[:0]
		for _, nb := range []struct{ d, elems int }{{1, 4}, {2, 2}, {3, 1}} {
			if src+nb.d < p {
				dsts = append(dsts, int32(src+nb.d))
			}
			if src-nb.d >= 0 {
				dsts = append(dsts, int32(src-nb.d))
			}
		}
		for k := 4; 1<<k < p; k++ {
			dsts = append(dsts, int32(src^(1<<k)))
		}
		elems := func(dst int32) int64 {
			switch d := int(dst) - src; {
			case d == 1 || d == -1:
				return 4
			case d == 2 || d == -2:
				return 2
			default:
				return 1
			}
		}
		// Ascending dst within each src keeps the list canonical without a
		// global sort.
		for i := 1; i < len(dsts); i++ {
			for j := i; j > 0 && dsts[j] < dsts[j-1]; j-- {
				dsts[j], dsts[j-1] = dsts[j-1], dsts[j]
			}
		}
		for _, dst := range dsts {
			flows = append(flows, machine.Flow{Src: int32(src), Dst: dst, Words: wordsFor(elems(dst))})
		}
	}
	return flows
}

// CommRow is one (P, ranks-per-node, exchange) cell: the charge breakdown
// of moving the synthetic flow set under that schedule.
type CommRow struct {
	P, RPN   int
	Exchange machine.Exchange
	// Flows is the point-to-point flow count (schedule-independent).
	Flows int
	// Setups is the message count — one setup per message; SetupTime its
	// summed modeled cost, the column the schedules exist to shrink.
	Setups    int64
	SetupTime float64
	// CommTime is the exchange's modeled elapsed time (max over ranks).
	CommTime float64
	// Words is the logical payload; IntraWords/InterWords the wire traffic
	// per link level (hierarchical forwarding stores words twice).
	Words, IntraWords, InterWords int64
}

// CommTable is the high-P communication sweep.
type CommTable struct {
	// Only holds the swept subset when the -exchange / -nodesize flags
	// narrow the axes; empty Exchange string means all three schedules.
	Rows []CommRow
}

// RunCommTable charges the synthetic high-P flow sets through the exchange
// schedules and returns the sweep. exchange narrows the schedule axis to
// one name ("" sweeps all three); nodesize narrows the ranks-per-node axis
// (0 sweeps the defaults). The table is purely modeled — no mesh, no
// goroutines — and byte-identical across runs and worker counts.
func RunCommTable(exchange string, nodesize int) *CommTable {
	var schedules []machine.Exchange
	if exchange == "" {
		schedules = []machine.Exchange{machine.ExchangeFlat, machine.ExchangeAggregated, machine.ExchangeHierarchical}
	} else {
		x, err := machine.ExchangeByName(exchange)
		if err != nil {
			panic(err)
		}
		schedules = []machine.Exchange{x}
	}
	rpns := commNodes
	if nodesize > 0 {
		rpns = []int{nodesize}
	}
	out := &CommTable{}
	for _, p := range commProcs {
		mdl := machine.SP2()
		flows := commFlows(p, mdl.ElemWords)
		for _, rpn := range rpns {
			mdl.Topo = machine.NodeTopology(rpn)
			for _, x := range schedules {
				clk := machine.NewClock(p)
				ch := mdl.ChargeFlows(clk, x, flows)
				clk.Barrier()
				out.Rows = append(out.Rows, CommRow{
					P: p, RPN: rpn, Exchange: x,
					Flows:  len(flows),
					Setups: ch.Msgs, SetupTime: ch.SetupTime,
					CommTime: clk.Elapsed(),
					Words:    ch.Words, IntraWords: ch.IntraWords, InterWords: ch.InterWords,
				})
			}
		}
	}
	return out
}

// String renders the sweep with the per-(P, node) setup-time winner
// marked. The output is byte-stable: CI diffs it across GOMAXPROCS and
// worker counts.
func (t *CommTable) String() string {
	tb := newTable(
		"High-P remap exchange sweep: modeled charges of an SFC-neighbor + hypercube flow set",
		"(SP2 interconnect, intra-node 5µs setup / 0.05µs word; setups is the message count)")
	tb.row("P", "node", "exchange", "flows", "setups", "setup (s)", "comm (s)", "words", "intra wds", "inter wds", "")
	for i := 0; i < len(t.Rows); {
		j := i
		best := i
		for j < len(t.Rows) && t.Rows[j].P == t.Rows[i].P && t.Rows[j].RPN == t.Rows[i].RPN {
			if t.Rows[j].SetupTime < t.Rows[best].SetupTime {
				best = j
			}
			j++
		}
		for k := i; k < j; k++ {
			r := t.Rows[k]
			mark := ""
			if k == best && j-i > 1 {
				mark = " <- min setup"
			}
			tb.row(r.P, r.RPN, r.Exchange.String(), r.Flows, r.Setups,
				fmt.Sprintf("%.4g", r.SetupTime), fmt.Sprintf("%.4g", r.CommTime),
				r.Words, r.IntraWords, r.InterWords, mark)
		}
		i = j
	}
	return tb.String()
}
