package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestFaultTableClaims verifies the sweep's robustness story and its
// determinism contract: zero-rate rows are all-committed with zero retry
// traffic, faulted rows with budget recover or degrade gracefully (never
// a third state), a generous budget beats a zero budget, and the whole
// table — every outcome, counter, and modeled float — is byte-identical
// at workers 1 and 4 and across repeated runs.
func TestFaultTableClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep (CI pins the sweep's determinism race-enabled via cmd/experiments)")
	}
	const seed = 7
	tb := RunFaultTable(seed, 1)
	cell := map[[2]int]FaultRow{}
	for _, r := range tb.Rows {
		cell[[2]int{int(r.Rate * 100), r.Budget}] = r
	}

	var sawRecovered, sawDegraded bool
	for _, r := range tb.Rows {
		committed, retried, rolledBack, degraded := r.outcomeCounts()
		if committed+retried+rolledBack+degraded != faultCycles {
			t.Fatalf("rate %.2f budget %d: unclassified cycles: %+v", r.Rate, r.Budget, r.Outcomes)
		}
		if r.Rate == 0 {
			if committed != faultCycles || r.MsgRetries != 0 || r.AdaptRetries != 0 || r.RetryTime != 0 {
				t.Errorf("zero-rate row left a retry trace: %+v", r)
			}
			continue
		}
		if retried == faultCycles && r.MsgRetries > 0 {
			sawRecovered = true
		}
		if degraded > 0 {
			sawDegraded = true
			if rolledBack == 0 {
				t.Errorf("rate %.2f budget %d: degraded without a first rollback: %+v",
					r.Rate, r.Budget, r.Outcomes)
			}
		}
	}
	if !sawRecovered {
		t.Error("no cell recovered through retries")
	}
	if !sawDegraded {
		t.Error("no cell degraded — the sweep axes no longer stress the budget")
	}

	// A bigger budget never does worse than none at the same rate: the
	// final imbalance of the budget-3 cell is at most the budget-0 one's.
	for _, rate := range faultRates {
		if rate == 0 {
			continue
		}
		none, some := cell[[2]int{int(rate * 100), 0}], cell[[2]int{int(rate * 100), 3}]
		if some.FinalImbalance > none.FinalImbalance {
			t.Errorf("rate %.2f: budget 3 ends worse than budget 0: %.3f vs %.3f",
				rate, some.FinalImbalance, none.FinalImbalance)
		}
	}

	// Worker parity and run-to-run determinism, rendered string included.
	w4 := RunFaultTable(seed, 4)
	if !reflect.DeepEqual(tb.Rows, w4.Rows) {
		t.Errorf("fault table not worker-invariant:\n got %+v\nwant %+v", w4.Rows, tb.Rows)
	}
	again := RunFaultTable(seed, 1)
	if tb.String() != again.String() {
		t.Error("two identical sweeps rendered differently")
	}

	// A different seed draws a different schedule.
	other := RunFaultTable(seed+35, 1)
	if reflect.DeepEqual(tb.Rows, other.Rows) {
		t.Error("two fault seeds produced identical sweeps")
	}

	if !strings.Contains(tb.String(), "DEGRADED") {
		t.Error("rendered table hides the degraded cells")
	}
}
