package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table renders one experiment table — title lines, then a header row
// and data rows through a single right-aligned tabwriter — so every
// -exp table shares one layout engine and the text and JSON outputs
// share the same row structs (the runners return the structs; String
// feeds them here, the -json twin marshals them directly).
type table struct {
	b strings.Builder
	w *tabwriter.Writer
}

// newTable starts a table with the given title lines.
func newTable(titles ...string) *table {
	t := &table{}
	for _, s := range titles {
		t.b.WriteString(s)
		t.b.WriteByte('\n')
	}
	t.w = tabwriter.NewWriter(&t.b, 4, 0, 2, ' ', tabwriter.AlignRight)
	return t
}

// row appends one row. Cells are rendered with fmt.Sprint; pass
// fmt.Sprintf results where a specific precision matters.
func (t *table) row(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	fmt.Fprintln(t.w, strings.Join(parts, "\t")+"\t")
}

// String flushes the writer and returns the rendered table. Purely a
// function of the appended rows, so repeated renders are byte-stable.
func (t *table) String() string {
	t.w.Flush()
	return t.b.String()
}
