package experiments

import (
	"fmt"
	"math"
	"time"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/partition"
	"plum/internal/refine"
)

// PartitionerRow is one backend's quality/cost measurement on the
// adapted paper-scale dual graph.
type PartitionerRow struct {
	Method partition.Method
	// PartitionSeconds is the wall time of one from-scratch partition.
	PartitionSeconds float64
	// IncrementalSeconds is the wall time of a repartition reusing the
	// cached curve order (SFC backends only; 0 for graph partitioners,
	// which have no incremental path).
	IncrementalSeconds float64
	// Ops is the backend's abstract op accounting — the figure charged to
	// the remap acceptance rule. Nonzero for every backend.
	Ops partition.Ops
	// Imbalance is the paper's load-imbalance factor Wmax/Wavg.
	Imbalance float64
	// EdgeCut is the number of dual edges crossing partition boundaries.
	EdgeCut int64
}

// PartitionerTable compares every partitioner backend at equal k on the
// standard adapted mesh (Local_2-refined rotor): the partitioner-family
// table the paper's "pluggable black box" framing implies but never
// prints. It is the experiment behind the SFC claim: curve-based cuts
// reach spectral-class balance at a fraction of the cost, and repartition
// incrementally in O(n).
type PartitionerTable struct {
	K       int
	Refiner string
	Rows    []PartitionerRow
}

// RunPartitionerTable measures all backends on the Local_2-adapted paper
// mesh, partitioning into k parts (k < 1 is treated as 1) with the given
// worker knob for the parallel SFC and refinement phases (≤ 0 =
// GOMAXPROCS). A named refinement backend is forced on every
// partitioner; "" leaves each backend its own default (refine.Default —
// band-FM when the graph and knob would run it parallel, classic FM
// otherwise and always inside Multilevel).
func RunPartitionerTable(k, workers int, refiner string) *PartitionerTable {
	if k < 1 {
		k = 1
	}
	m := BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, Seed)
	a.Refine()
	g.UpdateWeights(m)

	// "" leaves every backend its own default refiner; a concrete name is
	// forced on all of them. The incremental exhibit refines with the SFC
	// path's adaptive default unless a name was forced.
	var forced refine.Refiner
	label := "auto"
	if refiner != "" {
		if r, ok := refine.ByName(refiner, workers); ok {
			forced = r
			label = r.Name()
		}
	}
	incR := forced
	if incR == nil {
		incR = refine.Default(g.N, workers)
	}
	opt := partition.Options{Workers: workers, Refiner: forced}
	out := &PartitionerTable{K: k, Refiner: label}
	for _, meth := range partition.Methods {
		row := PartitionerRow{Method: meth}
		var asg partition.Assignment
		row.PartitionSeconds = minTime(func() {
			asg, row.Ops = partition.PartitionCounted(g, k, meth, opt)
		})
		row.Imbalance = partition.Imbalance(g, asg, k)
		row.EdgeCut = partition.EdgeCut(g, asg)

		if c, ok := meth.Curve(); ok {
			s := partition.NewSFCWorkers(g, c, workers)
			row.IncrementalSeconds = minTime(func() {
				inc := s.Repartition(g, k)
				incR.Refine(g, inc, k, 2)
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// minTime returns the best of up to three timings of f — enough to shrug
// off a scheduler preemption or GC pause for the millisecond-scale
// backends, without tripling the cost of the second-scale eigen-solvers
// (one sample of those is already stable).
func minTime(f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
		if best > 0.25 {
			break
		}
	}
	return best
}

// Row returns the row of the given method.
func (t *PartitionerTable) Row(m partition.Method) PartitionerRow {
	for _, r := range t.Rows {
		if r.Method == m {
			return r
		}
	}
	return PartitionerRow{}
}

// String renders the comparison table. The ops columns are the abstract
// work the framework charges to the remap acceptance rule: total over all
// workers and the critical-path share (equal for the serial graph
// backends).
func (t *PartitionerTable) String() string {
	tb := newTable(fmt.Sprintf("Partitioner backends on the Local_2-adapted mesh, k=%d, refiner=%s (host wall time)", t.K, t.Refiner))
	tb.row("method", "t_part (s)", "t_incr (s)", "ops", "crit ops", "refine crit", "Wmax/Wavg", "edge cut")
	for _, r := range t.Rows {
		inc := "-"
		if r.IncrementalSeconds > 0 {
			inc = fmt.Sprintf("%.6f", r.IncrementalSeconds)
		}
		tb.row(r.Method, fmt.Sprintf("%.6f", r.PartitionSeconds), inc,
			r.Ops.Total, r.Ops.Crit, r.Ops.MemCrit, fmt.Sprintf("%.4f", r.Imbalance), r.EdgeCut)
	}
	return tb.String()
}
