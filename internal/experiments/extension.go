package experiments

import (
	"fmt"
	"math"
	"strings"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// ExtensionPoint is one cycle of the repeated-adaption extension run.
type ExtensionPoint struct {
	Cycle int
	// Elems is the mesh size after the cycle's adaption.
	Elems int
	// ImbBalanced and ImbUnbalanced are the post-cycle Wmax/Wavg with and
	// without the load balancer.
	ImbBalanced, ImbUnbalanced float64
	// CumBalanced and CumUnbalanced accumulate modeled solver seconds.
	CumBalanced, CumUnbalanced float64
}

// Extension holds the repeated-adaption study: the paper closes with the
// conjecture that "with multiple mesh adaptions, the gains realized with
// load balancing may be even more significant" — Fig. 12 measures a single
// refinement step only. This experiment moves a refinement front across
// the domain for several cycles and accumulates solver time with and
// without the balancer.
type Extension struct {
	P      int
	Points []ExtensionPoint
}

// RunExtensionRepeated runs the repeated-adaption study on P processors: a
// spherical feature sweeps through a box mesh; each cycle refines around
// the feature and coarsens everything it left behind. The balanced run
// repartitions/remap per the framework rules; the unbalanced run keeps the
// initial partitions forever.
func RunExtensionRepeated(p, cycles int) *Extension {
	mkFW := func(threshold float64) (*core.Framework, *geom.Sphere) {
		m := meshgen.Box(12, 12, 12, geom.Vec3{X: 3, Y: 1, Z: 1})
		cfg := core.DefaultConfig(p)
		cfg.ImbalanceThreshold = threshold
		fw, err := core.New(m, nil, cfg)
		if err != nil {
			panic(err)
		}
		return fw, &geom.Sphere{Center: geom.Vec3{X: 0.25, Y: 0.5, Z: 0.5}, Radius: 0.45}
	}
	balanced, sB := mkFW(1.2)
	unbalanced, sU := mkFW(math.Inf(1)) // never repartitions

	out := &Extension{P: p}
	var cumB, cumU float64
	for c := 1; c <= cycles; c++ {
		step := func(fw *core.Framework, sp *geom.Sphere) (float64, int) {
			// Coarsen the wake, refine around the new front position.
			fw.A.MarkRegion(geom.AABB{
				Min: geom.Vec3{},
				Max: geom.Vec3{X: sp.Center.X - 0.4, Y: 1, Z: 1},
			}, adapt.MarkCoarsen)
			fw.A.Coarsen()
			rep, err := fw.Cycle(func(a *adapt.Adaptor) {
				a.MarkRegion(*sp, adapt.MarkRefine)
			})
			if err != nil {
				panic(err)
			}
			sp.Center.X += 2.0 / float64(cycles)
			imb, _ := fw.Evaluate()
			_ = rep
			return imb, fw.M.NumActiveElems()
		}
		imbB, elems := step(balanced, sB)
		imbU, _ := step(unbalanced, sU)

		// Solver time until the next adaption, at the post-cycle loads.
		cumB += balanced.Cfg.Cost.SolverTime(maxLoad(balanced))
		cumU += unbalanced.Cfg.Cost.SolverTime(maxLoad(unbalanced))
		out.Points = append(out.Points, ExtensionPoint{
			Cycle: c, Elems: elems,
			ImbBalanced: imbB, ImbUnbalanced: imbU,
			CumBalanced: cumB, CumUnbalanced: cumU,
		})
	}
	return out
}

func maxLoad(fw *core.Framework) int64 {
	var m int64
	for _, l := range fw.Loads() {
		if l > m {
			m = l
		}
	}
	return m
}

// FinalGain returns the cumulative solver-time ratio after the last cycle.
func (e *Extension) FinalGain() float64 {
	last := e.Points[len(e.Points)-1]
	if last.CumBalanced == 0 {
		return 1
	}
	return last.CumUnbalanced / last.CumBalanced
}

// String renders the study.
func (e *Extension) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: repeated adaption with a moving front (P=%d)\n", e.P)
	fmt.Fprintf(&b, "%6s%9s%14s%14s%16s%16s%10s\n",
		"cycle", "elems", "imb(bal)", "imb(unbal)", "cum bal (s)", "cum unbal (s)", "gain")
	for _, pt := range e.Points {
		gain := 1.0
		if pt.CumBalanced > 0 {
			gain = pt.CumUnbalanced / pt.CumBalanced
		}
		fmt.Fprintf(&b, "%6d%9d%14.2f%14.2f%16.4g%16.4g%10.2f\n",
			pt.Cycle, pt.Elems, pt.ImbBalanced, pt.ImbUnbalanced,
			pt.CumBalanced, pt.CumUnbalanced, gain)
	}
	return b.String()
}
