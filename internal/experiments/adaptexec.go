package experiments

import (
	"fmt"
	"time"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/propagate"
)

// AdaptExecRow is one processor count's adaption-phase anatomy.
type AdaptExecRow struct {
	P int
	// Rounds, Visits, and Marked summarize the propagation engine's
	// fixpoint; Msgs and Words its traffic under the chosen backend plus
	// the classification round.
	Rounds         int
	Visits, Marked int64
	Msgs, Words    int64
	// Ops is the pass's abstract work accounting (par.PredictAdaptOps of
	// the executed quantities).
	Ops propagate.Ops
	// Target/Propagate/Execute/Classify/Total decompose the modeled SP2
	// adaption time.
	Target, Propagate, Execute, Classify, Total float64
	// HostSeconds is the real wall time of the ParallelRefine call on
	// this host at the table's worker knob (single shot: the pass
	// mutates the mesh, so it cannot be repeated on the same fixture).
	HostSeconds float64
}

// AdaptExecTable is the adaption anatomy the paper's Fig. 8 folds into a
// single speedup number: the per-P cost of the marking, propagation,
// subdivision, and classification phases, measured over the chunked
// propagation engine at a configurable worker knob and backend.
type AdaptExecTable struct {
	Workers    int
	Propagator string
	Rows       []AdaptExecRow
}

// RunAdaptTable refines the paper mesh with the Local_2 strategy under
// the given propagation backend ("" = bulksync) for a range of processor
// counts, reporting the execution anatomy at the given worker knob (≤ 0 =
// GOMAXPROCS). Each row rebuilds the mesh: the pass mutates it.
func RunAdaptTable(workers int, propagator string) *AdaptExecTable {
	mdl := machine.SP2()
	prop, ok := propagate.ByName(propagator, workers)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown propagator %q", propagator))
	}
	out := &AdaptExecTable{Workers: workers, Propagator: prop.Name()}
	for _, p := range ProcCounts {
		m := BaseMesh()
		g := dual.Build(m)
		d := par.NewDist(m, p, partition.Partition(g, p, partition.MethodInertial))
		d.Workers = workers
		d.Prop = prop
		a := adapt.New(m)
		a.MarkStrategyRefine(adapt.Local2, Seed)

		t0 := time.Now()
		_, tm := d.ParallelRefine(a, mdl)
		host := time.Since(t0).Seconds()

		out.Rows = append(out.Rows, AdaptExecRow{
			P:      p,
			Rounds: tm.CommRounds, Visits: tm.Visits, Marked: tm.Marked,
			Msgs: tm.Msgs, Words: tm.Words,
			Ops:    tm.Ops,
			Target: tm.Target, Propagate: tm.Propagate,
			Execute: tm.Execute, Classify: tm.Classify, Total: tm.Total,
			HostSeconds: host,
		})
	}
	return out
}

// String renders the anatomy table.
func (t *AdaptExecTable) String() string {
	tb := newTable(fmt.Sprintf("Adaption anatomy, Local_2 refinement (SP2 model, propagator=%s, workers=%d)",
		t.Propagator, t.Workers))
	tb.row("P", "rounds", "visits", "marked", "msgs", "words", "ops", "crit ops",
		"target (s)", "prop (s)", "exec (s)", "class (s)", "total (s)", "host (s)")
	for _, r := range t.Rows {
		tb.row(r.P, r.Rounds, r.Visits, r.Marked, r.Msgs, r.Words,
			r.Ops.Total, r.Ops.Crit,
			fmt.Sprintf("%.4g", r.Target), fmt.Sprintf("%.4g", r.Propagate),
			fmt.Sprintf("%.4g", r.Execute), fmt.Sprintf("%.4g", r.Classify),
			fmt.Sprintf("%.4g", r.Total), fmt.Sprintf("%.6f", r.HostSeconds))
	}
	return tb.String()
}
