package experiments

import (
	"testing"

	"plum/internal/machine"
)

// TestCommTableOrderingAndCrossover is the PR's acceptance figure: at
// P ≥ 16384 the combined schedules beat flat on modeled setup time, with
// hierarchical < aggregated < flat wherever the node size is large enough
// — and the aggregated↔hierarchical crossover is visible in the sweep
// (each schedule wins at least one cell).
func TestCommTableOrderingAndCrossover(t *testing.T) {
	tab := RunCommTable("", 0)
	setup := map[[3]int]float64{}
	words := map[[2]int]int64{}
	for _, r := range tab.Rows {
		setup[[3]int{r.P, r.RPN, int(r.Exchange)}] = r.SetupTime
		key := [2]int{r.P, r.RPN}
		if w, seen := words[key]; seen && w != r.Words {
			t.Fatalf("P=%d rpn=%d: logical words differ across schedules", r.P, r.RPN)
		}
		words[key] = r.Words
	}
	aggBeats, hierBeats := 0, 0
	for key := range words {
		p, rpn := key[0], key[1]
		flat := setup[[3]int{p, rpn, int(machine.ExchangeFlat)}]
		agg := setup[[3]int{p, rpn, int(machine.ExchangeAggregated)}]
		hier := setup[[3]int{p, rpn, int(machine.ExchangeHierarchical)}]
		if p >= 16384 {
			if !(agg < flat && hier < flat) {
				t.Errorf("P=%d rpn=%d: combined schedules not below flat: agg %g hier %g flat %g",
					p, rpn, agg, hier, flat)
			}
		}
		if agg < hier {
			aggBeats++
		}
		if hier < agg {
			hierBeats++
		}
	}
	if aggBeats == 0 || hierBeats == 0 {
		t.Errorf("no aggregated↔hierarchical crossover in the sweep: agg wins %d cells, hier wins %d",
			aggBeats, hierBeats)
	}
	// The canonical crossover pair at the top of the sweep: at P=131072
	// hierarchical wins the big-node machine, aggregated the small-node one.
	if h, a := setup[[3]int{131072, 64, int(machine.ExchangeHierarchical)}],
		setup[[3]int{131072, 64, int(machine.ExchangeAggregated)}]; !(h < a) {
		t.Errorf("P=131072 rpn=64: hierarchical %g not below aggregated %g", h, a)
	}
	if h, a := setup[[3]int{131072, 16, int(machine.ExchangeHierarchical)}],
		setup[[3]int{131072, 16, int(machine.ExchangeAggregated)}]; !(a < h) {
		t.Errorf("P=131072 rpn=16: aggregated %g not below hierarchical %g", a, h)
	}
}

// TestCommTableDeterministic: the rendered table is the unit CI diffs
// byte-for-byte across GOMAXPROCS settings, so two runs must render
// identically.
func TestCommTableDeterministic(t *testing.T) {
	a := RunCommTable("", 0).String()
	b := RunCommTable("", 0).String()
	if a != b {
		t.Fatal("comm table not byte-stable across runs")
	}
	if len(a) == 0 {
		t.Fatal("empty table")
	}
}

// TestCommTableNarrowing checks the -exchange / -nodesize axes.
func TestCommTableNarrowing(t *testing.T) {
	tab := RunCommTable("aggregated", 32)
	if len(tab.Rows) != len(commProcs) {
		t.Fatalf("narrowed sweep has %d rows, want %d", len(tab.Rows), len(commProcs))
	}
	for _, r := range tab.Rows {
		if r.Exchange != machine.ExchangeAggregated || r.RPN != 32 {
			t.Fatalf("narrowed sweep leaked row %+v", r)
		}
	}
}
