package experiments

import (
	"fmt"
	"strings"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// faultRates and faultBudgets are the sweep axes: fault probability per
// message attempt × scalar recovery budget (fault.Budget — b extra send
// attempts per message, b window re-executions).
var (
	faultRates   = []float64{0, 0.05, 0.2, 0.5}
	faultBudgets = []int{0, 1, 3}
)

// faultCycles is the number of balance cycles each cell runs.
const faultCycles = 3

// FaultRow is one (rate, budget) cell of the fault sweep: the outcome of
// every cycle plus the accumulated recovery traffic.
type FaultRow struct {
	Rate   float64
	Budget int
	// Outcomes is each cycle's conclusion, in order.
	Outcomes []core.BalanceOutcome
	// MsgRetries and RetryWords are the remap transport's summed retry
	// traffic; WindowRetries the re-executed remap windows.
	MsgRetries, RetryWords int64
	WindowRetries          int
	// AdaptRetries and AdaptBackoff are the modeled retry traffic of the
	// adaption notification exchanges (extra sends / backoff units).
	AdaptRetries, AdaptBackoff int64
	// RetryTime is the summed modeled remap retry time; FinalImbalance
	// the imbalance after the last cycle — the price of degradation.
	RetryTime      float64
	FinalImbalance float64
}

// outcomeCounts tallies the row's outcomes by kind.
func (r *FaultRow) outcomeCounts() (committed, retried, rolledBack, degraded int) {
	for _, o := range r.Outcomes {
		switch o {
		case core.OutcomeCommitted:
			committed++
		case core.OutcomeRetriedCommitted:
			retried++
		case core.OutcomeRolledBack:
			rolledBack++
		case core.OutcomeDegraded:
			degraded++
		}
	}
	return
}

// FaultTable is the fault-tolerance anatomy: how the balance cycles
// conclude — committed, retried, rolled back, degraded — as the fault
// rate and the recovery budget vary, with the recovery traffic and its
// modeled cost. Deterministic for a given seed at every worker count.
type FaultTable struct {
	Seed    int64
	P       int
	Workers int
	Rows    []FaultRow
}

// RunFaultTable sweeps fault rate × recovery budget over a corner-refined
// box workload (P=8, three overlapped balance cycles per cell, streaming
// remap) under the given fault seed. Every figure in the table is
// byte-identical at every worker count and across repeated runs — the
// fault schedule is a pure function of (seed, cycle, stage, src, dst,
// attempt).
func RunFaultTable(seed int64, workers int) *FaultTable {
	const p = 8
	out := &FaultTable{Seed: seed, P: p, Workers: workers}
	for _, rate := range faultRates {
		for _, budget := range faultBudgets {
			cfg := core.DefaultConfig(p)
			cfg.Workers = workers
			cfg.Overlap = true // stream the remap: windows are the commit unit
			cfg.Faults = &fault.Plan{Seed: seed, Rate: rate}
			cfg.Retry = fault.Budget(budget)
			applyObs(&cfg)
			f, err := core.New(meshgen.Box(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1}), nil, cfg)
			if err != nil {
				panic(err)
			}
			row := FaultRow{Rate: rate, Budget: budget}
			radius := 0.7
			for c := 0; c < faultCycles; c++ {
				r := radius
				rep, err := f.Cycle(func(a *adapt.Adaptor) {
					a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
				})
				if err != nil {
					panic(err)
				}
				radius *= 0.8
				row.Outcomes = append(row.Outcomes, rep.Outcome)
				row.MsgRetries += rep.Balance.Remap.Retries
				row.RetryWords += rep.Balance.Remap.RetryWords
				row.WindowRetries += rep.Balance.Remap.WindowRetries
				row.AdaptRetries += rep.AdaptTime.Retries
				row.AdaptBackoff += rep.AdaptTime.Backoff
				row.RetryTime += rep.Balance.Remap.RetryTime
				row.FinalImbalance = rep.Balance.ImbalanceAfter
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// shortOutcome compresses an outcome for the table's per-cycle column.
func shortOutcome(o core.BalanceOutcome) string {
	switch o {
	case core.OutcomeCommitted:
		return "ok"
	case core.OutcomeRetriedCommitted:
		return "retried"
	case core.OutcomeRecovered:
		return "RECOVERED"
	case core.OutcomeRolledBack:
		return "rollback"
	case core.OutcomeDegraded:
		return "DEGRADED"
	}
	return o.String()
}

// String renders the sweep.
func (t *FaultTable) String() string {
	tb := newTable(fmt.Sprintf("Fault-tolerant balance cycles: outcome sweep (seed %d, P=%d, %d cycles/cell, streaming remap)",
		t.Seed, t.P, faultCycles))
	tb.row("rate", "budget", "outcomes", "msg rty", "rty wds", "win rty",
		"ad rty", "ad bkf", "rty t (s)", "imb")
	for _, r := range t.Rows {
		names := make([]string, len(r.Outcomes))
		for i, o := range r.Outcomes {
			names[i] = shortOutcome(o)
		}
		tb.row(fmt.Sprintf("%.2f", r.Rate), r.Budget, strings.Join(names, ","),
			r.MsgRetries, r.RetryWords, r.WindowRetries, r.AdaptRetries, r.AdaptBackoff,
			fmt.Sprintf("%.3g", r.RetryTime), fmt.Sprintf("%.2f", r.FinalImbalance))
	}
	return tb.String()
}
