// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each Run* function executes the corresponding
// experiment at the paper's scale (the ≈61k-element rotor mesh) on the SP2
// machine model and returns both structured data and a formatted table.
//
// The absolute numbers depend on the synthetic mesh and the model
// calibration; the claims under reproduction are the *shapes*: who wins,
// by roughly what factor, and where the curves bend (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/meshgen"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/remap"
)

// Seed fixes all randomized components of the experiments.
const Seed = 12345

// ProcCounts is the processor axis of the paper's figures.
var ProcCounts = []int{1, 2, 4, 8, 16, 32, 64}

// baseMesh caches the paper-scale mesh; experiments clone it.
var (
	baseOnce sync.Once
	base     *mesh.Mesh
)

// BaseMesh returns a clone of the paper-scale rotor mesh (generated once).
func BaseMesh() *mesh.Mesh {
	baseOnce.Do(func() { base = meshgen.PaperMesh() })
	return base.Clone()
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one strategy's grid-size progression.
type Table1Row struct {
	Strategy                      adapt.Strategy
	InitElems, InitEdges          int
	RefinedElems, RefinedEdges    int
	CoarsenedElems, CoarsenedEdge int
}

// Table1 holds the progression of grid sizes through refinement and
// coarsening for the three edge-marking strategies.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table 1.
func RunTable1() *Table1 {
	t := &Table1{}
	for _, s := range adapt.Strategies {
		m := BaseMesh()
		a := adapt.New(m)
		row := Table1Row{Strategy: s, InitElems: m.NumActiveElems(), InitEdges: m.NumActiveEdges()}
		a.MarkStrategyRefine(s, Seed)
		a.Refine()
		row.RefinedElems, row.RefinedEdges = m.NumActiveElems(), m.NumActiveEdges()
		a.MarkStrategyCoarsen(s, Seed)
		a.Coarsen()
		row.CoarsenedElems, row.CoarsenedEdge = m.NumActiveElems(), m.NumActiveEdges()
		t.Rows = append(t.Rows, row)
	}
	return t
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Progression of grid sizes through refinement and coarsening\n")
	fmt.Fprintf(&b, "%-18s", "")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%12s %-10s", r.Strategy, "")
	}
	fmt.Fprintf(&b, "\n%-18s", "")
	for range t.Rows {
		fmt.Fprintf(&b, "%12s %10s", "Elements", "Edges")
	}
	b.WriteByte('\n')
	line := func(name string, f func(Table1Row) (int, int)) {
		fmt.Fprintf(&b, "%-18s", name)
		for _, r := range t.Rows {
			e, d := f(r)
			fmt.Fprintf(&b, "%12d %10d", e, d)
		}
		b.WriteByte('\n')
	}
	line("Initial Mesh", func(r Table1Row) (int, int) { return r.InitElems, r.InitEdges })
	line("After Refinement", func(r Table1Row) (int, int) { return r.RefinedElems, r.RefinedEdges })
	line("After Coarsening", func(r Table1Row) (int, int) { return r.CoarsenedElems, r.CoarsenedEdge })
	return b.String()
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Point is one (strategy, P) speedup measurement.
type Fig8Point struct {
	P                  int
	Refine, Coarsen    float64 // modeled seconds
	SpeedupR, SpeedupC float64
}

// Fig8 holds the parallel mesh-adaption speedup curves.
type Fig8 struct {
	Curves map[adapt.Strategy][]Fig8Point
}

// RunFig8 reproduces Figure 8 (speedup of the refinement and coarsening
// stages for the three strategies).
func RunFig8() *Fig8 {
	mdl := machine.SP2()
	f := &Fig8{Curves: map[adapt.Strategy][]Fig8Point{}}
	for _, s := range adapt.Strategies {
		var t1R, t1C float64
		for _, p := range ProcCounts {
			m := BaseMesh()
			g := dual.Build(m)
			asg := partition.Partition(g, p, partition.MethodInertial)
			d := par.NewDist(m, p, asg)
			a := adapt.New(m)

			a.MarkStrategyRefine(s, Seed)
			_, tmR := d.ParallelRefine(a, mdl)

			a.MarkStrategyCoarsen(s, Seed)
			_, tmC := d.ParallelCoarsen(a, mdl)

			pt := Fig8Point{P: p, Refine: tmR.Total, Coarsen: tmC.Total}
			if p == 1 {
				t1R, t1C = tmR.Total, tmC.Total
			}
			pt.SpeedupR = t1R / tmR.Total
			pt.SpeedupC = t1C / tmC.Total
			f.Curves[s] = append(f.Curves[s], pt)
		}
	}
	return f
}

// String renders both panels as text tables. The panels are a fixed-order
// slice, not a map: ranging over a map literal rendered (a) and (b) in
// random order run to run, so the report was not byte-stable.
func (f *Fig8) String() string {
	var b strings.Builder
	panels := []struct {
		name string
		sel  func(Fig8Point) float64
	}{
		{"(a) refinement", func(p Fig8Point) float64 { return p.SpeedupR }},
		{"(b) coarsening", func(p Fig8Point) float64 { return p.SpeedupC }},
	}
	for _, panel := range panels {
		sel := panel.sel
		fmt.Fprintf(&b, "Fig 8%s: speedup of parallel mesh adaption\n", panel.name)
		fmt.Fprintf(&b, "%6s", "P")
		for _, s := range adapt.Strategies {
			fmt.Fprintf(&b, "%12s", s)
		}
		b.WriteByte('\n')
		for i := range f.Curves[adapt.Local1] {
			fmt.Fprintf(&b, "%6d", f.Curves[adapt.Local1][i].P)
			for _, s := range adapt.Strategies {
				fmt.Fprintf(&b, "%12.2f", sel(f.Curves[s][i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 9

// Fig9Point decomposes one P's execution time.
type Fig9Point struct {
	P                         int
	Adaption, Reassign, Remap float64
}

// Fig9 holds the anatomy of total execution times for the Local_1 and
// Local_2 refinement strategies.
type Fig9 struct {
	Curves map[adapt.Strategy][]Fig9Point
}

// RunFig9 reproduces Figure 9 (execution-time anatomy, F = 1, heuristic
// mapper).
func RunFig9() *Fig9 {
	mdl := machine.SP2()
	f := &Fig9{Curves: map[adapt.Strategy][]Fig9Point{}}
	for _, s := range []adapt.Strategy{adapt.Local1, adapt.Local2} {
		for _, p := range ProcCounts {
			if p == 1 {
				continue
			}
			pt := runBalancePipeline(s, p, 1, false, mdl)
			f.Curves[s] = append(f.Curves[s], Fig9Point{
				P: p, Adaption: pt.AdaptTime, Reassign: pt.ReassignTime, Remap: pt.RemapTime,
			})
		}
	}
	return f
}

// String renders both panels.
func (f *Fig9) String() string {
	var b strings.Builder
	for _, s := range []adapt.Strategy{adapt.Local1, adapt.Local2} {
		fmt.Fprintf(&b, "Fig 9 (%s): anatomy of execution time (seconds, SP2 model)\n", s)
		fmt.Fprintf(&b, "%6s%14s%14s%14s\n", "P", "adaption", "remapping", "reassignment")
		for _, pt := range f.Curves[s] {
			fmt.Fprintf(&b, "%6d%14.4g%14.4g%14.4g\n", pt.P, pt.Adaption, pt.Remap, pt.Reassign)
		}
	}
	return b.String()
}

// pipelineResult carries the measurements shared by Figs. 9-12.
type pipelineResult struct {
	AdaptTime    float64
	ReassignTime float64
	ReassignOps  int64
	RemapTime    float64
	Moved        int64
	Sets         int
	Objective    int64
	WmaxOld      int64
	WmaxNew      int64
}

// runBalancePipeline refines with strategy s on P processors, then
// repartitions into P·F parts, reassigns with the chosen mapper, and
// executes the remap, returning all measurements.
func runBalancePipeline(s adapt.Strategy, p, fgran int, optimal bool, mdl machine.Model) pipelineResult {
	m := BaseMesh()
	g := dual.Build(m)
	asg := partition.Partition(g, p, partition.MethodInertial)
	d := par.NewDist(m, p, asg)
	a := adapt.New(m)
	a.MarkStrategyRefine(s, Seed)
	_, tm := d.ParallelRefine(a, mdl)
	g.UpdateWeights(m)

	var res pipelineResult
	res.AdaptTime = tm.Total
	loads := make([]int64, p)
	for v, o := range d.Owners() {
		loads[o] += g.Wcomp[v]
	}
	res.WmaxOld = slices.Max(loads)

	newPart := partition.Partition(g, p*fgran, partition.MethodInertial)
	sim := remap.Build(d.Owners(), newPart, g.Wremap, p, fgran)
	var mp remap.Mapping
	if optimal {
		mp, res.Objective = sim.Optimal()
	} else {
		mp, res.Objective = sim.Heuristic()
	}
	res.ReassignOps = sim.LastOps
	res.ReassignTime = float64(sim.LastOps) * mdl.MemOp
	res.Moved, res.Sets = sim.MoveStats(mp)

	newLoads := make([]int64, p)
	for v, part := range newPart {
		newLoads[mp[part]] += g.Wcomp[v]
	}
	res.WmaxNew = slices.Max(newLoads)

	newOwner := make([]int32, len(newPart))
	for v, part := range newPart {
		newOwner[v] = mp[part]
	}
	rr, err := d.ExecuteRemap(newOwner, mdl)
	if err != nil {
		panic(err)
	}
	res.RemapTime = rr.Total
	return res
}

// ---------------------------------------------------------------- Fig. 10

// Fig10Point is one (P, F) mapper comparison.
type Fig10Point struct {
	P, F                         int
	HeuristicTime, OptimalTime   float64
	HeuristicMoved, OptimalMoved int64
	HeuristicObj, OptimalObj     int64
}

// Fig10 compares the optimal and heuristic mappers (Local_2 refinement).
type Fig10 struct {
	Points []Fig10Point
}

// Fgrans is the granularity axis of Figs. 10 and 11.
var Fgrans = []int{1, 2, 4, 8}

// RunFig10 reproduces Figure 10: execution time and data movement of the
// two mappers for F = 1, 2, 4, 8. The refined mesh and its dual weights do
// not depend on P or F, so they are computed once.
func RunFig10() *Fig10 {
	mdl := machine.SP2()
	m := BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, Seed)
	a.Refine()
	g.UpdateWeights(m)

	out := &Fig10{}
	for _, p := range ProcCounts {
		if p == 1 {
			continue
		}
		oldAsg := initialOwners(g, p)
		for _, fg := range Fgrans {
			newPart := partition.Partition(g, p*fg, partition.MethodInertial)
			sim := remap.Build(oldAsg, newPart, g.Wremap, p, fg)
			pt := Fig10Point{P: p, F: fg}

			mpH, objH := sim.Heuristic()
			pt.HeuristicObj = objH
			pt.HeuristicTime = float64(sim.LastOps) * mdl.MemOp
			pt.HeuristicMoved, _ = sim.MoveStats(mpH)

			mpO, objO := sim.Optimal()
			pt.OptimalObj = objO
			pt.OptimalTime = float64(sim.LastOps) * mdl.MemOp
			pt.OptimalMoved, _ = sim.MoveStats(mpO)

			out.Points = append(out.Points, pt)
		}
	}
	return out
}

// initialOwners computes the pre-adaption balanced ownership: a P-way
// partition of the dual graph with unit weights (the state before the
// refinement unbalanced it).
func initialOwners(g *dual.Graph, p int) []int32 {
	uniform := &dual.Graph{
		N: g.N, Adj: g.Adj, EdgeWeight: g.EdgeWeight, Centroid: g.Centroid,
		Wcomp:  make([]int64, g.N),
		Wremap: make([]int64, g.N),
	}
	for i := range uniform.Wcomp {
		uniform.Wcomp[i] = 1
		uniform.Wremap[i] = 1
	}
	return partition.Partition(uniform, p, partition.MethodInertial)
}

// String renders both panels.
func (f *Fig10) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: optimal vs heuristic mapper (Local_2), SP2 model\n")
	fmt.Fprintf(&b, "%6s%4s%16s%16s%16s%16s%12s\n", "P", "F",
		"t_heur (s)", "t_opt (s)", "moved_heur", "moved_opt", "obj ratio")
	for _, pt := range f.Points {
		ratio := float64(pt.HeuristicObj) / float64(pt.OptimalObj)
		fmt.Fprintf(&b, "%6d%4d%16.4g%16.4g%16d%16d%12.4f\n",
			pt.P, pt.F, pt.HeuristicTime, pt.OptimalTime, pt.HeuristicMoved, pt.OptimalMoved, ratio)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 11

// Fig11Point is one (P, F) remapping execution.
type Fig11Point struct {
	P, F      int
	Moved     int64
	RemapTime float64
}

// Fig11 holds remapping time vs elements moved (points swept by F).
type Fig11 struct {
	Points []Fig11Point
}

// RunFig11 reproduces Figure 11 for the Local_2 refinement strategy.
func RunFig11() *Fig11 {
	mdl := machine.SP2()
	out := &Fig11{}
	for _, p := range []int{4, 8, 16, 32, 64} {
		for _, fg := range Fgrans {
			res := runBalancePipeline(adapt.Local2, p, fg, false, mdl)
			out.Points = append(out.Points, Fig11Point{P: p, F: fg, Moved: res.Moved, RemapTime: res.RemapTime})
		}
	}
	return out
}

// String renders the point cloud.
func (f *Fig11) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: remapping time vs elements moved (Local_2)\n")
	fmt.Fprintf(&b, "%6s%4s%14s%14s\n", "P", "F", "moved", "t_remap (s)")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%6d%4d%14d%14.4g\n", pt.P, pt.F, pt.Moved, pt.RemapTime)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 12

// Fig12Point is one (strategy, P) solver-improvement measurement.
type Fig12Point struct {
	P           int
	Improvement float64
	Bound       float64
}

// Fig12 holds the flow-solver execution-time improvement from load
// balancing.
type Fig12 struct {
	Curves map[adapt.Strategy][]Fig12Point
}

// RunFig12 reproduces Figure 12: the ratio of solver time on unbalanced
// vs balanced partitions after one refinement, per strategy, with the
// theoretical bound 8P/(P+7).
func RunFig12() *Fig12 {
	mdl := machine.SP2()
	f := &Fig12{Curves: map[adapt.Strategy][]Fig12Point{}}
	for _, s := range adapt.Strategies {
		for _, p := range ProcCounts {
			if p == 1 {
				continue
			}
			res := runBalancePipeline(s, p, 1, false, mdl)
			f.Curves[s] = append(f.Curves[s], Fig12Point{
				P:           p,
				Improvement: float64(res.WmaxOld) / float64(res.WmaxNew),
				Bound:       8 * float64(p) / (float64(p) + 7),
			})
		}
	}
	return f
}

// String renders the figure.
func (f *Fig12) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12: flow-solver time improvement with load balancing\n")
	fmt.Fprintf(&b, "%6s", "P")
	for _, s := range adapt.Strategies {
		fmt.Fprintf(&b, "%12s", s)
	}
	fmt.Fprintf(&b, "%12s\n", "bound")
	for i := range f.Curves[adapt.Local1] {
		fmt.Fprintf(&b, "%6d", f.Curves[adapt.Local1][i].P)
		for _, s := range adapt.Strategies {
			fmt.Fprintf(&b, "%12.2f", f.Curves[s][i].Improvement)
		}
		fmt.Fprintf(&b, "%12.2f\n", f.Curves[adapt.Local1][i].Bound)
	}
	return b.String()
}
