package experiments

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/refine"
	"plum/internal/remap"
	"plum/internal/sfc"
)

// RemapExecRow is one processor count's remap-execution anatomy.
type RemapExecRow struct {
	P int
	// Moved and Sets are the cost model's C and N; WordsMoved the modeled
	// wire volume.
	Moved      int64
	Sets       int
	WordsMoved int64
	// Ops is the scatter/pack/unpack accounting (par.PredictRemapOps of
	// the executed quantities).
	Ops par.Ops
	// PackTime/CommTime/RebuildTime/Total decompose the modeled SP2
	// remapping overhead.
	PackTime, CommTime, RebuildTime, Total float64
	// HostSeconds is the real wall time of one ExecuteRemap call on this
	// host at the table's worker knob (best of three).
	HostSeconds float64
}

// RemapExecTable is the remap-execution anatomy the paper's Fig. 9 folds
// into a single "remapping" bar: the per-P cost of actually moving the
// element sets once the mapper has decided where they go, measured over
// the parallel CSR flow scatter at a configurable worker knob.
type RemapExecTable struct {
	Workers int
	Rows    []RemapExecRow
}

// RunRemapExecTable runs the Local_2 balance pipeline on the paper mesh
// and executes the accepted remap for a range of processor counts,
// reporting the execution anatomy at the given worker knob (≤ 0 =
// GOMAXPROCS). The adapted mesh is shared across rows (ExecuteRemap
// mutates only the ownership map, which each row rebuilds).
func RunRemapExecTable(workers int) *RemapExecTable {
	mdl := machine.SP2()
	m := BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, Seed)
	a.Refine()
	g.UpdateWeights(m)

	out := &RemapExecTable{Workers: workers}
	for _, p := range ProcCounts {
		if p < 4 {
			continue // too few flows to be interesting
		}
		asg := partition.Partition(g, p, partition.MethodInertial)
		d := par.NewDist(m, p, asg)
		d.Workers = workers

		s := partition.NewSFCWorkers(g, sfc.Hilbert, workers)
		newPart := s.Repartition(g, p)
		refine.Default(g.N, workers).Refine(g, newPart, p, 2)
		sim := remap.Build(d.Owners(), newPart, g.Wremap, p, 1)
		mp, _ := sim.Heuristic()
		newOwner := make([]int32, len(newPart))
		for v, part := range newPart {
			newOwner[v] = mp[part]
		}

		row := RemapExecRow{P: p}
		orig := d.Owners()
		var res par.RemapResult
		row.HostSeconds = minTime(func() {
			d.SetOwners(orig)
			var err error
			res, err = d.ExecuteRemap(newOwner, mdl)
			if err != nil {
				panic(err)
			}
		})
		row.Moved, row.Sets, row.WordsMoved = res.Moved, res.Sets, res.WordsMoved
		row.Ops = res.Ops
		row.PackTime, row.CommTime, row.RebuildTime, row.Total =
			res.PackTime, res.CommTime, res.RebuildTime, res.Total
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the anatomy table.
func (t *RemapExecTable) String() string {
	tb := newTable(fmt.Sprintf("Remap execution anatomy on the Local_2-adapted mesh (SP2 model, workers=%d)", t.Workers))
	tb.row("P", "moved", "sets", "words", "ops", "crit ops",
		"pack (s)", "comm (s)", "rebuild (s)", "total (s)", "host (s)")
	for _, r := range t.Rows {
		tb.row(r.P, r.Moved, r.Sets, r.WordsMoved, r.Ops.Total, r.Ops.Crit,
			fmt.Sprintf("%.4g", r.PackTime), fmt.Sprintf("%.4g", r.CommTime),
			fmt.Sprintf("%.4g", r.RebuildTime), fmt.Sprintf("%.4g", r.Total),
			fmt.Sprintf("%.6f", r.HostSeconds))
	}
	return tb.String()
}
