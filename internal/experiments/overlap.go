package experiments

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/par"
	"plum/internal/partition"
)

// OverlapRow is one (P, workers) cycle's overlap anatomy.
type OverlapRow struct {
	P, Workers int
	// Solver is the modeled time of the cycle's solver iterations — the
	// window the balance pipeline may hide behind.
	Solver float64
	// Pipeline is the CPU-side balance critical path (repartition +
	// reassignment + remap execution); Redist the wire redistribution
	// (C·M·Tlat + N·Tsetup), which stays exposed.
	Pipeline, Redist float64
	// CritBulk and CritOverlap are the cycle's modeled critical path with
	// the strict barrier chain (solver + full cost) and with overlap
	// (solver + exposed cost); Hidden is the portion of Pipeline hidden
	// behind the solve, Speedup the ratio CritBulk/CritOverlap.
	CritBulk, CritOverlap, Hidden, Speedup float64
	// PeakWords is the streaming executor's payload high-water mark;
	// TotalWords the bulk executor's whole-buffer footprint for the same
	// migration (Moved × par.RecordWords).
	PeakWords, TotalWords int64
	// Accepted reports whether the cycle's remap was executed.
	Accepted bool
}

// OverlapTable is the overlapped-cycle anatomy: how much of the balance
// pipeline the solver iterations hide and how far the streaming remap
// executor cuts the payload footprint, on the Local_2-adapted paper mesh
// with the incremental Hilbert repartitioner. The modeled figures are
// identical at every worker count (the determinism contract), so the
// workers axis demonstrates invariance rather than scaling.
type OverlapTable struct {
	Rows []OverlapRow
}

// overlapWorkerAxis is the worker sweep when no explicit knob is given.
var overlapWorkerAxis = []int{1, 4}

// RunOverlapTable runs one overlapped cycle (Hilbert repartitioner,
// Local_2 refinement, Config.Overlap on) per processor count and worker
// knob and reports the overlap anatomy. workers > 0 pins a single worker
// count; ≤ 0 sweeps the default axis.
func RunOverlapTable(workers int) *OverlapTable {
	axis := overlapWorkerAxis
	if workers > 0 {
		axis = []int{workers}
	}
	out := &OverlapTable{}
	for _, p := range ProcCounts {
		if p < 8 {
			continue // too little imbalance to repartition
		}
		for _, w := range axis {
			cfg := core.DefaultConfig(p)
			cfg.Method = partition.MethodHilbertSFC
			cfg.Workers = w
			cfg.Overlap = true
			applyObs(&cfg)
			f, err := core.New(BaseMesh(), nil, cfg)
			if err != nil {
				panic(err)
			}
			rep, err := f.Cycle(func(a *adapt.Adaptor) {
				a.MarkStrategyRefine(adapt.Local2, Seed)
			})
			if err != nil {
				panic(err)
			}
			b := rep.Balance
			row := OverlapRow{
				P: p, Workers: w,
				Solver:   rep.SolverTime,
				Pipeline: b.RepartitionTime + b.ReassignTime + b.RemapExecTime,
				Accepted: b.Accepted,
			}
			row.Redist = b.CostFull - row.Pipeline
			row.CritBulk = rep.SolverTime + b.CostFull
			row.CritOverlap = rep.SolverTime + b.Cost
			row.Hidden = b.OverlapTime
			if row.CritOverlap > 0 {
				row.Speedup = row.CritBulk / row.CritOverlap
			}
			row.PeakWords = b.RemapPeakWords
			row.TotalWords = b.Remap.Moved * par.RecordWords
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// String renders the anatomy table.
func (t *OverlapTable) String() string {
	tb := newTable("Overlapped cycle anatomy on the Local_2-adapted mesh (Hilbert repartitioner, SP2 model)")
	tb.row("P", "wk", "solver (s)", "pipe (s)", "redist (s)",
		"crit bulk", "crit ovlp", "hidden (s)", "speedup", "peak wds", "total wds")
	for _, r := range t.Rows {
		tb.row(r.P, r.Workers,
			fmt.Sprintf("%.4g", r.Solver), fmt.Sprintf("%.4g", r.Pipeline), fmt.Sprintf("%.4g", r.Redist),
			fmt.Sprintf("%.4g", r.CritBulk), fmt.Sprintf("%.4g", r.CritOverlap), fmt.Sprintf("%.4g", r.Hidden),
			fmt.Sprintf("%.3f", r.Speedup), r.PeakWords, r.TotalWords)
	}
	return tb.String()
}
