package experiments

import "testing"

// TestExtensionRepeatedAdaption verifies the paper's closing conjecture:
// "With repeated adaption, the gains realized with load balancing may be
// even more significant" than the single-step Fig. 12 measurement.
func TestExtensionRepeatedAdaption(t *testing.T) {
	e := RunExtensionRepeated(8, 4)
	if len(e.Points) != 4 {
		t.Fatalf("got %d points", len(e.Points))
	}
	first := e.Points[0]
	firstGain := first.CumUnbalanced / first.CumBalanced
	finalGain := e.FinalGain()
	if finalGain <= 1.05 {
		t.Fatalf("no cumulative benefit: %.2f", finalGain)
	}
	if finalGain < firstGain {
		t.Errorf("gain did not compound: first %.2f, final %.2f", firstGain, finalGain)
	}
	// The balancer must hold imbalance near 1 while the unbalanced run
	// drifts.
	for _, pt := range e.Points {
		if pt.ImbBalanced > 1.25 {
			t.Errorf("cycle %d: balanced imbalance %.2f exceeds threshold region", pt.Cycle, pt.ImbBalanced)
		}
	}
	last := e.Points[len(e.Points)-1]
	if last.ImbUnbalanced < 1.5 {
		t.Errorf("unbalanced run unexpectedly balanced: %.2f", last.ImbUnbalanced)
	}
	if e.String() == "" {
		t.Error("empty rendering")
	}
}
