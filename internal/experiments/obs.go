package experiments

import (
	"plum/internal/core"
	"plum/internal/obs"
)

// obsTrace and obsReg are the observability sinks SetObs installs; the
// cycle-driving runners attach them to every framework they build.
var (
	obsTrace *obs.Trace
	obsReg   *obs.Registry
)

// SetObs attaches a trace and a metrics registry to the cycle-driving
// runners (RunFaultTable, RunRecoverTable, RunOverlapTable): every
// framework they construct records its per-stage spans and counters
// there, so cmd/experiments can export one combined trace of a whole
// sweep. Either may be nil; pass both nil to detach. Not safe while a
// runner is in flight.
func SetObs(tr *obs.Trace, reg *obs.Registry) { obsTrace, obsReg = tr, reg }

// applyObs attaches the installed sinks to one framework config.
func applyObs(cfg *core.Config) { cfg.Trace, cfg.Metrics = obsTrace, obsReg }
