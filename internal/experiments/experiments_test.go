package experiments

import (
	"strings"
	"testing"

	"plum/internal/adapt"
	"plum/internal/partition"
)

// These tests verify the paper's headline claims on the regenerated
// experiments (shape, not absolute numbers — see EXPERIMENTS.md).

func TestTable1Claims(t *testing.T) {
	tb := RunTable1()
	rows := map[adapt.Strategy]Table1Row{}
	for _, r := range tb.Rows {
		rows[r.Strategy] = r
	}
	l1, l2, rnd := rows[adapt.Local1], rows[adapt.Local2], rows[adapt.Random]

	// Initial mesh at paper scale.
	if l1.InitElems < 58000 || l1.InitElems > 64000 {
		t.Errorf("initial elements %d not at paper scale (60,968)", l1.InitElems)
	}
	// Local_1 refines ≈35% more elements and coarsening restores exactly.
	growth1 := float64(l1.RefinedElems) / float64(l1.InitElems)
	if growth1 < 1.2 || growth1 > 1.6 {
		t.Errorf("Local_1 growth %.2f, paper 1.35", growth1)
	}
	if l1.CoarsenedElems != l1.InitElems || l1.CoarsenedEdge != l1.InitEdges {
		t.Errorf("Local_1 coarsening did not restore the initial mesh: %+v", l1)
	}
	// Local_2 refines ≈3.3× and coarsens to ≈half.
	growth2 := float64(l2.RefinedElems) / float64(l2.InitElems)
	if growth2 < 2.8 || growth2 > 4.2 {
		t.Errorf("Local_2 growth %.2f, paper 3.3", growth2)
	}
	shrink2 := float64(l2.CoarsenedElems) / float64(l2.RefinedElems)
	if shrink2 < 0.4 || shrink2 > 0.7 {
		t.Errorf("Local_2 coarsening ratio %.2f, paper ≈0.5", shrink2)
	}
	// Random is tuned to approximately match Local_2's sizes.
	if ratio := float64(rnd.RefinedElems) / float64(l2.RefinedElems); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("Random refined size off Local_2's by %.2f×", ratio)
	}
	if ratio := float64(rnd.CoarsenedElems) / float64(l2.CoarsenedElems); ratio < 0.7 || ratio > 1.35 {
		t.Errorf("Random coarsened size off Local_2's by %.2f×", ratio)
	}
	if !strings.Contains(tb.String(), "After Refinement") {
		t.Error("table rendering broken")
	}
}

func TestFig8Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	f := RunFig8()
	last := func(s adapt.Strategy) Fig8Point {
		c := f.Curves[s]
		return c[len(c)-1]
	}
	r, l2, l1 := last(adapt.Random), last(adapt.Local2), last(adapt.Local1)
	// Paper: 35.5× at P=64 for Random; ordering Random ≥ Local_2 > Local_1.
	if r.SpeedupR < 20 {
		t.Errorf("Random speedup %.1f at P=64, paper 35.5", r.SpeedupR)
	}
	if !(r.SpeedupR >= l2.SpeedupR && l2.SpeedupR > l1.SpeedupR) {
		t.Errorf("speedup ordering broken: R=%.1f L2=%.1f L1=%.1f", r.SpeedupR, l2.SpeedupR, l1.SpeedupR)
	}
	// Coarsening improves markedly over refinement for Local_1 (the
	// paper's observation that coarsening rebalances it).
	if l1.SpeedupC <= l1.SpeedupR*0.9 {
		t.Errorf("Local_1 coarsening speedup %.1f not better than refinement %.1f", l1.SpeedupC, l1.SpeedupR)
	}
	// Monotone-ish speedups: P=64 beats P=8 for every strategy.
	for s, c := range f.Curves {
		if c[len(c)-1].SpeedupR < c[3].SpeedupR {
			t.Errorf("%v refinement speedup regresses from P=8 to P=64", s)
		}
	}
	if !strings.Contains(f.String(), "refinement") {
		t.Error("fig8 rendering broken")
	}
}

func TestFig9Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	f := RunFig9()
	for s, curve := range f.Curves {
		// Reassignment grows with P but stays negligible vs adaption +
		// remapping even at P=64 (the paper's claim).
		lastPt := curve[len(curve)-1]
		if lastPt.Reassign > 0.1*(lastPt.Adaption+lastPt.Remap) {
			t.Errorf("%v: reassignment %.4g not negligible at P=64", s, lastPt.Reassign)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Reassign < curve[i-1].Reassign {
				t.Errorf("%v: reassignment time not increasing with P", s)
				break
			}
		}
		// Remapping first rises then falls: max not at the last point.
		maxIdx := 0
		for i, pt := range curve {
			if pt.Remap > curve[maxIdx].Remap {
				maxIdx = i
			}
		}
		if maxIdx == len(curve)-1 {
			t.Errorf("%v: remapping time still rising at P=64 (no turnover)", s)
		}
		// Adaption time decreases with more processors end-to-end.
		if curve[len(curve)-1].Adaption >= curve[0].Adaption {
			t.Errorf("%v: adaption time did not fall from P=2 to P=64", s)
		}
	}
}

func TestFig10Claims(t *testing.T) {
	f := RunFig10()
	var worstObj = 1.0
	for _, pt := range f.Points {
		// Heuristic objective within a few percent of optimal (paper: <3%).
		ratio := float64(pt.HeuristicObj) / float64(pt.OptimalObj)
		if ratio < worstObj {
			worstObj = ratio
		}
		if pt.OptimalObj < pt.HeuristicObj {
			t.Fatalf("P=%d F=%d: optimal objective below heuristic", pt.P, pt.F)
		}
	}
	if worstObj < 0.94 {
		t.Errorf("heuristic objective as low as %.3f of optimal (paper: ≥0.97)", worstObj)
	}
	// Optimal costs ≈2 orders of magnitude more time at the large end.
	big := f.Points[len(f.Points)-1] // P=64, F=8
	if big.OptimalTime < 20*big.HeuristicTime {
		t.Errorf("optimal/heuristic time ratio %.1f at P=64 F=8, paper ≈100",
			big.OptimalTime/big.HeuristicTime)
	}
	// Data movement decreases with growing F at P=64.
	var lastMoved int64 = 1 << 62
	for _, pt := range f.Points {
		if pt.P != 64 {
			continue
		}
		if pt.HeuristicMoved > lastMoved {
			t.Errorf("P=64: moved volume rose from F=%d to F=%d", pt.F/2, pt.F)
		}
		lastMoved = pt.HeuristicMoved
	}
}

func TestFig11Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	f := RunFig11()
	// Strong correlation per P: within one P, more elements moved means
	// more remap time.
	byP := map[int][]Fig11Point{}
	for _, pt := range f.Points {
		byP[pt.P] = append(byP[pt.P], pt)
	}
	for p, pts := range byP {
		for i := range pts {
			for j := range pts {
				if pts[i].Moved < pts[j].Moved && pts[i].RemapTime > 1.35*pts[j].RemapTime {
					t.Errorf("P=%d: moving fewer elements (%d vs %d) cost far more time (%.4g vs %.4g)",
						p, pts[i].Moved, pts[j].Moved, pts[i].RemapTime, pts[j].RemapTime)
				}
			}
		}
	}
}

func TestFig12Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep")
	}
	f := RunFig12()
	last := func(s adapt.Strategy) Fig12Point {
		c := f.Curves[s]
		return c[len(c)-1]
	}
	l1, l2, rnd := last(adapt.Local1), last(adapt.Local2), last(adapt.Random)
	// Local_1 benefits most, Random only marginally.
	if !(l1.Improvement > l2.Improvement && l2.Improvement > rnd.Improvement) {
		t.Errorf("improvement ordering broken: L1=%.2f L2=%.2f R=%.2f",
			l1.Improvement, l2.Improvement, rnd.Improvement)
	}
	if l1.Improvement < 2 {
		t.Errorf("Local_1 improvement %.2f at P=64, paper ≈6", l1.Improvement)
	}
	if rnd.Improvement > 1.6 {
		t.Errorf("Random improvement %.2f should be marginal", rnd.Improvement)
	}
	// No improvement may beat the analytic bound by more than rounding.
	for s, curve := range f.Curves {
		for _, pt := range curve {
			if pt.Improvement > pt.Bound*1.05 {
				t.Errorf("%v P=%d: improvement %.2f exceeds bound %.2f", s, pt.P, pt.Improvement, pt.Bound)
			}
		}
	}
}

func TestPartitionerTableClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale comparison (runs the Lanczos backends)")
	}
	tb := RunPartitionerTable(16, 0, "")
	if len(tb.Rows) != len(partition.Methods) {
		t.Fatalf("table has %d rows, want %d", len(tb.Rows), len(partition.Methods))
	}
	for _, r := range tb.Rows {
		// Honest cost accounting: every backend — graph and SFC alike —
		// must report nonzero ops for the remap acceptance rule, and the
		// critical path can never exceed the total.
		if r.Ops.Total <= 0 || r.Ops.Crit <= 0 {
			t.Errorf("%v reports zero partitioning cost: %+v", r.Method, r.Ops)
		}
		if r.Ops.Crit > r.Ops.Total {
			t.Errorf("%v critical path %d exceeds total %d", r.Method, r.Ops.Crit, r.Ops.Total)
		}
	}
	ml := tb.Row(partition.MethodMultilevel)
	for _, m := range []partition.Method{partition.MethodMortonSFC, partition.MethodHilbertSFC} {
		r := tb.Row(m)
		// The acceptance bar: SFC beats the Chaco-style multilevel scheme
		// on wall time at equal k while staying inside the paper's
		// operating imbalance of 1.10.
		if r.PartitionSeconds >= ml.PartitionSeconds {
			t.Errorf("%v partition %.4fs not faster than multilevel %.4fs",
				m, r.PartitionSeconds, ml.PartitionSeconds)
		}
		if r.Imbalance > 1.10 {
			t.Errorf("%v imbalance %.4f > 1.10", m, r.Imbalance)
		}
		// The incremental path must not cost more than the full build
		// (it skips key generation and the sort).
		if r.IncrementalSeconds <= 0 || r.IncrementalSeconds > r.PartitionSeconds {
			t.Errorf("%v incremental repartition %.6fs vs full %.6fs",
				m, r.IncrementalSeconds, r.PartitionSeconds)
		}
		// Curve cuts trade some edge cut for speed, but must stay in the
		// same league as the graph partitioners (compactness of the curve).
		if r.EdgeCut > 3*ml.EdgeCut {
			t.Errorf("%v edge cut %d vs multilevel %d: locality lost", m, r.EdgeCut, ml.EdgeCut)
		}
	}
	if !strings.Contains(tb.String(), "multilevel") {
		t.Error("table rendering broken")
	}
}

func TestRemapExecTableClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale remap anatomy")
	}
	tb := RunRemapExecTable(0)
	if len(tb.Rows) < 3 {
		t.Fatalf("table has %d rows", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r.Moved <= 0 || r.Sets <= 0 || r.WordsMoved < r.Moved*50 {
			t.Errorf("P=%d: degenerate remap %+v", r.P, r)
		}
		if r.Ops.Total <= 0 || r.Ops.Crit <= 0 || r.Ops.Crit > r.Ops.Total {
			t.Errorf("P=%d: bad ops accounting %+v", r.P, r.Ops)
		}
		if r.Total <= 0 || r.Total < r.PackTime {
			t.Errorf("P=%d: inconsistent modeled times %+v", r.P, r)
		}
		if r.HostSeconds <= 0 {
			t.Errorf("P=%d: no host timing", r.P)
		}
	}
	// More processors split the same movement into more, smaller sets.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if last.Sets <= first.Sets {
		t.Errorf("sets did not grow with P: %d@P=%d vs %d@P=%d",
			first.Sets, first.P, last.Sets, last.P)
	}
	if !strings.Contains(tb.String(), "anatomy") {
		t.Error("table rendering broken")
	}
}

// TestTableStringsStable is the byte-stability regression for the report
// renderers: repeated String() calls on the same data must produce
// identical bytes with the panels in their fixed order. Fig8.String()
// used to range over a map literal of panels, so (a) and (b) swapped at
// random between runs.
func TestTableStringsStable(t *testing.T) {
	f := &Fig8{Curves: map[adapt.Strategy][]Fig8Point{}}
	for i, s := range adapt.Strategies {
		f.Curves[s] = []Fig8Point{
			{P: 1, SpeedupR: 1, SpeedupC: 1},
			{P: 2, SpeedupR: float64(i + 2), SpeedupC: float64(i + 3)},
		}
	}
	ref := f.String()
	ia := strings.Index(ref, "(a) refinement")
	ib := strings.Index(ref, "(b) coarsening")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("panels missing or out of order: (a)@%d (b)@%d", ia, ib)
	}
	for i := 0; i < 50; i++ {
		if got := f.String(); got != ref {
			t.Fatalf("Fig8.String() not byte-stable on call %d:\n%q\nvs\n%q", i, got, ref)
		}
	}

	ov := &OverlapTable{Rows: []OverlapRow{
		{P: 8, Workers: 1, Solver: 0.5, Pipeline: 0.1, Redist: 0.4,
			CritBulk: 1, CritOverlap: 0.9, Hidden: 0.1, Speedup: 1.11,
			PeakWords: 100, TotalWords: 600, Accepted: true},
	}}
	ovRef := ov.String()
	for i := 0; i < 10; i++ {
		if ov.String() != ovRef {
			t.Fatalf("OverlapTable.String() not byte-stable on call %d", i)
		}
	}
}

func TestBaseMeshIsolated(t *testing.T) {
	// Clones must be independent: adapting one clone must not leak into
	// the next.
	m1 := BaseMesh()
	n := m1.NumActiveElems()
	a := adapt.New(m1)
	a.MarkStrategyRefine(adapt.Local1, Seed)
	a.Refine()
	m2 := BaseMesh()
	if m2.NumActiveElems() != n {
		t.Fatal("BaseMesh clone leaked adaption state")
	}
}
