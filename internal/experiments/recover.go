package experiments

import (
	"fmt"
	"strings"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// crashRates is the rank-death probability sweep: the chance each alive
// rank dies per balance cycle that reaches the remap stage.
var crashRates = []float64{0, 0.05, 0.1, 0.2}

// recoverCycles is the number of balance cycles each cell runs — enough
// for multi-crash schedules to fire on distinct cycles.
const recoverCycles = 4

// RecoverRow is one cell of the crash-recovery sweep: how the cycles
// concluded, which ranks died, and what the survivor remap and the cycle
// checkpoints cost.
type RecoverRow struct {
	Rate  float64
	Mixed bool // crash+drop rather than crash alone
	// Outcomes is each cycle's conclusion, in order.
	Outcomes []core.BalanceOutcome
	// Crashed accumulates every rank death over the run, in cycle order;
	// Alive is the number of surviving ranks at the end.
	Crashed []int
	Alive   int
	// RecMoved and RecWords total the survivor-recovery remaps' element
	// and payload traffic.
	RecMoved, RecWords int64
	// Captures, Restores, and DeltaWords summarize the cycle-checkpoint
	// activity (DeltaWords is the copy-on-write patch volume; full
	// clones are counted separately by the checkpoint but omitted here).
	Captures, Restores int
	DeltaWords         int64
	// FinalImbalance is the load imbalance over the survivors after the
	// last cycle.
	FinalImbalance float64
}

// RecoverTable is the rank-crash recovery anatomy: how balance cycles
// conclude as ranks die mid-remap, what the survivor remap moves, and
// what the checkpoints cost, as the crash rate varies — alone and mixed
// with message drops. Deterministic for a given seed at every worker
// count.
type RecoverTable struct {
	Seed    int64
	P       int
	Workers int
	Rows    []RecoverRow
}

// RunRecoverTable sweeps the crash rate over a corner-refined box
// workload (P=8, four overlapped balance cycles per cell, streaming
// remap) under the given crash seed, each rate once with crashes alone
// and once mixed with message drops. Every figure is byte-identical at
// every worker count and across repeated runs — crash fates are a pure
// function of (seed, cycle, stage, rank).
func RunRecoverTable(seed int64, workers int) *RecoverTable {
	const p = 8
	out := &RecoverTable{Seed: seed, P: p, Workers: workers}
	for _, rate := range crashRates {
		for _, mixed := range []bool{false, true} {
			kinds := []fault.Kind{fault.Crash}
			if mixed {
				kinds = []fault.Kind{fault.Crash, fault.Drop}
			}
			cfg := core.DefaultConfig(p)
			cfg.Workers = workers
			cfg.Overlap = true // stream the remap: crashes hit the first window
			cfg.Faults = &fault.Plan{Seed: seed, Rate: rate, Kinds: kinds}
			cfg.Retry = fault.Budget(3)
			applyObs(&cfg)
			f, err := core.New(meshgen.Box(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1}), nil, cfg)
			if err != nil {
				panic(err)
			}
			row := RecoverRow{Rate: rate, Mixed: mixed}
			radius := 0.7
			for c := 0; c < recoverCycles; c++ {
				r := radius
				rep, err := f.Cycle(func(a *adapt.Adaptor) {
					a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
				})
				if err != nil {
					panic(err)
				}
				radius *= 0.8
				row.Outcomes = append(row.Outcomes, rep.Outcome)
				row.Crashed = append(row.Crashed, rep.Balance.CrashedRanks...)
				row.RecMoved += rep.Balance.Recovery.Moved
				row.RecWords += rep.Balance.Recovery.WordsMoved
				row.FinalImbalance = rep.Balance.ImbalanceAfter
			}
			st := f.CheckpointStats()
			row.Captures, row.Restores, row.DeltaWords = st.Captures, st.Restores, st.DeltaWords
			row.Alive = f.D.AliveCount()
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// String renders the sweep.
func (t *RecoverTable) String() string {
	tb := newTable(fmt.Sprintf("Rank-crash recovery: outcome sweep (seed %d, P=%d, %d cycles/cell, streaming remap)",
		t.Seed, t.P, recoverCycles))
	tb.row("rate", "kinds", "outcomes", "crashed", "alive", "rec mv", "rec wds",
		"ckpt", "rst", "dlt wds", "imb")
	for _, r := range t.Rows {
		names := make([]string, len(r.Outcomes))
		for i, o := range r.Outcomes {
			names[i] = shortOutcome(o)
		}
		kinds := "crash"
		if r.Mixed {
			kinds = "c+drop"
		}
		crashed := "-"
		if len(r.Crashed) > 0 {
			crashed = strings.Trim(strings.Join(strings.Fields(fmt.Sprint(r.Crashed)), ","), "[]")
		}
		tb.row(fmt.Sprintf("%.2f", r.Rate), kinds, strings.Join(names, ","), crashed, r.Alive,
			r.RecMoved, r.RecWords, r.Captures, r.Restores, r.DeltaWords,
			fmt.Sprintf("%.2f", r.FinalImbalance))
	}
	return tb.String()
}
