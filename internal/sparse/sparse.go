// Package sparse provides the small sparse-linear-algebra substrate needed
// by the spectral mesh partitioner: CSR matrices, graph Laplacians, a
// Lanczos eigensolver for the Fiedler vector, and a symmetric tridiagonal
// eigensolver. It replaces the eigensolvers the paper obtained from the
// Chaco package.
package sparse

import (
	"math"
	"math/rand"
)

// CSR is a square sparse matrix in compressed sparse row form.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NewCSR assembles a CSR matrix from per-row column/value pairs.
func NewCSR(rows [][]int32, vals [][]float64) *CSR {
	n := len(rows)
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	nnz := 0
	for _, r := range rows {
		nnz += len(r)
	}
	m.Col = make([]int32, 0, nnz)
	m.Val = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		m.RowPtr[i] = int32(len(m.Col))
		m.Col = append(m.Col, rows[i]...)
		m.Val = append(m.Val, vals[i]...)
	}
	m.RowPtr[n] = int32(len(m.Col))
	return m
}

// Laplacian builds the combinatorial graph Laplacian L = D − A from an
// adjacency list (uniform edge weights).
func Laplacian(adj [][]int32) *CSR {
	n := len(adj)
	rows := make([][]int32, n)
	vals := make([][]float64, n)
	for i, nbrs := range adj {
		rows[i] = make([]int32, 0, len(nbrs)+1)
		vals[i] = make([]float64, 0, len(nbrs)+1)
		rows[i] = append(rows[i], int32(i))
		vals[i] = append(vals[i], float64(len(nbrs)))
		for _, j := range nbrs {
			rows[i] = append(rows[i], j)
			vals[i] = append(vals[i], -1)
		}
	}
	return NewCSR(rows, vals)
}

// MulVec computes y = A·x.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies v by a in place.
func Scale(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// Fiedler computes an approximation to the Fiedler vector of Laplacian L —
// the eigenvector of the second-smallest eigenvalue — using Lanczos
// iteration with full reorthogonalization, deflating the constant vector
// (the trivial nullspace of a connected graph's Laplacian). maxIter bounds
// the Krylov dimension; tol is the residual tolerance on the Ritz pair.
// The returned vector has unit norm and zero mean.
//
// Partition quality does not require machine-precision eigenvectors, so
// callers typically pass maxIter ≈ 60 and tol ≈ 1e-4.
func Fiedler(L *CSR, maxIter int, tol float64, seed int64) []float64 {
	v, _ := FiedlerCounted(L, maxIter, tol, seed)
	return v
}

// FiedlerCounted is Fiedler with an abstract operation count of the work
// actually performed: one op per nonzero visited by each sparse matvec
// and per vector element touched by the dot products, AXPYs, and full
// reorthogonalization (which grows with the Krylov basis). The count
// feeds the machine-model cost accounting of the spectral partitioners —
// the eigen-solve is exactly the expense the paper's framework treats as
// a black box, and the count makes it chargeable.
func FiedlerCounted(L *CSR, maxIter int, tol float64, seed int64) ([]float64, int64) {
	var ops int64
	n := L.N
	if n == 1 {
		return []float64{0}, 1
	}
	if maxIter > n-1 {
		maxIter = n - 1
	}
	if maxIter < 1 {
		maxIter = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Start vector: random, orthogonal to the constant vector.
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	deflate(v)
	Scale(1/Norm(v), v)

	basis := make([][]float64, 0, maxIter)
	var alpha, beta []float64
	w := make([]float64, n)
	prev := make([]float64, n)

	nnz := int64(len(L.Col))
	for j := 0; j < maxIter; j++ {
		basis = append(basis, append([]float64(nil), v...))
		L.MulVec(v, w)
		a := Dot(v, w)
		alpha = append(alpha, a)
		Axpy(-a, v, w)
		if j > 0 {
			Axpy(-beta[j-1], prev, w)
		}
		// Full reorthogonalization keeps the basis clean (cheap at the
		// coarse-graph sizes the multilevel partitioner uses).
		deflate(w)
		for _, q := range basis {
			Axpy(-Dot(q, w), q, w)
		}
		// Matvec over the nonzeros, ~6 n-length vector passes, and 2
		// passes per reorthogonalized basis vector.
		ops += nnz + int64(n)*int64(6+2*len(basis))
		b := Norm(w)
		if b < 1e-12 {
			break
		}
		beta = append(beta, b)
		copy(prev, v)
		copy(v, w)
		Scale(1/b, v)

		// Check convergence of the smallest Ritz pair every few steps.
		if j >= 2 && (j%4 == 0 || j == maxIter-1) {
			if resid := smallestRitzResidual(alpha, beta[:len(alpha)-1]); resid*math.Abs(b) < tol {
				break
			}
		}
	}

	// Solve the tridiagonal eigenproblem and assemble the Ritz vector of
	// the smallest eigenvalue (the deflated operator's smallest is the
	// original's second-smallest).
	k := len(alpha)
	d := append([]float64(nil), alpha...)
	var e []float64
	if k > 1 {
		e = append([]float64(nil), beta[:k-1]...)
	}
	evec := make([]float64, k)
	tridiagSmallest(d, e, evec)

	out := make([]float64, n)
	for i, q := range basis {
		Axpy(evec[i], q, out)
	}
	deflate(out)
	if nm := Norm(out); nm > 0 {
		Scale(1/nm, out)
	}
	ops += int64(len(basis)) * int64(n) // Ritz-vector assembly
	return out, ops
}

// deflate removes the mean from v (projects out the constant vector).
func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

// smallestRitzResidual returns the magnitude of the last eigenvector
// component of the smallest eigenpair of the symmetric tridiagonal matrix
// (diag d, off-diag e) — the standard Lanczos residual indicator.
func smallestRitzResidual(d, e []float64) float64 {
	dd := append([]float64(nil), d...)
	ee := append([]float64(nil), e...)
	vec := make([]float64, len(d))
	tridiagSmallest(dd, ee, vec)
	return math.Abs(vec[len(vec)-1])
}

// tridiagSmallest computes the smallest eigenvalue of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e (len(e) =
// len(d)-1), storing a unit eigenvector in vec, and returns the
// eigenvalue. d and e are clobbered. It uses bisection (Sturm sequences)
// for the eigenvalue and inverse iteration for the vector.
func tridiagSmallest(d, e []float64, vec []float64) float64 {
	n := len(d)
	if n == 1 {
		vec[0] = 1
		return d[0]
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		lo = math.Min(lo, d[i]-r)
		hi = math.Max(hi, d[i]+r)
	}
	// Sturm count: number of eigenvalues < x.
	count := func(x float64) int {
		cnt := 0
		q := d[0] - x
		if q < 0 {
			cnt++
		}
		for i := 1; i < n; i++ {
			den := q
			if den == 0 {
				den = 1e-300
			}
			q = d[i] - x - e[i-1]*e[i-1]/den
			if q < 0 {
				cnt++
			}
		}
		return cnt
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(lo)); iter++ {
		mid := 0.5 * (lo + hi)
		if count(mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	lambda := 0.5 * (lo + hi)

	// Inverse iteration: solve (T − λI)x = b via the Thomas algorithm
	// with a tiny shift to keep the factorization nonsingular.
	shift := lambda - 1e-10*(1+math.Abs(lambda))
	rng := rand.New(rand.NewSource(7))
	x := vec
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	diag := make([]float64, n)
	for it := 0; it < 3; it++ {
		// Thomas-algorithm solve of (T − shift·I)x = b.
		for i := 0; i < n; i++ {
			diag[i] = d[i] - shift
		}
		b := append([]float64(nil), x...)
		for i := 1; i < n; i++ {
			if math.Abs(diag[i-1]) < 1e-300 {
				diag[i-1] = 1e-300
			}
			m := e[i-1] / diag[i-1]
			diag[i] -= m * e[i-1]
			b[i] -= m * b[i-1]
		}
		if math.Abs(diag[n-1]) < 1e-300 {
			diag[n-1] = 1e-300
		}
		x[n-1] = b[n-1] / diag[n-1]
		for i := n - 2; i >= 0; i-- {
			x[i] = (b[i] - e[i]*x[i+1]) / diag[i]
		}
		nm := Norm(x)
		if nm == 0 {
			break
		}
		Scale(1/nm, x)
	}
	return lambda
}
