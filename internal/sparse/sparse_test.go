package sparse

import (
	"math"
	"testing"
)

func pathGraph(n int) [][]int32 {
	adj := make([][]int32, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], int32(i+1))
		adj[i+1] = append(adj[i+1], int32(i))
	}
	return adj
}

func TestLaplacianStructure(t *testing.T) {
	L := Laplacian(pathGraph(4))
	if L.N != 4 {
		t.Fatalf("N = %d", L.N)
	}
	// Row sums of a Laplacian are zero.
	x := []float64{1, 1, 1, 1}
	y := make([]float64, 4)
	L.MulVec(x, y)
	for i, v := range y {
		if math.Abs(v) > 1e-14 {
			t.Errorf("L·1 row %d = %g, want 0", i, v)
		}
	}
}

func TestMulVec(t *testing.T) {
	// 2x2: [[2,-1],[-1,2]]
	m := NewCSR(
		[][]int32{{0, 1}, {0, 1}},
		[][]float64{{2, -1}, {-1, 2}},
	)
	y := make([]float64, 2)
	m.MulVec([]float64{1, 2}, y)
	if y[0] != 0 || y[1] != 3 {
		t.Errorf("y = %v, want [0 3]", y)
	}
}

func TestBlasHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if Norm([]float64{3, 4}) != 5 {
		t.Errorf("Norm = %v", Norm([]float64{3, 4}))
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestFiedlerPathGraph(t *testing.T) {
	// The Fiedler vector of a path graph is monotone: it orders the path.
	n := 20
	L := Laplacian(pathGraph(n))
	f := Fiedler(L, 40, 1e-8, 1)
	// Zero mean, unit norm.
	mean := 0.0
	for _, v := range f {
		mean += v
	}
	if math.Abs(mean/float64(n)) > 1e-9 {
		t.Errorf("mean = %g, want 0", mean/float64(n))
	}
	if math.Abs(Norm(f)-1) > 1e-9 {
		t.Errorf("norm = %g, want 1", Norm(f))
	}
	// Monotone (up to global sign).
	inc, dec := true, true
	for i := 1; i < n; i++ {
		if f[i] < f[i-1] {
			inc = false
		}
		if f[i] > f[i-1] {
			dec = false
		}
	}
	if !inc && !dec {
		t.Errorf("Fiedler vector of path not monotone: %v", f)
	}
}

func TestFiedlerBisectsDumbbell(t *testing.T) {
	// Two K5 cliques joined by one edge: the Fiedler vector must separate
	// the cliques by sign.
	n := 10
	adj := make([][]int32, n)
	link := func(a, b int) {
		adj[a] = append(adj[a], int32(b))
		adj[b] = append(adj[b], int32(a))
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			link(i, j)
			link(i+5, j+5)
		}
	}
	link(0, 5)
	L := Laplacian(adj)
	f := Fiedler(L, 40, 1e-8, 3)
	for i := 1; i < 5; i++ {
		if f[i]*f[0] < 0 {
			t.Errorf("vertex %d separated from its clique", i)
		}
		if f[i+5]*f[5] < 0 {
			t.Errorf("vertex %d separated from its clique", i+5)
		}
	}
	if f[0]*f[5] > 0 {
		t.Error("cliques not separated by sign")
	}
}

func TestFiedlerEigenvalueResidual(t *testing.T) {
	// Verify L·f ≈ λ2·f on a ring (known λ2 = 2−2cos(2π/n)).
	n := 16
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		adj[i] = append(adj[i], int32(j))
		adj[j] = append(adj[j], int32(i))
	}
	L := Laplacian(adj)
	f := Fiedler(L, 40, 1e-10, 5)
	y := make([]float64, n)
	L.MulVec(f, y)
	lambda := Dot(f, y)
	want := 2 - 2*math.Cos(2*math.Pi/float64(n))
	if math.Abs(lambda-want) > 1e-6 {
		t.Errorf("λ2 = %g, want %g", lambda, want)
	}
	// Residual ‖Lf − λf‖ small.
	Axpy(-lambda, f, y)
	if r := Norm(y); r > 1e-5 {
		t.Errorf("residual = %g", r)
	}
}

func TestFiedlerSingletonGraph(t *testing.T) {
	L := Laplacian([][]int32{nil})
	f := Fiedler(L, 10, 1e-6, 1)
	if len(f) != 1 || f[0] != 0 {
		t.Errorf("singleton Fiedler = %v", f)
	}
}

func TestTridiagSmallest(t *testing.T) {
	// T = [[2,-1,0],[-1,2,-1],[0,-1,2]]: eigenvalues 2-√2, 2, 2+√2.
	d := []float64{2, 2, 2}
	e := []float64{-1, -1}
	vec := make([]float64, 3)
	got := tridiagSmallest(d, e, vec)
	want := 2 - math.Sqrt2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("λmin = %g, want %g", got, want)
	}
	// Eigenvector check: v ∝ (1, √2, 1).
	r := vec[1] / vec[0]
	if math.Abs(math.Abs(r)-math.Sqrt2) > 1e-6 {
		t.Errorf("eigenvector ratio = %g, want ±√2", r)
	}
}
