// Package meshgen builds synthetic tetrahedral meshes used in place of the
// paper's proprietary UH-1H helicopter-rotor grid (60,968 elements, 78,343
// edges). The generators produce conforming tetrahedralizations with the
// same scale, adjacency structure, and boundary topology, which is all the
// adaption and load-balancing experiments depend on.
package meshgen

import (
	"math"

	"plum/internal/geom"
	"plum/internal/mesh"
)

// kuhnPerms lists the 6 axis orders of the Kuhn (path) subdivision of a
// cube into tetrahedra. Each tetrahedron walks from corner (0,0,0) to
// corner (1,1,1) adding one unit step per axis in the given order; the
// resulting tetrahedralization is conforming across neighbouring cubes.
var kuhnPerms = [6][3]int{
	{0, 1, 2}, {0, 2, 1},
	{1, 0, 2}, {1, 2, 0},
	{2, 0, 1}, {2, 1, 0},
}

// Box builds a conforming tetrahedral mesh of an nx×ny×nz grid of cubes
// (6 tetrahedra per cube, Kuhn subdivision) spanning [0,size.X]×[0,size.Y]
// ×[0,size.Z], with boundary faces on all six sides (patches 0..5 for
// -x,+x,-y,+y,-z,+z). The mesh has 6·nx·ny·nz elements.
func Box(nx, ny, nz int, size geom.Vec3) *mesh.Mesh {
	return boxMapped(nx, ny, nz, func(p geom.Vec3) geom.Vec3 {
		return geom.Vec3{X: p.X * size.X, Y: p.Y * size.Y, Z: p.Z * size.Z}
	})
}

// boxMapped builds the Kuhn box mesh on the unit cube and maps every
// vertex through warp. warp must be injective and orientation-safe
// (element orientation is normalized on insertion).
func boxMapped(nx, ny, nz int, warp func(geom.Vec3) geom.Vec3) *mesh.Mesh {
	nvx, nvy, nvz := nx+1, ny+1, nz+1
	nTet := 6 * nx * ny * nz
	m := mesh.New(nvx*nvy*nvz, nTet*7/5, nTet)

	vid := func(i, j, k int) mesh.VertID {
		return mesh.VertID((i*nvy+j)*nvz + k)
	}
	for i := 0; i < nvx; i++ {
		for j := 0; j < nvy; j++ {
			for k := 0; k < nvz; k++ {
				p := geom.Vec3{
					X: float64(i) / float64(nx),
					Y: float64(j) / float64(ny),
					Z: float64(k) / float64(nz),
				}
				m.AddVertex(warp(p))
			}
		}
	}

	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				corner := [3]int{i, j, k}
				for _, perm := range kuhnPerms {
					var vs [4]mesh.VertID
					cur := corner
					vs[0] = vid(cur[0], cur[1], cur[2])
					for s, axis := range perm {
						cur[axis]++
						vs[s+1] = vid(cur[0], cur[1], cur[2])
					}
					m.AddElement(vs[0], vs[1], vs[2], vs[3], mesh.InvalidElem, mesh.InvalidElem, 0)
				}
			}
		}
	}

	// Boundary faces. On every exterior cube face the Kuhn subdivision
	// splits the quad along the diagonal from the (u=0,v=0) corner to the
	// (u=1,v=1) corner, giving triangles (c00,c10,c11) and (c00,c01,c11).
	addQuad := func(c00, c10, c01, c11 mesh.VertID, patch int32) {
		m.AddBoundaryFace(c00, c10, c11, patch)
		m.AddBoundaryFace(c00, c01, c11, patch)
	}
	for j := 0; j < ny; j++ {
		for k := 0; k < nz; k++ {
			addQuad(vid(0, j, k), vid(0, j+1, k), vid(0, j, k+1), vid(0, j+1, k+1), 0)
			addQuad(vid(nx, j, k), vid(nx, j+1, k), vid(nx, j, k+1), vid(nx, j+1, k+1), 1)
		}
	}
	for i := 0; i < nx; i++ {
		for k := 0; k < nz; k++ {
			addQuad(vid(i, 0, k), vid(i+1, 0, k), vid(i, 0, k+1), vid(i+1, 0, k+1), 2)
			addQuad(vid(i, ny, k), vid(i+1, ny, k), vid(i, ny, k+1), vid(i+1, ny, k+1), 3)
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			addQuad(vid(i, j, 0), vid(i+1, j, 0), vid(i, j+1, 0), vid(i+1, j+1, 0), 4)
			addQuad(vid(i, j, nz), vid(i+1, j, nz), vid(i, j+1, nz), vid(i+1, j+1, nz), 5)
		}
	}
	return m
}

// UnitCube returns the 6-tetrahedron Kuhn mesh of the unit cube; handy for
// small deterministic tests.
func UnitCube() *mesh.Mesh {
	return Box(1, 1, 1, geom.Vec3{X: 1, Y: 1, Z: 1})
}

// RotorParams configures the RotorDisk generator.
type RotorParams struct {
	// Grid resolution; elements = 6·NR·NTheta·NZ.
	NR, NTheta, NZ int
	// Inner and outer radius of the rotor-disk annulus.
	R0, R1 float64
	// Angular sweep in radians (2π·fraction for a blade sector).
	Sweep float64
	// Height of the disk.
	Height float64
}

// DefaultRotor returns parameters sized to match the paper's initial mesh
// (60,968 tetrahedra, 78,343 edges): a 21×22×22 grid gives 60,984 elements
// and 75,437 edges — within 0.03% and 3.7% of the paper's counts.
func DefaultRotor() RotorParams {
	return RotorParams{
		NR: 21, NTheta: 22, NZ: 22,
		R0: 0.4, R1: 2.4,
		Sweep:  1.25 * math.Pi,
		Height: 1.2,
	}
}

// RotorDisk builds a rotor-disk-like annular sector mesh: the structured
// box grid is warped into cylindrical coordinates (radius, azimuth,
// height). It stands in for the UH-1H rotor acoustics mesh of Strawn,
// Biswas & Garceau used by the paper.
func RotorDisk(p RotorParams) *mesh.Mesh {
	return boxMapped(p.NR, p.NTheta, p.NZ, func(q geom.Vec3) geom.Vec3 {
		r := p.R0 + q.X*(p.R1-p.R0)
		th := q.Y * p.Sweep
		return geom.Vec3{
			X: r * math.Cos(th),
			Y: r * math.Sin(th),
			Z: (q.Z - 0.5) * p.Height,
		}
	})
}

// PaperMesh returns the standard initial mesh used by the experiment
// harness: the rotor-disk mesh at the paper's scale.
func PaperMesh() *mesh.Mesh { return RotorDisk(DefaultRotor()) }

// SmallBox returns a 4×4×4 box mesh (384 elements), a convenient
// mid-sized fixture for unit tests.
func SmallBox() *mesh.Mesh { return Box(4, 4, 4, geom.Vec3{X: 1, Y: 1, Z: 1}) }
