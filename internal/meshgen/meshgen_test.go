package meshgen

import (
	"math"
	"testing"

	"plum/internal/geom"
	"plum/internal/mesh"
)

func TestUnitCubeCounts(t *testing.T) {
	m := UnitCube()
	if got := m.NumActiveElems(); got != 6 {
		t.Errorf("elements = %d, want 6", got)
	}
	if got := m.NumVerts(); got != 8 {
		t.Errorf("verts = %d, want 8", got)
	}
	// Kuhn cube: 12 axis edges + 6 face diagonals + 1 body diagonal = 19.
	if got := m.NumActiveEdges(); got != 19 {
		t.Errorf("edges = %d, want 19", got)
	}
	if got := m.NumActiveFaces(); got != 12 {
		t.Errorf("boundary faces = %d, want 12", got)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestUnitCubeVolume(t *testing.T) {
	m := UnitCube()
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
		t.Errorf("total volume = %g, want 1", v)
	}
	// Every Kuhn path tet has volume exactly 1/6.
	for i := range m.Elems {
		if v := m.ElemVolume(mesh.ElemID(i)); math.Abs(v-1.0/6.0) > 1e-12 {
			t.Errorf("elem %d volume = %g, want 1/6", i, v)
		}
	}
}

// edgeCountKuhn returns the analytic edge count of an nx×ny×nz Kuhn box.
func edgeCountKuhn(nx, ny, nz int) int {
	axis := nx*(ny+1)*(nz+1) + (nx+1)*ny*(nz+1) + (nx+1)*(ny+1)*nz
	faceDiag := nx*ny*(nz+1) + nx*(ny+1)*nz + (nx+1)*ny*nz
	bodyDiag := nx * ny * nz
	return axis + faceDiag + bodyDiag
}

func TestBoxCounts(t *testing.T) {
	for _, c := range []struct{ nx, ny, nz int }{
		{1, 1, 1}, {2, 2, 2}, {3, 2, 1}, {4, 4, 4},
	} {
		m := Box(c.nx, c.ny, c.nz, geom.Vec3{X: 1, Y: 1, Z: 1})
		wantElems := 6 * c.nx * c.ny * c.nz
		if got := m.NumActiveElems(); got != wantElems {
			t.Errorf("%v: elems = %d, want %d", c, got, wantElems)
		}
		wantVerts := (c.nx + 1) * (c.ny + 1) * (c.nz + 1)
		if got := m.NumVerts(); got != wantVerts {
			t.Errorf("%v: verts = %d, want %d", c, got, wantVerts)
		}
		if got, want := m.NumActiveEdges(), edgeCountKuhn(c.nx, c.ny, c.nz); got != want {
			t.Errorf("%v: edges = %d, want %d", c, got, want)
		}
		wantFaces := 4 * (c.nx*c.ny + c.nx*c.nz + c.ny*c.nz)
		if got := m.NumActiveFaces(); got != wantFaces {
			t.Errorf("%v: faces = %d, want %d", c, got, wantFaces)
		}
	}
}

func TestBoxConforming(t *testing.T) {
	m := Box(3, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-9 {
		t.Errorf("volume = %g, want 1", v)
	}
	// Each cube's body diagonal must be shared by exactly the 6 path
	// tetrahedra of that cube.
	nvy, nvz := 4, 4
	vid := func(i, j, k int) mesh.VertID { return mesh.VertID((i*nvy+j)*nvz + k) }
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				d := m.FindEdge(vid(i, j, k), vid(i+1, j+1, k+1))
				if d == mesh.InvalidEdge {
					t.Fatalf("cube (%d,%d,%d): missing body diagonal", i, j, k)
				}
				if got := len(m.Edges[d].Elems); got != 6 {
					t.Errorf("cube (%d,%d,%d): diagonal shared by %d tets, want 6", i, j, k, got)
				}
			}
		}
	}
}

func TestBoxScaled(t *testing.T) {
	m := Box(2, 2, 2, geom.Vec3{X: 2, Y: 3, Z: 4})
	if v := m.TotalVolume(); math.Abs(v-24) > 1e-9 {
		t.Errorf("volume = %g, want 24", v)
	}
}

func TestRotorDiskPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large mesh")
	}
	m := PaperMesh()
	elems := m.NumActiveElems()
	edges := m.NumActiveEdges()
	// Paper: 60,968 elements, 78,343 edges. Accept the synthetic analogue
	// within a few percent.
	if elems < 58000 || elems > 64000 {
		t.Errorf("elements = %d, want ≈60,968", elems)
	}
	if edges < 72000 || edges > 82000 {
		t.Errorf("edges = %d, want ≈78,343", edges)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestRotorDiskGeometry(t *testing.T) {
	p := RotorParams{NR: 4, NTheta: 6, NZ: 3, R0: 1, R1: 2, Sweep: math.Pi / 2, Height: 1}
	m := RotorDisk(p)
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// All vertices must lie within the annulus bounds.
	for i := range m.Verts {
		v := m.Verts[i].Pos
		r := math.Hypot(v.X, v.Y)
		if r < p.R0-1e-9 || r > p.R1+1e-9 {
			t.Fatalf("vertex %d radius %g outside [%g,%g]", i, r, p.R0, p.R1)
		}
		if v.Z < -p.Height/2-1e-9 || v.Z > p.Height/2+1e-9 {
			t.Fatalf("vertex %d z=%g outside height", i, v.Z)
		}
	}
	// Warped mesh must still have positive element volumes (orientation
	// normalization) and a volume close to the analytic annular sector.
	want := p.Sweep / 2 * (p.R1*p.R1 - p.R0*p.R0) * p.Height
	got := m.TotalVolume()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("sector volume = %g, analytic %g (>5%% off)", got, want)
	}
}

func TestSmallBox(t *testing.T) {
	m := SmallBox()
	if got := m.NumActiveElems(); got != 384 {
		t.Errorf("SmallBox elems = %d, want 384", got)
	}
}
