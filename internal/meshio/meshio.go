// Package meshio serializes meshes for restarts and visualization — the
// two uses the paper gives for its finalization phase ("storing a snapshot
// of a grid for future restarts", "post processing tasks, such as
// visualization"). A compact binary format round-trips the full adaptive
// state (refinement forest included); a legacy-VTK text writer exports the
// active mesh with optional vertex fields for external viewers.
package meshio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"plum/internal/mesh"
)

// magic identifies the binary snapshot format; bump version on layout
// changes.
const (
	magic   = 0x504c554d // "PLUM"
	version = 1
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u32(x uint32) {
	if w.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	_, w.err = w.w.Write(b[:])
}

func (w *writer) i32(x int32) { w.u32(uint32(x)) }

func (w *writer) f64(x float64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
	_, w.err = w.w.Write(b[:])
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Write serializes the full mesh state (including the refinement forest
// and dead-object slots, so ids remain stable across a round trip).
func Write(out io.Writer, m *mesh.Mesh) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.u32(magic)
	w.u32(version)

	w.u32(uint32(len(m.Verts)))
	for i := range m.Verts {
		v := &m.Verts[i]
		w.f64(v.Pos.X)
		w.f64(v.Pos.Y)
		w.f64(v.Pos.Z)
		w.u32(boolBit(v.Dead))
		w.u32(uint32(len(v.Edges)))
		for _, e := range v.Edges {
			w.i32(int32(e))
		}
	}

	w.u32(uint32(len(m.Edges)))
	for i := range m.Edges {
		e := &m.Edges[i]
		w.i32(int32(e.V[0]))
		w.i32(int32(e.V[1]))
		w.i32(int32(e.Parent))
		w.i32(int32(e.Child[0]))
		w.i32(int32(e.Child[1]))
		w.i32(int32(e.Mid))
		w.u32(boolBit(e.Dead))
		w.u32(uint32(len(e.Elems)))
		for _, t := range e.Elems {
			w.i32(int32(t))
		}
	}

	w.u32(uint32(len(m.Elems)))
	for i := range m.Elems {
		t := &m.Elems[i]
		for _, v := range t.V {
			w.i32(int32(v))
		}
		for _, e := range t.E {
			w.i32(int32(e))
		}
		w.i32(int32(t.Parent))
		w.i32(int32(t.Root))
		w.i32(t.Level)
		w.u32(boolBit(t.Dead))
		w.u32(uint32(len(t.Children)))
		for _, c := range t.Children {
			w.i32(int32(c))
		}
	}

	w.u32(uint32(len(m.Faces)))
	for i := range m.Faces {
		f := &m.Faces[i]
		for _, v := range f.V {
			w.i32(int32(v))
		}
		for _, e := range f.E {
			w.i32(int32(e))
		}
		w.i32(f.Patch)
		w.i32(int32(f.Parent))
		w.u32(boolBit(f.Dead))
		w.u32(uint32(len(f.Children)))
		for _, c := range f.Children {
			w.i32(int32(c))
		}
	}

	if w.err != nil {
		return fmt.Errorf("meshio: write: %w", w.err)
	}
	return w.w.Flush()
}

// Read deserializes a snapshot written by Write and reconstructs all
// derived state (edge lookup map, counters).
func Read(in io.Reader) (*mesh.Mesh, error) {
	r := &reader{r: bufio.NewReader(in)}
	if r.u32() != magic {
		return nil, fmt.Errorf("meshio: bad magic")
	}
	if v := r.u32(); v != version {
		return nil, fmt.Errorf("meshio: unsupported version %d", v)
	}

	nv := int(r.u32())
	if r.err != nil {
		return nil, fmt.Errorf("meshio: truncated header: %w", r.err)
	}
	verts := make([]mesh.Vertex, nv)
	for i := range verts {
		verts[i].Pos.X = r.f64()
		verts[i].Pos.Y = r.f64()
		verts[i].Pos.Z = r.f64()
		verts[i].Dead = r.u32() != 0
		ne := int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("meshio: truncated vertex %d: %w", i, r.err)
		}
		verts[i].Edges = make([]mesh.EdgeID, ne)
		for j := range verts[i].Edges {
			verts[i].Edges[j] = mesh.EdgeID(r.i32())
		}
	}

	nE := int(r.u32())
	edges := make([]mesh.Edge, nE)
	for i := range edges {
		e := &edges[i]
		e.V[0] = mesh.VertID(r.i32())
		e.V[1] = mesh.VertID(r.i32())
		e.Parent = mesh.EdgeID(r.i32())
		e.Child[0] = mesh.EdgeID(r.i32())
		e.Child[1] = mesh.EdgeID(r.i32())
		e.Mid = mesh.VertID(r.i32())
		e.Dead = r.u32() != 0
		n := int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("meshio: truncated edge %d: %w", i, r.err)
		}
		e.Elems = make([]mesh.ElemID, n)
		for j := range e.Elems {
			e.Elems[j] = mesh.ElemID(r.i32())
		}
	}

	nT := int(r.u32())
	elems := make([]mesh.Element, nT)
	for i := range elems {
		t := &elems[i]
		for j := range t.V {
			t.V[j] = mesh.VertID(r.i32())
		}
		for j := range t.E {
			t.E[j] = mesh.EdgeID(r.i32())
		}
		t.Parent = mesh.ElemID(r.i32())
		t.Root = mesh.ElemID(r.i32())
		t.Level = r.i32()
		t.Dead = r.u32() != 0
		n := int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("meshio: truncated element %d: %w", i, r.err)
		}
		if n > 0 {
			t.Children = make([]mesh.ElemID, n)
			for j := range t.Children {
				t.Children[j] = mesh.ElemID(r.i32())
			}
		}
	}

	nF := int(r.u32())
	faces := make([]mesh.BoundaryFace, nF)
	for i := range faces {
		f := &faces[i]
		for j := range f.V {
			f.V[j] = mesh.VertID(r.i32())
		}
		for j := range f.E {
			f.E[j] = mesh.EdgeID(r.i32())
		}
		f.Patch = r.i32()
		f.Parent = mesh.FaceID(r.i32())
		f.Dead = r.u32() != 0
		n := int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("meshio: truncated face %d: %w", i, r.err)
		}
		if n > 0 {
			f.Children = make([]mesh.FaceID, n)
			for j := range f.Children {
				f.Children[j] = mesh.FaceID(r.i32())
			}
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("meshio: read: %w", r.err)
	}
	return mesh.Restore(verts, edges, elems, faces), nil
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// WriteVTK exports the active mesh as legacy-VTK unstructured-grid text
// (readable by ParaView/VisIt). fields maps names to per-vertex scalar
// data; nil entries are skipped.
func WriteVTK(out io.Writer, m *mesh.Mesh, fields map[string][]float64) error {
	w := bufio.NewWriter(out)
	fmt.Fprintln(w, "# vtk DataFile Version 3.0")
	fmt.Fprintln(w, "plum adaptive tetrahedral mesh")
	fmt.Fprintln(w, "ASCII")
	fmt.Fprintln(w, "DATASET UNSTRUCTURED_GRID")

	// Compact live-vertex numbering for the file.
	vmap := make([]int32, len(m.Verts))
	nv := int32(0)
	for i := range m.Verts {
		if m.Verts[i].Dead {
			vmap[i] = -1
			continue
		}
		vmap[i] = nv
		nv++
	}
	fmt.Fprintf(w, "POINTS %d double\n", nv)
	for i := range m.Verts {
		if m.Verts[i].Dead {
			continue
		}
		p := m.Verts[i].Pos
		fmt.Fprintf(w, "%g %g %g\n", p.X, p.Y, p.Z)
	}

	nt := 0
	for i := range m.Elems {
		if m.Elems[i].Active() {
			nt++
		}
	}
	fmt.Fprintf(w, "CELLS %d %d\n", nt, nt*5)
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		fmt.Fprintf(w, "4 %d %d %d %d\n", vmap[t.V[0]], vmap[t.V[1]], vmap[t.V[2]], vmap[t.V[3]])
	}
	fmt.Fprintf(w, "CELL_TYPES %d\n", nt)
	for i := 0; i < nt; i++ {
		fmt.Fprintln(w, 10) // VTK_TETRA
	}

	if len(fields) > 0 {
		fmt.Fprintf(w, "POINT_DATA %d\n", nv)
		for name, data := range fields {
			if data == nil {
				continue
			}
			fmt.Fprintf(w, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
			for i := range m.Verts {
				if m.Verts[i].Dead {
					continue
				}
				v := 0.0
				if i < len(data) {
					v = data[i]
				}
				fmt.Fprintf(w, "%g\n", v)
			}
		}
	}
	return w.Flush()
}
