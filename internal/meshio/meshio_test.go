package meshio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

func TestBinaryRoundTripPlain(t *testing.T) {
	m := meshgen.SmallBox()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats() != m2.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", m.Stats(), m2.Stats())
	}
	if err := m2.Check(); err != nil {
		t.Fatalf("restored mesh invalid: %v", err)
	}
	if math.Abs(m.TotalVolume()-m2.TotalVolume()) > 1e-12 {
		t.Error("volume changed")
	}
}

func TestBinaryRoundTripAdapted(t *testing.T) {
	// The whole refinement forest must survive: after a round trip,
	// coarsening must still be able to restore the initial mesh.
	m := meshgen.SmallBox()
	s0 := m.Stats()
	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.35}, adapt.MarkRefine)
	a.Refine()

	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats() != m2.Stats() {
		t.Fatalf("stats differ after round trip: %+v vs %+v", m.Stats(), m2.Stats())
	}
	if err := m2.Check(); err != nil {
		t.Fatalf("restored adapted mesh invalid: %v", err)
	}

	// Restart semantics: adaption continues on the restored mesh.
	a2 := adapt.New(m2)
	a2.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a2.Coarsen()
	s2 := m2.Stats()
	if s2.ActiveElems != s0.ActiveElems || s2.ActiveEdges != s0.ActiveEdges {
		t.Errorf("coarsening after restore: %+v, want %+v", s2, s0)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a mesh"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncation mid-stream.
	m := meshgen.UnitCube()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestWriteVTK(t *testing.T) {
	m := meshgen.UnitCube()
	field := make([]float64, len(m.Verts))
	for i := range field {
		field[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, map[string][]float64{"u": field}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"POINTS 8 double",
		"CELLS 6 30",
		"CELL_TYPES 6",
		"POINT_DATA 8",
		"SCALARS u double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// Every tetra line has 4 vertex ids in range.
	if strings.Count(out, "\n4 ") != 6 {
		t.Errorf("expected 6 tetra records")
	}
}

func TestWriteVTKSkipsDeadVertices(t *testing.T) {
	m := meshgen.SmallBox()
	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	a.Refine()
	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen() // leaves dead midpoint vertices before compaction
	var buf bytes.Buffer
	if err := WriteVTK(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "POINTS 125 double") {
		t.Error("dead vertices not skipped in VTK export")
	}
}
