// Package sfc implements space-filling-curve key generation for geometric
// mesh partitioning: Morton (Z-order) and Hilbert curves over a 21-bit
// integer lattice per axis (63-bit keys).
//
// A space-filling curve linearizes 3-D space while preserving locality:
// points that are close on the curve are close in space (the converse holds
// approximately, and strictly better for Hilbert than Morton). Sorting
// element centroids by curve key and cutting the sorted sequence into
// weighted chunks therefore yields compact, contiguous partitions in
// O(n log n) — the technique Borrell et al. and Schornbaum & Rüde use to
// partition billions of elements, versus the eigen-solver costs of
// spectral methods.
//
// The package is allocation-free at the key level and safe for concurrent
// use.
package sfc

import (
	"plum/internal/chunk"
	"plum/internal/geom"
)

// Bits is the lattice resolution per axis: coordinates are quantized to
// [0, 2^Bits), and three axes interleave into a 3·Bits = 63-bit key.
const Bits = 21

// maxCoord is the largest representable lattice coordinate, 2^Bits - 1.
const maxCoord = 1<<Bits - 1

// Curve selects a space-filling curve.
type Curve int

// Available curves.
const (
	// Morton is the Z-order curve: bit interleaving, cheapest to compute,
	// good locality except at octant boundaries.
	Morton Curve = iota
	// Hilbert is the Hilbert curve: unit-step continuity (consecutive keys
	// are face-adjacent lattice cells), the best locality of any known
	// curve, at a modestly higher per-key cost.
	Hilbert
)

// String implements fmt.Stringer.
func (c Curve) String() string {
	if c == Hilbert {
		return "hilbert"
	}
	return "morton"
}

// Encode returns the curve key of the lattice cell (x, y, z). Coordinates
// must be < 2^Bits; higher bits are masked off.
func (c Curve) Encode(x, y, z uint32) uint64 {
	if c == Hilbert {
		return HilbertEncode(x, y, z)
	}
	return MortonEncode(x, y, z)
}

// Decode returns the lattice cell of a curve key.
func (c Curve) Decode(key uint64) (x, y, z uint32) {
	if c == Hilbert {
		return HilbertDecode(key)
	}
	return MortonDecode(key)
}

// ---------------------------------------------------------------- Morton

// spread3 distributes the low 21 bits of v so that bit i lands at bit 3i
// (the standard magic-number dilation).
func spread3(v uint64) uint64 {
	v &= maxCoord
	v = (v | v<<32) & 0x001f00000000ffff
	v = (v | v<<16) & 0x001f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 is the inverse of spread3: it gathers every third bit of v into
// the low 21 bits.
func compact3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10c30c30c30c30c3
	v = (v | v>>4) & 0x100f00f00f00f00f
	v = (v | v>>8) & 0x001f0000ff0000ff
	v = (v | v>>16) & 0x001f00000000ffff
	v = (v | v>>32) & maxCoord
	return v
}

// MortonEncode interleaves the low 21 bits of each coordinate into a
// 63-bit Z-order key (x contributes the lowest bit of each triple).
func MortonEncode(x, y, z uint32) uint64 {
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2
}

// MortonDecode inverts MortonEncode.
func MortonDecode(key uint64) (x, y, z uint32) {
	return uint32(compact3(key)), uint32(compact3(key >> 1)), uint32(compact3(key >> 2))
}

// ---------------------------------------------------------------- Hilbert

// HilbertEncode returns the Hilbert-curve index of the lattice cell
// (x, y, z), using Skilling's transpose algorithm (J. Skilling,
// "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
func HilbertEncode(x, y, z uint32) uint64 {
	X := [3]uint32{x & maxCoord, y & maxCoord, z & maxCoord}

	// Inverse undo of the excess work (top bit down to bit 1).
	for q := uint32(1 << (Bits - 1)); q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	var t uint32
	for q := uint32(1 << (Bits - 1)); q > 1; q >>= 1 {
		if X[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
	return transposeToKey(X)
}

// HilbertDecode inverts HilbertEncode.
func HilbertDecode(key uint64) (x, y, z uint32) {
	X := keyToTranspose(key)

	// Gray decode by H ^ (H/2).
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo the excess work (bit 1 up to the top bit).
	for q := uint32(2); q != 1<<Bits; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	return X[0], X[1], X[2]
}

// transposeToKey interleaves the transpose form into a single key, most
// significant bit plane first, axis 0 highest within a plane.
func transposeToKey(X [3]uint32) uint64 {
	var key uint64
	for bit := Bits - 1; bit >= 0; bit-- {
		for i := 0; i < 3; i++ {
			key = key<<1 | uint64(X[i]>>uint(bit)&1)
		}
	}
	return key
}

// keyToTranspose inverts transposeToKey.
func keyToTranspose(key uint64) [3]uint32 {
	var X [3]uint32
	for bit := Bits - 1; bit >= 0; bit-- {
		for i := 0; i < 3; i++ {
			X[i] = X[i]<<1 | uint32(key>>uint(3*bit+2-i)&1)
		}
	}
	return X
}

// ------------------------------------------------------------ quantizer

// Quantizer maps points inside a bounding box onto the integer lattice.
// Each axis is scaled independently so anisotropic domains (like the
// rotor's thin annulus) use the full key resolution.
type Quantizer struct {
	origin geom.Vec3
	scale  geom.Vec3 // lattice cells per unit length, per axis
}

// NewQuantizer returns a quantizer for points inside b. Degenerate axes
// (zero extent) map to lattice coordinate 0.
func NewQuantizer(b geom.AABB) Quantizer {
	q := Quantizer{origin: b.Min}
	sz := b.Size()
	if sz.X > 0 {
		q.scale.X = maxCoord / sz.X
	}
	if sz.Y > 0 {
		q.scale.Y = maxCoord / sz.Y
	}
	if sz.Z > 0 {
		q.scale.Z = maxCoord / sz.Z
	}
	return q
}

// Cell returns the lattice cell containing p. Points outside the box are
// clamped to the lattice boundary.
func (q Quantizer) Cell(p geom.Vec3) (x, y, z uint32) {
	return clampCoord((p.X - q.origin.X) * q.scale.X),
		clampCoord((p.Y - q.origin.Y) * q.scale.Y),
		clampCoord((p.Z - q.origin.Z) * q.scale.Z)
}

func clampCoord(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	if v >= maxCoord {
		return maxCoord
	}
	return uint32(v)
}

// Key returns the curve key of point p under quantizer q.
func (q Quantizer) Key(c Curve, p geom.Vec3) uint64 {
	x, y, z := q.Cell(p)
	return c.Encode(x, y, z)
}

// keysSerialCutoff is the point count below which the chunked worker pool
// costs more than it recovers and KeysWorkers runs serially.
const keysSerialCutoff = 1 << 12

// EffectiveKeyWorkers returns the worker count KeysWorkers actually uses
// for n points under the given knob: 1 when the serial path wins. Cost
// models must divide key-generation time by this figure, not by the raw
// knob.
func EffectiveKeyWorkers(n, workers int) int {
	w := chunk.Workers(workers)
	if w <= 1 || n < keysSerialCutoff {
		return 1
	}
	return w
}

// Keys computes the curve keys of a point set, quantized over the set's
// own bounding box. It is the one-call entry point used by the
// partitioner; key generation parallelizes over GOMAXPROCS workers (see
// KeysWorkers).
func Keys(c Curve, pts []geom.Vec3) []uint64 {
	return KeysWorkers(c, pts, 0)
}

// KeysWorkers is Keys with an explicit worker knob (≤ 0 = GOMAXPROCS).
// The output is byte-identical at every worker count: the bounding box is
// an exact min/max reduction (commutative and associative in float64, no
// rounding), and each key depends only on its own point and the box.
func KeysWorkers(c Curve, pts []geom.Vec3, workers int) []uint64 {
	n := len(pts)
	w := EffectiveKeyWorkers(n, workers)
	if w <= 1 {
		b := geom.EmptyAABB()
		for _, p := range pts {
			b = b.Extend(p)
		}
		q := NewQuantizer(b)
		keys := make([]uint64, n)
		for i, p := range pts {
			keys[i] = q.Key(c, p)
		}
		return keys
	}

	// Chunked min/max reduction for the bounding box.
	boxes := make([]geom.AABB, chunk.Count(n, w))
	chunk.For(n, w, func(c, lo, hi int) {
		b := geom.EmptyAABB()
		for _, p := range pts[lo:hi] {
			b = b.Extend(p)
		}
		boxes[c] = b
	})
	b := geom.EmptyAABB()
	for _, cb := range boxes {
		b = b.Union(cb)
	}

	// Chunked key fill: every write is to a distinct index.
	q := NewQuantizer(b)
	keys := make([]uint64, n)
	chunk.For(n, w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = q.Key(c, pts[i])
		}
	})
	return keys
}
