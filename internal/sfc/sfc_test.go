package sfc

import (
	"math/rand"
	"testing"

	"plum/internal/geom"
)

func TestMortonKnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		key     uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{maxCoord, maxCoord, maxCoord, 1<<63 - 1},
	}
	for _, c := range cases {
		if got := MortonEncode(c.x, c.y, c.z); got != c.key {
			t.Errorf("MortonEncode(%d,%d,%d) = %#x, want %#x", c.x, c.y, c.z, got, c.key)
		}
		x, y, z := MortonDecode(c.key)
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("MortonDecode(%#x) = (%d,%d,%d), want (%d,%d,%d)", c.key, x, y, z, c.x, c.y, c.z)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []Curve{Morton, Hilbert} {
		for i := 0; i < 10000; i++ {
			x := rng.Uint32() & maxCoord
			y := rng.Uint32() & maxCoord
			z := rng.Uint32() & maxCoord
			gx, gy, gz := c.Decode(c.Encode(x, y, z))
			if gx != x || gy != y || gz != z {
				t.Fatalf("%v round trip (%d,%d,%d) -> (%d,%d,%d)", c, x, y, z, gx, gy, gz)
			}
		}
	}
}

// TestHilbertUnitSteps verifies the defining property of the Hilbert
// curve: consecutive indices are face-adjacent lattice cells (exactly one
// coordinate changes, by exactly one).
func TestHilbertUnitSteps(t *testing.T) {
	px, py, pz := HilbertDecode(0)
	for key := uint64(1); key < 1<<12; key++ {
		x, y, z := HilbertDecode(key)
		d := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if d != 1 {
			t.Fatalf("keys %d->%d jump by %d: (%d,%d,%d)->(%d,%d,%d)",
				key-1, key, d, px, py, pz, x, y, z)
		}
		px, py, pz = x, y, z
	}
}

// TestHilbertIsPermutation checks that on a small sub-lattice every cell
// is visited exactly once (encode is injective, decode its inverse).
func TestHilbertIsPermutation(t *testing.T) {
	const n = 16 // 16^3 cells
	seen := make(map[uint64][3]uint32, n*n*n)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				k := HilbertEncode(x, y, z)
				if prev, dup := seen[k]; dup {
					t.Fatalf("key collision: (%d,%d,%d) and %v -> %#x", x, y, z, prev, k)
				}
				seen[k] = [3]uint32{x, y, z}
			}
		}
	}
}

func TestMortonMasksHighBits(t *testing.T) {
	// Bits above the lattice resolution must not corrupt the key.
	if MortonEncode(1<<Bits|5, 3, 0) != MortonEncode(5, 3, 0) {
		t.Error("high bits leaked into the Morton key")
	}
	if HilbertEncode(1<<Bits|5, 3, 0) != HilbertEncode(5, 3, 0) {
		t.Error("high bits leaked into the Hilbert key")
	}
}

func TestQuantizer(t *testing.T) {
	b := geom.NewAABB(geom.Vec3{X: -1, Y: 0, Z: 2}, geom.Vec3{X: 1, Y: 4, Z: 3})
	q := NewQuantizer(b)
	x, y, z := q.Cell(b.Min)
	if x != 0 || y != 0 || z != 0 {
		t.Errorf("min corner -> (%d,%d,%d), want origin", x, y, z)
	}
	x, y, z = q.Cell(b.Max)
	if x != maxCoord || y != maxCoord || z != maxCoord {
		t.Errorf("max corner -> (%d,%d,%d), want lattice max", x, y, z)
	}
	// Outside points clamp rather than wrap.
	x, _, _ = q.Cell(geom.Vec3{X: 99, Y: -99, Z: 2.5})
	if x != maxCoord {
		t.Errorf("overflow clamped to %d, want %d", x, maxCoord)
	}
}

func TestQuantizerDegenerateAxis(t *testing.T) {
	// A planar point set (zero Z extent) must still produce usable keys.
	b := geom.NewAABB(geom.Vec3{}, geom.Vec3{X: 1, Y: 1})
	q := NewQuantizer(b)
	_, _, z := q.Cell(geom.Vec3{X: 0.5, Y: 0.5})
	if z != 0 {
		t.Errorf("degenerate axis -> %d, want 0", z)
	}
}

// TestKeysLocality checks the property partitioning relies on: sorting by
// key groups spatially close points. Two clusters far apart must occupy
// disjoint key ranges.
func TestKeysLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []geom.Vec3
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Vec3{X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1, Z: rng.Float64() * 0.1})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Vec3{X: 10 + rng.Float64()*0.1, Y: 10 + rng.Float64()*0.1, Z: 10 + rng.Float64()*0.1})
	}
	for _, c := range []Curve{Morton, Hilbert} {
		keys := Keys(c, pts)
		var loMax, hiMin uint64 = 0, 1 << 63
		for i, k := range keys {
			if i < 100 && k > loMax {
				loMax = k
			}
			if i >= 100 && k < hiMin {
				hiMin = k
			}
		}
		if loMax >= hiMin {
			t.Errorf("%v: clusters overlap in key space (%#x >= %#x)", c, loMax, hiMin)
		}
	}
}

func TestCurveString(t *testing.T) {
	if Morton.String() != "morton" || Hilbert.String() != "hilbert" {
		t.Error("curve names wrong")
	}
}

// TestKeysWorkersParity pins the parallel-pipeline contract: KeysWorkers
// must be byte-identical to the serial path at every worker count, above
// and below the serial cutoff.
func TestKeysWorkersParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 100, keysSerialCutoff - 1, keysSerialCutoff, keysSerialCutoff * 3} {
		pts := make([]geom.Vec3, n)
		for i := range pts {
			pts[i] = geom.Vec3{
				X: rng.Float64()*20 - 10,
				Y: rng.Float64() * 0.01, // anisotropic: exercises per-axis scaling
				Z: rng.NormFloat64(),
			}
		}
		for _, c := range []Curve{Morton, Hilbert} {
			want := KeysWorkers(c, pts, 1)
			for _, w := range []int{0, 2, 3, 5, 8, 64} {
				got := KeysWorkers(c, pts, w)
				if len(got) != len(want) {
					t.Fatalf("%v n=%d workers=%d: length %d != %d", c, n, w, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v n=%d workers=%d: key %d differs: %#x != %#x",
							c, n, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// FuzzHilbertRoundTrip fuzzes the encode↔decode round trip of the Hilbert
// kernel over the whole lattice.
func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(1), uint32(2), uint32(3))
	f.Add(uint32(maxCoord), uint32(maxCoord), uint32(maxCoord))
	f.Add(uint32(1<<20), uint32(1<<10), uint32(1))
	f.Fuzz(func(t *testing.T, x, y, z uint32) {
		x, y, z = x&maxCoord, y&maxCoord, z&maxCoord
		key := HilbertEncode(x, y, z)
		if key >= 1<<63 {
			t.Fatalf("key %#x exceeds 63 bits", key)
		}
		gx, gy, gz := HilbertDecode(key)
		if gx != x || gy != y || gz != z {
			t.Fatalf("round trip (%d,%d,%d) -> %#x -> (%d,%d,%d)", x, y, z, key, gx, gy, gz)
		}
	})
}

// FuzzMortonRoundTrip fuzzes the Morton kernel the same way, and checks
// the monotone-per-axis property (growing one coordinate grows the key).
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(maxCoord), uint32(0), uint32(maxCoord))
	f.Fuzz(func(t *testing.T, x, y, z uint32) {
		x, y, z = x&maxCoord, y&maxCoord, z&maxCoord
		key := MortonEncode(x, y, z)
		gx, gy, gz := MortonDecode(key)
		if gx != x || gy != y || gz != z {
			t.Fatalf("round trip (%d,%d,%d) -> %#x -> (%d,%d,%d)", x, y, z, key, gx, gy, gz)
		}
		if x < maxCoord && MortonEncode(x+1, y, z) <= key {
			t.Fatalf("key not monotone in x at (%d,%d,%d)", x, y, z)
		}
	})
}
