package par

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/propagate"
)

// runAdaptFaultPass is runAdaptPass with a fault plan armed on the Dist:
// the adaption notification exchanges draw modeled faults and the passes
// report the retry traffic in AdaptTimings.
func runAdaptFaultPass(t testing.TB, p, w int, prop propagate.Propagator, plan *fault.Plan, cycle int) adaptRun {
	t.Helper()
	d, a := adaptFixture(t, p, w, prop)
	d.Faults = plan
	d.Retry = fault.Budget(3)
	d.FaultCycle = cycle
	var out adaptRun
	a.MarkRandom(0.25, adapt.MarkRefine, 97)
	out.RefineSt, out.RefineTm = d.ParallelRefine(a, machine.SP2())
	a.MarkRandom(0.30, adapt.MarkCoarsen, 43)
	out.CoarsenSt, out.CoarsenTm = d.ParallelCoarsen(a, machine.SP2())
	out.Elems = d.M.NumActiveElems()
	out.Edges = d.M.NumActiveEdges()
	return out
}

// stripFaultTimes zeroes the timing fields the modeled retry charges flow
// into, plus the retry counters themselves, so a faulted pass can be
// compared structurally against the fault-free reference.
func stripFaultTimes(tm AdaptTimings) AdaptTimings {
	tm.Target, tm.Propagate, tm.Execute, tm.Classify, tm.Total = 0, 0, 0, 0, 0
	tm.Retries, tm.Backoff, tm.Exhausted = 0, 0, 0
	tm.Ops.Crit, tm.Ops.MemCrit = 0, 0
	return tm
}

// TestAdaptFaultCharges is the adaption half of the fault determinism
// contract: a fault plan never changes the marks, the mesh, or the
// traffic counts — faults on the notification exchanges are modeled, the
// notifications themselves always arrive — it only adds retry charges to
// the modeled clock and leaves a retry trace. And the whole faulted
// timing, retry traffic included, must be byte-identical at every worker
// count.
func TestAdaptFaultCharges(t *testing.T) {
	const p = 8
	plan := &fault.Plan{Seed: 2026, Rate: 0.3}
	for _, name := range propagate.Names {
		t.Run(name, func(t *testing.T) {
			mk := func(w int) propagate.Propagator {
				prop, _ := propagate.ByName(name, w)
				return prop
			}
			clean := runAdaptPass(t, p, 1, mk(1))
			var first adaptRun
			for i, w := range []int{1, 2, 4} {
				got := runAdaptFaultPass(t, p, w, mk(w), plan, 1)
				if got.RefineSt != clean.RefineSt || got.CoarsenSt != clean.CoarsenSt ||
					got.Elems != clean.Elems || got.Edges != clean.Edges {
					t.Fatalf("workers=%d: fault plan changed the adaption result", w)
				}
				if got.RefineTm.Retries == 0 || got.RefineTm.Backoff == 0 {
					t.Errorf("workers=%d: refine left no retry trace: %+v", w, got.RefineTm)
				}
				if got.CoarsenTm.Backoff == 0 {
					t.Errorf("workers=%d: coarsen left no retry trace: %+v", w, got.CoarsenTm)
				}
				if got.RefineTm.Total <= clean.RefineTm.Total {
					t.Errorf("workers=%d: retry charges missing from refine clock: %g vs %g",
						w, got.RefineTm.Total, clean.RefineTm.Total)
				}
				if !reflect.DeepEqual(stripFaultTimes(got.RefineTm), stripFaultTimes(clean.RefineTm)) {
					t.Errorf("workers=%d: faults changed refine beyond times:\n got %+v\nwant %+v",
						w, stripFaultTimes(got.RefineTm), stripFaultTimes(clean.RefineTm))
				}
				if i == 0 {
					first = got
					continue
				}
				a := got
				a.RefineTm.Ops.Crit, a.RefineTm.Ops.MemCrit = first.RefineTm.Ops.Crit, first.RefineTm.Ops.MemCrit
				a.CoarsenTm.Ops.Crit, a.CoarsenTm.Ops.MemCrit = first.CoarsenTm.Ops.Crit, first.CoarsenTm.Ops.MemCrit
				if !reflect.DeepEqual(a, first) {
					t.Errorf("workers=%d: faulted adaption not worker-invariant:\n got %+v\nwant %+v",
						w, a, first)
				}
			}
		})
	}
}

// TestAdaptZeroRatePlanIsClean pins byte parity at the adaption level: a
// present-but-empty plan must disarm the backend and reproduce the
// fault-free timings exactly, and two different fault cycles over the
// same plan must draw different schedules.
func TestAdaptZeroRatePlanIsClean(t *testing.T) {
	const p = 8
	prop := func() propagate.Propagator { pr, _ := propagate.ByName("bulksync", 2); return pr }
	clean := runAdaptPass(t, p, 2, prop())
	zero := runAdaptFaultPass(t, p, 2, prop(), &fault.Plan{Seed: 1, Rate: 0}, 1)
	if !reflect.DeepEqual(zero, clean) {
		t.Errorf("zero-rate plan changed the adaption:\n got %+v\nwant %+v", zero, clean)
	}

	plan := &fault.Plan{Seed: 11, Rate: 0.4}
	c1 := runAdaptFaultPass(t, p, 2, prop(), plan, 1)
	c2 := runAdaptFaultPass(t, p, 2, prop(), plan, 2)
	if c1.RefineTm.Retries == c2.RefineTm.Retries && c1.RefineTm.Backoff == c2.RefineTm.Backoff &&
		c1.CoarsenTm.Backoff == c2.CoarsenTm.Backoff {
		t.Error("two fault cycles drew identical retry schedules")
	}
}
