package par

import (
	"reflect"
	"testing"

	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// TestRemapStreamingParity is the determinism contract of the streaming
// executor: at every worker count its RemapResult — payload conservation,
// owner array, modeled float times, op accounting — must be byte-identical
// to the bulk-synchronous path. Only PeakWords may (and must) differ: the
// streaming peak is the largest window, strictly below the bulk path's
// whole-buffer total on this multi-flow fixture.
func TestRemapStreamingParity(t *testing.T) {
	const p = 8
	refD, newOwner := bigFixture(t, p)
	refD.Workers = 1
	refRes, err := refD.ExecuteRemap(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if refRes.PeakWords != refRes.Moved*recWords {
		t.Fatalf("bulk peak %d != total payload %d", refRes.PeakWords, refRes.Moved*recWords)
	}

	for _, w := range []int{1, 2, 4, 8} {
		d, _ := bigFixture(t, p)
		d.Workers = w
		res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
			t.Fatalf("workers=%d: streaming owner array diverges from bulk", w)
		}
		if res.PeakWords <= 0 || res.PeakWords >= res.Moved*recWords {
			t.Errorf("workers=%d: streaming peak %d not strictly below total %d",
				w, res.PeakWords, res.Moved*recWords)
		}
		// Everything except the peak and the worker-dependent critical
		// shares must be bit-identical to the workers=1 bulk reference.
		res.PeakWords = refRes.PeakWords
		res.Ops.Crit, res.Ops.MemCrit = refRes.Ops.Crit, refRes.Ops.MemCrit
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d: streaming RemapResult diverges:\n got %+v\nwant %+v", w, res, refRes)
		}
		// And the prediction contract holds for the streaming path too.
		d2, _ := bigFixture(t, p)
		d2.Workers = w
		res2, err := d2.ExecuteRemapStreaming(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		if pred := PredictRemapOps(len(d2.M.Elems), res2.Moved, res2.Sets, p, w); pred != res2.Ops {
			t.Errorf("workers=%d: predicted %+v, streaming executed %+v", w, pred, res2.Ops)
		}
	}
}

// TestStreamingWindowBudget pins the window planner: an explicit tiny
// budget forces many windows without changing any result byte, and the
// peak never exceeds max(budget, largest flow).
func TestStreamingWindowBudget(t *testing.T) {
	const p = 8
	refD, newOwner := bigFixture(t, p)
	refD.Workers = 4
	refRes, err := refD.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}

	d, _ := bigFixture(t, p)
	d.Workers = 4
	d.RemapWindow = 64 // far below any realistic flow: one flow per window
	// The largest flow is the atomic commit unit, so the peak is exactly
	// the largest single flow under a sub-flow budget (indexed before the
	// execution flips the ownership).
	fi := collectFlowIndex(d.M, d.rootDual, d.Owners(), newOwner, p, 1)
	res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
		t.Fatal("tiny window budget changed the owner array")
	}
	var largest int64
	for f := 0; f < p*p; f++ {
		largest = max(largest, fi.flowStart[f+1]-fi.flowStart[f])
	}
	if res.PeakWords != largest*recWords {
		t.Errorf("sub-flow budget peak %d, want largest flow %d", res.PeakWords, largest*recWords)
	}
	if res.PeakWords >= refRes.PeakWords {
		t.Errorf("tiny budget peak %d not below adaptive peak %d", res.PeakWords, refRes.PeakWords)
	}
	res.PeakWords = refRes.PeakWords
	if !reflect.DeepEqual(res, refRes) {
		t.Errorf("window budget changed the result:\n got %+v\nwant %+v", res, refRes)
	}
}

// TestStreamingSerialFallback mirrors the bulk serial-fallback contract:
// below SerialCutoff elements the streaming executor reports Crit ==
// Total, and a single-window plan degenerates to the bulk peak.
func TestStreamingSerialFallback(t *testing.T) {
	m := meshgen.SmallBox()
	g := dual.Build(m)
	d := NewDist(m, 4, partition.Partition(g, 4, partition.MethodGraphGrow))
	d.Workers = 8
	newOwner := d.Owners()
	for v := range newOwner {
		newOwner[v] = (newOwner[v] + 1) % 4
	}
	res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops.Crit != res.Ops.Total || res.Ops.MemCrit != res.Ops.MemTotal {
		t.Errorf("serial fallback must report Crit == Total: %+v", res.Ops)
	}
	if res.PeakWords >= res.Moved*recWords && res.Sets > 1 {
		t.Errorf("multi-flow peak %d not below total %d", res.PeakWords, res.Moved*recWords)
	}

	// A budget covering everything yields exactly one window whose peak
	// is the bulk total.
	d.SetOwners(partition.Partition(g, 4, partition.MethodGraphGrow))
	d.RemapWindow = res.Moved * recWords
	one, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if one.PeakWords != one.Moved*recWords {
		t.Errorf("whole-payload budget peak %d, want total %d", one.PeakWords, one.Moved*recWords)
	}
}
