package par

import (
	"fmt"

	"plum/internal/comm"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/obs"
)

// The streaming remap executor. The bulk-synchronous ExecuteRemap
// materializes every migrating element's record at once (pack everything,
// exchange everything, rebuild everything), so its payload buffer peaks at
// Moved × RecordWords. ExecuteRemapStreaming interleaves pack / exchange /
// verify per window of flows instead, committing windows in the canonical
// src-major flow order the CSR scatter already defines. Because the window
// layout is computed from the flow offsets alone — never from worker
// scheduling — the payload bytes each rank sends, the owner array, the
// modeled times, and the op accounting are byte-identical to the bulk
// path at any worker count; only PeakWords differs, and that is the
// point: it drops from the total to the largest in-flight window.

// DefaultWindowFraction divides the total payload volume to derive the
// adaptive window budget: with no explicit Dist.RemapWindow the streaming
// executor targets ⌈total/8⌉ record words per window (floored at the
// largest single flow, which can never be split), giving roughly eight
// in-flight windows and a peak strictly below the total whenever more
// than one flow moves.
const DefaultWindowFraction = 8

// remapWindow is one streaming commit unit: the contiguous canonical flow
// range [f0, f1).
type remapWindow struct{ f0, f1 int }

// planWindows greedily groups consecutive flows into windows of at most
// budget record words (a single flow larger than the budget gets a window
// of its own — flows are the atomic commit unit). The plan depends only
// on the flow offsets and the budget, so it is identical at every worker
// count.
func planWindows(flowStart []int64, budget int64) []remapWindow {
	nf := len(flowStart) - 1
	var wins []remapWindow
	start := 0
	var cur int64
	for f := 0; f < nf; f++ {
		w := (flowStart[f+1] - flowStart[f]) * recWords
		if cur > 0 && cur+w > budget {
			wins = append(wins, remapWindow{start, f})
			start, cur = f, 0
		}
		cur += w
	}
	return append(wins, remapWindow{start, nf})
}

// windowBudget resolves the streaming window budget in record words: the
// explicit override when set, else the adaptive default — the larger of
// the biggest single flow and ⌈total/DefaultWindowFraction⌉.
func windowBudget(flowStart []int64, override int64) int64 {
	if override > 0 {
		return override
	}
	nf := len(flowStart) - 1
	var largest int64
	for f := 0; f < nf; f++ {
		largest = max(largest, flowStart[f+1]-flowStart[f])
	}
	total := flowStart[nf] * recWords
	return max(largest*recWords, (total+DefaultWindowFraction-1)/DefaultWindowFraction)
}

// ExecuteRemapStreaming migrates element trees whose dual vertices change
// owner under newOwner, like ExecuteRemap, but streams the payload: flows
// are packed, exchanged over the comm runtime, and verified one window at
// a time in canonical src-major order, with the window buffer reused
// across windows. Peak payload memory is the largest window
// (RemapResult.PeakWords) instead of the whole record buffer; everything
// else in the result — payload bytes on the wire, owner array, modeled
// times, op accounting — is byte-identical to the bulk-synchronous path
// at any worker count. The window budget comes from Dist.RemapWindow
// (≤ 0 = adaptive, see windowBudget).
//
// With Dist.Faults enabled the stream runs transactionally: the owner
// array is checkpointed up front, each verified window immediately commits
// its flows' ownership, a window whose reliable transfers failed is
// re-exchanged up to Retry.WindowRetries times, and exhausted retries (or
// structural failures) roll every committed window back to the checkpoint
// and return a *RemapError with RolledBack set.
func (d *Dist) ExecuteRemapStreaming(newOwner []int32, mdl machine.Model) (RemapResult, error) {
	if len(newOwner) != len(d.owner) {
		return RemapResult{}, fmt.Errorf("par: newOwner has %d entries, want %d", len(newOwner), len(d.owner))
	}
	m := d.M
	p := d.P
	ew := EffectiveWorkers(len(m.Elems), d.Workers)
	fi := collectFlowIndex(m, d.rootDual, d.owner, newOwner, p, ew)

	res := RemapResult{
		Moved: fi.moved,
		Sets:  fi.sets,
		Ops:   PredictRemapOps(len(m.Elems), fi.moved, fi.sets, p, d.Workers),
	}
	faulty := d.Faults.Enabled()
	retry := d.Retry.Normalize()

	// The transaction checkpoint: with faults on, each verified window
	// commits its ownership immediately, so a mid-stream abort must be
	// able to restore the pre-remap state.
	var checkpoint []int32
	if faulty {
		checkpoint = append([]int32(nil), d.owner...)
	}
	rollback := func(e *RemapError) (RemapResult, error) {
		if checkpoint != nil {
			copy(d.owner, checkpoint)
		}
		return RemapResult{}, e
	}

	// Stream the windows: pack into the reused buffer, exchange the
	// window's flows for real, and verify each received flow against the
	// plan before the next window is admitted — so no more than one
	// window of payload ever exists on the host. recvCount accumulates
	// per-rank across windows; each goroutine rank touches only its own
	// slot and the Runs are sequential, so there is no contention.
	wins := planWindows(fi.flowStart, windowBudget(fi.flowStart, d.RemapWindow))
	w := comm.NewWorld(p)
	w.SetDeadline(d.StageDeadline)
	var crash []bool
	if faulty {
		w.SetFaults(d.Faults.Hook(fault.StageRemap, d.FaultCycle), retry.MsgAttempts)
		// Crash fates are stage-scoped, drawn once per balance cycle: the
		// fated ranks die at the first window's boundary, before anything
		// has committed, and the whole stream rolls back.
		crash = d.crashMask(d.crashedRanks())
	}
	recvCount := make([]int64, p)
	var buf []int64
	for wi, win := range wins {
		base := fi.flowStart[win.f0]
		words := (fi.flowStart[win.f1] - base) * recWords
		res.PeakWords = max(res.PeakWords, words)
		if int64(cap(buf)) < words {
			buf = make([]int64, words)
		}
		bufW := buf[:words]
		fi.packRange(m, d.rootDual, win.f0, win.f1, bufW, d.Workers)
		// The window's wire records addressed by canonical flow id, for
		// whichever exchange schedule moves them. Per-window rebuild
		// verification is plan-exact on every path: a received flow must
		// match the plan's record count, so torn or misrouted windows fail
		// here, not at the final conservation check.
		rec := func(f int) []int64 {
			lo := (fi.flowStart[f] - base) * recWords
			hi := (fi.flowStart[f+1] - base) * recWords
			return bufW[lo:hi]
		}
		plan := &winPlan{f0: win.f0, f1: win.f1, p: p, flowStart: fi.flowStart, rec: rec}
		if !faulty {
			if err := exchangeWindow(w, d.Exchange, mdl.Topo, plan, false, recvCount, nil, nil); err != nil {
				return RemapResult{}, remapErrFrom(err, wi, 1)
			}
			if d.Trace != nil {
				d.Trace.Event("info", "remap.window",
					obs.Int("window", int64(wi)), obs.Int("flows", int64(win.f1-win.f0)), obs.Int("words", words))
			}
			continue
		}

		// Transactional window: exchange over the reliable path, retry on
		// failed transfers, commit ownership on success. Only the first
		// window carries the crash mask — a crash poisons the world and
		// aborts the stream, so later windows never run.
		winCrash := crash
		if wi > 0 {
			winCrash = nil
		}
		tries := 0
		for {
			tries++
			winRecv := make([]int64, p)
			failCount := make([]int64, p)
			if err := exchangeWindow(w, d.Exchange, mdl.Topo, plan, true, winRecv, failCount, winCrash); err != nil {
				return rollback(remapErrFrom(err, wi, tries))
			}
			var nfail int64
			for _, f := range failCount {
				nfail += f
			}
			if nfail == 0 {
				for r, n := range winRecv {
					recvCount[r] += n
				}
				break
			}
			if tries > retry.WindowRetries {
				return rollback(&RemapError{Failure: FailTransfer, Window: wi, Tries: tries, RolledBack: true,
					Detail: fmt.Sprintf("%d transfers failed after %d attempts per message", nfail, retry.MsgAttempts)})
			}
			res.WindowRetries++
			if d.Trace != nil {
				d.Trace.Event("warn", "remap.window.retry",
					obs.Int("window", int64(wi)), obs.Int("failed", nfail), obs.Int("try", int64(tries)))
			}
		}
		// Commit the window: every element in its flows now belongs to the
		// flow's destination rank. Writes are idempotent per dual vertex
		// and cover exactly the vertices whose owner changes, so after the
		// last window the ownership map equals newOwner.
		for f := win.f0; f < win.f1; f++ {
			dst := int32(f % p)
			for _, ei := range fi.elems[fi.flowStart[f]:fi.flowStart[f+1]] {
				d.owner[d.rootDual[m.Elems[ei].Root]] = dst
			}
		}
		if d.Trace != nil {
			// The serial window loop is canonical order by construction:
			// one commit event per transactional window, in plan order.
			d.Trace.Event("info", "remap.window.commit",
				obs.Int("window", int64(wi)), obs.Int("flows", int64(win.f1-win.f0)), obs.Int("words", words))
		}
	}
	var recvTotal int64
	for _, n := range recvCount {
		recvTotal += n
	}
	if recvTotal != fi.moved {
		return rollback(&RemapError{Failure: FailConservation, Window: -1, Tries: 1, RolledBack: true,
			Detail: fmt.Sprintf("moved %d elements but received %d", fi.moved, recvTotal)})
	}

	var rc *retryCharges
	if faulty {
		for _, s := range w.RankStats() {
			res.Retries += s.Retries
			res.RetryWords += s.RetryWords
		}
		resends, backoff := w.RetryCounters()
		rc = &retryCharges{resends: resends, backoff: backoff}
	}
	d.accountRemap(fi.flowStart, mdl, &res, rc)

	if !faulty {
		copy(d.owner, newOwner)
	}
	return res, nil
}
