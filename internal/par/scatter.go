package par

// The CSR flow scatter behind ExecuteRemap: migrating element records are
// laid out in one flat buffer, grouped by (src, dst) flow in canonical
// src-major order, with the same two-pass count/prefix-sum/fill structure
// as internal/psort's bucket scatter. Pass 1 counts each worker chunk's
// records per flow; a serial prefix sum lays the flows out contiguously
// (chunks in input order within each flow); pass 2 fills the buffer in
// parallel through per-(chunk, flow) cursors, so the hot loop allocates
// nothing and no two workers ever write the same word. The layout depends
// only on the element order — never on the chunking — so the buffer is
// byte-identical at every worker count.

import (
	"plum/internal/chunk"
	"plum/internal/mesh"
)

// recWords is the size of one migrating element record in the real
// payload exchange: (dualVertex, v0..v3, level).
const recWords = 6

// RecordWords is the exported size of one migrating element record, in
// words — Moved × RecordWords is the total payload-buffer volume a remap
// would materialize, the figure RemapResult.PeakWords is bounded by (and,
// on the streaming executor, strictly below on multi-flow workloads).
const RecordWords = recWords

// SerialCutoff is the object count below which the chunked remap scatter
// and the shared-object scans (Init, RankLoads) fall back to a serial
// loop: under ~8k objects the chunk bookkeeping costs more than the
// parallelism recovers. The serial path must be charged serially — cost
// reports below the cutoff have Crit == Total.
const SerialCutoff = 1 << 13

// EffectiveWorkers resolves the worker count a chunked scan actually runs
// with: the knob (≤ 0 = GOMAXPROCS), clamped to 1 below SerialCutoff
// objects and to n above it. Cost models must divide the parallel phases
// by this figure, not by the raw knob.
func EffectiveWorkers(n, workers int) int {
	return chunk.EffectiveWorkers(n, workers, SerialCutoff)
}

// flowPlan is one remap execution's CSR scatter: every migrating
// element's record in one flat buffer, grouped by flow in canonical
// (src, dst) order, ascending element id within a flow.
type flowPlan struct {
	// recs holds moved × recWords payload words.
	recs []int64
	// flowStart has p·p+1 entries of record (not word) offsets; flow
	// f = src·p + dst owns records [flowStart[f], flowStart[f+1]).
	// Diagonal flows (src == dst) are always empty.
	flowStart []int64
	// moved is the total record count; sets the number of nonempty flows.
	moved int64
	sets  int
}

// flowRecs returns flow f's slice of the record buffer (possibly empty).
func (pl *flowPlan) flowRecs(f int) []int64 {
	return pl.recs[pl.flowStart[f]*recWords : pl.flowStart[f+1]*recWords]
}

// flowIndex is the payload-free half of the CSR scatter: the migrating
// elements' slab indices grouped by flow in canonical (src, dst) order,
// ascending element id within a flow. It is an eighth the size of the
// record buffer (one int32 per element instead of recWords int64), which
// is what lets the streaming executor bound payload memory to one window
// while still packing every flow's records in the canonical order.
type flowIndex struct {
	// elems holds the moved elements' slab indices, grouped by flow.
	elems []int32
	// flowStart has p·p+1 entries of record offsets; flow f = src·p + dst
	// owns indices [flowStart[f], flowStart[f+1]). Diagonal flows
	// (src == dst) are always empty.
	flowStart []int64
	// moved is the total record count; sets the number of nonempty flows.
	moved int64
	sets  int
}

// collectFlowIndex builds the CSR flow index for a remap from owner to
// newOwner over p ranks with ew workers. An element migrates when it is
// live, its root is a dual vertex, and that vertex changes owner; its
// whole refinement tree moves with it (the paper's Wremap rationale),
// which is why the scan walks the element slab rather than the dual
// vertices.
func collectFlowIndex(m *mesh.Mesh, rootDual, owner, newOwner []int32, p, ew int) flowIndex {
	n := len(m.Elems)
	nf := p * p
	// flowOf classifies element i, returning a negative value for
	// elements that stay put. It is the shared hot loop of both passes.
	flowOf := func(i int) int {
		t := &m.Elems[i]
		if t.Dead {
			return -1
		}
		dv := rootDual[t.Root]
		if dv < 0 {
			return -1
		}
		src, dst := owner[dv], newOwner[dv]
		if src == dst {
			return -1
		}
		return int(src)*p + int(dst)
	}

	// Pass 1 — per-chunk, per-flow record counts.
	nc := chunk.Count(n, ew)
	counts := make([][]int32, nc)
	chunk.For(n, ew, func(c, lo, hi int) {
		cnt := make([]int32, nf)
		for i := lo; i < hi; i++ {
			if f := flowOf(i); f >= 0 {
				cnt[f]++
			}
		}
		counts[c] = cnt
	})

	// Prefix sum — flows laid out in canonical order, chunks in input
	// order within each flow, so concatenation reproduces the global
	// element order regardless of the chunk count.
	fi := flowIndex{flowStart: make([]int64, nf+1)}
	cursor := make([][]int64, nc)
	for c := range cursor {
		cursor[c] = make([]int64, nf)
	}
	var pos int64
	for f := 0; f < nf; f++ {
		fi.flowStart[f] = pos
		for c := 0; c < nc; c++ {
			cursor[c][f] = pos
			pos += int64(counts[c][f])
		}
		if pos > fi.flowStart[f] {
			fi.sets++
		}
	}
	fi.flowStart[nf] = pos
	fi.moved = pos

	// Pass 2 — parallel index fill. Every (chunk, flow) region is
	// disjoint, so the scatter needs no locks and allocates nothing per
	// element.
	fi.elems = make([]int32, pos)
	chunk.For(n, ew, func(c, lo, hi int) {
		cur := cursor[c]
		for i := lo; i < hi; i++ {
			f := flowOf(i)
			if f < 0 {
				continue
			}
			fi.elems[cur[f]] = int32(i)
			cur[f]++
		}
	})
	return fi
}

// packRange packs the records of flows [f0, f1) into buf, which must hold
// exactly the range's record words. Records are contiguous across the
// range in canonical order, and each one is written independently from
// its slab index, so the fill parallelizes over records with no flow
// bookkeeping and the buffer content never depends on the chunking.
func (fi *flowIndex) packRange(m *mesh.Mesh, rootDual []int32, f0, f1 int, buf []int64, workers int) {
	base := fi.flowStart[f0]
	n := int(fi.flowStart[f1] - base)
	if int64(len(buf)) != int64(n)*recWords {
		panic("par: packRange buffer size mismatch")
	}
	chunk.For(n, EffectiveWorkers(n, workers), func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			t := &m.Elems[fi.elems[base+int64(r)]]
			o := r * recWords
			buf[o+0] = int64(rootDual[t.Root])
			buf[o+1] = int64(t.V[0])
			buf[o+2] = int64(t.V[1])
			buf[o+3] = int64(t.V[2])
			buf[o+4] = int64(t.V[3])
			buf[o+5] = int64(t.Level)
		}
	})
}

// collectFlows builds the full CSR scatter — index plus the complete
// record buffer — for the bulk-synchronous executor. The streaming
// executor uses collectFlowIndex directly and packs one window at a time.
func collectFlows(m *mesh.Mesh, rootDual, owner, newOwner []int32, p, ew int) flowPlan {
	fi := collectFlowIndex(m, rootDual, owner, newOwner, p, ew)
	pl := flowPlan{
		recs:      make([]int64, fi.moved*recWords),
		flowStart: fi.flowStart,
		moved:     fi.moved,
		sets:      fi.sets,
	}
	fi.packRange(m, rootDual, 0, p*p, pl.recs, ew)
	return pl
}

// PredictRemapOps returns the op accounting ExecuteRemap reports for a
// remap of moved element records in sets flows over an nElems-entry
// element slab on p ranks at the given worker knob. The quantities are
// exactly the cost model's C (elements moved, remap.MoveStats' first
// return) and N (element sets, its second), so the framework can charge
// the scatter work to the acceptance rule's cost side before deciding
// whether to execute the remap; an executed remap then reports the same
// figures in RemapResult.Ops.
func PredictRemapOps(nElems int, moved int64, sets, p, workers int) Ops {
	ew := EffectiveWorkers(nElems, workers)
	var o Ops
	// Pass 1: the chunked count scan streams the element slab
	// (compute-bound); the per-chunk flow tables fold into the workers'
	// scans, so Total is identical at every worker count.
	o.AddParallel(int64(nElems), ew)
	// Prefix-sum layout over the p² flow table plus per-flow message
	// bookkeeping: serial, compute-bound.
	o.AddSerial(int64(p*p) + int64(sets))
	// Pass 2: the parallel record fill — scatter writes, memory-bound.
	o.AddParallelMem(moved*recWords, ew)
	// Unpack side: draining and verifying the received records touches
	// the same volume once more, memory-bound.
	o.AddParallelMem(moved*recWords, ew)
	o.Clamp()
	return o
}
