package par

import (
	"fmt"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
	"plum/internal/propagate"
)

// adaptBenchFixture builds a parallel-scale refine fixture. The pass
// mutates the mesh, so every iteration rebuilds it outside the timer.
func adaptBenchFixture(w int, prop propagate.Propagator) (*Dist, *adapt.Adaptor) {
	m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1}) // 10368 elements
	g := dual.Build(m)
	d := NewDist(m, 8, partition.Partition(g, 8, partition.MethodInertial))
	d.Workers = w
	d.Prop = prop
	a := adapt.New(m)
	a.MarkRandom(0.25, adapt.MarkRefine, 97)
	return d, a
}

// BenchmarkParallelRefine is the acceptance benchmark of the parallel
// adaption engine: one full refine pass — chunked target scan, superstep
// frontier propagation, chunked execute/classify scans — workers=1 versus
// GOMAXPROCS. Marks, stats, and modeled timings are identical at every
// worker count; only the wall time may differ.
func BenchmarkParallelRefine(b *testing.B) {
	mdl := machine.SP2()
	for _, bw := range benchRemapWorkers() {
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, a := adaptBenchFixture(bw, nil)
				b.StartTimer()
				if _, tm := d.ParallelRefine(a, mdl); tm.Total <= 0 {
					b.Fatal("no adaption timing")
				}
			}
		})
	}
}

// BenchmarkParallelCoarsen measures the coarsening pass — the chunked
// shared-mark consistency scan plus the removal/re-refinement charge
// scans — on a pre-refined fixture.
func BenchmarkParallelCoarsen(b *testing.B) {
	mdl := machine.SP2()
	for _, bw := range benchRemapWorkers() {
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, a := adaptBenchFixture(bw, nil)
				d.ParallelRefine(a, mdl)
				a.MarkRandom(0.30, adapt.MarkCoarsen, 43)
				b.StartTimer()
				if _, tm := d.ParallelCoarsen(a, mdl); tm.Total <= 0 {
					b.Fatal("no coarsen timing")
				}
			}
		})
	}
}
