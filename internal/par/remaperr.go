package par

import "fmt"

// RemapFailure classifies why a remap (or finalize) transaction failed.
type RemapFailure int

// The failure classes. Only FailTransfer is produced by injected faults —
// it means the reliable exchange exhausted its per-message attempt budget
// and the window retries, and the transaction rolled back cleanly. The
// structural classes (torn records, broken conservation, double gathers, a
// dead rank) indicate a bug or corruption the retry machinery must never
// paper over, so they abort without retrying.
const (
	// FailTransfer: reliable transfers kept failing after every retry;
	// ownership was rolled back to the pre-remap checkpoint.
	FailTransfer RemapFailure = iota
	// FailConservation: the received element count does not match the
	// number of migrated elements.
	FailConservation
	// FailRank: a rank died mid-exchange (panic converted by comm.World.Run
	// — torn records and window mismatches surface here).
	FailRank
	// FailGather: the finalization gather saw a torn record, an
	// out-of-range element id, or an element gathered twice.
	FailGather
)

// String names the failure class.
func (f RemapFailure) String() string {
	switch f {
	case FailTransfer:
		return "transfer-failed"
	case FailConservation:
		return "conservation"
	case FailRank:
		return "rank-failure"
	case FailGather:
		return "gather"
	}
	return fmt.Sprintf("RemapFailure(%d)", int(f))
}

// RemapError is the typed error of the transactional remap path. Callers
// (core.Framework) use Failure and RolledBack to decide between graceful
// degradation — keep the old partition, skip the remap charge, continue
// the cycle — and aborting the run.
type RemapError struct {
	// Failure classifies the fault.
	Failure RemapFailure
	// Window is the canonical streaming-window index that failed, or -1
	// for the bulk exchange / the finalize gather.
	Window int
	// Tries is the number of times the failing window was exchanged.
	Tries int
	// RolledBack reports that the ownership map was restored to its
	// pre-remap state (always true for FailTransfer; structural failures
	// before any window committed also roll back trivially).
	RolledBack bool
	// Detail is the underlying diagnostic.
	Detail string
}

// Error implements the error interface.
func (e *RemapError) Error() string {
	s := fmt.Sprintf("par: remap %s", e.Failure)
	if e.Window >= 0 {
		s += fmt.Sprintf(" (window %d", e.Window)
		if e.Tries > 1 {
			s += fmt.Sprintf(", %d tries", e.Tries)
		}
		s += ")"
	} else if e.Tries > 1 {
		s += fmt.Sprintf(" (%d tries)", e.Tries)
	}
	if e.RolledBack {
		s += ", rolled back"
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Retryable reports whether the failure is the kind the transaction layer
// retries (transport-level transfer failures, as opposed to structural
// corruption).
func (e *RemapError) Retryable() bool { return e.Failure == FailTransfer }
