package par

import (
	"errors"
	"fmt"

	"plum/internal/comm"
)

// RemapFailure classifies why a remap (or finalize) transaction failed.
type RemapFailure int

// The failure classes. Only FailTransfer is produced by injected faults —
// it means the reliable exchange exhausted its per-message attempt budget
// and the window retries, and the transaction rolled back cleanly. The
// structural classes (torn records, broken conservation, double gathers, a
// dead rank) indicate a bug or corruption the retry machinery must never
// paper over, so they abort without retrying.
const (
	// FailTransfer: reliable transfers kept failing after every retry;
	// ownership was rolled back to the pre-remap checkpoint.
	FailTransfer RemapFailure = iota
	// FailConservation: the received element count does not match the
	// number of migrated elements.
	FailConservation
	// FailRank: a rank died mid-exchange (panic converted by comm.World.Run
	// — torn records and window mismatches surface here).
	FailRank
	// FailGather: the finalization gather saw a torn record, an
	// out-of-range element id, or an element gathered twice.
	FailGather
	// FailCrash: one or more ranks died mid-exchange under an injected
	// crash fate (comm.CrashError); ownership was rolled back and the
	// Crashed list names the dead ranks so the caller can run survivor
	// recovery.
	FailCrash
	// FailTimeout: the stage deadline expired with a rank hung outside
	// the communication layer (comm.TimeoutError). The worker pool is
	// torn; this is not retried and not recovered.
	FailTimeout
)

// String names the failure class.
func (f RemapFailure) String() string {
	switch f {
	case FailTransfer:
		return "transfer-failed"
	case FailConservation:
		return "conservation"
	case FailRank:
		return "rank-failure"
	case FailGather:
		return "gather"
	case FailCrash:
		return "rank-crash"
	case FailTimeout:
		return "stage-timeout"
	}
	return fmt.Sprintf("RemapFailure(%d)", int(f))
}

// RemapError is the typed error of the transactional remap path. Callers
// (core.Framework) use Failure and RolledBack to decide between graceful
// degradation — keep the old partition, skip the remap charge, continue
// the cycle — and aborting the run.
type RemapError struct {
	// Failure classifies the fault.
	Failure RemapFailure
	// Window is the canonical streaming-window index that failed, or -1
	// for the bulk exchange / the finalize gather.
	Window int
	// Tries is the number of times the failing window was exchanged.
	Tries int
	// RolledBack reports that the ownership map was restored to its
	// pre-remap state (always true for FailTransfer; structural failures
	// before any window committed also roll back trivially).
	RolledBack bool
	// Crashed names the ranks that died when Failure is FailCrash
	// (sorted ascending); nil otherwise.
	Crashed []int
	// Detail is the underlying diagnostic.
	Detail string
}

// Error implements the error interface.
func (e *RemapError) Error() string {
	s := fmt.Sprintf("par: remap %s", e.Failure)
	if e.Window >= 0 {
		s += fmt.Sprintf(" (window %d", e.Window)
		if e.Tries > 1 {
			s += fmt.Sprintf(", %d tries", e.Tries)
		}
		s += ")"
	} else if e.Tries > 1 {
		s += fmt.Sprintf(" (%d tries)", e.Tries)
	}
	if e.RolledBack {
		s += ", rolled back"
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Retryable reports whether the failure is the kind the transaction layer
// retries (transport-level transfer failures, as opposed to structural
// corruption).
func (e *RemapError) Retryable() bool { return e.Failure == FailTransfer }

// remapErrFrom classifies a comm.World.Run error into a rolled-back
// RemapError: modeled rank deaths become FailCrash carrying the dead
// ranks (so core can run survivor recovery), blown stage deadlines
// become FailTimeout, and everything else — genuine rank panics — stays
// the structural FailRank.
func remapErrFrom(err error, window, tries int) *RemapError {
	var ce *comm.CrashError
	if errors.As(err, &ce) {
		return &RemapError{Failure: FailCrash, Window: window, Tries: tries, RolledBack: true,
			Crashed: ce.Ranks, Detail: err.Error()}
	}
	var te *comm.TimeoutError
	if errors.As(err, &te) {
		return &RemapError{Failure: FailTimeout, Window: window, Tries: tries, RolledBack: true, Detail: err.Error()}
	}
	return &RemapError{Failure: FailRank, Window: window, Tries: tries, RolledBack: true, Detail: err.Error()}
}
