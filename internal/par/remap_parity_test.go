package par

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// bigFixture builds a mesh large enough to engage the parallel remap
// scatter and SPL scans (> SerialCutoff elements), distributed over p
// ranks, plus a reassignment that migrates a mixed set of trees.
func bigFixture(t testing.TB, p int) (*Dist, []int32) {
	t.Helper()
	m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1}) // 10368 elements > SerialCutoff
	g := dual.Build(m)
	asg := partition.Partition(g, p, partition.MethodInertial)
	d := NewDist(m, p, asg)
	// Migrate about a third of the trees with a deterministic mix of
	// small rotations, leaving the rest put — many flows, all shapes.
	newOwner := d.Owners()
	for v := range newOwner {
		switch v % 3 {
		case 0:
			newOwner[v] = (newOwner[v] + 1) % int32(p)
		case 1:
			if v%6 == 1 {
				newOwner[v] = (newOwner[v] + int32(p) - 1) % int32(p)
			}
		}
	}
	return d, newOwner
}

// TestRemapExecWorkerParity is the determinism contract of the parallel
// remap execution: the CSR payload buffer, the updated owner array, and
// the whole RemapResult — modeled float times included — must be
// byte-identical at every worker count. Only the critical-path op shares
// may differ (they reflect the effective worker count actually used).
func TestRemapExecWorkerParity(t *testing.T) {
	const p = 8
	refD, newOwner := bigFixture(t, p)
	refD.Workers = 1
	refPlan := collectFlows(refD.M, refD.rootDual, refD.owner, newOwner, p, 1)
	refRes, err := refD.ExecuteRemap(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Ops.Crit != refRes.Ops.Total || refRes.Ops.MemCrit != refRes.Ops.MemTotal {
		t.Fatalf("workers=1 must report Crit == Total: %+v", refRes.Ops)
	}
	if refRes.Moved == 0 || refRes.Sets < 2 {
		t.Fatalf("fixture moved nothing interesting: %+v", refRes)
	}

	for _, w := range []int{2, 4, 8} {
		d, _ := bigFixture(t, p)
		d.Workers = w
		pl := collectFlows(d.M, d.rootDual, d.owner, newOwner, p, EffectiveWorkers(len(d.M.Elems), w))
		if !reflect.DeepEqual(pl.flowStart, refPlan.flowStart) {
			t.Fatalf("workers=%d: CSR flow offsets diverge", w)
		}
		if !reflect.DeepEqual(pl.recs, refPlan.recs) {
			t.Fatalf("workers=%d: payload buffer diverges", w)
		}
		res, err := d.ExecuteRemap(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
			t.Fatalf("workers=%d: owner array diverges", w)
		}
		if res.Ops.Crit > res.Ops.Total || res.Ops.MemCrit > res.Ops.MemTotal {
			t.Errorf("workers=%d: critical path exceeds total: %+v", w, res.Ops)
		}
		if res.Ops.Total != refRes.Ops.Total || res.Ops.MemTotal != refRes.Ops.MemTotal {
			t.Errorf("workers=%d: op totals not worker-invariant: %d/%d vs %d/%d",
				w, res.Ops.Total, res.Ops.MemTotal, refRes.Ops.Total, refRes.Ops.MemTotal)
		}
		// Everything but the critical-path shares must be bit-identical —
		// the modeled times are float sums in canonical flow order.
		res.Ops.Crit, res.Ops.MemCrit = refRes.Ops.Crit, refRes.Ops.MemCrit
		if !reflect.DeepEqual(res, refRes) {
			t.Errorf("workers=%d: RemapResult diverges:\n got %+v\nwant %+v", w, res, refRes)
		}
	}
}

// TestRemapResultDeterministic is the regression test for the modeled-time
// nondeterminism of the map-based collector: two identical runs must
// produce bit-identical RemapResults (PackTime/CommTime/WordsMoved were
// previously summed in map iteration order).
func TestRemapResultDeterministic(t *testing.T) {
	const p = 8
	run := func() RemapResult {
		d, newOwner := bigFixture(t, p)
		d.Workers = 4
		res, err := d.ExecuteRemap(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical remaps differ:\n  %+v\n  %+v", a, b)
	}
}

// TestPredictRemapOpsMatchesExecute pins the acceptance-rule contract:
// the ops predicted from (nElems, C, N) before the decision are exactly
// what the executed remap reports.
func TestPredictRemapOpsMatchesExecute(t *testing.T) {
	for _, w := range []int{1, 4} {
		d, newOwner := bigFixture(t, 4)
		d.Workers = w
		res, err := d.ExecuteRemap(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		pred := PredictRemapOps(len(d.M.Elems), res.Moved, res.Sets, d.P, w)
		if pred != res.Ops {
			t.Errorf("workers=%d: predicted %+v, executed %+v", w, pred, res.Ops)
		}
	}
}

// TestRemapSerialFallbackCritEqualsTotal pins the cost model to the
// execution path: below SerialCutoff elements a large worker knob must
// not discount the critical path.
func TestRemapSerialFallbackCritEqualsTotal(t *testing.T) {
	m := meshgen.SmallBox() // 384 elements: far below SerialCutoff
	g := dual.Build(m)
	d := NewDist(m, 4, partition.Partition(g, 4, partition.MethodGraphGrow))
	d.Workers = 8
	newOwner := d.Owners()
	for v := range newOwner {
		newOwner[v] = (newOwner[v] + 1) % 4
	}
	res, err := d.ExecuteRemap(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops.Crit != res.Ops.Total || res.Ops.MemCrit != res.Ops.MemTotal {
		t.Errorf("serial fallback must report Crit == Total: %+v", res.Ops)
	}
	if ew := EffectiveWorkers(len(m.Elems), 8); ew != 1 {
		t.Errorf("EffectiveWorkers(%d, 8) = %d, want 1", len(m.Elems), ew)
	}
}

// TestInitWorkerParity checks the chunked shared-object scans: Init and
// RankLoads must produce identical stats at every worker count, on a mesh
// big enough to run the parallel path, including after an adaption.
func TestInitWorkerParity(t *testing.T) {
	build := func(w int) *Dist {
		m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
		g := dual.Build(m)
		d := NewDist(m, 8, partition.Partition(g, 8, partition.MethodInertial))
		d.Workers = w
		a := adapt.New(m)
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.3, Y: 0.3, Z: 0.3}, Radius: 0.3}, adapt.MarkRefine)
		a.Refine()
		return d
	}
	ref := build(1)
	refStats := ref.Init()
	refLoads := ref.RankLoads()
	if refStats.SharedEdges == 0 || refStats.SharedVerts == 0 {
		t.Fatal("fixture has no shared objects")
	}
	for _, w := range []int{2, 4, 8} {
		d := build(w)
		if st := d.Init(); !reflect.DeepEqual(st, refStats) {
			t.Errorf("workers=%d: InitStats diverge:\n got %+v\nwant %+v", w, st, refStats)
		}
		if loads := d.RankLoads(); !reflect.DeepEqual(loads, refLoads) {
			t.Errorf("workers=%d: RankLoads diverge: %v vs %v", w, loads, refLoads)
		}
	}
}
