package par

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// splitmix64 is the deterministic per-vertex hash driving the fuzzed
// ownership flips (no RNG state, so flips are independent of order).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FuzzExecuteRemap fuzzes the remap execution with random ownership
// flips: element records must be conserved per (src, dst) flow — never
// lost, never duplicated — the CSR scatter must be byte-identical with
// and without parallel chunking, and the executed remap must pass its own
// conservation check and land the expected ownership.
func FuzzExecuteRemap(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(42), uint8(3))
	f.Add(uint64(0xdeadbeef), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, refineBits uint8) {
		const p = 4
		m := meshgen.SmallBox()
		g := dual.Build(m)
		d := NewDist(m, p, partition.Partition(g, p, partition.MethodGraphGrow))
		if refineBits%2 == 1 { // half the corpus remaps an adapted mesh
			a := adapt.New(m)
			a.MarkRandom(0.08, adapt.MarkRefine, int64(refineBits))
			a.Refine()
		}

		owners := d.Owners()
		newOwner := append([]int32(nil), owners...)
		for v := range newOwner {
			h := splitmix64(seed + uint64(v))
			if h%4 != 0 { // flip ~3/4 of the trees
				newOwner[v] = int32(h % p)
			}
		}

		// Serial reference: per-flow record counts straight off the
		// element slab.
		wantFlow := make([]int64, p*p)
		var wantMoved int64
		for i := range m.Elems {
			el := &m.Elems[i]
			if el.Dead {
				continue
			}
			dv := d.rootDual[el.Root]
			if dv < 0 {
				continue
			}
			if src, dst := owners[dv], newOwner[dv]; src != dst {
				wantFlow[int(src)*p+int(dst)]++
				wantMoved++
			}
		}

		// The scatter must conserve records and be chunking-invariant.
		serial := collectFlows(m, d.rootDual, owners, newOwner, p, 1)
		chunked := collectFlows(m, d.rootDual, owners, newOwner, p, 3)
		if !reflect.DeepEqual(serial.flowStart, chunked.flowStart) ||
			!reflect.DeepEqual(serial.recs, chunked.recs) {
			t.Fatal("chunked scatter diverges from serial")
		}
		if serial.moved != wantMoved {
			t.Fatalf("scatter moved %d records, want %d", serial.moved, wantMoved)
		}
		for fl := 0; fl < p*p; fl++ {
			if got := serial.flowStart[fl+1] - serial.flowStart[fl]; got != wantFlow[fl] {
				t.Fatalf("flow %d->%d carries %d records, want %d", fl/p, fl%p, got, wantFlow[fl])
			}
		}
		// Every record must name a dual vertex of its own flow.
		for fl := 0; fl < p*p; fl++ {
			for _, rec := range [][]int64{serial.flowRecs(fl)} {
				for o := 0; o < len(rec); o += recWords {
					dv := rec[o]
					if dv < 0 || int(dv) >= len(owners) {
						t.Fatalf("flow %d record names dual vertex %d out of range", fl, dv)
					}
					if int(owners[dv])*p+int(newOwner[dv]) != fl {
						t.Fatalf("record for dual vertex %d filed under flow %d->%d", dv, fl/p, fl%p)
					}
				}
			}
		}

		// The executed remap performs its own receive-side conservation
		// check; it must pass and update ownership.
		res, err := d.ExecuteRemap(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		if res.Moved != wantMoved {
			t.Fatalf("executed remap moved %d, want %d", res.Moved, wantMoved)
		}
		if !reflect.DeepEqual(d.Owners(), newOwner) {
			t.Fatal("ownership not updated to newOwner")
		}
	})
}
