package par

import (
	"fmt"

	"plum/internal/comm"
	"plum/internal/machine"
	"plum/internal/mesh"
)

// FinalizeResult reports the finalization phase: connecting the individual
// subgrids into one global mesh on a host processor (needed for
// visualization and restarts, per the paper).
type FinalizeResult struct {
	// Elems is the number of elements gathered (must equal the active
	// element count of the ground-truth mesh).
	Elems int64
	// Words is the gathered data volume.
	Words int64
	// Time is the modeled gather time.
	Time float64
}

// Finalize performs the finalization phase: every rank packs its active
// local elements (with a globally consistent numbering — element ids are
// already global in this implementation) and a gather on the host rank 0
// concatenates them into a global mesh. The reassembled element count is
// verified against the ground truth.
func (d *Dist) Finalize(mdl machine.Model) (FinalizeResult, error) {
	m := d.M

	// Pack per-rank payloads: (elemID, v0..v3) per active element.
	const recWords = 5
	bufs := make([][]int64, d.P)
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		r := d.OwnerOf(mesh.ElemID(i))
		bufs[r] = append(bufs[r], int64(i), int64(t.V[0]), int64(t.V[1]), int64(t.V[2]), int64(t.V[3]))
	}

	var gathered int64
	w := comm.NewWorld(d.P)
	if err := w.Run(func(c *comm.Comm) {
		out := c.Gather(0, bufs[c.Rank()])
		if c.Rank() != 0 {
			return
		}
		// Element ids index the slab, so a flat bitset replaces the old
		// map[int64]bool — the host-side duplicate check no longer
		// reallocates (or hashes) on large meshes.
		seen := make([]bool, len(m.Elems))
		var n int64
		for _, data := range out {
			if len(data)%recWords != 0 {
				panic("par: torn finalize record")
			}
			for k := 0; k < len(data); k += recWords {
				id := data[k]
				if id < 0 || id >= int64(len(seen)) {
					panic(fmt.Sprintf("par: gathered element id %d out of range", id))
				}
				if seen[id] {
					panic(fmt.Sprintf("par: element %d gathered twice", id))
				}
				seen[id] = true
				n++
			}
		}
		gathered = n
	}); err != nil {
		// The torn-record / out-of-range / double-gather panics surface
		// here as a typed error instead of killing the run.
		return FinalizeResult{}, &RemapError{Failure: FailGather, Window: -1, Tries: 1, Detail: err.Error()}
	}
	want := int64(m.NumActiveElems())
	if gathered != want {
		return FinalizeResult{}, fmt.Errorf("par: gathered %d elements, mesh has %d", gathered, want)
	}

	res := FinalizeResult{Elems: gathered}
	clk := machine.NewClock(d.P)
	for r := 1; r < d.P; r++ {
		words := int64(len(bufs[r]))
		res.Words += words
		clk.Add(r, mdl.MsgTime(words))
		// The host pays the receive cost serially.
		clk.Add(0, float64(words)*mdl.UnpackWord)
	}
	clk.Barrier()
	res.Time = clk.Elapsed()
	return res, nil
}
