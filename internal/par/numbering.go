package par

import (
	"plum/internal/comm"
	"plum/internal/mesh"
)

// GlobalNumbering is the finalization-phase numbering of the paper: each
// local object receives a unique global number so that subgrids can be
// concatenated into one global mesh. Shared vertices are numbered by the
// lowest-ranked processor in their SPL; every other sharer adopts that
// number.
type GlobalNumbering struct {
	// Vert[v] is the global number of mesh vertex v (-1 for dead).
	Vert []int64
	// Elem[e] is the global number of active element e (-1 otherwise).
	Elem []int64
	// NumVerts and NumElems are the global totals.
	NumVerts, NumElems int64
}

// Number computes a globally consistent numbering using the real
// collective operations: every rank counts the objects it owns (a shared
// vertex is owned by the smallest rank in its SPL), an exclusive scan
// assigns disjoint id ranges, and owners broadcast the ids of shared
// objects. The result is identical on all ranks (returned once, since
// ranks share the ground-truth mesh).
func (d *Dist) Number() GlobalNumbering {
	m := d.M
	gn := GlobalNumbering{
		Vert: make([]int64, len(m.Verts)),
		Elem: make([]int64, len(m.Elems)),
	}
	for i := range gn.Vert {
		gn.Vert[i] = -1
	}
	for i := range gn.Elem {
		gn.Elem[i] = -1
	}

	// Owner of each live vertex: smallest rank in its SPL.
	vertOwner := make([]int32, len(m.Verts))
	var buf []int32
	for vi := range m.Verts {
		vertOwner[vi] = -1
		v := &m.Verts[vi]
		if v.Dead || len(v.Edges) == 0 {
			continue
		}
		spl := d.VertSPL(mesh.VertID(vi), buf)
		buf = spl
		if len(spl) > 0 {
			vertOwner[vi] = spl[0] // sorted: smallest rank
		}
	}

	// Per-rank counts of owned vertices and elements.
	vCount := make([]int64, d.P)
	eCount := make([]int64, d.P)
	for vi, o := range vertOwner {
		if o >= 0 {
			vCount[o]++
		}
		_ = vi
	}
	for ei := range m.Elems {
		if m.Elems[ei].Active() {
			eCount[d.OwnerOf(mesh.ElemID(ei))]++
		}
	}

	// Exclusive scan over the real communicator gives each rank its
	// starting offsets; the loop below then assigns ids in rank-local
	// order, reproducing exactly what the distributed code would.
	vOff := make([]int64, d.P)
	eOff := make([]int64, d.P)
	w := comm.NewWorld(d.P)
	if err := w.Run(func(c *comm.Comm) {
		out := c.ExScan([]int64{vCount[c.Rank()], eCount[c.Rank()]})
		vOff[c.Rank()] = out[0]
		eOff[c.Rank()] = out[1]
	}); err != nil {
		// Uniform two-word vectors cannot mismatch; a failure here is a
		// bug in the collectives, not a recoverable condition.
		panic(err)
	}

	vNext := append([]int64(nil), vOff...)
	for vi, o := range vertOwner {
		if o >= 0 {
			gn.Vert[vi] = vNext[o]
			vNext[o]++
		}
	}
	eNext := append([]int64(nil), eOff...)
	for ei := range m.Elems {
		if m.Elems[ei].Active() {
			o := d.OwnerOf(mesh.ElemID(ei))
			gn.Elem[ei] = eNext[o]
			eNext[o]++
		}
	}
	for _, n := range vCount {
		gn.NumVerts += n
	}
	for _, n := range eCount {
		gn.NumElems += n
	}
	return gn
}
