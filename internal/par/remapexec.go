package par

import (
	"fmt"

	"plum/internal/comm"
	"plum/internal/machine"
)

// RemapResult reports one executed data remapping.
type RemapResult struct {
	// Moved is the number of elements migrated (the cost model's C: whole
	// refinement trees move with their roots, so this sums Wremap over
	// reassigned dual vertices).
	Moved int64
	// Sets is the number of (source, destination) element sets (the cost
	// model's N).
	Sets int
	// WordsMoved is the modeled data volume: Moved × ElemWords plus the
	// shared-structure perturbation.
	WordsMoved int64
	// PackTime, CommTime, RebuildTime decompose the modeled remapping
	// overhead; Total is the slowest-rank end-to-end time.
	PackTime, CommTime, RebuildTime, Total float64
}

// ExecuteRemap migrates element trees whose dual vertices change owner
// under newOwner. Real payloads (element records) are exchanged between
// goroutine ranks over the comm runtime and verified for conservation; the
// machine model charges pack, transfer, and rebuild costs. On return the
// ownership map is updated.
//
// Following the paper's experimental methodology, the data-structure
// rebuild is charged to the model (RebuildElem per received element)
// rather than re-linking the shared ground-truth mesh, which stays
// authoritative — "all appropriate mesh objects are sent to their new host
// processor, accurately modeling the communication phase".
func (d *Dist) ExecuteRemap(newOwner []int32, mdl machine.Model) (RemapResult, error) {
	if len(newOwner) != len(d.owner) {
		return RemapResult{}, fmt.Errorf("par: newOwner has %d entries, want %d", len(newOwner), len(d.owner))
	}
	m := d.M

	// Collect per-(src,dst) real payloads: one record of
	// (dualVertex, v0..v3, level) per migrating element.
	type flow struct{ src, dst int32 }
	payload := make(map[flow][]int64)
	var moved int64
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Dead {
			continue
		}
		dv := d.rootDual[t.Root]
		if dv < 0 {
			continue
		}
		src, dst := d.owner[dv], newOwner[dv]
		if src == dst {
			continue
		}
		moved++
		payload[flow{src, dst}] = append(payload[flow{src, dst}],
			int64(dv), int64(t.V[0]), int64(t.V[1]), int64(t.V[2]), int64(t.V[3]), int64(t.Level))
	}
	const recWords = 6

	// Exchange for real over the message-passing runtime and verify
	// conservation on the receive side.
	w := comm.NewWorld(d.P)
	recvCount := make([]int64, d.P)
	w.Run(func(c *comm.Comm) {
		bufs := make([][]int64, d.P)
		for f, data := range payload {
			if int(f.src) == c.Rank() {
				bufs[f.dst] = data
			}
		}
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = []int64{}
			}
		}
		got := c.Alltoallv(bufs)
		var n int64
		for src, data := range got {
			if src == c.Rank() {
				continue
			}
			if len(data)%recWords != 0 {
				panic("par: torn element record")
			}
			n += int64(len(data) / recWords)
		}
		recvCount[c.Rank()] = n
	})
	var recvTotal int64
	for _, n := range recvCount {
		recvTotal += n
	}
	if recvTotal != moved {
		return RemapResult{}, fmt.Errorf("par: moved %d elements but received %d", moved, recvTotal)
	}

	// Machine-model accounting (bulk-synchronous: all sends, then all
	// receives). The modeled volume uses the cost model's M words per
	// element plus a small shared-structure term proportional to the
	// number of flows (partition-boundary data is a small percentage and
	// causes the slight perturbations the paper notes).
	res := RemapResult{Moved: moved, Sets: len(payload)}
	clk := machine.NewClock(d.P)
	sendWords := make([]int64, d.P)
	recvWords := make([]int64, d.P)
	recvElems := make([]int64, d.P)
	packT := make([]float64, d.P)
	for f, data := range payload {
		elems := int64(len(data) / recWords)
		words := elems * int64(mdl.ElemWords)
		words += words / 32 // shared-structure perturbation ≈ 3%
		sendWords[f.src] += words
		recvWords[f.dst] += words
		recvElems[f.dst] += elems
		clk.Add(int(f.src), float64(words)*mdl.PackWord+mdl.MsgTime(words))
		packT[f.src] += float64(words) * mdl.PackWord
		res.WordsMoved += words
	}
	for r := 0; r < d.P; r++ {
		res.PackTime = maxf(res.PackTime, packT[r])
	}
	clk.Barrier()
	res.CommTime = clk.Elapsed() - res.PackTime
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(recvWords[r])*mdl.UnpackWord+float64(recvElems[r])*mdl.RebuildElem)
	}
	clk.Barrier()
	res.RebuildTime = clk.Elapsed() - res.CommTime - res.PackTime
	res.Total = clk.Elapsed()

	copy(d.owner, newOwner)
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
