package par

import (
	"fmt"

	"plum/internal/chunk"
	"plum/internal/comm"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/obs"
)

// RemapResult reports one executed data remapping.
type RemapResult struct {
	// Moved is the number of elements migrated (the cost model's C: whole
	// refinement trees move with their roots, so this sums Wremap over
	// reassigned dual vertices).
	Moved int64
	// Sets is the number of (source, destination) element sets (the cost
	// model's N).
	Sets int
	// WordsMoved is the modeled data volume: Moved × ElemWords plus the
	// shared-structure perturbation.
	WordsMoved int64
	// PeakWords is the high-water mark of the host-side payload buffer,
	// in record words (Moved × RecordWords is the total). The
	// bulk-synchronous executor materializes every flow at once, so it
	// reports the total; the streaming executor packs, exchanges, and
	// verifies one window of flows at a time, so its peak is the largest
	// window — strictly below the total on multi-flow workloads. The
	// figure is computed from the canonical flow layout, never from live
	// goroutine scheduling, so it is deterministic at any worker count.
	PeakWords int64
	// PackTime, CommTime, RebuildTime decompose the modeled remapping
	// overhead; Total is the slowest-rank end-to-end time.
	PackTime, CommTime, RebuildTime, Total float64
	// Setups counts the message setups of the base exchange under the
	// Dist's schedule — one per message of the schedule, so flat pays one
	// per nonempty flow while aggregated and hierarchical pay far fewer at
	// high P (retransmissions are counted in Retries, not here). SetupTime
	// is their summed modeled setup charge: the component of CommTime the
	// exchange schedule exists to shrink, reported separately so callers
	// never fold it silently into volume time.
	Setups    int64
	SetupTime float64
	// IntraWords and InterWords split the exchanged wire volume by link
	// level under the model's node topology; on a flat machine all volume
	// is InterWords. The hierarchical schedule forwards words over both an
	// intra-node hop and an inter-node hop, so their sum can exceed
	// WordsMoved — that forwarding is the price of the setup savings.
	IntraWords, InterWords int64
	// Ops is the abstract work accounting of the scatter, pack, and
	// unpack phases, equal to PredictRemapOps of the executed quantities:
	// Total is worker-invariant, Crit the critical-path share at the
	// effective worker count actually used (Crit == Total on the serial
	// fallback below SerialCutoff elements).
	Ops Ops
	// Retries and RetryWords count the extra physical frames (and their
	// payload words, in record words on the wire) the reliable exchange
	// sent recovering injected faults; WindowRetries the window
	// re-executions. RetryTime is the slowest rank's modeled recovery
	// charge — resent messages at MsgTime plus exponential-backoff units
	// at Model.RetryBackoff — which is also folded into CommTime/Total.
	// All stay zero without an enabled fault plan.
	Retries, RetryWords int64
	WindowRetries       int
	RetryTime           float64
}

// ExecuteRemap migrates element trees whose dual vertices change owner
// under newOwner. Real payloads (element records) are exchanged between
// goroutine ranks over the comm runtime and verified for conservation; the
// machine model charges pack, transfer, and rebuild costs. On return the
// ownership map is updated.
//
// The payload collection is the CSR flow scatter of collectFlows, run at
// the Dist's worker knob: flows are laid out in canonical (src, dst)
// order and elements in slab order within a flow, so the record buffer,
// the modeled times (float summation order is fixed by the layout, not by
// map iteration), and the whole RemapResult except Ops.Crit/MemCrit are
// byte-identical at every worker count.
//
// Following the paper's experimental methodology, the data-structure
// rebuild is charged to the model (RebuildElem per received element)
// rather than re-linking the shared ground-truth mesh, which stays
// authoritative — "all appropriate mesh objects are sent to their new host
// processor, accurately modeling the communication phase".
//
// This is the bulk-synchronous executor: the whole record buffer is
// materialized before anything is exchanged, so PeakWords equals the
// total payload. ExecuteRemapStreaming produces the identical result with
// one window of payload in flight at a time.
//
// With Dist.Faults enabled the exchange runs transactionally over the
// reliable transport: the whole exchange is one commit unit, failed
// exchanges are re-run up to Retry.WindowRetries times, and exhausted
// retries return a *RemapError with RolledBack set and the ownership map
// untouched. Without a plan the legacy plain exchange runs byte-identical
// to pre-fault behavior.
func (d *Dist) ExecuteRemap(newOwner []int32, mdl machine.Model) (RemapResult, error) {
	if len(newOwner) != len(d.owner) {
		return RemapResult{}, fmt.Errorf("par: newOwner has %d entries, want %d", len(newOwner), len(d.owner))
	}
	m := d.M
	p := d.P
	ew := EffectiveWorkers(len(m.Elems), d.Workers)
	pl := collectFlows(m, d.rootDual, d.owner, newOwner, p, ew)

	res := RemapResult{
		Moved:     pl.moved,
		Sets:      pl.sets,
		PeakWords: pl.moved * recWords, // the whole buffer is in flight at once
		Ops:       PredictRemapOps(len(m.Elems), pl.moved, pl.sets, p, d.Workers),
	}

	// Exchange for real over the message-passing runtime and verify
	// conservation on the receive side. Each rank's send buffers are
	// zero-copy subslices of the flat record buffer: rank src owns the
	// contiguous flow range [src·p, (src+1)·p). The whole table is one
	// window of the Dist's exchange schedule.
	plan := &winPlan{f0: 0, f1: p * p, p: p, flowStart: pl.flowStart, rec: pl.flowRecs}
	if !d.Faults.Enabled() {
		w := comm.NewWorld(p)
		w.SetDeadline(d.StageDeadline)
		recvCount := make([]int64, p)
		if err := exchangeWindow(w, d.Exchange, mdl.Topo, plan, false, recvCount, nil, nil); err != nil {
			return RemapResult{}, remapErrFrom(err, -1, 1)
		}
		var recvTotal int64
		for _, n := range recvCount {
			recvTotal += n
		}
		if recvTotal != pl.moved {
			return RemapResult{}, &RemapError{Failure: FailConservation, Window: -1, Tries: 1, RolledBack: true,
				Detail: fmt.Sprintf("moved %d elements but received %d", pl.moved, recvTotal)}
		}
		d.accountRemap(pl.flowStart, mdl, &res, nil)
		copy(d.owner, newOwner)
		return res, nil
	}

	// Transactional path: the whole exchange is one window. Crash fates
	// are drawn once per stage — the mask kills its ranks at the window
	// boundary of the first try; a crash aborts the transaction without
	// retries (there is no rank to retry with), and the caller recovers
	// by remapping onto the survivors.
	retry := d.Retry.Normalize()
	crash := d.crashMask(d.crashedRanks())
	w := comm.NewWorld(p)
	w.SetDeadline(d.StageDeadline)
	w.SetFaults(d.Faults.Hook(fault.StageRemap, d.FaultCycle), retry.MsgAttempts)
	var recvTotal int64
	tries := 0
	for {
		tries++
		recvCount := make([]int64, p)
		failCount := make([]int64, p)
		if err := exchangeWindow(w, d.Exchange, mdl.Topo, plan, true, recvCount, failCount, crash); err != nil {
			return RemapResult{}, remapErrFrom(err, -1, tries)
		}
		var nfail int64
		for _, f := range failCount {
			nfail += f
		}
		if nfail == 0 {
			for _, n := range recvCount {
				recvTotal += n
			}
			break
		}
		if tries > retry.WindowRetries {
			return RemapResult{}, &RemapError{Failure: FailTransfer, Window: -1, Tries: tries, RolledBack: true,
				Detail: fmt.Sprintf("%d transfers failed after %d attempts per message", nfail, retry.MsgAttempts)}
		}
	}
	res.WindowRetries = tries - 1
	if recvTotal != pl.moved {
		return RemapResult{}, &RemapError{Failure: FailConservation, Window: -1, Tries: tries, RolledBack: true,
			Detail: fmt.Sprintf("moved %d elements but received %d", pl.moved, recvTotal)}
	}
	for _, s := range w.RankStats() {
		res.Retries += s.Retries
		res.RetryWords += s.RetryWords
	}
	resends, backoff := w.RetryCounters()
	d.accountRemap(pl.flowStart, mdl, &res, &retryCharges{resends: resends, backoff: backoff})
	copy(d.owner, newOwner)
	return res, nil
}

// ExecuteRemapRecovery migrates the elements of crashed ranks onto the
// survivors after a FailCrash rollback: the same bulk exchange as
// ExecuteRemap — same canonical flow layout, same machine-model charges
// via accountRemap/ChargeFlows — run with the fault plan masked off.
// Recovery is the repair path, not another fault surface: letting the
// plan re-draw crash or message fates here could cascade a recovery into
// another rollback forever, so the modeled recovery runs clean. The dead
// ranks' outgoing flows model the survivors replaying those elements
// from the cycle checkpoint's replica (in process, the dead rank's
// goroutine serves its checkpointed records); their cost is charged like
// any other flow, which is exactly the modeled price of re-sourcing the
// lost subgrid.
func (d *Dist) ExecuteRemapRecovery(newOwner []int32, mdl machine.Model) (RemapResult, error) {
	saved := d.Faults
	d.Faults = nil
	defer func() { d.Faults = saved }()
	return d.ExecuteRemap(newOwner, mdl)
}

// retryCharges carries the per-(src,dst) recovery counters of one reliable
// exchange (comm.World.RetryCounters) into the machine-model accounting.
type retryCharges struct {
	resends, backoff []int64
}

// accountRemap fills the machine-model side of a RemapResult — WordsMoved,
// PackTime, CommTime, RebuildTime, Total — from the canonical flow layout.
// Both executors charge the same bulk-synchronous superstep model (all
// sends, then all receives): the streaming executor changes how the host
// materializes and exchanges the payload, not the machine being modeled,
// which is what keeps its RemapResult byte-identical to the bulk path.
//
// The modeled volume uses the cost model's M words per element plus a
// small shared-structure term proportional to the number of flows
// (partition-boundary data is a small percentage and causes the slight
// perturbations the paper notes). The pack side is chunked over source
// ranks and the unpack side over destination ranks: every rank's flows
// form a contiguous stripe of the canonical layout handled by exactly one
// chunk, so the per-rank float sums are bit-identical at every worker
// count. The worker count is resolved against the p² flow table these
// loops actually walk — at practical rank counts that is far below
// SerialCutoff, so chunk.For takes its inline single-chunk path and no
// goroutines are spawned for a few thousand scalar adds (PredictRemapOps
// charges this phase serially).
//
// When the reliable exchange recovered injected faults, rc carries its
// per-pair retry counters: each resent message is charged another MsgTime
// of the pair's modeled volume and each backoff unit Model.RetryBackoff,
// on the sending rank, inside the same send-phase superstep — so retry
// cost lands on CommTime/Total exactly where a real sender would stall.
// The per-pair counters come from deterministic single-writer slots, so
// the charges are byte-identical at any worker count. A nil rc (the
// fault-free path) adds no terms at all, keeping the float streams
// bit-exact with pre-fault output.
func (d *Dist) accountRemap(flowStart []int64, mdl machine.Model, res *RemapResult, rc *retryCharges) {
	p := d.P
	flat := d.Exchange == machine.ExchangeFlat
	acctW := EffectiveWorkers(p*p, d.Workers)
	sendWords := make([]int64, p)
	recvWords := make([]int64, p)
	recvElems := make([]int64, p)
	packT := make([]float64, p)
	sendT := make([]float64, p)
	retryT := make([]float64, p)
	// Per-source setup accounting of the flat schedule; the aggregated and
	// hierarchical schedules report theirs from machine.ChargeFlows below.
	// These are per-src arrays, not res fields, because the chunked loop
	// may run on several workers.
	setups := make([]int64, p)
	setupT := make([]float64, p)
	intraW := make([]int64, p)
	interW := make([]int64, p)
	chunk.For(p, acctW, func(_, lo, hi int) {
		for src := lo; src < hi; src++ {
			for dst := 0; dst < p; dst++ {
				elems := flowStart[src*p+dst+1] - flowStart[src*p+dst]
				var words int64
				if elems > 0 {
					words = elems * int64(mdl.ElemWords)
					words += words / 32 // shared-structure perturbation ≈ 3%
					sendWords[src] += words
					if flat {
						// The legacy charge, one expression per flow (with
						// CommTime ≡ MsgTime on a flat topology), so the
						// float stream is bit-identical to the pre-exchange
						// path.
						sendT[src] += float64(words)*mdl.PackWord + mdl.CommTime(src, dst, words)
						setups[src]++
						setupT[src] += mdl.SetupTime(src, dst)
						if mdl.Topo.SameNode(src, dst) {
							intraW[src] += words
						} else {
							interW[src] += words
						}
					} else {
						// Combined schedules charge the wire through
						// ChargeFlows; only the pack cost is per flow.
						sendT[src] += float64(words) * mdl.PackWord
					}
					packT[src] += float64(words) * mdl.PackWord
				}
				if rc != nil {
					// Empty flows still ride the wire as zero-payload
					// frames, so their retries cost a setup each. Under the
					// combined schedules the retry counters sit on the
					// physical pairs of the relay (member→leader,
					// leader→leader, leader→member); the modeled charge
					// prices them at the pair's link rate over the pair's
					// planned flow volume, which the flat schedule reduces
					// to the legacy MsgTime expression.
					pair := src*p + dst
					var rt float64
					if n := rc.resends[pair]; n > 0 {
						rt += float64(n) * mdl.CommTime(src, dst, words)
					}
					if b := rc.backoff[pair]; b > 0 {
						rt += float64(b) * mdl.RetryBackoff
					}
					if rt > 0 {
						sendT[src] += rt
						retryT[src] += rt
					}
				}
			}
		}
	})
	chunk.For(p, acctW, func(_, lo, hi int) {
		for dst := lo; dst < hi; dst++ {
			for src := 0; src < p; src++ {
				elems := flowStart[src*p+dst+1] - flowStart[src*p+dst]
				if elems == 0 {
					continue
				}
				words := elems * int64(mdl.ElemWords)
				words += words / 32
				recvWords[dst] += words
				recvElems[dst] += elems
			}
		}
	})

	clk := machine.NewClock(p)
	for r := 0; r < p; r++ {
		res.WordsMoved += sendWords[r]
		clk.Add(r, sendT[r])
		res.PackTime = max(res.PackTime, packT[r])
		res.RetryTime = max(res.RetryTime, retryT[r])
	}
	if flat {
		for r := 0; r < p; r++ {
			res.Setups += setups[r]
			res.SetupTime += setupT[r]
			res.IntraWords += intraW[r]
			res.InterWords += interW[r]
		}
	} else {
		// The combined schedules' wire charges (setups, volume at link
		// rate, drains, the hierarchical relay's internal barriers) land
		// here, inside the same send superstep the flat charge occupies.
		ch := mdl.ChargeFlows(clk, d.Exchange, flowsFromStart(flowStart, p, mdl))
		res.Setups = ch.Msgs
		res.SetupTime = ch.SetupTime
		res.IntraWords = ch.IntraWords
		res.InterWords = ch.InterWords
	}
	clk.Barrier()
	res.CommTime = clk.Elapsed() - res.PackTime
	for r := 0; r < p; r++ {
		clk.Add(r, float64(recvWords[r])*mdl.UnpackWord+float64(recvElems[r])*mdl.RebuildElem)
	}
	clk.Barrier()
	res.RebuildTime = clk.Elapsed() - res.CommTime - res.PackTime
	res.Total = clk.Elapsed()

	if d.Trace != nil {
		d.traceRemapRanks(mdl, res, sendWords, sendT, recvWords, recvElems)
	}
}

// traceRemapRanks emits the executed remap's per-rank spans on the
// modeled timeline, based at the trace cursor (the caller advances the
// cursor past res.Total afterwards). It runs serially after the chunked
// accounting loops over per-rank arrays whose values are bit-identical
// at every worker count, so emission order and span contents are
// canonical. The send span covers a rank's pack + wire charges of the
// send superstep; the rebuild span starts at the superstep barrier
// (pack + comm elapsed) and covers the rank's unpack/rebuild charge.
func (d *Dist) traceRemapRanks(mdl machine.Model, res *RemapResult, sendWords []int64, sendT []float64, recvWords, recvElems []int64) {
	base := d.Trace.Now()
	rebuildAt := base + res.PackTime + res.CommTime
	for r := 0; r < d.P; r++ {
		if sendT[r] > 0 {
			d.Trace.Span(int32(r), "remap.send", base, sendT[r], obs.Int("words", sendWords[r]))
		}
		if dur := float64(recvWords[r])*mdl.UnpackWord + float64(recvElems[r])*mdl.RebuildElem; dur > 0 {
			d.Trace.Span(int32(r), "remap.rebuild", rebuildAt, dur, obs.Int("elems", recvElems[r]))
		}
	}
}

// flowsFromStart converts the canonical flow table into the sparse
// src-major flow list machine.ChargeFlows consumes, at the modeled volume
// of accountRemap (ElemWords per element plus the shared-structure
// perturbation).
func flowsFromStart(flowStart []int64, p int, mdl machine.Model) []machine.Flow {
	var flows []machine.Flow
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			elems := flowStart[src*p+dst+1] - flowStart[src*p+dst]
			if elems == 0 || src == dst {
				continue
			}
			words := elems * int64(mdl.ElemWords)
			words += words / 32
			flows = append(flows, machine.Flow{Src: int32(src), Dst: int32(dst), Words: words})
		}
	}
	return flows
}
