package par

import (
	"plum/internal/adapt"
	"plum/internal/chunk"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/propagate"
)

// AdaptTimings reports the modeled SP2 execution time of one parallel
// adaption phase, broken down the way the paper instruments it. Every
// field except Ops.Crit/MemCrit is byte-identical at every worker count:
// the scans merge integer partials in chunk order and the message charges
// accumulate in sorted (src, dst) pair order, never map order.
type AdaptTimings struct {
	// Target is the edge-marking (error indicator) phase: perfectly
	// distributed across local edges.
	Target float64
	// Propagate is the iterative pattern-upgrade phase including its
	// communication rounds.
	Propagate float64
	// Execute is the subdivision/removal phase.
	Execute float64
	// Classify is the post-refinement shared-edge classification
	// communication (the paper's "new edge across a face" case).
	Classify float64
	// Total is the slowest-rank end-to-end time.
	Total float64
	// CommRounds is the number of propagation supersteps.
	CommRounds int
	// Msgs and Words count the propagation + classification traffic
	// under the propagation backend's exchange model (see
	// propagate.BulkSync and propagate.Aggregated). SetupTime is the
	// summed modeled message-setup slice of those charges, reported
	// separately so the setup/volume split is visible alongside the remap
	// executor's.
	Msgs, Words int64
	SetupTime   float64
	// Visits is the number of frontier element examinations the
	// propagation engine performed; Marked the edges it newly committed.
	Visits, Marked int64
	// Ops is the abstract work accounting of the whole pass
	// (PredictAdaptOps of the phase quantities): Total and MemTotal are
	// worker-invariant, Crit/MemCrit reflect the effective worker count
	// actually used (Crit == Total on the serial fallbacks).
	Ops propagate.Ops
	// Retries, Backoff, and Exhausted are the modeled retry traffic a
	// fault plan (Dist.Faults) injected into this pass's notification
	// exchanges: extra message sends, Σ 2^try backoff units (charged at
	// Model.RetryBackoff), and messages whose attempt budget ran out and
	// escalated out of band. All zero without a plan, keeping the
	// fault-free timings byte-identical.
	Retries, Backoff, Exhausted int64
}

// propagator resolves the frontier-propagation backend: the Prop knob, or
// BulkSync at the Dist's worker knob when unset.
func (d *Dist) propagator() propagate.Propagator {
	if d.Prop != nil {
		return d.Prop
	}
	return propagate.NewBulkSync(d.Workers)
}

// adaptFaults arms prop with the cycle's modeled exchange-fault model and
// returns it — nil when faults are off or the backend is not fault-aware.
// One model spans the whole fault cycle (refine and coarsen continue the
// same per-pair attempt sequence, so their draws are independent); when
// faults are off the backend is explicitly disarmed, so a backend shared
// across Dists or cycles never carries a stale model into a pass that
// must stay byte-identical to the fault-free baseline.
func (d *Dist) adaptFaults(prop propagate.Propagator) *fault.ExchangeModel {
	fa, ok := prop.(propagate.FaultAware)
	if !ok {
		return nil
	}
	if !d.Faults.Enabled() {
		fa.SetFaults(nil)
		d.adaptX = nil
		return nil
	}
	if d.adaptX == nil || d.adaptXCycle != d.FaultCycle {
		d.adaptX = d.Faults.Exchange(fault.StageAdapt, d.FaultCycle, d.Retry.Normalize().MsgAttempts)
		d.adaptXCycle = d.FaultCycle
	}
	fa.SetFaults(d.adaptX)
	return d.adaptX
}

// faultTrace snapshots an ExchangeModel's cumulative counters so a pass
// can report its own delta in AdaptTimings.
type faultTrace struct{ resent, backoff, exhausted int64 }

func snapshotFaults(x *fault.ExchangeModel) faultTrace {
	if x == nil {
		return faultTrace{}
	}
	return faultTrace{x.Resent, x.BackoffUnits, x.Exhausted}
}

// record writes the counter delta since the snapshot into tm.
func (t faultTrace) record(x *fault.ExchangeModel, tm *AdaptTimings) {
	if x == nil {
		return
	}
	tm.Retries = x.Resent - t.resent
	tm.Backoff = x.BackoffUnits - t.backoff
	tm.Exhausted = x.Exhausted - t.exhausted
}

// patternOf mirrors the adaptor's pattern computation: local edges that
// are marked for refinement or already bisected.
func (d *Dist) patternOf(a *adapt.Adaptor, t *mesh.Element) adapt.Pattern {
	var p adapt.Pattern
	for le, e := range t.E {
		if d.M.Edges[e].Bisected() || a.MarkOf(e) == adapt.MarkRefine {
			p |= adapt.EdgeBit(le)
		}
	}
	return p
}

// adaptWorld adapts the (Dist, Adaptor) pair to the propagation engine's
// World interface: patterns are proposed against the live mark set
// (reads only, safe across worker goroutines), commits go through
// SetMark serially, and reach/SPL probes walk the edge incidence lists.
type adaptWorld struct {
	d *Dist
	a *adapt.Adaptor
}

func (w adaptWorld) Owner(el int32) int32 { return w.d.OwnerOf(mesh.ElemID(el)) }

func (w adaptWorld) Propose(el int32, buf []int32) []int32 {
	t := &w.d.M.Elems[el]
	if !t.Active() {
		return buf
	}
	p := w.d.patternOf(w.a, t)
	add := p.Upgrade() &^ p
	if add == 0 {
		return buf
	}
	for le := 0; le < 6; le++ {
		if add.Has(le) {
			buf = append(buf, int32(t.E[le]))
		}
	}
	return buf
}

func (w adaptWorld) Commit(e int32) { w.a.SetMark(mesh.EdgeID(e), adapt.MarkRefine) }

func (w adaptWorld) Reach(e int32, elems []int32) []int32 {
	for _, nb := range w.d.M.Edges[e].Elems {
		if w.d.M.Elems[nb].Active() {
			elems = append(elems, int32(nb))
		}
	}
	return elems
}

func (w adaptWorld) SPL(e int32, spl []int32) []int32 {
	return w.d.EdgeSPL(mesh.EdgeID(e), spl)
}

// seedFrontier returns the initial propagation frontier: every active
// element with a nonzero pattern, in ascending element order (the
// chunked gather preserves the slab order).
func (d *Dist) seedFrontier(a *adapt.Adaptor) []int32 {
	n := len(d.M.Elems)
	return chunk.Gather(n, EffectiveWorkers(n, d.Workers), func(lo, hi int) []int32 {
		var loc []int32
		for i := lo; i < hi; i++ {
			t := &d.M.Elems[i]
			if t.Active() && d.patternOf(a, t) != 0 {
				loc = append(loc, int32(i))
			}
		}
		return loc
	})
}

// perRankCounts runs a chunked scan over [lo, hi), calling visit with a
// per-chunk rank-count accumulator and a reusable SPL scratch buffer —
// identical totals at every worker count (chunk.GatherCounts merges in
// chunk order).
func (d *Dist) perRankCounts(lo, hi int, visit func(i int, cnt []int64, buf *[]int32)) []int64 {
	n := hi - lo
	return chunk.GatherCounts(n, EffectiveWorkers(n, d.Workers), d.P, func(clo, chi int, cnt []int64) {
		var buf []int32
		for i := clo; i < chi; i++ {
			visit(lo+i, cnt, &buf)
		}
	})
}

// PredictAdaptOps returns the op accounting one parallel adaption pass
// reports for the given phase quantities: the chunked target/shared-mark
// scans over nEdges edges, the two chunked slab-sized element scans
// (seed or snapshot, plus the execution charge over nElems), the
// kernel's serial element mutations, the SPL-intersection classification
// over the classified new edges, and the propagation engine's result —
// which also carries any pass-specific extras the caller charged into
// prop.Ops (classification pair bookkeeping, coarsening's created-tail
// scan). The
// slab scans resolve their worker count against par.SerialCutoff (the
// engine's rounds already carry theirs against propagate.SerialCutoff),
// so a serial host or a small mesh reports Crit == Total.
func PredictAdaptOps(nEdges, nElems, mutations, classified int64, prop propagate.Result, workers int) propagate.Ops {
	o := prop.Ops
	ewE := EffectiveWorkers(int(nEdges), workers)
	ewN := EffectiveWorkers(int(nElems), workers)
	// The target mark scan streams the edge slab (compute-bound); the
	// bisection / shared-mark scan probes SPLs over the same slab
	// (memory-bound pointer chasing).
	o.AddParallel(nEdges, ewE)
	o.AddParallelMem(nEdges, ewE)
	// Seed/snapshot plus execution-charge pattern scans over the element
	// slab (compute-bound).
	o.AddParallel(2*nElems, ewN)
	// Kernel mutations: serial element creation/removal (memory-bound
	// data-structure updates).
	o.AddSerialMem(mutations)
	// Classification: SPL-intersection probe over the new-edge slab
	// (memory-bound).
	if classified > 0 {
		o.AddParallelMem(classified, EffectiveWorkers(int(classified), workers))
	}
	o.Clamp()
	return o
}

// ParallelRefine executes one refinement pass of the distributed 3D_TAG
// algorithm: edge marking, superstep frontier propagation through the
// propagate engine, independent subdivision of local elements, and the
// shared-edge classification round. The mesh mutation is performed by the
// (verified) serial kernel; the per-rank work and message pattern are
// replayed against the ownership map and charged to the machine model.
// All scans are chunked over Workers goroutines with the same
// determinism contract as ExecuteRemap and Init.
func (d *Dist) ParallelRefine(a *adapt.Adaptor, mdl machine.Model) (adapt.RefineStats, AdaptTimings) {
	var tm AdaptTimings
	m := d.M
	clk := machine.NewClock(d.P)
	prop := d.propagator()
	xm := d.adaptFaults(prop)
	trace := snapshotFaults(xm)

	// --- Target phase: error indicator over local edges. ---
	initSt := d.Init()
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(initSt.LocalEdges[r])*mdl.MarkEdge)
	}
	clk.Barrier()
	tm.Target = clk.Elapsed()

	nEdges0 := len(m.Edges)
	nElems0 := len(m.Elems)

	// --- Propagation phase: superstep frontier fixpoint. ---
	res := prop.Run(adaptWorld{d, a}, d.seedFrontier(a), clk, mdl)
	if res.Rounds == 0 {
		res.Rounds = 1 // the fixpoint-check round: one empty superstep
		clk.Barrier()
	}
	tm.CommRounds = res.Rounds
	tm.Msgs, tm.Words = res.Msgs, res.Words
	tm.SetupTime = res.SetupTime
	tm.Visits, tm.Marked = res.Visits, res.Marked
	propEnd := clk.Elapsed()
	tm.Propagate = propEnd - tm.Target

	// --- Execution phase: bisection + subdivision, attributed by owner. ---
	// Bisection work replicates on every rank sharing the edge; the scan
	// counts shares per rank and charges once per rank.
	marks := a.MarksSnapshot()
	bisect := d.perRankCounts(0, len(marks), func(ei int, cnt []int64, buf *[]int32) {
		if marks[ei] != adapt.MarkRefine {
			return
		}
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() {
			return
		}
		spl := d.EdgeSPL(mesh.EdgeID(ei), *buf)
		*buf = spl
		for _, r := range spl {
			cnt[r]++
		}
	})
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(bisect[r])*mdl.BisectEdge)
	}
	// Subdivision work goes to the element's owner, one unit per child.
	childCount := [4]int64{0, 2, 4, 8}
	children := d.perRankCounts(0, nElems0, func(i int, cnt []int64, _ *[]int32) {
		t := &m.Elems[i]
		if !t.Active() {
			return
		}
		if p := d.patternOf(a, t); p != 0 {
			cnt[d.OwnerOf(mesh.ElemID(i))] += childCount[p.Kind()]
		}
	})
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(children[r])*mdl.SubdivideChild)
	}
	edgesBefore := len(m.Edges)

	st := a.Refine()

	clk.Barrier()
	execEnd := clk.Elapsed()
	tm.Execute = execEnd - propEnd

	// --- Classification phase: new edges whose endpoint SPLs intersect
	// require one communication to decide shared vs. internal. ---
	pairs := propagate.AggregatePairs(d.classifyPairs(edgesBefore))
	ch := prop.ChargeExchange(clk, mdl, pairs)
	tm.Msgs += ch.Msgs
	tm.Words += ch.Words
	tm.SetupTime += ch.SetupTime
	clk.Barrier()
	tm.Classify = clk.Elapsed() - execEnd
	tm.Total = clk.Elapsed()

	res.Ops.AddSerial(int64(len(pairs)))
	tm.Ops = PredictAdaptOps(int64(nEdges0), int64(nElems0), int64(st.NewElems),
		int64(len(m.Edges)-edgesBefore), res, d.Workers)
	trace.record(xm, &tm)
	return st, tm
}

// classifyPairs runs the chunked shared-edge classification scan over the
// edges created at or after edgesBefore: every new non-half edge whose
// endpoint SPLs intersect in more than one rank contributes a two-word
// query (edge id + verdict) per ordered rank pair. The raw contributions
// merge in chunk order; AggregatePairs puts them in canonical charge
// order.
func (d *Dist) classifyPairs(edgesBefore int) []propagate.PairWords {
	m := d.M
	n := len(m.Edges) - edgesBefore
	return chunk.Gather(n, EffectiveWorkers(n, d.Workers), func(lo, hi int) []propagate.PairWords {
		var out []propagate.PairWords
		var s0, s1, inter []int32
		for i := lo; i < hi; i++ {
			ed := &m.Edges[edgesBefore+i]
			if ed.Dead || ed.Parent != mesh.InvalidEdge {
				continue // half-edges inherit their parent's SPL (case 2)
			}
			s0 = d.VertSPL(ed.V[0], s0)
			s1 = d.VertSPL(ed.V[1], s1)
			inter = intersectSorted(inter[:0], s0, s1)
			if len(inter) <= 1 {
				continue // internal edge (cases 1 and 3)
			}
			out = propagate.PairsFromSPL(out, inter, 2) // edge id + verdict, in words
		}
		return out
	})
}

// ParallelCoarsen executes one coarsening pass with per-rank attribution:
// marking over local edges, one shared-mark consistency exchange through
// the propagation backend, sibling-group removal charged to the parent's
// owner, and the conformity re-refinement charged to the new children's
// owners. The mark scan and both execution scans are chunked like
// ParallelRefine's.
func (d *Dist) ParallelCoarsen(a *adapt.Adaptor, mdl machine.Model) (adapt.CoarsenStats, AdaptTimings) {
	var tm AdaptTimings
	m := d.M
	clk := machine.NewClock(d.P)
	prop := d.propagator()
	xm := d.adaptFaults(prop)
	trace := snapshotFaults(xm)

	initSt := d.Init()
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(initSt.LocalEdges[r])*mdl.MarkEdge)
	}
	clk.Barrier()
	tm.Target = clk.Elapsed()

	nEdges0 := len(m.Edges)
	nElems0 := len(m.Elems)

	// Shared-mark consistency round: coarsen marks on shared edges are
	// exchanged once (symmetric marking makes further rounds unneeded).
	// The chunked scan gathers per-chunk (src, dst) contributions; the
	// sorted aggregation fixes the charge order the old per-round map
	// left to map iteration.
	marks := a.MarksSnapshot()
	nMarks := len(marks)
	raw := chunk.Gather(nMarks, EffectiveWorkers(nMarks, d.Workers), func(lo, hi int) []propagate.PairWords {
		var out []propagate.PairWords
		var buf []int32
		for ei := lo; ei < hi; ei++ {
			if marks[ei] != adapt.MarkCoarsen {
				continue
			}
			ed := &m.Edges[ei]
			if ed.Dead || ed.Bisected() {
				continue
			}
			spl := d.EdgeSPL(mesh.EdgeID(ei), buf)
			buf = spl
			if len(spl) < 2 {
				continue
			}
			out = propagate.PairsFromSPL(out, spl, 1)
		}
		return out
	})
	pairs := propagate.AggregatePairs(raw)
	var res propagate.Result
	res.Rounds = 1
	res.Ops.AddSerial(int64(len(pairs)))
	ch := prop.ChargeExchange(clk, mdl, pairs)
	res.Msgs, res.Words, res.SetupTime = ch.Msgs, ch.Words, ch.SetupTime
	clk.Barrier()
	tm.CommRounds = res.Rounds
	tm.Msgs, tm.Words = res.Msgs, res.Words
	tm.SetupTime = res.SetupTime
	propEnd := clk.Elapsed()
	tm.Propagate = propEnd - tm.Target

	// Snapshot liveness so the post-kernel scans can attribute removals.
	deadBefore := make([]bool, nElems0)
	chunk.For(nElems0, EffectiveWorkers(nElems0, d.Workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			deadBefore[i] = m.Elems[i].Dead
		}
	})

	st := a.Coarsen()

	// Removal work: newly dead elements, charged to their tree's owner.
	removed := d.perRankCounts(0, nElems0, func(i int, cnt []int64, _ *[]int32) {
		if m.Elems[i].Dead && !deadBefore[i] {
			cnt[d.OwnerOf(mesh.ElemID(i))]++
		}
	})
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(removed[r])*mdl.RemoveElem)
	}
	// Re-refinement work: elements created during the pass. This tail
	// scan is a third element pass ParallelRefine doesn't have, so it is
	// charged into the pass's accounting here, at the tail's own
	// effective worker count (PredictAdaptOps covers only the two
	// slab-sized scans).
	tail := len(m.Elems) - nElems0
	created := d.perRankCounts(nElems0, len(m.Elems), func(i int, cnt []int64, _ *[]int32) {
		if !m.Elems[i].Dead {
			cnt[d.OwnerOf(mesh.ElemID(i))]++
		}
	})
	res.Ops.AddParallel(int64(tail), EffectiveWorkers(tail, d.Workers))
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(created[r])*mdl.SubdivideChild)
	}
	clk.Barrier()
	tm.Execute = clk.Elapsed() - propEnd
	tm.Total = clk.Elapsed()

	var mutations int64
	for r := 0; r < d.P; r++ {
		mutations += removed[r] + created[r]
	}
	tm.Ops = PredictAdaptOps(int64(nEdges0), int64(nElems0), mutations, 0, res, d.Workers)
	trace.record(xm, &tm)
	return st, tm
}

// intersectSorted intersects two sorted unique slices into dst.
func intersectSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}
