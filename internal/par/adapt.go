package par

import (
	"plum/internal/adapt"
	"plum/internal/machine"
	"plum/internal/mesh"
)

// AdaptTimings reports the modeled SP2 execution time of one parallel
// adaption phase, broken down the way the paper instruments it.
type AdaptTimings struct {
	// Target is the edge-marking (error indicator) phase: perfectly
	// distributed across local edges.
	Target float64
	// Propagate is the iterative pattern-upgrade phase including its
	// communication rounds.
	Propagate float64
	// Execute is the subdivision/removal phase.
	Execute float64
	// Classify is the post-refinement shared-edge classification
	// communication (the paper's "new edge across a face" case).
	Classify float64
	// Total is the slowest-rank end-to-end time.
	Total float64
	// CommRounds is the number of propagation supersteps.
	CommRounds int
	// Msgs and Words count the propagation + classification traffic.
	Msgs, Words int64
}

// patternOf mirrors the adaptor's pattern computation: local edges that
// are marked for refinement or already bisected.
func (d *Dist) patternOf(a *adapt.Adaptor, t *mesh.Element) adapt.Pattern {
	var p adapt.Pattern
	for le, e := range t.E {
		if d.M.Edges[e].Bisected() || a.MarkOf(e) == adapt.MarkRefine {
			p |= adapt.EdgeBit(le)
		}
	}
	return p
}

// ParallelRefine executes one refinement pass of the distributed 3D_TAG
// algorithm: rank-local marking propagation with bulk-synchronous
// exchange of newly marked shared edges, independent subdivision of local
// elements, and the shared-edge classification round. The mesh mutation is
// performed by the (verified) serial kernel; the per-rank work and message
// pattern are replayed against the ownership map and charged to the
// machine model.
func (d *Dist) ParallelRefine(a *adapt.Adaptor, mdl machine.Model) (adapt.RefineStats, AdaptTimings) {
	var tm AdaptTimings
	m := d.M
	clk := machine.NewClock(d.P)

	// --- Target phase: error indicator over local edges. ---
	initSt := d.Init()
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(initSt.LocalEdges[r])*mdl.MarkEdge)
	}
	clk.Barrier()
	tm.Target = clk.Elapsed()

	// --- Propagation phase: local fixpoints + shared-edge exchange. ---
	queues := make([][]mesh.ElemID, d.P)
	queued := make([]bool, len(m.Elems))
	push := func(el mesh.ElemID) {
		if !queued[el] && m.Elems[el].Active() {
			queued[el] = true
			r := d.OwnerOf(el)
			queues[r] = append(queues[r], el)
		}
	}
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Active() && d.patternOf(a, t) != 0 {
			push(mesh.ElemID(i))
		}
	}

	var splBuf []int32
	for {
		tm.CommRounds++
		visits := make([]int64, d.P)
		// outbox[r][dst] = newly marked shared edge ids to send.
		outbox := make([]map[int32][]int64, d.P)
		for r := range outbox {
			outbox[r] = make(map[int32][]int64)
		}
		deferred := make(map[int32][]mesh.ElemID) // remote activations this round

		for r := 0; r < d.P; r++ {
			q := queues[r]
			queues[r] = nil
			for len(q) > 0 {
				el := q[len(q)-1]
				q = q[:len(q)-1]
				queued[el] = false
				t := &m.Elems[el]
				if !t.Active() {
					continue
				}
				visits[r]++
				p := d.patternOf(a, t)
				add := p.Upgrade() &^ p
				if add == 0 {
					continue
				}
				for le := 0; le < 6; le++ {
					if !add.Has(le) {
						continue
					}
					e := t.E[le]
					a.SetMark(e, adapt.MarkRefine)
					spl := d.EdgeSPL(e, splBuf)
					splBuf = spl
					for _, nb := range m.Edges[e].Elems {
						o := d.OwnerOf(nb)
						if o == int32(r) {
							if !queued[nb] && m.Elems[nb].Active() {
								queued[nb] = true
								q = append(q, nb)
							}
						} else {
							deferred[o] = append(deferred[o], nb)
						}
					}
					if len(spl) > 1 {
						for _, o := range spl {
							if o != int32(r) {
								outbox[r][o] = append(outbox[r][o], int64(e))
							}
						}
					}
				}
			}
		}

		// Charge this round's work and traffic.
		anyMsg := false
		for r := 0; r < d.P; r++ {
			w := float64(visits[r]) * mdl.PropagateVisit
			for _, edges := range outbox[r] {
				w += mdl.MsgTime(int64(len(edges)))
				tm.Msgs++
				tm.Words += int64(len(edges))
				anyMsg = true
			}
			clk.Add(r, w)
		}
		clk.Barrier()

		if !anyMsg {
			break
		}
		// Deliver: remote ranks re-examine elements adjacent to newly
		// marked shared edges.
		for _, els := range deferred {
			for _, el := range els {
				push(el)
			}
		}
		// If the deliveries did not enqueue anything new the next round
		// terminates immediately with no messages.
	}
	propEnd := clk.Elapsed()
	tm.Propagate = propEnd - tm.Target

	// --- Execution phase: bisection + subdivision, attributed by owner. ---
	// Bisection work replicates on every rank sharing the edge.
	marks := a.MarksSnapshot()
	for ei := range marks {
		if marks[ei] != adapt.MarkRefine {
			continue
		}
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() {
			continue
		}
		spl := d.EdgeSPL(mesh.EdgeID(ei), splBuf)
		splBuf = spl
		for _, r := range spl {
			clk.Add(int(r), mdl.BisectEdge)
		}
	}
	// Subdivision work goes to the element's owner.
	childCount := [4]float64{0, 2, 4, 8}
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		p := d.patternOf(a, t)
		if p == 0 {
			continue
		}
		clk.Add(int(d.OwnerOf(mesh.ElemID(i))), childCount[p.Kind()]*mdl.SubdivideChild)
	}
	edgesBefore := len(m.Edges)

	st := a.Refine()

	clk.Barrier()
	execEnd := clk.Elapsed()
	tm.Execute = execEnd - propEnd

	// --- Classification phase: new edges whose endpoint SPLs intersect
	// require one communication to decide shared vs. internal. ---
	type pair [2]int32
	queries := make(map[pair]int64)
	var vb []int32
	for ei := edgesBefore; ei < len(m.Edges); ei++ {
		ed := &m.Edges[ei]
		if ed.Dead || ed.Parent != mesh.InvalidEdge {
			continue // half-edges inherit their parent's SPL (case 2)
		}
		s0 := append([]int32(nil), d.VertSPL(ed.V[0], vb)...)
		s1 := d.VertSPL(ed.V[1], vb)
		vb = s1
		inter := intersectSorted(s0, s1)
		if len(inter) <= 1 {
			continue // internal edge (cases 1 and 3)
		}
		for _, r := range inter {
			for _, o := range inter {
				if r != o {
					queries[pair{r, o}] += 2 // edge id + verdict, in words
				}
			}
		}
	}
	for pq, words := range queries {
		clk.Add(int(pq[0]), mdl.MsgTime(words))
		tm.Msgs++
		tm.Words += words
	}
	clk.Barrier()
	tm.Classify = clk.Elapsed() - execEnd
	tm.Total = clk.Elapsed()
	return st, tm
}

// ParallelCoarsen executes one coarsening pass with per-rank attribution:
// marking over local edges, sibling-group removal charged to the parent's
// owner, the conformity re-refinement charged to the new children's
// owners, and one shared-mark consistency round.
func (d *Dist) ParallelCoarsen(a *adapt.Adaptor, mdl machine.Model) (adapt.CoarsenStats, AdaptTimings) {
	var tm AdaptTimings
	m := d.M
	clk := machine.NewClock(d.P)

	initSt := d.Init()
	for r := 0; r < d.P; r++ {
		clk.Add(r, float64(initSt.LocalEdges[r])*mdl.MarkEdge)
	}
	clk.Barrier()
	tm.Target = clk.Elapsed()

	// Shared-mark consistency round: coarsen marks on shared edges are
	// exchanged once (symmetric marking makes further rounds unneeded).
	type pair [2]int32
	batch := make(map[pair]int64)
	var splBuf []int32
	marks := a.MarksSnapshot()
	for ei := range marks {
		if marks[ei] != adapt.MarkCoarsen {
			continue
		}
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() {
			continue
		}
		spl := d.EdgeSPL(mesh.EdgeID(ei), splBuf)
		splBuf = spl
		if len(spl) < 2 {
			continue
		}
		for _, r := range spl {
			for _, o := range spl {
				if r != o {
					batch[pair{r, o}]++
				}
			}
		}
	}
	for pq, words := range batch {
		clk.Add(int(pq[0]), mdl.MsgTime(words))
		tm.Msgs++
		tm.Words += words
	}
	clk.Barrier()
	tm.CommRounds = 1
	propEnd := clk.Elapsed()
	tm.Propagate = propEnd - tm.Target

	deadBefore := make([]bool, len(m.Elems))
	for i := range m.Elems {
		deadBefore[i] = m.Elems[i].Dead
	}
	nBefore := len(m.Elems)

	st := a.Coarsen()

	// Removal work: newly dead elements, charged to their tree's owner.
	for i := 0; i < nBefore; i++ {
		if m.Elems[i].Dead && !deadBefore[i] {
			clk.Add(int(d.OwnerOf(mesh.ElemID(i))), mdl.RemoveElem)
		}
	}
	// Re-refinement work: elements created during the pass.
	for i := nBefore; i < len(m.Elems); i++ {
		if !m.Elems[i].Dead {
			clk.Add(int(d.OwnerOf(mesh.ElemID(i))), mdl.SubdivideChild)
		}
	}
	clk.Barrier()
	tm.Execute = clk.Elapsed() - propEnd
	tm.Total = clk.Elapsed()
	return st, tm
}

// intersectSorted intersects two sorted unique slices.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
