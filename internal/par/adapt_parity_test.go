package par

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
	"plum/internal/propagate"
)

// adaptFixture distributes a parallel-scale box mesh (large enough to
// engage the chunked slab scans and, with dense marks, the engine's
// parallel frontier rounds) over p ranks with the given worker knob and
// propagation backend.
func adaptFixture(t testing.TB, p, w int, prop propagate.Propagator) (*Dist, *adapt.Adaptor) {
	t.Helper()
	m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1}) // 10368 elements
	g := dual.Build(m)
	d := NewDist(m, p, partition.Partition(g, p, partition.MethodInertial))
	d.Workers = w
	d.Prop = prop
	return d, adapt.New(m)
}

// adaptRun executes one refine pass plus one coarsen pass and returns
// every observable: stats and timings for both, and the mesh census.
type adaptRun struct {
	RefineSt  adapt.RefineStats
	RefineTm  AdaptTimings
	CoarsenSt adapt.CoarsenStats
	CoarsenTm AdaptTimings
	Elems     int
	Edges     int
}

func runAdaptPass(t testing.TB, p, w int, prop propagate.Propagator) adaptRun {
	t.Helper()
	d, a := adaptFixture(t, p, w, prop)
	var out adaptRun
	a.MarkRandom(0.25, adapt.MarkRefine, 97)
	out.RefineSt, out.RefineTm = d.ParallelRefine(a, machine.SP2())
	a.MarkRandom(0.30, adapt.MarkCoarsen, 43)
	out.CoarsenSt, out.CoarsenTm = d.ParallelCoarsen(a, machine.SP2())
	out.Elems = d.M.NumActiveElems()
	out.Edges = d.M.NumActiveEdges()
	if err := d.M.Check(); err != nil {
		t.Fatalf("mesh invalid after adaption: %v", err)
	}
	return out
}

// normCrit zeroes the critical-path op shares, the only AdaptTimings
// fields allowed to vary with the worker knob (they reflect the effective
// worker count actually used).
func normCrit(tm AdaptTimings) AdaptTimings {
	tm.Ops.Crit, tm.Ops.MemCrit = 0, 0
	return tm
}

// TestAdaptWorkerParity is the determinism contract of the parallel
// adaption engine: for each propagation backend, the marks (hence the
// mesh), the kernel stats, the whole AdaptTimings — modeled float times,
// rounds, Msgs, Words included — and the op totals must be byte-identical
// for workers ∈ {1, 2, 4, 8}.
func TestAdaptWorkerParity(t *testing.T) {
	const p = 8
	for _, name := range propagate.Names {
		t.Run(name, func(t *testing.T) {
			mk := func(w int) propagate.Propagator {
				prop, ok := propagate.ByName(name, w)
				if !ok {
					t.Fatalf("unknown backend %q", name)
				}
				return prop
			}
			ref := runAdaptPass(t, p, 1, mk(1))
			if ref.RefineTm.Ops.Crit != ref.RefineTm.Ops.Total ||
				ref.CoarsenTm.Ops.Crit != ref.CoarsenTm.Ops.Total {
				t.Fatalf("workers=1 must report Crit == Total: refine %+v coarsen %+v",
					ref.RefineTm.Ops, ref.CoarsenTm.Ops)
			}
			if ref.RefineTm.Msgs == 0 || ref.RefineTm.Marked == 0 || ref.CoarsenTm.Msgs == 0 {
				t.Fatalf("fixture exchanged nothing interesting: %+v", ref.RefineTm)
			}
			for _, w := range []int{2, 4, 8} {
				got := runAdaptPass(t, p, w, mk(w))
				if got.RefineSt != ref.RefineSt || got.CoarsenSt != ref.CoarsenSt {
					t.Errorf("workers=%d: kernel stats diverge", w)
				}
				if got.Elems != ref.Elems || got.Edges != ref.Edges {
					t.Errorf("workers=%d: mesh diverges: %d/%d vs %d/%d",
						w, got.Elems, got.Edges, ref.Elems, ref.Edges)
				}
				for pass, pair := range map[string][2]AdaptTimings{
					"refine":  {got.RefineTm, ref.RefineTm},
					"coarsen": {got.CoarsenTm, ref.CoarsenTm},
				} {
					g, r := pair[0], pair[1]
					if g.Ops.Total != r.Ops.Total || g.Ops.MemTotal != r.Ops.MemTotal {
						t.Errorf("workers=%d %s: op totals not worker-invariant: %d/%d vs %d/%d",
							w, pass, g.Ops.Total, g.Ops.MemTotal, r.Ops.Total, r.Ops.MemTotal)
					}
					if g.Ops.Crit > g.Ops.Total || g.Ops.MemCrit > g.Ops.MemTotal {
						t.Errorf("workers=%d %s: critical path exceeds total: %+v", w, pass, g.Ops)
					}
					if !reflect.DeepEqual(normCrit(g), normCrit(r)) {
						t.Errorf("workers=%d %s: AdaptTimings diverge:\n got %+v\nwant %+v",
							w, pass, normCrit(g), normCrit(r))
					}
				}
			}
		})
	}
}

// TestAdaptChargeDeterministic is the regression test for the map-order
// nondeterminism of the old classification/consistency charging: the
// classification queries in ParallelRefine and the shared-mark batch in
// ParallelCoarsen were charged in Go map iteration order, so two
// identical runs could report different modeled times. They now
// accumulate in sorted (src, dst) pair order and must be bit-identical.
func TestAdaptChargeDeterministic(t *testing.T) {
	run := func() adaptRun {
		prop, _ := propagate.ByName("bulksync", 4)
		return runAdaptPass(t, 8, 4, prop)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical adaptions differ:\n  %+v\n  %+v", a, b)
	}
}

// TestAdaptSerialFallbackCritEqualsTotal pins the cost model to the
// execution path: below the serial cutoffs a large worker knob must not
// discount the critical path.
func TestAdaptSerialFallbackCritEqualsTotal(t *testing.T) {
	m := meshgen.SmallBox() // 384 elements: far below every cutoff
	g := dual.Build(m)
	d := NewDist(m, 4, partition.Partition(g, 4, partition.MethodGraphGrow))
	d.Workers = 8
	a := adapt.New(m)
	a.MarkRandom(0.15, adapt.MarkRefine, 7)
	_, tm := d.ParallelRefine(a, machine.SP2())
	if tm.Ops.Total == 0 {
		t.Fatal("no ops reported")
	}
	if tm.Ops.Crit != tm.Ops.Total || tm.Ops.MemCrit != tm.Ops.MemTotal {
		t.Errorf("serial fallback must report Crit == Total: %+v", tm.Ops)
	}
	a.MarkRandom(0.3, adapt.MarkCoarsen, 9)
	_, ctm := d.ParallelCoarsen(a, machine.SP2())
	if ctm.Ops.Crit != ctm.Ops.Total || ctm.Ops.MemCrit != ctm.Ops.MemTotal {
		t.Errorf("coarsen serial fallback must report Crit == Total: %+v", ctm.Ops)
	}
}

// TestAggregatedBatchesMessages pins the point of the Aggregated backend:
// identical word volume, strictly fewer messages than the per-pair
// BulkSync exchange on a fixture with real rank fan-out.
func TestAggregatedBatchesMessages(t *testing.T) {
	const p = 8
	bulk := runAdaptPass(t, p, 2, propagate.NewBulkSync(2))
	agg := runAdaptPass(t, p, 2, propagate.NewAggregated(2))
	if bulk.RefineSt != agg.RefineSt || bulk.Elems != agg.Elems {
		t.Fatal("backends must not change the adaption result")
	}
	if agg.RefineTm.Words != bulk.RefineTm.Words {
		t.Errorf("word volume must be backend-invariant: %d vs %d",
			agg.RefineTm.Words, bulk.RefineTm.Words)
	}
	if agg.RefineTm.Msgs >= bulk.RefineTm.Msgs {
		t.Errorf("aggregation did not reduce messages: %d vs %d",
			agg.RefineTm.Msgs, bulk.RefineTm.Msgs)
	}
	if agg.CoarsenTm.Words != bulk.CoarsenTm.Words {
		t.Errorf("coarsen word volume must be backend-invariant: %d vs %d",
			agg.CoarsenTm.Words, bulk.CoarsenTm.Words)
	}
}
