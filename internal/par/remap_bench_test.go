package par

import (
	"fmt"
	"runtime"
	"testing"

	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// remapBenchFixture distributes a parallel-scale box mesh over p ranks
// and returns the rotated ownership the benches execute against.
func remapBenchFixture(p int) (*Dist, []int32, []int32) {
	m := meshgen.Box(16, 16, 16, geom.Vec3{X: 1, Y: 1, Z: 1}) // 24576 elements
	g := dual.Build(m)
	d := NewDist(m, p, partition.Partition(g, p, partition.MethodInertial))
	orig := d.Owners()
	newOwner := append([]int32(nil), orig...)
	for v := range newOwner {
		if v%2 == 0 {
			newOwner[v] = (newOwner[v] + 1) % int32(p)
		}
	}
	return d, orig, newOwner
}

// benchRemapWorkers mirrors the root bench_test.go convention: the serial
// baseline and the machine's full parallelism, when they differ.
func benchRemapWorkers() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// BenchmarkExecuteRemap is the acceptance benchmark of the parallel remap
// execution: the CSR flow scatter, the real payload exchange, and the
// canonical-order model accounting, workers=1 versus GOMAXPROCS. The
// payload buffer and result are identical at every worker count; only the
// wall time may differ.
func BenchmarkExecuteRemap(b *testing.B) {
	mdl := machine.SP2()
	for _, bw := range benchRemapWorkers() {
		d, orig, newOwner := remapBenchFixture(8)
		d.Workers = bw
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.SetOwners(orig)
				if _, err := d.ExecuteRemap(newOwner, mdl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecuteRemapStreaming measures the windowed executor against
// the bulk path above on the same fixture: identical RemapResult, but the
// payload is packed and exchanged one flow window at a time, so the
// in-flight buffer peaks at the adaptive window budget instead of the
// whole migration.
func BenchmarkExecuteRemapStreaming(b *testing.B) {
	mdl := machine.SP2()
	for _, bw := range benchRemapWorkers() {
		d, orig, newOwner := remapBenchFixture(8)
		d.Workers = bw
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.SetOwners(orig)
				if _, err := d.ExecuteRemapStreaming(newOwner, mdl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInitScan measures the chunked shared-object analysis (edge and
// vertex SPL probes plus the local-subgrid census), serial versus the
// worker pool.
func BenchmarkInitScan(b *testing.B) {
	for _, bw := range benchRemapWorkers() {
		d, _, _ := remapBenchFixture(8)
		d.Workers = bw
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if st := d.Init(); st.SharedEdges == 0 {
					b.Fatal("no shared edges")
				}
			}
		})
	}
}

// BenchmarkRankLoads measures the chunked ownership census the
// preliminary-evaluation step runs every cycle.
func BenchmarkRankLoads(b *testing.B) {
	for _, bw := range benchRemapWorkers() {
		d, _, _ := remapBenchFixture(8)
		d.Workers = bw
		b.Run(fmt.Sprintf("workers=%d", bw), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if loads := d.RankLoads(); len(loads) != 8 {
					b.Fatal("bad loads")
				}
			}
		})
	}
}
