package par

// The wire side of the exchange schedules. accountRemap charges the
// machine model for a schedule; this file actually moves the element
// records between goroutine ranks under the same schedule, over the plain
// or reliable comm transport:
//
//   - flat: one Alltoallv buffer per (src, dst) flow — the legacy path,
//     kept byte-identical (same sends in the same order, so the fault
//     schedule's per-pair attempt counters advance exactly as before).
//   - aggregated: window flows ride inside combined frames
//     (comm.PackCombined) with per-flow sub-headers. The remap table has
//     at most one flow per (src, dst) pair per window, so each frame
//     carries a single sub; the schedule's setup savings — one modeled
//     setup per source instead of one per pair — are machine.ChargeFlows'
//     business, while this path proves the framing end to end and skips
//     empty flows entirely.
//   - hierarchical: a real two-level relay. Members gather their window
//     flows to the node leader in one combined frame, leaders exchange
//     one combined frame per communicating node pair, leaders scatter
//     per-member combined frames, and every hop routes by the sub-frame
//     headers.
//
// Every expectation — who sends, who receives, how many words — is
// derived from the canonical flow offsets on both sides of every hop,
// never from received data. A sender therefore always sends exactly the
// frames its receivers wait for (possibly partial or empty after an
// upstream reliable failure), so no rank can block on a lost transfer:
// missing flows surface as want-mismatches at their final destination and
// are counted as window failures for the transactional retry loop.

import (
	"fmt"
	"slices"

	"plum/internal/comm"
	"plum/internal/machine"
)

// Positive message tags for the combined-frame exchange paths; the comm
// package's built-in collectives use negative tags, so these never
// collide with an in-flight Alltoallv.
const (
	tagCombined = 100 + iota
	tagGatherUp
	tagInterNode
	tagScatterDown
)

// winPlan describes one exchange window over the canonical flow layout:
// flows [f0, f1) of the p×p table, with rec returning flow f's wire
// records (zero-copy subslices of the caller's record buffer).
type winPlan struct {
	f0, f1    int
	p         int
	flowStart []int64
	rec       func(f int) []int64
}

// want returns flow f's planned element count, zero outside the window.
func (pl *winPlan) want(f int) int64 {
	if f < pl.f0 || f >= pl.f1 {
		return 0
	}
	return pl.flowStart[f+1] - pl.flowStart[f]
}

// exchangeWindow runs one window of the remap exchange under the selected
// schedule, accumulating verified element counts into recv[rank]. On the
// reliable path (reliable=true) transfers that exhausted their attempt
// budget are counted into failCount[rank] instead of delivered, and the
// caller decides whether to retry the window; on the plain path failCount
// may be nil and any missing or mismatched flow panics (the transport
// cannot lose data, so it would be a bug). A non-nil crash mask kills the
// marked ranks at the window boundary — before they send or receive a
// word — modeling a processor death detected by its peers mid-stage; Run
// reports it as a *comm.CrashError. The returned error is a rank panic
// aggregated by comm.World.Run.
func exchangeWindow(w *comm.World, x machine.Exchange, topo machine.Topology, pl *winPlan, reliable bool, recv, failCount []int64, crash []bool) error {
	var body func(c *comm.Comm)
	switch x {
	case machine.ExchangeAggregated:
		body = func(c *comm.Comm) { exchangeAggregated(c, pl, reliable, recv, failCount) }
	case machine.ExchangeHierarchical:
		info := buildHierInfo(pl, topo)
		body = func(c *comm.Comm) { exchangeHierarchical(c, topo, pl, info, reliable, recv, failCount) }
	default:
		body = func(c *comm.Comm) { exchangeFlat(c, pl, reliable, recv, failCount) }
	}
	if crash == nil {
		return w.Run(body)
	}
	return w.Run(func(c *comm.Comm) {
		if crash[c.Rank()] {
			c.Crash()
		}
		body(c)
	})
}

// exchangeFlat is the legacy schedule: every rank contributes one
// Alltoallv buffer per destination (empty outside its window flows) and
// verifies each received flow against the plan.
func exchangeFlat(c *comm.Comm, pl *winPlan, reliable bool, recv, failCount []int64) {
	p := pl.p
	self := c.Rank()
	bufs := make([][]int64, p)
	for f := pl.f0; f < pl.f1; f++ {
		if f/p == self {
			bufs[f%p] = pl.rec(f)
		}
	}
	var got [][]int64
	var failed []int
	if reliable {
		got, failed = c.AlltoallvReliable(bufs)
		failCount[self] = int64(len(failed))
	} else {
		got = c.Alltoallv(bufs)
	}
	for from, data := range got {
		if from == self || slices.Contains(failed, from) {
			continue
		}
		want := pl.want(from*p + self)
		if int64(len(data)) != want*recWords {
			panic(fmt.Sprintf("par: window flow %d->%d carried %d words, want %d",
				from, self, len(data), want*recWords))
		}
		recv[self] += want
	}
}

// exchangeAggregated wraps each nonempty window flow in a combined frame.
// Receivers take frames from their expected sources in ascending rank
// order, so the exchange is deterministic without a barrier.
func exchangeAggregated(c *comm.Comm, pl *winPlan, reliable bool, recv, failCount []int64) {
	p := pl.p
	self := c.Rank()
	for f := pl.f0; f < pl.f1; f++ {
		dst := f % p
		if f/p != self || dst == self || pl.want(f) == 0 {
			continue
		}
		frame := comm.PackCombined([]comm.SubFrame{{Src: int32(self), Dst: int32(dst), Data: pl.rec(f)}})
		if reliable {
			c.SendReliable(dst, tagCombined, frame)
		} else {
			c.Send(dst, tagCombined, frame)
		}
	}
	for from := 0; from < p; from++ {
		want := pl.want(from*p + self)
		if from == self || want == 0 {
			continue
		}
		var frame []int64
		if reliable {
			d, _, ok := c.RecvReliable(from, tagCombined)
			if !ok {
				failCount[self]++
				continue
			}
			frame = d
		} else {
			frame, _ = c.Recv(from, tagCombined)
		}
		subs := unpackVia(frame, self, p)
		if len(subs) != 1 || int(subs[0].Src) != from || int(subs[0].Dst) != self ||
			int64(len(subs[0].Data)) != want*recWords {
			panic(fmt.Sprintf("par: combined flow %d->%d does not match its plan (%d subs)",
				from, self, len(subs)))
		}
		recv[self] += want
	}
}

// hierInfo is the plan-derived routing knowledge of one hierarchical
// window, computed once and shared read-only by every rank goroutine:
// which ranks send or receive anything, and which node pairs exchange an
// inter-node combined frame.
type hierInfo struct {
	hasOut, hasIn []bool
	outNodes      [][]int32 // per node: dst nodes it sends a combined frame to
	inNodes       [][]int32 // per node: src nodes it receives a combined frame from
}

func buildHierInfo(pl *winPlan, topo machine.Topology) *hierInfo {
	p := pl.p
	nn := topo.Nodes(p)
	info := &hierInfo{
		hasOut:   make([]bool, p),
		hasIn:    make([]bool, p),
		outNodes: make([][]int32, nn),
		inNodes:  make([][]int32, nn),
	}
	for f := pl.f0; f < pl.f1; f++ {
		src, dst := f/p, f%p
		if src == dst || pl.want(f) == 0 {
			continue
		}
		info.hasOut[src] = true
		info.hasIn[dst] = true
		na, nb := topo.Node(src), topo.Node(dst)
		if na != nb {
			info.outNodes[na] = append(info.outNodes[na], int32(nb))
			info.inNodes[nb] = append(info.inNodes[nb], int32(na))
		}
	}
	for n := 0; n < nn; n++ {
		slices.Sort(info.outNodes[n])
		info.outNodes[n] = slices.Compact(info.outNodes[n])
		slices.Sort(info.inNodes[n])
		info.inNodes[n] = slices.Compact(info.inNodes[n])
	}
	return info
}

// unpackVia unpacks a combined frame that arrived over a checksum-clean
// delivery and bounds-checks every sub-frame's endpoints. A structural
// violation here is a routing bug, not an injected fault, so it panics in
// both modes.
func unpackVia(frame []int64, self, p int) []comm.SubFrame {
	subs, err := comm.UnpackCombined(frame)
	if err != nil {
		panic(fmt.Sprintf("par: rank %d received malformed combined frame: %v", self, err))
	}
	for _, s := range subs {
		if s.Src < 0 || int(s.Src) >= p || s.Dst < 0 || int(s.Dst) >= p {
			panic(fmt.Sprintf("par: rank %d received sub-frame with invalid route %d->%d", self, s.Src, s.Dst))
		}
	}
	return subs
}

// collectDelivered verifies the window flows delivered to rank self
// against the plan: every expected flow must be present with exactly
// want·recWords words. A missing flow counts as a transfer failure on the
// reliable path (an upstream hop exhausted its budget) and panics on the
// plain path; a present-but-wrong-size flow is always a bug.
func collectDelivered(pl *winPlan, self int, delivered map[int][]int64, reliable bool, recv, failCount []int64) {
	p := pl.p
	for src := 0; src < p; src++ {
		f := src*p + self
		want := pl.want(f)
		if src == self || want == 0 {
			continue
		}
		data, ok := delivered[f]
		switch {
		case ok && int64(len(data)) == want*recWords:
			recv[self] += want
		case ok:
			panic(fmt.Sprintf("par: window flow %d->%d carried %d words, want %d",
				src, self, len(data), want*recWords))
		case reliable:
			failCount[self]++
		default:
			panic(fmt.Sprintf("par: window flow %d->%d missing from hierarchical delivery", src, self))
		}
	}
}

// exchangeHierarchical relays the window through node leaders in three
// hops — gather up, inter-node, scatter down — with every frame built and
// received against the shared plan info.
func exchangeHierarchical(c *comm.Comm, topo machine.Topology, pl *winPlan, info *hierInfo, reliable bool, recv, failCount []int64) {
	p := pl.p
	self := c.Rank()
	node := topo.Node(self)
	leader := topo.Leader(node)

	send := func(dst, tag int, frame []int64) {
		if reliable {
			c.SendReliable(dst, tag, frame)
		} else {
			c.Send(dst, tag, frame)
		}
	}
	// recvFrame returns ok=false when the reliable transfer exhausted its
	// budget; the flows it carried then surface as misses downstream.
	recvFrame := func(src, tag int) ([]int64, bool) {
		if reliable {
			d, _, ok := c.RecvReliable(src, tag)
			return d, ok
		}
		d, _ := c.Recv(src, tag)
		return d, true
	}

	if self != leader {
		// Member: gather outgoing window flows up to the leader in one
		// combined frame (destination-ascending sub order) ...
		if info.hasOut[self] {
			var subs []comm.SubFrame
			for dst := 0; dst < p; dst++ {
				if f := self*p + dst; dst != self && pl.want(f) > 0 {
					subs = append(subs, comm.SubFrame{Src: int32(self), Dst: int32(dst), Data: pl.rec(f)})
				}
			}
			send(leader, tagGatherUp, comm.PackCombined(subs))
		}
		// ... and take incoming flows from the leader's scatter frame. A
		// failed scatter delivery leaves the map empty, so every expected
		// flow is counted as a miss.
		if info.hasIn[self] {
			delivered := make(map[int][]int64)
			if frame, ok := recvFrame(leader, tagScatterDown); ok {
				for _, s := range unpackVia(frame, self, p) {
					if int(s.Dst) != self {
						panic(fmt.Sprintf("par: rank %d received scatter sub-frame for rank %d", self, s.Dst))
					}
					delivered[int(s.Src)*p+int(s.Dst)] = s.Data
				}
			}
			collectDelivered(pl, self, delivered, reliable, recv, failCount)
		}
		return
	}

	// Leader: route the node's window traffic. have maps flow id to the
	// records currently held; the leader's own flows ride free.
	have := make(map[int][]int64)
	for dst := 0; dst < p; dst++ {
		if f := self*p + dst; dst != self && pl.want(f) > 0 {
			have[f] = pl.rec(f)
		}
	}
	for m := self + 1; m < p && topo.Node(m) == node; m++ {
		if !info.hasOut[m] {
			continue
		}
		frame, ok := recvFrame(m, tagGatherUp)
		if !ok {
			continue // the member's flows surface as misses at their destinations
		}
		for _, s := range unpackVia(frame, self, p) {
			if int(s.Src) != m {
				panic(fmt.Sprintf("par: leader %d got gather sub-frame claiming source %d from member %d", self, s.Src, m))
			}
			have[int(s.Src)*p+int(s.Dst)] = s.Data
		}
	}

	// Inter-node: one combined frame per communicating node pair, sent
	// even when gather failures left it partial or empty — the receiving
	// leader's expectation comes from the plan, not from what survived.
	for _, nb := range info.outNodes[node] {
		var subs []comm.SubFrame
		for f := pl.f0; f < pl.f1; f++ {
			src, dst := f/p, f%p
			if topo.Node(src) != node || topo.Node(dst) != int(nb) {
				continue
			}
			if data, ok := have[f]; ok {
				subs = append(subs, comm.SubFrame{Src: int32(src), Dst: int32(dst), Data: data})
			}
		}
		send(topo.Leader(int(nb)), tagInterNode, comm.PackCombined(subs))
	}
	for _, na := range info.inNodes[node] {
		frame, ok := recvFrame(topo.Leader(int(na)), tagInterNode)
		if !ok {
			continue
		}
		for _, s := range unpackVia(frame, self, p) {
			if topo.Node(int(s.Src)) != int(na) || topo.Node(int(s.Dst)) != node {
				panic(fmt.Sprintf("par: leader %d got inter-node sub-frame %d->%d from node %d", self, s.Src, s.Dst, na))
			}
			have[int(s.Src)*p+int(s.Dst)] = s.Data
		}
	}

	// Scatter: one combined frame per member with expected incoming flows
	// (source-ascending sub order), again sent even when partial.
	for m := self + 1; m < p && topo.Node(m) == node; m++ {
		if !info.hasIn[m] {
			continue
		}
		var subs []comm.SubFrame
		for src := 0; src < p; src++ {
			if f := src*p + m; src != m && pl.want(f) > 0 {
				if data, ok := have[f]; ok {
					subs = append(subs, comm.SubFrame{Src: int32(src), Dst: int32(m), Data: data})
				}
			}
		}
		send(m, tagScatterDown, comm.PackCombined(subs))
	}
	// The leader's own incoming flows never leave the routing table.
	if info.hasIn[self] {
		delivered := make(map[int][]int64)
		for src := 0; src < p; src++ {
			if f := src*p + self; src != self {
				if data, ok := have[f]; ok {
					delivered[f] = data
				}
			}
		}
		collectDelivered(pl, self, delivered, reliable, recv, failCount)
	}
}
