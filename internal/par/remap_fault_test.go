package par

import (
	"errors"
	"reflect"
	"testing"

	"plum/internal/dual"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// stripRetryFields zeroes the recovery-only fields of a RemapResult, the
// time components retry charges flow into (RebuildTime is a subtraction
// against the inflated CommTime, so it can differ in the last ulp), and
// the worker-dependent critical op shares, so a faulted-but-recovered
// result can be compared against the fault-free reference.
func stripRetryFields(r RemapResult) RemapResult {
	r.Retries, r.RetryWords, r.WindowRetries, r.RetryTime = 0, 0, 0, 0
	r.CommTime, r.Total, r.RebuildTime = 0, 0, 0
	r.Ops.Crit, r.Ops.MemCrit = 0, 0
	return r
}

// approxEq compares two modeled times to a relative 1e-9.
func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	s := max(a, b)
	return d <= 1e-9*max(s, 1e-30)
}

// TestRemapFaultRecoveryParity is the recovery half of the determinism
// contract: with a generous retry budget, a faulted streaming remap must
// converge to the fault-free result — same owner array, same payload
// accounting, same pack/rebuild times — with the recovery visible only in
// the retry counters and the comm-side times. And the entire faulted
// result, retry traffic included, must be byte-identical at every worker
// count.
func TestRemapFaultRecoveryParity(t *testing.T) {
	const p = 8
	refD, newOwner := bigFixture(t, p)
	refD.Workers = 1
	refRes, err := refD.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}

	plan := &fault.Plan{Seed: 4242, Rate: 0.25}
	budget := fault.Retry{MsgAttempts: 10, WindowRetries: 4}
	var first RemapResult
	for i, w := range []int{1, 2, 4, 8} {
		d, _ := bigFixture(t, p)
		d.Workers = w
		d.Faults = plan
		d.Retry = budget
		res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
		if err != nil {
			t.Fatalf("workers=%d: recovery failed: %v", w, err)
		}
		if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
			t.Fatalf("workers=%d: recovered owner array diverges from fault-free", w)
		}
		if res.Retries == 0 || res.RetryTime == 0 {
			t.Errorf("workers=%d: rate 0.25 left no retry trace: %+v", w, res)
		}
		if res.Total <= refRes.Total || res.CommTime <= refRes.CommTime {
			t.Errorf("workers=%d: retry charges missing from modeled time: total %g vs %g",
				w, res.Total, refRes.Total)
		}
		if got, want := stripRetryFields(res), stripRetryFields(refRes); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: recovered result diverges beyond retry fields:\n got %+v\nwant %+v",
				w, got, want)
		}
		if !approxEq(res.RebuildTime, refRes.RebuildTime) {
			t.Errorf("workers=%d: rebuild time diverges: %g vs %g", w, res.RebuildTime, refRes.RebuildTime)
		}
		if i == 0 {
			first = res
			continue
		}
		a := res
		a.Ops.Crit, a.Ops.MemCrit = first.Ops.Crit, first.Ops.MemCrit
		if !reflect.DeepEqual(a, first) {
			t.Errorf("workers=%d: faulted result not worker-invariant:\n got %+v\nwant %+v", w, a, first)
		}
	}

	// The bulk executor recovers through the same machinery.
	d, _ := bigFixture(t, p)
	d.Faults = plan
	d.Retry = budget
	bres, err := d.ExecuteRemap(newOwner, machine.SP2())
	if err != nil {
		t.Fatalf("bulk recovery failed: %v", err)
	}
	if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
		t.Fatal("bulk recovered owner array diverges from fault-free")
	}
	if bres.Retries == 0 {
		t.Error("bulk recovery left no retry trace")
	}
}

// TestRemapRollbackRestoresOwnership pins graceful failure: when every
// message drops and the budget is tiny, both executors must report a
// typed, rolled-back transfer failure and leave the ownership map exactly
// as it was.
func TestRemapRollbackRestoresOwnership(t *testing.T) {
	const p = 4
	for _, streaming := range []bool{false, true} {
		d, newOwner := bigFixture(t, p)
		before := d.Owners()
		d.Faults = &fault.Plan{Seed: 9, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
		d.Retry = fault.Retry{MsgAttempts: 2, WindowRetries: 1}
		var err error
		if streaming {
			_, err = d.ExecuteRemapStreaming(newOwner, machine.SP2())
		} else {
			_, err = d.ExecuteRemap(newOwner, machine.SP2())
		}
		var re *RemapError
		if !errors.As(err, &re) {
			t.Fatalf("streaming=%v: error %v is not a *RemapError", streaming, err)
		}
		if re.Failure != FailTransfer || !re.RolledBack || !re.Retryable() {
			t.Fatalf("streaming=%v: unexpected failure %+v", streaming, re)
		}
		if re.Tries != 2 {
			t.Errorf("streaming=%v: window tried %d times, want 2", streaming, re.Tries)
		}
		if !reflect.DeepEqual(d.Owners(), before) {
			t.Fatalf("streaming=%v: ownership not rolled back", streaming)
		}
	}
}

// TestRemapPartialCommitRollback drives the streaming executor into a
// mid-stream abort — early windows commit, a later one exhausts its
// retries — and verifies the checkpoint restores even the already
// committed windows.
func TestRemapPartialCommitRollback(t *testing.T) {
	const p = 4
	d, newOwner := bigFixture(t, p)
	before := d.Owners()
	d.RemapWindow = 512 // many small windows
	// A low fault rate with zero recovery budget: most windows sail
	// through and commit, but over hundreds of messages some window hits
	// a fault and aborts the transaction.
	d.Faults = &fault.Plan{Seed: 3, Rate: 0.05, Kinds: []fault.Kind{fault.Drop}}
	d.Retry = fault.Retry{MsgAttempts: 1, WindowRetries: 0}
	_, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
	var re *RemapError
	if !errors.As(err, &re) {
		t.Fatalf("expected a rolled-back RemapError, got %v", err)
	}
	if !re.RolledBack || re.Window < 0 {
		t.Fatalf("unexpected failure shape: %+v", re)
	}
	if re.Window == 0 {
		t.Skip("first window failed; no partial commit to verify at this seed")
	}
	if !reflect.DeepEqual(d.Owners(), before) {
		t.Fatal("partial commits survived the rollback")
	}
}

// TestRemapZeroRatePlanIsLegacy pins the byte-parity acceptance criterion
// at the executor level: a present-but-empty fault plan must take the
// legacy exchange and reproduce the nil-plan result exactly, retry fields
// and all.
func TestRemapZeroRatePlanIsLegacy(t *testing.T) {
	const p = 8
	refD, newOwner := bigFixture(t, p)
	refRes, err := refD.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := bigFixture(t, p)
	d.Faults = &fault.Plan{Seed: 123, Rate: 0}
	d.Retry = fault.Budget(5)
	res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, refRes) {
		t.Errorf("zero-rate plan changed the result:\n got %+v\nwant %+v", res, refRes)
	}
	if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
		t.Error("zero-rate plan changed the owner array")
	}
}

// FuzzReliableExchange is the transactional contract under arbitrary fault
// plans: the streaming remap either converges to the fault-free result
// (same owners, same conserved payload) or rolls back with the pre-remap
// ownership verifiably intact. There is no third state.
func FuzzReliableExchange(f *testing.F) {
	f.Add(int64(1), 0.2, uint8(3), uint8(2), int64(0))
	f.Add(int64(7), 0.95, uint8(1), uint8(0), int64(512))
	f.Add(int64(42), 0.5, uint8(6), uint8(3), int64(97))
	f.Fuzz(func(t *testing.T, seed int64, rate float64, attempts, winRetries uint8, window int64) {
		plan := &fault.Plan{Seed: seed, Rate: rate}
		if plan.Validate() != nil {
			t.Skip()
		}
		const p = 4
		build := func() (*Dist, []int32) {
			m := meshgen.SmallBox()
			g := dual.Build(m)
			d := NewDist(m, p, partition.Partition(g, p, partition.MethodGraphGrow))
			newOwner := d.Owners()
			for v := range newOwner {
				if v%2 == 0 {
					newOwner[v] = (newOwner[v] + 1) % p
				}
			}
			return d, newOwner
		}
		refD, newOwner := build()
		refD.RemapWindow = window % 2048
		refRes, err := refD.ExecuteRemapStreaming(newOwner, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}

		d, _ := build()
		before := d.Owners()
		d.Faults = plan
		d.Retry = fault.Retry{MsgAttempts: int(attempts % 8), WindowRetries: int(winRetries % 4)}
		d.RemapWindow = window % 2048
		res, err := d.ExecuteRemapStreaming(newOwner, machine.SP2())
		if err != nil {
			var re *RemapError
			if !errors.As(err, &re) {
				t.Fatalf("untyped remap failure: %v", err)
			}
			if !re.RolledBack {
				t.Fatalf("failure without rollback: %+v", re)
			}
			if !reflect.DeepEqual(d.Owners(), before) {
				t.Fatal("rollback left a partially committed ownership map")
			}
			return
		}
		if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
			t.Fatal("converged exchange diverges from the fault-free owner array")
		}
		if got, want := stripRetryFields(res), stripRetryFields(refRes); !reflect.DeepEqual(got, want) {
			t.Fatalf("converged exchange broke conservation:\n got %+v\nwant %+v", got, want)
		}
	})
}
