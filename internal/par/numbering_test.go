package par

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/mesh"
)

func TestGlobalNumbering(t *testing.T) {
	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.08, adapt.MarkRefine, 21)
	a.Refine()

	gn := d.Number()
	if gn.NumElems != int64(d.M.NumActiveElems()) {
		t.Fatalf("NumElems = %d, want %d", gn.NumElems, d.M.NumActiveElems())
	}
	if gn.NumVerts != int64(d.M.NumVerts()) {
		t.Fatalf("NumVerts = %d, want %d", gn.NumVerts, d.M.NumVerts())
	}

	// Element numbers: a bijection onto [0, NumElems) over active
	// elements.
	seenE := make(map[int64]bool)
	for ei := range d.M.Elems {
		g := gn.Elem[ei]
		if d.M.Elems[ei].Active() {
			if g < 0 || g >= gn.NumElems {
				t.Fatalf("element %d: global id %d out of range", ei, g)
			}
			if seenE[g] {
				t.Fatalf("global element id %d duplicated", g)
			}
			seenE[g] = true
		} else if g != -1 {
			t.Fatalf("inactive element %d numbered %d", ei, g)
		}
	}

	// Vertex numbers: bijection over live vertices; shared vertices get
	// exactly one id (owned by the smallest SPL rank).
	seenV := make(map[int64]bool)
	for vi := range d.M.Verts {
		g := gn.Vert[vi]
		v := &d.M.Verts[vi]
		if v.Dead || len(v.Edges) == 0 {
			if g != -1 {
				t.Fatalf("dead vertex %d numbered", vi)
			}
			continue
		}
		if g < 0 || g >= gn.NumVerts {
			t.Fatalf("vertex %d: global id %d out of range", vi, g)
		}
		if seenV[g] {
			t.Fatalf("global vertex id %d duplicated", g)
		}
		seenV[g] = true
	}

	// Ranges per owner are contiguous and ordered by rank: the smallest
	// global element id owned by rank r+1 exceeds all ids of rank r.
	var lastMax int64 = -1
	for r := int32(0); r < int32(d.P); r++ {
		var lo, hi int64 = 1 << 62, -1
		for ei := range d.M.Elems {
			if !d.M.Elems[ei].Active() || d.OwnerOf(mesh.ElemID(ei)) != r {
				continue
			}
			g := gn.Elem[ei]
			if g < lo {
				lo = g
			}
			if g > hi {
				hi = g
			}
		}
		if hi < 0 {
			continue // rank owns nothing
		}
		if lo <= lastMax {
			t.Fatalf("rank %d id range [%d,%d] overlaps previous ranks", r, lo, hi)
		}
		lastMax = hi
	}
}
