package par

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/partition"
	"plum/internal/refine"
	"plum/internal/remap"
	"plum/internal/sfc"
)

func TestParallelCoarsenMatchesSerial(t *testing.T) {
	// Identical marks must produce identical meshes regardless of the
	// execution path (serial kernel vs. distributed replay).
	serialM := meshgen.SmallBox()
	serialA := adapt.New(serialM)
	serialA.MarkRandom(0.12, adapt.MarkRefine, 31)
	serialA.Refine()
	serialA.MarkRandom(0.2, adapt.MarkCoarsen, 32)
	serialSt := serialA.Coarsen()

	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.12, adapt.MarkRefine, 31)
	d.ParallelRefine(a, machine.SP2())
	a.MarkRandom(0.2, adapt.MarkCoarsen, 32)
	parSt, _ := d.ParallelCoarsen(a, machine.SP2())

	if serialSt.GroupsRemoved != parSt.GroupsRemoved ||
		serialSt.ElemsRemoved != parSt.ElemsRemoved {
		t.Errorf("coarsen stats differ: serial %+v, parallel %+v", serialSt, parSt)
	}
	if serialM.NumActiveElems() != d.M.NumActiveElems() ||
		serialM.NumActiveEdges() != d.M.NumActiveEdges() {
		t.Errorf("meshes differ: %v vs %v", serialM.Stats(), d.M.Stats())
	}
	if math.Abs(serialM.TotalVolume()-d.M.TotalVolume()) > 1e-12 {
		t.Error("volumes differ")
	}
}

func TestAdaptAfterRemap(t *testing.T) {
	// The pipeline must keep working after ownership changed: refine,
	// remap everything around, refine again, and verify the distributed
	// bookkeeping (SPLs, loads) stays consistent.
	d, a, g := fixture(t, 4)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
	d.ParallelRefine(a, machine.SP2())
	g.UpdateWeights(d.M)

	// Rotate ownership: rank r -> (r+1) mod 4.
	newOwner := d.Owners()
	for v := range newOwner {
		newOwner[v] = (newOwner[v] + 1) % 4
	}
	if _, err := d.ExecuteRemap(newOwner, machine.SP2()); err != nil {
		t.Fatal(err)
	}

	// Loads must have rotated with the trees.
	loads := d.RankLoads()
	var total int64
	for _, l := range loads {
		total += l
	}
	if total != int64(d.M.NumActiveElems()) {
		t.Fatalf("loads sum %d != %d after remap", total, d.M.NumActiveElems())
	}

	// A second adaption on the remapped distribution must stay valid and
	// produce sane timings.
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 1, Y: 1, Z: 1}, Radius: 0.4}, adapt.MarkRefine)
	_, tm := d.ParallelRefine(a, machine.SP2())
	if tm.Total <= 0 {
		t.Error("no timing after remap")
	}
	if err := d.M.Check(); err != nil {
		t.Fatalf("mesh invalid after remap+refine: %v", err)
	}
	st := d.Init()
	if st.SharedEdges == 0 {
		t.Error("no shared edges after remap")
	}
}

// TestSFCPartitionParity runs the full adaption + repartition + remap
// pipeline through the SFC backends and checks the same invariants the
// graph partitioners satisfy: identical mesh evolution to the serial
// path, conserved elements/vertices through the remap, and a valid mesh.
func TestSFCPartitionParity(t *testing.T) {
	const p = 4
	for _, curve := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		// Serial reference: same marks, no distribution.
		serialM := meshgen.SmallBox()
		serialA := adapt.New(serialM)
		serialA.MarkRandom(0.15, adapt.MarkRefine, 77)
		serialA.Refine()

		// Distributed over an SFC partition.
		m := meshgen.SmallBox()
		g := dual.Build(m)
		s := partition.NewSFC(g, curve)
		asg := s.Repartition(g, p)
		refine.NewBandFM(0).Refine(g, asg, p, 2)
		d := NewDist(m, p, asg)
		a := adapt.New(m)
		a.MarkRandom(0.15, adapt.MarkRefine, 77)
		d.ParallelRefine(a, machine.SP2())

		if serialM.NumActiveElems() != d.M.NumActiveElems() ||
			serialM.NumVerts() != d.M.NumVerts() ||
			serialM.NumActiveEdges() != d.M.NumActiveEdges() {
			t.Errorf("%v: distributed adaption diverged from serial: %v vs %v",
				curve, serialM.Stats(), d.M.Stats())
		}

		// Incremental repartition on the adapted weights, mapped to
		// minimize movement, then the executed remap.
		g.UpdateWeights(m)
		newPart := s.Repartition(g, p)
		refine.NewBandFM(0).Refine(g, newPart, p, 2)
		if imb := partition.Imbalance(g, newPart, p); imb > 1.10 {
			t.Errorf("%v: repartition imbalance %.3f > 1.10", curve, imb)
		}
		sim := remap.Build(d.Owners(), newPart, g.Wremap, p, 1)
		mp, _ := sim.Heuristic()
		if err := sim.Validate(mp); err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
		newOwner := make([]int32, len(newPart))
		for v, part := range newPart {
			newOwner[v] = mp[part]
		}
		before := d.M.NumActiveElems()
		beforeVol := d.M.TotalVolume()
		if _, err := d.ExecuteRemap(newOwner, machine.SP2()); err != nil {
			t.Fatalf("%v: remap failed: %v", curve, err)
		}

		// Conservation: the remap moves ownership, never mesh content.
		if d.M.NumActiveElems() != before {
			t.Errorf("%v: remap changed element count %d -> %d", curve, before, d.M.NumActiveElems())
		}
		if math.Abs(d.M.TotalVolume()-beforeVol) > 1e-12 {
			t.Errorf("%v: remap changed total volume", curve)
		}
		var total int64
		for _, l := range d.RankLoads() {
			total += l
		}
		if total != int64(d.M.NumActiveElems()) {
			t.Errorf("%v: loads sum %d != %d active elements", curve, total, d.M.NumActiveElems())
		}
		if err := d.M.Check(); err != nil {
			t.Errorf("%v: mesh invalid after SFC remap: %v", curve, err)
		}

		// A second adaption on the remapped distribution keeps working.
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.4}, adapt.MarkRefine)
		if _, tm := d.ParallelRefine(a, machine.SP2()); tm.Total <= 0 {
			t.Errorf("%v: no timing after remap", curve)
		}
		if err := d.M.Check(); err != nil {
			t.Errorf("%v: mesh invalid after remap+refine: %v", curve, err)
		}
	}
}

func TestFinalizeAfterCoarsenToInitial(t *testing.T) {
	// Gather on a mesh that went through a full refine/coarsen cycle
	// (dead objects present, pre-compaction).
	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.1, adapt.MarkRefine, 51)
	a.Refine()
	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen()
	res, err := d.Finalize(machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elems != 384 {
		t.Errorf("gathered %d, want 384", res.Elems)
	}
}
