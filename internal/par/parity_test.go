package par

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
)

func TestParallelCoarsenMatchesSerial(t *testing.T) {
	// Identical marks must produce identical meshes regardless of the
	// execution path (serial kernel vs. distributed replay).
	serialM := meshgen.SmallBox()
	serialA := adapt.New(serialM)
	serialA.MarkRandom(0.12, adapt.MarkRefine, 31)
	serialA.Refine()
	serialA.MarkRandom(0.2, adapt.MarkCoarsen, 32)
	serialSt := serialA.Coarsen()

	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.12, adapt.MarkRefine, 31)
	d.ParallelRefine(a, machine.SP2())
	a.MarkRandom(0.2, adapt.MarkCoarsen, 32)
	parSt, _ := d.ParallelCoarsen(a, machine.SP2())

	if serialSt.GroupsRemoved != parSt.GroupsRemoved ||
		serialSt.ElemsRemoved != parSt.ElemsRemoved {
		t.Errorf("coarsen stats differ: serial %+v, parallel %+v", serialSt, parSt)
	}
	if serialM.NumActiveElems() != d.M.NumActiveElems() ||
		serialM.NumActiveEdges() != d.M.NumActiveEdges() {
		t.Errorf("meshes differ: %v vs %v", serialM.Stats(), d.M.Stats())
	}
	if math.Abs(serialM.TotalVolume()-d.M.TotalVolume()) > 1e-12 {
		t.Error("volumes differ")
	}
}

func TestAdaptAfterRemap(t *testing.T) {
	// The pipeline must keep working after ownership changed: refine,
	// remap everything around, refine again, and verify the distributed
	// bookkeeping (SPLs, loads) stays consistent.
	d, a, g := fixture(t, 4)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
	d.ParallelRefine(a, machine.SP2())
	g.UpdateWeights(d.M)

	// Rotate ownership: rank r -> (r+1) mod 4.
	newOwner := d.Owners()
	for v := range newOwner {
		newOwner[v] = (newOwner[v] + 1) % 4
	}
	if _, err := d.ExecuteRemap(newOwner, machine.SP2()); err != nil {
		t.Fatal(err)
	}

	// Loads must have rotated with the trees.
	loads := d.RankLoads()
	var total int64
	for _, l := range loads {
		total += l
	}
	if total != int64(d.M.NumActiveElems()) {
		t.Fatalf("loads sum %d != %d after remap", total, d.M.NumActiveElems())
	}

	// A second adaption on the remapped distribution must stay valid and
	// produce sane timings.
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 1, Y: 1, Z: 1}, Radius: 0.4}, adapt.MarkRefine)
	_, tm := d.ParallelRefine(a, machine.SP2())
	if tm.Total <= 0 {
		t.Error("no timing after remap")
	}
	if err := d.M.Check(); err != nil {
		t.Fatalf("mesh invalid after remap+refine: %v", err)
	}
	st := d.Init()
	if st.SharedEdges == 0 {
		t.Error("no shared edges after remap")
	}
}

func TestFinalizeAfterCoarsenToInitial(t *testing.T) {
	// Gather on a mesh that went through a full refine/coarsen cycle
	// (dead objects present, pre-compaction).
	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.1, adapt.MarkRefine, 51)
	a.Refine()
	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen()
	res, err := d.Finalize(machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elems != 384 {
		t.Errorf("gathered %d, want 384", res.Elems)
	}
}
