package par

import "plum/internal/propagate"

// Ops is the abstract work accounting shared by the remap execution and
// the adaption passes: Total is the op count summed over all workers,
// Crit the critical-path share a parallel machine actually waits for,
// and MemTotal/MemCrit the memory-bound (scatter/adjacency-dominated)
// slice of each, charged at machine.Model.MemOp rather than CompOp. A
// serial execution path reports Crit == Total. It is the propagation
// subsystem's Ops — one implementation, aliased here so the remap API
// keeps its historical name.
type Ops = propagate.Ops
