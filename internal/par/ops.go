package par

import "plum/internal/machine"

// Ops is the abstract work accounting of one remap-execution call,
// mirroring partition.Ops: Total is the op count summed over all workers,
// Crit the critical-path share a parallel machine actually waits for, and
// MemTotal/MemCrit the memory-bound (scatter-dominated) slice of each,
// charged at machine.Model.MemOp rather than CompOp. A serial execution
// path reports Crit == Total.
type Ops struct {
	Total int64
	Crit  int64
	// MemTotal and MemCrit are the memory-bound share of Total and Crit:
	// the record fill's scatter writes and the unpack/verify drain. The
	// compute-bound remainder (the streaming count scan, the prefix-sum
	// layout) is charged at Model.CompOp.
	MemTotal int64
	MemCrit  int64
}

// AddSerial accumulates purely serial compute-bound work: it extends the
// critical path one-for-one.
func (o *Ops) AddSerial(n int64) {
	o.Total += n
	o.Crit += n
}

// AddParallel accumulates compute-bound work divided across ew workers:
// the critical path is charged the slowest worker's (ceiling) share.
func (o *Ops) AddParallel(total int64, ew int) {
	o.Total += total
	o.Crit += ceilDiv(total, int64(ew))
}

// AddParallelMem accumulates memory-bound work divided across ew workers;
// it counts toward the totals and toward the Mem share charged at MemOp.
func (o *Ops) AddParallelMem(total int64, ew int) {
	o.Total += total
	o.Crit += ceilDiv(total, int64(ew))
	o.MemTotal += total
	o.MemCrit += ceilDiv(total, int64(ew))
}

// clamp caps the critical path at the total: no schedule is slower than
// running everything serially, and the per-phase ceiling terms can
// otherwise nudge past it at tiny sizes.
func (o *Ops) clamp() {
	if o.Crit > o.Total {
		o.Crit = o.Total
	}
	if o.MemCrit > o.MemTotal {
		o.MemCrit = o.MemTotal
	}
}

// Time converts the accounting to modeled seconds on the machine's two
// rates: the mem-bound critical path at MemOp, the compute-bound
// remainder at CompOp.
func (o Ops) Time(mdl machine.Model) float64 {
	return float64(o.Crit-o.MemCrit)*mdl.CompOp + float64(o.MemCrit)*mdl.MemOp
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
