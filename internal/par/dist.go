// Package par implements the distributed-memory view of the adaptive mesh:
// processor ownership of the dual graph's element trees, shared-object
// bookkeeping (the paper's shared processor lists, SPLs), the parallel
// 3D_TAG execution phases with SP2-class time accounting, data remapping
// with real message traffic over internal/comm, and the finalization
// gather that reassembles a global mesh.
//
// Substitution note (cf. DESIGN.md): the mesh itself is a shared ground
// truth mutated by the serial adaption kernel, while the distributed
// algorithm's work and communication pattern are replayed rank-by-rank
// against the ownership map and charged to the machine model. This mirrors
// the paper's own methodology for the remapping phase ("all appropriate
// mesh objects are sent to their new host processor, accurately modeling
// the communication phase" with the rebuild incomplete); we additionally
// move real payloads between goroutine ranks and verify conservation.
package par

import (
	"fmt"
	"slices"
	"time"

	"plum/internal/chunk"
	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/propagate"
)

// Dist is a distributed view: a mesh plus processor ownership of each
// element tree (dual-graph vertex).
type Dist struct {
	M *mesh.Mesh
	P int

	// Workers bounds the worker-goroutine count of the chunked O(mesh)
	// scans — the remap execution's CSR flow scatter, the Init
	// shared-object analysis, RankLoads, and the adaption-phase
	// target/execute/classification scans. ≤ 0 means
	// runtime.GOMAXPROCS; below SerialCutoff objects every scan falls
	// back to a serial loop regardless. Results are identical at every
	// worker count.
	Workers int

	// Prop selects the frontier-propagation backend driving
	// ParallelRefine and ParallelCoarsen (see internal/propagate). nil
	// means BulkSync at the Dist's worker knob.
	Prop propagate.Propagator

	// RemapWindow bounds the streaming remap executor's in-flight payload
	// window, in record words. ≤ 0 selects the adaptive default: the
	// larger of the biggest single flow and an eighth of the total
	// payload (see windowBudget). The window plan depends only on the
	// canonical flow layout and this budget, never on Workers, so
	// ExecuteRemapStreaming stays byte-identical at any worker count.
	RemapWindow int64

	// Exchange selects the communication schedule of the remap payload
	// exchange — flat (legacy, the zero value), aggregated, or
	// hierarchical (see machine.Exchange). It drives both the wire path
	// (how records physically move between goroutine ranks) and the
	// machine-model charges; the node topology side of the hierarchical
	// schedule comes from the machine.Model passed to the executors.
	// Owners, payloads, Moved/Sets/WordsMoved/PeakWords, and Ops are
	// identical across schedules; only the communication charges differ.
	Exchange machine.Exchange

	// Faults is the deterministic fault-injection plan driving the remap
	// payload exchange (internal/fault). nil — or a zero-rate plan —
	// keeps the legacy fault-free exchange byte-identical. When enabled,
	// the executors run transactionally: the owner array is checkpointed,
	// failed windows are re-exchanged up to Retry.WindowRetries times, and
	// exhausted retries roll the ownership back to the checkpoint with a
	// typed *RemapError.
	Faults *fault.Plan
	// Retry bounds the recovery effort when Faults is enabled; the zero
	// value normalizes to fault.DefaultRetry.
	Retry fault.Retry
	// FaultCycle scopes the fault keys to the enclosing balance cycle, so
	// each cycle of a run draws an independent fault schedule.
	FaultCycle int

	// StageDeadline arms comm.World.SetDeadline on every world the remap
	// executors create: a stage whose ranks have not all finished within
	// the deadline fails with a typed timeout instead of hanging the
	// process. Zero disables the watchdog (the deterministic default —
	// wall-clock deadlines are inherently timing-dependent).
	StageDeadline time.Duration

	// Trace records per-rank remap spans and streaming-window events on
	// the modeled timeline (internal/obs). nil disables tracing; every
	// emission site guards on the nil explicitly, so the disabled path
	// costs one pointer compare and zero allocations. Emission happens
	// only from serial canonical-order code — never inside the chunked
	// worker loops — and records only worker-invariant quantities, so
	// traces are byte-identical at any worker count.
	Trace *obs.Trace

	// dead marks ranks lost to crash recovery; nil until the first crash.
	// A dead rank owns no elements, sends no messages, and is excluded
	// from every subsequent balance target. Ownership maps never name a
	// dead rank once recovery completes.
	dead []bool

	// adaptX is the cycle's modeled fault model for the adaption
	// notification exchanges, rebuilt when FaultCycle advances: refine and
	// coarsen within one cycle continue the same per-pair attempt
	// sequence, so their fault draws stay independent (see adaptFaults).
	adaptX      *fault.ExchangeModel
	adaptXCycle int

	// owner[i] is the processor owning dual vertex i (level-0 element
	// tree i, in dual.Build scan order).
	owner []int32
	// rootDual maps a level-0 element id to its dual index; sized to the
	// element slab, -1 for non-roots.
	rootDual []int32
}

// NewDist builds the distributed view from a dual-graph partition
// assignment mapped directly to processors (partition i → processor i).
// asg must have one entry per dual vertex.
func NewDist(m *mesh.Mesh, p int, asg partition.Assignment) *Dist {
	d := &Dist{M: m, P: p, owner: make([]int32, len(asg))}
	copy(d.owner, asg)
	d.rebuildRootIndex()
	for _, o := range d.owner {
		if o < 0 || int(o) >= p {
			panic(fmt.Sprintf("par: owner %d out of range", o))
		}
	}
	return d
}

func (d *Dist) rebuildRootIndex() {
	d.rootDual = make([]int32, len(d.M.Elems))
	for i := range d.rootDual {
		d.rootDual[i] = -1
	}
	n := int32(0)
	for i := range d.M.Elems {
		t := &d.M.Elems[i]
		if t.Level == 0 && !t.Dead {
			d.rootDual[i] = n
			n++
		}
	}
	if int(n) != len(d.owner) {
		panic(fmt.Sprintf("par: %d roots vs %d owners", n, len(d.owner)))
	}
}

// Owners returns a copy of the per-dual-vertex owner array.
func (d *Dist) Owners() []int32 { return append([]int32(nil), d.owner...) }

// MarkDead records ranks lost to crash recovery. Dead ranks stay dead
// for the rest of the run; marking an already-dead rank is a no-op.
func (d *Dist) MarkDead(ranks []int) {
	if len(ranks) == 0 {
		return
	}
	if d.dead == nil {
		d.dead = make([]bool, d.P)
	}
	for _, r := range ranks {
		if r >= 0 && r < d.P {
			d.dead[r] = true
		}
	}
}

// HasDead reports whether any rank has been lost.
func (d *Dist) HasDead() bool {
	for _, dd := range d.dead {
		if dd {
			return true
		}
	}
	return false
}

// DeadRanks returns the lost ranks, sorted ascending (nil when none).
func (d *Dist) DeadRanks() []int {
	var out []int
	for r, dd := range d.dead {
		if dd {
			out = append(out, r)
		}
	}
	return out
}

// Alive returns the surviving ranks, sorted ascending. With no deaths it
// is simply [0, P).
func (d *Dist) Alive() []int32 {
	out := make([]int32, 0, d.P)
	for r := 0; r < d.P; r++ {
		if d.dead == nil || !d.dead[r] {
			out = append(out, int32(r))
		}
	}
	return out
}

// AliveCount returns the number of surviving ranks.
func (d *Dist) AliveCount() int {
	n := d.P
	for _, dd := range d.dead {
		if dd {
			n--
		}
	}
	return n
}

// crashedRanks returns the alive ranks fated by the plan to die at the
// remap boundary of the current fault cycle, sorted ascending — the
// crash mask the executors inject. Pure function of (plan, cycle, alive
// set): byte-identical at any worker count. Two guards keep the run
// recoverable: no crashes are drawn with fewer than two survivors, and
// if every survivor is fated at once, the lowest-ranked one is spared
// (a total loss has no survivor to recover onto).
func (d *Dist) crashedRanks() []int {
	if !d.Faults.CrashEnabled() {
		return nil
	}
	alive := d.Alive()
	if len(alive) < 2 {
		return nil
	}
	var out []int
	for _, r := range alive {
		if d.Faults.Crashed(fault.StageRemap, d.FaultCycle, int(r)) {
			out = append(out, int(r))
		}
	}
	if len(out) == len(alive) {
		out = out[1:]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// crashMask expands crashed (sorted rank list) into a per-rank bool
// mask, or nil when there are no crashes.
func (d *Dist) crashMask(crashed []int) []bool {
	if len(crashed) == 0 {
		return nil
	}
	mask := make([]bool, d.P)
	for _, r := range crashed {
		mask[r] = true
	}
	return mask
}

// SetOwners replaces the ownership map (after a remap decision).
func (d *Dist) SetOwners(o []int32) {
	if len(o) != len(d.owner) {
		panic("par: owner length mismatch")
	}
	copy(d.owner, o)
}

// DualOf returns the dual index of element el's root.
func (d *Dist) DualOf(el mesh.ElemID) int32 {
	r := d.M.Elems[el].Root
	dv := d.rootDual[r]
	if dv < 0 {
		panic("par: element root is not a dual vertex")
	}
	return dv
}

// OwnerOf returns the processor owning element el (the owner of its root's
// tree — all descendants move with the root, per the paper's Wremap
// rationale).
func (d *Dist) OwnerOf(el mesh.ElemID) int32 { return d.owner[d.DualOf(el)] }

// ApplyCompact updates the root index after a mesh compaction.
func (d *Dist) ApplyCompact() { d.rebuildRootIndex() }

// EdgeSPL returns the sorted shared-processor list of edge e: the owners
// of all active elements sharing it. A len > 1 list marks a shared edge.
func (d *Dist) EdgeSPL(e mesh.EdgeID, buf []int32) []int32 {
	buf = buf[:0]
	for _, el := range d.M.Edges[e].Elems {
		buf = append(buf, d.OwnerOf(el))
	}
	return dedupSorted(buf)
}

// VertSPL returns the sorted shared-processor list of vertex v (owners of
// active elements incident to v through its edges).
func (d *Dist) VertSPL(v mesh.VertID, buf []int32) []int32 {
	buf = buf[:0]
	for _, e := range d.M.Verts[v].Edges {
		for _, el := range d.M.Edges[e].Elems {
			buf = append(buf, d.OwnerOf(el))
		}
	}
	return dedupSorted(buf)
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	// slices.Sort's pdqsort on the bare int32s: no comparator closure,
	// no interface boxing — this sort runs once per shared edge/vertex
	// probe, so comparator overhead is a real cost on the SPL hot path.
	slices.Sort(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// InitStats summarizes the initialization phase: shared-object counts and
// the extra memory fraction they cost (the paper reports <10% for its
// cases).
type InitStats struct {
	SharedEdges, SharedVerts int
	LocalEdges               []int64 // per rank, counting shared copies
	LocalElems               []int64 // per rank (active elements)
	// SharedFraction is shared objects / total objects.
	SharedFraction float64
}

// Init performs the initialization-phase analysis: distributing the mesh
// according to ownership, identifying shared edges and vertices, and
// sizing the per-rank local subgrids. The edge, vertex, and element scans
// are chunked over Workers goroutines (serial below SerialCutoff objects);
// the per-chunk partial counts merge in chunk order, and every count is an
// integer sum, so the stats are identical at every worker count.
func (d *Dist) Init() InitStats {
	st := InitStats{
		LocalEdges: make([]int64, d.P),
		LocalElems: make([]int64, d.P),
	}

	// Edge scan: per-rank local copies and the shared-edge census. Each
	// chunk probes SPLs into its own scratch buffer.
	ne := len(d.M.Edges)
	ncE := chunk.Count(ne, EffectiveWorkers(ne, d.Workers))
	edgeLocal := make([][]int64, ncE)
	edgeShared := make([]int, ncE)
	chunk.For(ne, EffectiveWorkers(ne, d.Workers), func(c, lo, hi int) {
		loc := make([]int64, d.P)
		shared := 0
		var buf []int32
		for ei := lo; ei < hi; ei++ {
			ed := &d.M.Edges[ei]
			if ed.Dead || ed.Bisected() || len(ed.Elems) == 0 {
				continue
			}
			spl := d.EdgeSPL(mesh.EdgeID(ei), buf)
			buf = spl
			for _, r := range spl {
				loc[r]++
			}
			if len(spl) > 1 {
				shared++
			}
		}
		edgeLocal[c] = loc
		edgeShared[c] = shared
	})
	for c := 0; c < ncE; c++ {
		for r, n := range edgeLocal[c] {
			st.LocalEdges[r] += n
		}
		st.SharedEdges += edgeShared[c]
	}

	// Vertex scan: the shared-vertex census.
	nv := len(d.M.Verts)
	ncV := chunk.Count(nv, EffectiveWorkers(nv, d.Workers))
	vertShared := make([]int, ncV)
	vertTotal := make([]int, ncV)
	chunk.For(nv, EffectiveWorkers(nv, d.Workers), func(c, lo, hi int) {
		shared, total := 0, 0
		var buf []int32
		for vi := lo; vi < hi; vi++ {
			v := &d.M.Verts[vi]
			if v.Dead || len(v.Edges) == 0 {
				continue
			}
			total++
			spl := d.VertSPL(mesh.VertID(vi), buf)
			buf = spl
			if len(spl) > 1 {
				shared++
			}
		}
		vertShared[c] = shared
		vertTotal[c] = total
	})
	totalV := 0
	for c := 0; c < ncV; c++ {
		st.SharedVerts += vertShared[c]
		totalV += vertTotal[c]
	}

	// Element scan: per-rank local subgrid sizes.
	copy(st.LocalElems, d.localLoads())

	totalE := d.M.NumActiveEdges()
	if totalE+totalV > 0 {
		st.SharedFraction = float64(st.SharedEdges+st.SharedVerts) / float64(totalE+totalV)
	}
	return st
}

// localLoads runs the chunked active-element ownership scan, merging the
// per-chunk partial counts in chunk order.
func (d *Dist) localLoads() []int64 {
	n := len(d.M.Elems)
	return chunk.GatherCounts(n, EffectiveWorkers(n, d.Workers), d.P, func(lo, hi int, cnt []int64) {
		for i := lo; i < hi; i++ {
			if d.M.Elems[i].Active() {
				cnt[d.OwnerOf(mesh.ElemID(i))]++
			}
		}
	})
}

// RankLoads returns the active-element count per processor — the Wcomp
// load the preliminary-evaluation step balances. The scan is chunked over
// Workers goroutines; integer partial sums merge in chunk order, so the
// result is identical at every worker count.
func (d *Dist) RankLoads() []int64 {
	return d.localLoads()
}

// ImbalanceFactor returns the paper's Wmax/Wavg metric over the current
// ownership.
func ImbalanceFactor(loads []int64) float64 {
	var max, sum int64
	for _, x := range loads {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(loads)))
}
