// Package par implements the distributed-memory view of the adaptive mesh:
// processor ownership of the dual graph's element trees, shared-object
// bookkeeping (the paper's shared processor lists, SPLs), the parallel
// 3D_TAG execution phases with SP2-class time accounting, data remapping
// with real message traffic over internal/comm, and the finalization
// gather that reassembles a global mesh.
//
// Substitution note (cf. DESIGN.md): the mesh itself is a shared ground
// truth mutated by the serial adaption kernel, while the distributed
// algorithm's work and communication pattern are replayed rank-by-rank
// against the ownership map and charged to the machine model. This mirrors
// the paper's own methodology for the remapping phase ("all appropriate
// mesh objects are sent to their new host processor, accurately modeling
// the communication phase" with the rebuild incomplete); we additionally
// move real payloads between goroutine ranks and verify conservation.
package par

import (
	"fmt"
	"slices"

	"plum/internal/mesh"
	"plum/internal/partition"
)

// Dist is a distributed view: a mesh plus processor ownership of each
// element tree (dual-graph vertex).
type Dist struct {
	M *mesh.Mesh
	P int

	// owner[i] is the processor owning dual vertex i (level-0 element
	// tree i, in dual.Build scan order).
	owner []int32
	// rootDual maps a level-0 element id to its dual index; sized to the
	// element slab, -1 for non-roots.
	rootDual []int32
}

// NewDist builds the distributed view from a dual-graph partition
// assignment mapped directly to processors (partition i → processor i).
// asg must have one entry per dual vertex.
func NewDist(m *mesh.Mesh, p int, asg partition.Assignment) *Dist {
	d := &Dist{M: m, P: p, owner: make([]int32, len(asg))}
	copy(d.owner, asg)
	d.rebuildRootIndex()
	for _, o := range d.owner {
		if o < 0 || int(o) >= p {
			panic(fmt.Sprintf("par: owner %d out of range", o))
		}
	}
	return d
}

func (d *Dist) rebuildRootIndex() {
	d.rootDual = make([]int32, len(d.M.Elems))
	for i := range d.rootDual {
		d.rootDual[i] = -1
	}
	n := int32(0)
	for i := range d.M.Elems {
		t := &d.M.Elems[i]
		if t.Level == 0 && !t.Dead {
			d.rootDual[i] = n
			n++
		}
	}
	if int(n) != len(d.owner) {
		panic(fmt.Sprintf("par: %d roots vs %d owners", n, len(d.owner)))
	}
}

// Owners returns a copy of the per-dual-vertex owner array.
func (d *Dist) Owners() []int32 { return append([]int32(nil), d.owner...) }

// SetOwners replaces the ownership map (after a remap decision).
func (d *Dist) SetOwners(o []int32) {
	if len(o) != len(d.owner) {
		panic("par: owner length mismatch")
	}
	copy(d.owner, o)
}

// DualOf returns the dual index of element el's root.
func (d *Dist) DualOf(el mesh.ElemID) int32 {
	r := d.M.Elems[el].Root
	dv := d.rootDual[r]
	if dv < 0 {
		panic("par: element root is not a dual vertex")
	}
	return dv
}

// OwnerOf returns the processor owning element el (the owner of its root's
// tree — all descendants move with the root, per the paper's Wremap
// rationale).
func (d *Dist) OwnerOf(el mesh.ElemID) int32 { return d.owner[d.DualOf(el)] }

// ApplyCompact updates the root index after a mesh compaction.
func (d *Dist) ApplyCompact(cm mesh.CompactMap) { d.rebuildRootIndex() }

// EdgeSPL returns the sorted shared-processor list of edge e: the owners
// of all active elements sharing it. A len > 1 list marks a shared edge.
func (d *Dist) EdgeSPL(e mesh.EdgeID, buf []int32) []int32 {
	buf = buf[:0]
	for _, el := range d.M.Edges[e].Elems {
		buf = append(buf, d.OwnerOf(el))
	}
	return dedupSorted(buf)
}

// VertSPL returns the sorted shared-processor list of vertex v (owners of
// active elements incident to v through its edges).
func (d *Dist) VertSPL(v mesh.VertID, buf []int32) []int32 {
	buf = buf[:0]
	for _, e := range d.M.Verts[v].Edges {
		for _, el := range d.M.Edges[e].Elems {
			buf = append(buf, d.OwnerOf(el))
		}
	}
	return dedupSorted(buf)
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	// slices.Sort's pdqsort on the bare int32s: no comparator closure,
	// no interface boxing — this sort runs once per shared edge/vertex
	// probe, so comparator overhead is a real cost on the SPL hot path.
	slices.Sort(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// InitStats summarizes the initialization phase: shared-object counts and
// the extra memory fraction they cost (the paper reports <10% for its
// cases).
type InitStats struct {
	SharedEdges, SharedVerts int
	LocalEdges               []int64 // per rank, counting shared copies
	LocalElems               []int64 // per rank (active elements)
	// SharedFraction is shared objects / total objects.
	SharedFraction float64
}

// Init performs the initialization-phase analysis: distributing the mesh
// according to ownership, identifying shared edges and vertices, and
// sizing the per-rank local subgrids.
func (d *Dist) Init() InitStats {
	st := InitStats{
		LocalEdges: make([]int64, d.P),
		LocalElems: make([]int64, d.P),
	}
	var buf []int32
	for ei := range d.M.Edges {
		ed := &d.M.Edges[ei]
		if ed.Dead || ed.Bisected() || len(ed.Elems) == 0 {
			continue
		}
		spl := d.EdgeSPL(mesh.EdgeID(ei), buf)
		buf = spl
		for _, r := range spl {
			st.LocalEdges[r]++
		}
		if len(spl) > 1 {
			st.SharedEdges++
		}
	}
	sharedV := 0
	totalV := 0
	for vi := range d.M.Verts {
		v := &d.M.Verts[vi]
		if v.Dead || len(v.Edges) == 0 {
			continue
		}
		totalV++
		spl := d.VertSPL(mesh.VertID(vi), buf)
		buf = spl
		if len(spl) > 1 {
			sharedV++
		}
	}
	st.SharedVerts = sharedV
	for i := range d.M.Elems {
		t := &d.M.Elems[i]
		if t.Active() {
			st.LocalElems[d.OwnerOf(mesh.ElemID(i))]++
		}
	}
	totalE := d.M.NumActiveEdges()
	if totalE+totalV > 0 {
		st.SharedFraction = float64(st.SharedEdges+st.SharedVerts) / float64(totalE+totalV)
	}
	return st
}

// RankLoads returns the active-element count per processor — the Wcomp
// load the preliminary-evaluation step balances.
func (d *Dist) RankLoads() []int64 {
	loads := make([]int64, d.P)
	for i := range d.M.Elems {
		if d.M.Elems[i].Active() {
			loads[d.OwnerOf(mesh.ElemID(i))]++
		}
	}
	return loads
}

// ImbalanceFactor returns the paper's Wmax/Wavg metric over the current
// ownership.
func ImbalanceFactor(loads []int64) float64 {
	var max, sum int64
	for _, x := range loads {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(loads)))
}
