package par

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// fixture builds a small box mesh distributed over p ranks.
func fixture(t *testing.T, p int) (*Dist, *adapt.Adaptor, *dual.Graph) {
	t.Helper()
	m := meshgen.SmallBox()
	g := dual.Build(m)
	asg := partition.Partition(g, p, partition.MethodGraphGrow)
	return NewDist(m, p, asg), adapt.New(m), g
}

func TestOwnershipInheritance(t *testing.T) {
	d, a, _ := fixture(t, 4)
	owners := map[int32]bool{}
	for i := range d.M.Elems {
		owners[d.OwnerOf(mesh.ElemID(i))] = true
	}
	if len(owners) != 4 {
		t.Fatalf("expected 4 owners, got %d", len(owners))
	}
	// Refine; children must inherit the root's owner.
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.4}, adapt.MarkRefine)
	a.Refine()
	for i := range d.M.Elems {
		el := &d.M.Elems[i]
		if el.Parent >= 0 && !el.Dead {
			if d.OwnerOf(mesh.ElemID(i)) != d.OwnerOf(el.Parent) {
				t.Fatal("child owned differently from parent")
			}
		}
	}
}

func TestInitSharedStats(t *testing.T) {
	d, _, _ := fixture(t, 8)
	st := d.Init()
	if st.SharedEdges == 0 || st.SharedVerts == 0 {
		t.Error("no shared objects on an 8-way partition")
	}
	// The paper reports <10% additional storage at 60k elements; a 384-
	// element mesh cut 8 ways is surface-dominated, so only require the
	// fraction to shrink with mesh size (surface-to-volume scaling).
	m2 := meshgen.Box(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1})
	g2 := dual.Build(m2)
	d2 := NewDist(m2, 8, partition.Partition(g2, 8, partition.MethodGraphGrow))
	st2 := d2.Init()
	if st2.SharedFraction >= st.SharedFraction {
		t.Errorf("shared fraction did not shrink with mesh size: %.3f -> %.3f",
			st.SharedFraction, st2.SharedFraction)
	}
	var localElems int64
	for _, n := range st.LocalElems {
		localElems += n
	}
	if localElems != int64(d.M.NumActiveElems()) {
		t.Errorf("local elements sum %d != %d", localElems, d.M.NumActiveElems())
	}
	// Local edge counts exceed the global count by exactly the shared
	// copies.
	var localEdges int64
	for _, n := range st.LocalEdges {
		localEdges += n
	}
	if localEdges < int64(d.M.NumActiveEdges()) {
		t.Error("local edges undercount")
	}
}

func TestParallelRefineMatchesSerial(t *testing.T) {
	// The distributed execution must produce the same mesh as the serial
	// kernel for the same marks.
	serialM := meshgen.SmallBox()
	serialA := adapt.New(serialM)
	serialA.MarkRandom(0.10, adapt.MarkRefine, 7)
	serialSt := serialA.Refine()

	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.10, adapt.MarkRefine, 7)
	parSt, tm := d.ParallelRefine(a, machine.SP2())

	if serialSt.EdgesBisected != parSt.EdgesBisected ||
		serialSt.TotalSubdivided() != parSt.TotalSubdivided() {
		t.Errorf("stats differ: serial %+v, parallel %+v", serialSt, parSt)
	}
	if serialM.NumActiveElems() != d.M.NumActiveElems() ||
		serialM.NumActiveEdges() != d.M.NumActiveEdges() {
		t.Errorf("meshes differ: serial %v, parallel %v", serialM.Stats(), d.M.Stats())
	}
	if math.Abs(serialM.TotalVolume()-d.M.TotalVolume()) > 1e-12 {
		t.Error("volumes differ")
	}
	if err := d.M.Check(); err != nil {
		t.Fatalf("parallel mesh invalid: %v", err)
	}
	if tm.Total <= 0 || tm.CommRounds < 1 {
		t.Errorf("timings: %+v", tm)
	}
	if tm.Target <= 0 || tm.Execute <= 0 {
		t.Errorf("phase timings missing: %+v", tm)
	}
}

func TestParallelRefineSpeedup(t *testing.T) {
	// Random marks must show parallel speedup in modeled time.
	mdl := machine.SP2()
	run := func(p int) float64 {
		d, a, _ := fixture(t, p)
		a.MarkRandom(0.15, adapt.MarkRefine, 3)
		_, tm := d.ParallelRefine(a, mdl)
		return tm.Total
	}
	t1 := run(1)
	t8 := run(8)
	if t8 >= t1 {
		t.Fatalf("no speedup: T1=%g T8=%g", t1, t8)
	}
	if sp := t1 / t8; sp < 2 {
		t.Errorf("speedup %.2f at P=8 too low for random marks", sp)
	}
}

func TestParallelRefineLocalizedWorseThanRandom(t *testing.T) {
	// The paper's central performance observation (Fig. 8): a compact
	// adaption region yields worse speedup than random adaption.
	mdl := machine.SP2()
	run := func(mark func(a *adapt.Adaptor)) float64 {
		d, a, _ := fixture(t, 8)
		mark(a)
		_, tm := d.ParallelRefine(a, mdl)
		d1, a1, _ := fixture(t, 1)
		mark(a1)
		_, tm1 := d1.ParallelRefine(a1, mdl)
		return tm1.Total / tm.Total
	}
	spLocal := run(func(a *adapt.Adaptor) {
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.1, Y: 0.1, Z: 0.1}, Radius: 0.25}, adapt.MarkRefine)
	})
	spRandom := run(func(a *adapt.Adaptor) {
		a.MarkRandom(0.05, adapt.MarkRefine, 11)
	})
	if spLocal >= spRandom {
		t.Errorf("localized speedup %.2f ≥ random %.2f; expected worse", spLocal, spRandom)
	}
}

func TestParallelCoarsen(t *testing.T) {
	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.10, adapt.MarkRefine, 7)
	d.ParallelRefine(a, machine.SP2())
	grown := d.M.NumActiveElems()

	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	st, tm := d.ParallelCoarsen(a, machine.SP2())
	if st.GroupsRemoved == 0 {
		t.Error("nothing coarsened")
	}
	if d.M.NumActiveElems() >= grown {
		t.Error("mesh did not shrink")
	}
	if tm.Total <= 0 {
		t.Errorf("timings: %+v", tm)
	}
	if err := d.M.Check(); err != nil {
		t.Fatalf("mesh invalid after parallel coarsen: %v", err)
	}
}

func TestRankLoadsAndImbalance(t *testing.T) {
	d, a, _ := fixture(t, 4)
	loads := d.RankLoads()
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != int64(d.M.NumActiveElems()) {
		t.Errorf("loads sum %d != %d", sum, d.M.NumActiveElems())
	}
	if f := ImbalanceFactor(loads); f < 1 || f > 1.5 {
		t.Errorf("initial imbalance %.3f", f)
	}
	// Refine one corner: imbalance must rise.
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
	a.Refine()
	if f := ImbalanceFactor(d.RankLoads()); f < 1.2 {
		t.Errorf("imbalance after corner refinement = %.3f, expected > 1.2", f)
	}
}

func TestExecuteRemapConservation(t *testing.T) {
	d, a, g := fixture(t, 4)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(d.M)

	// Move everything from rank 0 to rank 1.
	newOwner := d.Owners()
	var expectMoved int64
	for v, o := range newOwner {
		if o == 0 {
			newOwner[v] = 1
			expectMoved += g.Wremap[v]
		}
	}
	res, err := d.ExecuteRemap(newOwner, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != expectMoved {
		t.Errorf("moved %d elements, want %d (ΣWremap)", res.Moved, expectMoved)
	}
	if res.Sets != 1 {
		t.Errorf("sets = %d, want 1", res.Sets)
	}
	if res.Total <= 0 || res.WordsMoved < res.Moved*50 {
		t.Errorf("result: %+v", res)
	}
	// Ownership updated.
	for _, o := range d.Owners() {
		if o == 0 {
			t.Fatal("rank 0 still owns trees after remap")
		}
	}
}

func TestExecuteRemapIdentity(t *testing.T) {
	d, _, _ := fixture(t, 4)
	res, err := d.ExecuteRemap(d.Owners(), machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != 0 || res.Sets != 0 || res.WordsMoved != 0 {
		t.Errorf("identity remap moved data: %+v", res)
	}
}

func TestExecuteRemapRejectsBadLength(t *testing.T) {
	d, _, _ := fixture(t, 2)
	if _, err := d.ExecuteRemap(make([]int32, 3), machine.SP2()); err == nil {
		t.Error("accepted wrong-length owner array")
	}
}

func TestFinalizeGather(t *testing.T) {
	d, a, _ := fixture(t, 4)
	a.MarkRandom(0.05, adapt.MarkRefine, 13)
	a.Refine()
	res, err := d.Finalize(machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elems != int64(d.M.NumActiveElems()) {
		t.Errorf("gathered %d, want %d", res.Elems, d.M.NumActiveElems())
	}
	if res.Time <= 0 || res.Words <= 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestEdgeAndVertSPL(t *testing.T) {
	d, _, _ := fixture(t, 2)
	shared := 0
	var buf []int32
	for ei := range d.M.Edges {
		spl := d.EdgeSPL(mesh.EdgeID(ei), buf)
		buf = spl
		if len(spl) > 2 {
			t.Fatalf("edge SPL %v larger than P", spl)
		}
		if len(spl) == 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared edges for P=2")
	}
}
