package par

import (
	"errors"
	"reflect"
	"testing"

	"plum/internal/fault"
	"plum/internal/machine"
)

// exchanges is the iteration table for the parity tests.
var exchanges = []machine.Exchange{
	machine.ExchangeFlat,
	machine.ExchangeAggregated,
	machine.ExchangeHierarchical,
}

// nodeModel returns the SP2 machine on a 4-ranks-per-node topology — the
// fixture every schedule (hierarchical included) can run on.
func nodeModel() machine.Model {
	mdl := machine.SP2()
	mdl.Topo = machine.NodeTopology(4)
	return mdl
}

// TestExchangeParity is the tentpole's determinism contract: the three
// exchange schedules move byte-identical payloads to byte-identical
// owners — flat, aggregated, and hierarchical differ only in the modeled
// communication charges — and within each schedule the whole RemapResult,
// modeled floats included, is byte-identical at workers 1/2/4/8 and
// between the bulk and streaming executors.
func TestExchangeParity(t *testing.T) {
	const p = 8
	mdl := nodeModel()

	type outcome struct {
		res    RemapResult
		owners []int32
	}
	run := func(x machine.Exchange, workers int, streaming bool) outcome {
		d, newOwner := bigFixture(t, p)
		d.Workers = workers
		d.Exchange = x
		var res RemapResult
		var err error
		if streaming {
			res, err = d.ExecuteRemapStreaming(newOwner, mdl)
		} else {
			res, err = d.ExecuteRemap(newOwner, mdl)
		}
		if err != nil {
			t.Fatalf("%v workers=%d streaming=%v: %v", x, workers, streaming, err)
		}
		return outcome{res, d.Owners()}
	}

	refs := map[machine.Exchange]outcome{}
	for _, x := range exchanges {
		ref := run(x, 1, false)
		if ref.res.Moved == 0 || ref.res.Sets < 2 || ref.res.Setups == 0 || ref.res.SetupTime <= 0 {
			t.Fatalf("%v: fixture not interesting: %+v", x, ref.res)
		}
		refs[x] = ref

		// Worker parity within the schedule: everything but the
		// critical-path op shares is bit-identical.
		for _, w := range []int{2, 4, 8} {
			got := run(x, w, false)
			if !reflect.DeepEqual(got.owners, ref.owners) {
				t.Fatalf("%v workers=%d: owner array diverges", x, w)
			}
			got.res.Ops.Crit, got.res.Ops.MemCrit = ref.res.Ops.Crit, ref.res.Ops.MemCrit
			if !reflect.DeepEqual(got.res, ref.res) {
				t.Errorf("%v workers=%d: RemapResult diverges:\n got %+v\nwant %+v", x, w, got.res, ref.res)
			}
		}

		// Streaming parity: identical up to PeakWords.
		st := run(x, 4, true)
		if !reflect.DeepEqual(st.owners, ref.owners) {
			t.Fatalf("%v: streaming owner array diverges", x)
		}
		norm := st.res
		norm.PeakWords = ref.res.PeakWords
		norm.Ops.Crit, norm.Ops.MemCrit = ref.res.Ops.Crit, ref.res.Ops.MemCrit
		if !reflect.DeepEqual(norm, ref.res) {
			t.Errorf("%v: streaming result diverges beyond PeakWords:\n got %+v\nwant %+v", x, st.res, ref.res)
		}
		if st.res.PeakWords >= ref.res.PeakWords {
			t.Errorf("%v: streaming peak %d not below bulk %d", x, st.res.PeakWords, ref.res.PeakWords)
		}
	}

	// Cross-schedule parity: owners and the schedule-invariant quantities
	// match; only the communication model's outputs differ.
	flat := refs[machine.ExchangeFlat]
	for _, x := range exchanges[1:] {
		got := refs[x]
		if !reflect.DeepEqual(got.owners, flat.owners) {
			t.Fatalf("%v: owner array diverges from flat", x)
		}
		if got.res.Moved != flat.res.Moved || got.res.Sets != flat.res.Sets ||
			got.res.WordsMoved != flat.res.WordsMoved || got.res.PeakWords != flat.res.PeakWords ||
			got.res.Ops != flat.res.Ops || got.res.PackTime != flat.res.PackTime {
			t.Errorf("%v: schedule-invariant fields diverge from flat:\n got %+v\nwant %+v",
				x, got.res, flat.res)
		}
		if got.res.Setups >= flat.res.Setups {
			t.Errorf("%v: %d setups not below flat's %d", x, got.res.Setups, flat.res.Setups)
		}
	}
}

// TestFlatExchangeLegacyAccounting pins the flat schedule on a flat
// topology to the paper's accounting: one setup per element set at
// exactly Tsetup each.
func TestFlatExchangeLegacyAccounting(t *testing.T) {
	mdl := machine.SP2()
	d, newOwner := bigFixture(t, 8)
	d.Workers = 4
	res, err := d.ExecuteRemap(newOwner, mdl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setups != int64(res.Sets) {
		t.Errorf("flat Setups = %d, want Sets = %d", res.Setups, res.Sets)
	}
	if got, want := res.SetupTime, float64(res.Sets)*mdl.Tsetup; got != want {
		t.Errorf("flat SetupTime = %g, want Sets·Tsetup = %g", got, want)
	}
	if res.IntraWords != 0 || res.InterWords != res.WordsMoved {
		t.Errorf("flat topology split wrong: intra %d inter %d moved %d",
			res.IntraWords, res.InterWords, res.WordsMoved)
	}
}

// TestHierarchicalFaultRecovery runs the hierarchical wire path under an
// aggressive fault plan: with a generous budget the remap must converge
// to the fault-free owners byte-identically at every worker count; with a
// starved budget it must roll back to the pre-remap ownership rather than
// commit a torn state.
func TestHierarchicalFaultRecovery(t *testing.T) {
	const p = 8
	mdl := nodeModel()
	refD, newOwner := bigFixture(t, p)
	refD.Exchange = machine.ExchangeHierarchical
	if _, err := refD.ExecuteRemapStreaming(newOwner, mdl); err != nil {
		t.Fatal(err)
	}

	plan := &fault.Plan{Seed: 1717, Rate: 0.25}
	for _, w := range []int{1, 4} {
		d, _ := bigFixture(t, p)
		d.Workers = w
		d.Exchange = machine.ExchangeHierarchical
		d.Faults = plan
		d.Retry = fault.Retry{MsgAttempts: 12, WindowRetries: 6}
		res, err := d.ExecuteRemapStreaming(newOwner, mdl)
		if err != nil {
			t.Fatalf("workers=%d: hierarchical recovery failed: %v", w, err)
		}
		if !reflect.DeepEqual(d.Owners(), refD.Owners()) {
			t.Fatalf("workers=%d: recovered owners diverge from fault-free", w)
		}
		if res.Retries == 0 && res.WindowRetries == 0 {
			t.Errorf("workers=%d: rate 0.25 left no recovery trace", w)
		}
	}

	// Starved budget: rate-1 drops can never converge; the stream must
	// report rollback with the pre-remap ownership intact.
	d, _ := bigFixture(t, p)
	before := d.Owners()
	d.Exchange = machine.ExchangeHierarchical
	d.Faults = &fault.Plan{Seed: 3, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
	d.Retry = fault.Retry{MsgAttempts: 1, WindowRetries: 1}
	_, err := d.ExecuteRemapStreaming(newOwner, mdl)
	var re *RemapError
	if !errors.As(err, &re) || !re.RolledBack {
		t.Fatalf("starved hierarchical remap returned %v, want rolled-back RemapError", err)
	}
	if !reflect.DeepEqual(d.Owners(), before) {
		t.Fatal("rollback left a torn owner array")
	}
}
