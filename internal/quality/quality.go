// Package quality computes tetrahedral mesh-quality metrics: aspect
// ratios, dihedral angles, and volume statistics. The 3D_TAG subdivision
// templates are not quality-preserving in general (anisotropic 1:2 and
// 1:4 splits flatten elements), so the adaption loop monitors these
// metrics; the isotropic 1:8 split keeps the corner children similar to
// the parent.
package quality

import (
	"fmt"
	"math"

	"plum/internal/geom"
	"plum/internal/mesh"
)

// Report summarizes the quality of the active elements of a mesh.
type Report struct {
	// Elements is the number of active elements measured.
	Elements int
	// MinVolume and MaxVolume bound the element volumes.
	MinVolume, MaxVolume float64
	// MeanAspect and MaxAspect describe the longest/shortest edge ratio.
	MeanAspect, MaxAspect float64
	// MinDihedralDeg and MaxDihedralDeg bound the dihedral angles over
	// all elements, in degrees.
	MinDihedralDeg, MaxDihedralDeg float64
	// AspectHistogram counts elements in the buckets
	// (≤1.5, ≤2, ≤3, ≤5, ≤10, >10].
	AspectHistogram [6]int
}

// aspectLimits are the histogram bucket upper bounds.
var aspectLimits = []float64{1.5, 2, 3, 5, 10}

// Measure computes the quality report for the mesh's active elements.
func Measure(m *mesh.Mesh) Report {
	r := Report{
		MinVolume:      math.Inf(1),
		MinDihedralDeg: math.Inf(1),
	}
	var aspectSum float64
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		r.Elements++
		a := m.Verts[t.V[0]].Pos
		b := m.Verts[t.V[1]].Pos
		c := m.Verts[t.V[2]].Pos
		d := m.Verts[t.V[3]].Pos

		v := geom.TetVolume(a, b, c, d)
		if v < r.MinVolume {
			r.MinVolume = v
		}
		if v > r.MaxVolume {
			r.MaxVolume = v
		}

		ar := geom.TetAspectRatio(a, b, c, d)
		aspectSum += ar
		if ar > r.MaxAspect {
			r.MaxAspect = ar
		}
		k := len(aspectLimits)
		for j, l := range aspectLimits {
			if ar <= l {
				k = j
				break
			}
		}
		r.AspectHistogram[k]++

		lo, hi := dihedralRange(a, b, c, d)
		if lo < r.MinDihedralDeg {
			r.MinDihedralDeg = lo
		}
		if hi > r.MaxDihedralDeg {
			r.MaxDihedralDeg = hi
		}
	}
	if r.Elements > 0 {
		r.MeanAspect = aspectSum / float64(r.Elements)
	} else {
		r.MinVolume = 0
		r.MinDihedralDeg = 0
	}
	return r
}

// dihedralRange returns the smallest and largest dihedral angle (degrees)
// of the tetrahedron over its six edges.
func dihedralRange(a, b, c, d geom.Vec3) (lo, hi float64) {
	pts := [4]geom.Vec3{a, b, c, d}
	lo, hi = math.Inf(1), 0
	// For each edge (i,j), the dihedral angle is between the two faces
	// that share it; face normals computed with the opposite vertices.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			var rest []int
			for k := 0; k < 4; k++ {
				if k != i && k != j {
					rest = append(rest, k)
				}
			}
			// Faces (i, j, rest[0]) and (i, j, rest[1]).
			e := pts[j].Sub(pts[i])
			n1 := e.Cross(pts[rest[0]].Sub(pts[i]))
			n2 := e.Cross(pts[rest[1]].Sub(pts[i]))
			denom := n1.Norm() * n2.Norm()
			if denom == 0 {
				continue
			}
			cos := n1.Dot(n2) / denom
			if cos > 1 {
				cos = 1
			}
			if cos < -1 {
				cos = -1
			}
			ang := math.Acos(cos) * 180 / math.Pi
			if ang < lo {
				lo = ang
			}
			if ang > hi {
				hi = ang
			}
		}
	}
	return lo, hi
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf(
		"elements=%d vol=[%.3g, %.3g] aspect(mean=%.2f max=%.2f) dihedral=[%.1f°, %.1f°]",
		r.Elements, r.MinVolume, r.MaxVolume, r.MeanAspect, r.MaxAspect,
		r.MinDihedralDeg, r.MaxDihedralDeg)
}
