package quality

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
)

func TestMeasureUnitCube(t *testing.T) {
	m := meshgen.UnitCube()
	r := Measure(m)
	if r.Elements != 6 {
		t.Fatalf("elements = %d", r.Elements)
	}
	// Kuhn path tets: volume exactly 1/6 each.
	if math.Abs(r.MinVolume-1.0/6.0) > 1e-12 || math.Abs(r.MaxVolume-1.0/6.0) > 1e-12 {
		t.Errorf("volumes [%g, %g], want 1/6", r.MinVolume, r.MaxVolume)
	}
	// Aspect ratio of a path tet: longest edge √3, shortest 1.
	if math.Abs(r.MaxAspect-math.Sqrt(3)) > 1e-12 {
		t.Errorf("max aspect %g, want √3", r.MaxAspect)
	}
	if r.MinDihedralDeg <= 0 || r.MaxDihedralDeg >= 180 {
		t.Errorf("dihedral range [%g, %g] out of (0, 180)", r.MinDihedralDeg, r.MaxDihedralDeg)
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
	total := 0
	for _, n := range r.AspectHistogram {
		total += n
	}
	if total != r.Elements {
		t.Errorf("histogram sums to %d, want %d", total, r.Elements)
	}
}

func TestIsotropicRefinementPreservesQuality(t *testing.T) {
	// 1:8 subdivision of every element: corner children are similar to
	// the parent, octahedron children bounded — max aspect must not blow
	// up.
	m := meshgen.UnitCube()
	before := Measure(m)
	a := adapt.New(m)
	a.MarkRegion(geom.All{}, adapt.MarkRefine)
	a.Refine()
	after := Measure(m)
	if after.Elements != 48 {
		t.Fatalf("elements = %d", after.Elements)
	}
	if after.MaxAspect > 2.5*before.MaxAspect {
		t.Errorf("isotropic refinement degraded aspect %g -> %g", before.MaxAspect, after.MaxAspect)
	}
	// Volumes exactly one eighth of the parents'.
	if math.Abs(after.MinVolume-before.MinVolume/8) > 1e-12 {
		t.Errorf("child volume %g, want %g", after.MinVolume, before.MinVolume/8)
	}
}

func TestAnisotropicRefinementDegradesGracefully(t *testing.T) {
	// Repeated 1:2 splits of the same element family flatten elements;
	// the metric must detect it (this is why real drivers prefer the
	// error indicator to re-mark whole regions).
	m := meshgen.UnitCube()
	a := adapt.New(m)
	for i := 0; i < 3; i++ {
		// Mark exactly one active edge to force a chain of 1:2 splits.
		marked := false
		for ei := range m.Edges {
			ed := &m.Edges[ei]
			if !ed.Dead && !ed.Bisected() && len(ed.Elems) > 0 && !marked {
				a.SetMark(mesh.EdgeID(ei), adapt.MarkRefine)
				marked = true
			}
		}
		a.Refine()
	}
	r := Measure(m)
	if r.MaxAspect <= math.Sqrt(3) {
		t.Errorf("expected anisotropic splits to raise max aspect above the initial %g, got %g",
			math.Sqrt(3), r.MaxAspect)
	}
}

func TestMeasureEmptyMesh(t *testing.T) {
	m := meshgen.UnitCube()
	// Deactivate everything (simulate a fully-migrated-away subdomain).
	for i := range m.Elems {
		m.Elems[i].Dead = true
	}
	r := Measure(m)
	if r.Elements != 0 || r.MinVolume != 0 || r.MeanAspect != 0 {
		t.Errorf("empty mesh report: %+v", r)
	}
}
