package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecAlgebra(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Mid(w); got != (Vec3{2.5, -1.5, 4.5}) {
		t.Errorf("Mid = %v", got)
	}
	if got := v.Lerp(w, 0); got != v {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := v.Lerp(w, 1); got != w {
		t.Errorf("Lerp(1) = %v", got)
	}
}

// clamp maps an arbitrary quick-generated float into a well-conditioned
// range so products cannot overflow.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e3)
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return almostEq(c.Dot(a), 0, 1e-9*scale*scale) && almostEq(c.Dot(b), 0, 1e-9*scale*scale)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCrossAnticommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormDist(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if got := v.Dist(Vec3{0, 0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestTetVolumeUnit(t *testing.T) {
	// Unit right tetrahedron has volume 1/6.
	v := TetVolume(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1})
	if !almostEq(v, 1.0/6.0, 1e-15) {
		t.Errorf("TetVolume = %v, want 1/6", v)
	}
	// Swapping two vertices flips the sign.
	v2 := TetVolume(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 0, 1}, Vec3{0, 1, 0})
	if !almostEq(v2, -1.0/6.0, 1e-15) {
		t.Errorf("swapped TetVolume = %v, want -1/6", v2)
	}
}

func TestTetVolumeTranslationInvariant(t *testing.T) {
	f := func(ox, oy, oz float64) bool {
		if math.Abs(ox) > 1e6 || math.Abs(oy) > 1e6 || math.Abs(oz) > 1e6 {
			return true // avoid catastrophic cancellation domains
		}
		o := Vec3{ox, oy, oz}
		a, b, c, d := Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}
		v1 := TetVolume(a, b, c, d)
		v2 := TetVolume(a.Add(o), b.Add(o), c.Add(o), d.Add(o))
		return almostEq(v1, v2, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTetCentroid(t *testing.T) {
	c := TetCentroid(Vec3{}, Vec3{4, 0, 0}, Vec3{0, 4, 0}, Vec3{0, 0, 4})
	if c != (Vec3{1, 1, 1}) {
		t.Errorf("TetCentroid = %v", c)
	}
}

func TestTetAspectRatio(t *testing.T) {
	// Regular-ish right tet: longest edge sqrt(2), shortest 1.
	ar := TetAspectRatio(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1})
	if !almostEq(ar, math.Sqrt2, 1e-12) {
		t.Errorf("aspect = %v, want sqrt(2)", ar)
	}
	if !math.IsInf(TetAspectRatio(Vec3{}, Vec3{}, Vec3{0, 1, 0}, Vec3{0, 0, 1}), 1) {
		t.Error("degenerate tet should have infinite aspect ratio")
	}
}

func TestAABB(t *testing.T) {
	b := NewAABB(Vec3{1, 5, 3}, Vec3{2, 0, 4})
	if b.Min != (Vec3{1, 0, 3}) || b.Max != (Vec3{2, 5, 4}) {
		t.Fatalf("NewAABB normalization: %+v", b)
	}
	if !b.Contains(Vec3{1.5, 2, 3.5}) {
		t.Error("Contains interior point failed")
	}
	if b.Contains(Vec3{0, 2, 3.5}) {
		t.Error("Contains exterior point")
	}
	if !b.Contains(b.Min) || !b.Contains(b.Max) {
		t.Error("boundary points must be contained")
	}
	if b.Empty() {
		t.Error("non-empty box reported empty")
	}
	e := EmptyAABB()
	if !e.Empty() {
		t.Error("EmptyAABB not empty")
	}
	e2 := e.Extend(Vec3{1, 1, 1})
	if e2.Empty() || !e2.Contains(Vec3{1, 1, 1}) {
		t.Error("Extend of empty box")
	}
	u := b.Union(NewAABB(Vec3{-1, -1, -1}, Vec3{0, 0, 0}))
	if u.Min != (Vec3{-1, -1, -1}) || u.Max != (Vec3{2, 5, 4}) {
		t.Errorf("Union = %+v", u)
	}
	if got := b.Center(); got != (Vec3{1.5, 2.5, 3.5}) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Size(); got != (Vec3{1, 5, 1}) {
		t.Errorf("Size = %v", got)
	}
}

func TestSphere(t *testing.T) {
	s := Sphere{Center: Vec3{1, 1, 1}, Radius: 2}
	if !s.Contains(Vec3{1, 1, 1}) || !s.Contains(Vec3{3, 1, 1}) {
		t.Error("Contains failed on interior/boundary")
	}
	if s.Contains(Vec3{3.01, 1, 1}) {
		t.Error("Contains exterior point")
	}
}

func TestAllRegion(t *testing.T) {
	var r Region = All{}
	if !r.Contains(Vec3{1e30, -1e30, 0}) {
		t.Error("All must contain everything")
	}
}

func TestTriAreaNormal(t *testing.T) {
	a, b, c := Vec3{}, Vec3{2, 0, 0}, Vec3{0, 2, 0}
	if got := TriArea(a, b, c); !almostEq(got, 2, 1e-15) {
		t.Errorf("TriArea = %v", got)
	}
	n := TriNormal(a, b, c)
	if n != (Vec3{0, 0, 4}) {
		t.Errorf("TriNormal = %v", n)
	}
}
