// Package geom provides the small geometric substrate used by the mesh,
// adaption, and partitioning packages: 3-vectors, bounding volumes, and
// tetrahedron measures.
//
// Everything here is allocation-free and safe for concurrent use (all
// methods are value receivers on immutable data).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Mid returns the midpoint of the segment vw.
func (v Vec3) Mid(w Vec3) Vec3 {
	return Vec3{0.5 * (v.X + w.X), 0.5 * (v.Y + w.Y), 0.5 * (v.Z + w.Z)}
}

// Lerp returns v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y), v.Z + t*(w.Z-v.Z)}
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// AABB is an axis-aligned bounding box. The zero value is the empty box
// (Min > Max componentwise after Reset); use NewAABB or Extend to build one.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the box spanning exactly the two corner points.
func NewAABB(lo, hi Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(lo.X, hi.X), math.Min(lo.Y, hi.Y), math.Min(lo.Z, hi.Z)},
		Max: Vec3{math.Max(lo.X, hi.X), math.Max(lo.Y, hi.Y), math.Max(lo.Z, hi.Z)},
	}
}

// EmptyAABB returns a box that contains nothing and acts as the identity
// for Union/Extend.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Contains reports whether p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Extend returns the smallest box containing b and p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	return b.Extend(c.Min).Extend(c.Max)
}

// Center returns the centroid of the box.
func (b AABB) Center() Vec3 { return b.Min.Mid(b.Max) }

// Size returns the per-axis extents of the box.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Empty reports whether the box contains no points.
func (b AABB) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Sphere is a ball in R^3, used to describe the Local_1 adaption region.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains reports whether p lies inside or on the sphere.
func (s Sphere) Contains(p Vec3) bool {
	return p.Sub(s.Center).Norm2() <= s.Radius*s.Radius
}

// Region is a geometric predicate over points, used to select edges for
// refinement or coarsening (spherical Local_1 region, rectangular Local_2
// region, or any caller-supplied shape).
type Region interface {
	Contains(p Vec3) bool
}

var (
	_ Region = Sphere{}
	_ Region = AABB{}
)

// All is a Region containing every point.
type All struct{}

// Contains always reports true.
func (All) Contains(Vec3) bool { return true }

// TetVolume returns the signed volume of the tetrahedron (a, b, c, d):
// det(b-a, c-a, d-a)/6. Positive when (b-a, c-a, d-a) is a right-handed
// frame.
func TetVolume(a, b, c, d Vec3) float64 {
	u := b.Sub(a)
	v := c.Sub(a)
	w := d.Sub(a)
	return u.Dot(v.Cross(w)) / 6.0
}

// TetCentroid returns the centroid of the tetrahedron (a, b, c, d).
func TetCentroid(a, b, c, d Vec3) Vec3 {
	return Vec3{
		(a.X + b.X + c.X + d.X) / 4,
		(a.Y + b.Y + c.Y + d.Y) / 4,
		(a.Z + b.Z + c.Z + d.Z) / 4,
	}
}

// TetAspectRatio returns a scale-invariant shape quality for the
// tetrahedron: the ratio of the longest edge to the shortest edge.
// 1 is best (only achieved in degenerate symmetric limits); large values
// indicate slivers.
func TetAspectRatio(a, b, c, d Vec3) float64 {
	pts := [4]Vec3{a, b, c, d}
	shortest := math.Inf(1)
	longest := 0.0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			l := pts[i].Dist(pts[j])
			if l < shortest {
				shortest = l
			}
			if l > longest {
				longest = l
			}
		}
	}
	if shortest == 0 {
		return math.Inf(1)
	}
	return longest / shortest
}

// TriArea returns the area of the triangle (a, b, c).
func TriArea(a, b, c Vec3) float64 {
	return 0.5 * b.Sub(a).Cross(c.Sub(a)).Norm()
}

// TriNormal returns the (unnormalized) normal of the triangle (a, b, c)
// with right-hand orientation.
func TriNormal(a, b, c Vec3) Vec3 {
	return b.Sub(a).Cross(c.Sub(a))
}
