// Package refine is the partition-refinement subsystem: boundary
// smoothing of a k-way dual-graph assignment after a partitioner has
// produced the raw cut. It was extracted from internal/partition when the
// serial Fiduccia–Mattheyses pass became the critical-path bottleneck of
// the otherwise-parallel SFC balance pipeline.
//
// Three backends implement the Refiner interface:
//
//   - BandFM:    a deterministic band-limited parallel FM — extract the
//     boundary band, color it into conflict-free classes, compute gains
//     per class in parallel against a frozen snapshot, apply moves in a
//     fixed serial order. Byte-identical output at every worker count.
//   - Diffusion: a Jostle-style weighted-diffusion refiner — first-order
//     load exchange along the part-adjacency graph. Trades edge cut for
//     convergence speed on badly imbalanced inputs.
//   - FM:        the classic serial boundary sweep (the pre-band
//     reference implementation), kept as a scenario knob.
//
// All backends share the serial FM's tolerance and overflow semantics:
// moves never push a part past the 3% balance cap, never empty a part,
// and a final overflow pass forces load out of parts the gain phase could
// not rescue. Every Refine call reports Ops{Total, Crit} charged at the
// effective worker count of the path actually executed — a serial
// fallback below SerialCutoff reports Crit == Total.
package refine

import (
	"plum/internal/chunk"
	"plum/internal/dual"
)

// Ops is the abstract work accounting of one refinement call, mirroring
// the partitioner accounting: Total is the op count summed over all
// workers, Crit the critical-path share a parallel machine waits for.
type Ops struct {
	Total int64
	Crit  int64
}

// Add accumulates o2 into o.
func (o *Ops) Add(o2 Ops) {
	o.Total += o2.Total
	o.Crit += o2.Crit
}

// AddSerial accumulates purely serial work: it extends the critical path
// one-for-one.
func (o *Ops) AddSerial(n int64) {
	o.Total += n
	o.Crit += n
}

// AddParallel accumulates work divided across ew workers: the critical
// path is charged the slowest worker's (ceiling) share.
func (o *Ops) AddParallel(total int64, ew int) {
	o.Total += total
	o.Crit += ceilDiv(total, int64(ew))
}

// clamp caps the critical path at the total: no schedule is slower than
// running everything serially, and the per-phase ceiling terms can
// otherwise nudge past it at tiny sizes.
func (o *Ops) clamp() {
	if o.Crit > o.Total {
		o.Crit = o.Total
	}
}

// Refiner improves a k-way assignment in place. Implementations must
// preserve assignment validity (entries in [0, k), no part emptied), keep
// every move inside the 3% balance cap, and be deterministic at every
// worker count.
type Refiner interface {
	// Name is the CLI-facing backend name.
	Name() string
	// Refine runs up to passes improvement sweeps over g and returns the
	// op accounting of the work performed.
	Refine(g *dual.Graph, asg []int32, k, passes int) Ops
}

// SerialCutoff is the vertex count below which the band machinery's
// chunk bookkeeping costs more than the parallelism recovers; smaller
// graphs run the serial replay and report Crit == Total.
const SerialCutoff = 1 << 12

// EffectiveWorkers resolves the worker count a refinement actually runs
// with: the knob (≤ 0 = GOMAXPROCS), clamped to 1 below SerialCutoff.
// Cost models must divide the parallel phases by this figure, not by the
// raw knob — the serial fallback must be charged serially.
func EffectiveWorkers(n, workers int) int {
	return chunk.EffectiveWorkers(n, workers, SerialCutoff)
}

// Default returns the backend used when no refiner is forced: the
// band-limited parallel FM when an n-vertex refinement would actually run
// parallel (EffectiveWorkers > 1), the classic serial sweep otherwise —
// on a serial host, or below SerialCutoff, the band machinery costs ~2×
// the plain sweep in wall time and the parallelism buys nothing back.
// Note the trade: because the two backends produce different (equally
// valid) cuts, the adaptive default is invariant across worker counts
// only while EffectiveWorkers stays on one side of 1; forcing a name via
// ByName restores full worker-count invariance.
func Default(n, workers int) Refiner {
	if EffectiveWorkers(n, workers) > 1 {
		return NewBandFM(workers)
	}
	return FM{}
}

// Names lists the available backends, default first — the iteration
// table for CLI validation and tests.
var Names = []string{"bandfm", "diffusion", "fm"}

// ByName returns the refiner with the given CLI name ("" selects the
// default BandFM) at the given worker knob.
func ByName(name string, workers int) (Refiner, bool) {
	switch name {
	case "", "bandfm":
		return NewBandFM(workers), true
	case "diffusion":
		return NewDiffusion(workers), true
	case "fm":
		return FM{}, true
	}
	return nil, false
}

// partState computes the per-part weight totals and populations with a
// chunked scan (int64 addition is exact, so the chunk-order merge is
// identical at every worker count), charging the scan at ew workers.
func partState(g *dual.Graph, asg []int32, k, ew int, ops *Ops) (w []int64, cnt []int) {
	nc := chunk.Count(g.N, ew)
	pw := make([][]int64, nc)
	pc := make([][]int, nc)
	chunk.For(g.N, ew, func(c, lo, hi int) {
		wloc := make([]int64, k)
		cloc := make([]int, k)
		for v := lo; v < hi; v++ {
			p := asg[v]
			wloc[p] += g.Wcomp[v]
			cloc[p]++
		}
		pw[c] = wloc
		pc[c] = cloc
	})
	w = make([]int64, k)
	cnt = make([]int, k)
	for c := 0; c < nc; c++ {
		for p := 0; p < k; p++ {
			w[p] += pw[c][p]
			cnt[p] += pc[c][p]
		}
	}
	// The scan is charged in parallel and the k-sized reduction serially;
	// the per-chunk partial arrays are folded into each worker's scan so
	// Total stays identical at every worker count (only Crit may differ).
	ops.AddParallel(int64(g.N), ew)
	ops.AddSerial(int64(k))
	return w, cnt
}

// balanceCap returns the serial FM's 3% tolerance cap on per-part
// weight: no refinement move may push a part past it.
func balanceCap(w []int64) int64 {
	var total int64
	for _, x := range w {
		total += x
	}
	avg := float64(total) / float64(len(w))
	maxW := int64(avg * 1.03)
	if maxW < 1 {
		maxW = 1
	}
	return maxW
}

// overflowPass is the shared last-resort rebalancer: gain- and
// flow-driven moves alone cannot rescue a badly imbalanced input, so
// force vertices out of overloaded parts into their lightest neighbouring
// part, accepting cut damage, until every part fits or no vertex can
// leave. Purely serial; returns its op count.
func overflowPass(g *dual.Graph, asg []int32, k int, w []int64, cnt []int, maxW int64) int64 {
	var ops int64
	for iter := 0; iter < 2*k; iter++ {
		over := -1
		for p := 0; p < k; p++ {
			if w[p] > maxW && (over < 0 || w[p] > w[over]) {
				over = p
			}
		}
		if over < 0 {
			return ops
		}
		moved := false
		for v := 0; v < g.N && w[over] > maxW; v++ {
			ops++
			if asg[v] != int32(over) || cnt[over] <= 1 {
				continue
			}
			best := int32(-1)
			for _, u := range g.Adj[v] {
				b := asg[u]
				if b == int32(over) {
					continue
				}
				if best < 0 || w[b] < w[best] {
					best = b
				}
			}
			if best >= 0 && w[best]+g.Wcomp[v] <= maxW {
				asg[v] = best
				w[over] -= g.Wcomp[v]
				w[best] += g.Wcomp[v]
				cnt[over]--
				cnt[best]++
				moved = true
			}
		}
		if !moved {
			return ops
		}
	}
	return ops
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
