package refine

import (
	"plum/internal/chunk"
	"plum/internal/dual"
)

// BandFM is the deterministic band-limited parallel Fiduccia–Mattheyses
// refiner — the default backend. Each pass:
//
//  1. extracts the boundary band (vertices with a neighbour in another
//     part) with a chunked parallel scan;
//  2. greedily colors the band-induced subgraph so no two vertices of a
//     color class are adjacent — the conflict-free move sets;
//  3. per class, computes every member's move proposal in parallel
//     against a frozen weight snapshot (read-only: nothing mutates during
//     the phase, so the proposals are independent of chunking);
//  4. applies the proposals serially in class order, re-checking the
//     balance cap and part populations against live state.
//
// Because class members are pairwise non-adjacent, a proposal's gain is
// still exact when it is applied — every accepted move has gain ≥ 0, so
// the gain phase never increases the edge cut. The serial apply order is
// fixed by vertex index, so the output is byte-identical at every worker
// count; below SerialCutoff the same algorithm runs as a serial replay
// and is charged serially (Crit == Total).
type BandFM struct {
	// Workers bounds the worker-goroutine count of the band-extraction
	// and gain phases (≤ 0 = GOMAXPROCS). Output is identical at every
	// value.
	Workers int
}

// NewBandFM returns a band-limited FM refiner with the given worker knob.
func NewBandFM(workers int) *BandFM { return &BandFM{Workers: workers} }

// Name implements Refiner.
func (r *BandFM) Name() string { return "bandfm" }

// Refine implements Refiner.
func (r *BandFM) Refine(g *dual.Graph, asg []int32, k, passes int) Ops {
	var ops Ops
	if k <= 1 || g.N == 0 {
		return ops
	}
	ew := EffectiveWorkers(g.N, r.Workers)
	w, cnt := partState(g, asg, k, ew, &ops)
	maxW := balanceCap(w)
	ops.AddSerial(int64(k))

	bandIdx := make([]int32, g.N) // band position + 1; 0 = outside the band
	w0 := make([]int64, k)        // per-class frozen weight snapshot

	for pass := 0; pass < passes; pass++ {
		band, bops := extractBand(g, asg, ew)
		ops.AddParallel(bops, ew)
		if len(band) == 0 {
			break
		}
		classes, cops := colorBand(g, band, bandIdx)
		ops.AddSerial(cops)

		moved := 0
		for _, class := range classes {
			copy(w0, w)
			ops.AddSerial(int64(k))
			props := make([]int32, len(class))
			nc := chunk.Count(len(class), ew)
			chunkOps := make([]int64, nc)
			chunk.For(len(class), ew, func(c, lo, hi int) {
				conn := make([]int32, k)
				var lops int64
				for i := lo; i < hi; i++ {
					v := class[i]
					props[i] = proposeMove(g, asg, v, w0, maxW, conn)
					lops += 1 + int64(len(g.Adj[v]))
				}
				chunkOps[c] = lops
			})
			var gops int64
			for _, c := range chunkOps {
				gops += c
			}
			// Charged at nc, not ew: a class smaller than the worker pool
			// only ran nc-way parallel, and the critical path must reflect
			// the parallelism the phase actually achieved.
			ops.AddParallel(gops, nc)

			for i, v := range class {
				b := props[i]
				a := asg[v]
				if b == a || cnt[a] <= 1 || w[b]+g.Wcomp[v] > maxW {
					continue
				}
				asg[v] = b
				w[a] -= g.Wcomp[v]
				w[b] += g.Wcomp[v]
				cnt[a]--
				cnt[b]++
				moved++
			}
			ops.AddSerial(int64(len(class)))
		}
		for _, v := range band {
			bandIdx[v] = 0
		}
		ops.AddSerial(int64(len(band)))
		if moved == 0 {
			break
		}
	}
	ops.AddSerial(overflowPass(g, asg, k, w, cnt, maxW))
	ops.clamp()
	return ops
}

// extractBand collects the boundary vertices in ascending index order
// with a chunked scan. Chunks are contiguous index ranges concatenated in
// chunk order, so the band is identical at every worker count. The
// adjacency scan breaks at the first cross-part neighbour.
func extractBand(g *dual.Graph, asg []int32, ew int) (band []int32, ops int64) {
	nc := chunk.Count(g.N, ew)
	parts := make([][]int32, nc)
	chunkOps := make([]int64, nc)
	chunk.For(g.N, ew, func(c, lo, hi int) {
		var local []int32
		var lops int64
		for v := lo; v < hi; v++ {
			a := asg[v]
			lops++
			for _, u := range g.Adj[v] {
				lops++
				if asg[u] != a {
					local = append(local, int32(v))
					break
				}
			}
		}
		parts[c] = local
		chunkOps[c] = lops
	})
	for c := 0; c < nc; c++ {
		band = append(band, parts[c]...)
		ops += chunkOps[c]
	}
	return band, ops
}

// colorBand greedily colors the band-induced subgraph in vertex order,
// returning the color classes. bandIdx is an N-sized scratch the caller
// resets between passes; it records each band vertex's position + 1 so
// adjacency scans can find already-colored band neighbours in O(deg).
// Classes are independent sets: no two members are adjacent.
func colorBand(g *dual.Graph, band []int32, bandIdx []int32) (classes [][]int32, ops int64) {
	for i, v := range band {
		bandIdx[v] = int32(i) + 1
	}
	color := make([]int32, len(band))
	var nbr []int32 // scratch: colors already taken by band neighbours
	for i, v := range band {
		ops += 1 + int64(len(g.Adj[v]))
		nbr = nbr[:0]
		for _, u := range g.Adj[v] {
			if j := bandIdx[u]; j > 0 && int(j-1) < i {
				nbr = append(nbr, color[j-1])
			}
		}
		c := int32(0)
		for taken(nbr, c) {
			c++
		}
		color[i] = c
		for int(c) >= len(classes) {
			classes = append(classes, nil)
		}
		classes[c] = append(classes[c], v)
	}
	return classes, ops
}

func taken(colors []int32, c int32) bool {
	for _, x := range colors {
		if x == c {
			return true
		}
	}
	return false
}

// proposeMove replicates the serial FM move selection for v against the
// frozen weight snapshot w0: the best positive-gain move that fits the
// balance cap, or a zero-gain move into a strictly lighter part. conn is
// a k-sized scratch owned by the calling worker.
func proposeMove(g *dual.Graph, asg []int32, v int32, w0 []int64, maxW int64, conn []int32) int32 {
	a := asg[v]
	for i := range conn {
		conn[i] = 0
	}
	adj := g.Adj[v]
	for _, u := range adj {
		conn[asg[u]]++
	}
	wv := g.Wcomp[v]
	bestPart := a
	bestGain := int32(0)
	for _, u := range adj {
		b := asg[u]
		if b == a || b == bestPart {
			continue
		}
		gain := conn[b] - conn[a]
		fits := w0[b]+wv <= maxW
		better := gain > bestGain && fits
		balances := gain == bestGain && bestPart == a && w0[b]+wv < w0[a]
		if better || (balances && fits) {
			bestPart = b
			bestGain = gain
		}
	}
	return bestPart
}
