package refine

import (
	"math/rand"
	"testing"

	"plum/internal/dual"
	"plum/internal/geom"
)

// gridGraph builds a connected nx×ny×nz lattice dual graph with
// heavy-tailed weights drawn from the given seed — the same stand-in the
// partition fuzzer uses, rebuilt here to keep the package test-independent.
func gridGraph(nx, ny, nz int, seed int64) *dual.Graph {
	n := nx * ny * nz
	g := &dual.Graph{
		N:          n,
		Adj:        make([][]int32, n),
		Wcomp:      make([]int64, n),
		Wremap:     make([]int64, n),
		EdgeWeight: 1,
		Centroid:   make([]geom.Vec3, n),
	}
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	rng := rand.New(rand.NewSource(seed))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				g.Centroid[v] = geom.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
				w := int64(1)
				switch rng.Intn(8) {
				case 0:
					w = int64(1 + rng.Intn(20))
				case 1:
					w = int64(1 + rng.Intn(500))
				}
				g.Wcomp[v] = w
				g.Wremap[v] = w
				if x > 0 {
					g.Adj[v] = append(g.Adj[v], id(x-1, y, z))
					g.Adj[id(x-1, y, z)] = append(g.Adj[id(x-1, y, z)], v)
				}
				if y > 0 {
					g.Adj[v] = append(g.Adj[v], id(x, y-1, z))
					g.Adj[id(x, y-1, z)] = append(g.Adj[id(x, y-1, z)], v)
				}
				if z > 0 {
					g.Adj[v] = append(g.Adj[v], id(x, y, z-1))
					g.Adj[id(x, y, z-1)] = append(g.Adj[id(x, y, z-1)], v)
				}
			}
		}
	}
	return g
}

// blockAssignment splits the vertex range into k contiguous index blocks
// — a valid (all parts non-empty for k ≤ n), deliberately rough starting
// partition with a real boundary band.
func blockAssignment(n, k int) []int32 {
	asg := make([]int32, n)
	for v := range asg {
		asg[v] = int32(v * k / n)
	}
	return asg
}

func checkValid(t *testing.T, g *dual.Graph, asg []int32, k int, name string) {
	t.Helper()
	cnt := make([]int, k)
	for v, p := range asg {
		if p < 0 || int(p) >= k {
			t.Fatalf("%s: vertex %d in invalid part %d", name, v, p)
		}
		cnt[p]++
	}
	for p, c := range cnt {
		if c == 0 {
			t.Fatalf("%s: part %d emptied", name, p)
		}
	}
}

func maxLoad(g *dual.Graph, asg []int32, k int) int64 {
	w := make([]int64, k)
	for v, p := range asg {
		w[p] += g.Wcomp[v]
	}
	var max int64
	for _, x := range w {
		if x > max {
			max = x
		}
	}
	return max
}

func edgeCut(g *dual.Graph, asg []int32) int64 {
	var cut int64
	for v := range g.Adj {
		for _, u := range g.Adj[v] {
			if int32(v) < u && asg[v] != asg[u] {
				cut++
			}
		}
	}
	return cut
}

// TestBandFMWorkerParity is the determinism contract of the tentpole:
// BandFM (and Diffusion, which shares the frozen-phase/serial-apply
// structure) must produce byte-identical assignments at every worker
// count, on a graph large enough to engage the parallel band machinery.
func TestBandFMWorkerParity(t *testing.T) {
	g := gridGraph(24, 24, 16, 5) // 9216 vertices > SerialCutoff
	for _, k := range []int{2, 7, 16} {
		init := blockAssignment(g.N, k)
		for _, backend := range []func(w int) Refiner{
			func(w int) Refiner { return NewBandFM(w) },
			func(w int) Refiner { return NewDiffusion(w) },
		} {
			ref := append([]int32(nil), init...)
			refOps := backend(1).Refine(g, ref, k, 2)
			if refOps.Crit != refOps.Total {
				t.Errorf("%s k=%d workers=1: Crit %d != Total %d on the serial replay",
					backend(1).Name(), k, refOps.Crit, refOps.Total)
			}
			for _, w := range []int{2, 4, 8} {
				got := append([]int32(nil), init...)
				ops := backend(w).Refine(g, got, k, 2)
				for v := range got {
					if got[v] != ref[v] {
						t.Fatalf("%s k=%d workers=%d: vertex %d in part %d, serial replay says %d",
							backend(w).Name(), k, w, v, got[v], ref[v])
					}
				}
				if ops.Total != refOps.Total {
					t.Errorf("%s k=%d workers=%d: total ops %d != serial total %d (work must be worker-invariant)",
						backend(w).Name(), k, w, ops.Total, refOps.Total)
				}
				if ops.Crit >= ops.Total {
					t.Errorf("%s k=%d workers=%d: parallel run not discounted (crit %d vs total %d)",
						backend(w).Name(), k, w, ops.Crit, ops.Total)
				}
			}
		}
	}
}

// TestRefinerContract runs the shared backend contract over every
// refiner: validity and non-empty parts are preserved, no move pushes
// the heaviest part past the 3% balance cap (Wmax never exceeds
// max(Wmax_before, cap)), and the op accounting is sane.
func TestRefinerContract(t *testing.T) {
	fixtures := []struct {
		name string
		g    *dual.Graph
	}{
		{"small", gridGraph(6, 6, 5, 3)},    // 180 vertices: serial fallback
		{"large", gridGraph(20, 18, 14, 9)}, // 5040 vertices: parallel band path
	}
	for _, fx := range fixtures {
		var total int64
		for _, w := range fx.g.Wcomp {
			total += w
		}
		for _, name := range Names {
			for _, k := range []int{2, 5, 8} {
				r, ok := ByName(name, 4)
				if !ok {
					t.Fatalf("refiner %q missing", name)
				}
				asg := blockAssignment(fx.g.N, k)
				before := maxLoad(fx.g, asg, k)
				ops := r.Refine(fx.g, asg, k, 2)

				label := fx.name + "/" + name
				checkValid(t, fx.g, asg, k, label)
				cap := int64(float64(total) / float64(k) * 1.03)
				if cap < 1 {
					cap = 1
				}
				bound := before
				if cap > bound {
					bound = cap
				}
				if after := maxLoad(fx.g, asg, k); after > bound {
					t.Errorf("%s k=%d: Wmax %d exceeds bound max(before=%d, cap=%d)",
						label, k, after, before, cap)
				}
				if ops.Total <= 0 {
					t.Errorf("%s k=%d: no work reported", label, k)
				}
				if ops.Crit > ops.Total {
					t.Errorf("%s k=%d: critical path %d exceeds total %d", label, k, ops.Crit, ops.Total)
				}
				if fx.g.N < SerialCutoff && ops.Crit != ops.Total {
					t.Errorf("%s k=%d: serial fallback must report Crit == Total (got %d != %d)",
						label, k, ops.Crit, ops.Total)
				}
			}
		}
	}
}

// TestBandFMGainPhaseCutNonIncrease pins the conflict-free-class
// guarantee: on a balanced input (the overflow pass is a no-op) every
// applied move has exact gain ≥ 0, so the cut can only shrink. The
// diagonal-checkerboard start is perfectly balanced (every dimension
// divides k) and every edge is cut, so positive-gain moves abound.
func TestBandFMGainPhaseCutNonIncrease(t *testing.T) {
	const nx, ny, nz = 12, 12, 8
	g := gridGraph(nx, ny, nz, 1)
	for i := range g.Wcomp {
		g.Wcomp[i] = 1
	}
	for _, k := range []int{2, 4} {
		asg := make([]int32, g.N)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					asg[(z*ny+y)*nx+x] = int32((x + y + z) % k)
				}
			}
		}
		before := edgeCut(g, asg)
		NewBandFM(3).Refine(g, asg, k, 8)
		after := edgeCut(g, asg)
		if after > before {
			t.Errorf("k=%d: gain phase increased cut %d -> %d", k, before, after)
		}
		if after >= before {
			t.Errorf("k=%d: band FM failed to improve a checkerboard cut (%d -> %d)", k, before, after)
		}
		checkValid(t, g, asg, k, "bandfm/checkerboard")
	}
}

// TestClassicFMStillImproves covers the relocated serial sweep (with the
// early-break boundary fix): same cut-improvement behaviour as before
// the extraction.
func TestClassicFMStillImproves(t *testing.T) {
	g := gridGraph(10, 10, 6, 2)
	asg := make([]int32, g.N)
	for v := range asg {
		asg[v] = int32(v % 2)
	}
	before := edgeCut(g, asg)
	if ops := FMRefine(g, asg, 2, 8); ops <= 0 {
		t.Error("no ops reported")
	}
	if after := edgeCut(g, asg); after >= before {
		t.Errorf("classic FM did not improve cut: %d -> %d", before, after)
	}
	checkValid(t, g, asg, 2, "fm")
}

func TestEffectiveWorkers(t *testing.T) {
	if w := EffectiveWorkers(SerialCutoff-1, 8); w != 1 {
		t.Errorf("below cutoff: %d workers, want 1", w)
	}
	if w := EffectiveWorkers(SerialCutoff, 8); w != 8 {
		t.Errorf("at cutoff: %d workers, want 8", w)
	}
	if w := EffectiveWorkers(1<<20, 1); w != 1 {
		t.Errorf("explicit serial knob: %d workers, want 1", w)
	}
	if w := EffectiveWorkers(1<<20, 0); w < 1 {
		t.Errorf("GOMAXPROCS resolution returned %d", w)
	}
}

// TestDefaultAdaptive pins the adaptive default: band-FM only when the
// refinement would actually run parallel, the classic sweep otherwise
// (serial hosts don't pay the ~2× band overhead).
func TestDefaultAdaptive(t *testing.T) {
	if r := Default(SerialCutoff, 4); r.Name() != "bandfm" {
		t.Errorf("parallel default = %s, want bandfm", r.Name())
	}
	if r := Default(SerialCutoff, 1); r.Name() != "fm" {
		t.Errorf("serial-knob default = %s, want fm", r.Name())
	}
	if r := Default(SerialCutoff-1, 8); r.Name() != "fm" {
		t.Errorf("below-cutoff default = %s, want fm", r.Name())
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names {
		r, ok := ByName(name, 2)
		if !ok || r.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, r, ok)
		}
	}
	if r, ok := ByName("", 2); !ok || r.Name() != "bandfm" {
		t.Errorf("default refiner = %v, %v; want bandfm", r, ok)
	}
	if _, ok := ByName("nope", 2); ok {
		t.Error("ByName accepted an unknown backend")
	}
}

// TestRefineDegenerate covers the k ≤ 1 and empty-graph guards.
func TestRefineDegenerate(t *testing.T) {
	g := gridGraph(3, 3, 3, 1)
	asg := make([]int32, g.N)
	for _, name := range Names {
		r, _ := ByName(name, 2)
		if ops := r.Refine(g, asg, 1, 2); ops.Total != 0 {
			t.Errorf("%s: k=1 did work: %+v", name, ops)
		}
		empty := &dual.Graph{}
		if ops := r.Refine(empty, nil, 4, 2); ops.Total != 0 {
			t.Errorf("%s: empty graph did work: %+v", name, ops)
		}
	}
}

// TestDiffusionRebalances exercises the scenario the diffusion knob
// exists for: a grossly imbalanced input whose load must flow across the
// part-adjacency graph toward the cap.
func TestDiffusionRebalances(t *testing.T) {
	g := gridGraph(12, 12, 8, 7)
	k := 6
	// Pathological start: part 0 owns almost everything.
	asg := make([]int32, g.N)
	for v := g.N - k + 1; v < g.N; v++ {
		asg[v] = int32(v - (g.N - k))
	}
	before := maxLoad(g, asg, k)
	NewDiffusion(2).Refine(g, asg, k, 4)
	after := maxLoad(g, asg, k)
	if after >= before {
		t.Errorf("diffusion did not reduce Wmax: %d -> %d", before, after)
	}
	checkValid(t, g, asg, k, "diffusion/imbalanced")
}
