package refine

import (
	"slices"

	"plum/internal/chunk"
	"plum/internal/dual"
)

// Diffusion is a Jostle-style weighted-diffusion refiner: load flows
// along the part-adjacency graph under a first-order diffusion scheme
// (the flow across each part edge is the weight difference damped by the
// larger endpoint degree), realized by migrating boundary vertices toward
// the neighbouring part with the largest unmet demand. Diffusion
// parallelizes naturally — the flow computation and the candidate scan
// are read-only over frozen state, and only the final apply is serial —
// and converges on badly imbalanced inputs where gain-ordered FM stalls,
// at the price of a rougher edge cut.
//
// The same determinism argument as BandFM applies: parallel phases are
// pure functions of a frozen snapshot, candidates are concatenated in
// chunk (= vertex) order, and the apply is serial in that fixed order, so
// the output is byte-identical at every worker count.
type Diffusion struct {
	// Workers bounds the worker-goroutine count of the scan phases
	// (≤ 0 = GOMAXPROCS). Output is identical at every value.
	Workers int
}

// NewDiffusion returns a weighted-diffusion refiner with the given
// worker knob.
func NewDiffusion(workers int) *Diffusion { return &Diffusion{Workers: workers} }

// Name implements Refiner.
func (d *Diffusion) Name() string { return "diffusion" }

// pairKey packs a directed part pair (p → q) for the flow table.
func pairKey(p, q int32) uint64 { return uint64(uint32(p))<<32 | uint64(uint32(q)) }

// Refine implements Refiner. passes scales the number of diffusion
// iterations (two per pass, matching the FM backends' sweep budget).
func (d *Diffusion) Refine(g *dual.Graph, asg []int32, k, passes int) Ops {
	var ops Ops
	if k <= 1 || g.N == 0 {
		return ops
	}
	ew := EffectiveWorkers(g.N, d.Workers)
	w, cnt := partState(g, asg, k, ew, &ops)
	maxW := balanceCap(w)
	iters := 2 * passes
	if iters < 1 {
		iters = 1
	}
	deg := make([]int32, k)
	for it := 0; it < iters; it++ {
		// Part-adjacency edges of the current cut, deduplicated.
		pairs, pops := cutPairs(g, asg, ew)
		ops.AddParallel(pops, ew)
		ops.AddSerial(int64(len(pairs)))
		if len(pairs) == 0 {
			break
		}

		// First-order-scheme flows: across part edge {p, q}, transfer
		// (w[p] − w[q]) / (1 + max(deg_p, deg_q)) from the heavier side.
		for p := range deg {
			deg[p] = 0
		}
		for _, pq := range pairs {
			deg[pq>>32]++
			deg[uint32(pq)]++
		}
		flow := make(map[uint64]int64, len(pairs))
		for _, pq := range pairs {
			p, q := int32(pq>>32), int32(uint32(pq))
			dd := deg[p]
			if deg[q] > dd {
				dd = deg[q]
			}
			f := (w[p] - w[q]) / int64(1+dd)
			if f > 0 {
				flow[pairKey(p, q)] = f
			} else if f < 0 {
				flow[pairKey(q, p)] = -f
			}
		}
		ops.AddSerial(int64(len(pairs)))
		if len(flow) == 0 {
			break
		}

		// Candidate scan: each boundary vertex volunteers for the
		// neighbouring part with the largest incoming flow from its own.
		// Read-only over the frozen flow table; chunk concatenation keeps
		// candidates in ascending vertex order.
		cands, cops := flowCandidates(g, asg, flow, ew)
		ops.AddParallel(cops, ew)

		// Serial apply in vertex order, draining each pair's flow budget.
		moved := 0
		for _, c := range cands {
			p := asg[c.v]
			wv := g.Wcomp[c.v]
			key := pairKey(p, c.q)
			f := flow[key]
			if f <= 0 || 2*f < wv || cnt[p] <= 1 || w[c.q]+wv > maxW {
				continue
			}
			asg[c.v] = c.q
			w[p] -= wv
			w[c.q] += wv
			cnt[p]--
			cnt[c.q]++
			flow[key] = f - wv
			moved++
		}
		ops.AddSerial(int64(len(cands)))
		if moved == 0 {
			break
		}
	}
	ops.AddSerial(overflowPass(g, asg, k, w, cnt, maxW))
	ops.clamp()
	return ops
}

// cutPairs returns the normalized (small, large) part pairs with at least
// one cut edge, sorted and deduplicated — the part-adjacency graph. The
// edge scan is chunked; the merge sort-and-compact is deterministic
// regardless of chunk layout.
func cutPairs(g *dual.Graph, asg []int32, ew int) (pairs []uint64, ops int64) {
	nc := chunk.Count(g.N, ew)
	parts := make([][]uint64, nc)
	chunkOps := make([]int64, nc)
	chunk.For(g.N, ew, func(c, lo, hi int) {
		var local []uint64
		var lops int64
		for v := lo; v < hi; v++ {
			p := asg[v]
			lops += 1 + int64(len(g.Adj[v]))
			for _, u := range g.Adj[v] {
				q := asg[u]
				if q == p {
					continue
				}
				a, b := p, q
				if a > b {
					a, b = b, a
				}
				local = append(local, pairKey(a, b))
			}
		}
		parts[c] = local
		chunkOps[c] = lops
	})
	for c := 0; c < nc; c++ {
		pairs = append(pairs, parts[c]...)
		ops += chunkOps[c]
	}
	slices.Sort(pairs)
	pairs = slices.Compact(pairs)
	ops += int64(len(pairs))
	return pairs, ops
}

type flowCand struct {
	v, q int32
}

// flowCandidates pairs every boundary vertex with the neighbouring part
// owed the most flow from the vertex's own part (ties to the smallest
// part id). The flow table is frozen during the scan.
func flowCandidates(g *dual.Graph, asg []int32, flow map[uint64]int64, ew int) (cands []flowCand, ops int64) {
	nc := chunk.Count(g.N, ew)
	parts := make([][]flowCand, nc)
	chunkOps := make([]int64, nc)
	chunk.For(g.N, ew, func(c, lo, hi int) {
		var local []flowCand
		var lops int64
		for v := lo; v < hi; v++ {
			p := asg[v]
			lops += 1 + int64(len(g.Adj[v]))
			best := int32(-1)
			var bestF int64
			for _, u := range g.Adj[v] {
				q := asg[u]
				if q == p {
					continue
				}
				f := flow[pairKey(p, q)]
				if f > bestF || (f == bestF && f > 0 && q < best) {
					best, bestF = q, f
				}
			}
			if best >= 0 && bestF > 0 {
				local = append(local, flowCand{v: int32(v), q: best})
			}
		}
		parts[c] = local
		chunkOps[c] = lops
	})
	for c := 0; c < nc; c++ {
		cands = append(cands, parts[c]...)
		ops += chunkOps[c]
	}
	return cands, ops
}
