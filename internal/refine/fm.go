package refine

import "plum/internal/dual"

// FM wraps the classic serial Fiduccia–Mattheyses sweep as a Refiner —
// the pre-band reference implementation, kept as a scenario knob. It is
// inherently serial (moves apply immediately and cascade within a sweep),
// so Crit always equals Total.
type FM struct{}

// Name implements Refiner.
func (FM) Name() string { return "fm" }

// Refine implements Refiner.
func (FM) Refine(g *dual.Graph, asg []int32, k, passes int) Ops {
	n := FMRefine(g, asg, k, passes)
	return Ops{Total: n, Crit: n}
}

// FMRefine performs Fiduccia–Mattheyses-style boundary refinement on a
// k-way assignment in place: boundary vertices greedily move to adjacent
// parts when the move reduces the edge cut without violating the balance
// tolerance, or when it strictly improves balance at equal cut. passes
// bounds the number of sweeps. It returns the abstract operation count of
// the refinement (vertex visits plus adjacency scans) for machine-model
// cost accounting.
func FMRefine(g *dual.Graph, asg []int32, k, passes int) int64 {
	var ops int64
	if k <= 1 {
		return ops
	}
	w := make([]int64, k)
	for v, p := range asg {
		w[p] += g.Wcomp[v]
	}
	maxW := balanceCap(w)

	// Part populations: a move must never empty its source part (a valid
	// Assignment keeps every part non-empty).
	cnt := make([]int, k)
	for _, p := range asg {
		cnt[p]++
	}

	conn := make([]int32, k) // scratch: edges from v into each part
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < g.N; v++ {
			ops += 1 + int64(len(g.Adj[v]))
			a := asg[v]
			if cnt[a] <= 1 {
				continue
			}
			boundary := false
			for _, u := range g.Adj[v] {
				if asg[u] != a {
					boundary = true
					break
				}
			}
			if !boundary {
				continue
			}
			for i := range conn {
				conn[i] = 0
			}
			for _, u := range g.Adj[v] {
				conn[asg[u]]++
			}
			bestPart := a
			bestGain := int32(0)
			for _, u := range g.Adj[v] {
				b := asg[u]
				if b == a || b == bestPart {
					continue
				}
				gain := conn[b] - conn[a]
				fits := w[b]+g.Wcomp[v] <= maxW
				better := gain > bestGain && fits
				balances := gain == bestGain && bestPart == a && w[b]+g.Wcomp[v] < w[a]
				if better || (balances && fits) {
					bestPart = b
					bestGain = gain
				}
			}
			if bestPart != a {
				asg[v] = bestPart
				w[a] -= g.Wcomp[v]
				w[bestPart] += g.Wcomp[v]
				cnt[a]--
				cnt[bestPart]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	ops += overflowPass(g, asg, k, w, cnt, maxW)
	return ops
}
