package refine

import "testing"

// FuzzRefinerValidity is the package-wide refiner contract under
// arbitrary connected lattice graphs, weight distributions, and starting
// partitions: every backend must preserve assignment validity (entries
// in range, no part emptied), never push the heaviest part past
// max(Wmax_before, the 3% cap), report sane ops, and — the determinism
// contract — produce byte-identical output at any worker count.
func FuzzRefinerValidity(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(3), uint8(4), uint8(0), int64(1))
	f.Add(uint8(6), uint8(2), uint8(1), uint8(7), uint8(1), int64(2))
	f.Add(uint8(19), uint8(17), uint8(15), uint8(8), uint8(0), int64(3)) // > SerialCutoff
	f.Add(uint8(5), uint8(5), uint8(4), uint8(2), uint8(2), int64(99))
	f.Fuzz(func(t *testing.T, nx, ny, nz, kk, ri uint8, seed int64) {
		dims := func(d uint8) int { return 2 + int(d)%19 }
		g := gridGraph(dims(nx), dims(ny), dims(nz), seed)
		k := 2 + int(kk)%15
		if k > g.N {
			k = g.N
		}
		name := Names[int(ri)%len(Names)]

		init := blockAssignment(g.N, k)
		var total, before int64
		for _, w := range g.Wcomp {
			total += w
		}
		before = maxLoad(g, init, k)

		serial, _ := ByName(name, 1)
		ref := append([]int32(nil), init...)
		refOps := serial.Refine(g, ref, k, 2)
		if refOps.Crit != refOps.Total {
			t.Fatalf("%s workers=1: Crit %d != Total %d", name, refOps.Crit, refOps.Total)
		}

		checkValid(t, g, ref, k, name)
		cap := int64(float64(total) / float64(k) * 1.03)
		if cap < 1 {
			cap = 1
		}
		bound := before
		if cap > bound {
			bound = cap
		}
		if after := maxLoad(g, ref, k); after > bound {
			t.Fatalf("%s k=%d: Wmax %d exceeds bound max(before=%d, cap=%d)",
				name, k, after, before, cap)
		}

		par, _ := ByName(name, 4)
		got := append([]int32(nil), init...)
		ops := par.Refine(g, got, k, 2)
		if ops.Crit > ops.Total {
			t.Fatalf("%s workers=4: critical path %d exceeds total %d", name, ops.Crit, ops.Total)
		}
		for v := range got {
			if got[v] != ref[v] {
				t.Fatalf("%s k=%d n=%d: workers=4 diverges from serial replay at vertex %d",
					name, k, g.N, v)
			}
		}
	})
}
