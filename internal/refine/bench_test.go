package refine

import (
	"fmt"
	"runtime"
	"testing"
)

// benchWorkers returns the serial baseline and the machine's full
// parallelism (when they differ) — the comparison the refine pipeline's
// speedup claim rides on.
func benchWorkers() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

// BenchmarkBandFM measures the band-limited FM on a band-heavy lattice
// (block partition of a 32×32×24 grid), serial replay versus the worker
// pool. Output is identical at every worker count.
func BenchmarkBandFM(b *testing.B) {
	g := gridGraph(32, 32, 24, 11) // 24576 vertices: well past SerialCutoff
	init := blockAssignment(g.N, 16)
	buf := make([]int32, g.N)
	for _, w := range benchWorkers() {
		r := NewBandFM(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, init)
				if ops := r.Refine(g, buf, 16, 2); ops.Total <= 0 {
					b.Fatal("no work reported")
				}
			}
		})
	}
}

// BenchmarkDiffusion measures the weighted-diffusion refiner on the same
// fixture.
func BenchmarkDiffusion(b *testing.B) {
	g := gridGraph(32, 32, 24, 11)
	init := blockAssignment(g.N, 16)
	buf := make([]int32, g.N)
	for _, w := range benchWorkers() {
		r := NewDiffusion(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, init)
				if ops := r.Refine(g, buf, 16, 2); ops.Total <= 0 {
					b.Fatal("no work reported")
				}
			}
		})
	}
}

// BenchmarkFMSerial is the classic serial sweep on the same fixture —
// the baseline the band extraction exists to beat.
func BenchmarkFMSerial(b *testing.B) {
	g := gridGraph(32, 32, 24, 11)
	init := blockAssignment(g.N, 16)
	buf := make([]int32, g.N)
	for i := 0; i < b.N; i++ {
		copy(buf, init)
		if ops := FMRefine(g, buf, 16, 2); ops <= 0 {
			b.Fatal("no work reported")
		}
	}
}
