package propagate_test

import (
	"reflect"
	"slices"
	"testing"

	"plum/internal/machine"
	"plum/internal/propagate"
)

// FuzzPropagate fuzzes the engine over random incidence topologies, seed
// densities, and rank counts: the fixpoint mark set must equal the serial
// worklist replay's, and the whole Result (critical-path op shares
// excepted) plus the modeled clock must be invariant under chunking —
// workers=1 versus a worker count that engages the parallel rounds — for
// both backends.
func FuzzPropagate(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(4))
	f.Add(uint64(42), uint8(35), uint8(8))
	f.Add(uint64(0xdeadbeef), uint8(70), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, markFrac, ranks uint8) {
		p := 2 + int(ranks)%15
		// Large enough that a dense seed pushes the first rounds past
		// SerialCutoff, so the chunked path really runs.
		n := 2048 + int(seed%1024)
		base, frontier := newHyperWorld(n, p, seed, uint64(markFrac)%100)

		refWorld := base.clone()
		serialFixpoint(refWorld, frontier)

		for _, name := range propagate.Names {
			var ref *struct {
				res     propagate.Result
				elapsed float64
			}
			for _, workers := range []int{1, 3} {
				w := base.clone()
				clk := machine.NewClock(p)
				prop, _ := propagate.ByName(name, workers)
				res := prop.Run(w, slices.Clone(frontier), clk, machine.SP2())
				if !reflect.DeepEqual(w.marked, refWorld.marked) {
					t.Fatalf("%s workers=%d: mark set diverges from serial replay", name, workers)
				}
				if res.Ops.Crit > res.Ops.Total || res.Ops.MemCrit > res.Ops.MemTotal {
					t.Fatalf("%s workers=%d: critical path exceeds total: %+v", name, workers, res.Ops)
				}
				if workers == 1 && res.Ops.Crit != res.Ops.Total {
					t.Fatalf("%s: serial run must report Crit == Total: %+v", name, res.Ops)
				}
				norm := res
				norm.Ops.Crit, norm.Ops.MemCrit = 0, 0
				if ref == nil {
					ref = &struct {
						res     propagate.Result
						elapsed float64
					}{norm, clk.Elapsed()}
					continue
				}
				if !reflect.DeepEqual(norm, ref.res) {
					t.Fatalf("%s workers=%d: Result not chunking-invariant:\n got %+v\nwant %+v",
						name, workers, norm, ref.res)
				}
				if clk.Elapsed() != ref.elapsed {
					t.Fatalf("%s workers=%d: modeled clock not chunking-invariant: %g vs %g",
						name, workers, clk.Elapsed(), ref.elapsed)
				}
			}
		}
	})
}
