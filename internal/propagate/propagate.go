// Package propagate is the deterministic parallel frontier-propagation
// engine behind the distributed 3D_TAG adaption phases: the iterative
// pattern-upgrade process of ParallelRefine and the shared-mark
// consistency exchange of ParallelCoarsen (internal/par).
//
// The engine runs the paper's marking propagation as bulk-synchronous
// supersteps over an element frontier. Each round chunks the frontier
// across worker goroutines, gathers every element's newly required edges
// into per-worker buckets, merges the buckets in canonical element order,
// commits the marks serially in ascending edge order, and lays the
// round's shared-edge notifications out as a CSR outbox sorted by
// (src, dst, edge) — replacing the per-rank map[int32][]int64 outboxes
// whose iteration order made the modeled times run-to-run nondeterministic.
// Because every merge happens in a fixed order that depends only on the
// frontier (never on the chunking), the final mark set, the round count,
// the message/word traffic, and the modeled clock are byte-identical at
// every worker count.
//
// Two backends implement the Propagator interface:
//
//   - BulkSync:   the paper's exchange — one message per nonempty
//     (src, dst) rank pair per round, Tsetup paid per pair.
//   - Aggregated: message aggregation for high processor counts
//     (cf. the wait-free AMR literature): each rank concatenates all of a
//     round's notifications into one combined buffer laid out per
//     destination, paying one message setup per source rank per round
//     instead of one per pair; destinations drain their combined inbox at
//     the per-word rate. Same words, O(P) messages instead of O(P²).
package propagate

import (
	"slices"

	"plum/internal/chunk"
	"plum/internal/fault"
	"plum/internal/machine"
)

// SerialCutoff is the frontier size below which a round's proposal scan
// falls back to a serial loop. It is deliberately lower than the remap
// scatter's cutoff: a frontier visit does six pattern probes and an
// adjacency chase per element, so the chunk bookkeeping amortizes much
// earlier than on the record-copy scans.
const SerialCutoff = 1 << 10

// EffectiveWorkers resolves the worker count a propagation round actually
// runs with: the knob (≤ 0 = GOMAXPROCS), clamped to 1 below SerialCutoff
// frontier elements. Cost models must divide the parallel phases by this
// figure, not by the raw knob — the serial fallback is charged serially.
func EffectiveWorkers(n, workers int) int {
	return chunk.EffectiveWorkers(n, workers, SerialCutoff)
}

// Ops is the abstract work accounting of one adaption pass, mirroring
// par.Ops: Total is the op count summed over all workers, Crit the
// critical-path share a parallel machine actually waits for, and
// MemTotal/MemCrit the memory-bound (adjacency-chasing, data-structure
// mutation) slice of each, charged at machine.Model.MemOp rather than
// CompOp. A serial execution path reports Crit == Total.
type Ops struct {
	Total int64
	Crit  int64
	// MemTotal and MemCrit are the memory-bound share of Total and Crit:
	// frontier visits (SPL and adjacency chasing), the serial commit
	// drain, and the kernel's element mutations. The compute-bound
	// remainder (pattern scans, pair bookkeeping) is charged at
	// Model.CompOp.
	MemTotal int64
	MemCrit  int64
}

// AddSerial accumulates purely serial compute-bound work: it extends the
// critical path one-for-one.
func (o *Ops) AddSerial(n int64) {
	o.Total += n
	o.Crit += n
}

// AddSerialMem accumulates purely serial memory-bound work.
func (o *Ops) AddSerialMem(n int64) {
	o.Total += n
	o.Crit += n
	o.MemTotal += n
	o.MemCrit += n
}

// AddParallel accumulates compute-bound work divided across ew workers:
// the critical path is charged the slowest worker's (ceiling) share.
func (o *Ops) AddParallel(total int64, ew int) {
	o.Total += total
	o.Crit += ceilDiv(total, int64(ew))
}

// AddParallelMem accumulates memory-bound work divided across ew workers;
// it counts toward the totals and toward the Mem share charged at MemOp.
func (o *Ops) AddParallelMem(total int64, ew int) {
	o.Total += total
	o.Crit += ceilDiv(total, int64(ew))
	o.MemTotal += total
	o.MemCrit += ceilDiv(total, int64(ew))
}

// Clamp caps the critical path at the total: no schedule is slower than
// running everything serially, and the per-phase ceiling terms can
// otherwise nudge past it at tiny sizes.
func (o *Ops) Clamp() {
	if o.Crit > o.Total {
		o.Crit = o.Total
	}
	if o.MemCrit > o.MemTotal {
		o.MemCrit = o.MemTotal
	}
}

// Time converts the accounting to modeled seconds on the machine's two
// rates: the mem-bound critical path at MemOp, the compute-bound
// remainder at CompOp.
func (o Ops) Time(mdl machine.Model) float64 {
	return float64(o.Crit-o.MemCrit)*mdl.CompOp + float64(o.MemCrit)*mdl.MemOp
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// World is the mesh-facing surface the engine drives. The distributed
// layer (par.Dist + adapt.Adaptor) implements it; tests substitute
// synthetic graphs.
type World interface {
	// Owner returns the rank owning element el.
	Owner(el int32) int32
	// Propose appends the edges element el newly requires under the
	// current marks (its pattern upgrade's add-set) to buf and returns
	// it. Called concurrently from worker goroutines during the frontier
	// scan; it must only read shared state. The proposal rule must be
	// monotone in the mark set — marking more edges never shrinks an
	// element's requirement — which makes the fixpoint independent of
	// visit order.
	Propose(el int32, buf []int32) []int32
	// Commit marks edge e. Called serially, once per edge, in ascending
	// edge order.
	Commit(e int32)
	// Reach appends the active elements sharing edge e to elems and
	// returns it — the next round's frontier candidates.
	Reach(e int32, elems []int32) []int32
	// SPL appends the sorted shared-processor list of edge e to spl and
	// returns it; a list longer than one marks a shared edge.
	SPL(e int32, spl []int32) []int32
}

// PairWords is one (src, dst) notification batch of an exchange: Words
// message words bound from rank Src to rank Dst. It is the machine
// model's Flow — the adaption notification exchanges and the remap
// payload exchange feed the same topology-aware charge functions, so
// their communication models can never drift apart.
type PairWords = machine.Flow

// comparePairs orders batches by (src, dst) — the canonical exchange
// order every backend charges in.
func comparePairs(a, b PairWords) int {
	switch {
	case a.Src != b.Src:
		return int(a.Src) - int(b.Src)
	case a.Dst != b.Dst:
		return int(a.Dst) - int(b.Dst)
	}
	return 0
}

// PairsFromSPL appends the ordered (src, dst) expansion of one shared
// object's processor list to out — words message words from every sharer
// to every other sharer — and returns it. Feed the accumulated raw list
// to AggregatePairs for the canonical charge order.
func PairsFromSPL(out []PairWords, spl []int32, words int64) []PairWords {
	for _, r := range spl {
		for _, o := range spl {
			if r != o {
				out = append(out, PairWords{Src: r, Dst: o, Words: words})
			}
		}
	}
	return out
}

// AggregatePairs sorts raw (src, dst, words) contributions by (src, dst)
// and merges duplicates, returning the canonical batch list
// ChargeExchange consumes. The input is clobbered.
func AggregatePairs(raw []PairWords) []PairWords {
	if len(raw) == 0 {
		return nil
	}
	slices.SortFunc(raw, comparePairs)
	out := raw[:1]
	for _, pw := range raw[1:] {
		if last := &out[len(out)-1]; last.Src == pw.Src && last.Dst == pw.Dst {
			last.Words += pw.Words
		} else {
			out = append(out, pw)
		}
	}
	return out
}

// Result reports one propagation run (or one standalone exchange).
type Result struct {
	// Rounds is the number of supersteps executed.
	Rounds int
	// Visits is the number of frontier element examinations performed.
	Visits int64
	// Marked is the number of edges newly committed.
	Marked int64
	// Msgs and Words count the notification traffic under the backend's
	// exchange semantics. Words is backend-invariant; Msgs is not
	// (aggregation is the point of the Aggregated backend).
	Msgs, Words int64
	// SetupTime is the summed modeled message-setup charge of the
	// exchanges — the slice of the clock the backend's message model
	// controls — reported separately so adaption accounting can show the
	// setup/volume split alongside the remap executor's.
	SetupTime float64
	// Ops is the engine's abstract work accounting: Total and MemTotal
	// are worker-invariant, Crit/MemCrit reflect the effective worker
	// count of each round's scan.
	Ops Ops
}

// Propagator drives frontier propagation to a fixpoint with a specific
// exchange model. Implementations must be deterministic at every worker
// count: marks, rounds, traffic, and the modeled clock may depend only on
// the frontier and the world, never on the chunking.
type Propagator interface {
	// Name is the CLI-facing backend name.
	Name() string
	// Run propagates from the initial frontier (any order, duplicates
	// allowed; the engine canonicalizes) until no round commits a mark,
	// charging per-round visit work and notification traffic to clk with
	// a barrier after every round. It takes ownership of the frontier
	// slice.
	Run(w World, frontier []int32, clk *machine.Clock, mdl machine.Model) Result
	// ChargeExchange charges one bulk exchange of shared-object
	// notifications under the backend's message model, given the
	// per-(src, dst) word counts in canonical sorted order (see
	// AggregatePairs), and returns the charge breakdown. It does not
	// barrier; callers own the superstep structure.
	ChargeExchange(clk *machine.Clock, mdl machine.Model, pairs []PairWords) machine.ExchangeCharge
}

// FaultAware is the optional capability of a backend whose exchanges can
// be charged modeled retry traffic from a deterministic fault plan (see
// fault.ExchangeModel). Both built-in backends implement it. Callers
// discover it by type assertion — it is deliberately not part of the
// Propagator interface, so third-party backends stay valid — and disarm
// with SetFaults(nil). Because ChargeExchange runs serially in canonical
// (src, dst) pair order, the model's attempt counters and the resulting
// charges are byte-identical at every worker count.
type FaultAware interface {
	SetFaults(x *fault.ExchangeModel)
}

// Names lists the available backends, default first — the iteration
// table for CLI validation and tests.
var Names = []string{"bulksync", "aggregated"}

// ByName returns the propagator with the given CLI name ("" selects the
// default BulkSync) at the given worker knob.
func ByName(name string, workers int) (Propagator, bool) {
	switch name {
	case "", "bulksync":
		return NewBulkSync(workers), true
	case "aggregated":
		return NewAggregated(workers), true
	}
	return nil, false
}
