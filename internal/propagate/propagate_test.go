package propagate_test

import (
	"reflect"
	"slices"
	"testing"

	"plum/internal/machine"
	"plum/internal/propagate"
)

// hyperWorld is a synthetic element/edge incidence graph with a monotone
// upgrade rule mimicking the tet pattern closure: once two or more of an
// element's edges are marked, the element requires all of them — so a
// dense seed cascades to a fixpoint over several rounds.
type hyperWorld struct {
	p         int
	elemEdges [][]int32
	edgeElems [][]int32
	owner     []int32
	marked    []bool
}

// splitmix64 is the deterministic hash driving the fuzzed topologies (no
// RNG state, so construction is independent of evaluation order).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newHyperWorld builds a world of n elements over an n-sized edge pool:
// element i touches up to six hashed edges, owners are block-distributed
// over p ranks, and edges hashing below the markFrac threshold are
// pre-marked.
func newHyperWorld(n, p int, seed uint64, markFrac uint64) (*hyperWorld, []int32) {
	w := &hyperWorld{
		p:         p,
		elemEdges: make([][]int32, n),
		edgeElems: make([][]int32, n),
		owner:     make([]int32, n),
		marked:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		w.owner[i] = int32(i * p / n)
		k := 2 + int(splitmix64(seed+uint64(i))%5) // 2..6 edges
		var es []int32
		for j := 0; j < k; j++ {
			es = append(es, int32(splitmix64(seed^0xabcd+uint64(i*7+j))%uint64(n)))
		}
		slices.Sort(es)
		es = slices.Compact(es)
		w.elemEdges[i] = es
		for _, e := range es {
			w.edgeElems[e] = append(w.edgeElems[e], int32(i))
		}
	}
	var frontier []int32
	for e := 0; e < n; e++ {
		if splitmix64(seed^0x5eed+uint64(e))%100 < markFrac {
			w.marked[e] = true
			frontier = append(frontier, w.edgeElems[e]...)
		}
	}
	return w, frontier
}

func (w *hyperWorld) clone() *hyperWorld {
	c := *w
	c.marked = slices.Clone(w.marked)
	return &c
}

func (w *hyperWorld) Owner(el int32) int32 { return w.owner[el] }

func (w *hyperWorld) Propose(el int32, buf []int32) []int32 {
	es := w.elemEdges[el]
	cnt := 0
	for _, e := range es {
		if w.marked[e] {
			cnt++
		}
	}
	if cnt >= 2 {
		for _, e := range es {
			if !w.marked[e] {
				buf = append(buf, e)
			}
		}
	}
	return buf
}

func (w *hyperWorld) Commit(e int32) { w.marked[e] = true }

func (w *hyperWorld) Reach(e int32, elems []int32) []int32 {
	return append(elems, w.edgeElems[e]...)
}

func (w *hyperWorld) SPL(e int32, spl []int32) []int32 {
	for _, el := range w.edgeElems[e] {
		spl = append(spl, w.owner[el])
	}
	slices.Sort(spl)
	return slices.Compact(spl)
}

// serialFixpoint is the reference replay: a plain worklist loop over the
// same World surface, no rounds, no chunking.
func serialFixpoint(w *hyperWorld, frontier []int32) {
	queue := slices.Clone(frontier)
	var eb []int32
	for len(queue) > 0 {
		el := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		eb = w.Propose(el, eb[:0])
		for _, e := range eb {
			if !w.marked[e] {
				w.Commit(e)
				queue = append(queue, w.edgeElems[e]...)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range propagate.Names {
		prop, ok := propagate.ByName(name, 2)
		if !ok || prop.Name() != name {
			t.Fatalf("ByName(%q) broken", name)
		}
	}
	if prop, ok := propagate.ByName("", 1); !ok || prop.Name() != "bulksync" {
		t.Fatal("empty name must select bulksync")
	}
	if _, ok := propagate.ByName("nope", 1); ok {
		t.Fatal("accepted unknown backend")
	}
}

func TestAggregatePairs(t *testing.T) {
	raw := []propagate.PairWords{
		{Src: 2, Dst: 1, Words: 3},
		{Src: 0, Dst: 1, Words: 1},
		{Src: 2, Dst: 1, Words: 2},
		{Src: 0, Dst: 2, Words: 4},
	}
	got := propagate.AggregatePairs(raw)
	want := []propagate.PairWords{
		{Src: 0, Dst: 1, Words: 1},
		{Src: 0, Dst: 2, Words: 4},
		{Src: 2, Dst: 1, Words: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if propagate.AggregatePairs(nil) != nil {
		t.Fatal("empty input must aggregate to nil")
	}
}

// TestRunMatchesSerialFixpoint checks the engine's fixpoint against the
// worklist replay and its determinism across worker counts, clocks
// included, on a world large enough to engage the parallel rounds.
func TestRunMatchesSerialFixpoint(t *testing.T) {
	const n, p = 4000, 8
	base, frontier := newHyperWorld(n, p, 12345, 20)

	refWorld := base.clone()
	serialFixpoint(refWorld, frontier)

	type outcome struct {
		marked  []bool
		res     propagate.Result
		elapsed float64
	}
	run := func(name string, workers int) outcome {
		w := base.clone()
		clk := machine.NewClock(p)
		prop, _ := propagate.ByName(name, workers)
		res := prop.Run(w, slices.Clone(frontier), clk, machine.SP2())
		return outcome{w.marked, res, clk.Elapsed()}
	}

	for _, name := range propagate.Names {
		ref := run(name, 1)
		if !reflect.DeepEqual(ref.marked, refWorld.marked) {
			t.Fatalf("%s: mark set diverges from the serial replay", name)
		}
		if ref.res.Rounds < 2 || ref.res.Marked == 0 || ref.res.Msgs == 0 {
			t.Fatalf("%s: fixture not interesting: %+v", name, ref.res)
		}
		if ref.res.Ops.Crit != ref.res.Ops.Total {
			t.Fatalf("%s: workers=1 must report Crit == Total: %+v", name, ref.res.Ops)
		}
		for _, w := range []int{2, 4, 8} {
			got := run(name, w)
			if !reflect.DeepEqual(got.marked, ref.marked) {
				t.Errorf("%s workers=%d: mark set diverges", name, w)
			}
			if got.elapsed != ref.elapsed {
				t.Errorf("%s workers=%d: modeled clock diverges: %g vs %g",
					name, w, got.elapsed, ref.elapsed)
			}
			norm := got.res
			norm.Ops.Crit, norm.Ops.MemCrit = ref.res.Ops.Crit, ref.res.Ops.MemCrit
			if !reflect.DeepEqual(norm, ref.res) {
				t.Errorf("%s workers=%d: Result diverges:\n got %+v\nwant %+v",
					name, w, got.res, ref.res)
			}
		}
	}
}

// TestAggregatedChargeSemantics pins the two exchange models on a known
// batch list: BulkSync pays one Tsetup per pair on the sender, Aggregated
// one per active source plus a per-word drain on the destination.
func TestAggregatedChargeSemantics(t *testing.T) {
	mdl := machine.SP2()
	pairs := []propagate.PairWords{
		{Src: 0, Dst: 1, Words: 10},
		{Src: 0, Dst: 2, Words: 5},
		{Src: 2, Dst: 0, Words: 1},
	}

	clk := machine.NewClock(3)
	ch := propagate.NewBulkSync(1).ChargeExchange(clk, mdl, pairs)
	if ch.Msgs != 3 || ch.Words != 16 {
		t.Fatalf("bulksync counted %d msgs / %d words", ch.Msgs, ch.Words)
	}
	if got, want := ch.SetupTime, 3*mdl.Tsetup; got != want {
		t.Errorf("bulksync reported setup time %g, want %g", got, want)
	}
	if got, want := clk.Rank(0), mdl.MsgTime(10)+mdl.MsgTime(5); got != want {
		t.Errorf("bulksync rank 0 charged %g, want %g", got, want)
	}
	if clk.Rank(1) != 0 {
		t.Error("bulksync must not charge receivers")
	}

	clk = machine.NewClock(3)
	ch = propagate.NewAggregated(1).ChargeExchange(clk, mdl, pairs)
	if ch.Msgs != 2 || ch.Words != 16 {
		t.Fatalf("aggregated counted %d msgs / %d words", ch.Msgs, ch.Words)
	}
	if got, want := ch.SetupTime, 2*mdl.Tsetup; got != want {
		t.Errorf("aggregated reported setup time %g, want %g", got, want)
	}
	if got, want := clk.Rank(0), mdl.MsgTime(15)+1*mdl.Tlat; got != want {
		t.Errorf("aggregated rank 0 charged %g, want %g", got, want)
	}
	if got, want := clk.Rank(1), 10*mdl.Tlat; got != want {
		t.Errorf("aggregated rank 1 charged %g, want %g", got, want)
	}
}

// TestEmptyFrontier checks the degenerate run: no rounds, no traffic, no
// ops.
func TestEmptyFrontier(t *testing.T) {
	w, _ := newHyperWorld(100, 2, 1, 0)
	clk := machine.NewClock(2)
	res := propagate.NewBulkSync(1).Run(w, nil, clk, machine.SP2())
	if !reflect.DeepEqual(res, propagate.Result{}) {
		t.Fatalf("empty frontier produced %+v", res)
	}
	if clk.Elapsed() != 0 {
		t.Fatal("empty frontier charged time")
	}
}
