package propagate_test

import (
	"testing"

	"plum/internal/fault"
	"plum/internal/machine"
	"plum/internal/propagate"
)

// faultPairs is a batch list with real fan-out: every ordered pair of 6
// ranks, word counts varying per pair.
func faultPairs(p int) []propagate.PairWords {
	var out []propagate.PairWords
	for s := int32(0); s < int32(p); s++ {
		for d := int32(0); d < int32(p); d++ {
			if s != d {
				out = append(out, propagate.PairWords{Src: s, Dst: d, Words: int64(1 + (s+2*d)%5)})
			}
		}
	}
	return out
}

// chargeWith runs one ChargeExchange on a fresh clock with the given
// model armed and returns the per-rank times plus the counters.
func chargeWith(t *testing.T, name string, p int, x *fault.ExchangeModel) ([]float64, int64, int64) {
	t.Helper()
	prop, ok := propagate.ByName(name, 1)
	if !ok {
		t.Fatalf("unknown backend %q", name)
	}
	fa, ok := prop.(propagate.FaultAware)
	if !ok {
		t.Fatalf("%s does not implement FaultAware", name)
	}
	fa.SetFaults(x)
	clk := machine.NewClock(p)
	prop.ChargeExchange(clk, machine.SP2(), faultPairs(p))
	times := make([]float64, p)
	for r := 0; r < p; r++ {
		times[r] = clk.Rank(r)
	}
	if x == nil {
		return times, 0, 0
	}
	return times, x.Resent, x.BackoffUnits
}

// TestChargeExchangeFaultCharges pins the fault-aware exchange charging
// on both backends: a nil model reproduces the fault-free clock exactly,
// an armed model adds strictly positive sender-side time, and two fresh
// models over the same plan charge bit-identical times and counters.
func TestChargeExchangeFaultCharges(t *testing.T) {
	const p = 6
	plan := &fault.Plan{Seed: 77, Rate: 0.5}
	for _, name := range propagate.Names {
		t.Run(name, func(t *testing.T) {
			clean, _, _ := chargeWith(t, name, p, nil)

			x1 := plan.Exchange(fault.StageAdapt, 0, 6)
			faulted, resent, backoff := chargeWith(t, name, p, x1)
			if resent == 0 || backoff == 0 {
				t.Fatalf("rate 0.5 left no retry trace: resent=%d backoff=%d", resent, backoff)
			}
			var slower bool
			for r := 0; r < p; r++ {
				if faulted[r] < clean[r] {
					t.Errorf("rank %d got cheaper under faults: %g vs %g", r, faulted[r], clean[r])
				}
				if faulted[r] > clean[r] {
					slower = true
				}
			}
			if !slower {
				t.Error("fault model charged no retry time anywhere")
			}

			x2 := plan.Exchange(fault.StageAdapt, 0, 6)
			again, resent2, backoff2 := chargeWith(t, name, p, x2)
			if resent2 != resent || backoff2 != backoff {
				t.Errorf("counters not deterministic: %d/%d vs %d/%d", resent2, backoff2, resent, backoff)
			}
			for r := 0; r < p; r++ {
				if again[r] != faulted[r] {
					t.Errorf("rank %d charge not deterministic: %g vs %g", r, again[r], faulted[r])
				}
			}

			// Disarming restores the fault-free clock bit for bit.
			disarmed, _, _ := chargeWith(t, name, p, nil)
			for r := 0; r < p; r++ {
				if disarmed[r] != clean[r] {
					t.Errorf("rank %d still charged after disarm: %g vs %g", r, disarmed[r], clean[r])
				}
			}
		})
	}
}

// TestChargeExchangeExhaustion pins the escalation semantics: with every
// attempt dropped and a budget of one, every charged message exhausts —
// notifications are control-plane traffic, so the model delivers them out
// of band at one extra backoff unit rather than failing the exchange.
func TestChargeExchangeExhaustion(t *testing.T) {
	const p = 4
	plan := &fault.Plan{Seed: 5, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
	for _, name := range propagate.Names {
		x := plan.Exchange(fault.StageAdapt, 0, 1)
		_, resent, backoff := chargeWith(t, name, p, x)
		wantMsgs := int64(p * (p - 1)) // bulksync: one per pair
		if name == "aggregated" {
			wantMsgs = p // one combined message per source
		}
		if x.Exhausted != wantMsgs {
			t.Errorf("%s: %d messages exhausted, want %d", name, x.Exhausted, wantMsgs)
		}
		if resent != 0 || backoff != wantMsgs {
			t.Errorf("%s: exhaustion must cost one backoff unit per message: resent=%d backoff=%d",
				name, resent, backoff)
		}
	}
}
