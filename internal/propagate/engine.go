package propagate

import (
	"slices"

	"plum/internal/chunk"
	"plum/internal/fault"
	"plum/internal/machine"
)

// proposal is one (edge, proposing rank) pair gathered by the frontier
// scan. Sorting by (edge, src) puts the commits in canonical ascending
// edge order with each edge's proposing ranks grouped and sorted.
type proposal struct {
	edge, src int32
}

// notif is one shared-edge notification: src tells dst that edge was
// newly marked this round. The round's outbox is the slice of these
// sorted by (src, dst, edge) — a flat CSR layout whose runs are the
// per-pair message batches.
type notif struct {
	src, dst, edge int32
}

// runRounds is the superstep engine shared by both backends; x supplies
// the exchange-charging model. Every phase either runs serially in a
// canonical order or chunks with per-chunk partials merged in chunk
// order, so the result and the clock are identical at every worker count.
func runRounds(w World, frontier []int32, workers int, clk *machine.Clock, mdl machine.Model, x Propagator) Result {
	p := clk.P()
	var res Result

	// Canonicalize the seed: ascending unique element ids.
	slices.Sort(frontier)
	frontier = slices.Compact(frontier)

	var outbox []notif
	var raw []PairWords
	for len(frontier) > 0 {
		res.Rounds++
		n := len(frontier)
		ew := EffectiveWorkers(n, workers)
		nc := chunk.Count(n, ew)

		// Proposal scan: per-worker frontier buckets. Chunks are
		// contiguous ranges of the sorted frontier, so concatenating the
		// buckets in chunk order reproduces canonical element order.
		visitParts := make([][]int64, nc)
		propParts := make([][]proposal, nc)
		chunk.For(n, ew, func(c, lo, hi int) {
			vis := make([]int64, p)
			var props []proposal
			var eb []int32
			for i := lo; i < hi; i++ {
				el := frontier[i]
				src := w.Owner(el)
				vis[src]++
				eb = w.Propose(el, eb[:0])
				for _, e := range eb {
					props = append(props, proposal{e, src})
				}
			}
			visitParts[c] = vis
			propParts[c] = props
		})
		visits := make([]int64, p)
		var props []proposal
		for c := 0; c < nc; c++ {
			for r, v := range visitParts[c] {
				visits[r] += v
			}
			props = append(props, propParts[c]...)
		}
		res.Visits += int64(n)
		res.Ops.AddParallelMem(int64(n), ew)

		// Commit phase: serial, ascending (edge, src), duplicates merged.
		// The frontier slice is fully consumed, so its backing array is
		// reused for the next round's candidates.
		slices.SortFunc(props, func(a, b proposal) int {
			if a.edge != b.edge {
				return int(a.edge) - int(b.edge)
			}
			return int(a.src) - int(b.src)
		})
		props = slices.Compact(props)
		next := frontier[:0]
		outbox = outbox[:0]
		var reach, spl []int32
		for i := 0; i < len(props); {
			e := props[i].edge
			j := i
			for j < len(props) && props[j].edge == e {
				j++
			}
			w.Commit(e)
			res.Marked++
			reach = w.Reach(e, reach[:0])
			next = append(next, reach...)
			spl = w.SPL(e, spl[:0])
			if len(spl) > 1 {
				// Each proposing rank notifies the other sharers; it
				// cannot know another rank marked the same edge this
				// round (the paper's symmetric-notification semantics).
				for k := i; k < j; k++ {
					src := props[k].src
					for _, dst := range spl {
						if dst != src {
							outbox = append(outbox, notif{src, dst, e})
						}
					}
				}
			}
			i = j
		}
		res.Ops.AddSerialMem(int64(len(props)))

		// The outbox is already in (src, dst, edge) order: edges ascend
		// outermost, but a stable sort on (src, dst) keeps edge order
		// within each run, yielding the CSR batch layout.
		slices.SortStableFunc(outbox, func(a, b notif) int {
			if a.src != b.src {
				return int(a.src) - int(b.src)
			}
			return int(a.dst) - int(b.dst)
		})
		raw = raw[:0]
		for _, nt := range outbox {
			if k := len(raw); k > 0 && raw[k-1].Src == nt.src && raw[k-1].Dst == nt.dst {
				raw[k-1].Words++
			} else {
				raw = append(raw, PairWords{Src: nt.src, Dst: nt.dst, Words: 1})
			}
		}
		res.Ops.AddSerial(int64(len(raw)))

		// Charge the round and synchronize.
		for r := 0; r < p; r++ {
			clk.Add(r, float64(visits[r])*mdl.PropagateVisit)
		}
		ch := x.ChargeExchange(clk, mdl, raw)
		res.Msgs += ch.Msgs
		res.Words += ch.Words
		res.SetupTime += ch.SetupTime
		clk.Barrier()

		slices.Sort(next)
		frontier = slices.Compact(next)
	}
	res.Ops.Clamp()
	return res
}

// Both built-in backends are fault-aware: a set ExchangeModel replays the
// fault plan against each charged message and bills the sender the
// modeled recovery — extra sends at the message's own MsgTime, backoff
// units at Model.RetryBackoff. A nil model (the default) adds zero terms,
// keeping the fault-free clock bit-identical.
var (
	_ FaultAware = (*BulkSync)(nil)
	_ FaultAware = (*Aggregated)(nil)
)

// retryCharge bills rank src the modeled recovery cost of one message of
// the given word count: extra·CommTime + backoff·RetryBackoff. Combined
// messages (dst = machine.CombinedDst) have no single link, so they price
// at the interconnect MsgTime — identical to CommTime on a flat topology.
func retryCharge(clk *machine.Clock, mdl machine.Model, src int, dst int32, words, extra, backoff int64) {
	if extra != 0 || backoff != 0 {
		msg := mdl.MsgTime(words)
		if dst >= 0 {
			msg = mdl.CommTime(src, int(dst), words)
		}
		clk.Add(src, float64(extra)*msg+float64(backoff)*mdl.RetryBackoff)
	}
}

// BulkSync is the paper's bulk-synchronous exchange: every nonempty
// (src, dst) rank pair costs its own message per round, charged to the
// sender.
type BulkSync struct {
	workers int
	faults  *fault.ExchangeModel
}

// NewBulkSync returns the bulk-synchronous backend at the given worker
// knob (≤ 0 = GOMAXPROCS).
func NewBulkSync(workers int) *BulkSync { return &BulkSync{workers: workers} }

// Name implements Propagator.
func (b *BulkSync) Name() string { return "bulksync" }

// SetFaults implements FaultAware.
func (b *BulkSync) SetFaults(x *fault.ExchangeModel) { b.faults = x }

// Run implements Propagator.
func (b *BulkSync) Run(w World, frontier []int32, clk *machine.Clock, mdl machine.Model) Result {
	return runRounds(w, frontier, b.workers, clk, mdl, b)
}

// ChargeExchange implements Propagator: one message per (src, dst) batch
// through the machine model's flat schedule — the link's CommTime charged
// to the sender, which on a flat topology is the legacy Tsetup plus
// per-word copy, bit for bit. With a fault model set, each batch message
// additionally draws its fate per (src, dst) pair and the sender is
// billed the modeled retries at the same clock position as before.
func (b *BulkSync) ChargeExchange(clk *machine.Clock, mdl machine.Model, pairs []PairWords) machine.ExchangeCharge {
	return mdl.ChargeFlowsRetry(clk, machine.ExchangeFlat, pairs, func(src, dst int32, words int64) {
		extra, backoff := b.faults.Resends(src, dst)
		retryCharge(clk, mdl, int(src), dst, words, extra, backoff)
	})
}

// Aggregated is the message-aggregation exchange for high processor
// counts: each source rank concatenates all of its batches into one
// combined buffer laid out per destination and pays a single message
// setup for it; each destination drains its combined inbox at the
// per-word rate. The word volume is identical to BulkSync; the message
// count drops from O(P²) to O(P) per round, which is what the Tsetup
// term rewards at scale.
type Aggregated struct {
	workers int
	faults  *fault.ExchangeModel
}

// NewAggregated returns the aggregating backend at the given worker knob
// (≤ 0 = GOMAXPROCS).
func NewAggregated(workers int) *Aggregated { return &Aggregated{workers: workers} }

// Name implements Propagator.
func (a *Aggregated) Name() string { return "aggregated" }

// SetFaults implements FaultAware.
func (a *Aggregated) SetFaults(x *fault.ExchangeModel) { a.faults = x }

// Run implements Propagator.
func (a *Aggregated) Run(w World, frontier []int32, clk *machine.Clock, mdl machine.Model) Result {
	return runRounds(w, frontier, a.workers, clk, mdl, a)
}

// ChargeExchange implements Propagator: one combined message per active
// source, per-word drain on every destination, through the machine
// model's aggregated schedule (whose flat-topology branch reproduces the
// legacy charges bit for bit, and whose node-topology branch prices each
// flow at its own link rate). The fault unit follows the message model:
// with a fault model set, each combined message draws one fate — keyed on
// the source and the machine.CombinedDst sentinel, which cannot collide
// with a real rank (the fate key truncates dst to 16 bits, and ranks
// never reach 0xffff) — and a resend repays the whole combined MsgTime:
// aggregation batches the retries exactly as it batches the sends.
func (a *Aggregated) ChargeExchange(clk *machine.Clock, mdl machine.Model, pairs []PairWords) machine.ExchangeCharge {
	return mdl.ChargeFlowsRetry(clk, machine.ExchangeAggregated, pairs, func(src, dst int32, words int64) {
		extra, backoff := a.faults.Resends(src, dst)
		retryCharge(clk, mdl, int(src), dst, words, extra, backoff)
	})
}
