// Package chunk is the shared chunked-scan machinery behind every
// parallel O(n) loop in the pipeline: the psort sample sort's scatter
// phases, the SFC key generation, the par remap scatter and SPL scans,
// the band-FM gain phases, and the propagation engine's frontier sweeps.
// It grew out of three private copies (psort, par, refine) of the same
// worker-resolution and range-splitting helpers.
//
// Determinism contract: chunk boundaries depend only on n and the
// resolved worker count — never on scheduling — so callers that reduce
// per-chunk partial results merge them in a fixed order and produce
// identical output at every worker count.
package chunk

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values ≤ 0 mean "use
// runtime.GOMAXPROCS(0)".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// EffectiveWorkers resolves the worker count a chunked scan actually runs
// with: the knob via Workers, clamped to 1 below the caller's serial
// cutoff and to n above it. The psort, refine, par, and propagate
// subsystems wrap this with their own cutoffs; cost models must divide
// parallel phases by the resolved figure, not by the raw knob — a serial
// fallback must be charged serially.
func EffectiveWorkers(n, workers, cutoff int) int {
	w := Workers(workers)
	if n < cutoff || w < 1 {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// Count returns the number of contiguous chunks For will split [0, n)
// into for the given worker knob: min(Workers(workers), n), at least 1
// when n > 0.
func Count(n, workers int) int {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For splits [0, n) into Count(n, workers) contiguous near-equal chunks
// and runs fn(chunk, lo, hi) for each, concurrently when there is more
// than one. Chunk boundaries depend only on n and the resolved worker
// count, so callers that reduce per-chunk results merge them in a
// deterministic order.
func For(n, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Count(n, workers)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			fn(t, t*n/w, (t+1)*n/w)
		}(t)
	}
	wg.Wait()
}

// Gather runs fn over each chunk of [0, n) and concatenates the
// per-chunk buckets in chunk order. Chunks are contiguous, so the output
// order is the input order of whatever fn selects — canonical at every
// worker count.
func Gather[T any](n, workers int, fn func(lo, hi int) []T) []T {
	parts := make([][]T, Count(n, workers))
	For(n, workers, func(c, lo, hi int) { parts[c] = fn(lo, hi) })
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// GatherCounts runs fill over each chunk of [0, n) with a private
// width-sized accumulator and merges the partials in chunk order.
// Integer addition is exact, so the sums are identical at every worker
// count.
func GatherCounts(n, workers, width int, fill func(lo, hi int, cnt []int64)) []int64 {
	parts := make([][]int64, Count(n, workers))
	For(n, workers, func(c, lo, hi int) {
		cnt := make([]int64, width)
		fill(lo, hi, cnt)
		parts[c] = cnt
	})
	out := make([]int64, width)
	for _, p := range parts {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}
