package chunk

import "testing"

func TestWorkersAndCount(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive knobs to ≥ 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass positive knobs through")
	}
	if Count(3, 8) != 3 {
		t.Fatalf("Count(3,8) = %d, want 3", Count(3, 8))
	}
	if Count(0, 8) != 1 {
		t.Fatalf("Count(0,8) = %d, want 1", Count(0, 8))
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if ew := EffectiveWorkers(100, 8, 1000); ew != 1 {
		t.Fatalf("below cutoff must be serial, got %d", ew)
	}
	if ew := EffectiveWorkers(5000, 8, 1000); ew != 8 {
		t.Fatalf("above cutoff must honor the knob, got %d", ew)
	}
	if ew := EffectiveWorkers(5000, 9999, 1000); ew != 5000 {
		t.Fatalf("knob must clamp to n, got %d", ew)
	}
}

// TestForCoversRange verifies the chunking is a disjoint exact cover of
// [0, n).
func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			hit := make([]int32, n)
			For(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					hit[i]++
				}
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, h)
				}
			}
		}
	}
}
