package comm

import (
	"fmt"
	"reflect"
	"testing"

	"plum/internal/fault"
)

// exchangePayloads builds the deterministic test payloads: rank src sends
// dst the words {src*1000 + dst, src, dst, ...} of length (src+dst)%5.
func exchangePayloads(p, src int) [][]int64 {
	bufs := make([][]int64, p)
	for dst := 0; dst < p; dst++ {
		n := (src + dst) % 5
		buf := make([]int64, n)
		for i := range buf {
			buf[i] = int64(src*1000 + dst*10 + i)
		}
		bufs[dst] = buf
	}
	return bufs
}

func runReliableExchange(t *testing.T, p int, plan *fault.Plan, attempts int) ([][][]int64, [][]int, *World) {
	t.Helper()
	w := NewWorld(p)
	w.SetFaults(plan.Hook(fault.StageRemap, 0), attempts)
	outs := make([][][]int64, p)
	fails := make([][]int, p)
	if err := w.Run(func(c *Comm) {
		out, failed := c.AlltoallvReliable(exchangePayloads(p, c.Rank()))
		outs[c.Rank()] = out
		fails[c.Rank()] = failed
	}); err != nil {
		t.Fatalf("reliable exchange: %v", err)
	}
	return outs, fails, w
}

func TestReliableExchangeNoFaults(t *testing.T) {
	// Without a fault hook, the reliable exchange must deliver exactly the
	// plain Alltoallv result with identical Msgs/Words stats.
	p := 5
	outs, fails, w := runReliableExchange(t, p, nil, 3)
	wPlain := NewWorld(p)
	plain := make([][][]int64, p)
	wPlain.Run(func(c *Comm) {
		plain[c.Rank()] = c.Alltoallv(exchangePayloads(p, c.Rank()))
	})
	for r := 0; r < p; r++ {
		if len(fails[r]) != 0 {
			t.Fatalf("rank %d reported failures with no faults: %v", r, fails[r])
		}
		if !reflect.DeepEqual(outs[r], plain[r]) {
			t.Errorf("rank %d: reliable %v != plain %v", r, outs[r], plain[r])
		}
	}
	st, stPlain := w.RankStats(), wPlain.RankStats()
	for r := range st {
		if st[r] != stPlain[r] {
			t.Errorf("rank %d stats: reliable %+v != plain %+v", r, st[r], stPlain[r])
		}
	}
}

func TestReliableExchangeRecoversFaults(t *testing.T) {
	// At a moderate fault rate with a generous budget, every transfer must
	// converge to the fault-free payloads, with the retries showing up in
	// Stats and the per-pair counters.
	p := 6
	plan := &fault.Plan{Seed: 99, Rate: 0.4}
	outs, fails, w := runReliableExchange(t, p, plan, 12)
	for r := 0; r < p; r++ {
		if len(fails[r]) != 0 {
			t.Fatalf("rank %d: transfers failed despite 12 attempts: %v", r, fails[r])
		}
		for src := 0; src < p; src++ {
			want := exchangePayloads(p, src)[r]
			if len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual([]int64(outs[r][src]), want) {
				t.Errorf("rank %d from %d: got %v want %v", r, src, outs[r][src], want)
			}
		}
	}
	var retries int64
	for _, s := range w.RankStats() {
		retries += s.Retries
	}
	if retries == 0 {
		t.Error("rate 0.4 produced no retries")
	}
	resends, backoff := w.RetryCounters()
	var rs, bo int64
	for i := range resends {
		rs += resends[i]
		bo += backoff[i]
	}
	if rs == 0 || bo == 0 {
		t.Errorf("pair counters empty: resends %d backoff %d", rs, bo)
	}
}

func TestReliableExchangeDeterministic(t *testing.T) {
	// Same plan, same world size ⇒ byte-identical payloads, failure lists,
	// stats, and retry counters across runs.
	plan := &fault.Plan{Seed: 7, Rate: 0.5}
	o1, f1, w1 := runReliableExchange(t, 5, plan, 2)
	o2, f2, w2 := runReliableExchange(t, 5, plan, 2)
	if !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(f1, f2) {
		t.Fatal("reliable exchange not deterministic under faults")
	}
	if !reflect.DeepEqual(w1.RankStats(), w2.RankStats()) {
		t.Error("stats not deterministic under faults")
	}
	r1, b1 := w1.RetryCounters()
	r2, b2 := w2.RetryCounters()
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(b1, b2) {
		t.Error("retry counters not deterministic under faults")
	}
}

func TestReliableExchangeBudgetExhaustion(t *testing.T) {
	// With a rate-1 drop-only plan and one attempt per message, every
	// off-diagonal transfer must fail — and be *reported*, not deadlock.
	p := 4
	plan := &fault.Plan{Seed: 1, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
	outs, fails, w := runReliableExchange(t, p, plan, 1)
	for r := 0; r < p; r++ {
		if len(fails[r]) != p-1 {
			t.Fatalf("rank %d: %d failures, want %d", r, len(fails[r]), p-1)
		}
		for src := 0; src < p; src++ {
			if src != r && outs[r][src] != nil {
				t.Errorf("rank %d has payload from failed transfer %d", r, src)
			}
		}
	}
	var failed int64
	for _, s := range w.RankStats() {
		failed += s.Failed
	}
	if failed != int64(p*(p-1)) {
		t.Errorf("Stats.Failed = %d, want %d", failed, p*(p-1))
	}
}

func TestReliableCorruptionDetected(t *testing.T) {
	// A corrupt-only plan with enough budget must still deliver the exact
	// payloads: the checksum rejects every garbled frame.
	p := 4
	plan := &fault.Plan{Seed: 3, Rate: 0.6, Kinds: []fault.Kind{fault.Corrupt}}
	outs, fails, _ := runReliableExchange(t, p, plan, 20)
	for r := 0; r < p; r++ {
		if len(fails[r]) != 0 {
			t.Fatalf("rank %d failures: %v", r, fails[r])
		}
		for src := 0; src < p; src++ {
			if src == r {
				continue
			}
			want := exchangePayloads(p, src)[r]
			if len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual([]int64(outs[r][src]), want) {
				t.Errorf("corrupted payload leaked through: rank %d from %d got %v want %v",
					r, src, outs[r][src], want)
			}
		}
	}
}

func TestReliableSequencesSpanRuns(t *testing.T) {
	// Sequence numbers and attempt counters persist across Run calls on
	// one World, so streaming windows and window retries see fresh fault
	// draws instead of replaying the same fates.
	w := NewWorld(2)
	plan := &fault.Plan{Seed: 5, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
	w.SetFaults(plan.Hook(fault.StageRemap, 0), 2)
	for round := 0; round < 3; round++ {
		if err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.SendReliable(1, 1, []int64{int64(round)})
			} else {
				c.RecvReliable(0, 1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.pairAttempt[0*2+1]; got != 6 {
		t.Errorf("attempt counter after 3 rounds × 2 attempts = %d, want 6", got)
	}
	if got := w.pairSeq[0*2+1]; got != 3 {
		t.Errorf("sequence counter after 3 rounds = %d, want 3", got)
	}
}

func FuzzChecksumDetectsSingleWordFlips(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), uint8(1), int64(0x2a))
	f.Add(int64(-7), int64(0), int64(1<<62), uint8(2), int64(1))
	f.Fuzz(func(t *testing.T, a, b, c int64, idx uint8, flip int64) {
		if flip == 0 {
			return
		}
		buf := []int64{a, b, c}
		sum := checksum(buf)
		buf[int(idx)%3] ^= flip
		if checksum(buf) == sum {
			t.Fatalf("single-word flip undetected: %v", buf)
		}
	})
}

func BenchmarkAlltoallvReliable(b *testing.B) {
	for _, faulty := range []bool{false, true} {
		b.Run(fmt.Sprintf("faults=%v", faulty), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := NewWorld(8)
				if faulty {
					plan := &fault.Plan{Seed: 42, Rate: 0.2}
					w.SetFaults(plan.Hook(fault.StageRemap, 0), 4)
				}
				w.Run(func(c *Comm) {
					c.AlltoallvReliable(exchangePayloads(8, c.Rank()))
				})
			}
		})
	}
}
