package comm_test

import (
	"fmt"
	"sort"
	"sync"

	"plum/internal/comm"
)

// Example runs a 4-rank SPMD program: everyone contributes its rank to an
// all-reduce, and rank 0 reports the total.
func Example() {
	w := comm.NewWorld(4)
	var mu sync.Mutex
	var lines []string
	w.Run(func(c *comm.Comm) {
		sum := c.Allreduce([]int64{int64(c.Rank())}, comm.OpSum)
		if c.Rank() == 0 {
			mu.Lock()
			lines = append(lines, fmt.Sprintf("sum of ranks = %d", sum[0]))
			mu.Unlock()
		}
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// sum of ranks = 6
}
