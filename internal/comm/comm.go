// Package comm is the message-passing runtime that stands in for MPI: a
// World of P ranks executing SPMD functions on goroutines, point-to-point
// sends with (source, tag) matching, and the collectives the parallel mesh
// adaption needs (Barrier, Allreduce, Allgather, Alltoallv, Gather). All
// communication is by value over in-process queues — ranks share no
// mutable state, matching the distributed-memory discipline of the paper's
// C++/MPI implementation.
//
// Every rank records traffic counters (messages and words sent) so the
// machine model can translate a run's communication pattern into SP2-class
// time.
package comm

import (
	"fmt"
	"sync"
)

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []int64
}

// mailbox is a rank's incoming queue with (src, tag) matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.cond.Signal()
	mb.mu.Unlock()
}

func (mb *mailbox) get(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.q {
			if (src == AnySource || m.src == src) && m.tag == tag {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// World is a communicator of P ranks.
type World struct {
	p     int
	boxes []*mailbox

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierCv  *sync.Cond

	statsMu sync.Mutex
	stats   []Stats
}

// Stats counts a rank's outgoing traffic.
type Stats struct {
	Msgs  int64
	Words int64
}

// NewWorld creates a communicator with p ranks.
func NewWorld(p int) *World {
	w := &World{p: p, boxes: make([]*mailbox, p), stats: make([]Stats, p)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.barrierCv = sync.NewCond(&w.barrierMu)
	return w
}

// P returns the number of ranks.
func (w *World) P() int { return w.p }

// Run executes f on every rank concurrently and returns when all ranks
// finish. A panic on any rank is re-raised on the caller.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.p)
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
				}
			}()
			f(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, e := range panics {
		if e != nil {
			panic(fmt.Sprintf("comm: rank %d panicked: %v", r, e))
		}
	}
}

// RankStats returns the accumulated traffic counters per rank.
func (w *World) RankStats() []Stats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return append([]Stats(nil), w.stats...)
}

// ResetStats zeroes the traffic counters.
func (w *World) ResetStats() {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Comm is one rank's handle on the World.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id in [0, P).
func (c *Comm) Rank() int { return c.rank }

// P returns the communicator size.
func (c *Comm) P() int { return c.w.p }

// Send delivers a copy of data to dst with the given tag. It never blocks
// (buffered semantics, like MPI_Isend with guaranteed buffering).
func (c *Comm) Send(dst, tag int, data []int64) {
	if dst < 0 || dst >= c.w.p {
		panic(fmt.Sprintf("comm: send to invalid rank %d", dst))
	}
	cp := append([]int64(nil), data...)
	c.w.statsMu.Lock()
	c.w.stats[c.rank].Msgs++
	c.w.stats[c.rank].Words += int64(len(cp))
	c.w.statsMu.Unlock()
	c.w.boxes[dst].put(message{src: c.rank, tag: tag, data: cp})
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload and source rank. Pass AnySource to match any sender.
func (c *Comm) Recv(src, tag int) ([]int64, int) {
	m := c.w.boxes[c.rank].get(src, tag)
	return m.data, m.src
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.p {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCv.Broadcast()
	} else {
		for gen == w.barrierGen {
			w.barrierCv.Wait()
		}
	}
	w.barrierMu.Unlock()
}

// Reduction operators for Allreduce.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

const (
	tagReduce = -1000 - iota
	tagGather
	tagAllgather
	tagAlltoall
	tagBcast
)

// Allreduce combines vals elementwise across all ranks with op and returns
// the result (identical on every rank). Implemented as a recursive
// -doubling butterfly over point-to-point messages.
func (c *Comm) Allreduce(vals []int64, op Op) []int64 {
	res := append([]int64(nil), vals...)
	p := c.w.p
	// Butterfly over the largest power of two ≤ p, with pre/post folding
	// for the remainder ranks.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow
	r := c.rank
	// Fold remainder ranks into their partners.
	if r >= pow {
		c.Send(r-pow, tagReduce, res)
		got, _ := c.Recv(r-pow, tagBcast)
		return got
	}
	if r < rem {
		d, _ := c.Recv(r+pow, tagReduce)
		for i := range res {
			res[i] = op.apply(res[i], d[i])
		}
	}
	for mask := 1; mask < pow; mask *= 2 {
		partner := r ^ mask
		c.Send(partner, tagReduce, res)
		d, _ := c.Recv(partner, tagReduce)
		for i := range res {
			res[i] = op.apply(res[i], d[i])
		}
	}
	if r < rem {
		c.Send(r+pow, tagBcast, res)
	}
	return res
}

// Allgather collects each rank's slice on every rank, indexed by rank.
func (c *Comm) Allgather(vals []int64) [][]int64 {
	p := c.w.p
	for dst := 0; dst < p; dst++ {
		if dst != c.rank {
			c.Send(dst, tagAllgather, vals)
		}
	}
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), vals...)
	for i := 0; i < p-1; i++ {
		d, src := c.Recv(AnySource, tagAllgather)
		out[src] = d
	}
	return out
}

// Gather collects each rank's slice on root (other ranks get nil).
func (c *Comm) Gather(root int, vals []int64) [][]int64 {
	if c.rank != root {
		c.Send(root, tagGather, vals)
		return nil
	}
	out := make([][]int64, c.w.p)
	out[root] = append([]int64(nil), vals...)
	for i := 0; i < c.w.p-1; i++ {
		d, src := c.Recv(AnySource, tagGather)
		out[src] = d
	}
	return out
}

// Alltoallv sends bufs[dst] to every dst (nil entries allowed, still
// delivered as empty) and returns the received buffers indexed by source.
func (c *Comm) Alltoallv(bufs [][]int64) [][]int64 {
	p := c.w.p
	if len(bufs) != p {
		panic("comm: Alltoallv needs one buffer per rank")
	}
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.Send(dst, tagAlltoall, bufs[dst])
	}
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), bufs[c.rank]...)
	for i := 0; i < p-1; i++ {
		d, src := c.Recv(AnySource, tagAlltoall)
		out[src] = d
	}
	return out
}
