// Package comm is the message-passing runtime that stands in for MPI: a
// World of P ranks executing SPMD functions on goroutines, point-to-point
// sends with (source, tag) matching, and the collectives the parallel mesh
// adaption needs (Barrier, Allreduce, Allgather, Alltoallv, Gather). All
// communication is by value over in-process queues — ranks share no
// mutable state, matching the distributed-memory discipline of the paper's
// C++/MPI implementation.
//
// Every rank records traffic counters (messages and words sent) so the
// machine model can translate a run's communication pattern into SP2-class
// time.
//
// The package also carries the robustness layer's transport: a reliable
// framed path (SendReliable/RecvReliable, see reliable.go) with sequence
// numbers, checksums, and bounded retry, driven by a deterministic fault
// hook installed via World.SetFaults. A rank that panics no longer hangs
// the other P−1 ranks: Run poisons the world, wakes every blocked Recv and
// Barrier, and returns an aggregated error naming the failing ranks.
package comm

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"plum/internal/fault"
)

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []int64
}

// poisonMark is the sentinel panic value used to unwind ranks that were
// blocked in Recv or Barrier when another rank died. Run recognizes and
// filters it so the aggregated error names only the original failures.
type poisonMark struct{}

var poisonSentinel any = poisonMark{}

// crashMark is the panic value Comm.Crash unwinds with: a modeled rank
// death, not a program bug. Run separates it from genuine panics and
// reports it as a *CrashError so callers can run survivor recovery
// instead of treating the stage as corrupt.
type crashMark struct{ rank int }

// CrashError reports the modeled rank deaths that ended a Run. The
// surviving ranks were unwound cleanly at their next blocking point (the
// in-process analogue of detecting a dead peer at the next barrier); the
// stage's effects must be rolled back and its work redistributed onto
// the survivors.
type CrashError struct {
	// Ranks are the crashed ranks, sorted ascending.
	Ranks []int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("comm: rank crash: ranks %v died mid-stage", e.Ranks)
}

// TimeoutError reports that a Run exceeded the world's stage deadline:
// at least one rank was genuinely hung (not blocked in comm, where
// poisoning would have unwound it). The world is poisoned and its state
// is torn mid-stage; the caller must treat the stage as failed.
type TimeoutError struct {
	// Deadline is the wall-clock budget that expired.
	Deadline time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: stage deadline %v exceeded: worker hung outside the communication layer", e.Deadline)
}

// mailbox is a rank's incoming queue with (src, tag) matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
	dead bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.cond.Signal()
	mb.mu.Unlock()
}

func (mb *mailbox) get(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.dead {
			panic(poisonSentinel)
		}
		for i, m := range mb.q {
			if (src == AnySource || m.src == src) && m.tag == tag {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// World is a communicator of P ranks.
type World struct {
	p     int
	boxes []*mailbox

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierCv  *sync.Cond
	dead       bool // set by poison(); guarded by barrierMu

	statsMu sync.Mutex
	stats   []Stats

	// Reliable-transport state (reliable.go). The hook and budget are set
	// between Run calls; the per-(src,dst) slots indexed src*p+dst are each
	// written by exactly one rank goroutine (sender-owned except
	// pairExpect, which the receiver owns), so no locking is needed.
	hook        func(src, dst, attempt int) fault.Kind
	maxAttempts int
	deadline    time.Duration // wall-clock watchdog per Run; 0 = off
	pairAttempt []int32 // fault-hook consultations per pair (sender-owned)
	pairSeq     []int64 // next sequence number per pair (sender-owned)
	pairExpect  []int64 // next expected sequence per pair (receiver-owned)
	pairResend  []int64 // extra physical frames per pair (sender-owned)
	pairBackoff []int64 // Σ 2^try backoff units per pair (sender-owned)
}

// Stats counts a rank's outgoing traffic. Words counts payload words only;
// the reliable path's frame headers are bookkeeping, not modeled volume.
type Stats struct {
	Msgs  int64
	Words int64
	// Retries counts extra physical frames the reliable path sent
	// (retransmissions and duplicate deliveries) and RetryWords their
	// payload words; Failed counts transfers abandoned after the attempt
	// budget. All three stay zero on the plain Send path.
	Retries    int64
	RetryWords int64
	Failed     int64
}

// NewWorld creates a communicator with p ranks.
func NewWorld(p int) *World {
	w := &World{p: p, boxes: make([]*mailbox, p), stats: make([]Stats, p),
		maxAttempts: 1,
		pairAttempt: make([]int32, p*p),
		pairSeq:     make([]int64, p*p),
		pairExpect:  make([]int64, p*p),
		pairResend:  make([]int64, p*p),
		pairBackoff: make([]int64, p*p),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.barrierCv = sync.NewCond(&w.barrierMu)
	return w
}

// P returns the number of ranks.
func (w *World) P() int { return w.p }

// poison marks the world dead and wakes every rank blocked in Barrier or
// Recv; they unwind with the poison sentinel instead of waiting forever.
func (w *World) poison() {
	w.barrierMu.Lock()
	w.dead = true
	w.barrierCv.Broadcast()
	w.barrierMu.Unlock()
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.dead = true
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Poisoned reports whether a rank failure has killed this world.
func (w *World) Poisoned() bool {
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	return w.dead
}

// SetDeadline arms a wall-clock watchdog on subsequent Run calls: a Run
// whose ranks have not all finished within d poisons the world and
// returns a *TimeoutError instead of waiting forever on a hung worker.
// Zero disables the watchdog. Like SetFaults it must be called between
// Run calls, not concurrently with one.
func (w *World) SetDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.deadline = d
}

// watchdogGrace is how long a timed-out Run waits after poisoning for
// the ranks to unwind before abandoning them. Ranks blocked in comm wake
// immediately; a rank hung in user code never will, and Run returns
// without it (the goroutine leaks, but the world is already dead).
const watchdogGrace = 100 * time.Millisecond

// Run executes f on every rank concurrently and returns when all ranks
// finish. A panic on any rank poisons the world — every other rank blocked
// in Recv or Barrier unwinds instead of deadlocking — and Run returns an
// aggregated error naming the ranks that originally panicked, each with
// the stack trace captured at the panic site. Modeled rank deaths
// (Comm.Crash) are separated from genuine panics and reported as a
// *CrashError naming the dead ranks; if both occur, the genuine panics
// win. With a deadline armed (SetDeadline), a Run that outlives it
// returns a *TimeoutError. A poisoned world stays dead: later Run calls
// fail immediately.
func (w *World) Run(f func(c *Comm)) error {
	if w.Poisoned() {
		return fmt.Errorf("comm: world already poisoned by an earlier rank failure")
	}
	var wg sync.WaitGroup
	panics := make([]any, w.p)
	stacks := make([][]byte, w.p)
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[rank] = e
					if _, crash := e.(crashMark); !crash && e != poisonSentinel {
						stacks[rank] = debug.Stack()
					}
					w.poison()
				}
			}()
			f(&Comm{w: w, rank: rank})
		}(r)
	}
	if w.deadline > 0 {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		timer := time.NewTimer(w.deadline)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			// Deadline blown: at least one rank is hung. Poison so ranks
			// blocked in comm unwind, give them a grace period, then
			// report the timeout — the stage's state is torn either way.
			w.poison()
			grace := time.NewTimer(watchdogGrace)
			defer grace.Stop()
			select {
			case <-done:
			case <-grace.C:
			}
			return &TimeoutError{Deadline: w.deadline}
		}
	} else {
		wg.Wait()
	}
	var parts []string
	var crashed []int
	for r, e := range panics {
		if e == nil || e == poisonSentinel {
			continue
		}
		if _, ok := e.(crashMark); ok {
			crashed = append(crashed, r)
			continue
		}
		parts = append(parts, fmt.Sprintf("rank %d panicked: %v\n%s", r, e, stacks[r]))
	}
	if parts != nil {
		return fmt.Errorf("comm: %s", strings.Join(parts, "; "))
	}
	if crashed != nil {
		sort.Ints(crashed)
		return &CrashError{Ranks: crashed}
	}
	return nil
}

// RankStats returns the accumulated traffic counters per rank.
func (w *World) RankStats() []Stats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return append([]Stats(nil), w.stats...)
}

// ResetStats zeroes the traffic counters.
func (w *World) ResetStats() {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Comm is one rank's handle on the World.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id in [0, P).
func (c *Comm) Rank() int { return c.rank }

// Crash models this rank dying mid-stage: it unwinds the rank
// immediately, and the peers discover the death at their next blocking
// point (barrier or receive) instead of hanging. Run reports the deaths
// as a *CrashError so the caller can roll the stage back and remap the
// dead ranks' work onto the survivors.
func (c *Comm) Crash() {
	panic(crashMark{rank: c.rank})
}

// P returns the communicator size.
func (c *Comm) P() int { return c.w.p }

// Send delivers a copy of data to dst with the given tag. It never blocks
// (buffered semantics, like MPI_Isend with guaranteed buffering).
func (c *Comm) Send(dst, tag int, data []int64) {
	if dst < 0 || dst >= c.w.p {
		panic(fmt.Sprintf("comm: send to invalid rank %d", dst))
	}
	cp := append([]int64(nil), data...)
	c.w.statsMu.Lock()
	c.w.stats[c.rank].Msgs++
	c.w.stats[c.rank].Words += int64(len(cp))
	c.w.statsMu.Unlock()
	c.w.boxes[dst].put(message{src: c.rank, tag: tag, data: cp})
}

// Recv blocks until a message with matching source and tag arrives and
// returns its payload and source rank. Pass AnySource to match any sender.
func (c *Comm) Recv(src, tag int) ([]int64, int) {
	m := c.w.boxes[c.rank].get(src, tag)
	return m.data, m.src
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.w
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	if w.dead {
		panic(poisonSentinel)
	}
	gen := w.barrierGen
	w.barrierCnt++
	if w.barrierCnt == w.p {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierCv.Broadcast()
		return
	}
	for gen == w.barrierGen {
		w.barrierCv.Wait()
		if w.dead {
			panic(poisonSentinel)
		}
	}
}

// Reduction operators for Allreduce.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	default:
		if a < b {
			return a
		}
		return b
	}
}

const (
	tagReduce = -1000 - iota
	tagGather
	tagAllgather
	tagAlltoall
	tagBcast
)

// lenCheck validates that a collective partner sent the expected number of
// words; the panic (converted to an error by Run) names both ranks so a
// mismatched collective fails loudly instead of corrupting the reduction.
func lenCheck(coll string, self, have, src, got int) {
	if got != have {
		panic(fmt.Sprintf("comm: %s length mismatch: rank %d has %d words but rank %d sent %d",
			coll, self, have, src, got))
	}
}

// Allreduce combines vals elementwise across all ranks with op and returns
// the result (identical on every rank). Implemented as a recursive
// -doubling butterfly over point-to-point messages. Ranks must pass
// equal-length slices; a mismatch fails naming the offending ranks.
func (c *Comm) Allreduce(vals []int64, op Op) []int64 {
	res := append([]int64(nil), vals...)
	p := c.w.p
	// Butterfly over the largest power of two ≤ p, with pre/post folding
	// for the remainder ranks.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow
	r := c.rank
	// Fold remainder ranks into their partners.
	if r >= pow {
		c.Send(r-pow, tagReduce, res)
		got, _ := c.Recv(r-pow, tagBcast)
		lenCheck("Allreduce", r, len(res), r-pow, len(got))
		return got
	}
	if r < rem {
		d, _ := c.Recv(r+pow, tagReduce)
		lenCheck("Allreduce", r, len(res), r+pow, len(d))
		for i := range res {
			res[i] = op.apply(res[i], d[i])
		}
	}
	for mask := 1; mask < pow; mask *= 2 {
		partner := r ^ mask
		c.Send(partner, tagReduce, res)
		d, _ := c.Recv(partner, tagReduce)
		lenCheck("Allreduce", r, len(res), partner, len(d))
		for i := range res {
			res[i] = op.apply(res[i], d[i])
		}
	}
	if r < rem {
		c.Send(r+pow, tagBcast, res)
	}
	return res
}

// Allgather collects each rank's slice on every rank, indexed by rank.
// Like MPI_Allgather, every rank must contribute the same number of words;
// a mismatch fails naming the offending ranks.
func (c *Comm) Allgather(vals []int64) [][]int64 {
	p := c.w.p
	for dst := 0; dst < p; dst++ {
		if dst != c.rank {
			c.Send(dst, tagAllgather, vals)
		}
	}
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), vals...)
	for i := 0; i < p-1; i++ {
		d, src := c.Recv(AnySource, tagAllgather)
		lenCheck("Allgather", c.rank, len(vals), src, len(d))
		out[src] = d
	}
	return out
}

// Gather collects each rank's slice on root (other ranks get nil). Slices
// may have different lengths (MPI_Gatherv semantics).
func (c *Comm) Gather(root int, vals []int64) [][]int64 {
	if c.rank != root {
		c.Send(root, tagGather, vals)
		return nil
	}
	out := make([][]int64, c.w.p)
	out[root] = append([]int64(nil), vals...)
	for i := 0; i < c.w.p-1; i++ {
		d, src := c.Recv(AnySource, tagGather)
		out[src] = d
	}
	return out
}

// Alltoallv sends bufs[dst] to every dst (nil entries allowed, still
// delivered as empty) and returns the received buffers indexed by source.
func (c *Comm) Alltoallv(bufs [][]int64) [][]int64 {
	p := c.w.p
	if len(bufs) != p {
		panic(fmt.Sprintf("comm: Alltoallv on rank %d got %d buffers, need one per rank (%d)",
			c.rank, len(bufs), p))
	}
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.Send(dst, tagAlltoall, bufs[dst])
	}
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), bufs[c.rank]...)
	for i := 0; i < p-1; i++ {
		d, src := c.Recv(AnySource, tagAlltoall)
		out[src] = d
	}
	return out
}
