package comm

import "testing"

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root += 2 {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				var in []int64
				if c.Rank() == root {
					in = []int64{42, int64(root)}
				}
				out := c.Bcast(root, in)
				if out[0] != 42 || out[1] != int64(root) {
					t.Errorf("P=%d root=%d rank=%d: got %v", p, root, c.Rank(), out)
				}
			})
		}
	}
}

func TestReduce(t *testing.T) {
	p := 5
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		out := c.Reduce(2, []int64{int64(c.Rank()), 1}, OpSum)
		if c.Rank() == 2 {
			if out[0] != 10 || out[1] != int64(p) {
				t.Errorf("Reduce = %v", out)
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
}

func TestExScan(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			out := c.ExScan([]int64{int64(c.Rank() + 1)})
			// rank r gets Σ_{q<r}(q+1) = r(r+1)/2.
			want := int64(c.Rank() * (c.Rank() + 1) / 2)
			if out[0] != want {
				t.Errorf("P=%d rank %d: ExScan = %d, want %d", p, c.Rank(), out[0], want)
			}
		})
	}
}

func TestBcastLargePayload(t *testing.T) {
	p := 8
	payload := make([]int64, 10000)
	for i := range payload {
		payload[i] = int64(i * 3)
	}
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		var in []int64
		if c.Rank() == 0 {
			in = payload
		}
		out := c.Bcast(0, in)
		if len(out) != len(payload) || out[9999] != payload[9999] {
			t.Errorf("rank %d: payload corrupted", c.Rank())
		}
	})
}
