package comm

// Additional collectives used by the finalization phase (global numbering)
// and general SPMD bookkeeping.

const (
	tagBroadcast = -2000 - iota
	tagScan
	tagReduceRoot
)

// Bcast distributes root's slice to every rank (binomial tree) and returns
// it; ranks other than root ignore their vals argument.
func (c *Comm) Bcast(root int, vals []int64) []int64 {
	p := c.w.p
	if p == 1 {
		return append([]int64(nil), vals...)
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.rank - root + p) % p
	var data []int64
	if vr == 0 {
		data = append([]int64(nil), vals...)
	} else {
		// Receive from the parent in the binomial tree.
		mask := 1
		for mask < p {
			if vr&mask != 0 {
				src := ((vr - mask) + root) % p
				data, _ = c.Recv(src, tagBroadcast)
				break
			}
			mask <<= 1
		}
	}
	// Forward to children.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			break
		}
		mask <<= 1
	}
	for child := mask >> 1; child > 0; child >>= 1 {
		if vr+child < p {
			dst := ((vr + child) + root) % p
			c.Send(dst, tagBroadcast, data)
		}
	}
	return data
}

// Reduce combines vals elementwise onto root (nil elsewhere).
func (c *Comm) Reduce(root int, vals []int64, op Op) []int64 {
	if c.rank != root {
		c.Send(root, tagReduceRoot, vals)
		return nil
	}
	res := append([]int64(nil), vals...)
	for i := 0; i < c.w.p-1; i++ {
		d, src := c.Recv(AnySource, tagReduceRoot)
		lenCheck("Reduce", c.rank, len(res), src, len(d))
		for j := range res {
			res[j] = op.apply(res[j], d[j])
		}
	}
	return res
}

// ExScan returns the exclusive prefix sum of each element of vals over the
// rank order: rank r receives Σ_{q<r} vals_q (zeros on rank 0). This is
// the collective behind globally consistent object numbering in the
// finalization phase.
func (c *Comm) ExScan(vals []int64) []int64 {
	// Simple two-phase implementation: gather on rank 0, scan, scatter.
	// P is small (≤64 here) so the linear algorithm is fine.
	all := c.Allgather(vals)
	out := make([]int64, len(vals))
	for q := 0; q < c.rank; q++ {
		for j := range out {
			out[j] += all[q][j]
		}
	}
	return out
}
