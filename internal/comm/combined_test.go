package comm

import (
	"reflect"
	"testing"

	"plum/internal/fault"
)

func TestCombinedRoundTrip(t *testing.T) {
	subs := []SubFrame{
		{Src: 0, Dst: 1, Data: []int64{10, 20, 30}},
		{Src: 0, Dst: 2, Data: []int64{}},
		{Src: 3, Dst: 1, Data: []int64{-7, 1 << 62}},
	}
	frame := PackCombined(subs)
	wantLen := 1 + subHdr*3 + 3 + 0 + 2
	if len(frame) != wantLen {
		t.Fatalf("frame length %d, want %d", len(frame), wantLen)
	}
	got, err := UnpackCombined(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(subs) {
		t.Fatalf("unpacked %d subs, want %d", len(got), len(subs))
	}
	for i := range subs {
		if got[i].Src != subs[i].Src || got[i].Dst != subs[i].Dst ||
			!reflect.DeepEqual(append([]int64{}, got[i].Data...), append([]int64{}, subs[i].Data...)) {
			t.Errorf("sub %d: got %+v want %+v", i, got[i], subs[i])
		}
	}
	// Unpack must alias the frame, not copy it: repacking from the views
	// reproduces the identical frame without touching the payloads.
	if !reflect.DeepEqual(PackCombined(got), frame) {
		t.Error("repack of unpacked subs diverges from the original frame")
	}
}

func TestCombinedEmpty(t *testing.T) {
	frame := PackCombined(nil)
	if !reflect.DeepEqual(frame, []int64{0}) {
		t.Fatalf("empty pack = %v", frame)
	}
	subs, err := UnpackCombined(frame)
	if err != nil || len(subs) != 0 {
		t.Fatalf("empty unpack = %v, %v", subs, err)
	}
}

func TestCombinedMalformed(t *testing.T) {
	good := PackCombined([]SubFrame{{Src: 1, Dst: 2, Data: []int64{5, 6}}})
	cases := map[string][]int64{
		"nil frame":        nil,
		"negative count":   {-1},
		"count overflow":   {1 << 40},
		"truncated header": {2, 0, 1, 2},
		"negative words":   {1, 0, 1, -3},
		"payload overrun":  {1, 0, 1, 99, 5, 6},
		"trailing words":   append(append([]int64{}, good...), 42),
	}
	for name, frame := range cases {
		if _, err := UnpackCombined(frame); err == nil {
			t.Errorf("%s: unpack accepted %v", name, frame)
		}
	}
	if _, err := UnpackCombined(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

// TestCombinedOverReliableTransport sends a combined frame through the
// reliable path under a corrupt-only fault plan: the checksum covers the
// whole frame, so a garbled combined frame is retried as a unit and the
// delivered sub-frames are exact.
func TestCombinedOverReliableTransport(t *testing.T) {
	subs := []SubFrame{
		{Src: 0, Dst: 1, Data: []int64{1, 2, 3}},
		{Src: 0, Dst: 1, Data: []int64{4}},
	}
	frame := PackCombined(subs)
	w := NewWorld(2)
	plan := &fault.Plan{Seed: 11, Rate: 0.7, Kinds: []fault.Kind{fault.Corrupt}}
	w.SetFaults(plan.Hook(fault.StageRemap, 0), 20)
	var delivered []int64
	var ok bool
	if err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendReliable(1, 1, frame)
		} else {
			delivered, _, ok = c.RecvReliable(0, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("combined frame failed despite retry budget")
	}
	if !reflect.DeepEqual(delivered, frame) {
		t.Fatalf("corrupted combined frame leaked through: %v", delivered)
	}
	got, err := UnpackCombined(delivered)
	if err != nil || len(got) != 2 {
		t.Fatalf("delivered frame does not unpack: %v, %v", got, err)
	}
	var retries int64
	for _, s := range w.RankStats() {
		retries += s.Retries
	}
	if retries == 0 {
		t.Error("rate-0.7 corruption produced no retries")
	}
}

// FuzzCombinedFrame drives pack/unpack from fuzzed sub-frame shapes and
// fuzzed raw frames: structurally valid frames must round-trip exactly,
// arbitrary word soup must either unpack cleanly and repack to the
// identical frame or be rejected — never panic — and a single flipped
// word anywhere in a packed frame must be caught by the transport
// checksum (the PR's corruption-detection path for combined frames).
func FuzzCombinedFrame(f *testing.F) {
	f.Add(int64(3), int64(0), []byte{1, 2, 3}, int64(1))
	f.Add(int64(0), int64(0), []byte{}, int64(0x1000))
	f.Add(int64(-1), int64(7), []byte{0, 0, 9, 255}, int64(1<<40))
	f.Fuzz(func(t *testing.T, a, b int64, shape []byte, flip int64) {
		// Build subs from the shape bytes: each byte is one sub's payload
		// length; payload words derive from a and b.
		var subs []SubFrame
		for i, n := range shape {
			if i >= 8 {
				break
			}
			data := make([]int64, int(n)%16)
			for j := range data {
				data[j] = a + int64(j)*b
			}
			subs = append(subs, SubFrame{Src: int32(i), Dst: int32(int(n) % 5), Data: data})
		}
		frame := PackCombined(subs)
		got, err := UnpackCombined(frame)
		if err != nil {
			t.Fatalf("packed frame rejected: %v", err)
		}
		if len(got) != len(subs) {
			t.Fatalf("round trip lost subs: %d -> %d", len(subs), len(got))
		}
		if !reflect.DeepEqual(PackCombined(got), frame) {
			t.Fatal("round trip not identity")
		}

		// The checksum path: any single-word flip in the frame must change
		// the checksum, so the reliable transport discards the frame and
		// retries instead of delivering a torn combined frame.
		if flip != 0 && len(frame) > 0 {
			sum := checksum(frame)
			idx := int(uint64(a) % uint64(len(frame)))
			frame[idx] ^= flip
			if checksum(frame) == sum {
				t.Fatalf("flipped combined frame has unchanged checksum: idx=%d flip=%#x", idx, flip)
			}
			frame[idx] ^= flip
		}

		// Arbitrary word soup: never panic, and any accepted parse must
		// repack to the identical frame.
		soup := append([]int64{a, b}, frame...)
		if subs2, err := UnpackCombined(soup); err == nil {
			if !reflect.DeepEqual(PackCombined(subs2), soup) {
				t.Fatal("accepted soup does not repack identically")
			}
		}
	})
}
