package comm

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []int64{42, 43})
			d, src := c.Recv(1, 8)
			if src != 1 || len(d) != 1 || d[0] != 99 {
				t.Errorf("rank 0 got %v from %d", d, src)
			}
		} else {
			d, src := c.Recv(0, 7)
			if src != 0 || d[0] != 42 || d[1] != 43 {
				t.Errorf("rank 1 got %v from %d", d, src)
			}
			c.Send(0, 8, []int64{99})
		}
	})
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must not be confused even when sent
	// out of receive order.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []int64{1})
			c.Send(1, 2, []int64{2})
		} else {
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if d1[0] != 1 || d2[0] != 2 {
				t.Errorf("tag matching broke: %v %v", d1, d2)
			}
		}
	})
}

func TestSendIsolation(t *testing.T) {
	// The receiver must get a copy; mutating the sent slice afterwards
	// must not corrupt the message.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int64{5}
			c.Send(1, 0, buf)
			buf[0] = 666
		} else {
			d, _ := c.Recv(0, 0)
			if d[0] != 5 {
				t.Errorf("message aliased sender buffer: %d", d[0])
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	var phase atomic.Int64
	w.Run(func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != p {
			t.Errorf("rank %d passed barrier with phase=%d", c.Rank(), got)
		}
		c.Barrier()
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			res := c.Allreduce([]int64{int64(c.Rank()), 1}, OpSum)
			wantSum := int64(p * (p - 1) / 2)
			if res[0] != wantSum || res[1] != int64(p) {
				t.Errorf("P=%d rank %d: Allreduce = %v, want [%d %d]", p, c.Rank(), res, wantSum, p)
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	p := 6
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		mx := c.Allreduce([]int64{int64(c.Rank())}, OpMax)
		mn := c.Allreduce([]int64{int64(c.Rank())}, OpMin)
		if mx[0] != int64(p-1) || mn[0] != 0 {
			t.Errorf("rank %d: max %d min %d", c.Rank(), mx[0], mn[0])
		}
	})
}

func TestAllgather(t *testing.T) {
	p := 5
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		out := c.Allgather([]int64{int64(c.Rank() * 10)})
		for r := 0; r < p; r++ {
			if out[r][0] != int64(r*10) {
				t.Errorf("rank %d: out[%d] = %v", c.Rank(), r, out[r])
			}
		}
	})
}

func TestGather(t *testing.T) {
	p := 4
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		out := c.Gather(2, []int64{int64(c.Rank())})
		if c.Rank() == 2 {
			for r := 0; r < p; r++ {
				if out[r][0] != int64(r) {
					t.Errorf("gather: out[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), out)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	p := 4
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		bufs := make([][]int64, p)
		for dst := 0; dst < p; dst++ {
			bufs[dst] = []int64{int64(c.Rank()*100 + dst)}
		}
		out := c.Alltoallv(bufs)
		for src := 0; src < p; src++ {
			want := int64(src*100 + c.Rank())
			if out[src][0] != want {
				t.Errorf("rank %d: from %d got %v, want %d", c.Rank(), src, out[src], want)
			}
		}
	})
}

func TestStatsCounters(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []int64{1, 2, 3})
		} else {
			c.Recv(0, 0)
		}
	})
	st := w.RankStats()
	if st[0].Msgs != 1 || st[0].Words != 3 {
		t.Errorf("rank 0 stats = %+v", st[0])
	}
	if st[1].Msgs != 0 {
		t.Errorf("rank 1 stats = %+v", st[1])
	}
	w.ResetStats()
	st = w.RankStats()
	if st[0].Msgs != 0 || st[0].Words != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestRunReturnsPanicAsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 panicked: boom") {
		t.Fatalf("Run error = %v", err)
	}
	if !w.Poisoned() {
		t.Error("world not poisoned after rank panic")
	}
	if err := w.Run(func(c *Comm) {}); err == nil {
		t.Error("poisoned world accepted another Run")
	}
}

func TestRunUnblocksDeadlockedRanks(t *testing.T) {
	// One rank dies while the others are blocked in Recv and Barrier; the
	// poison must wake all of them and the error must name only rank 0.
	w := NewWorld(4)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				panic("rank 0 dies")
			case 1:
				c.Recv(0, 42) // never sent
			default:
				c.Barrier() // never completed
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "rank 0 panicked") {
			t.Fatalf("Run error = %v", err)
		}
		if strings.Contains(err.Error(), "rank 1") || strings.Contains(err.Error(), "rank 2") {
			t.Errorf("collateral unwinds leaked into error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run still deadlocked after a rank panic")
	}
}

func TestCollectiveLengthValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(c *Comm)
	}{
		{"Allreduce", func(c *Comm) {
			c.Allreduce(make([]int64, 1+c.Rank()%2), OpSum)
		}},
		{"Allgather", func(c *Comm) {
			c.Allgather(make([]int64, 1+c.Rank()%2))
		}},
		{"Reduce", func(c *Comm) {
			c.Reduce(0, make([]int64, 1+c.Rank()%2), OpSum)
		}},
		{"Alltoallv", func(c *Comm) {
			c.Alltoallv(make([][]int64, c.P()-1))
		}},
	} {
		err := NewWorld(4).Run(tc.f)
		if err == nil {
			t.Errorf("%s with mismatched lengths succeeded", tc.name)
			continue
		}
		if tc.name != "Alltoallv" && !strings.Contains(err.Error(), "length mismatch") {
			t.Errorf("%s error does not name the mismatch: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), "rank") {
			t.Errorf("%s error does not name a rank: %v", tc.name, err)
		}
	}
}

func TestAnySource(t *testing.T) {
	p := 4
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < p-1; i++ {
				d, src := c.Recv(AnySource, 3)
				if seen[src] {
					t.Errorf("duplicate source %d", src)
				}
				seen[src] = true
				if d[0] != int64(src) {
					t.Errorf("payload %d from %d", d[0], src)
				}
			}
		} else {
			c.Send(0, 3, []int64{int64(c.Rank())})
		}
	})
}
