package comm

// The reliable transport: framed point-to-point messaging with per-pair
// sequence numbers, payload checksums, bounded retry, and modeled
// exponential backoff. Faults are injected by the deterministic hook a
// World carries (SetFaults); because the hook is a pure function of
// (src, dst, attempt) and the per-pair attempt counters advance in program
// order on the owning rank, every injected failure and every recovery is
// byte-reproducible at any worker count.
//
// A frame is [seq, flags, checksum, nwords] followed by the payload. The
// header words model protected control information (MPI envelopes survive
// payload corruption), so injected corruption only ever touches the
// payload or the carried checksum. Word counters in Stats count payload
// words only, which keeps the no-fault reliable path byte-identical in
// Stats to the plain Send path.
//
// Delivery contract: for every SendReliable exactly one terminal frame
// reaches the receiver — a clean frame (possibly after retries) or, when
// the attempt budget is exhausted, a fail frame. Receivers therefore never
// time out and never deadlock; a failed transfer surfaces as ok=false and
// the caller (the transactional remap) decides whether to retry the window
// or roll back.

import (
	"fmt"
	"slices"

	"plum/internal/fault"
)

const (
	frameHdr              = 4 // seq, flags, checksum, nwords
	frameFlagOK     int64 = 0
	frameFlagFailed int64 = 1
)

// checksum is FNV-1a over the payload words. Each step x → (x^v)·prime is
// a bijection on uint64, so corrupting exactly one payload word always
// changes the digest — single-word corruption is detected with certainty,
// not just with high probability.
func checksum(data []int64) int64 {
	h := uint64(1469598103934665603)
	for _, v := range data {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return int64(h)
}

// SetFaults installs the transport fault hook consulted once per physical
// send attempt on the reliable path, and the per-message attempt budget
// (minimum 1, the initial send). A nil hook disables injection. Call
// between Run invocations only; the hook itself must be pure.
func (w *World) SetFaults(hook func(src, dst, attempt int) fault.Kind, msgAttempts int) {
	if msgAttempts < 1 {
		msgAttempts = 1
	}
	w.hook = hook
	w.maxAttempts = msgAttempts
}

// RetryCounters returns copies of the per-(src,dst) retry counters the
// reliable path accumulated, indexed src*P+dst: extra physical frames
// sent, and modeled backoff units (Σ 2^try per failed attempt, plus one
// unit per stall), to be scaled by the machine model's RetryBackoff. Call
// after Run returns.
func (w *World) RetryCounters() (resends, backoff []int64) {
	return append([]int64(nil), w.pairResend...), append([]int64(nil), w.pairBackoff...)
}

// putFrame sends one physical frame. corruptSalt < 0 sends the frame
// clean; otherwise one payload word (or, for empty payloads, the carried
// checksum) is flipped, deterministically chosen by the salt.
func (c *Comm) putFrame(dst, tag int, seq, flags int64, payload []int64, corruptSalt int64) {
	frame := make([]int64, frameHdr+len(payload))
	frame[0] = seq
	frame[1] = flags
	frame[2] = checksum(payload)
	frame[3] = int64(len(payload))
	copy(frame[frameHdr:], payload)
	if corruptSalt >= 0 {
		if len(payload) == 0 {
			frame[2] ^= 0x2a
		} else {
			frame[frameHdr+int(corruptSalt)%len(payload)] ^= 0x2a
		}
	}
	w := c.w
	w.statsMu.Lock()
	w.stats[c.rank].Msgs++
	w.stats[c.rank].Words += int64(len(payload))
	w.statsMu.Unlock()
	w.boxes[dst].put(message{src: c.rank, tag: tag, data: frame})
}

// SendReliable delivers data to dst with the given tag through the framed
// retry path and reports whether the transfer succeeded within the attempt
// budget. Failed transfers still deliver a fail frame, so the receiver
// learns the outcome instead of blocking. Retries and modeled backoff are
// charged to Stats and the per-pair counters.
func (c *Comm) SendReliable(dst, tag int, data []int64) bool {
	w := c.w
	if dst < 0 || dst >= w.p {
		panic(fmt.Sprintf("comm: reliable send to invalid rank %d", dst))
	}
	pair := c.rank*w.p + dst
	seq := w.pairSeq[pair]
	w.pairSeq[pair]++
	for try := 0; ; try++ {
		fate := fault.None
		if w.hook != nil {
			a := int(w.pairAttempt[pair])
			w.pairAttempt[pair]++
			fate = w.hook(c.rank, dst, a)
		}
		switch fate {
		case fault.None:
			c.putFrame(dst, tag, seq, frameFlagOK, data, -1)
			return true
		case fault.Stall:
			// Delivered intact but late: charge one backoff unit.
			w.pairBackoff[pair]++
			c.putFrame(dst, tag, seq, frameFlagOK, data, -1)
			return true
		case fault.Duplicate:
			// Both copies are real wire traffic; the receiver's sequence
			// tracking discards the second.
			c.putFrame(dst, tag, seq, frameFlagOK, data, -1)
			c.putFrame(dst, tag, seq, frameFlagOK, data, -1)
			w.pairResend[pair]++
			w.statsMu.Lock()
			w.stats[c.rank].Retries++
			w.stats[c.rank].RetryWords += int64(len(data))
			w.statsMu.Unlock()
			return true
		case fault.Corrupt:
			// The garbled frame reaches the wire (and the receiver's
			// checksum rejects it); the sender retries after a modeled
			// timeout.
			c.putFrame(dst, tag, seq, frameFlagOK, data, seq+int64(try))
		case fault.Drop:
			// Lost at the source; nothing reaches the receiver.
		}
		if try+1 >= w.maxAttempts {
			c.putFrame(dst, tag, seq, frameFlagFailed, nil, -1)
			w.pairBackoff[pair]++ // the failure notification's timeout
			w.statsMu.Lock()
			w.stats[c.rank].Failed++
			w.statsMu.Unlock()
			return false
		}
		w.pairResend[pair]++
		w.pairBackoff[pair] += 1 << min(try, 16)
		w.statsMu.Lock()
		w.stats[c.rank].Retries++
		w.stats[c.rank].RetryWords += int64(len(data))
		w.statsMu.Unlock()
	}
}

// RecvReliable blocks until one reliable transfer from src (or AnySource)
// with the given tag reaches a terminal state. It discards stale
// duplicates and checksum-corrupt frames along the way, returning the
// payload and true for a clean delivery, or nil and false for a transfer
// whose sender exhausted its attempt budget.
func (c *Comm) RecvReliable(src, tag int) (data []int64, from int, ok bool) {
	w := c.w
	for {
		m := w.boxes[c.rank].get(src, tag)
		if len(m.data) < frameHdr || int64(len(m.data)-frameHdr) != m.data[3] {
			panic(fmt.Sprintf("comm: rank %d received torn frame from rank %d (%d words)",
				c.rank, m.src, len(m.data)))
		}
		seq, flags, sum := m.data[0], m.data[1], m.data[2]
		pair := m.src*w.p + c.rank
		if seq < w.pairExpect[pair] {
			continue // stale duplicate of an already-delivered message
		}
		if flags == frameFlagFailed {
			w.pairExpect[pair] = seq + 1
			return nil, m.src, false
		}
		payload := m.data[frameHdr:]
		if checksum(payload) != sum {
			continue // corrupted in flight; a retry is already on the way
		}
		w.pairExpect[pair] = seq + 1
		if len(payload) == 0 {
			payload = nil // match the plain path's empty-message value
		}
		return payload, m.src, true
	}
}

// AlltoallvReliable is Alltoallv over the reliable path: bufs[dst] goes to
// every dst through SendReliable, and the result is indexed by source.
// Transfers that exhausted their attempt budget leave a nil entry and are
// reported in failed (sorted source ranks); the exchange itself always
// completes — no rank blocks on a lost message.
func (c *Comm) AlltoallvReliable(bufs [][]int64) (out [][]int64, failed []int) {
	p := c.w.p
	if len(bufs) != p {
		panic(fmt.Sprintf("comm: AlltoallvReliable on rank %d got %d buffers, need one per rank (%d)",
			c.rank, len(bufs), p))
	}
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.SendReliable(dst, tagAlltoall, bufs[dst])
	}
	out = make([][]int64, p)
	out[c.rank] = append([]int64(nil), bufs[c.rank]...)
	for i := 0; i < p-1; i++ {
		d, src, ok := c.RecvReliable(AnySource, tagAlltoall)
		if !ok {
			failed = append(failed, src)
			continue
		}
		out[src] = d
	}
	slices.Sort(failed)
	return out, failed
}
