package comm

// Combined frames: the aggregated and hierarchical exchange schedules
// pack many logical flows into one physical message, so each flow needs a
// sub-header identifying its endpoints inside the shared payload. The
// combined frame is itself sent as an ordinary payload through Send or
// SendReliable — the reliable path's sequence/checksum/retry machinery
// covers the whole frame, so corruption of any sub-payload word is
// detected and repaired exactly as for a flat message.
//
// Layout (all int64 words):
//
//	[ nSub, (src, dst, nwords) × nSub, payload₀, payload₁, … ]
//
// Payloads are concatenated in sub-header order with no padding.

import "fmt"

// SubFrame is one logical flow carried inside a combined frame: Words of
// payload from rank Src to rank Dst. After UnpackCombined, Data aliases
// the frame buffer (zero copy) — callers that outlive the frame must copy.
type SubFrame struct {
	Src, Dst int32
	Data     []int64
}

const subHdr = 3 // src, dst, nwords

// PackCombined encodes the sub-frames into one combined frame, preserving
// their order. Empty payloads are legal (a sub-frame can carry zero
// words); an empty sub list encodes to the one-word frame [0].
func PackCombined(subs []SubFrame) []int64 {
	n := 1 + subHdr*len(subs)
	for _, s := range subs {
		n += len(s.Data)
	}
	frame := make([]int64, 1, n)
	frame[0] = int64(len(subs))
	for _, s := range subs {
		frame = append(frame, int64(s.Src), int64(s.Dst), int64(len(s.Data)))
	}
	for _, s := range subs {
		frame = append(frame, s.Data...)
	}
	return frame
}

// UnpackCombined decodes a combined frame, returning sub-frames whose
// Data slices alias the frame buffer. It validates the structure
// exhaustively — header fits, word counts nonnegative, payload region
// exactly consumed — so a structurally damaged frame is an error, never a
// misread. (Payload *content* integrity is the transport checksum's job.)
func UnpackCombined(frame []int64) ([]SubFrame, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("comm: combined frame empty (no sub count)")
	}
	n := frame[0]
	if n < 0 || 1+subHdr*n > int64(len(frame)) {
		return nil, fmt.Errorf("comm: combined frame header says %d subs, frame has %d words", n, len(frame))
	}
	subs := make([]SubFrame, n)
	off := 1 + subHdr*int(n)
	for i := range subs {
		h := 1 + subHdr*i
		w := frame[h+2]
		if w < 0 || int64(off)+w > int64(len(frame)) {
			return nil, fmt.Errorf("comm: combined sub %d claims %d words beyond frame end (%d/%d)",
				i, w, off, len(frame))
		}
		subs[i] = SubFrame{
			Src:  int32(frame[h]),
			Dst:  int32(frame[h+1]),
			Data: frame[off : off+int(w) : off+int(w)],
		}
		off += int(w)
	}
	if off != len(frame) {
		return nil, fmt.Errorf("comm: combined frame has %d trailing words", len(frame)-off)
	}
	return subs, nil
}
