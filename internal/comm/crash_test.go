package comm

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestCrashReturnsCrashError(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			c.Crash()
		}
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("Run error = %v, want *CrashError", err)
	}
	if !reflect.DeepEqual(ce.Ranks, []int{2}) {
		t.Errorf("crashed ranks = %v, want [2]", ce.Ranks)
	}
	if strings.Contains(err.Error(), "panicked") {
		t.Errorf("crash misreported as panic: %v", err)
	}
	if !w.Poisoned() {
		t.Error("world not poisoned after crash")
	}
	if err := w.Run(func(c *Comm) {}); err == nil {
		t.Error("poisoned world accepted another Run")
	}
}

func TestCrashRanksSortedAndComplete(t *testing.T) {
	// Multiple simultaneous crashes: all dead ranks must be reported, in
	// ascending order, regardless of goroutine scheduling.
	w := NewWorld(8)
	err := w.Run(func(c *Comm) {
		if r := c.Rank(); r == 6 || r == 1 || r == 4 {
			c.Crash()
		}
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("Run error = %v, want *CrashError", err)
	}
	if !reflect.DeepEqual(ce.Ranks, []int{1, 4, 6}) {
		t.Errorf("crashed ranks = %v, want [1 4 6]", ce.Ranks)
	}
}

func TestCrashUnblocksSurvivors(t *testing.T) {
	// Survivors blocked in Recv and Barrier must be woken by the poison,
	// and their collateral unwinds must not pollute the crash report.
	w := NewWorld(4)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Crash()
			case 1:
				c.Recv(0, 42) // never sent
			default:
				c.Barrier() // never completed
			}
		})
	}()
	select {
	case err := <-done:
		var ce *CrashError
		if !errors.As(err, &ce) || !reflect.DeepEqual(ce.Ranks, []int{0}) {
			t.Fatalf("Run error = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run still deadlocked after a rank crash")
	}
}

func TestPanicOutranksCrash(t *testing.T) {
	// A genuine panic is a bug; it must win over a concurrent scripted
	// crash so the defect is never masked as a recoverable rank death.
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 1:
			c.Crash()
		case 3:
			panic("real bug")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 3 panicked: real bug") {
		t.Fatalf("Run error = %v, want the rank 3 panic", err)
	}
	var ce *CrashError
	if errors.As(err, &ce) {
		t.Errorf("panic misclassified as crash: %v", err)
	}
}

func TestPanicErrorCarriesStack(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("with trace")
		}
	})
	if err == nil {
		t.Fatal("no error from panicking rank")
	}
	msg := err.Error()
	if !strings.Contains(msg, "goroutine") || !strings.Contains(msg, "comm.") {
		t.Errorf("panic error lacks a stack trace:\n%s", msg)
	}
}

func TestDeadlineReturnsTimeoutError(t *testing.T) {
	w := NewWorld(2)
	w.SetDeadline(50 * time.Millisecond)
	hung := make(chan struct{})
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			<-hung // hang outside the runtime: only the watchdog can help
		}
	})
	close(hung)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Run error = %v, want *TimeoutError", err)
	}
	if te.Deadline != 50*time.Millisecond {
		t.Errorf("TimeoutError deadline = %v", te.Deadline)
	}
	if !w.Poisoned() {
		t.Error("world not poisoned after timeout")
	}
}

func TestDeadlineZeroDisablesWatchdog(t *testing.T) {
	w := NewWorld(2)
	w.SetDeadline(0)
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatalf("unexpired watchdog broke a clean run: %v", err)
	}
}

func TestDeadlineGenerousPassesCleanRun(t *testing.T) {
	w := NewWorld(4)
	w.SetDeadline(time.Minute)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []int64{1})
		} else if c.Rank() == 1 {
			c.Recv(0, 0)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("run under a generous deadline failed: %v", err)
	}
}
