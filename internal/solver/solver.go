// Package solver provides the edge-based proxy flow solver that drives the
// adaption loop. The paper's framework needs three things from its flow
// solver: vertex-stored solution variables updated by edge loops, a
// per-edge error indicator to target adaption, and a per-iteration
// per-element cost (Titer) for the gain/cost model. This proxy — explicit
// pseudo-Laplacian smoothing with optional source forcing — supplies all
// three with the same data-access pattern as the unstructured Euler
// solvers the paper couples to (edge loops over vertex data).
package solver

import (
	"math"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/mesh"
)

// Solver holds a vertex-stored scalar solution on a mesh.
type Solver struct {
	M *mesh.Mesh
	// U is the solution value at each vertex (indexed by VertID).
	U []float64
	// Relax is the explicit smoothing factor in (0, 1].
	Relax float64
}

// New initializes the solution from the given field.
func New(m *mesh.Mesh, field func(geom.Vec3) float64) *Solver {
	s := &Solver{M: m, U: make([]float64, len(m.Verts)), Relax: 0.5}
	for i := range m.Verts {
		if !m.Verts[i].Dead {
			s.U[i] = field(m.Verts[i].Pos)
		}
	}
	return s
}

// Iterate performs n explicit edge-based smoothing sweeps: every active
// edge exchanges flux proportional to the solution difference of its
// endpoints, and each vertex relaxes toward its edge-neighbour average.
func (s *Solver) Iterate(n int) {
	m := s.M
	flux := make([]float64, len(m.Verts))
	deg := make([]float64, len(m.Verts))
	for it := 0; it < n; it++ {
		for i := range flux {
			flux[i] = 0
			deg[i] = 0
		}
		for ei := range m.Edges {
			ed := &m.Edges[ei]
			if ed.Dead || ed.Bisected() || len(ed.Elems) == 0 {
				continue
			}
			a, b := ed.V[0], ed.V[1]
			d := s.U[b] - s.U[a]
			flux[a] += d
			flux[b] -= d
			deg[a]++
			deg[b]++
		}
		for i := range s.U {
			if deg[i] > 0 {
				s.U[i] += s.Relax * flux[i] / deg[i]
			}
		}
	}
}

// EdgeError returns the per-edge error indicator |U(b) − U(a)| scaled by
// edge length — large where the solution varies rapidly, which is where
// the paper targets refinement. Indexed by EdgeID; inactive edges get 0.
func (s *Solver) EdgeError() []float64 {
	m := s.M
	errv := make([]float64, len(m.Edges))
	for ei := range m.Edges {
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() || len(ed.Elems) == 0 {
			continue
		}
		errv[ei] = math.Abs(s.U[ed.V[1]]-s.U[ed.V[0]]) * m.EdgeLength(mesh.EdgeID(ei))
	}
	return errv
}

// SyncAfterAdaption extends the solution over vertices created since the
// last sync (linear interpolation along bisected edges, as the paper
// does) and clears the mesh's bisection log.
func (s *Solver) SyncAfterAdaption() {
	s.U = adapt.InterpolateBisections(s.M, s.U)
	s.M.ResetLog()
}

// Residual returns the RMS of the edge differences — a convergence
// indicator for tests.
func (s *Solver) Residual() float64 {
	m := s.M
	sum, n := 0.0, 0
	for ei := range m.Edges {
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() || len(ed.Elems) == 0 {
			continue
		}
		d := s.U[ed.V[1]] - s.U[ed.V[0]]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// GaussianPulse returns a field with a sharp spherical feature at c — the
// stand-in for a shock/vortex core that drives Local_1-style adaption.
func GaussianPulse(c geom.Vec3, width float64) func(geom.Vec3) float64 {
	return func(p geom.Vec3) float64 {
		d := p.Sub(c).Norm2()
		return math.Exp(-d / (2 * width * width))
	}
}

// PlanarShock returns a field with a steep tanh front at plane x = x0
// moving with the returned closure's x0 — the stand-in for the travelling
// shocks of unsteady computations (Local_2-style adaption).
func PlanarShock(x0, thickness float64) func(geom.Vec3) float64 {
	return func(p geom.Vec3) float64 {
		return math.Tanh((p.X - x0) / thickness)
	}
}
