package solver

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
)

func TestIterateSmooths(t *testing.T) {
	m := meshgen.SmallBox()
	s := New(m, GaussianPulse(geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, 0.1))
	r0 := s.Residual()
	s.Iterate(20)
	r1 := s.Residual()
	if r1 >= r0 {
		t.Errorf("smoothing did not reduce residual: %g -> %g", r0, r1)
	}
}

func TestIterateConservesConstant(t *testing.T) {
	m := meshgen.SmallBox()
	s := New(m, func(geom.Vec3) float64 { return 3.5 })
	s.Iterate(5)
	for i, u := range s.U {
		if math.Abs(u-3.5) > 1e-12 {
			t.Fatalf("vertex %d drifted to %g", i, u)
		}
	}
	if s.Residual() > 1e-12 {
		t.Error("constant field has nonzero residual")
	}
}

func TestEdgeErrorLocatesFeature(t *testing.T) {
	m := meshgen.SmallBox()
	c := geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	s := New(m, GaussianPulse(c, 0.15))
	errv := s.EdgeError()
	// The highest-error edge must be near the pulse, the lowest far away.
	best, worst := -1, -1
	for ei, e := range errv {
		if e == 0 {
			continue
		}
		if best < 0 || e > errv[best] {
			best = ei
		}
		if worst < 0 || e < errv[worst] {
			worst = ei
		}
	}
	if best < 0 {
		t.Fatal("no error values")
	}
	if m.EdgeMid(mesh.EdgeID(best)).Dist(c) > m.EdgeMid(mesh.EdgeID(worst)).Dist(c) {
		t.Error("error indicator does not peak near the feature")
	}
}

func TestSyncAfterAdaption(t *testing.T) {
	m := meshgen.SmallBox()
	s := New(m, PlanarShock(0.5, 0.1))
	a := adapt.New(m)
	a.MarkRegion(geom.AABB{Min: geom.Vec3{X: 0.3}, Max: geom.Vec3{X: 0.7, Y: 1, Z: 1}}, adapt.MarkRefine)
	a.Refine()
	s.SyncAfterAdaption()
	if len(s.U) != len(m.Verts) {
		t.Fatalf("solution has %d entries for %d verts", len(s.U), len(m.Verts))
	}
	// The interpolated field must stay within the original bounds.
	for i, u := range s.U {
		if m.Verts[i].Dead {
			continue
		}
		if u < -1-1e-9 || u > 1+1e-9 {
			t.Fatalf("vertex %d out of range: %g", i, u)
		}
	}
	// And a second sync must be a no-op (log cleared).
	n := len(s.U)
	s.SyncAfterAdaption()
	if len(s.U) != n {
		t.Error("second sync changed the field")
	}
}

func TestErrorDrivenAdaptionLoop(t *testing.T) {
	// End-to-end: solve, mark by error, refine, sync — sizes grow where
	// the shock sits.
	m := meshgen.SmallBox()
	s := New(m, PlanarShock(0.5, 0.05))
	a := adapt.New(m)
	before := m.NumActiveElems()
	errv := s.EdgeError()
	hi := percentile(errv, 0.9)
	nr, _ := a.MarkError(errv, hi, -1)
	if nr == 0 {
		t.Fatal("no edges targeted")
	}
	a.Refine()
	s.SyncAfterAdaption()
	if m.NumActiveElems() <= before {
		t.Error("no growth")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	// Refined elements should cluster near the shock plane x=0.5.
	var nearSum, farSum int
	for i := range m.Elems {
		el := &m.Elems[i]
		if !el.Active() || el.Level == 0 {
			continue
		}
		if math.Abs(m.ElemCentroid(mesh.ElemID(i)).X-0.5) < 0.25 {
			nearSum++
		} else {
			farSum++
		}
	}
	if nearSum <= farSum {
		t.Errorf("refinement did not localize: near=%d far=%d", nearSum, farSum)
	}
}

func percentile(v []float64, q float64) float64 {
	var pos []float64
	for _, x := range v {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return 0
	}
	// Nth element via simple sort.
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && pos[j] < pos[j-1]; j-- {
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
	idx := int(q * float64(len(pos)))
	if idx >= len(pos) {
		idx = len(pos) - 1
	}
	return pos[idx]
}
