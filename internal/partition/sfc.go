package partition

import (
	"sort"

	"plum/internal/dual"
	"plum/internal/sfc"
)

// SFCPartitioner partitions the dual graph geometrically along a
// space-filling curve: element centroids are quantized onto the curve's
// lattice, sorted by curve key, and the sorted sequence is cut into k
// weighted chunks. Curve locality makes the chunks spatially compact, and
// the whole construction is O(n log n) — no eigen-solves.
//
// The curve order depends only on the centroids, which are fixed for the
// lifetime of the dual graph (the paper's central invariant: the initial
// mesh never changes). An SFCPartitioner therefore sorts once and
// repartitions after every adaption step in O(n) — a single prefix-sum
// scan over the cached order with the updated Wcomp weights — which makes
// incremental repartitioning essentially free next to the remap itself.
type SFCPartitioner struct {
	// Curve is the space-filling curve used for ordering.
	Curve sfc.Curve
	// order holds the dual vertices sorted by curve key.
	order []int32
	// LastOps records the abstract operation count of the most recent
	// call (NewSFC or Repartition) for machine-model cost accounting,
	// mirroring remap.Similarity.LastOps.
	LastOps int64
}

// NewSFC builds the cached curve order of g's centroids (the O(n log n)
// part: key generation plus one sort).
func NewSFC(g *dual.Graph, c sfc.Curve) *SFCPartitioner {
	keys := sfc.Keys(c, g.Centroid)
	s := &SFCPartitioner{Curve: c, order: make([]int32, g.N)}
	for i := range s.order {
		s.order[i] = int32(i)
	}
	sort.Slice(s.order, func(a, b int) bool { return keys[s.order[a]] < keys[s.order[b]] })
	// n key generations + n log2 n comparisons, for model timing.
	s.LastOps = int64(g.N) + int64(g.N)*int64(log2ceil(g.N))
	return s
}

// Repartition cuts the cached curve order into k chunks balancing the
// graph's *current* Wcomp, in O(n). It is safe to call repeatedly as the
// weights evolve across adaption steps; the sorted order is reused.
//
// Balance guarantee (before refinement): each chunk receives the vertices
// whose weighted-midpoint prefix falls in one of k equal windows of the
// total weight, so a chunk's weight exceeds ΣW/k by at most max(Wcomp) —
// i.e. Imbalance ≤ 1 + k·max(Wcomp)/ΣW. A subsequent FM pass (see SFC)
// reduces the cut while keeping every part within the larger of that
// bound and its own 3% tolerance: Wmax ≤ max(ΣW/k + max(Wcomp), 1.03·ΣW/k).
func (s *SFCPartitioner) Repartition(g *dual.Graph, k int) Assignment {
	n := len(s.order)
	asg := make(Assignment, n)
	if k <= 1 || n == 0 {
		s.LastOps = int64(n)
		return asg
	}
	if k > n {
		k = n
	}

	var total int64
	for _, w := range g.Wcomp {
		total += w
	}

	// Chunk boundaries: vertex i (in curve order) belongs to the window
	// containing the midpoint of its weight interval [prefix, prefix+w).
	// Midpoints are increasing along the order, so chunks are contiguous.
	bounds := make([]int, k+1)
	bounds[k] = n
	if total == 0 {
		// All weights zero: equal-count cuts.
		for p := 1; p < k; p++ {
			bounds[p] = p * n / k
		}
	} else {
		for p := 1; p < k; p++ {
			bounds[p] = -1
		}
		var prefix int64
		for i, v := range s.order {
			mid := float64(prefix) + float64(g.Wcomp[v])/2
			p := int(mid * float64(k) / float64(total))
			if p > k-1 {
				p = k - 1
			}
			// First vertex of each window starts that window's chunk.
			for q := p; q >= 1 && bounds[q] < 0; q-- {
				bounds[q] = i
			}
			prefix += g.Wcomp[v]
		}
		// Windows no midpoint reached are empty chunks ending where the
		// next chunk starts (repaired below).
		for p := k - 1; p >= 1; p-- {
			if bounds[p] < 0 {
				bounds[p] = bounds[p+1]
			}
		}
	}
	// Every chunk must be non-empty: clamp boundaries to leave room on
	// both sides (possible since k ≤ n).
	for p := 1; p < k; p++ {
		if bounds[p] < bounds[p-1]+1 {
			bounds[p] = bounds[p-1] + 1
		}
	}
	for p := k - 1; p >= 1; p-- {
		if bounds[p] > bounds[p+1]-1 {
			bounds[p] = bounds[p+1] - 1
		}
	}

	for p := 0; p < k; p++ {
		for i := bounds[p]; i < bounds[p+1]; i++ {
			asg[s.order[i]] = int32(p)
		}
	}
	s.LastOps = int64(n)
	return asg
}

// SFC is the one-shot entry point used by Partition: build the curve
// order, cut it, and smooth the chunk boundaries with the existing
// Fiduccia–Mattheyses machinery (curve cuts are jagged at the element
// scale; one cheap FM pass recovers most of the cut quality).
func SFC(g *dual.Graph, k int, c sfc.Curve) Assignment {
	s := NewSFC(g, c)
	asg := s.Repartition(g, k)
	FMRefine(g, asg, k, 2)
	return asg
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
