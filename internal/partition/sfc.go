package partition

import (
	"sort"

	"plum/internal/chunk"
	"plum/internal/dual"
	"plum/internal/psort"
	"plum/internal/sfc"
)

// repartSerialCutoff is the vertex count below which Repartition's chunked
// worker pool costs more than it recovers and the serial scan is used.
const repartSerialCutoff = 1 << 13

// SFCPartitioner partitions the dual graph geometrically along a
// space-filling curve: element centroids are quantized onto the curve's
// lattice, sorted by curve key, and the sorted sequence is cut into k
// weighted chunks. Curve locality makes the chunks spatially compact, and
// the whole construction is O(n log n) — no eigen-solves.
//
// Every phase is parallel: key generation (sfc.KeysWorkers), the key sort
// (psort's sample sort), and the weighted chunk cut (chunked prefix sums).
// Equal keys are tie-broken by vertex index, so the curve order — and
// therefore every Assignment — is byte-identical at any worker count.
//
// The curve order depends only on the centroids, which are fixed for the
// lifetime of the dual graph (the paper's central invariant: the initial
// mesh never changes). An SFCPartitioner therefore sorts once and
// repartitions after every adaption step in O(n) — a prefix-sum scan over
// the cached order with the updated Wcomp weights — which makes
// incremental repartitioning essentially free next to the remap itself.
type SFCPartitioner struct {
	// Curve is the space-filling curve used for ordering.
	Curve sfc.Curve
	// Workers is the resolved worker count used by the parallel phases
	// (≥ 1; construction resolves 0 to GOMAXPROCS).
	Workers int
	// order holds the dual vertices sorted by curve key.
	order []int32
	// LastOps records the abstract operation count of the most recent
	// call (NewSFC or Repartition) summed over all workers, for
	// machine-model cost accounting, mirroring remap.Similarity.LastOps.
	LastOps int64
	// LastCritOps is the critical-path share of LastOps: the op count of
	// the slowest worker plus the serial merge terms. machine.Model
	// charges parallel time from this figure; for Workers == 1 it equals
	// LastOps.
	LastCritOps int64
}

// NewSFC builds the cached curve order of g's centroids with a
// GOMAXPROCS-sized worker pool (the O(n log n) part: key generation plus
// one sample sort).
func NewSFC(g *dual.Graph, c sfc.Curve) *SFCPartitioner {
	return NewSFCWorkers(g, c, 0)
}

// NewSFCWorkers is NewSFC with an explicit worker knob (≤ 0 = GOMAXPROCS).
// The curve order is identical at every worker count.
func NewSFCWorkers(g *dual.Graph, c sfc.Curve, workers int) *SFCPartitioner {
	w := chunk.Workers(workers)
	s := &SFCPartitioner{Curve: c, Workers: w, order: make([]int32, g.N)}
	keys := sfc.KeysWorkers(c, g.Centroid, w)
	for i := range s.order {
		s.order[i] = int32(i)
	}
	psort.SortIndexByKey(keys, s.order, w)

	// n key generations + n log2 n comparisons, for model timing. The
	// critical path divides each phase by the worker count that phase
	// *actually* ran with — both fall back to serial below their size
	// cutoffs, and charging the knob instead would undercount the work a
	// small graph really costs. The sample-sort's serial splitter
	// selection is O(w² · oversample · log) — noise at any realistic
	// n/w — and is folded into the +w term.
	n := int64(g.N)
	logn := int64(log2ceil(g.N))
	kw := int64(sfc.EffectiveKeyWorkers(g.N, w))
	sw := int64(psort.SortWorkers(g.N, w))
	s.LastOps = n + n*logn
	s.LastCritOps = critClamp(ceilDiv(n, kw)+ceilDiv(n*logn, sw)+sw-1, s.LastOps)
	return s
}

// critClamp caps a critical-path estimate at the total: the serial merge
// terms can otherwise nudge it past the total at tiny n or w=1, and no
// schedule is slower than running everything serially.
func critClamp(crit, total int64) int64 {
	if crit > total {
		return total
	}
	return crit
}

// Repartition cuts the cached curve order into k chunks balancing the
// graph's *current* Wcomp, in O(n) work and O(n/Workers) critical path.
// It is safe to call repeatedly as the weights evolve across adaption
// steps; the sorted order is reused. The cut is identical at every worker
// count: the chunked scan reproduces the serial prefix-sum windows
// exactly.
//
// Balance guarantee (before refinement): each chunk receives the vertices
// whose weighted-midpoint prefix falls in one of k equal windows of the
// total weight, so a chunk's weight exceeds ΣW/k by at most max(Wcomp) —
// i.e. Imbalance ≤ 1 + k·max(Wcomp)/ΣW. A subsequent FM pass (see SFC)
// reduces the cut while keeping every part within the larger of that
// bound and its own 3% tolerance: Wmax ≤ max(ΣW/k + max(Wcomp), 1.03·ΣW/k).
func (s *SFCPartitioner) Repartition(g *dual.Graph, k int) Assignment {
	n := len(s.order)
	asg := make(Assignment, n)
	if k <= 1 || n == 0 {
		s.LastOps = int64(n)
		s.LastCritOps = int64(n)
		return asg
	}
	if k > n {
		k = n
	}
	w := s.Workers
	if w < 1 {
		w = chunk.Workers(w)
	}

	// Resolve the worker count the cut actually runs with; the serial
	// fallback must also be *charged* serially.
	if w > 1 && n < repartSerialCutoff {
		w = 1
	}
	var bounds []int
	if w <= 1 {
		bounds = s.cutSerial(g, k)
	} else {
		bounds = s.cutParallel(g, k, w)
	}
	repairBounds(bounds, k, n)

	// Fill: every vertex between consecutive bounds belongs to that part.
	// Chunked over the order; each index is written exactly once.
	chunk.For(n, w, func(_, lo, hi int) {
		p := sort.Search(k, func(p int) bool { return bounds[p+1] > lo })
		for i := lo; i < hi; i++ {
			for i >= bounds[p+1] {
				p++
			}
			asg[s.order[i]] = int32(p)
		}
	})

	// Weight-sum scan + window scan + fill, for model timing.
	s.LastOps = 3 * int64(n)
	s.LastCritOps = critClamp(ceilDiv(3*int64(n), int64(w))+int64(k)+int64(w), s.LastOps)
	return asg
}

// windowOf returns the weight window of a vertex whose interval starts
// at prefix with weight wv: the window containing the interval midpoint.
// This is THE expression both cut paths share — the worker-count
// invariance of Repartition rests on the parallel replay performing
// bit-identical float64 arithmetic to the serial scan, so any change here
// changes both paths together.
func windowOf(prefix, wv, total int64, k int) int {
	mid := float64(prefix) + float64(wv)/2
	p := int(mid * float64(k) / float64(total))
	if p > k-1 {
		return k - 1
	}
	return p
}

// equalCountBounds fills the all-weights-zero cut: equal-count chunks.
func equalCountBounds(bounds []int, k, n int) {
	for p := 1; p < k; p++ {
		bounds[p] = p * n / k
	}
}

// cutSerial computes the raw window boundaries with a single prefix-sum
// scan — the reference semantics cutParallel must reproduce exactly.
func (s *SFCPartitioner) cutSerial(g *dual.Graph, k int) []int {
	n := len(s.order)
	var total int64
	for _, w := range g.Wcomp {
		total += w
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	if total == 0 {
		equalCountBounds(bounds, k, n)
		return bounds
	}
	for p := 1; p < k; p++ {
		bounds[p] = -1
	}
	// Chunk boundaries: vertex i (in curve order) belongs to the window
	// containing the midpoint of its weight interval [prefix, prefix+w).
	// Midpoints are increasing along the order, so chunks are contiguous.
	var prefix int64
	for i, v := range s.order {
		p := windowOf(prefix, g.Wcomp[v], total, k)
		// First vertex of each window starts that window's chunk.
		for q := p; q >= 1 && bounds[q] < 0; q-- {
			bounds[q] = i
		}
		prefix += g.Wcomp[v]
	}
	return bounds
}

// cutParallel computes the same boundaries as cutSerial with a two-pass
// chunked prefix sum: pass one accumulates per-chunk weight totals, a
// short serial scan turns them into chunk offsets, and pass two replays
// each chunk with its exact global prefix, recording the first vertex
// landing in each weight window. Because every per-vertex computation
// sees the same int64 prefix and performs the same float64 arithmetic as
// the serial scan, the resulting windows are bit-identical.
func (s *SFCPartitioner) cutParallel(g *dual.Graph, k, w int) []int {
	n := len(s.order)
	nc := chunk.Count(n, w)

	// Pass 1: per-chunk weight sums → exclusive chunk offsets.
	chunkSum := make([]int64, nc)
	chunk.For(n, w, func(c, lo, hi int) {
		var sum int64
		for _, v := range s.order[lo:hi] {
			sum += g.Wcomp[v]
		}
		chunkSum[c] = sum
	})
	offset := make([]int64, nc)
	var total int64
	for c, sum := range chunkSum {
		offset[c] = total
		total += sum
	}

	bounds := make([]int, k+1)
	bounds[k] = n
	if total == 0 {
		equalCountBounds(bounds, k, n)
		return bounds
	}

	// Pass 2: window-first scan per chunk. firsts[chunk][p] is the first
	// in-chunk curve position whose weight midpoint lands in window p, or
	// -1. Windows are nondecreasing along the order, so only the first
	// hit per window matters.
	firsts := make([][]int32, nc)
	chunk.For(n, w, func(c, lo, hi int) {
		fw := make([]int32, k)
		for p := range fw {
			fw[p] = -1
		}
		prefix := offset[c]
		for i := lo; i < hi; i++ {
			v := s.order[i]
			p := windowOf(prefix, g.Wcomp[v], total, k)
			if fw[p] < 0 {
				fw[p] = int32(i)
			}
			prefix += g.Wcomp[v]
		}
		firsts[c] = fw
	})

	// Merge: the global first of window p is the earliest chunk's first
	// (chunks cover increasing index ranges). The serial scan's backfill
	// assigns bounds[q] the first vertex whose window is ≥ q, i.e. the
	// minimum first over all windows ≥ q — a reverse running minimum.
	fw := make([]int32, k)
	for p := range fw {
		fw[p] = -1
	}
	for _, cf := range firsts {
		for p, i := range cf {
			if fw[p] < 0 && i >= 0 {
				fw[p] = i
			}
		}
	}
	carry := int32(-1)
	for p := k - 1; p >= 1; p-- {
		if fw[p] >= 0 && (carry < 0 || fw[p] < carry) {
			carry = fw[p]
		}
		bounds[p] = int(carry)
	}
	return bounds
}

// repairBounds finishes the raw windows: empty trailing windows inherit
// the next chunk's start, and every chunk is clamped to be non-empty
// (possible since k ≤ n).
func repairBounds(bounds []int, k, n int) {
	for p := k - 1; p >= 1; p-- {
		if bounds[p] < 0 {
			bounds[p] = bounds[p+1]
		}
	}
	for p := 1; p < k; p++ {
		if bounds[p] < bounds[p-1]+1 {
			bounds[p] = bounds[p-1] + 1
		}
	}
	for p := k - 1; p >= 1; p-- {
		if bounds[p] > bounds[p+1]-1 {
			bounds[p] = bounds[p+1] - 1
		}
	}
}

// SFC is the one-shot entry point used by Partition: build the curve
// order, cut it, and smooth the chunk boundaries with the default
// refinement backend (curve cuts are jagged at the element scale; one
// cheap boundary pass recovers most of the cut quality).
func SFC(g *dual.Graph, k int, c sfc.Curve) Assignment {
	asg, _ := sfcCounted(g, k, c, Options{})
	return asg
}

// sfcCounted runs the full SFC pipeline and reports its total and
// critical-path op counts: sort + incremental cut (compute-bound) plus
// the configured refiner's smoothing pass (memory-bound, tracked in the
// Mem share).
func sfcCounted(g *dual.Graph, k int, c sfc.Curve, opt Options) (Assignment, Ops) {
	s := NewSFCWorkers(g, c, opt.Workers)
	ops := Ops{Total: s.LastOps, Crit: s.LastCritOps}
	asg := s.Repartition(g, k)
	ops.Total += s.LastOps
	ops.Crit += s.LastCritOps
	ops.AddMem(opt.refinerFor(g.N).Refine(g, asg, k, 2))
	return asg, ops
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
