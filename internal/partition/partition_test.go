package partition

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/refine"
	"plum/internal/sfc"
)

func testGraph(t *testing.T) *dual.Graph {
	t.Helper()
	m := meshgen.Box(6, 6, 6, geom.Vec3{X: 1, Y: 1, Z: 1})
	return dual.Build(m)
}

func checkAssignment(t *testing.T, g *dual.Graph, asg Assignment, k int, method string, maxImb float64) {
	t.Helper()
	if len(asg) != g.N {
		t.Fatalf("%s: assignment length %d != %d", method, len(asg), g.N)
	}
	seen := make([]int64, k)
	for v, p := range asg {
		if p < 0 || int(p) >= k {
			t.Fatalf("%s: vertex %d assigned to invalid part %d", method, v, p)
		}
		seen[p]++
	}
	for p, n := range seen {
		if n == 0 {
			t.Errorf("%s: part %d empty", method, p)
		}
	}
	if imb := Imbalance(g, asg, k); imb > maxImb {
		t.Errorf("%s: imbalance %.3f > %.3f", method, imb, maxImb)
	}
	if cut := EdgeCut(g, asg); cut <= 0 {
		t.Errorf("%s: edge cut %d (no boundary?)", method, cut)
	}
}

func TestPartitionersUniformWeights(t *testing.T) {
	g := testGraph(t)
	for _, m := range Methods {
		for _, k := range []int{2, 4, 7, 8} {
			asg := Partition(g, k, m)
			checkAssignment(t, g, asg, k, m.String(), 1.35)
		}
	}
}

func TestPartitionQualityOrdering(t *testing.T) {
	// Spectral/multilevel should not be wildly worse than graph growing
	// on a regular box (sanity on cut quality).
	g := testGraph(t)
	k := 8
	cutGrow := EdgeCut(g, GraphGrow(g, k, 1))
	cutML := EdgeCut(g, Multilevel(g, k))
	if cutML > 3*cutGrow {
		t.Errorf("multilevel cut %d vs graphgrow %d: multilevel much worse", cutML, cutGrow)
	}
}

func TestPartitionAdaptedWeights(t *testing.T) {
	// After refining a corner region, the partitioner must still balance
	// Wcomp within tolerance — this is the repartitioning step of the
	// paper's framework.
	m := meshgen.Box(6, 6, 6, geom.Vec3{X: 1, Y: 1, Z: 1})
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(m)

	if Imbalance(g, Partition(g, 8, MethodGraphGrow), 8) > 1.5 {
		// Graph growing is weight-aware; the refined corner must not
		// produce a wildly imbalanced partition.
		t.Error("graphgrow ignored adapted weights")
	}
	for _, meth := range []Method{MethodInertial, MethodSpectral, MethodMultilevel} {
		asg := Partition(g, 8, meth)
		if imb := Imbalance(g, asg, 8); imb > 1.6 {
			t.Errorf("%s: imbalance %.3f on adapted weights", meth, imb)
		}
	}
	// The SFC backends target the paper's operating point: ≤ 1.10.
	for _, meth := range []Method{MethodMortonSFC, MethodHilbertSFC} {
		asg := Partition(g, 8, meth)
		if imb := Imbalance(g, asg, 8); imb > 1.10 {
			t.Errorf("%s: imbalance %.3f > 1.10 on adapted weights", meth, imb)
		}
	}
}

// TestSFCIncrementalRepartition exercises the cached-order path: after the
// weights change (an adaption step), Repartition must rebalance in one
// O(n) scan and match the quality of a from-scratch SFC partition.
func TestSFCIncrementalRepartition(t *testing.T) {
	m := meshgen.Box(6, 6, 6, geom.Vec3{X: 1, Y: 1, Z: 1})
	g := dual.Build(m)
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		s := NewSFC(g, c)
		sortOps := s.LastOps
		asg := s.Repartition(g, 8)
		if s.LastOps >= sortOps {
			t.Errorf("%v: incremental scan (%d ops) not cheaper than sort (%d ops)", c, s.LastOps, sortOps)
		}
		checkAssignment(t, g, asg, 8, c.String(), 1.35)

		// Refine a corner; the cached order must rebalance the new weights.
		a := adapt.New(m)
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}, adapt.MarkRefine)
		a.Refine()
		g.UpdateWeights(m)
		asg2 := s.Repartition(g, 8)
		refine.NewBandFM(0).Refine(g, asg2, 8, 2)
		checkAssignment(t, g, asg2, 8, c.String()+"/adapted", 1.10)

		scratch := SFC(g, 8, c)
		if imbI, imbS := Imbalance(g, asg2, 8), Imbalance(g, scratch, 8); imbI > imbS*1.05 {
			t.Errorf("%v: incremental imbalance %.3f much worse than scratch %.3f", c, imbI, imbS)
		}
	}
}

// TestSFCImbalanceBound checks the documented balance guarantee of the
// raw chunk cut (no FM pass): Wmax ≤ ΣW/k + max(Wcomp).
func TestSFCImbalanceBound(t *testing.T) {
	m := meshgen.Box(6, 6, 6, geom.Vec3{X: 1, Y: 1, Z: 1})
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 1, Y: 1, Z: 1}, Radius: 0.6}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(m)

	var total, maxW int64
	for _, w := range g.Wcomp {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		for _, k := range []int{2, 5, 8, 16} {
			asg := NewSFC(g, c).Repartition(g, k)
			ws := Weights(g, asg, k)
			bound := float64(total)/float64(k) + float64(maxW) + 1e-6
			for p, w := range ws {
				if float64(w) > bound {
					t.Errorf("%v k=%d: part %d weight %d exceeds bound %.1f", c, k, p, w, bound)
				}
			}
		}
	}
}

func TestImbalancePerfect(t *testing.T) {
	g := &dual.Graph{
		N:          4,
		Adj:        [][]int32{{1}, {0, 2}, {1, 3}, {2}},
		Wcomp:      []int64{1, 1, 1, 1},
		Wremap:     []int64{1, 1, 1, 1},
		EdgeWeight: 1,
	}
	asg := Assignment{0, 0, 1, 1}
	if imb := Imbalance(g, asg, 2); imb != 1 {
		t.Errorf("imbalance = %g, want 1", imb)
	}
	if cut := EdgeCut(g, asg); cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	w := Weights(g, asg, 2)
	if w[0] != 2 || w[1] != 2 {
		t.Errorf("weights = %v", w)
	}
}

// TestRefinersImproveCut pins the partition-facing contract of every
// refinement backend on a mesh dual: starting from a deliberately bad
// odd/even striping, the FM-family backends must reduce the cut, and
// none may break balance. (The per-backend algorithmic contracts live in
// internal/refine's own tests.)
func TestRefinersImproveCut(t *testing.T) {
	g := testGraph(t)
	for _, name := range refine.Names {
		r, ok := refine.ByName(name, 0)
		if !ok {
			t.Fatalf("refiner %q missing", name)
		}
		asg := make(Assignment, g.N)
		for i := range asg {
			asg[i] = int32(i % 2)
		}
		before := EdgeCut(g, asg)
		ops := r.Refine(g, asg, 2, 8)
		after := EdgeCut(g, asg)
		if name != "diffusion" && after >= before {
			t.Errorf("%s did not improve cut: %d -> %d", name, before, after)
		}
		if imb := Imbalance(g, asg, 2); imb > 1.2 {
			t.Errorf("%s broke balance: %.3f", name, imb)
		}
		if ops.Total <= 0 || ops.Crit <= 0 || ops.Crit > ops.Total {
			t.Errorf("%s: bad op accounting %+v", name, ops)
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := testGraph(t)
	asg := Partition(g, 1, MethodMultilevel)
	for _, p := range asg {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
}

// TestPartitionOversizedK documents the contract for callers that violate
// k ≤ N: the result may contain empty parts, but no method may panic and
// every entry must still land in [0, k).
func TestPartitionOversizedK(t *testing.T) {
	g := &dual.Graph{
		N:          2,
		Adj:        [][]int32{{1}, {0}},
		Wcomp:      []int64{3, 5},
		Wremap:     []int64{3, 5},
		EdgeWeight: 1,
		Centroid:   []geom.Vec3{{X: 0}, {X: 1}},
	}
	for _, m := range Methods {
		for _, k := range []int{3, 4, 9} {
			asg := Partition(g, k, m)
			if len(asg) != g.N {
				t.Fatalf("%v k=%d: assignment length %d", m, k, len(asg))
			}
			for v, p := range asg {
				if p < 0 || int(p) >= k {
					t.Errorf("%v k=%d: vertex %d in invalid part %d", m, k, v, p)
				}
			}
		}
	}
}

func TestAgglomerate(t *testing.T) {
	g := testGraph(t)
	cg, group := g.Agglomerate(8)
	if cg.N >= g.N {
		t.Fatalf("agglomeration did not shrink: %d -> %d", g.N, cg.N)
	}
	if len(group) != g.N {
		t.Fatal("group map wrong length")
	}
	if cg.TotalWcomp() != g.TotalWcomp() {
		t.Errorf("weight not conserved: %d != %d", cg.TotalWcomp(), g.TotalWcomp())
	}
	// Partitioning the agglomerated graph must still work.
	asg := Partition(cg, 4, MethodMultilevel)
	checkAssignment(t, cg, asg, 4, "agglomerated", 1.6)
}

// TestSFCWorkerParity is the determinism contract of the parallel
// pipeline: the curve order and every Assignment must be identical at any
// worker count, on a graph large enough to engage the parallel sample
// sort and the chunked cut (n > the serial cutoffs), with heavy-tailed
// weights and duplicate curve keys.
func TestSFCWorkerParity(t *testing.T) {
	g := gridGraph(24, 24, 16, 5) // 9216 vertices > repartSerialCutoff
	for _, c := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		ref := NewSFCWorkers(g, c, 1)
		for _, w := range []int{2, 3, 4, 8} {
			s := NewSFCWorkers(g, c, w)
			for _, k := range []int{1, 2, 7, 16, 61} {
				want := ref.Repartition(g, k)
				got := s.Repartition(g, k)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%v workers=%d k=%d: vertex %d in part %d, serial says %d",
							c, w, k, v, got[v], want[v])
					}
				}
			}
			if s.LastCritOps > s.LastOps {
				t.Errorf("%v workers=%d: critical path %d exceeds total %d",
					c, w, s.LastCritOps, s.LastOps)
			}
		}
	}
}

// TestSFCWorkerParityAfterWeightUpdate re-runs the parity check after the
// weights change (the incremental-repartition path the framework actually
// exercises every adaption step).
func TestSFCWorkerParityAfterWeightUpdate(t *testing.T) {
	g := gridGraph(24, 24, 16, 11)
	serial := NewSFCWorkers(g, sfc.Hilbert, 1)
	par4 := NewSFCWorkers(g, sfc.Hilbert, 4)
	// Mutate weights like a refinement step would: blow up one corner.
	for v := 0; v < g.N/8; v++ {
		g.Wcomp[v] *= 64
	}
	for _, k := range []int{2, 13, 32} {
		want := serial.Repartition(g, k)
		got := par4.Repartition(g, k)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("k=%d: parallel cut diverges from serial at vertex %d after weight update", k, v)
			}
		}
	}
}

// TestSFCCritOpsHonestOnSerialFallback pins the cost model to the
// execution path: when the graph is too small for the parallel phases
// (every cutoff wins), a large worker knob must NOT discount the critical
// path — the work ran serially and must be charged serially.
func TestSFCCritOpsHonestOnSerialFallback(t *testing.T) {
	g := gridGraph(8, 8, 8, 3) // 512 vertices: below every parallel cutoff
	s := NewSFCWorkers(g, sfc.Morton, 8)
	if s.LastCritOps != s.LastOps {
		t.Errorf("build: crit %d != total %d despite serial fallback", s.LastCritOps, s.LastOps)
	}
	s.Repartition(g, 4)
	if s.LastCritOps != s.LastOps {
		t.Errorf("repartition: crit %d != total %d despite serial fallback", s.LastCritOps, s.LastOps)
	}
	// And on a graph large enough to engage the parallel paths, the
	// discount must appear.
	big := gridGraph(24, 24, 16, 3) // 9216 > every cutoff
	sb := NewSFCWorkers(big, sfc.Morton, 8)
	if sb.LastCritOps >= sb.LastOps {
		t.Errorf("parallel build not discounted: crit %d vs total %d", sb.LastCritOps, sb.LastOps)
	}
	sb.Repartition(big, 4)
	if sb.LastCritOps >= sb.LastOps {
		t.Errorf("parallel repartition not discounted: crit %d vs total %d", sb.LastCritOps, sb.LastOps)
	}
}

// TestPartitionCountedReportsWork pins the honest-cost contract: every
// backend reports nonzero total and critical-path ops, with Crit ≤ Total,
// and Partition returns the same assignment as PartitionCounted.
func TestPartitionCountedReportsWork(t *testing.T) {
	g := testGraph(t)
	for _, m := range Methods {
		asg, ops := PartitionCounted(g, 4, m, Options{})
		if ops.Total <= 0 || ops.Crit <= 0 {
			t.Errorf("%v: zero cost reported: %+v", m, ops)
		}
		if ops.Crit > ops.Total {
			t.Errorf("%v: critical path %d exceeds total %d", m, ops.Crit, ops.Total)
		}
		if ops.Total < int64(g.N) {
			t.Errorf("%v: total ops %d below one visit per vertex (n=%d)", m, ops.Total, g.N)
		}
		if ops.MemTotal > ops.Total || ops.MemCrit > ops.Crit || ops.MemTotal < 0 || ops.MemCrit < 0 {
			t.Errorf("%v: memory-bound share out of range: %+v", m, ops)
		}
		// The backends that smooth their cut must report the refinement
		// work in the Mem share; the pure bisection backends carry none.
		refines := m != MethodInertial && m != MethodSpectral
		if refines && (ops.MemTotal <= 0 || ops.MemCrit <= 0) {
			t.Errorf("%v: refinement work missing from the Mem share: %+v", m, ops)
		}
		if !refines && ops.MemTotal != 0 {
			t.Errorf("%v: unexpected Mem share %+v for a refinement-free backend", m, ops)
		}
		plain := Partition(g, 4, m)
		for v := range asg {
			if plain[v] != asg[v] {
				t.Fatalf("%v: Partition and PartitionCounted disagree at vertex %d", m, v)
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range Methods {
		if m.String() == "unknown" {
			t.Errorf("method %d has no name", m)
		}
		got, ok := MethodByName(m.String())
		if !ok || got != m {
			t.Errorf("MethodByName(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := MethodByName("nope"); ok {
		t.Error("MethodByName accepted an unknown name")
	}
}
