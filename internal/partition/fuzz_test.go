package partition

import (
	"math/rand"
	"testing"

	"plum/internal/dual"
	"plum/internal/geom"
)

// gridGraph builds a connected nx×ny×nz lattice dual graph with weights
// drawn from the given seed — a cheap stand-in for a mesh dual that lets
// the fuzzer explore shapes and weight distributions meshes never produce.
func gridGraph(nx, ny, nz int, seed int64) *dual.Graph {
	n := nx * ny * nz
	g := &dual.Graph{
		N:          n,
		Adj:        make([][]int32, n),
		Wcomp:      make([]int64, n),
		Wremap:     make([]int64, n),
		EdgeWeight: 1,
		Centroid:   make([]geom.Vec3, n),
	}
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	rng := rand.New(rand.NewSource(seed))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				g.Centroid[v] = geom.Vec3{X: float64(x), Y: float64(y), Z: float64(z)}
				// Heavy-tailed weights: mostly 1, occasionally huge, the
				// regime where naive median splits produce empty parts.
				w := int64(1)
				switch rng.Intn(8) {
				case 0:
					w = int64(1 + rng.Intn(20))
				case 1:
					w = int64(1 + rng.Intn(500))
				}
				g.Wcomp[v] = w
				g.Wremap[v] = w
				if x > 0 {
					g.Adj[v] = append(g.Adj[v], id(x-1, y, z))
					g.Adj[id(x-1, y, z)] = append(g.Adj[id(x-1, y, z)], v)
				}
				if y > 0 {
					g.Adj[v] = append(g.Adj[v], id(x, y-1, z))
					g.Adj[id(x, y-1, z)] = append(g.Adj[id(x, y-1, z)], v)
				}
				if z > 0 {
					g.Adj[v] = append(g.Adj[v], id(x, y, z-1))
					g.Adj[id(x, y, z-1)] = append(g.Adj[id(x, y, z-1)], v)
				}
			}
		}
	}
	return g
}

// FuzzPartitionAssignment is the repo-wide partitioner contract: every
// backend, on every connected graph with 1 ≤ k ≤ N, must return an
// Assignment where (a) every entry is in [0, k), (b) every part is
// non-empty, and (c) for the SFC backends the documented balance bound
// Wmax ≤ ΣW/k + max(Wcomp) holds.
func FuzzPartitionAssignment(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(3), uint8(4), uint8(0), int64(1))
	f.Add(uint8(6), uint8(1), uint8(1), uint8(5), uint8(3), int64(2))
	f.Add(uint8(4), uint8(4), uint8(2), uint8(8), uint8(5), int64(99))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(8), uint8(4), int64(7))
	f.Fuzz(func(t *testing.T, nx, ny, nz, kk, mi uint8, seed int64) {
		dims := func(d uint8) int { return 1 + int(d%6) }
		g := gridGraph(dims(nx), dims(ny), dims(nz), seed)
		k := 1 + int(kk)%g.N
		if k > 16 {
			k = 16
		}
		m := Methods[int(mi)%len(Methods)]

		asg := Partition(g, k, m)
		if len(asg) != g.N {
			t.Fatalf("%v: assignment length %d != %d", m, len(asg), g.N)
		}
		seen := make([]int64, k)
		counts := make([]int, k)
		for v, p := range asg {
			if p < 0 || int(p) >= k {
				t.Fatalf("%v k=%d: vertex %d assigned to invalid part %d", m, k, v, p)
			}
			seen[p] += g.Wcomp[v]
			counts[p]++
		}
		for p, c := range counts {
			if c == 0 {
				t.Fatalf("%v k=%d n=%d: part %d empty", m, k, g.N, p)
			}
		}

		if m == MethodMortonSFC || m == MethodHilbertSFC {
			var total, maxW int64
			for _, w := range g.Wcomp {
				total += w
				if w > maxW {
					maxW = w
				}
			}
			// Documented bound: the raw chunk cut satisfies
			// Wmax ≤ ΣW/k + max(Wcomp); the FM pass inside SFC may grow a
			// part up to its own 3% tolerance, so the post-refinement
			// guarantee is the larger of the two.
			avg := float64(total) / float64(k)
			bound := avg + float64(maxW)
			if fm := avg * 1.03; fm > bound {
				bound = fm
			}
			bound += 1e-6
			for p, w := range seen {
				if float64(w) > bound {
					t.Fatalf("%v k=%d: part %d weight %d exceeds documented bound %.1f", m, k, p, w, bound)
				}
			}
		}
	})
}
