// Package partition provides weighted graph partitioners for the dual
// graph, standing in for the Chaco package the paper uses ("multilevel
// spectral Lanczos partitioning algorithm with local Kernighan-Lin
// refinement"). The paper treats the partitioner as a pluggable black box;
// this package supplies the same family:
//
//   - GraphGrow:  greedy BFS graph growing (fast, moderate quality);
//   - InertialRB: recursive coordinate bisection along principal axes;
//   - SpectralRB: recursive spectral bisection using Lanczos Fiedler
//     vectors (internal/sparse);
//   - Multilevel: matching-based coarsening, spectral partitioning of the
//     coarse graph, and Kernighan–Lin/Fiduccia–Mattheyses boundary
//     refinement during uncoarsening — the Chaco-style default.
//
// All partitioners balance the dual graph's computational weights Wcomp.
package partition

import (
	"math"
	"math/rand"
	"slices"

	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/refine"
	"plum/internal/sfc"
	"plum/internal/sparse"
)

// Assignment maps each dual-graph vertex to a partition number.
type Assignment []int32

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Weights returns the total Wcomp per partition.
func Weights(g *dual.Graph, asg Assignment, k int) []int64 {
	w := make([]int64, k)
	for v, p := range asg {
		w[p] += g.Wcomp[v]
	}
	return w
}

// Imbalance returns the paper's load-imbalance factor Wmax/Wavg for the
// given partitioning (1.0 is perfect balance).
func Imbalance(g *dual.Graph, asg Assignment, k int) float64 {
	w := Weights(g, asg, k)
	var max, sum int64
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	avg := float64(sum) / float64(k)
	return float64(max) / avg
}

// EdgeCut returns the number of dual edges crossing partition boundaries
// (uniform edge weights, as in the paper's test cases).
func EdgeCut(g *dual.Graph, asg Assignment) int64 {
	var cut int64
	for v := range g.Adj {
		for _, w := range g.Adj[v] {
			if int32(v) < w && asg[v] != asg[w] {
				cut++
			}
		}
	}
	return cut * g.EdgeWeight
}

// Method selects a partitioning algorithm.
type Method int

// Available partitioners.
const (
	MethodGraphGrow Method = iota
	MethodInertial
	MethodSpectral
	MethodMultilevel
	// MethodMortonSFC and MethodHilbertSFC cut a space-filling-curve
	// ordering of the element centroids into weighted chunks (see sfc.go):
	// near-linear time, and O(n) incremental repartitioning via
	// SFCPartitioner.
	MethodMortonSFC
	MethodHilbertSFC
)

// Methods lists every available partitioner, in declaration order — the
// iteration table for experiments, benchmarks, and CLI validation.
var Methods = []Method{
	MethodGraphGrow, MethodInertial, MethodSpectral, MethodMultilevel,
	MethodMortonSFC, MethodHilbertSFC,
}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodGraphGrow:
		return "graphgrow"
	case MethodInertial:
		return "inertial"
	case MethodSpectral:
		return "spectral"
	case MethodMultilevel:
		return "multilevel"
	case MethodMortonSFC:
		return "morton"
	case MethodHilbertSFC:
		return "hilbert"
	}
	return "unknown"
}

// Curve returns the space-filling curve of an SFC method; ok is false
// for the graph partitioners.
func (m Method) Curve() (sfc.Curve, bool) {
	switch m {
	case MethodMortonSFC:
		return sfc.Morton, true
	case MethodHilbertSFC:
		return sfc.Hilbert, true
	}
	return 0, false
}

// MethodByName returns the partitioner with the given CLI name.
func MethodByName(name string) (Method, bool) {
	for _, m := range Methods {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Options configures a partitioning call.
type Options struct {
	// Workers bounds the worker-goroutine count of the parallel phases
	// (SFC key generation, sample sort, chunked weighted cut, boundary
	// refinement). ≤ 0 means runtime.GOMAXPROCS. Assignments are
	// identical at every worker count.
	Workers int
	// Seed drives randomized components (GraphGrow seeding, multilevel
	// matching order). 0 is treated as 1, the historical default.
	Seed int64
	// Refiner is the boundary-refinement backend applied by the backends
	// that smooth their cuts (GraphGrow, Multilevel, the SFC methods).
	// nil selects each backend's own default: refine.Default — the
	// deterministic band-limited parallel FM when the graph and worker
	// knob would actually run it parallel, the classic serial sweep
	// otherwise — for the SFC pipeline and GraphGrow, and always the
	// classic sweep for Multilevel (whose per-level graphs are small and
	// serial). A non-nil value wins everywhere.
	Refiner refine.Refiner
}

// refinerFor returns the configured refinement backend for an n-vertex
// graph, defaulting to refine.Default at the options' worker knob (the
// default of every backend except Multilevel — see multilevelCounted).
func (o Options) refinerFor(n int) refine.Refiner {
	if o.Refiner != nil {
		return o.Refiner
	}
	return refine.Default(n, o.Workers)
}

// Ops is the abstract work accounting of one partitioning call, charged
// to the remap acceptance rule via machine.Model.AlgOp.
type Ops struct {
	// Total is the op count summed over all workers — the energy/work
	// side, and what a serial machine would pay.
	Total int64
	// Crit is the critical-path op count: the slowest worker's share plus
	// the serial merge terms. Equals Total for fully serial work.
	Crit int64
	// MemTotal and MemCrit are the memory-bound (scatter-dominated) share
	// of Total and Crit — today the boundary-refinement work — which the
	// machine model charges at Model.MemOp; the compute-bound remainder
	// (key encoding, sorting, eigen-solves) is charged at Model.CompOp.
	MemTotal int64
	MemCrit  int64
}

// Add accumulates o2 into o, serial ops contributing to both sides.
func (o *Ops) Add(o2 Ops) {
	o.Total += o2.Total
	o.Crit += o2.Crit
}

// AddSerial accumulates purely serial work: it extends the critical path
// one-for-one.
func (o *Ops) AddSerial(n int64) {
	o.Total += n
	o.Crit += n
}

// AddMem accumulates memory-bound refinement work: it counts toward the
// totals and toward the MemTotal/MemCrit share charged at Model.MemOp.
func (o *Ops) AddMem(ro refine.Ops) {
	o.Total += ro.Total
	o.Crit += ro.Crit
	o.MemTotal += ro.Total
	o.MemCrit += ro.Crit
}

// Partition divides g into k parts with the chosen method. A valid
// k-way partitioning (every part non-empty) requires 1 ≤ k ≤ g.N;
// callers exceeding g.N get an assignment with empty parts.
func Partition(g *dual.Graph, k int, m Method) Assignment {
	asg, _ := PartitionCounted(g, k, m, Options{})
	return asg
}

// PartitionCounted is Partition with explicit options and honest cost
// accounting: every backend — graph and SFC alike — reports the abstract
// operation count of the work it actually did, so the framework can
// charge repartitioning to the remap acceptance rule regardless of
// method.
func PartitionCounted(g *dual.Graph, k int, m Method, opt Options) (Assignment, Ops) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	switch m {
	case MethodGraphGrow:
		return graphGrowCounted(g, k, opt)
	case MethodInertial:
		return inertialCounted(g, k)
	case MethodSpectral:
		return spectralCounted(g, k)
	case MethodMortonSFC:
		return sfcCounted(g, k, sfc.Morton, opt)
	case MethodHilbertSFC:
		return sfcCounted(g, k, sfc.Hilbert, opt)
	default:
		return multilevelCounted(g, k, opt)
	}
}

// GraphGrow partitions by growing all k regions simultaneously from
// spread-out seeds: at every step the lightest part with a live frontier
// absorbs one unassigned neighbour. Growing lightest-first makes the
// result balanced by construction even at high k, where sequential growth
// leaves the last parts only fragmented leftovers.
func GraphGrow(g *dual.Graph, k int, seed int64) Assignment {
	asg, _ := graphGrowCounted(g, k, Options{Seed: seed})
	return asg
}

// graphGrowCounted is GraphGrow with op accounting: one op per
// lightest-part scan entry, per adjacency visit, and per refinement op.
// Growth is serial (Total == Crit); only the boundary-smoothing pass of
// the configured refiner may parallelize.
func graphGrowCounted(g *dual.Graph, k int, opt Options) (Assignment, Ops) {
	seed := opt.Seed
	var ops int64
	asg := make(Assignment, g.N)
	for i := range asg {
		asg[i] = -1
	}
	if k <= 1 {
		for i := range asg {
			asg[i] = 0
		}
		ops = int64(g.N)
		return asg, Ops{Total: ops, Crit: ops}
	}
	rng := rand.New(rand.NewSource(seed))
	wts := make([]int64, k)
	frontiers := make([][]int32, k)

	// Seeds: strided over the vertex order (spatially coherent for
	// generated meshes), jittered a little so equal-weight ties differ
	// between runs with different seeds. At most g.N parts can be seeded;
	// any further parts stay empty (caller violated k ≤ N).
	nSeeds := k
	if nSeeds > g.N {
		nSeeds = g.N
	}
	for p := 0; p < nSeeds; p++ {
		s := int32((p*g.N + g.N/2) / k)
		for asg[s] >= 0 {
			s = int32(rng.Intn(g.N))
		}
		asg[s] = int32(p)
		wts[p] += g.Wcomp[s]
		frontiers[p] = append(frontiers[p], s)
	}

	assigned := nSeeds
	stuck := 0 // parts whose frontier is exhausted
	for assigned < g.N {
		// Lightest part with a live frontier grows next.
		ops += int64(k)
		p := -1
		for q := 0; q < k; q++ {
			if len(frontiers[q]) > 0 && (p < 0 || wts[q] < wts[p]) {
				p = q
			}
		}
		if p < 0 {
			// All frontiers exhausted (disconnected remainder): re-seed
			// the lightest part at an arbitrary unassigned vertex.
			p = argminW(wts)
			for v := range asg {
				if asg[v] < 0 {
					asg[v] = int32(p)
					wts[p] += g.Wcomp[v]
					frontiers[p] = append(frontiers[p], int32(v))
					assigned++
					break
				}
			}
			stuck++
			if stuck > g.N {
				break // defensive: cannot happen on a finite graph
			}
			continue
		}
		// Absorb one unassigned neighbour of p's frontier.
		grew := false
		for len(frontiers[p]) > 0 && !grew {
			v := frontiers[p][0]
			nbrs := g.Adj[v]
			ops += 1 + int64(len(nbrs))
			for _, u := range nbrs {
				if asg[u] < 0 {
					asg[u] = int32(p)
					wts[p] += g.Wcomp[u]
					frontiers[p] = append(frontiers[p], u)
					assigned++
					grew = true
					break
				}
			}
			if !grew {
				// v has no unassigned neighbours left; retire it.
				frontiers[p] = frontiers[p][1:]
			}
		}
	}
	// A refinement pass smooths the growth fronts.
	out := Ops{Total: ops, Crit: ops}
	out.AddMem(opt.refinerFor(g.N).Refine(g, asg, k, 2))
	return asg, out
}

func argminW(w []int64) int {
	best := 0
	for i, x := range w {
		if x < w[best] {
			best = i
		}
	}
	return best
}

// InertialRB partitions by recursive inertial bisection: each subdomain is
// split at the weighted median of element centroids projected onto the
// subdomain's principal axis.
func InertialRB(g *dual.Graph, k int) Assignment {
	asg, _ := inertialCounted(g, k)
	return asg
}

// inertialCounted is InertialRB with op accounting: the covariance
// accumulation and power iteration per subdomain, plus the shared
// sort-and-split cost counted by recursiveBisect.
func inertialCounted(g *dual.Graph, k int) (Assignment, Ops) {
	asg := make(Assignment, g.N)
	idxs := make([]int32, g.N)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	var ops int64
	recursiveBisect(g, idxs, 0, k, asg, &ops, func(sub []int32) ([]float64, int64) {
		axis := principalAxis(g, sub)
		vals := make([]float64, len(sub))
		for i, v := range sub {
			vals[i] = g.Centroid[v].Dot(axis)
		}
		// Covariance build (~10 flops/vertex), 50 power iterations on the
		// 3×3 (~12 flops each), and the projection.
		return vals, int64(len(sub))*11 + 600
	})
	return asg, Ops{Total: ops, Crit: ops}
}

// SpectralRB partitions by recursive spectral bisection: each subdomain is
// split at the weighted median of its Fiedler vector (Lanczos, see
// internal/sparse).
func SpectralRB(g *dual.Graph, k int) Assignment {
	asg, _ := spectralCounted(g, k)
	return asg
}

// spectralCounted is SpectralRB with op accounting: the dominant term is
// the Lanczos work inside sparse.FiedlerCounted (per-iteration sparse
// matvecs plus full reorthogonalization), which dwarfs the sort-and-split
// bookkeeping.
func spectralCounted(g *dual.Graph, k int) (Assignment, Ops) {
	asg := make(Assignment, g.N)
	idxs := make([]int32, g.N)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	var ops int64
	recursiveBisect(g, idxs, 0, k, asg, &ops, func(sub []int32) ([]float64, int64) {
		return subgraphFiedler(g, sub)
	})
	return asg, Ops{Total: ops, Crit: ops}
}

// recursiveBisect splits idxs into k parts numbered [base, base+k),
// writing into asg. value computes, for a subset, the 1-D embedding to
// split at the weighted median, and reports the abstract op count of that
// computation; recursiveBisect adds the sort and scan costs to *ops.
func recursiveBisect(g *dual.Graph, idxs []int32, base, k int, asg Assignment, ops *int64, value func([]int32) ([]float64, int64)) {
	if k <= 1 {
		for _, v := range idxs {
			asg[v] = int32(base)
		}
		*ops += int64(len(idxs))
		return
	}
	k1 := (k + 1) / 2
	frac := float64(k1) / float64(k)
	vals, vops := value(idxs)
	n := int64(len(idxs))
	*ops += vops + n*int64(log2ceil(len(idxs)+1)) + n

	ord := make([]int, len(idxs))
	for i := range ord {
		ord[i] = i
	}
	// Ties broken by position for a fully deterministic split order.
	slices.SortFunc(ord, func(a, b int) int {
		switch {
		case vals[a] < vals[b]:
			return -1
		case vals[a] > vals[b]:
			return 1
		}
		return a - b
	})

	var total int64
	for _, v := range idxs {
		total += g.Wcomp[v]
	}
	targetW := int64(frac * float64(total))
	var acc int64
	split := 0
	for split < len(ord) && acc < targetW {
		acc += g.Wcomp[idxs[ord[split]]]
		split++
	}
	// Each side must keep at least as many vertices as the parts it will
	// be split into, or the recursion bottoms out with empty parts (the
	// weighted median can collapse to one side when a few vertices carry
	// almost all the weight). When the subset is smaller than k (caller
	// violated k ≤ N) the two goals conflict; keep split in range and
	// accept empty parts rather than crash.
	if split < k1 {
		split = k1
	}
	if max := len(ord) - (k - k1); split > max {
		split = max
	}
	if split < 0 {
		split = 0
	}
	if split > len(ord) {
		split = len(ord)
	}
	left := make([]int32, 0, split)
	right := make([]int32, 0, len(ord)-split)
	for i, o := range ord {
		if i < split {
			left = append(left, idxs[o])
		} else {
			right = append(right, idxs[o])
		}
	}
	recursiveBisect(g, left, base, k1, asg, ops, value)
	recursiveBisect(g, right, base+k1, k-k1, asg, ops, value)
}

// principalAxis returns the dominant eigenvector of the weighted
// covariance of the subset's centroids (power iteration on the 3×3
// covariance matrix).
func principalAxis(g *dual.Graph, sub []int32) geom.Vec3 {
	var mean geom.Vec3
	var wsum float64
	for _, v := range sub {
		w := float64(g.Wcomp[v])
		mean = mean.Add(g.Centroid[v].Scale(w))
		wsum += w
	}
	if wsum == 0 {
		return geom.Vec3{X: 1}
	}
	mean = mean.Scale(1 / wsum)
	var c [3][3]float64
	for _, v := range sub {
		d := g.Centroid[v].Sub(mean)
		w := float64(g.Wcomp[v])
		p := [3]float64{d.X, d.Y, d.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				c[i][j] += w * p[i] * p[j]
			}
		}
	}
	x := [3]float64{1, 0.7, 0.4} // deterministic, unlikely to be orthogonal
	for it := 0; it < 50; it++ {
		var y [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				y[i] += c[i][j] * x[j]
			}
		}
		n := y[0]*y[0] + y[1]*y[1] + y[2]*y[2]
		if n == 0 {
			break
		}
		inv := 1 / math.Sqrt(n)
		for i := range y {
			y[i] *= inv
		}
		x = y
	}
	return geom.Vec3{X: x[0], Y: x[1], Z: x[2]}
}

// subgraphFiedler computes the Fiedler embedding of the induced subgraph,
// reporting the op count of the extraction plus the Lanczos solve.
func subgraphFiedler(g *dual.Graph, sub []int32) ([]float64, int64) {
	local := make(map[int32]int32, len(sub))
	for i, v := range sub {
		local[v] = int32(i)
	}
	var ops int64
	adj := make([][]int32, len(sub))
	for i, v := range sub {
		ops += 1 + int64(len(g.Adj[v]))
		for _, w := range g.Adj[v] {
			if lw, ok := local[w]; ok {
				adj[i] = append(adj[i], lw)
			}
		}
	}
	L := sparse.Laplacian(adj)
	vec, fops := sparse.FiedlerCounted(L, 60, 1e-4, 42)
	return vec, ops + fops
}
