// Package partition provides weighted graph partitioners for the dual
// graph, standing in for the Chaco package the paper uses ("multilevel
// spectral Lanczos partitioning algorithm with local Kernighan-Lin
// refinement"). The paper treats the partitioner as a pluggable black box;
// this package supplies the same family:
//
//   - GraphGrow:  greedy BFS graph growing (fast, moderate quality);
//   - InertialRB: recursive coordinate bisection along principal axes;
//   - SpectralRB: recursive spectral bisection using Lanczos Fiedler
//     vectors (internal/sparse);
//   - Multilevel: matching-based coarsening, spectral partitioning of the
//     coarse graph, and Kernighan–Lin/Fiduccia–Mattheyses boundary
//     refinement during uncoarsening — the Chaco-style default.
//
// All partitioners balance the dual graph's computational weights Wcomp.
package partition

import (
	"math"
	"math/rand"
	"sort"

	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/sfc"
	"plum/internal/sparse"
)

// Assignment maps each dual-graph vertex to a partition number.
type Assignment []int32

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Weights returns the total Wcomp per partition.
func Weights(g *dual.Graph, asg Assignment, k int) []int64 {
	w := make([]int64, k)
	for v, p := range asg {
		w[p] += g.Wcomp[v]
	}
	return w
}

// Imbalance returns the paper's load-imbalance factor Wmax/Wavg for the
// given partitioning (1.0 is perfect balance).
func Imbalance(g *dual.Graph, asg Assignment, k int) float64 {
	w := Weights(g, asg, k)
	var max, sum int64
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	avg := float64(sum) / float64(k)
	return float64(max) / avg
}

// EdgeCut returns the number of dual edges crossing partition boundaries
// (uniform edge weights, as in the paper's test cases).
func EdgeCut(g *dual.Graph, asg Assignment) int64 {
	var cut int64
	for v := range g.Adj {
		for _, w := range g.Adj[v] {
			if int32(v) < w && asg[v] != asg[w] {
				cut++
			}
		}
	}
	return cut * g.EdgeWeight
}

// Method selects a partitioning algorithm.
type Method int

// Available partitioners.
const (
	MethodGraphGrow Method = iota
	MethodInertial
	MethodSpectral
	MethodMultilevel
	// MethodMortonSFC and MethodHilbertSFC cut a space-filling-curve
	// ordering of the element centroids into weighted chunks (see sfc.go):
	// near-linear time, and O(n) incremental repartitioning via
	// SFCPartitioner.
	MethodMortonSFC
	MethodHilbertSFC
)

// Methods lists every available partitioner, in declaration order — the
// iteration table for experiments, benchmarks, and CLI validation.
var Methods = []Method{
	MethodGraphGrow, MethodInertial, MethodSpectral, MethodMultilevel,
	MethodMortonSFC, MethodHilbertSFC,
}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodGraphGrow:
		return "graphgrow"
	case MethodInertial:
		return "inertial"
	case MethodSpectral:
		return "spectral"
	case MethodMultilevel:
		return "multilevel"
	case MethodMortonSFC:
		return "morton"
	case MethodHilbertSFC:
		return "hilbert"
	}
	return "unknown"
}

// Curve returns the space-filling curve of an SFC method; ok is false
// for the graph partitioners.
func (m Method) Curve() (sfc.Curve, bool) {
	switch m {
	case MethodMortonSFC:
		return sfc.Morton, true
	case MethodHilbertSFC:
		return sfc.Hilbert, true
	}
	return 0, false
}

// MethodByName returns the partitioner with the given CLI name.
func MethodByName(name string) (Method, bool) {
	for _, m := range Methods {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// Partition divides g into k parts with the chosen method. A valid
// k-way partitioning (every part non-empty) requires 1 ≤ k ≤ g.N;
// callers exceeding g.N get an assignment with empty parts.
func Partition(g *dual.Graph, k int, m Method) Assignment {
	switch m {
	case MethodGraphGrow:
		return GraphGrow(g, k, 1)
	case MethodInertial:
		return InertialRB(g, k)
	case MethodSpectral:
		return SpectralRB(g, k)
	case MethodMortonSFC:
		return SFC(g, k, sfc.Morton)
	case MethodHilbertSFC:
		return SFC(g, k, sfc.Hilbert)
	default:
		return Multilevel(g, k)
	}
}

// GraphGrow partitions by growing all k regions simultaneously from
// spread-out seeds: at every step the lightest part with a live frontier
// absorbs one unassigned neighbour. Growing lightest-first makes the
// result balanced by construction even at high k, where sequential growth
// leaves the last parts only fragmented leftovers.
func GraphGrow(g *dual.Graph, k int, seed int64) Assignment {
	asg := make(Assignment, g.N)
	for i := range asg {
		asg[i] = -1
	}
	if k <= 1 {
		for i := range asg {
			asg[i] = 0
		}
		return asg
	}
	rng := rand.New(rand.NewSource(seed))
	wts := make([]int64, k)
	frontiers := make([][]int32, k)

	// Seeds: strided over the vertex order (spatially coherent for
	// generated meshes), jittered a little so equal-weight ties differ
	// between runs with different seeds. At most g.N parts can be seeded;
	// any further parts stay empty (caller violated k ≤ N).
	nSeeds := k
	if nSeeds > g.N {
		nSeeds = g.N
	}
	for p := 0; p < nSeeds; p++ {
		s := int32((p*g.N + g.N/2) / k)
		for asg[s] >= 0 {
			s = int32(rng.Intn(g.N))
		}
		asg[s] = int32(p)
		wts[p] += g.Wcomp[s]
		frontiers[p] = append(frontiers[p], s)
	}

	assigned := nSeeds
	stuck := 0 // parts whose frontier is exhausted
	for assigned < g.N {
		// Lightest part with a live frontier grows next.
		p := -1
		for q := 0; q < k; q++ {
			if len(frontiers[q]) > 0 && (p < 0 || wts[q] < wts[p]) {
				p = q
			}
		}
		if p < 0 {
			// All frontiers exhausted (disconnected remainder): re-seed
			// the lightest part at an arbitrary unassigned vertex.
			p = argminW(wts)
			for v := range asg {
				if asg[v] < 0 {
					asg[v] = int32(p)
					wts[p] += g.Wcomp[v]
					frontiers[p] = append(frontiers[p], int32(v))
					assigned++
					break
				}
			}
			stuck++
			if stuck > g.N {
				break // defensive: cannot happen on a finite graph
			}
			continue
		}
		// Absorb one unassigned neighbour of p's frontier.
		grew := false
		for len(frontiers[p]) > 0 && !grew {
			v := frontiers[p][0]
			nbrs := g.Adj[v]
			for _, u := range nbrs {
				if asg[u] < 0 {
					asg[u] = int32(p)
					wts[p] += g.Wcomp[u]
					frontiers[p] = append(frontiers[p], u)
					assigned++
					grew = true
					break
				}
			}
			if !grew {
				// v has no unassigned neighbours left; retire it.
				frontiers[p] = frontiers[p][1:]
			}
		}
	}
	// A refinement pass smooths the growth fronts.
	FMRefine(g, asg, k, 2)
	return asg
}

func argminW(w []int64) int {
	best := 0
	for i, x := range w {
		if x < w[best] {
			best = i
		}
	}
	return best
}

// InertialRB partitions by recursive inertial bisection: each subdomain is
// split at the weighted median of element centroids projected onto the
// subdomain's principal axis.
func InertialRB(g *dual.Graph, k int) Assignment {
	asg := make(Assignment, g.N)
	idxs := make([]int32, g.N)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	recursiveBisect(g, idxs, 0, k, asg, func(sub []int32) []float64 {
		axis := principalAxis(g, sub)
		vals := make([]float64, len(sub))
		for i, v := range sub {
			vals[i] = g.Centroid[v].Dot(axis)
		}
		return vals
	})
	return asg
}

// SpectralRB partitions by recursive spectral bisection: each subdomain is
// split at the weighted median of its Fiedler vector (Lanczos, see
// internal/sparse).
func SpectralRB(g *dual.Graph, k int) Assignment {
	asg := make(Assignment, g.N)
	idxs := make([]int32, g.N)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	recursiveBisect(g, idxs, 0, k, asg, func(sub []int32) []float64 {
		return subgraphFiedler(g, sub)
	})
	return asg
}

// recursiveBisect splits idxs into k parts numbered [base, base+k),
// writing into asg. value computes, for a subset, the 1-D embedding to
// split at the weighted median.
func recursiveBisect(g *dual.Graph, idxs []int32, base, k int, asg Assignment, value func([]int32) []float64) {
	if k <= 1 {
		for _, v := range idxs {
			asg[v] = int32(base)
		}
		return
	}
	k1 := (k + 1) / 2
	frac := float64(k1) / float64(k)
	vals := value(idxs)

	ord := make([]int, len(idxs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return vals[ord[a]] < vals[ord[b]] })

	var total int64
	for _, v := range idxs {
		total += g.Wcomp[v]
	}
	targetW := int64(frac * float64(total))
	var acc int64
	split := 0
	for split < len(ord) && acc < targetW {
		acc += g.Wcomp[idxs[ord[split]]]
		split++
	}
	// Each side must keep at least as many vertices as the parts it will
	// be split into, or the recursion bottoms out with empty parts (the
	// weighted median can collapse to one side when a few vertices carry
	// almost all the weight). When the subset is smaller than k (caller
	// violated k ≤ N) the two goals conflict; keep split in range and
	// accept empty parts rather than crash.
	if split < k1 {
		split = k1
	}
	if max := len(ord) - (k - k1); split > max {
		split = max
	}
	if split < 0 {
		split = 0
	}
	if split > len(ord) {
		split = len(ord)
	}
	left := make([]int32, 0, split)
	right := make([]int32, 0, len(ord)-split)
	for i, o := range ord {
		if i < split {
			left = append(left, idxs[o])
		} else {
			right = append(right, idxs[o])
		}
	}
	recursiveBisect(g, left, base, k1, asg, value)
	recursiveBisect(g, right, base+k1, k-k1, asg, value)
}

// principalAxis returns the dominant eigenvector of the weighted
// covariance of the subset's centroids (power iteration on the 3×3
// covariance matrix).
func principalAxis(g *dual.Graph, sub []int32) geom.Vec3 {
	var mean geom.Vec3
	var wsum float64
	for _, v := range sub {
		w := float64(g.Wcomp[v])
		mean = mean.Add(g.Centroid[v].Scale(w))
		wsum += w
	}
	if wsum == 0 {
		return geom.Vec3{X: 1}
	}
	mean = mean.Scale(1 / wsum)
	var c [3][3]float64
	for _, v := range sub {
		d := g.Centroid[v].Sub(mean)
		w := float64(g.Wcomp[v])
		p := [3]float64{d.X, d.Y, d.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				c[i][j] += w * p[i] * p[j]
			}
		}
	}
	x := [3]float64{1, 0.7, 0.4} // deterministic, unlikely to be orthogonal
	for it := 0; it < 50; it++ {
		var y [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				y[i] += c[i][j] * x[j]
			}
		}
		n := y[0]*y[0] + y[1]*y[1] + y[2]*y[2]
		if n == 0 {
			break
		}
		inv := 1 / math.Sqrt(n)
		for i := range y {
			y[i] *= inv
		}
		x = y
	}
	return geom.Vec3{X: x[0], Y: x[1], Z: x[2]}
}

// subgraphFiedler computes the Fiedler embedding of the induced subgraph.
func subgraphFiedler(g *dual.Graph, sub []int32) []float64 {
	local := make(map[int32]int32, len(sub))
	for i, v := range sub {
		local[v] = int32(i)
	}
	adj := make([][]int32, len(sub))
	for i, v := range sub {
		for _, w := range g.Adj[v] {
			if lw, ok := local[w]; ok {
				adj[i] = append(adj[i], lw)
			}
		}
	}
	L := sparse.Laplacian(adj)
	return sparse.Fiedler(L, 60, 1e-4, 42)
}
