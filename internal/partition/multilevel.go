package partition

import (
	"math/rand"
	"slices"

	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/refine"
)

// Multilevel partitions by the Chaco-style multilevel scheme: the dual
// graph is coarsened by repeated edge matchings until it is small, the
// coarse graph is partitioned spectrally, and the partition is projected
// back up with boundary refinement at every level.
func Multilevel(g *dual.Graph, k int) Assignment {
	asg, _ := multilevelCounted(g, k, Options{Seed: 1})
	return asg
}

// multilevelCounted is Multilevel with op accounting: the matching and
// edge-collapse work of every coarsening level, the spectral solve on the
// coarsest graph, and the projection plus boundary refinement of every
// uncoarsening level. The scheme itself is serial (only the configured
// refiner's passes may parallelize, on levels big enough to engage it).
// opt.Seed offsets the per-level matching RNG; seed 1 reproduces the
// historical level-index seeding.
func multilevelCounted(g *dual.Graph, k int, opt Options) (Assignment, Ops) {
	const coarseTarget = 200
	target := coarseTarget
	if 4*k > target {
		target = 4 * k
	}
	seed := opt.Seed
	// Multilevel's per-level graphs are small and the scheme is serial,
	// so its historical default refiner is the classic cascading FM
	// sweep; an explicitly configured backend (Options.Refiner) wins.
	r := opt.Refiner
	if r == nil {
		r = refine.FM{}
	}

	var ops Ops

	// Coarsening chain.
	type level struct {
		g    *dual.Graph
		map_ []int32 // fine vertex -> coarse vertex (nil for the finest)
	}
	levels := []level{{g: g}}
	cur := g
	for cur.N > target {
		cg, cmap, cops := coarsenCounted(cur, seed-1+int64(len(levels)))
		ops.AddSerial(cops)
		if cg.N >= cur.N*9/10 {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, level{g: cg, map_: cmap})
		cur = cg
	}

	// Initial partition of the coarsest graph.
	asg, sops := spectralCounted(cur, k)
	ops.Add(sops)
	ops.AddMem(r.Refine(cur, asg, k, 4))

	// Uncoarsen with refinement.
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].g
		cmap := levels[li].map_
		fineAsg := make(Assignment, fine.N)
		for v := range fineAsg {
			fineAsg[v] = asg[cmap[v]]
		}
		asg = fineAsg
		ops.AddSerial(int64(fine.N))
		ops.AddMem(r.Refine(fine, asg, k, 2))
	}
	return asg, ops
}

// coarsenCounted contracts a random maximal matching of g, returning the
// coarse graph, the fine→coarse vertex map, and the op count of the
// matching plus edge collapse. Matched pairs merge their weights;
// parallel coarse edges are collapsed.
func coarsenCounted(g *dual.Graph, seed int64) (*dual.Graph, []int32, int64) {
	var ops int64
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.N)
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	cmap := make([]int32, g.N)
	for i := range cmap {
		cmap[i] = -1
	}
	var nc int32
	for _, vi := range order {
		v := int32(vi)
		ops += 1 + int64(len(g.Adj[v]))
		if cmap[v] >= 0 {
			continue
		}
		// Prefer the heaviest unmatched neighbour (heavy-vertex matching
		// keeps coarse weights even).
		var best int32 = -1
		for _, w := range g.Adj[v] {
			if cmap[w] >= 0 {
				continue
			}
			if best < 0 || g.Wcomp[w] > g.Wcomp[best] {
				best = w
			}
		}
		cmap[v] = nc
		if best >= 0 {
			cmap[best] = nc
			match[v] = best
		}
		nc++
	}

	cg := &dual.Graph{
		N:          int(nc),
		Adj:        make([][]int32, nc),
		Wcomp:      make([]int64, nc),
		Wremap:     make([]int64, nc),
		EdgeWeight: g.EdgeWeight,
		Centroid:   make([]geom.Vec3, nc),
	}
	cnt := make([]float64, nc)
	for v := 0; v < g.N; v++ {
		c := cmap[v]
		cg.Wcomp[c] += g.Wcomp[v]
		cg.Wremap[c] += g.Wremap[v]
		cg.Centroid[c] = cg.Centroid[c].Add(g.Centroid[v])
		cnt[c]++
	}
	for c := range cg.Centroid {
		if cnt[c] > 0 {
			cg.Centroid[c] = cg.Centroid[c].Scale(1 / cnt[c])
		}
	}
	// Coarse-edge dedup via sorted packed pairs instead of a per-level
	// map: each undirected coarse edge appears once per endpoint in the
	// scan; one sort-and-compact collapses the duplicates with no hashing
	// and no per-level map reallocation.
	pairs := make([]uint64, 0, 2*g.N)
	for v := 0; v < g.N; v++ {
		cv := cmap[v]
		ops += 1 + int64(len(g.Adj[v]))
		for _, w := range g.Adj[v] {
			cw := cmap[w]
			if cv == cw {
				continue
			}
			a, b := cv, cw
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, uint64(uint32(a))<<32|uint64(uint32(b)))
		}
	}
	slices.Sort(pairs)
	pairs = slices.Compact(pairs)
	ops += int64(len(pairs))*int64(log2ceil(len(pairs)+1)) + int64(len(pairs))
	for _, pq := range pairs {
		a, b := int32(pq>>32), int32(uint32(pq))
		cg.Adj[a] = append(cg.Adj[a], b)
		cg.Adj[b] = append(cg.Adj[b], a)
	}
	return cg, cmap, ops
}

// Boundary refinement lives in internal/refine since the band-FM
// extraction: the classic serial sweep is refine.FMRefine, and the
// partitioners smooth their cuts through the Options.Refiner backend
// (refine.BandFM by default).
