package partition

import (
	"math/rand"

	"plum/internal/dual"
	"plum/internal/geom"
)

// Multilevel partitions by the Chaco-style multilevel scheme: the dual
// graph is coarsened by repeated edge matchings until it is small, the
// coarse graph is partitioned spectrally, and the partition is projected
// back up with Fiduccia–Mattheyses boundary refinement at every level.
func Multilevel(g *dual.Graph, k int) Assignment {
	asg, _ := multilevelCounted(g, k, 1)
	return asg
}

// multilevelCounted is Multilevel with op accounting: the matching and
// edge-collapse work of every coarsening level, the spectral solve on the
// coarsest graph, and the projection plus FM refinement of every
// uncoarsening level. The scheme is serial, so Total == Crit. seed
// offsets the per-level matching RNG; seed 1 reproduces the historical
// level-index seeding.
func multilevelCounted(g *dual.Graph, k int, seed int64) (Assignment, Ops) {
	const coarseTarget = 200
	target := coarseTarget
	if 4*k > target {
		target = 4 * k
	}

	var ops Ops

	// Coarsening chain.
	type level struct {
		g    *dual.Graph
		map_ []int32 // fine vertex -> coarse vertex (nil for the finest)
	}
	levels := []level{{g: g}}
	cur := g
	for cur.N > target {
		cg, cmap, cops := coarsenCounted(cur, seed-1+int64(len(levels)))
		ops.AddSerial(cops)
		if cg.N >= cur.N*9/10 {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, level{g: cg, map_: cmap})
		cur = cg
	}

	// Initial partition of the coarsest graph.
	asg, sops := spectralCounted(cur, k)
	ops.Add(sops)
	ops.AddSerial(FMRefine(cur, asg, k, 4))

	// Uncoarsen with refinement.
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].g
		cmap := levels[li].map_
		fineAsg := make(Assignment, fine.N)
		for v := range fineAsg {
			fineAsg[v] = asg[cmap[v]]
		}
		asg = fineAsg
		ops.AddSerial(int64(fine.N))
		ops.AddSerial(FMRefine(fine, asg, k, 2))
	}
	return asg, ops
}

// coarsenCounted contracts a random maximal matching of g, returning the
// coarse graph, the fine→coarse vertex map, and the op count of the
// matching plus edge collapse. Matched pairs merge their weights;
// parallel coarse edges are collapsed.
func coarsenCounted(g *dual.Graph, seed int64) (*dual.Graph, []int32, int64) {
	var ops int64
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.N)
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	cmap := make([]int32, g.N)
	for i := range cmap {
		cmap[i] = -1
	}
	var nc int32
	for _, vi := range order {
		v := int32(vi)
		ops += 1 + int64(len(g.Adj[v]))
		if cmap[v] >= 0 {
			continue
		}
		// Prefer the heaviest unmatched neighbour (heavy-vertex matching
		// keeps coarse weights even).
		var best int32 = -1
		for _, w := range g.Adj[v] {
			if cmap[w] >= 0 {
				continue
			}
			if best < 0 || g.Wcomp[w] > g.Wcomp[best] {
				best = w
			}
		}
		cmap[v] = nc
		if best >= 0 {
			cmap[best] = nc
			match[v] = best
		}
		nc++
	}

	cg := &dual.Graph{
		N:          int(nc),
		Adj:        make([][]int32, nc),
		Wcomp:      make([]int64, nc),
		Wremap:     make([]int64, nc),
		EdgeWeight: g.EdgeWeight,
		Centroid:   make([]geom.Vec3, nc),
	}
	cnt := make([]float64, nc)
	for v := 0; v < g.N; v++ {
		c := cmap[v]
		cg.Wcomp[c] += g.Wcomp[v]
		cg.Wremap[c] += g.Wremap[v]
		cg.Centroid[c] = cg.Centroid[c].Add(g.Centroid[v])
		cnt[c]++
	}
	for c := range cg.Centroid {
		if cnt[c] > 0 {
			cg.Centroid[c] = cg.Centroid[c].Scale(1 / cnt[c])
		}
	}
	seen := make(map[[2]int32]bool)
	for v := 0; v < g.N; v++ {
		cv := cmap[v]
		ops += 1 + int64(len(g.Adj[v]))
		for _, w := range g.Adj[v] {
			cw := cmap[w]
			if cv == cw {
				continue
			}
			a, b := cv, cw
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if !seen[key] {
				seen[key] = true
				cg.Adj[a] = append(cg.Adj[a], b)
				cg.Adj[b] = append(cg.Adj[b], a)
			}
		}
	}
	return cg, cmap, ops
}

// FMRefine performs Fiduccia–Mattheyses-style boundary refinement on a
// k-way assignment in place: boundary vertices greedily move to adjacent
// parts when the move reduces the edge cut without violating the balance
// tolerance, or when it strictly improves balance at equal cut. passes
// bounds the number of sweeps. It returns the abstract operation count of
// the refinement (vertex visits plus adjacency scans) for machine-model
// cost accounting.
func FMRefine(g *dual.Graph, asg Assignment, k, passes int) int64 {
	var ops int64
	if k <= 1 {
		return ops
	}
	w := Weights(g, asg, k)
	var total int64
	for _, x := range w {
		total += x
	}
	avg := float64(total) / float64(k)
	maxW := int64(avg * 1.03) // 3% balance tolerance
	if maxW < 1 {
		maxW = 1
	}

	// Part populations: a move must never empty its source part (a valid
	// Assignment keeps every part non-empty).
	cnt := make([]int, k)
	for _, p := range asg {
		cnt[p]++
	}

	conn := make([]int32, k) // scratch: edges from v into each part
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < g.N; v++ {
			ops += 1 + int64(len(g.Adj[v]))
			a := asg[v]
			if cnt[a] <= 1 {
				continue
			}
			boundary := false
			for _, u := range g.Adj[v] {
				if asg[u] != a {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			for i := range conn {
				conn[i] = 0
			}
			for _, u := range g.Adj[v] {
				conn[asg[u]]++
			}
			bestPart := a
			bestGain := int32(0)
			for _, u := range g.Adj[v] {
				b := asg[u]
				if b == a || b == bestPart {
					continue
				}
				gain := conn[b] - conn[a]
				fits := w[b]+g.Wcomp[v] <= maxW
				better := gain > bestGain && fits
				balances := gain == bestGain && bestPart == a && w[b]+g.Wcomp[v] < w[a]
				if better || (balances && fits) {
					bestPart = b
					bestGain = gain
				}
			}
			if bestPart != a {
				asg[v] = bestPart
				w[a] -= g.Wcomp[v]
				w[bestPart] += g.Wcomp[v]
				cnt[a]--
				cnt[bestPart]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}

	// Overflow pass: gain-driven moves alone cannot rescue a badly
	// imbalanced input (all zero- and positive-gain moves may be
	// exhausted), so force boundary vertices out of overloaded parts into
	// their lightest neighbouring part, accepting cut damage. Repeat
	// until every part fits or no boundary vertex can leave.
	for iter := 0; iter < 2*k; iter++ {
		over := -1
		for p := 0; p < k; p++ {
			if w[p] > maxW && (over < 0 || w[p] > w[over]) {
				over = p
			}
		}
		if over < 0 {
			return ops
		}
		moved := false
		for v := 0; v < g.N && w[over] > maxW; v++ {
			ops++
			if asg[v] != int32(over) || cnt[over] <= 1 {
				continue
			}
			best := int32(-1)
			for _, u := range g.Adj[v] {
				b := asg[u]
				if b == int32(over) {
					continue
				}
				if best < 0 || w[b] < w[best] {
					best = b
				}
			}
			if best >= 0 && w[best]+g.Wcomp[v] <= maxW {
				asg[v] = best
				w[over] -= g.Wcomp[v]
				w[best] += g.Wcomp[v]
				cnt[over]--
				cnt[best]++
				moved = true
			}
		}
		if !moved {
			return ops
		}
	}
	return ops
}
