package adapt

import (
	"math"
	"testing"

	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
)

func singleTet() *mesh.Mesh {
	m := mesh.New(4, 6, 1)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	m.AddElement(v0, v1, v2, v3, mesh.InvalidElem, mesh.InvalidElem, 0)
	return m
}

func checkMesh(t *testing.T, m *mesh.Mesh, ctx string) {
	t.Helper()
	if err := m.Check(); err != nil {
		t.Fatalf("%s: mesh invariant violated: %v", ctx, err)
	}
}

func TestRefine12SingleTet(t *testing.T) {
	m := singleTet()
	a := New(m)
	a.SetMark(m.FindEdge(0, 1), MarkRefine)
	st := a.Refine()
	if st.EdgesBisected != 1 {
		t.Errorf("bisected = %d, want 1", st.EdgesBisected)
	}
	if st.Subdivided[KindHalf] != 1 || st.TotalSubdivided() != 1 {
		t.Errorf("subdivided = %v", st.Subdivided)
	}
	if got := m.NumActiveElems(); got != 2 {
		t.Errorf("active elems = %d, want 2", got)
	}
	if v := m.TotalVolume(); math.Abs(v-1.0/6.0) > 1e-14 {
		t.Errorf("volume = %g, want 1/6", v)
	}
	checkMesh(t, m, "after 1:2")
}

func TestRefine14SingleTet(t *testing.T) {
	m := singleTet()
	a := New(m)
	// Mark two edges of face (0,1,2): upgrade must add the third.
	a.SetMark(m.FindEdge(0, 1), MarkRefine)
	a.SetMark(m.FindEdge(0, 2), MarkRefine)
	st := a.Refine()
	if st.EdgesBisected != 3 {
		t.Errorf("bisected = %d, want 3 (upgrade to 1:4)", st.EdgesBisected)
	}
	if st.Subdivided[KindQuarter] != 1 {
		t.Errorf("subdivided = %v, want one 1:4", st.Subdivided)
	}
	if got := m.NumActiveElems(); got != 4 {
		t.Errorf("active elems = %d, want 4", got)
	}
	if v := m.TotalVolume(); math.Abs(v-1.0/6.0) > 1e-14 {
		t.Errorf("volume = %g, want 1/6", v)
	}
	checkMesh(t, m, "after 1:4")
}

func TestRefine18SingleTet(t *testing.T) {
	m := singleTet()
	a := New(m)
	// Two opposite edges cannot fit one face: upgrade to 1:8.
	a.SetMark(m.FindEdge(0, 1), MarkRefine)
	a.SetMark(m.FindEdge(2, 3), MarkRefine)
	st := a.Refine()
	if st.EdgesBisected != 6 {
		t.Errorf("bisected = %d, want 6", st.EdgesBisected)
	}
	if st.Subdivided[KindFull] != 1 {
		t.Errorf("subdivided = %v, want one 1:8", st.Subdivided)
	}
	if got := m.NumActiveElems(); got != 8 {
		t.Errorf("active elems = %d, want 8", got)
	}
	if v := m.TotalVolume(); math.Abs(v-1.0/6.0) > 1e-14 {
		t.Errorf("volume = %g (children must tile the parent exactly)", v)
	}
	checkMesh(t, m, "after 1:8")
}

func TestRefineVolumeConservedAllPatterns(t *testing.T) {
	// Every upgrade class must conserve total volume on the unit cube.
	for _, marks := range [][][2]mesh.VertID{
		{{0, 1}},         // some 1:2s
		{{0, 1}, {0, 2}}, // 1:4 upgrades
		{{0, 7}},         // likely interior/diagonal edge
	} {
		m := meshgen.UnitCube()
		a := New(m)
		for _, mk := range marks {
			e := m.FindEdge(mk[0], mk[1])
			if e == mesh.InvalidEdge {
				continue
			}
			a.SetMark(e, MarkRefine)
		}
		a.Refine()
		if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
			t.Errorf("marks %v: volume = %g, want 1", marks, v)
		}
		checkMesh(t, m, "cube refine")
	}
}

func TestPropagationAcrossElements(t *testing.T) {
	// Refining the body diagonal of a cube (shared by all 6 tets) must
	// propagate a consistent pattern to every element.
	m := meshgen.UnitCube()
	a := New(m)
	d := m.FindEdge(0, 7) // (0,0,0)-(1,1,1) under meshgen vertex ordering
	if d == mesh.InvalidEdge {
		t.Fatal("no body diagonal found")
	}
	if got := len(m.Edges[d].Elems); got != 6 {
		t.Fatalf("diagonal shared by %d elements, want 6", got)
	}
	a.SetMark(d, MarkRefine)
	st := a.Refine()
	if st.TotalSubdivided() != 6 {
		t.Errorf("subdivided %d elements, want all 6", st.TotalSubdivided())
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
		t.Errorf("volume = %g, want 1", v)
	}
	checkMesh(t, m, "diagonal refine")
}

func TestRefineFullCube(t *testing.T) {
	m := meshgen.UnitCube()
	a := New(m)
	n := a.MarkRegion(geom.All{}, MarkRefine)
	if n != 19 {
		t.Fatalf("marked %d edges, want all 19", n)
	}
	st := a.Refine()
	if st.Subdivided[KindFull] != 6 {
		t.Errorf("subdivided = %v, want six 1:8", st.Subdivided)
	}
	if got := m.NumActiveElems(); got != 48 {
		t.Errorf("active elems = %d, want 48", got)
	}
	// Boundary faces: 12 quads-halves, each fully split into 4.
	if got := m.NumActiveFaces(); got != 48 {
		t.Errorf("active faces = %d, want 48", got)
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-12 {
		t.Errorf("volume = %g, want 1", v)
	}
	checkMesh(t, m, "full refine")
}

func TestCoarsenRestoresInitialMesh(t *testing.T) {
	// The Local_1 scenario of Table 1: refinement followed by coarsening
	// of everything restores the initial mesh sizes exactly.
	m := meshgen.SmallBox()
	s0 := m.Stats()
	a := New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.3}, MarkRefine)
	a.Refine()
	checkMesh(t, m, "after refine")
	s1 := m.Stats()
	if s1.ActiveElems <= s0.ActiveElems {
		t.Fatalf("refinement did not grow the mesh: %+v -> %+v", s0, s1)
	}

	a.MarkRegion(geom.All{}, MarkCoarsen)
	cst := a.Coarsen()
	checkMesh(t, m, "after coarsen")
	s2 := m.Stats()
	if s2.ActiveElems != s0.ActiveElems || s2.ActiveEdges != s0.ActiveEdges ||
		s2.Verts != s0.Verts || s2.ActiveFaces != s0.ActiveFaces {
		t.Errorf("coarsening did not restore initial mesh: initial %+v, final %+v", s0, s2)
	}
	if cst.GroupsRemoved == 0 {
		t.Error("no groups removed")
	}
	if v0, v2 := 1.0, m.TotalVolume(); math.Abs(v2-v0) > 1e-9 {
		t.Errorf("volume = %g, want 1", v2)
	}
	// After compaction the mesh must be byte-for-byte the initial size.
	a.Compact()
	checkMesh(t, m, "after compact")
	if len(m.Elems) != s0.ActiveElems {
		t.Errorf("compacted element slab = %d, want %d", len(m.Elems), s0.ActiveElems)
	}
}

func TestPartialCoarsenKeepsConformity(t *testing.T) {
	// Coarsen only part of a refined region: reinstated parents adjacent
	// to still-refined neighbours must be re-refined for validity.
	m := meshgen.SmallBox()
	a := New(m)
	a.MarkRegion(geom.AABB{Min: geom.Vec3{}, Max: geom.Vec3{X: 0.6, Y: 1, Z: 1}}, MarkRefine)
	a.Refine()
	checkMesh(t, m, "after refine")
	nRefined := m.NumActiveElems()

	a.MarkRegion(geom.AABB{Min: geom.Vec3{}, Max: geom.Vec3{X: 0.3, Y: 1, Z: 1}}, MarkCoarsen)
	st := a.Coarsen()
	checkMesh(t, m, "after partial coarsen")
	if st.GroupsRemoved == 0 {
		t.Error("expected some coarsening")
	}
	n := m.NumActiveElems()
	if n >= nRefined {
		t.Errorf("mesh did not shrink: %d -> %d", nRefined, n)
	}
	if n < 384 {
		t.Errorf("mesh shrunk below initial size: %d", n)
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-9 {
		t.Errorf("volume = %g, want 1", v)
	}
}

func TestRepeatedAdaptionCycles(t *testing.T) {
	// Multi-level refinement and coarsening across several cycles.
	m := meshgen.SmallBox()
	a := New(m)
	sphere := geom.Sphere{Center: geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}, Radius: 0.35}
	for cycle := 0; cycle < 3; cycle++ {
		a.MarkRegion(sphere, MarkRefine)
		a.Refine()
		checkMesh(t, m, "cycle refine")
	}
	if v := m.TotalVolume(); math.Abs(v-1) > 1e-9 {
		t.Fatalf("volume drifted: %g", v)
	}
	for cycle := 0; cycle < 4; cycle++ {
		a.MarkRegion(geom.All{}, MarkCoarsen)
		a.Coarsen()
		checkMesh(t, m, "cycle coarsen")
	}
	if got := m.NumActiveElems(); got != 384 {
		t.Errorf("after full coarsening: %d elems, want 384", got)
	}
}

func TestMarkRandomFraction(t *testing.T) {
	m := meshgen.SmallBox()
	a := New(m)
	total := m.NumActiveEdges()
	n := a.MarkRandom(0.35, MarkRefine, 42)
	want := int(math.Ceil(0.35 * float64(total)))
	if n != want {
		t.Errorf("marked %d, want %d", n, want)
	}
	if got := a.NumMarked(MarkRefine); got != n {
		t.Errorf("NumMarked = %d, want %d", got, n)
	}
	// Determinism.
	a2 := New(meshgen.SmallBox())
	a2.MarkRandom(0.35, MarkRefine, 42)
	for e := range a.marks {
		if a.marks[e] != a2.marks[e] {
			t.Fatal("MarkRandom not deterministic for equal seeds")
		}
	}
}

func TestSphereForFraction(t *testing.T) {
	m := meshgen.SmallBox()
	c := geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	s := SphereForFraction(m, c, 0.05)
	a := New(m)
	n := a.MarkRegion(s, MarkRefine)
	frac := float64(n) / float64(m.NumActiveEdges())
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("sphere captured %.1f%% of edges, want ≈5%%", 100*frac)
	}
}

func TestBoxForFraction(t *testing.T) {
	// A warped mesh has no distance ties, so the tie-aware quantile can
	// hit the target fraction tightly.
	m := meshgen.RotorDisk(meshgen.RotorParams{
		NR: 8, NTheta: 10, NZ: 6, R0: 0.5, R1: 2, Sweep: 2.5, Height: 1,
	})
	b := BoxForFraction(m, geom.Vec3{X: 0.5, Y: 1.0, Z: 0}, 0.35)
	a := New(m)
	n := a.MarkRegion(b, MarkRefine)
	frac := float64(n) / float64(m.NumActiveEdges())
	if frac < 0.28 || frac > 0.42 {
		t.Errorf("box captured %.1f%% of edges, want ≈35%%", 100*frac)
	}
}

func TestBoxForFractionLatticeBestAchievable(t *testing.T) {
	// On a coarse lattice the Chebyshev shells are discrete; the sizing
	// must return the best achievable shell rather than overshooting to
	// 100% or undershooting to 0.
	m := meshgen.SmallBox()
	c := geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	b := BoxForFraction(m, c, 0.35)
	a := New(m)
	n := a.MarkRegion(b, MarkRefine)
	frac := float64(n) / float64(m.NumActiveEdges())
	if frac <= 0.04 || frac >= 0.99 {
		t.Errorf("box captured %.1f%% of edges: degenerate shell chosen", 100*frac)
	}
}

func TestMarkError(t *testing.T) {
	m := meshgen.UnitCube()
	a := New(m)
	errv := make([]float64, len(m.Edges))
	errv[0] = 1.0
	errv[1] = -1.0
	nr, nc := a.MarkError(errv, 0.5, -0.5)
	if nr != 1 || nc != 1 {
		t.Errorf("marked (%d,%d), want (1,1)", nr, nc)
	}
	if a.MarkOf(0) != MarkRefine || a.MarkOf(1) != MarkCoarsen {
		t.Error("wrong marks applied")
	}
}

func TestInterpolateBisections(t *testing.T) {
	m := singleTet()
	field := []float64{1, 3, 5, 7}
	a := New(m)
	a.SetMark(m.FindEdge(0, 1), MarkRefine)
	a.SetMark(m.FindEdge(2, 3), MarkRefine) // upgrades to 1:8
	a.Refine()
	out := InterpolateBisections(m, field)
	if len(out) != len(m.Verts) {
		t.Fatalf("field length %d != %d verts", len(out), len(m.Verts))
	}
	mid01 := m.Edges[m.FindEdge(0, 1)].Mid
	if out[mid01] != 2 {
		t.Errorf("midpoint(0,1) value = %g, want 2", out[mid01])
	}
	mid23 := m.Edges[m.FindEdge(2, 3)].Mid
	if out[mid23] != 6 {
		t.Errorf("midpoint(2,3) value = %g, want 6", out[mid23])
	}
}

func TestPatternUpgradeProperties(t *testing.T) {
	for p := Pattern(0); p < 64; p++ {
		up := p.Upgrade()
		if !up.Valid() {
			t.Errorf("Upgrade(%06b) = %06b invalid", p, up)
		}
		if p&^up != 0 {
			t.Errorf("Upgrade(%06b) = %06b drops marks", p, up)
		}
		if up.Upgrade() != up {
			t.Errorf("Upgrade not idempotent on %06b", p)
		}
		// Minimality: every valid pattern containing p must be ≥ up in
		// popcount.
		for q := Pattern(0); q < 64; q++ {
			if q.Valid() && p&^q == 0 && popcount(q) < popcount(up) {
				t.Errorf("Upgrade(%06b)=%06b not minimal; %06b fits", p, up, q)
			}
		}
	}
}

func popcount(p Pattern) int {
	n := 0
	for p != 0 {
		n += int(p & 1)
		p >>= 1
	}
	return n
}

func TestKindString(t *testing.T) {
	if KindHalf.String() != "1:2" || KindQuarter.String() != "1:4" || KindFull.String() != "1:8" || KindNone.String() != "none" {
		t.Error("Kind strings wrong")
	}
	if Local1.String() != "Local_1" || Local2.String() != "Local_2" || Random.String() != "Random" {
		t.Error("Strategy strings wrong")
	}
}

func TestChildrenTrackRootAndLevel(t *testing.T) {
	m := meshgen.UnitCube()
	a := New(m)
	a.MarkRegion(geom.All{}, MarkRefine)
	a.Refine()
	for i := range m.Elems {
		el := &m.Elems[i]
		if !el.Active() {
			continue
		}
		if el.Level == 1 {
			if el.Parent == mesh.InvalidElem {
				t.Fatal("level-1 element without parent")
			}
			if el.Root != m.Elems[el.Parent].Root {
				t.Fatal("child root != parent root")
			}
		}
	}
}
