// Package adapt implements the 3D_TAG tetrahedral mesh adaption scheme of
// Biswas & Strawn as parallelized in Biswas, Oliker & Sohn (SC'96): edges
// are targeted for refinement or coarsening, element edge-marking patterns
// are upgraded to one of the three valid subdivision types (1:2, 1:4,
// 1:8) by an iterative propagation process, marked edges are bisected, and
// elements are subdivided independently according to their final binary
// patterns. Coarsening removes sibling groups whose edges are targeted for
// removal, reinstates their parents, and re-invokes refinement to restore
// a valid conforming mesh. Edges cannot be coarsened beyond the initial
// mesh.
package adapt

import "math/bits"

// Pattern is the 6-bit element edge-marking pattern of the paper: bit i is
// set when local edge i (see mesh.ElemEdgeVerts) is targeted for
// subdivision.
type Pattern uint8

// The three allowed subdivision shapes.
const (
	// PatternNone leaves the element untouched.
	PatternNone Pattern = 0
	// PatternFull is the isotropic 1:8 subdivision (all six edges).
	PatternFull Pattern = 0x3F
)

// facePatterns lists the four valid 1:4 patterns — the three edges of one
// face (mesh.ElemFaceEdges).
var facePatterns = [4]Pattern{
	1<<0 | 1<<1 | 1<<3, // face (0,1,2)
	1<<0 | 1<<2 | 1<<4, // face (0,1,3)
	1<<1 | 1<<2 | 1<<5, // face (0,2,3)
	1<<3 | 1<<4 | 1<<5, // face (1,2,3)
}

// Kind classifies a valid pattern.
type Kind uint8

// Subdivision kinds, ordered by how many children they produce.
const (
	KindNone    Kind = iota // no subdivision
	KindHalf                // 1:2, one bisected edge
	KindQuarter             // 1:4, three bisected edges of one face
	KindFull                // 1:8, all six edges bisected
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindHalf:
		return "1:2"
	case KindQuarter:
		return "1:4"
	case KindFull:
		return "1:8"
	}
	return "invalid"
}

// Valid reports whether p is one of the allowed subdivision patterns:
// no edges, exactly one edge, the three edges of one face, or all six.
func (p Pattern) Valid() bool {
	switch bits.OnesCount8(uint8(p)) {
	case 0, 1:
		return true
	case 3:
		for _, fp := range facePatterns {
			if p == fp {
				return true
			}
		}
		return false
	case 6:
		return true
	}
	return false
}

// Kind returns the subdivision kind of a valid pattern. It panics on
// invalid patterns (callers must Upgrade first).
func (p Pattern) Kind() Kind {
	switch bits.OnesCount8(uint8(p)) {
	case 0:
		return KindNone
	case 1:
		return KindHalf
	case 3:
		if p.Valid() {
			return KindQuarter
		}
	case 6:
		return KindFull
	}
	panic("adapt: Kind of invalid pattern")
}

// Upgrade returns the minimal valid pattern containing p: the paper's
// element-upgrade rule that drives marking propagation. A single marked
// edge stays 1:2; two or three marks that fit inside one face become that
// face's 1:4; anything else becomes the isotropic 1:8.
func (p Pattern) Upgrade() Pattern {
	n := bits.OnesCount8(uint8(p))
	switch {
	case n == 0 || n == 1:
		return p
	case n <= 3:
		for _, fp := range facePatterns {
			if p&^fp == 0 {
				return fp
			}
		}
		return PatternFull
	default:
		return PatternFull
	}
}

// EdgeBit returns the pattern with only local edge le set.
func EdgeBit(le int) Pattern { return Pattern(1) << le }

// Has reports whether local edge le is set in p.
func (p Pattern) Has(le int) bool { return p&(1<<le) != 0 }

// FaceOf returns the local face index of a 1:4 pattern, or -1 for other
// patterns.
func (p Pattern) FaceOf() int {
	for f, fp := range facePatterns {
		if p == fp {
			return f
		}
	}
	return -1
}

// SoleEdge returns the local edge index of a 1:2 pattern, or -1 for other
// patterns.
func (p Pattern) SoleEdge() int {
	if bits.OnesCount8(uint8(p)) != 1 {
		return -1
	}
	return bits.TrailingZeros8(uint8(p))
}
