package adapt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
)

// TestPropertyRandomMarkingInvariants drives the adaptor with arbitrary
// random mark sets and verifies the structural invariants hold after every
// refinement: valid mesh, conserved volume, no active element on a
// bisected edge.
func TestPropertyRandomMarkingInvariants(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		frac := 0.02 + float64(fracRaw%50)/100.0 // 2%..51%
		m := meshgen.Box(3, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
		a := New(m)
		a.MarkRandom(frac, MarkRefine, seed)
		a.Refine()
		if err := m.Check(); err != nil {
			t.Logf("seed=%d frac=%.2f: %v", seed, frac, err)
			return false
		}
		if v := m.TotalVolume(); math.Abs(v-1) > 1e-9 {
			t.Logf("seed=%d frac=%.2f: volume %g", seed, frac, v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRefineCoarsenRoundTrip checks that a single refinement
// followed by coarsening of everything restores the exact initial counts,
// for arbitrary random mark sets.
func TestPropertyRefineCoarsenRoundTrip(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		frac := 0.02 + float64(fracRaw%40)/100.0
		m := meshgen.Box(3, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
		s0 := m.Stats()
		a := New(m)
		a.MarkRandom(frac, MarkRefine, seed)
		a.Refine()
		a.MarkRegion(geom.All{}, MarkCoarsen)
		a.Coarsen()
		s1 := m.Stats()
		if s1.Verts != s0.Verts || s1.ActiveEdges != s0.ActiveEdges ||
			s1.ActiveElems != s0.ActiveElems || s1.ActiveFaces != s0.ActiveFaces {
			t.Logf("seed=%d frac=%.2f: %+v -> %+v", seed, frac, s0, s1)
			return false
		}
		return m.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMultiCycleStability stresses repeated refine/coarsen cycles
// with drifting random regions; the mesh must stay valid and never shrink
// below the initial size.
func TestPropertyMultiCycleStability(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := meshgen.Box(3, 3, 3, geom.Vec3{X: 1, Y: 1, Z: 1})
	initial := m.NumActiveElems()
	a := New(m)
	for cycle := 0; cycle < 8; cycle++ {
		c := geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		a.MarkRegion(geom.Sphere{Center: c, Radius: 0.3}, MarkRefine)
		a.Refine()
		if err := m.Check(); err != nil {
			t.Fatalf("cycle %d refine: %v", cycle, err)
		}
		c2 := geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		a.MarkRegion(geom.Sphere{Center: c2, Radius: 0.4}, MarkCoarsen)
		a.Coarsen()
		if err := m.Check(); err != nil {
			t.Fatalf("cycle %d coarsen: %v", cycle, err)
		}
		if got := m.NumActiveElems(); got < initial {
			t.Fatalf("cycle %d: %d elems below initial %d", cycle, got, initial)
		}
		if v := m.TotalVolume(); math.Abs(v-1) > 1e-9 {
			t.Fatalf("cycle %d: volume %g", cycle, v)
		}
	}
	// Compaction after heavy churn must preserve everything.
	before := m.Stats()
	a.Compact()
	after := m.Stats()
	if before != after {
		t.Fatalf("compaction changed stats: %+v -> %+v", before, after)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("after compact: %v", err)
	}
}

// TestPropertyLeafVolumesSumToRoots verifies, per refinement tree, that
// the leaves exactly tile the root element (the basis of the Wcomp/Wremap
// weight semantics).
func TestPropertyLeafVolumesSumToRoots(t *testing.T) {
	m := meshgen.SmallBox()
	a := New(m)
	a.MarkRandom(0.15, MarkRefine, 5)
	a.Refine()
	a.MarkRandom(0.1, MarkRefine, 9)
	a.Refine()

	rootVol := map[mesh.ElemID]float64{}
	leafVol := map[mesh.ElemID]float64{}
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Dead {
			continue
		}
		if t.Level == 0 {
			rootVol[t.Root] += 0 // ensure key
		}
	}
	for i := range m.Elems {
		el := &m.Elems[i]
		if el.Dead {
			continue
		}
		if el.Level == 0 {
			rootVol[el.Root] = m.ElemVolume(mesh.ElemID(i))
		}
		if el.Active() {
			leafVol[el.Root] += m.ElemVolume(mesh.ElemID(i))
		}
	}
	for root, rv := range rootVol {
		if lv := leafVol[root]; math.Abs(lv-rv) > 1e-12*(1+rv) {
			t.Fatalf("root %d: leaves sum to %g, root volume %g", root, lv, rv)
		}
	}
}

// TestMarksSurviveCompaction checks mark remapping through Compact.
func TestMarksSurviveCompaction(t *testing.T) {
	m := meshgen.SmallBox()
	a := New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Radius: 0.3}, MarkRefine)
	a.Refine()
	a.MarkRegion(geom.All{}, MarkCoarsen)
	a.Coarsen()
	// Set a fresh mark, compact, and confirm it moved with the edge.
	e := mesh.InvalidEdge
	for ei := range m.Edges {
		if a.activeEdge(mesh.EdgeID(ei)) {
			e = mesh.EdgeID(ei)
			break
		}
	}
	if e == mesh.InvalidEdge {
		t.Fatal("no active edge")
	}
	v0, v1 := m.Edges[e].V[0], m.Edges[e].V[1]
	a.SetMark(e, MarkRefine)
	cm := a.Compact()
	ne := m.FindEdge(cm.Vert[v0], cm.Vert[v1])
	if a.MarkOf(ne) != MarkRefine {
		t.Error("mark lost through compaction")
	}
}
