package adapt

import "plum/internal/mesh"

// CoarsenStats summarizes one coarsening pass.
type CoarsenStats struct {
	// GroupsRemoved counts element sibling groups whose parent was
	// reinstated.
	GroupsRemoved int
	// ElemsRemoved counts child elements purged.
	ElemsRemoved int
	// FaceGroupsRemoved counts boundary-face sibling groups reinstated.
	FaceGroupsRemoved int
	// EdgesPurged and VertsPurged count objects removed by the cleanup
	// sweep.
	EdgesPurged int
	VertsPurged int
	// Rerefine is the statistics of the refinement pass that restores a
	// valid conforming mesh after the removals (the paper re-invokes the
	// refinement routine "to generate a valid mesh from the vertices left
	// after the coarsening").
	Rerefine RefineStats
}

// Coarsen performs one coarsening pass: every sibling group in which any
// child element has an edge marked MarkCoarsen is removed and its parent
// reinstated; boundary faces follow; orphaned edges and vertices are
// purged; and the refinement routine is re-invoked so that reinstated
// parents whose edges are still bisected (because neighbours remain
// refined) are re-subdivided to a valid pattern. Marks are consumed.
//
// Edges cannot be coarsened beyond the initial mesh: marks on level-0
// edges whose elements have no parent are simply ignored.
func (a *Adaptor) Coarsen() CoarsenStats {
	var st CoarsenStats

	// --- Phase 1: remove targeted sibling groups, deepest first, looping
	// so that multi-level trees unwind. ---
	for {
		n := a.removeElemGroups(&st)
		nf := a.removeFaceGroups(&st)
		if n+nf == 0 {
			break
		}
	}

	// --- Phase 2: purge orphaned edges and vertices. ---
	a.cleanup(&st)

	// --- Phase 3: consume coarsen marks and restore validity. ---
	a.clearMark(MarkCoarsen)
	st.Rerefine = a.Refine()
	return st
}

// removeElemGroups does one sweep removing sibling groups triggered by
// coarsen marks and returns how many were removed. A group is removable
// when all children are active leaves (deeper levels must unwind first)
// and at least one child edge carries a coarsen mark.
func (a *Adaptor) removeElemGroups(st *CoarsenStats) int {
	m := a.M
	removed := 0
	nElems := len(m.Elems)
	for ti := 0; ti < nElems; ti++ {
		t := &m.Elems[ti]
		if t.Dead || len(t.Children) == 0 {
			continue
		}
		all := true
		trigger := false
		for _, c := range t.Children {
			ch := &m.Elems[c]
			if !ch.Active() {
				all = false
				break
			}
			for _, e := range ch.E {
				if a.MarkOf(e) == MarkCoarsen {
					trigger = true
				}
			}
		}
		if !all || !trigger {
			continue
		}
		for _, c := range t.Children {
			m.DeactivateElement(c)
			m.KillElement(c)
			st.ElemsRemoved++
		}
		m.ReactivateElement(mesh.ElemID(ti))
		removed++
		st.GroupsRemoved++
	}
	return removed
}

// removeFaceGroups reinstates boundary-face parents whose children became
// stale: a child face referencing an edge with no incident active element
// cannot survive (in a valid mesh every boundary edge bounds at least one
// element). This happens exactly when the adjacent element group was
// coarsened away.
func (a *Adaptor) removeFaceGroups(st *CoarsenStats) int {
	m := a.M
	removed := 0
	nFaces := len(m.Faces)
	for fi := 0; fi < nFaces; fi++ {
		f := &m.Faces[fi]
		if f.Dead || len(f.Children) == 0 {
			continue
		}
		all := true
		stale := false
		for _, c := range f.Children {
			cf := &m.Faces[c]
			if !cf.Active() {
				all = false
				break
			}
			for _, e := range cf.E {
				if len(m.Edges[e].Elems) == 0 {
					stale = true
				}
			}
		}
		if !all || !stale {
			continue
		}
		for _, c := range f.Children {
			m.KillFace(c)
		}
		m.ReactivateFace(mesh.FaceID(fi))
		removed++
		st.FaceGroupsRemoved++
	}
	return removed
}

// cleanup purges orphaned refinement objects to a fixpoint: child-edge
// pairs with no users are removed and their parent edge reactivated;
// subdivision-created interior edges (spokes, mid-face edges, octahedron
// diagonals) with no incident elements are removed; midpoint vertices with
// empty incidence lists are removed.
func (a *Adaptor) cleanup(st *CoarsenStats) {
	m := a.M

	// Edges referenced by active boundary faces must survive.
	protected := make(map[mesh.EdgeID]bool)
	for fi := range m.Faces {
		f := &m.Faces[fi]
		if !f.Active() {
			continue
		}
		for _, e := range f.E {
			protected[e] = true
		}
	}

	for changed := true; changed; {
		changed = false
		for ei := range m.Edges {
			ed := &m.Edges[ei]
			if ed.Dead {
				continue
			}
			if ed.Bisected() {
				c0, c1 := ed.Child[0], ed.Child[1]
				if a.edgeUnused(c0, protected) && a.edgeUnused(c1, protected) {
					mid := ed.Mid
					m.KillEdge(c0)
					m.KillEdge(c1)
					m.ReactivateEdge(mesh.EdgeID(ei))
					st.EdgesPurged += 2
					if len(m.Verts[mid].Edges) == 0 {
						m.KillVertex(mid)
						st.VertsPurged++
					}
					changed = true
				}
				continue
			}
			// Interior subdivision edges have no parent linkage and were
			// created fresh; initial-mesh edges always retain incident
			// elements, so an element-free, face-free, parent-free edge is
			// refinement garbage.
			if ed.Parent == mesh.InvalidEdge && len(ed.Elems) == 0 && !protected[mesh.EdgeID(ei)] {
				v0, v1 := ed.V[0], ed.V[1]
				m.KillEdge(mesh.EdgeID(ei))
				st.EdgesPurged++
				for _, v := range [2]mesh.VertID{v0, v1} {
					if !m.Verts[v].Dead && len(m.Verts[v].Edges) == 0 {
						m.KillVertex(v)
						st.VertsPurged++
					}
				}
				changed = true
			}
		}
	}
}

// edgeUnused reports whether e can be purged: live, not further bisected,
// bounding no active element, and not referenced by an active boundary
// face.
func (a *Adaptor) edgeUnused(e mesh.EdgeID, protected map[mesh.EdgeID]bool) bool {
	ed := &a.M.Edges[e]
	return !ed.Dead && !ed.Bisected() && len(ed.Elems) == 0 && !protected[e]
}
