package adapt

import (
	"math"
	"math/rand"
	"sort"

	"plum/internal/geom"
	"plum/internal/mesh"
)

// This file implements the three edge-marking strategies of the paper's
// evaluation (Sec. "Results") plus error-indicator-driven marking:
//
//	Local_1: ≈5% of the edges targeted inside a single spherical region;
//	Local_2: ≈35% of the edges targeted inside a single rectangular region;
//	Random:  edges targeted at random so mesh sizes match Local_2.

// MarkRegion marks every active edge whose midpoint lies in r with mk and
// returns how many edges were marked.
func (a *Adaptor) MarkRegion(r geom.Region, mk Mark) int {
	n := 0
	for ei := range a.M.Edges {
		e := mesh.EdgeID(ei)
		if !a.activeEdge(e) {
			continue
		}
		if r.Contains(a.M.EdgeMid(e)) {
			a.SetMark(e, mk)
			n++
		}
	}
	return n
}

// MarkRandom marks ⌈frac·(active edges)⌉ uniformly random active edges
// with mk using the given seed, and returns how many were marked.
func (a *Adaptor) MarkRandom(frac float64, mk Mark, seed int64) int {
	var active []mesh.EdgeID
	for ei := range a.M.Edges {
		e := mesh.EdgeID(ei)
		if a.activeEdge(e) {
			active = append(active, e)
		}
	}
	want := int(math.Ceil(frac * float64(len(active))))
	if want > len(active) {
		want = len(active)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
	for _, e := range active[:want] {
		a.SetMark(e, mk)
	}
	return want
}

// MarkError applies the paper's error-indicator rule: edges whose error
// exceeds hi are targeted for subdivision; edges whose error lies below lo
// are targeted for removal. err is indexed by EdgeID; missing entries are
// treated as zero. It returns (refined, coarsened) counts.
func (a *Adaptor) MarkError(err []float64, hi, lo float64) (nRefine, nCoarsen int) {
	for ei := range a.M.Edges {
		e := mesh.EdgeID(ei)
		if !a.activeEdge(e) {
			continue
		}
		v := 0.0
		if ei < len(err) {
			v = err[ei]
		}
		switch {
		case v > hi:
			a.SetMark(e, MarkRefine)
			nRefine++
		case v < lo:
			a.SetMark(e, MarkCoarsen)
			nCoarsen++
		}
	}
	return nRefine, nCoarsen
}

// edgeMids returns the midpoints of all active edges.
func edgeMids(m *mesh.Mesh) []geom.Vec3 {
	var mids []geom.Vec3
	for ei := range m.Edges {
		ed := &m.Edges[ei]
		if ed.Dead || ed.Bisected() {
			continue
		}
		mids = append(mids, m.EdgeMid(mesh.EdgeID(ei)))
	}
	return mids
}

// quantileCut returns the cut value v such that the number of entries of d
// with d[i] <= v is as close as possible to frac*len(d). Unlike a plain
// order statistic it is robust to heavy ties (lattice meshes produce whole
// shells of equal distances).
func quantileCut(d []float64, frac float64) float64 {
	sort.Float64s(d)
	target := frac * float64(len(d))
	best := d[len(d)-1]
	bestDiff := math.Abs(float64(len(d)) - target)
	for i := 0; i < len(d); {
		j := i
		for j < len(d) && d[j] == d[i] {
			j++
		}
		// Cutting at value d[i] includes entries [0, j).
		if diff := math.Abs(float64(j) - target); diff < bestDiff {
			best, bestDiff = d[i], diff
		}
		i = j
	}
	return best
}

// SphereForFraction returns a sphere centred at c containing approximately
// frac of the mesh's active edge midpoints: the radius is the tie-aware
// frac-quantile of midpoint distances from c. Used to size the Local_1
// region.
func SphereForFraction(m *mesh.Mesh, c geom.Vec3, frac float64) geom.Sphere {
	mids := edgeMids(m)
	d := make([]float64, len(mids))
	for i, p := range mids {
		d[i] = p.Dist(c)
	}
	return geom.Sphere{Center: c, Radius: quantileCut(d, frac)}
}

// BoxForFraction returns an axis-aligned box centred at c containing
// approximately frac of the mesh's active edge midpoints: the half-extent
// is the frac-quantile of the Chebyshev (max-axis) distances from c,
// scaled per-axis by the mesh bounding-box proportions. Used to size the
// Local_2 region.
func BoxForFraction(m *mesh.Mesh, c geom.Vec3, frac float64) geom.AABB {
	mids := edgeMids(m)
	bb := geom.EmptyAABB()
	for _, p := range mids {
		bb = bb.Extend(p)
	}
	size := bb.Size()
	scale := geom.Vec3{X: math.Max(size.X, 1e-300), Y: math.Max(size.Y, 1e-300), Z: math.Max(size.Z, 1e-300)}
	d := make([]float64, len(mids))
	for i, p := range mids {
		dx := math.Abs(p.X-c.X) / scale.X
		dy := math.Abs(p.Y-c.Y) / scale.Y
		dz := math.Abs(p.Z-c.Z) / scale.Z
		d[i] = math.Max(dx, math.Max(dy, dz))
	}
	h := quantileCut(d, frac)
	ext := geom.Vec3{X: h * scale.X, Y: h * scale.Y, Z: h * scale.Z}
	return geom.NewAABB(c.Sub(ext), c.Add(ext))
}

// Strategy identifies one of the paper's three edge-marking scenarios.
type Strategy int

// The paper's marking strategies.
const (
	// Local1 targets ≈5% of the edges inside a single spherical region;
	// coarsening then undoes all of the refinement.
	Local1 Strategy = iota
	// Local2 targets ≈35% of the edges inside a single rectangular
	// region; coarsening is performed within a rectangular subregion.
	Local2
	// Random targets edges randomly so the mesh sizes after refinement
	// and coarsening approximately equal those of Local2.
	Random
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Local1:
		return "Local_1"
	case Local2:
		return "Local_2"
	case Random:
		return "Random"
	}
	return "unknown"
}

// Strategies lists the three paper scenarios in presentation order.
var Strategies = []Strategy{Local1, Local2, Random}

// MarkStrategyRefine applies the strategy's refinement marking to the
// current mesh and returns the number of edges marked. seed only affects
// Random.
func (a *Adaptor) MarkStrategyRefine(s Strategy, seed int64) int {
	switch s {
	case Local1:
		c := meshCenter(a.M)
		return a.MarkRegion(SphereForFraction(a.M, c, 0.05), MarkRefine)
	case Local2:
		c := meshCenter(a.M)
		return a.MarkRegion(BoxForFraction(a.M, c, 0.35), MarkRefine)
	case Random:
		// The paper targets edges randomly "such that the mesh sizes
		// after both refinement and coarsening were approximately equal
		// to those obtained in the Local_2 case". Random marks amplify
		// heavily through pattern upgrades (scattered marks push most
		// touched elements to 1:8), so the raw rate is calibrated well
		// below Local_2's 35%: marking 8% of edges yields ≈3.4× element
		// growth on the paper-scale mesh, matching Local_2.
		return a.MarkRandom(randomRefineFrac, MarkRefine, seed)
	}
	return 0
}

// Calibrated Random-strategy rates (see MarkStrategyRefine and
// MarkStrategyCoarsen).
const (
	randomRefineFrac  = 0.08
	randomCoarsenFrac = 0.17
)

// MarkStrategyCoarsen applies the strategy's coarsening marking (after its
// refinement step) and returns the number of edges marked:
// Local_1 undoes all refinement; Local_2 coarsens a rectangular subregion
// of the refined zone; Random coarsens randomly at a rate chosen so the
// final size roughly matches Local_2's.
func (a *Adaptor) MarkStrategyCoarsen(s Strategy, seed int64) int {
	switch s {
	case Local1:
		return a.MarkRegion(geom.All{}, MarkCoarsen)
	case Local2:
		c := meshCenter(a.M)
		// Coarsen within a subregion holding roughly half the (now much
		// denser) refined zone.
		return a.MarkRegion(BoxForFraction(a.M, c, 0.5), MarkCoarsen)
	case Random:
		// Scattered coarsen marks are mostly undone by the conformity
		// re-refinement (a removed group bordering a surviving refined
		// group is immediately re-split), so the effective shrink has a
		// sharp transition in the marking rate. 17% sits on the
		// transition and halves the refined mesh, matching the paper's
		// Random row of Table 1.
		return a.MarkRandom(randomCoarsenFrac, MarkCoarsen, seed+1)
	}
	return 0
}

// meshCenter returns the mass centroid of the live vertices. Unlike the
// bounding-box centre this always sits inside (or very near) the mesh
// material, which matters for hollow domains such as the rotor-disk
// annulus.
func meshCenter(m *mesh.Mesh) geom.Vec3 {
	var c geom.Vec3
	n := 0.0
	for i := range m.Verts {
		if !m.Verts[i].Dead {
			c = c.Add(m.Verts[i].Pos)
			n++
		}
	}
	if n == 0 {
		return geom.Vec3{}
	}
	return c.Scale(1 / n)
}

// InterpolateBisections extends a vertex-indexed solution field across the
// mesh's bisection log: the value at each midpoint is the linear
// interpolation (average) of its edge endpoints, applied in creation order
// (the paper linearly interpolates the solution vector at the mid-point
// from the two points that constitute the original edge). The returned
// slice has one entry per mesh vertex.
func InterpolateBisections(m *mesh.Mesh, field []float64) []float64 {
	out := make([]float64, len(m.Verts))
	copy(out, field)
	for _, b := range m.Bisections {
		out[b.Mid] = 0.5 * (out[b.A] + out[b.B])
	}
	return out
}
