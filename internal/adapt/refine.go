package adapt

import (
	"fmt"

	"plum/internal/mesh"
)

// RefineStats summarizes one refinement pass.
type RefineStats struct {
	// Propagations counts element pattern-upgrade visits during the
	// marking-propagation fixpoint (the process that requires
	// communication rounds in the parallel version).
	Propagations int
	// EdgesBisected is the number of edges split this pass.
	EdgesBisected int
	// Subdivided counts subdivided elements by kind (indexed by Kind).
	Subdivided [4]int
	// NewElems is the number of child elements created.
	NewElems int
	// FacesSubdivided is the number of boundary faces split.
	FacesSubdivided int
}

// TotalSubdivided returns the number of elements that were subdivided.
func (s RefineStats) TotalSubdivided() int {
	return s.Subdivided[KindHalf] + s.Subdivided[KindQuarter] + s.Subdivided[KindFull]
}

// patternOf returns the element's current 6-bit pattern: local edges that
// are marked for refinement or already bisected (the latter occurs for
// parents reinstated by coarsening, which must be re-subdivided to restore
// a conforming mesh).
func (a *Adaptor) patternOf(t *mesh.Element) Pattern {
	var p Pattern
	for le, e := range t.E {
		if a.M.Edges[e].Bisected() || a.MarkOf(e) == MarkRefine {
			p |= EdgeBit(le)
		}
	}
	return p
}

// Refine performs refinement rounds until the mesh is conforming: in the
// common case (fresh marks on a conforming mesh) a single round suffices,
// but after coarsening a reinstated parent may sit on a multi-level edge
// tree, in which case its children are split again in further rounds until
// no active element references a bisected edge.
func (a *Adaptor) Refine() RefineStats {
	var st RefineStats
	for {
		round := a.refineRound()
		st.Propagations += round.Propagations
		st.EdgesBisected += round.EdgesBisected
		for k := range st.Subdivided {
			st.Subdivided[k] += round.Subdivided[k]
		}
		st.NewElems += round.NewElems
		st.FacesSubdivided += round.FacesSubdivided
		if round.TotalSubdivided() == 0 && round.FacesSubdivided == 0 {
			return st
		}
	}
}

// refineRound performs one refinement pass: it upgrades element patterns
// to the valid set {1:2, 1:4, 1:8} with full propagation, bisects every
// targeted edge, independently subdivides each element according to its
// final binary pattern, splits boundary faces to match, and consumes the
// refine marks.
func (a *Adaptor) refineRound() RefineStats {
	var st RefineStats
	m := a.M

	// --- Phase 1: marking propagation to a fixpoint. ---
	// Seed the worklist with every active element whose pattern is
	// nonzero; propagate upgrades through edge incidence lists.
	queue := make([]mesh.ElemID, 0, 1024)
	queued := make([]bool, len(m.Elems))
	push := func(el mesh.ElemID) {
		if !queued[el] && m.Elems[el].Active() {
			queued[el] = true
			queue = append(queue, el)
		}
	}
	for ti := range m.Elems {
		t := &m.Elems[ti]
		if t.Active() && a.patternOf(t) != 0 {
			push(mesh.ElemID(ti))
		}
	}
	for len(queue) > 0 {
		el := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queued[el] = false
		t := &m.Elems[el]
		if !t.Active() {
			continue
		}
		st.Propagations++
		p := a.patternOf(t)
		up := p.Upgrade()
		add := up &^ p
		if add == 0 {
			continue
		}
		for le := 0; le < 6; le++ {
			if !add.Has(le) {
				continue
			}
			e := t.E[le]
			a.SetMark(e, MarkRefine)
			// Neighbours sharing the newly marked edge must re-check
			// their patterns (this is the communication step in the
			// distributed implementation).
			for _, nb := range m.Edges[e].Elems {
				push(nb)
			}
		}
	}

	// --- Phase 2: bisect all targeted edges. ---
	// Only edges marked before this loop matter; BisectEdge creates new
	// edges (never marked) so iterating the snapshot is safe.
	nMarks := len(a.marks)
	for e := 0; e < nMarks; e++ {
		if a.marks[e] != MarkRefine {
			continue
		}
		ed := &m.Edges[e]
		if ed.Dead {
			continue
		}
		if !ed.Bisected() {
			m.BisectEdge(mesh.EdgeID(e))
			st.EdgesBisected++
		}
	}

	// --- Phase 3: subdivide each element independently. ---
	nElems := len(m.Elems)
	for ti := 0; ti < nElems; ti++ {
		t := &m.Elems[ti]
		if !t.Active() {
			continue
		}
		var p Pattern
		for le, e := range t.E {
			if m.Edges[e].Bisected() {
				p |= EdgeBit(le)
			}
		}
		if p == 0 {
			continue
		}
		if !p.Valid() {
			panic(fmt.Sprintf("adapt: element %d has invalid final pattern %06b", ti, p))
		}
		kids := a.subdivideElem(mesh.ElemID(ti), p)
		st.Subdivided[p.Kind()]++
		st.NewElems += kids
	}

	// --- Phase 4: split boundary faces to match their edges. ---
	st.FacesSubdivided = a.refineFaces()

	// --- Phase 5: consume the refine marks. ---
	a.clearMark(MarkRefine)
	return st
}

// mid returns the midpoint vertex of the element's local edge le.
func (a *Adaptor) mid(t *mesh.Element, le int) mesh.VertID {
	return a.M.Edges[t.E[le]].Mid
}

// subdivideElem splits element el according to its valid nonzero pattern
// and returns the number of children created.
func (a *Adaptor) subdivideElem(el mesh.ElemID, p Pattern) int {
	m := a.M
	t := &m.Elems[el]
	v := t.V
	root := t.Root
	level := t.Level + 1

	// Capture midpoints before any append invalidates t.
	var mids [6]mesh.VertID
	for le := 0; le < 6; le++ {
		if p.Has(le) {
			mids[le] = a.mid(t, le)
		} else {
			mids[le] = mesh.InvalidVert
		}
	}

	m.DeactivateElement(el)

	var kids []mesh.ElemID
	add := func(a0, a1, a2, a3 mesh.VertID) {
		kids = append(kids, m.AddElement(a0, a1, a2, a3, el, root, level))
	}

	switch p.Kind() {
	case KindHalf:
		// 1:2 — bisect one edge; each child replaces one endpoint of the
		// split edge by the midpoint.
		le := p.SoleEdge()
		lv := mesh.ElemEdgeVerts[le]
		var others []int
		for i := 0; i < 4; i++ {
			if i != lv[0] && i != lv[1] {
				others = append(others, i)
			}
		}
		mid := mids[le]
		add(v[lv[0]], mid, v[others[0]], v[others[1]])
		add(mid, v[lv[1]], v[others[0]], v[others[1]])

	case KindQuarter:
		// 1:4 — one face fully bisected; three corner children plus the
		// centre child over the mid-face triangle, all with the apex.
		f := p.FaceOf()
		fv := mesh.ElemFaceVerts[f]
		apex := 0 + 1 + 2 + 3 - fv[0] - fv[1] - fv[2]
		mab := mids[mesh.LocalEdge(fv[0], fv[1])]
		mac := mids[mesh.LocalEdge(fv[0], fv[2])]
		mbc := mids[mesh.LocalEdge(fv[1], fv[2])]
		add(v[fv[0]], mab, mac, v[apex])
		add(mab, v[fv[1]], mbc, v[apex])
		add(mac, mbc, v[fv[2]], v[apex])
		add(mab, mbc, mac, v[apex])

	case KindFull:
		// 1:8 — four corner children plus the inner octahedron split into
		// four along its shortest diagonal.
		// Corner children: each original vertex with the midpoints of its
		// three incident edges.
		for i := 0; i < 4; i++ {
			var ms [3]mesh.VertID
			k := 0
			for j := 0; j < 4; j++ {
				if j == i {
					continue
				}
				ms[k] = mids[mesh.LocalEdge(i, j)]
				k++
			}
			add(v[i], ms[0], ms[1], ms[2])
		}
		// Octahedron diagonals connect midpoints of opposite edges:
		// local edge pairs (0,5), (1,4), (2,3). The equator of each
		// diagonal is a 4-cycle of the remaining midpoints.
		diags := [3][2]int{{0, 5}, {1, 4}, {2, 3}}
		equators := [3][4]int{
			{1, 3, 4, 2}, // around diagonal m01–m23
			{0, 3, 5, 2}, // around diagonal m02–m13
			{0, 1, 5, 4}, // around diagonal m03–m12
		}
		best, bestLen := 0, -1.0
		for d, pr := range diags {
			l := m.Verts[mids[pr[0]]].Pos.Dist(m.Verts[mids[pr[1]]].Pos)
			if bestLen < 0 || l < bestLen {
				best, bestLen = d, l
			}
		}
		d0, d1 := mids[diags[best][0]], mids[diags[best][1]]
		eq := equators[best]
		for i := 0; i < 4; i++ {
			add(d0, d1, mids[eq[i]], mids[eq[(i+1)%4]])
		}
	}

	m.Elems[el].Children = kids
	return len(kids)
}

// refineFaces splits every active boundary face whose edges were bisected,
// matching the adjacent element subdivision. A face sees either one or all
// three of its edges bisected (a consequence of the valid element
// patterns); anything else indicates a broken invariant.
func (a *Adaptor) refineFaces() int {
	m := a.M
	n := 0
	nFaces := len(m.Faces)
	for fi := 0; fi < nFaces; fi++ {
		f := &m.Faces[fi]
		if !f.Active() {
			continue
		}
		var split [3]bool
		cnt := 0
		for i, e := range f.E {
			if m.Edges[e].Bisected() {
				split[i] = true
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		v := f.V
		// Edge order within a face: E[0]=(V0,V1), E[1]=(V0,V2), E[2]=(V1,V2).
		midOf := func(i int) mesh.VertID { return m.Edges[f.E[i]].Mid }
		id := mesh.FaceID(fi)
		switch cnt {
		case 1:
			// Split into two triangles through the midpoint and the
			// opposite vertex.
			switch {
			case split[0]:
				mid := midOf(0)
				m.AddChildFace(id, v[0], mid, v[2])
				m.AddChildFace(id, mid, v[1], v[2])
			case split[1]:
				mid := midOf(1)
				m.AddChildFace(id, v[0], mid, v[1])
				m.AddChildFace(id, mid, v[2], v[1])
			default:
				mid := midOf(2)
				m.AddChildFace(id, v[1], mid, v[0])
				m.AddChildFace(id, mid, v[2], v[0])
			}
		case 3:
			m01, m02, m12 := midOf(0), midOf(1), midOf(2)
			m.AddChildFace(id, v[0], m01, m02)
			m.AddChildFace(id, m01, v[1], m12)
			m.AddChildFace(id, m02, m12, v[2])
			m.AddChildFace(id, m01, m12, m02)
		default:
			panic(fmt.Sprintf("adapt: boundary face %d has %d bisected edges", fi, cnt))
		}
		m.DeactivateFace(id)
		n++
	}
	return n
}
