package adapt

import "plum/internal/mesh"

// Mark is the per-edge adaption target of the paper: each edge is targeted
// for subdivision, for removal, or left alone, based on an error indicator
// computed from the flow solution.
type Mark uint8

// Edge marks.
const (
	MarkNone Mark = iota
	MarkRefine
	MarkCoarsen
)

// Adaptor drives 3D_TAG mesh adaption on a Mesh: callers set edge marks
// (directly or through the strategy helpers), then invoke Refine and/or
// Coarsen.
type Adaptor struct {
	M *mesh.Mesh

	marks []Mark
}

// New returns an Adaptor for m with no edges marked.
func New(m *mesh.Mesh) *Adaptor {
	return &Adaptor{M: m, marks: make([]Mark, len(m.Edges))}
}

func (a *Adaptor) ensure(e mesh.EdgeID) {
	for int(e) >= len(a.marks) {
		a.marks = append(a.marks, MarkNone)
	}
}

// SetMark sets the mark of edge e.
func (a *Adaptor) SetMark(e mesh.EdgeID, mk Mark) {
	a.ensure(e)
	a.marks[e] = mk
}

// MarkOf returns the current mark of edge e.
func (a *Adaptor) MarkOf(e mesh.EdgeID) Mark {
	if int(e) >= len(a.marks) {
		return MarkNone
	}
	return a.marks[e]
}

// NumMarked returns how many edges currently carry mark mk.
func (a *Adaptor) NumMarked(mk Mark) int {
	n := 0
	for _, m := range a.marks {
		if m == mk {
			n++
		}
	}
	return n
}

// MarksSnapshot exposes the per-edge mark array (indexed by EdgeID) for
// read-only inspection by the distributed layer. Callers must not mutate
// it; use SetMark.
func (a *Adaptor) MarksSnapshot() []Mark { return a.marks }

// ClearMarks resets every edge mark to MarkNone.
func (a *Adaptor) ClearMarks() {
	for i := range a.marks {
		a.marks[i] = MarkNone
	}
}

// clearMark resets marks equal to mk.
func (a *Adaptor) clearMark(mk Mark) {
	for i := range a.marks {
		if a.marks[i] == mk {
			a.marks[i] = MarkNone
		}
	}
}

// activeEdge reports whether e is a live, unbisected edge (markable).
func (a *Adaptor) activeEdge(e mesh.EdgeID) bool {
	ed := &a.M.Edges[e]
	return !ed.Dead && !ed.Bisected()
}

// Compact forwards to the mesh's compaction and remaps the mark array
// (paper: "objects are renumbered as a result of compaction and all
// internal and shared data are updated accordingly").
func (a *Adaptor) Compact() mesh.CompactMap {
	cm := a.M.Compact()
	remapped := make([]Mark, len(a.M.Edges))
	for old, mk := range a.marks {
		if mk == MarkNone {
			continue
		}
		if ne := cm.Edge[old]; ne != mesh.InvalidEdge {
			remapped[ne] = mk
		}
	}
	a.marks = remapped
	return cm
}
