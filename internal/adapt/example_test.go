package adapt_test

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// Example demonstrates the basic 3D_TAG adaption loop: mark edges inside a
// region, refine, then coarsen everything back.
func Example() {
	m := meshgen.UnitCube()
	a := adapt.New(m)

	a.MarkRegion(geom.All{}, adapt.MarkRefine)
	st := a.Refine()
	fmt.Println("subdivided:", st.TotalSubdivided(), "elements ->", m.NumActiveElems())

	a.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	a.Coarsen()
	fmt.Println("coarsened back to:", m.NumActiveElems())

	// Output:
	// subdivided: 6 elements -> 48
	// coarsened back to: 6
}

// ExamplePattern_Upgrade shows the element-upgrade rule: two marked edges
// of one face upgrade to the full 1:4 face pattern.
func ExamplePattern_Upgrade() {
	p := adapt.EdgeBit(0) | adapt.EdgeBit(1) // edges (0,1) and (0,2): face (0,1,2)
	up := p.Upgrade()
	fmt.Printf("%06b -> %06b (%s)\n", p, up, up.Kind())

	q := adapt.EdgeBit(0) | adapt.EdgeBit(5) // opposite edges: isotropic
	fmt.Printf("%06b -> %06b (%s)\n", q, q.Upgrade(), q.Upgrade().Kind())

	// Output:
	// 000011 -> 001011 (1:4)
	// 100001 -> 111111 (1:8)
}
