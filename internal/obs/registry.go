package obs

import (
	"sort"
	"strings"
)

// Metric is one snapshotted registry entry. Kind is "counter" or
// "gauge". Counter values are float64 for a single rendering path —
// every counter in the framework is integral and well below 2^53, so no
// precision is lost.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
}

// Registry is a deterministic counters/gauges store. Names may embed
// Prometheus-style labels ('plum_outcomes_total{outcome="committed"}');
// the exporter groups HELP/TYPE comments by the base name before '{'.
// Every method is safe on a nil receiver and does nothing, so
// instrumented code needs no enabled-flag plumbing. Not safe for
// concurrent use — metrics are recorded from serial canonical-order
// code, like trace emission.
type Registry struct {
	counters map[string]float64
	gauges   map[string]float64
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		help:     map[string]string{},
	}
}

// Add increments counter name by delta (creating it at zero).
func (r *Registry) Add(name string, delta float64) {
	if r == nil {
		return
	}
	r.counters[name] += delta
}

// Inc increments counter name by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set sets gauge name to v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.gauges[name] = v
}

// SetHelp attaches a HELP string to a base metric name (the part before
// any '{'), rendered by WritePrometheus.
func (r *Registry) SetHelp(base, text string) {
	if r == nil {
		return
	}
	r.help[base] = text
}

// Counter returns the current value of counter name (0 if absent).
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// Gauge returns the current value of gauge name (0 if absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// Snapshot returns every metric sorted by name — counters and gauges
// interleaved in one canonical order, so two registries fed the same
// history snapshot to identical bytes whatever the recording order was.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for n, v := range r.counters {
		out = append(out, Metric{Name: n, Kind: "counter", Value: v})
	}
	for n, v := range r.gauges {
		out = append(out, Metric{Name: n, Kind: "gauge", Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// baseName strips a Prometheus label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
