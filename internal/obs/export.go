package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The exporters. All three render from the canonical span/event order and
// format floats via the shortest round-trip rendering (encoding/json and
// strconv agree on it), so the output bytes are a pure function of the
// recorded history — the property the CI byte-diffs pin across worker
// counts and GOMAXPROCS.

// perfettoEvent is one Chrome trace-event object. Complete spans use
// ph "X" with microsecond ts/dur; instants use ph "i"; thread-name
// metadata uses ph "M". Field order is fixed by the struct, map args are
// key-sorted by encoding/json — deterministic bytes throughout.
type perfettoEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// perfettoTrace is the top-level trace-event JSON document.
type perfettoTrace struct {
	TraceEvents []perfettoEvent `json:"traceEvents"`
	DisplayUnit string          `json:"displayTimeUnit"`
}

// tidOf maps a span rank to a Perfetto thread id: the framework track is
// tid 0, rank r is tid r+1.
func tidOf(rank int32) int { return int(rank) + 1 }

// WritePerfetto exports the trace as Chrome/Perfetto trace-event JSON:
// one track (tid) per machine rank plus a framework track, complete
// ("X") spans at the modeled times in microseconds, and instant ("i")
// events. Load the file in ui.perfetto.dev or chrome://tracing.
func WritePerfetto(w io.Writer, t *Trace) error {
	doc := perfettoTrace{TraceEvents: []perfettoEvent{}, DisplayUnit: "ms"}

	// Thread-name metadata first, in tid order, so the track names are
	// stable whatever the emission order of the ranks was.
	tids := map[int]bool{}
	for _, s := range t.Spans() {
		tids[tidOf(s.Rank)] = true
	}
	if len(t.Events()) > 0 {
		tids[0] = true // events render on the framework track
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "framework"
		if tid > 0 {
			name = fmt.Sprintf("rank %d", tid-1)
		}
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]string{"name": name},
		})
	}

	// Spans and events interleaved in canonical sequence order.
	spans, events := t.Spans(), t.Events()
	si, ei := 0, 0
	for si < len(spans) || ei < len(events) {
		if ei >= len(events) || (si < len(spans) && spans[si].Seq < events[ei].Seq) {
			s := spans[si]
			si++
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name: s.Stage, Ph: "X", Ts: s.Start * 1e6, Dur: s.Dur * 1e6,
				Pid: 0, Tid: tidOf(s.Rank), Args: attrArgs(s.Attrs),
			})
			continue
		}
		e := events[ei]
		ei++
		args := attrArgs(e.Attrs)
		if args == nil {
			args = map[string]string{}
		}
		args["level"] = e.Level
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: e.Msg, Ph: "i", Ts: e.T * 1e6, Pid: 0, Tid: 0, S: "t", Args: args,
		})
	}

	enc, err := json.MarshalIndent(&doc, "", " ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// attrArgs converts an attribute list to the Perfetto args map (nil when
// empty, so the args key is omitted).
func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// jsonlRecord is one JSONL line: a span or an event, discriminated by
// Kind, in global sequence order.
type jsonlRecord struct {
	Seq   int64   `json:"seq"`
	Kind  string  `json:"kind"`
	Rank  *int32  `json:"rank,omitempty"`
	Stage string  `json:"stage,omitempty"`
	Start float64 `json:"start,omitempty"`
	Dur   float64 `json:"dur,omitempty"`
	T     float64 `json:"t,omitempty"`
	Level string  `json:"level,omitempty"`
	Msg   string  `json:"msg,omitempty"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// WriteJSONL exports the trace as a JSON-lines event log: one object per
// span or event, merged into global sequence order — the
// machine-readable twin of the Perfetto view.
func WriteJSONL(w io.Writer, t *Trace) error {
	spans, events := t.Spans(), t.Events()
	si, ei := 0, 0
	for si < len(spans) || ei < len(events) {
		var rec jsonlRecord
		if ei >= len(events) || (si < len(spans) && spans[si].Seq < events[ei].Seq) {
			s := spans[si]
			si++
			rank := s.Rank
			rec = jsonlRecord{Seq: s.Seq, Kind: "span", Rank: &rank,
				Stage: s.Stage, Start: s.Start, Dur: s.Dur, Attrs: s.Attrs}
		} else {
			e := events[ei]
			ei++
			rec = jsonlRecord{Seq: e.Seq, Kind: "event", T: e.T,
				Level: e.Level, Msg: e.Msg, Attrs: e.Attrs}
		}
		enc, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(enc, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format: # HELP/# TYPE comments per base metric name, then one
// 'name value' line per series, all in sorted-name order.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	lastBase := ""
	for _, m := range snap {
		base := baseName(m.Name)
		if base != lastBase {
			lastBase = base
			if r != nil {
				if h := r.help[base]; h != "" {
					if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
						return err
					}
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.Kind); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, strconv.FormatFloat(m.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
