// Package obs is the deterministic observability layer: a span tracer on
// the modeled machine timeline, a typed counters/gauges registry, and
// exporters (Chrome/Perfetto trace-event JSON, a JSONL event log, and the
// Prometheus text exposition format).
//
// The tracer records *modeled* time — the machine-model clock the balance
// pipeline already computes per stage — not host wall time. Spans are
// emitted in canonical program order from serial code (never inside
// chunked worker loops), and every recorded quantity is worker-invariant
// (totals, modeled phase times, moved counts — never critical-path
// shares, which legitimately depend on the worker knob), so an exported
// trace is byte-identical at any worker count and GOMAXPROCS.
//
// Every method on Trace and Registry is safe on a nil receiver and does
// nothing, so instrumented code needs no enabled-flag plumbing. Because
// variadic attribute slices are built by the *caller*, hot paths must
// still guard emission with an explicit nil check (or route through a
// nil-checking helper that builds the attributes after the check) to stay
// allocation-free when tracing is off; see core's trace helpers.
package obs

import "strconv"

// FrameworkRank is the span rank of framework-level (non-per-rank)
// stages: the solver, the partitioner, the mapper. Exporters render it as
// its own track beside the per-rank tracks.
const FrameworkRank int32 = -1

// Attr is one key/value annotation on a span or event. Values are
// pre-rendered strings so emission order, not type reflection, decides
// the bytes; use the constructors to format deterministically.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: strconv.FormatBool(v)} }

// Float builds a float attribute with the shortest round-trip rendering
// ('g', precision -1) — the same bytes on every platform for the same
// bits, which is what keeps attribute-carrying traces diffable.
func Float(k string, v float64) Attr { return Attr{Key: k, Val: strconv.FormatFloat(v, 'g', -1, 64)} }

// Span is one completed stage on the modeled timeline. Start and Dur are
// modeled seconds; Rank is the machine rank the stage ran on, or
// FrameworkRank for framework-level stages. Seq is the global emission
// sequence number shared with events, fixing a canonical total order.
type Span struct {
	Seq   int64   `json:"seq"`
	Rank  int32   `json:"rank"`
	Stage string  `json:"stage"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// Event is one instantaneous occurrence (a checkpoint capture, a window
// retry, a crash) at modeled time T.
type Event struct {
	Seq   int64   `json:"seq"`
	T     float64 `json:"t"`
	Level string  `json:"level"`
	Msg   string  `json:"msg"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// openSpan is one Begin awaiting its End.
type openSpan struct {
	rank  int32
	stage string
	start float64
	attrs []Attr
}

// Trace accumulates spans and events on the modeled timeline. The
// zero value is ready to use; a nil *Trace is a no-op on every method.
// Trace is not safe for concurrent use — emission happens from serial
// canonical-order code by design (concurrent emission would break the
// determinism contract no matter what a lock did).
type Trace struct {
	seq    int64
	now    float64
	spans  []Span
	events []Event
	open   []openSpan
}

// NewTrace returns an empty trace with the cursor at modeled time zero.
func NewTrace() *Trace { return &Trace{} }

// Enabled reports whether the trace is live (non-nil).
func (t *Trace) Enabled() bool { return t != nil }

// Now returns the modeled-time cursor.
func (t *Trace) Now() float64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Seek moves the modeled-time cursor to ts.
func (t *Trace) Seek(ts float64) {
	if t == nil {
		return
	}
	t.now = ts
}

// Advance moves the modeled-time cursor forward by d seconds.
func (t *Trace) Advance(d float64) {
	if t == nil {
		return
	}
	t.now += d
}

// Begin opens a framework-rank span at the cursor; End closes it. Begins
// nest: End closes the innermost open span.
func (t *Trace) Begin(stage string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.open = append(t.open, openSpan{rank: FrameworkRank, stage: stage, start: t.now, attrs: attrs})
}

// End closes the innermost open span at the cursor, appending any extra
// attributes recorded at completion time (an outcome, a count). Without a
// matching Begin it does nothing.
func (t *Trace) End(attrs ...Attr) {
	if t == nil || len(t.open) == 0 {
		return
	}
	o := t.open[len(t.open)-1]
	t.open = t.open[:len(t.open)-1]
	t.Span(o.rank, o.stage, o.start, t.now-o.start, append(o.attrs, attrs...)...)
}

// Span records one completed stage with an explicit start and duration —
// the workhorse for modeled times computed after the fact (the machine
// clock knows a stage's duration only once the stage has been charged).
func (t *Trace) Span(rank int32, stage string, start, dur float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.seq++
	t.spans = append(t.spans, Span{Seq: t.seq, Rank: rank, Stage: stage, Start: start, Dur: dur, Attrs: attrs})
}

// Event records an instantaneous occurrence at the cursor. level is
// "info", "warn", or "error" by convention.
func (t *Trace) Event(level, msg string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.seq++
	t.events = append(t.events, Event{Seq: t.seq, T: t.now, Level: level, Msg: msg, Attrs: attrs})
}

// Spans returns the recorded spans in emission order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Events returns the recorded events in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}
