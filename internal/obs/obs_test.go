package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// sampleTrace builds a small two-rank trace exercising spans, nesting,
// events, and attributes.
func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Begin("cycle", Int("cycle", 0))
	tr.Span(FrameworkRank, "solver", tr.Now(), 1.5, Int("iters", 3))
	tr.Advance(1.5)
	tr.Event("info", "ckpt.capture", Int("cycle", 0))
	tr.Span(0, "remap.send", tr.Now(), 0.25, Int("words", 1000))
	tr.Span(1, "remap.send", tr.Now(), 0.5)
	tr.Advance(0.5)
	tr.End(String("outcome", "committed"))
	return tr
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.End()
	tr.Span(0, "y", 0, 1)
	tr.Event("info", "z")
	tr.Advance(1)
	tr.Seek(2)
	if tr.Now() != 0 || tr.Enabled() || tr.Spans() != nil || tr.Events() != nil {
		t.Fatal("nil Trace must be inert")
	}
	var reg *Registry
	reg.Inc("a")
	reg.Add("b", 2)
	reg.Set("c", 3)
	reg.SetHelp("a", "h")
	if reg.Counter("a") != 0 || reg.Gauge("c") != 0 || reg.Snapshot() != nil {
		t.Fatal("nil Registry must be inert")
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
}

func TestSpanOrderAndCursor(t *testing.T) {
	tr := sampleTrace()
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// The Begin/End cycle span closes last and covers the whole timeline.
	cy := spans[3]
	if cy.Stage != "cycle" || cy.Start != 0 || cy.Dur != 2.0 || cy.Rank != FrameworkRank {
		t.Fatalf("cycle span wrong: %+v", cy)
	}
	// Seqs strictly increase across spans and events together.
	last := int64(0)
	for _, s := range spans[:3] {
		if s.Seq <= last {
			t.Fatalf("seq not increasing: %+v", s)
		}
		last = s.Seq
	}
	if evs := tr.Events(); len(evs) != 1 || evs[0].T != 1.5 {
		t.Fatalf("events wrong: %+v", evs)
	}
}

func TestPerfettoExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	// Tracks: framework (tid 0) + ranks 0,1 (tids 1,2) → 3 metadata
	// events, then 4 spans + 1 instant.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8", len(doc.TraceEvents))
	}
	for i := 0; i < 3; i++ {
		if doc.TraceEvents[i]["ph"] != "M" {
			t.Fatalf("event %d not thread metadata: %v", i, doc.TraceEvents[i])
		}
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := WritePerfetto(&buf2, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("perfetto export not byte-stable")
	}
}

func TestJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n, lastSeq := 0, int64(0)
	for sc.Scan() {
		var rec struct {
			Seq  int64  `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if rec.Kind != "span" && rec.Kind != "event" {
			t.Fatalf("line %d bad kind %q", n, rec.Kind)
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("line %d seq %d not increasing", n, rec.Seq)
		}
		lastSeq = rec.Seq
		n++
	}
	if n != 5 {
		t.Fatalf("got %d JSONL lines, want 5", n)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Set("z_gauge", 1.5)
	r.Inc("a_total")
	r.Add(`m_total{kind="x"}`, 2)
	r.Add(`m_total{kind="a"}`, 3)
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if len(snap) != 4 || snap[0].Name != "a_total" || snap[0].Kind != "counter" {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
}

// promLine is the Prometheus text exposition line grammar: a metric name
// with an optional label set, one space, a float value. This regex check
// is the promtool-free syntactic gate CI relies on.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

var promComment = regexp.MustCompile(
	`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge))$`)

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("plum_cycles_total", "Completed balance cycles.")
	r.Add("plum_cycles_total", 3)
	r.Add(`plum_outcomes_total{outcome="committed"}`, 2)
	r.Add(`plum_outcomes_total{outcome="rolled-back"}`, 1)
	r.Set("plum_imbalance_after", 1.0625)
	r.Set("plum_alive_ranks", 8)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	typesSeen := 0
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("line %d: bad comment %q", i, line)
			}
			if strings.HasPrefix(line, "# TYPE") {
				typesSeen++
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line %d: bad sample line %q", i, line)
		}
	}
	// One TYPE per base name: cycles, outcomes, imbalance, alive.
	if typesSeen != 4 {
		t.Errorf("got %d TYPE lines, want 4\n%s", typesSeen, buf.String())
	}
}
