package remap_test

import (
	"fmt"

	"plum/internal/remap"
)

// Example walks through the processor-reassignment pipeline on a tiny
// similarity matrix: heuristic mapping, objective, and movement cost.
func Example() {
	// Two processors, F=1. Most of processor 0's data lands in new
	// partition 1 and vice versa: the identity mapping would move almost
	// everything, the similarity-driven mapping almost nothing.
	s := remap.NewSimilarity(2, 1)
	s.S[0][0], s.S[0][1] = 10, 90
	s.S[1][0], s.S[1][1] = 80, 20

	mp, obj := s.Heuristic()
	c, n := s.MoveStats(mp)
	fmt.Printf("mapping=%v objective=%d moved=%d sets=%d\n", mp, obj, c, n)

	cID := remap.Identity(2, 1)
	cBad, _ := s.MoveStats(cID)
	fmt.Printf("identity mapping would move %d\n", cBad)

	// Output:
	// mapping=[1 0] objective=170 moved=30 sets=2
	// identity mapping would move 170
}

// ExampleCostModel shows the paper's gain/cost acceptance rule.
func ExampleCostModel() {
	cost := remap.DefaultSP2()
	// Balancing drops the heaviest processor from 8000 to 1000 elements;
	// the remap moves 50,000 elements in 12 sets.
	fmt.Println("worthwhile:", cost.Worthwhile(8000, 1000, 50000, 12))
	// A negligible improvement never justifies moving everything.
	fmt.Println("worthwhile:", cost.Worthwhile(1010, 1000, 50000, 12))
	// Output:
	// worthwhile: true
	// worthwhile: false
}
