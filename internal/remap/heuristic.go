package remap

// Heuristic computes a processor assignment with the paper's greedy
// mark-and-map algorithm and returns the mapping and its objective 𝒥.
//
// The algorithm repeats two steps until every partition is assigned:
//
//	mark: every processor that still needs partitions marks its largest
//	      unassigned similarity entries (as many as it still needs);
//	map:  every unassigned partition with at least one mark is assigned
//	      to the processor holding the largest marked entry in its
//	      column.
//
// The paper proves the resulting data-movement cost is never more than
// twice the optimal cost, and measures it within 3% of optimal at roughly
// 1% of the optimal algorithm's runtime.
func (s *Similarity) Heuristic() (Mapping, int64) {
	cols := s.Cols()
	mp := make(Mapping, cols)
	for j := range mp {
		mp[j] = -1
	}
	unmapped := make([]int, s.P) // partitions still needed per processor
	for i := range unmapped {
		unmapped[i] = s.F
	}
	remaining := cols

	// marks[j] collects the processors that marked column j this round.
	marks := make([][]int32, cols)
	s.LastOps = 0
	for remaining > 0 {
		s.LastOps += int64(s.P * cols) // one mark+map sweep over the matrix
		for j := range marks {
			marks[j] = marks[j][:0]
		}
		// Mark phase: processor i marks its unmapped[i] largest
		// unassigned entries.
		for i := 0; i < s.P; i++ {
			need := unmapped[i]
			if need == 0 {
				continue
			}
			markLargest(s.S[i], mp, need, int32(i), marks)
		}
		// Map phase: each marked unassigned column goes to the largest
		// marked entry.
		assigned := 0
		for j := 0; j < cols; j++ {
			if mp[j] >= 0 || len(marks[j]) == 0 {
				continue
			}
			best := marks[j][0]
			for _, i := range marks[j][1:] {
				if s.S[i][j] > s.S[best][j] {
					best = i
				}
			}
			mp[j] = best
			unmapped[best]--
			assigned++
		}
		remaining -= assigned
		if assigned == 0 {
			// Cannot happen when Σ unmapped == remaining, but guard
			// against a livelock regardless.
			for j := 0; j < cols && remaining > 0; j++ {
				if mp[j] >= 0 {
					continue
				}
				for i := 0; i < s.P; i++ {
					if unmapped[i] > 0 {
						mp[j] = int32(i)
						unmapped[i]--
						remaining--
						break
					}
				}
			}
		}
	}
	return mp, s.Objective(mp)
}

// markLargest records processor i's marks on the `need` largest entries of
// row among unassigned columns (ties resolved toward lower column
// numbers). It is O(cols·need) with need ≤ F, which beats sorting for the
// small F of practical interest.
func markLargest(row []int64, mp Mapping, need int, i int32, marks [][]int32) {
	type cand struct {
		j int
		w int64
	}
	best := make([]cand, 0, need)
	for j, w := range row {
		if mp[j] >= 0 {
			continue
		}
		// Insert into the running top-`need` list.
		pos := len(best)
		for pos > 0 && best[pos-1].w < w {
			pos--
		}
		if pos < need {
			if len(best) < need {
				best = append(best, cand{})
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = cand{j, w}
		}
	}
	for _, c := range best {
		marks[c.j] = append(marks[c.j], i)
	}
}
