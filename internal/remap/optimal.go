package remap

// Optimal computes the optimal processor assignment — the mapping that
// maximizes the objective 𝒥 — by reducing to maximally weighted bipartite
// matching exactly as the paper does: each processor and all of its
// incident edges are duplicated F times, giving a square (P·F)×(P·F)
// problem solved with the Hungarian algorithm, after which the F copies of
// each processor are combined into a one-to-F mapping.
//
// Complexity is O((P·F)³); the paper reports (and our Fig. 10 bench
// reproduces) roughly two orders of magnitude more runtime than the greedy
// heuristic.
func (s *Similarity) Optimal() (Mapping, int64) {
	n := s.Cols()
	// Build the duplicated cost matrix for minimization: row r is copy
	// r%F of processor r/F; cost = maxS − S so that minimal cost matches
	// maximal weight.
	var maxS int64
	for i := 0; i < s.P; i++ {
		for j := 0; j < n; j++ {
			if s.S[i][j] > maxS {
				maxS = s.S[i][j]
			}
		}
	}
	cost := make([][]int64, n)
	for r := 0; r < n; r++ {
		cost[r] = make([]int64, n)
		proc := r / s.F
		for j := 0; j < n; j++ {
			cost[r][j] = maxS - s.S[proc][j]
		}
	}
	colRow := hungarian(cost)
	s.LastOps = int64(n) * int64(n) * int64(n) // Hungarian inner loops
	mp := make(Mapping, n)
	for j, r := range colRow {
		mp[j] = int32(r / s.F)
	}
	return mp, s.Objective(mp)
}

// hungarian solves the square assignment problem (minimize total cost) and
// returns, for each column, the row assigned to it. Classic O(n³)
// potentials formulation (Jonker–Volgenant style).
func hungarian(cost [][]int64) []int {
	n := len(cost)
	const inf = int64(1) << 62

	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based; 0 = none)
	way := make([]int, n+1) // way[j] = previous column on the alternating path

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	colRow := make([]int, n)
	for j := 1; j <= n; j++ {
		colRow[j-1] = p[j] - 1
	}
	return colRow
}
