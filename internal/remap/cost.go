package remap

// CostModel holds the machine and solver constants of the paper's
// gain/cost decision rule (Sec. "Cost Calculation"):
//
//	gain  = Titer · Nadapt · (Wmax_old − Wmax_new)
//	cost  = C·M·Tlat + N·Tsetup
//
// where C is the number of elements moved, N the number of element sets
// moved, M the words of storage per element, Tlat the remote-memory
// per-word copy time, and Tsetup the per-message setup time. The new
// partitioning and mapping are accepted when gain > cost.
type CostModel struct {
	// Titer is the flow-solver time per iteration per element (seconds).
	Titer float64
	// Nadapt is the expected number of solver iterations until the next
	// mesh adaption.
	Nadapt int
	// Tlat is the remote-memory latency: seconds to copy one word
	// memory-to-memory between processors.
	Tlat float64
	// Tsetup is the per-message setup time (headers, buffer loading).
	Tsetup float64
	// M is the words of storage per element required by the flow solver
	// and mesh adaptor together.
	M int
}

// DefaultSP2 returns cost-model constants of the paper's era (IBM SP2,
// 1996-class interconnect): ≈40 µs message setup, ≈0.25 µs per 8-byte
// word at ≈35 MB/s sustained, a 20 µs-per-element solver iteration, 100
// solver iterations between adaptions, and 50 words of state per element.
func DefaultSP2() CostModel {
	return CostModel{
		Titer:  20e-6,
		Nadapt: 100,
		Tlat:   0.25e-6,
		Tsetup: 40e-6,
		M:      50,
	}
}

// Gain returns the expected computational gain (seconds) of running the
// next Nadapt solver iterations on the new partitions instead of the old:
// Titer·Nadapt·(Wmax_old − Wmax_new).
func (c CostModel) Gain(wmaxOld, wmaxNew int64) float64 {
	return c.Titer * float64(c.Nadapt) * float64(wmaxOld-wmaxNew)
}

// RedistCost returns the expected redistribution overhead (seconds) of
// moving C elements in N sets: C·M·Tlat + N·Tsetup. The paper notes C·M
// dominates N for realistic problems.
func (c CostModel) RedistCost(moved int64, sets int) float64 {
	return float64(moved)*float64(c.M)*c.Tlat + float64(sets)*c.Tsetup
}

// Worthwhile reports the paper's acceptance rule:
// Titer·Nadapt·(Wmax_old − Wmax_new) > C·M·Tlat + N·Tsetup.
func (c CostModel) Worthwhile(wmaxOld, wmaxNew int64, moved int64, sets int) bool {
	return c.Gain(wmaxOld, wmaxNew) > c.RedistCost(moved, sets)
}

// WorthwhileTotal extends the acceptance rule with the measured
// load-balancing overhead itself — repartitioning plus reassignment time
// (seconds) — on the cost side: gain > C·M·Tlat + N·Tsetup + overhead.
// The paper neglects these terms because its spectral repartitioner runs
// rarely; with an incremental SFC repartitioner the overhead is an O(n)
// scan and stays negligible even when rebalancing after every adaption
// step, which is exactly what this rule makes visible.
func (c CostModel) WorthwhileTotal(wmaxOld, wmaxNew, moved int64, sets int, overhead float64) bool {
	return c.Gain(wmaxOld, wmaxNew) > c.RedistCost(moved, sets)+overhead
}

// SolverTime returns the time (seconds) for Nadapt solver iterations with
// the given maximum per-processor load — the quantity Fig. 12 compares
// with and without load balancing.
func (c CostModel) SolverTime(wmax int64) float64 {
	return c.SolverTimeIters(wmax, c.Nadapt)
}

// SolverTimeIters returns the time (seconds) for iters solver iterations
// with the given maximum per-processor load: Titer·iters·wmax. Cycle uses
// it with Config.SolverIters so the modeled solver window matches the
// iterations the proxy solver actually runs; SolverTime is the Nadapt
// special case the gain side of the cost model is built on.
func (c CostModel) SolverTimeIters(wmax int64, iters int) float64 {
	return c.Titer * float64(iters) * float64(wmax)
}
