// Package remap implements the paper's processor-reassignment machinery:
// the similarity matrix S that measures how the remapping weights of new
// partitions are distributed over the processors, a greedy heuristic
// mapper (mark-and-map), an optimal mapper via maximally-weighted
// bipartite matching (Hungarian algorithm with F-fold processor
// duplication), and the analytic gain/cost model that decides whether a
// new partitioning is worth the data movement.
package remap

import "fmt"

// Similarity is the P×(P·F) similarity matrix: entry S[i][j] is the sum of
// the Wremap weights of all dual-graph vertices that are common between
// processor i (old assignment) and new partition j. The sum of row i is
// the total remapping weight currently residing on processor i.
type Similarity struct {
	// P is the number of processors; F is the number of partitions per
	// processor (the paper's granularity factor).
	P, F int
	// S holds the matrix, S[i][j] ≥ 0.
	S [][]int64

	// LastOps records the inner-loop operation count of the most recent
	// Heuristic or Optimal call, for machine-model timing of the
	// reassignment phase (Figs. 9 and 10a).
	LastOps int64
}

// NewSimilarity returns a zero P×(P·F) similarity matrix.
func NewSimilarity(p, f int) *Similarity {
	s := &Similarity{P: p, F: f, S: make([][]int64, p)}
	for i := range s.S {
		s.S[i] = make([]int64, p*f)
	}
	return s
}

// Build constructs the similarity matrix from the old processor assignment
// and the new partitioning of the dual graph. oldProc[v] is the processor
// currently holding dual vertex v; newPart[v] is the new partition of v;
// wremap[v] is its redistribution weight. A negative oldProc[v] marks a
// vertex with no surviving holder (its rank crashed): it contributes no
// similarity to any processor, so the mapper treats it as guaranteed
// movement wherever it lands.
func Build(oldProc, newPart []int32, wremap []int64, p, f int) *Similarity {
	s := NewSimilarity(p, f)
	for v := range oldProc {
		if oldProc[v] < 0 {
			continue
		}
		s.S[oldProc[v]][newPart[v]] += wremap[v]
	}
	return s
}

// Cols returns the number of columns, P·F.
func (s *Similarity) Cols() int { return s.P * s.F }

// Total returns the sum of all entries (the total remapping weight of the
// mesh).
func (s *Similarity) Total() int64 {
	var t int64
	for _, row := range s.S {
		for _, x := range row {
			t += x
		}
	}
	return t
}

// Mapping assigns each new partition to a processor: Mapping[j] is the
// processor that receives partition j. A valid mapping gives every
// processor exactly F partitions.
type Mapping []int32

// Identity returns the mapping that sends partitions {i·F … i·F+F-1} to
// processor i (no-op remap when the new partitioning is congruent with the
// old distribution).
func Identity(p, f int) Mapping {
	mp := make(Mapping, p*f)
	for j := range mp {
		mp[j] = int32(j / f)
	}
	return mp
}

// Validate checks that the mapping assigns every partition to a processor
// in range and every processor exactly F partitions.
func (s *Similarity) Validate(mp Mapping) error {
	if len(mp) != s.Cols() {
		return fmt.Errorf("remap: mapping has %d entries, want %d", len(mp), s.Cols())
	}
	cnt := make([]int, s.P)
	for j, i := range mp {
		if i < 0 || int(i) >= s.P {
			return fmt.Errorf("remap: partition %d mapped to invalid processor %d", j, i)
		}
		cnt[i]++
	}
	for i, c := range cnt {
		if c != s.F {
			return fmt.Errorf("remap: processor %d assigned %d partitions, want F=%d", i, c, s.F)
		}
	}
	return nil
}

// Objective returns the paper's objective function 𝒥 = Σ_j S[mp[j]][j]:
// the total remapping weight that does not move.
func (s *Similarity) Objective(mp Mapping) int64 {
	var obj int64
	for j, i := range mp {
		obj += s.S[i][j]
	}
	return obj
}

// MoveStats returns the data-movement statistics of a mapping:
// C = ΣS − 𝒥 is the total number of elements that must move, and N is the
// number of element sets moved — one per (source processor, destination
// processor) pair with nonzero traffic, combining partitions that share a
// destination (cf. the paper's Fig. 7, where two rather than three sets
// leave a processor whose two partitions land on the same destination).
func (s *Similarity) MoveStats(mp Mapping) (c int64, n int) {
	pairs := make(map[[2]int32]bool)
	for i := 0; i < s.P; i++ {
		for j := 0; j < s.Cols(); j++ {
			w := s.S[i][j]
			if w == 0 {
				continue
			}
			dst := mp[j]
			if int32(i) == dst {
				continue
			}
			c += w
			pairs[[2]int32{int32(i), dst}] = true
		}
	}
	return c, len(pairs)
}
