package remap

import (
	"math/rand"
	"testing"
	"time"
)

// paperLikeMatrix builds a P=4, F=2 similarity matrix in the spirit of the
// paper's Fig. 5 worked example (the figure's exact values are not
// recoverable from the scanned text, so the example is reconstructed with
// the same shape: a few dominant diagonal-ish entries plus scattered
// weight).
func paperLikeMatrix() *Similarity {
	s := NewSimilarity(4, 2)
	rows := [][]int64{
		{872, 45, 0, 0, 120, 0, 0, 310},
		{0, 650, 200, 0, 0, 98, 0, 0},
		{55, 0, 720, 430, 0, 0, 160, 0},
		{0, 0, 0, 90, 500, 305, 410, 76},
	}
	for i, r := range rows {
		copy(s.S[i], r)
	}
	return s
}

func TestSimilarityBuild(t *testing.T) {
	oldProc := []int32{0, 0, 1, 1}
	newPart := []int32{0, 1, 1, 1}
	wremap := []int64{5, 7, 11, 13}
	s := Build(oldProc, newPart, wremap, 2, 1)
	if s.S[0][0] != 5 || s.S[0][1] != 7 || s.S[1][1] != 24 {
		t.Errorf("S = %v", s.S)
	}
	if s.Total() != 36 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestIdentityMapping(t *testing.T) {
	s := NewSimilarity(3, 2)
	mp := Identity(3, 2)
	if err := s.Validate(mp); err != nil {
		t.Fatal(err)
	}
	if mp[0] != 0 || mp[1] != 0 || mp[2] != 1 || mp[5] != 2 {
		t.Errorf("identity = %v", mp)
	}
}

func TestHeuristicValidAndReasonable(t *testing.T) {
	s := paperLikeMatrix()
	mp, obj := s.Heuristic()
	if err := s.Validate(mp); err != nil {
		t.Fatal(err)
	}
	if obj != s.Objective(mp) {
		t.Error("returned objective inconsistent")
	}
	// The heuristic must capture at least the dominant entry per row.
	if mp[0] != 0 {
		t.Errorf("partition 0 (S=872 for proc 0) mapped to %d", mp[0])
	}
}

func TestOptimalBeatsOrMatchesHeuristic(t *testing.T) {
	s := paperLikeMatrix()
	_, hObj := s.Heuristic()
	mpO, oObj := s.Optimal()
	if err := s.Validate(mpO); err != nil {
		t.Fatal(err)
	}
	if oObj < hObj {
		t.Errorf("optimal %d < heuristic %d", oObj, hObj)
	}
}

func TestOptimalIsOptimalBruteForce(t *testing.T) {
	// P=3, F=1: brute-force all 6 permutations.
	s := NewSimilarity(3, 1)
	vals := [][]int64{{10, 2, 7}, {4, 8, 1}, {6, 5, 9}}
	for i := range vals {
		copy(s.S[i], vals[i])
	}
	_, got := s.Optimal()
	best := int64(-1)
	perms := [][]int32{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, pm := range perms {
		mp := Mapping(pm)
		if obj := s.Objective(mp); obj > best {
			best = obj
		}
	}
	if got != best {
		t.Errorf("Optimal = %d, brute force = %d", got, best)
	}
}

func TestOptimalBruteForceF2(t *testing.T) {
	// P=2, F=2: enumerate all ways to pick 2 of 4 columns for proc 0.
	s := NewSimilarity(2, 2)
	vals := [][]int64{{9, 1, 5, 3}, {2, 8, 4, 7}}
	for i := range vals {
		copy(s.S[i], vals[i])
	}
	_, got := s.Optimal()
	best := int64(-1)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			mp := Mapping{1, 1, 1, 1}
			mp[a], mp[b] = 0, 0
			if obj := s.Objective(mp); obj > best {
				best = obj
			}
		}
	}
	if got != best {
		t.Errorf("Optimal = %d, brute force = %d", got, best)
	}
}

func TestHeuristicHalfApproximation(t *testing.T) {
	// Property: over random matrices the greedy mark-and-map objective
	// stays within the matching greedy bound 𝒥_h ≥ 𝒥_opt/2 (the basis of
	// the paper's "never more than twice the optimal movement" claim).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p := 2 + rng.Intn(6)
		f := 1 + rng.Intn(3)
		s := NewSimilarity(p, f)
		for i := 0; i < p; i++ {
			for j := 0; j < p*f; j++ {
				if rng.Float64() < 0.6 {
					s.S[i][j] = int64(rng.Intn(1000))
				}
			}
		}
		mpH, hObj := s.Heuristic()
		if err := s.Validate(mpH); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, oObj := s.Optimal()
		if oObj < hObj {
			t.Fatalf("trial %d: optimal %d < heuristic %d", trial, oObj, hObj)
		}
		if 2*hObj < oObj {
			t.Errorf("trial %d: heuristic %d below half of optimal %d", trial, hObj, oObj)
		}
	}
}

func TestMoveStats(t *testing.T) {
	// 2 procs, F=1: identity mapping moves the off-diagonal weight.
	s := NewSimilarity(2, 1)
	s.S[0][0], s.S[0][1] = 10, 4
	s.S[1][0], s.S[1][1] = 3, 20
	mp := Identity(2, 1)
	c, n := s.MoveStats(mp)
	if c != 7 {
		t.Errorf("C = %d, want 7", c)
	}
	if n != 2 {
		t.Errorf("N = %d, want 2", n)
	}
	// C + objective = total.
	if c+s.Objective(mp) != s.Total() {
		t.Error("C != ΣS − 𝒥")
	}
}

func TestMoveStatsCombinesDestinations(t *testing.T) {
	// The paper's Fig. 7 point: two partitions mapped to the same
	// destination from one source count as one set.
	s := NewSimilarity(2, 2)
	// Processor 0 holds weight destined for partitions 2 and 3, both of
	// which map to processor 1.
	s.S[0][2], s.S[0][3] = 5, 6
	s.S[1][0], s.S[1][1] = 1, 1
	mp := Mapping{0, 0, 1, 1}
	if err := s.Validate(mp); err != nil {
		t.Fatal(err)
	}
	c, n := s.MoveStats(mp)
	if c != 13 {
		t.Errorf("C = %d, want 13", c)
	}
	// Four (source partition → destination) flows collapse into two
	// (source processor → destination processor) sets.
	if n != 2 {
		t.Errorf("N = %d, want 2 (sets combined per destination)", n)
	}
}

func TestZeroMoveForCongruentPartitioning(t *testing.T) {
	// If the new partitions coincide with the old distribution, the
	// optimal mapping moves nothing.
	s := NewSimilarity(4, 1)
	for i := 0; i < 4; i++ {
		s.S[i][i] = 100
	}
	mp, obj := s.Optimal()
	if obj != 400 {
		t.Errorf("objective = %d, want 400", obj)
	}
	c, n := s.MoveStats(mp)
	if c != 0 || n != 0 {
		t.Errorf("C,N = %d,%d, want 0,0", c, n)
	}
}

func TestValidateRejects(t *testing.T) {
	s := NewSimilarity(2, 1)
	if err := s.Validate(Mapping{0}); err == nil {
		t.Error("short mapping accepted")
	}
	if err := s.Validate(Mapping{0, 0}); err == nil {
		t.Error("doubled processor accepted")
	}
	if err := s.Validate(Mapping{0, 5}); err == nil {
		t.Error("out-of-range processor accepted")
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultSP2()
	gain := c.Gain(1000, 600)
	if gain <= 0 {
		t.Error("gain must be positive for reduced Wmax")
	}
	cost := c.RedistCost(10000, 12)
	if cost <= 0 {
		t.Error("cost must be positive")
	}
	// A tiny imbalance improvement must not justify moving everything.
	if c.Worthwhile(1000, 999, 1<<40, 1000) {
		t.Error("accepted a hugely expensive remap for negligible gain")
	}
	// A big improvement with tiny movement must be accepted.
	if !c.Worthwhile(100000, 1000, 10, 1) {
		t.Error("rejected an obviously good remap")
	}
	// Zero overhead reduces WorthwhileTotal to the paper's rule; a large
	// balancing overhead must be able to veto an otherwise-good remap.
	if c.WorthwhileTotal(100000, 1000, 10, 1, 0) != c.Worthwhile(100000, 1000, 10, 1) {
		t.Error("WorthwhileTotal(…, 0) disagrees with Worthwhile")
	}
	if c.WorthwhileTotal(100000, 1000, 10, 1, 1e12) {
		t.Error("accepted a remap whose balancing overhead dwarfs the gain")
	}
	if c.SolverTime(2000) != c.Titer*float64(c.Nadapt)*2000 {
		t.Error("SolverTime formula")
	}
}

func TestHeuristicMuchFasterThanOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Shape check for Fig. 10a at moderate size: heuristic should be at
	// least an order of magnitude faster than Hungarian at P=32, F=4.
	p, f := 32, 4
	rng := rand.New(rand.NewSource(5))
	s := NewSimilarity(p, f)
	for i := 0; i < p; i++ {
		for j := 0; j < p*f; j++ {
			s.S[i][j] = int64(rng.Intn(5000))
		}
	}
	tH := benchIt(func() { s.Heuristic() })
	tO := benchIt(func() { s.Optimal() })
	if tO < 10*tH {
		t.Errorf("optimal %v not ≫ heuristic %v", tO, tH)
	}
}

func benchIt(f func()) int64 {
	// Median-ish of 3 runs, in ns.
	best := int64(1 << 62)
	for i := 0; i < 3; i++ {
		t0 := nano()
		f()
		if d := nano() - t0; d < best {
			best = d
		}
	}
	return best
}

func nano() int64 { return time.Now().UnixNano() }
