// Package fault is the deterministic fault-injection subsystem of the
// load balancer's robustness layer. A Plan is a pure function from the
// key (cycle, stage, src, dst, attempt) to a fault Kind, derived from a
// seed by a splitmix64-style hash: no state, no clocks, no randomness at
// run time. Because the key never mentions worker counts or goroutine
// scheduling, every injected failure — and every recovery the transport
// and remap layers perform in response — is byte-reproducible at any
// worker count, per the repo's determinism contract.
//
// The comm layer consults a Plan through World.SetFaults on the reliable
// send path (real frames dropped, corrupted, duplicated, or stalled
// between goroutine ranks); the propagate layer consults it through an
// ExchangeModel to charge modeled retry traffic on the adaption
// notification exchanges, whose payloads are modeled rather than moved.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies one injected transport fault.
type Kind uint8

// The injectable fault kinds. None means the attempt goes through clean.
const (
	None Kind = iota
	// Drop loses the message: the receiver sees nothing and the sender
	// retries after a modeled timeout+backoff.
	Drop
	// Corrupt delivers the frame with a flipped payload word; the
	// receiver's checksum validation discards it and the sender retries.
	Corrupt
	// Duplicate delivers the frame twice; the receiver's sequence
	// tracking discards the extra copy. No retry is needed, but the
	// duplicate is real wire traffic.
	Duplicate
	// Stall delays the message: it is delivered intact, but the sender is
	// charged one backoff unit of modeled time.
	Stall
	// Crash kills a whole modeled rank at a stage boundary. Unlike the
	// four message kinds above, its fate is rank-scoped — keyed on
	// (seed, cycle, stage, rank) via Crashed, not drawn per message —
	// and recovery is a survivor remap, not a transport retry.
	Crash
)

// String implements fmt.Stringer with the plan-syntax kind names.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Duplicate:
		return "dup"
	case Stall:
		return "stall"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// kindByName is the inverse of Kind.String for plan parsing.
var kindByName = map[string]Kind{
	"drop": Drop, "corrupt": Corrupt, "dup": Duplicate, "duplicate": Duplicate,
	"stall": Stall, "crash": Crash,
}

// Stage identifies the pipeline stage a fault key belongs to, so a plan
// can never confuse a remap payload message with an adaption
// notification that happens to share (cycle, src, dst, attempt).
type Stage uint8

// The injectable stages.
const (
	// StageRemap is the data-remapping payload exchange (the real
	// record frames moved by ExecuteRemap/ExecuteRemapStreaming).
	StageRemap Stage = iota
	// StageAdapt is the adaption-phase notification exchange charged by
	// the propagate backends.
	StageAdapt
)

// Plan schedules deterministic faults. The zero value (and any plan with
// Rate 0) injects nothing; a nil *Plan disables the fault machinery
// entirely, which is the byte-identical legacy path.
type Plan struct {
	// Seed selects the fault schedule; two seeds give independent
	// schedules at the same rate.
	Seed int64
	// Rate is the fault probability per (message, attempt), in [0, 1].
	Rate float64
	// Kinds are the enabled fault kinds; empty enables all four.
	Kinds []Kind
}

// allKinds is the default kind set of a plan that names none. Crash is
// deliberately absent: rank deaths are opt-in (kinds=crash), so existing
// plans keep their exact message-fate schedules.
var allKinds = []Kind{Drop, Corrupt, Duplicate, Stall}

// Validate reports whether the plan's fields are usable.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if !(p.Rate >= 0 && p.Rate <= 1) { // also rejects NaN
		return fmt.Errorf("fault: rate %g outside [0, 1]", p.Rate)
	}
	for _, k := range p.Kinds {
		if k == None || k > Crash {
			return fmt.Errorf("fault: invalid kind %d in plan", k)
		}
	}
	return nil
}

// Enabled reports whether the plan can ever inject a fault.
func (p *Plan) Enabled() bool { return p != nil && p.Rate > 0 }

// splitmix64 is the finalizer of the splitmix64 generator: a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fate returns the fault (or None) scheduled for one physical send
// attempt. The attempt index is the per-(cycle, stage, src, dst) count of
// hook consultations, so retries of a faulted message see fresh draws and
// a bounded retry loop terminates with probability 1 for any Rate < 1.
// Crash entries in Kinds are skipped — rank deaths are drawn by Crashed,
// never per message — so a plan whose Kinds hold only Crash injects no
// transport faults at all.
func (p *Plan) Fate(stage Stage, cycle, src, dst, attempt int) Kind {
	if p == nil || p.Rate <= 0 {
		return None
	}
	key := uint64(cycle)<<40 ^ uint64(stage)<<36 ^
		uint64(uint16(src))<<20 ^ uint64(uint16(dst))<<4 ^ uint64(uint32(attempt))<<44
	h := splitmix64(uint64(p.Seed) ^ splitmix64(key))
	// 53-bit uniform in [0, 1).
	u := float64(h>>11) / (1 << 53)
	if u >= p.Rate {
		return None
	}
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = allKinds
	}
	n := 0
	for _, k := range kinds {
		if k != Crash {
			n++
		}
	}
	if n == 0 {
		return None
	}
	i := int(splitmix64(h) % uint64(n))
	for _, k := range kinds {
		if k == Crash {
			continue
		}
		if i == 0 {
			return k
		}
		i--
	}
	return None // unreachable
}

// crashSalt decorrelates the rank-scoped crash draws from the
// message-fate draws of the same seed, so enabling crashes never
// perturbs which messages drop, corrupt, duplicate, or stall.
const crashSalt = 0xc7a54ad5ea7bead5

// CrashEnabled reports whether the plan can ever kill a rank: a positive
// rate and Crash named in Kinds. Crash is never part of the default kind
// set, so kinds-less plans keep ranks alive.
func (p *Plan) CrashEnabled() bool {
	if p == nil || p.Rate <= 0 {
		return false
	}
	for _, k := range p.Kinds {
		if k == Crash {
			return true
		}
	}
	return false
}

// Crashed reports whether the plan fates the given rank to die at the
// (stage, cycle) boundary. Like Fate it is a pure hash — no state — so
// the set of crashed ranks for a cycle is byte-reproducible at any
// worker count; unlike Fate the key is rank-scoped, with no message or
// attempt coordinates.
func (p *Plan) Crashed(stage Stage, cycle, rank int) bool {
	if !p.CrashEnabled() {
		return false
	}
	key := uint64(cycle)<<24 ^ uint64(stage)<<20 ^ uint64(uint16(rank)) ^ crashSalt
	h := splitmix64(uint64(p.Seed) ^ splitmix64(key))
	u := float64(h>>11) / (1 << 53)
	return u < p.Rate
}

// Hook returns the comm-layer transport hook with the stage and cycle
// bound: a pure function the World consults once per physical send
// attempt. A nil plan returns a nil hook.
func (p *Plan) Hook(stage Stage, cycle int) func(src, dst, attempt int) Kind {
	if p == nil {
		return nil
	}
	return func(src, dst, attempt int) Kind { return p.Fate(stage, cycle, src, dst, attempt) }
}

// String renders the plan in the syntax Parse accepts.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d,rate=%g", p.Seed, p.Rate)
	if len(p.Kinds) > 0 {
		names := make([]string, len(p.Kinds))
		for i, k := range p.Kinds {
			names[i] = k.String()
		}
		fmt.Fprintf(&b, ",kinds=%s", strings.Join(names, "+"))
	}
	return b.String()
}

// Parse builds a Plan from the CLI syntax
//
//	seed=<int>,rate=<float>[,kinds=drop+corrupt+dup+stall]
//
// An empty string returns a nil plan (faults disabled). Unknown keys,
// malformed numbers, out-of-range rates, and unknown kinds are errors.
func Parse(s string) (*Plan, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			p.Seed = n
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad rate %q", v)
			}
			p.Rate = f
		case "kinds":
			for _, name := range strings.Split(v, "+") {
				kind, ok := kindByName[strings.TrimSpace(name)]
				if !ok {
					return nil, fmt.Errorf("fault: unknown kind %q", name)
				}
				p.Kinds = append(p.Kinds, kind)
			}
		default:
			return nil, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Retry bounds the recovery effort of the transport and remap layers.
type Retry struct {
	// MsgAttempts is the number of physical send attempts the reliable
	// transport makes per message before declaring the transfer failed
	// (minimum 1: the initial send).
	MsgAttempts int
	// WindowRetries is the number of times a failed remap window (the
	// streaming executor's commit unit; the whole exchange for the bulk
	// executor) is re-executed before the transaction rolls back.
	WindowRetries int
}

// DefaultRetry is the policy used when the config leaves Retry zero:
// three attempts per message, two re-executions per failed window.
func DefaultRetry() Retry { return Retry{MsgAttempts: 3, WindowRetries: 2} }

// Budget derives a policy from one scalar retry budget b ≥ 0: b extra
// attempts per message and b window re-executions. Budget(0) disables
// all recovery — the first fault rolls the transaction back.
func Budget(b int) Retry {
	if b < 0 {
		b = 0
	}
	return Retry{MsgAttempts: 1 + b, WindowRetries: b}
}

// Normalize clamps a policy to usable values: at least one send attempt,
// no negative window retries. The zero value normalizes to DefaultRetry
// so an unset Config.Retry keeps recovery on when a plan is set.
func (r Retry) Normalize() Retry {
	if r == (Retry{}) {
		return DefaultRetry()
	}
	if r.MsgAttempts < 1 {
		r.MsgAttempts = 1
	}
	if r.WindowRetries < 0 {
		r.WindowRetries = 0
	}
	return r
}

// ExchangeModel replays a plan against a modeled (not physically moved)
// message exchange — the propagate backends' notification rounds — so
// modeled robustness is charged the same honest retry cost as the real
// payload path. It keeps one attempt counter per (src, dst) pair within
// its (stage, cycle) scope; ChargeExchange is called serially per round,
// in canonical sorted pair order, so the counters and the resulting
// charges are byte-identical at every worker count.
//
// Notifications are control-plane traffic the adaption algorithm cannot
// lose without corrupting the mesh, so a pair that exhausts its attempt
// budget is still modeled as delivered (escalation — e.g. rerouting —
// charged as one extra backoff unit) and counted in Exhausted.
type ExchangeModel struct {
	plan     *Plan
	stage    Stage
	cycle    int
	attempts int // per-message attempt budget
	counter  map[uint64]int

	// Resent and BackoffUnits accumulate the modeled retry traffic:
	// extra message sends and Σ 2^try backoff units. Exhausted counts
	// pairs that ran out of budget and escalated.
	Resent       int64
	BackoffUnits int64
	Exhausted    int64
}

// Exchange returns a model for one (stage, cycle) scope at the given
// per-message attempt budget. A nil plan returns nil.
func (p *Plan) Exchange(stage Stage, cycle, msgAttempts int) *ExchangeModel {
	if p == nil {
		return nil
	}
	if msgAttempts < 1 {
		msgAttempts = 1
	}
	return &ExchangeModel{plan: p, stage: stage, cycle: cycle, attempts: msgAttempts,
		counter: make(map[uint64]int)}
}

// Resends simulates the delivery of one modeled message from src to dst
// and returns the extra sends and backoff units it cost. Duplicates add
// a resend without backoff; stalls a backoff unit without a resend;
// drops and corruptions add both per failed attempt.
func (x *ExchangeModel) Resends(src, dst int32) (extra, backoff int64) {
	if x == nil || !x.plan.Enabled() {
		return 0, 0
	}
	key := uint64(uint32(src))<<32 | uint64(uint32(dst))
	for try := 0; ; try++ {
		a := x.counter[key]
		x.counter[key] = a + 1
		switch x.plan.Fate(x.stage, x.cycle, int(src), int(dst), a) {
		case None:
			x.Resent += extra
			x.BackoffUnits += backoff
			return extra, backoff
		case Duplicate:
			extra++
			x.Resent += extra
			x.BackoffUnits += backoff
			return extra, backoff
		case Stall:
			backoff++
			x.Resent += extra
			x.BackoffUnits += backoff
			return extra, backoff
		}
		// Drop or Corrupt: the attempt is lost.
		if try+1 >= x.attempts {
			// Budget exhausted: the notification escalates and is
			// delivered out of band — charged one extra backoff unit.
			backoff++
			x.Exhausted++
			x.Resent += extra
			x.BackoffUnits += backoff
			return extra, backoff
		}
		extra++
		backoff += 1 << min(try, 16)
	}
}
