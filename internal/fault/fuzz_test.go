package fault

import (
	"reflect"
	"testing"
)

// FuzzFaultPlanParse fuzzes the -faults grammar: any input must either be
// rejected or produce a valid plan whose String() re-parses to a
// semantically identical plan. Plans are compared structurally rather
// than textually because Parse normalizes kind aliases ("duplicate"
// renders back as "dup").
func FuzzFaultPlanParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7,rate=0.05",
		"seed=7,rate=0.05,kinds=drop+corrupt",
		"seed=-3,rate=1,kinds=drop+corrupt+dup+stall",
		"seed=1,rate=0.1,kinds=crash",
		"seed=2,rate=0.2,kinds=drop+crash",
		"seed=4,rate=0,kinds=duplicate",
		"rate=2",
		"seed=x",
		"kinds=explode",
		"seed=1,,rate=0.5",
		"seed=1,rate=NaN",
		"seed=1,rate=1e-300,kinds=stall",
		" seed=1 , rate=0.5 , kinds= crash ",
		"seed=9223372036854775807,rate=0.999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return // rejected inputs need no further guarantees
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid plan: %v", s, err)
		}
		if p == nil {
			return // blank spec: faults disabled
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("String() of parsed %q is unparseable: %q: %v", s, p.String(), err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip of %q not stable: %+v vs %+v (via %q)", s, p, q, p.String())
		}
		if q.String() != p.String() {
			t.Fatalf("String() not a fixed point for %q: %q vs %q", s, p.String(), q.String())
		}
		// The plan's fate machinery must be total on any parsed plan.
		_ = p.Enabled()
		_ = p.CrashEnabled()
		_ = p.Fate(StageRemap, 0, 0, 1, 0)
		_ = p.Crashed(StageRemap, 0, 0)
	})
}
