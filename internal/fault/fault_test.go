package fault

import (
	"math"
	"testing"
)

func TestFateDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Rate: 0.3}
	for cycle := 0; cycle < 3; cycle++ {
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				for a := 0; a < 5; a++ {
					k1 := p.Fate(StageRemap, cycle, src, dst, a)
					k2 := p.Fate(StageRemap, cycle, src, dst, a)
					if k1 != k2 {
						t.Fatalf("Fate not deterministic at (%d,%d,%d,%d)", cycle, src, dst, a)
					}
				}
			}
		}
	}
}

func TestFateKeySensitivity(t *testing.T) {
	// Different key components must give independent schedules: the two
	// stages (and two seeds) must disagree somewhere over a small grid.
	p1 := &Plan{Seed: 1, Rate: 0.5}
	p2 := &Plan{Seed: 2, Rate: 0.5}
	diffSeed, diffStage := false, false
	for src := 0; src < 8; src++ {
		for a := 0; a < 8; a++ {
			if p1.Fate(StageRemap, 1, src, 0, a) != p2.Fate(StageRemap, 1, src, 0, a) {
				diffSeed = true
			}
			if p1.Fate(StageRemap, 1, src, 0, a) != p1.Fate(StageAdapt, 1, src, 0, a) {
				diffStage = true
			}
		}
	}
	if !diffSeed || !diffStage {
		t.Errorf("schedules not independent: seed diff %v, stage diff %v", diffSeed, diffStage)
	}
}

func TestFateRate(t *testing.T) {
	// The empirical fault fraction must track the configured rate.
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		p := &Plan{Seed: 42, Rate: rate}
		n, hits := 0, 0
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				for a := 0; a < 40; a++ {
					n++
					if p.Fate(StageRemap, 0, src, dst, a) != None {
						hits++
					}
				}
			}
		}
		got := float64(hits) / float64(n)
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %g: empirical fault fraction %g", rate, got)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("seed=7,rate=0.05,kinds=drop+corrupt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rate != 0.05 || len(p.Kinds) != 2 || p.Kinds[0] != Drop || p.Kinds[1] != Corrupt {
		t.Fatalf("parsed %+v", p)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() {
		t.Errorf("round trip: %q vs %q", q.String(), p.String())
	}
	if pl, err := Parse(""); pl != nil || err != nil {
		t.Errorf("empty spec: %v, %v", pl, err)
	}
	for _, bad := range []string{"rate=2", "seed=x", "kinds=explode", "nonsense", "foo=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestKindsRestriction(t *testing.T) {
	p := &Plan{Seed: 3, Rate: 1, Kinds: []Kind{Drop}}
	for a := 0; a < 50; a++ {
		if k := p.Fate(StageRemap, 0, 1, 2, a); k != Drop {
			t.Fatalf("restricted plan injected %v", k)
		}
	}
}

func TestNilAndZeroPlans(t *testing.T) {
	var p *Plan
	if p.Fate(StageRemap, 0, 0, 1, 0) != None || p.Enabled() || p.Hook(StageRemap, 0) != nil {
		t.Error("nil plan must be inert")
	}
	z := &Plan{Seed: 9}
	if z.Fate(StageRemap, 0, 0, 1, 0) != None || z.Enabled() {
		t.Error("zero-rate plan must be inert")
	}
}

func TestRetryPolicies(t *testing.T) {
	if d := (Retry{}).Normalize(); d != DefaultRetry() {
		t.Errorf("zero Retry normalized to %+v", d)
	}
	if b := Budget(2); b.MsgAttempts != 3 || b.WindowRetries != 2 {
		t.Errorf("Budget(2) = %+v", b)
	}
	if b := Budget(-1); b.MsgAttempts != 1 || b.WindowRetries != 0 {
		t.Errorf("Budget(-1) = %+v", b)
	}
	if r := (Retry{MsgAttempts: -2, WindowRetries: -3}).Normalize(); r.MsgAttempts != 1 || r.WindowRetries != 0 {
		t.Errorf("Normalize clamped to %+v", r)
	}
}

func TestExchangeModelDeterministic(t *testing.T) {
	run := func() (int64, int64, int64) {
		x := (&Plan{Seed: 11, Rate: 0.6}).Exchange(StageAdapt, 2, 3)
		for round := 0; round < 4; round++ {
			for src := int32(0); src < 4; src++ {
				for dst := int32(0); dst < 4; dst++ {
					if src != dst {
						x.Resends(src, dst)
					}
				}
			}
		}
		return x.Resent, x.BackoffUnits, x.Exhausted
	}
	r1, b1, e1 := run()
	r2, b2, e2 := run()
	if r1 != r2 || b1 != b2 || e1 != e2 {
		t.Fatalf("ExchangeModel not deterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, b1, e1, r2, b2, e2)
	}
	if r1 == 0 {
		t.Error("rate 0.6 produced no modeled resends")
	}
}

func TestExchangeModelBudgetExhaustion(t *testing.T) {
	x := (&Plan{Seed: 1, Rate: 1, Kinds: []Kind{Drop}}).Exchange(StageAdapt, 0, 2)
	extra, backoff := x.Resends(0, 1)
	// Two attempts, both dropped: one resend, backoff for the retry plus
	// the escalation unit.
	if extra != 1 || x.Exhausted != 1 || backoff < 2 {
		t.Errorf("exhaustion path: extra=%d backoff=%d exhausted=%d", extra, backoff, x.Exhausted)
	}
	var nilX *ExchangeModel
	if e, b := nilX.Resends(0, 1); e != 0 || b != 0 {
		t.Error("nil ExchangeModel must be inert")
	}
}

func TestCrashedDeterministicAndRankScoped(t *testing.T) {
	p := &Plan{Seed: 7, Rate: 0.3, Kinds: []Kind{Crash}}
	diffRank, diffCycle := false, false
	for cycle := 0; cycle < 4; cycle++ {
		for rank := 0; rank < 16; rank++ {
			c1 := p.Crashed(StageRemap, cycle, rank)
			if c1 != p.Crashed(StageRemap, cycle, rank) {
				t.Fatalf("Crashed not deterministic at (%d,%d)", cycle, rank)
			}
			if rank > 0 && c1 != p.Crashed(StageRemap, cycle, 0) {
				diffRank = true
			}
			if cycle > 0 && c1 != p.Crashed(StageRemap, 0, rank) {
				diffCycle = true
			}
		}
	}
	if !diffRank || !diffCycle {
		t.Errorf("crash fates not independent: rank diff %v, cycle diff %v", diffRank, diffCycle)
	}
}

func TestCrashedRate(t *testing.T) {
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		p := &Plan{Seed: 42, Rate: rate, Kinds: []Kind{Crash}}
		n, hits := 0, 0
		for cycle := 0; cycle < 200; cycle++ {
			for rank := 0; rank < 32; rank++ {
				n++
				if p.Crashed(StageRemap, cycle, rank) {
					hits++
				}
			}
		}
		got := float64(hits) / float64(n)
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %g: empirical crash fraction %g", rate, got)
		}
	}
}

func TestCrashEnabledGating(t *testing.T) {
	var nilP *Plan
	cases := []struct {
		p    *Plan
		want bool
	}{
		{nilP, false},
		{&Plan{Seed: 1, Rate: 0.5}, false},                                // default kinds exclude crash
		{&Plan{Seed: 1, Rate: 0, Kinds: []Kind{Crash}}, false},            // zero rate
		{&Plan{Seed: 1, Rate: 0.5, Kinds: []Kind{Drop}}, false},           // crash not named
		{&Plan{Seed: 1, Rate: 0.5, Kinds: []Kind{Crash}}, true},
		{&Plan{Seed: 1, Rate: 0.5, Kinds: []Kind{Drop, Crash}}, true},
	}
	for i, c := range cases {
		if got := c.p.CrashEnabled(); got != c.want {
			t.Errorf("case %d: CrashEnabled() = %v, want %v", i, got, c.want)
		}
	}
	if !(&Plan{Seed: 1, Rate: 0.5, Kinds: []Kind{Crash}}).Enabled() {
		t.Error("CrashEnabled plan must imply Enabled")
	}
	if (&Plan{Seed: 1, Rate: 0.5}).Crashed(StageRemap, 0, 0) {
		t.Error("plan without the crash kind drew a crash fate")
	}
}

func TestFateNeverReturnsCrash(t *testing.T) {
	// Crash is rank-scoped, not message-scoped: even a crash-only plan
	// must never emit it from the message-fate draw, and a mixed plan
	// must draw its message kinds as if crash were absent.
	only := &Plan{Seed: 5, Rate: 1, Kinds: []Kind{Crash}}
	mixed := &Plan{Seed: 5, Rate: 1, Kinds: []Kind{Crash, Drop, Stall}}
	ref := &Plan{Seed: 5, Rate: 1, Kinds: []Kind{Drop, Stall}}
	for a := 0; a < 64; a++ {
		if k := only.Fate(StageRemap, 0, 1, 2, a); k != None {
			t.Fatalf("crash-only plan emitted message fate %v", k)
		}
		got, want := mixed.Fate(StageRemap, 0, 1, 2, a), ref.Fate(StageRemap, 0, 1, 2, a)
		if got == Crash {
			t.Fatalf("Fate returned Crash at attempt %d", a)
		}
		if got != want {
			t.Fatalf("adding crash perturbed the message draw: got %v, want %v", got, want)
		}
	}
}

func TestParseCrashKind(t *testing.T) {
	p, err := Parse("seed=3,rate=0.1,kinds=crash")
	if err != nil {
		t.Fatal(err)
	}
	if !p.CrashEnabled() || len(p.Kinds) != 1 || p.Kinds[0] != Crash {
		t.Fatalf("parsed %+v", p)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() {
		t.Errorf("round trip: %q vs %q", q.String(), p.String())
	}
	if _, err := Parse("seed=3,rate=0.1,kinds=drop+crash"); err != nil {
		t.Errorf("mixed kinds with crash rejected: %v", err)
	}
}
