package machine

import "testing"

func TestSP2Constants(t *testing.T) {
	m := SP2()
	if m.Tlat <= 0 || m.Tsetup <= 0 || m.ElemWords <= 0 {
		t.Fatalf("degenerate model: %+v", m)
	}
	// Message setup must dominate tiny messages; volume must dominate
	// large ones.
	small := m.MsgTime(1)
	large := m.MsgTime(1 << 20)
	if small < m.Tsetup || small > 2*m.Tsetup {
		t.Errorf("small message time %g vs setup %g", small, m.Tsetup)
	}
	if large < float64(1<<20)*m.Tlat {
		t.Errorf("large message time %g ignores volume", large)
	}
}

func TestMemCompSplit(t *testing.T) {
	m := SP2()
	if m.CompOp <= 0 || m.MemOp <= 0 {
		t.Fatalf("degenerate balance-op rates: comp=%g mem=%g", m.CompOp, m.MemOp)
	}
	// The split's premise: pointer-chasing scatter ops cost more than
	// cache-streaming arithmetic on 1996-class memory systems, and both
	// bracket the old blended 0.04 µs AlgOp they replaced.
	if m.MemOp <= m.CompOp {
		t.Errorf("MemOp %g not slower than CompOp %g", m.MemOp, m.CompOp)
	}
	if m.CompOp > 0.04e-6 || m.MemOp < 0.04e-6 {
		t.Errorf("split [%g, %g] does not bracket the old AlgOp", m.CompOp, m.MemOp)
	}
}

func TestClockSuperstep(t *testing.T) {
	c := NewClock(3)
	if c.P() != 3 {
		t.Fatal("P")
	}
	c.Add(0, 5)
	c.Add(1, 2)
	if c.Elapsed() != 5 {
		t.Errorf("Elapsed = %g", c.Elapsed())
	}
	c.Barrier()
	for r := 0; r < 3; r++ {
		if c.Rank(r) != 5 {
			t.Errorf("rank %d at %g after barrier", r, c.Rank(r))
		}
	}
	c.Add(2, 1)
	if c.Elapsed() != 6 {
		t.Errorf("Elapsed after more work = %g", c.Elapsed())
	}
}

func TestClockZero(t *testing.T) {
	c := NewClock(2)
	if c.Elapsed() != 0 {
		t.Error("fresh clock nonzero")
	}
	c.Barrier()
	if c.Elapsed() != 0 {
		t.Error("barrier on idle clock advanced time")
	}
}
