package machine

import "testing"

func TestSP2Constants(t *testing.T) {
	m := SP2()
	if m.Tlat <= 0 || m.Tsetup <= 0 || m.ElemWords <= 0 {
		t.Fatalf("degenerate model: %+v", m)
	}
	// Message setup must dominate tiny messages; volume must dominate
	// large ones.
	small := m.MsgTime(1)
	large := m.MsgTime(1 << 20)
	if small < m.Tsetup || small > 2*m.Tsetup {
		t.Errorf("small message time %g vs setup %g", small, m.Tsetup)
	}
	if large < float64(1<<20)*m.Tlat {
		t.Errorf("large message time %g ignores volume", large)
	}
}

func TestClockSuperstep(t *testing.T) {
	c := NewClock(3)
	if c.P() != 3 {
		t.Fatal("P")
	}
	c.Add(0, 5)
	c.Add(1, 2)
	if c.Elapsed() != 5 {
		t.Errorf("Elapsed = %g", c.Elapsed())
	}
	c.Barrier()
	for r := 0; r < 3; r++ {
		if c.Rank(r) != 5 {
			t.Errorf("rank %d at %g after barrier", r, c.Rank(r))
		}
	}
	c.Add(2, 1)
	if c.Elapsed() != 6 {
		t.Errorf("Elapsed after more work = %g", c.Elapsed())
	}
}

func TestClockZero(t *testing.T) {
	c := NewClock(2)
	if c.Elapsed() != 0 {
		t.Error("fresh clock nonzero")
	}
	c.Barrier()
	if c.Elapsed() != 0 {
		t.Error("barrier on idle clock advanced time")
	}
}
