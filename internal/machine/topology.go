package machine

import "fmt"

// Topology describes the machine's node structure for the communication
// model: consecutive ranks grouped into SMP nodes whose internal messages
// are much cheaper than messages crossing the interconnect. The zero value
// is a flat machine — every message pays the inter-node Tsetup/Tlat, which
// keeps every pre-topology charge bit-identical.
type Topology struct {
	// RanksPerNode groups consecutive ranks into nodes: ranks
	// [k·R, (k+1)·R) share node k (the last node may be smaller when R
	// does not divide P). 0 or 1 means a flat machine: no two ranks share
	// a node and the intra rates are never consulted.
	RanksPerNode int
	// IntraTsetup and IntraTlat are the setup and per-word copy times of
	// a message between two ranks on the same node (shared memory or an
	// intra-node switch), replacing Model.Tsetup/Tlat for those pairs.
	IntraTsetup, IntraTlat float64
}

// NodeTopology returns the SP2-cluster extension of the machine model:
// nodes of ranksPerNode ranks whose internal messages pay an 8× cheaper
// setup and a 5× cheaper word copy than the interconnect — the shape of
// mid-90s SMP-node clusters, and of every machine since.
func NodeTopology(ranksPerNode int) Topology {
	return Topology{
		RanksPerNode: ranksPerNode,
		IntraTsetup:  5e-6,
		IntraTlat:    0.05e-6,
	}
}

// Flat reports whether the topology is a flat machine (no rank shares a
// node with another).
func (t Topology) Flat() bool { return t.RanksPerNode <= 1 }

// Node returns the node index of a rank (the rank itself on a flat
// machine).
func (t Topology) Node(rank int) int {
	if t.Flat() {
		return rank
	}
	return rank / t.RanksPerNode
}

// SameNode reports whether two ranks share a node. Always false on a flat
// machine, including for a == b, so flat charges never take the intra
// rates.
func (t Topology) SameNode(a, b int) bool {
	return !t.Flat() && a/t.RanksPerNode == b/t.RanksPerNode
}

// Nodes returns the number of nodes hosting p ranks.
func (t Topology) Nodes(p int) int {
	if t.Flat() {
		return p
	}
	return (p + t.RanksPerNode - 1) / t.RanksPerNode
}

// Leader returns the leader rank of a node: its first rank.
func (t Topology) Leader(node int) int {
	if t.Flat() {
		return node
	}
	return node * t.RanksPerNode
}

// Validate checks the topology for use in a configuration: a node machine
// (RanksPerNode > 1) must price its intra-node messages with strictly
// positive rates, and nothing may be negative.
func (t Topology) Validate() error {
	if t.RanksPerNode < 0 {
		return fmt.Errorf("machine: negative RanksPerNode %d", t.RanksPerNode)
	}
	if t.IntraTsetup < 0 || t.IntraTlat < 0 {
		return fmt.Errorf("machine: negative intra-node rates (Tsetup=%g, Tlat=%g)", t.IntraTsetup, t.IntraTlat)
	}
	if t.RanksPerNode > 1 && (t.IntraTsetup == 0 || t.IntraTlat == 0) {
		return fmt.Errorf("machine: node topology (%d ranks/node) needs nonzero intra-node rates; use NodeTopology", t.RanksPerNode)
	}
	return nil
}
