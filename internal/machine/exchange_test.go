package machine

import (
	"reflect"
	"testing"
)

func TestTopology(t *testing.T) {
	var flat Topology
	if !flat.Flat() || flat.SameNode(0, 0) || flat.Nodes(8) != 8 || flat.Leader(3) != 3 {
		t.Fatalf("zero topology is not the flat machine: %+v", flat)
	}
	if err := flat.Validate(); err != nil {
		t.Fatalf("zero topology must validate: %v", err)
	}

	topo := NodeTopology(4)
	if topo.Flat() {
		t.Fatal("NodeTopology(4) reports flat")
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("NodeTopology(4): %v", err)
	}
	if topo.Node(0) != 0 || topo.Node(3) != 0 || topo.Node(4) != 1 || topo.Node(11) != 2 {
		t.Error("Node blocks wrong")
	}
	if !topo.SameNode(0, 3) || topo.SameNode(3, 4) || !topo.SameNode(5, 6) {
		t.Error("SameNode wrong")
	}
	if topo.Nodes(8) != 2 || topo.Nodes(9) != 3 || topo.Nodes(1) != 1 {
		t.Error("Nodes ceiling wrong")
	}
	if topo.Leader(0) != 0 || topo.Leader(2) != 8 {
		t.Error("Leader wrong")
	}
	// Intra-node messaging must actually be the cheap path.
	if topo.IntraTsetup >= SP2().Tsetup || topo.IntraTlat >= SP2().Tlat {
		t.Errorf("intra rates not cheaper than interconnect: %+v", topo)
	}

	for _, bad := range []Topology{
		{RanksPerNode: -1},
		{RanksPerNode: 4},                    // node topology without rates
		{RanksPerNode: 4, IntraTsetup: 1e-6}, // missing word rate
		{RanksPerNode: 2, IntraTsetup: -1, IntraTlat: 1e-7},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestExchangeNames(t *testing.T) {
	for i, name := range ExchangeNames {
		x, err := ExchangeByName(name)
		if err != nil || int(x) != i || x.String() != name {
			t.Fatalf("ExchangeByName(%q) = %v, %v", name, x, err)
		}
	}
	if x, err := ExchangeByName(""); err != nil || x != ExchangeFlat {
		t.Error("empty name must select flat")
	}
	if _, err := ExchangeByName("nope"); err == nil {
		t.Error("accepted unknown exchange")
	}
}

// TestCommTimeFlatTopology pins the bit-parity contract: on a flat
// topology CommTime is MsgTime for every pair, so legacy charges cannot
// drift.
func TestCommTimeFlatTopology(t *testing.T) {
	mdl := SP2()
	for _, words := range []int64{0, 1, 17, 1 << 20} {
		if mdl.CommTime(0, 1, words) != mdl.MsgTime(words) {
			t.Fatalf("flat CommTime(%d) != MsgTime", words)
		}
	}
	mdl.Topo = NodeTopology(4)
	if got, want := mdl.CommTime(0, 1, 100), mdl.Topo.IntraTsetup+100*mdl.Topo.IntraTlat; got != want {
		t.Errorf("intra CommTime = %g, want %g", got, want)
	}
	if mdl.CommTime(3, 4, 100) != mdl.MsgTime(100) {
		t.Error("inter-node CommTime must be MsgTime")
	}
	if mdl.CommTime(0, 1, 100) >= mdl.CommTime(3, 4, 100) {
		t.Error("intra-node message not cheaper than inter-node")
	}
}

var chargeFixture = []Flow{
	{Src: 0, Dst: 1, Words: 10},
	{Src: 0, Dst: 2, Words: 5},
	{Src: 1, Dst: 7, Words: 3},
	{Src: 2, Dst: 0, Words: 1},
	{Src: 4, Dst: 5, Words: 8},
}

// TestChargeFlatLegacyParity pins the flat schedule on a flat topology to
// the legacy per-flow MsgTime charges.
func TestChargeFlatLegacyParity(t *testing.T) {
	mdl := SP2()
	clk := NewClock(8)
	ch := mdl.ChargeFlows(clk, ExchangeFlat, chargeFixture)
	if ch.Msgs != 5 || ch.Words != 27 || ch.IntraWords != 0 || ch.InterWords != 27 {
		t.Fatalf("flat charge %+v", ch)
	}
	if got, want := ch.SetupTime, 5*mdl.Tsetup; got != want {
		t.Errorf("SetupTime %g want %g", got, want)
	}
	if got, want := clk.Rank(0), mdl.MsgTime(10)+mdl.MsgTime(5); got != want {
		t.Errorf("rank 0 charged %g, want legacy %g", got, want)
	}
	if clk.Rank(7) != 0 {
		t.Error("flat schedule must not charge receivers")
	}
}

// TestChargeAggregatedLegacyParity pins the aggregated schedule on a flat
// topology to the legacy propagate.Aggregated expressions: MsgTime over
// each source's combined total, per-word Tlat drain on destinations.
func TestChargeAggregatedLegacyParity(t *testing.T) {
	mdl := SP2()
	clk := NewClock(8)
	ch := mdl.ChargeFlows(clk, ExchangeAggregated, chargeFixture)
	if ch.Msgs != 4 || ch.Words != 27 {
		t.Fatalf("aggregated charge %+v", ch)
	}
	if got, want := ch.SetupTime, 4*mdl.Tsetup; got != want {
		t.Errorf("SetupTime %g want %g", got, want)
	}
	if got, want := clk.Rank(0), mdl.MsgTime(15)+1*mdl.Tlat; got != want {
		t.Errorf("rank 0 charged %g, want legacy %g", got, want)
	}
	if got, want := clk.Rank(7), 3*mdl.Tlat; got != want {
		t.Errorf("rank 7 drain %g, want %g", got, want)
	}
}

// TestChargeHierarchical checks the three-phase schedule on a small node
// topology: gather and scatter hops at the intra rates, one inter-node
// frame per communicating node pair, leaders exempt from their own
// gather/scatter.
func TestChargeHierarchical(t *testing.T) {
	mdl := SP2()
	mdl.Topo = NodeTopology(4)
	clk := NewClock(8)
	// Node 0 = ranks 0-3, node 1 = ranks 4-7.
	flows := []Flow{
		{Src: 0, Dst: 5, Words: 10}, // leader 0 -> node 1: no gather hop
		{Src: 1, Dst: 6, Words: 4},  // member gather + inter + scatter
		{Src: 2, Dst: 3, Words: 7},  // intra-node only: no inter hop
	}
	ch := mdl.ChargeFlows(clk, ExchangeHierarchical, flows)
	if ch.Words != 21 {
		t.Fatalf("Words = %d", ch.Words)
	}
	// Gather: ranks 1 and 2 (rank 0 is its node's leader). Inter: one
	// frame node0->node1 (14 words). Scatter: leader 4 -> ranks 5, 6, and
	// leader 0 -> rank 3.
	if ch.Msgs != 2+1+3 {
		t.Errorf("Msgs = %d, want 6", ch.Msgs)
	}
	if got, want := ch.SetupTime, 5*mdl.Topo.IntraTsetup+1*mdl.Tsetup; got != want {
		t.Errorf("SetupTime %g want %g", got, want)
	}
	if ch.InterWords != 14 {
		t.Errorf("InterWords = %d, want 14", ch.InterWords)
	}
	// Gather stores 4+7 intra, scatter 4+10+7 intra.
	if ch.IntraWords != 11+21 {
		t.Errorf("IntraWords = %d, want 32", ch.IntraWords)
	}
}

// TestExchangeSetupScaling is the tentpole's scaling claim in miniature:
// on an all-pairs flow set the modeled setup time must rank
// hierarchical < aggregated < flat once P is large relative to the node
// size.
func TestExchangeSetupScaling(t *testing.T) {
	const p, rpn = 64, 16
	mdl := SP2()
	mdl.Topo = NodeTopology(rpn)
	var flows []Flow
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d {
				flows = append(flows, Flow{Src: int32(s), Dst: int32(d), Words: 2})
			}
		}
	}
	setup := map[Exchange]float64{}
	words := map[Exchange]int64{}
	for _, x := range []Exchange{ExchangeFlat, ExchangeAggregated, ExchangeHierarchical} {
		ch := mdl.ChargeFlows(NewClock(p), x, flows)
		setup[x] = ch.SetupTime
		words[x] = ch.Words
	}
	if words[ExchangeFlat] != words[ExchangeAggregated] || words[ExchangeFlat] != words[ExchangeHierarchical] {
		t.Fatalf("logical words differ across schedules: %v", words)
	}
	if !(setup[ExchangeHierarchical] < setup[ExchangeAggregated] && setup[ExchangeAggregated] < setup[ExchangeFlat]) {
		t.Errorf("setup ranking violated: hier %g, agg %g, flat %g",
			setup[ExchangeHierarchical], setup[ExchangeAggregated], setup[ExchangeFlat])
	}
}

// TestChargeDeterminism: identical inputs must produce byte-identical
// clocks and charges — the figures feed determinism-diffed reports.
func TestChargeDeterminism(t *testing.T) {
	mdl := SP2()
	mdl.Topo = NodeTopology(4)
	for _, x := range []Exchange{ExchangeFlat, ExchangeAggregated, ExchangeHierarchical} {
		c1, c2 := NewClock(8), NewClock(8)
		ch1 := mdl.ChargeFlows(c1, x, chargeFixture)
		ch2 := mdl.ChargeFlows(c2, x, chargeFixture)
		if !reflect.DeepEqual(ch1, ch2) || c1.Elapsed() != c2.Elapsed() {
			t.Errorf("%v: charge not deterministic", x)
		}
	}
}

// TestRetryHookPosition checks that the retry hook fires once per message
// with the as-sent word count and the CombinedDst sentinel on combined
// frames.
func TestRetryHookPosition(t *testing.T) {
	mdl := SP2()
	type call struct {
		src, dst int32
		words    int64
	}
	var calls []call
	hook := func(src, dst int32, words int64) { calls = append(calls, call{src, dst, words}) }

	mdl.ChargeFlowsRetry(NewClock(8), ExchangeFlat, chargeFixture, hook)
	if len(calls) != 5 || calls[0] != (call{0, 1, 10}) {
		t.Fatalf("flat retry calls: %+v", calls)
	}

	calls = nil
	mdl.ChargeFlowsRetry(NewClock(8), ExchangeAggregated, chargeFixture, hook)
	want := []call{{0, CombinedDst, 15}, {1, CombinedDst, 3}, {2, CombinedDst, 1}, {4, CombinedDst, 8}}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("aggregated retry calls: %+v, want %+v", calls, want)
	}

	calls = nil
	mdl.Topo = NodeTopology(4)
	mdl.ChargeFlowsRetry(NewClock(8), ExchangeHierarchical, chargeFixture, hook)
	for _, c := range calls {
		if c.dst != CombinedDst {
			t.Fatalf("hierarchical retry with real dst: %+v", c)
		}
	}
	if len(calls) == 0 {
		t.Fatal("hierarchical schedule fired no retry hooks")
	}
}
