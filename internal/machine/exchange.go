package machine

import (
	"fmt"
	"slices"
)

// Exchange selects the communication schedule used to move a set of
// point-to-point flows, and with it how many message setups the machine
// charges:
//
//   - ExchangeFlat: one message per (src, dst) flow — the paper's remap
//     semantics. Setups scale with the number of communicating pairs,
//     O(P) per rank at high connectivity.
//   - ExchangeAggregated: each source packs all of its outgoing flows
//     into one combined frame and pays a single setup; destinations
//     drain at the per-word rate (mirrors propagate.Aggregated). Setups
//     scale O(P) total per round.
//   - ExchangeHierarchical: a two-level per-node schedule — ranks gather
//     combined frames to their node leader, leaders exchange one
//     combined frame per communicating node pair, leaders scatter
//     intra-node. Setups scale O(P/node + nodes·(nodes-1) pairs), with
//     the gather/scatter hops priced at the cheap intra-node rates.
type Exchange int

const (
	ExchangeFlat Exchange = iota
	ExchangeAggregated
	ExchangeHierarchical
)

// ExchangeNames lists the valid -exchange spellings in definition order.
var ExchangeNames = []string{"flat", "aggregated", "hierarchical"}

// String returns the CLI spelling of the exchange.
func (e Exchange) String() string {
	if e < 0 || int(e) >= len(ExchangeNames) {
		return fmt.Sprintf("exchange(%d)", int(e))
	}
	return ExchangeNames[e]
}

// ExchangeByName parses a CLI spelling; the empty string means flat (the
// legacy path).
func ExchangeByName(name string) (Exchange, error) {
	switch name {
	case "", "flat":
		return ExchangeFlat, nil
	case "aggregated":
		return ExchangeAggregated, nil
	case "hierarchical":
		return ExchangeHierarchical, nil
	}
	return 0, fmt.Errorf("machine: unknown exchange %q (have %v)", name, ExchangeNames)
}

// Flow is one directed transfer of Words words from rank Src to rank Dst
// (Src ≠ Dst). Charge functions require flows in canonical src-major
// order — ascending (Src, Dst) — which is the order every producer in
// this repo already emits.
type Flow struct {
	Src, Dst int32
	Words    int64
}

// CombinedDst is the destination sentinel a charge backend passes to a
// RetryFunc for a combined frame, which has no single receiver. It keys
// fault schedules per source without colliding with any real rank.
const CombinedDst = -1

// RetryFunc lets a caller bill modeled retry/fault recovery per message
// at the exact clock position the legacy backends used: after the
// message's send-side charge, before any receiver drain. dst is the real
// destination for per-flow messages and CombinedDst for combined frames;
// words is the words of the message as sent (the combined total for
// combined frames).
type RetryFunc func(src, dst int32, words int64)

// ExchangeCharge reports what a charge call billed to the clock.
type ExchangeCharge struct {
	// Msgs is the number of messages sent; every message pays exactly one
	// setup, so this is also the setup count.
	Msgs int64
	// Words is the logical payload moved — Σ Flow.Words, identical across
	// backends.
	Words int64
	// SetupTime is the summed setup component of the clock charges
	// (inter-node Tsetup or intra-node IntraTsetup per message), reported
	// separately so callers never fold it silently into volume time.
	SetupTime float64
	// IntraWords and InterWords split the wire traffic by link level.
	// Hierarchical forwarding stores words on both a gather/scatter hop
	// and an inter-node hop, so IntraWords+InterWords can exceed Words.
	IntraWords, InterWords int64
}

// CommTime is the topology-aware message cost: the intra-node rates for
// two ranks on the same node, MsgTime otherwise. On a flat topology it is
// exactly MsgTime for every pair, keeping legacy charges bit-identical.
func (m Model) CommTime(src, dst int, words int64) float64 {
	if m.Topo.SameNode(src, dst) {
		return m.Topo.IntraTsetup + float64(words)*m.Topo.IntraTlat
	}
	return m.MsgTime(words)
}

// SetupTime returns the per-message setup of the (src, dst) link.
func (m Model) SetupTime(src, dst int) float64 {
	if m.Topo.SameNode(src, dst) {
		return m.Topo.IntraTsetup
	}
	return m.Tsetup
}

// WordTime returns the per-word copy time of the (src, dst) link.
func (m Model) WordTime(src, dst int) float64 {
	if m.Topo.SameNode(src, dst) {
		return m.Topo.IntraTlat
	}
	return m.Tlat
}

// ChargeFlows bills the clock for moving the flows under the given
// exchange schedule and returns the charge breakdown. Flows must be in
// canonical src-major order; charges are applied in a deterministic
// order, so the clock is byte-identical for identical inputs.
func (m Model) ChargeFlows(clk *Clock, e Exchange, flows []Flow) ExchangeCharge {
	return m.ChargeFlowsRetry(clk, e, flows, nil)
}

// ChargeFlowsRetry is ChargeFlows with a per-message retry hook (see
// RetryFunc); nil behaves like ChargeFlows.
func (m Model) ChargeFlowsRetry(clk *Clock, e Exchange, flows []Flow, retry RetryFunc) ExchangeCharge {
	switch e {
	case ExchangeAggregated:
		return m.chargeAggregated(clk, flows, retry)
	case ExchangeHierarchical:
		return m.chargeHierarchical(clk, flows, retry)
	default:
		return m.chargeFlat(clk, flows, retry)
	}
}

// chargeFlat bills one message per flow to the sender. On a flat topology
// every charge is the legacy mdl.MsgTime(words) expression.
func (m Model) chargeFlat(clk *Clock, flows []Flow, retry RetryFunc) ExchangeCharge {
	var ch ExchangeCharge
	for _, f := range flows {
		src, dst := int(f.Src), int(f.Dst)
		clk.Add(src, m.CommTime(src, dst, f.Words))
		ch.Msgs++
		ch.Words += f.Words
		ch.SetupTime += m.SetupTime(src, dst)
		if m.Topo.SameNode(src, dst) {
			ch.IntraWords += f.Words
		} else {
			ch.InterWords += f.Words
		}
		if retry != nil {
			retry(f.Src, f.Dst, f.Words)
		}
	}
	return ch
}

// chargeAggregated bills one combined message per active source and a
// per-word drain on every destination. The flat-topology branch keeps the
// exact expressions of the legacy propagate.Aggregated backend —
// MsgTime over the int64 total, in[r]·Tlat drain — so existing charges
// stay bit-identical; the node-topology branch prices each flow's words
// at its own link rate and discounts the setup to IntraTsetup when a
// source's every destination shares its node.
func (m Model) chargeAggregated(clk *Clock, flows []Flow, retry RetryFunc) ExchangeCharge {
	p := clk.P()
	var ch ExchangeCharge
	if m.Topo.Flat() {
		out := make([]int64, p)
		in := make([]int64, p)
		for _, f := range flows {
			out[f.Src] += f.Words
			in[f.Dst] += f.Words
			ch.Words += f.Words
			ch.InterWords += f.Words
		}
		for r := 0; r < p; r++ {
			if out[r] > 0 {
				clk.Add(r, m.MsgTime(out[r]))
				ch.Msgs++
				ch.SetupTime += m.Tsetup
				if retry != nil {
					retry(int32(r), CombinedDst, out[r])
				}
			}
			if in[r] > 0 {
				clk.Add(r, float64(in[r])*m.Tlat)
			}
		}
		return ch
	}
	out := make([]int64, p)
	sendT := make([]float64, p)
	drainT := make([]float64, p)
	allIntra := make([]bool, p)
	for i := range allIntra {
		allIntra[i] = true
	}
	for _, f := range flows {
		src, dst := int(f.Src), int(f.Dst)
		wt := m.WordTime(src, dst)
		sendT[src] += float64(f.Words) * wt
		drainT[dst] += float64(f.Words) * wt
		out[src] += f.Words
		ch.Words += f.Words
		if m.Topo.SameNode(src, dst) {
			ch.IntraWords += f.Words
		} else {
			allIntra[src] = false
			ch.InterWords += f.Words
		}
	}
	for r := 0; r < p; r++ {
		if out[r] > 0 {
			setup := m.Tsetup
			if allIntra[r] {
				setup = m.Topo.IntraTsetup
			}
			clk.Add(r, setup+sendT[r])
			ch.Msgs++
			ch.SetupTime += setup
			if retry != nil {
				retry(int32(r), CombinedDst, out[r])
			}
		}
		if drainT[r] > 0 {
			clk.Add(r, drainT[r])
		}
	}
	return ch
}

// chargeHierarchical bills the two-level schedule in three barriered
// phases: members gather combined frames to their node leader at the
// intra rates, leaders exchange one combined frame per communicating
// node pair at the interconnect rates, leaders scatter incoming words to
// their members at the intra rates. Leaders skip the gather/scatter hop
// for their own flows. Every hop message counts in Msgs and its words in
// the matching Intra/InterWords level.
func (m Model) chargeHierarchical(clk *Clock, flows []Flow, retry RetryFunc) ExchangeCharge {
	p := clk.P()
	t := m.Topo
	var ch ExchangeCharge
	outW := make([]int64, p)
	inW := make([]int64, p)
	type nodePair struct {
		a, b int32
		w    int64
	}
	var pairs []nodePair
	for _, f := range flows {
		outW[f.Src] += f.Words
		inW[f.Dst] += f.Words
		ch.Words += f.Words
		na, nb := t.Node(int(f.Src)), t.Node(int(f.Dst))
		if na != nb {
			pairs = append(pairs, nodePair{int32(na), int32(nb), f.Words})
		}
	}
	slices.SortFunc(pairs, func(x, y nodePair) int {
		if x.a != y.a {
			return int(x.a) - int(y.a)
		}
		return int(x.b) - int(y.b)
	})
	k := 0
	for _, np := range pairs {
		if k > 0 && pairs[k-1].a == np.a && pairs[k-1].b == np.b {
			pairs[k-1].w += np.w
		} else {
			pairs[k] = np
			k++
		}
	}
	pairs = pairs[:k]

	// Phase 1: members gather their outgoing words to the node leader.
	for r := 0; r < p; r++ {
		if outW[r] == 0 {
			continue
		}
		ld := t.Leader(t.Node(r))
		if r == ld {
			continue
		}
		clk.Add(r, t.IntraTsetup+float64(outW[r])*t.IntraTlat)
		ch.Msgs++
		ch.SetupTime += t.IntraTsetup
		ch.IntraWords += outW[r]
		if retry != nil {
			retry(int32(r), CombinedDst, outW[r])
		}
		clk.Add(ld, float64(outW[r])*t.IntraTlat)
	}
	clk.Barrier()

	// Phase 2: leaders exchange one combined frame per node pair.
	for _, np := range pairs {
		la, lb := t.Leader(int(np.a)), t.Leader(int(np.b))
		clk.Add(la, m.Tsetup+float64(np.w)*m.Tlat)
		ch.Msgs++
		ch.SetupTime += m.Tsetup
		ch.InterWords += np.w
		if retry != nil {
			retry(int32(la), CombinedDst, np.w)
		}
		clk.Add(lb, float64(np.w)*m.Tlat)
	}
	clk.Barrier()

	// Phase 3: leaders scatter incoming words to their members.
	for r := 0; r < p; r++ {
		if inW[r] == 0 {
			continue
		}
		ld := t.Leader(t.Node(r))
		if r == ld {
			continue
		}
		clk.Add(ld, t.IntraTsetup+float64(inW[r])*t.IntraTlat)
		ch.Msgs++
		ch.SetupTime += t.IntraTsetup
		ch.IntraWords += inW[r]
		if retry != nil {
			retry(int32(ld), CombinedDst, inW[r])
		}
		clk.Add(r, float64(inW[r])*t.IntraTlat)
	}
	return ch
}
