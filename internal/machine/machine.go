// Package machine provides the analytic distributed-memory machine model
// used to place all experiments on an IBM SP2-like time axis. The paper's
// own cost calculation uses exactly two machine constants — the
// remote-memory per-word latency Tlat and the per-message setup time
// Tsetup — plus per-element computation rates; this package extends that
// model with per-operation costs for the mesh-adaption phases and a
// superstep clock with max-over-ranks semantics.
//
// Absolute numbers are calibrated to 1996-class hardware (66 MHz POWER2,
// ≈40 µs MPI latency, ≈35 MB/s sustained bandwidth); only the *shape* of
// the resulting curves is meaningful, which is all the reproduction
// claims.
package machine

// Model holds the per-operation costs (seconds) of the machine.
type Model struct {
	// MarkEdge is the cost of computing the error indicator and setting
	// the target bit for one local edge.
	MarkEdge float64
	// PropagateVisit is the cost of one element pattern-upgrade visit
	// during marking propagation.
	PropagateVisit float64
	// BisectEdge is the cost of splitting one edge (midpoint vertex,
	// child edges, solution interpolation).
	BisectEdge float64
	// SubdivideChild is the cost of creating one child element during
	// subdivision (data structure updates dominate).
	SubdivideChild float64
	// RemoveElem is the cost of purging one element during coarsening
	// (cheaper than creation: no allocation or interpolation).
	RemoveElem float64
	// PackWord/UnpackWord are the per-word costs of loading and draining
	// message buffers during remapping.
	PackWord, UnpackWord float64
	// RebuildElem is the per-element cost of rebuilding internal and
	// shared data structures after migration (the computation part of
	// the paper's remapping overhead).
	RebuildElem float64
	// Tlat is the remote-memory per-word copy time.
	Tlat float64
	// Tsetup is the per-message setup time.
	Tsetup float64
	// RetryBackoff is the modeled time of one transport backoff unit: the
	// timeout a sender waits before retransmitting a lost or corrupted
	// message. The reliable path charges Σ 2^try units per recovered
	// message (exponential backoff), so robustness has an honest modeled
	// cost instead of free retries.
	RetryBackoff float64
	// ElemWords is the words of storage per element moved during
	// remapping (the paper's M).
	ElemWords int
	// CompOp is the cost of one compute-bound inner-loop operation of
	// the load-balancing algorithms (Hilbert/Morton key encoding, sort
	// comparisons, Lanczos flops): arithmetic that streams through
	// cache. It replaces the lower half of the old blended AlgOp.
	CompOp float64
	// MemOp is the cost of one memory-bound inner-loop operation
	// (boundary-refinement gain scatter over adjacency lists,
	// similarity-matrix scans, Hungarian updates): pointer chasing
	// dominated by memory latency, roughly twice the compute rate on
	// 1996-class hardware. It replaces the upper half of the old AlgOp.
	MemOp float64
	// Topo is the node topology: which ranks share an SMP node and the
	// cheaper intra-node message rates. The zero value is a flat machine,
	// on which CommTime equals MsgTime for every pair.
	Topo Topology
}

// SP2 returns the model calibrated to the paper's 64-node IBM SP2.
func SP2() Model {
	return Model{
		MarkEdge:       0.8e-6,
		PropagateVisit: 1.2e-6,
		BisectEdge:     10e-6,
		SubdivideChild: 16e-6,
		RemoveElem:     4e-6,
		PackWord:       0.05e-6,
		UnpackWord:     0.05e-6,
		RebuildElem:    6e-6,
		Tlat:           0.25e-6,
		Tsetup:         40e-6,
		RetryBackoff:   200e-6,
		ElemWords:      50,
		CompOp:         0.03e-6,
		MemOp:          0.06e-6,
	}
}

// MsgTime returns the cost of one message of the given number of words:
// Tsetup + words·Tlat.
func (m Model) MsgTime(words int64) float64 {
	return m.Tsetup + float64(words)*m.Tlat
}

// Clock tracks per-rank elapsed time across an SPMD computation. Work is
// added per rank; Barrier advances every rank to the maximum (bulk-
// synchronous superstep semantics); Elapsed reports the slowest rank.
type Clock struct {
	t []float64
}

// NewClock returns a clock for p ranks at time zero.
func NewClock(p int) *Clock { return &Clock{t: make([]float64, p)} }

// P returns the number of ranks.
func (c *Clock) P() int { return len(c.t) }

// Add accrues seconds of local work on the given rank.
func (c *Clock) Add(rank int, seconds float64) { c.t[rank] += seconds }

// Barrier synchronizes: every rank's clock advances to the maximum.
func (c *Clock) Barrier() {
	max := 0.0
	for _, x := range c.t {
		if x > max {
			max = x
		}
	}
	for i := range c.t {
		c.t[i] = max
	}
}

// Elapsed returns the current time of the slowest rank.
func (c *Clock) Elapsed() float64 {
	max := 0.0
	for _, x := range c.t {
		if x > max {
			max = x
		}
	}
	return max
}

// Rank returns the current time of one rank.
func (c *Clock) Rank(i int) float64 { return c.t[i] }
