package core

import (
	"math"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/partition"
	"plum/internal/propagate"
	"plum/internal/refine"
	"plum/internal/solver"
)

func newFW(t *testing.T, p int) *Framework {
	t.Helper()
	m := meshgen.SmallBox()
	f, err := New(m, nil, DefaultConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewRejectsBadConfig(t *testing.T) {
	m := meshgen.UnitCube()
	if _, err := New(m, nil, Config{P: 0, F: 1}); err == nil {
		t.Error("accepted P=0")
	}
	if _, err := New(m, nil, Config{P: 2, F: 0}); err == nil {
		t.Error("accepted F=0")
	}
	bad := DefaultConfig(2)
	bad.Propagator = "nope"
	if _, err := New(meshgen.UnitCube(), nil, bad); err == nil {
		t.Error("accepted unknown propagator")
	}
}

// TestCycleAdaptAccounting checks that a cycle surfaces the adaption
// pass's first-class cost figures in the balance report for every
// propagation backend: nonzero totals, a critical path no longer than the
// total, and the modeled wall clock derived from them.
func TestCycleAdaptAccounting(t *testing.T) {
	for _, name := range propagate.Names {
		m := meshgen.SmallBox()
		cfg := DefaultConfig(4)
		cfg.Propagator = name
		f, err := New(m, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRandom(0.10, adapt.MarkRefine, 7)
		})
		if err != nil {
			t.Fatal(err)
		}
		b := rep.Balance
		if b.AdaptOps <= 0 || b.AdaptCritOps <= 0 || b.AdaptCritOps > b.AdaptOps {
			t.Errorf("%s: bad adapt ops %d/%d", name, b.AdaptOps, b.AdaptCritOps)
		}
		if b.AdaptExecTime <= 0 {
			t.Errorf("%s: no modeled adapt exec time", name)
		}
		if b.AdaptOps != rep.AdaptTime.Ops.Total ||
			b.AdaptExecTime != rep.AdaptTime.Ops.Time(cfg.Model) {
			t.Errorf("%s: report drifted from the pass's own accounting", name)
		}
	}
}

func TestEvaluateBalancedInitially(t *testing.T) {
	f := newFW(t, 4)
	imb, need := f.Evaluate()
	if need {
		t.Errorf("fresh partition flagged for repartitioning (imb=%.3f)", imb)
	}
	if imb < 1 || imb > f.Cfg.ImbalanceThreshold {
		t.Errorf("initial imbalance %.3f", imb)
	}
}

func TestBalanceNoOpWhenBalanced(t *testing.T) {
	f := newFW(t, 4)
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repartitioned || rep.Accepted {
		t.Errorf("balanced mesh triggered pipeline: %+v", rep)
	}
}

func TestBalanceAfterLocalizedRefinement(t *testing.T) {
	f := newFW(t, 8)
	// Heavy corner refinement creates severe imbalance.
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	f.A.Refine()
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	f.A.Refine()

	imb, need := f.Evaluate()
	if !need {
		t.Fatalf("imbalance %.3f did not exceed threshold", imb)
	}
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repartitioned {
		t.Fatal("did not repartition")
	}
	if !rep.Accepted {
		t.Fatalf("remap not accepted: gain=%g cost=%g", rep.Gain, rep.Cost)
	}
	if rep.ImbalanceAfter >= rep.ImbalanceBefore {
		t.Errorf("imbalance did not improve: %.3f -> %.3f", rep.ImbalanceBefore, rep.ImbalanceAfter)
	}
	if rep.WmaxNew >= rep.WmaxOld {
		t.Errorf("Wmax did not improve: %d -> %d", rep.WmaxOld, rep.WmaxNew)
	}
	if rep.MoveC <= 0 || rep.MoveN <= 0 || rep.Remap.Moved != rep.MoveC {
		t.Errorf("movement accounting: C=%d N=%d remap=%+v", rep.MoveC, rep.MoveN, rep.Remap)
	}
	// After the remap the actual loads must match the projection.
	newImb := par_ImbalanceFactor(f.Loads())
	if math.Abs(newImb-rep.ImbalanceAfter) > 1e-9 {
		t.Errorf("projected imbalance %.4f != realized %.4f", rep.ImbalanceAfter, newImb)
	}
}

// par_ImbalanceFactor avoids an import cycle in test helpers.
func par_ImbalanceFactor(loads []int64) float64 {
	var max, sum int64
	for _, x := range loads {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) / (float64(sum) / float64(len(loads)))
}

func TestCostDecisionRejectsPointlessRemap(t *testing.T) {
	f := newFW(t, 4)
	// Make remapping prohibitively expensive.
	f.Cfg.Cost.Tlat = 1 // one second per word
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	f.A.Refine()
	ownersBefore := f.D.Owners()
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repartitioned {
		t.Skip("imbalance below threshold on this fixture")
	}
	if rep.Accepted {
		t.Fatal("accepted a remap whose cost exceeds any possible gain")
	}
	// Ownership untouched (new partitioning discarded).
	for i, o := range f.D.Owners() {
		if o != ownersBefore[i] {
			t.Fatal("ownership changed despite rejection")
		}
	}
}

func TestCycleWithSolver(t *testing.T) {
	m := meshgen.SmallBox()
	s := solver.New(m, solver.GaussianPulse(geom.Vec3{X: 0.2, Y: 0.2, Z: 0.2}, 0.15))
	f, err := New(m, s, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Cycle(func(a *adapt.Adaptor) {
		errv := s.EdgeError()
		hi := 0.0
		for _, e := range errv {
			if e > hi {
				hi = e
			}
		}
		a.MarkError(errv, hi*0.3, -1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refine.TotalSubdivided() == 0 {
		t.Error("cycle refined nothing")
	}
	if rep.SolverTime <= 0 || rep.AdaptTime.Total <= 0 {
		t.Errorf("times: %+v", rep)
	}
	if len(s.U) != len(m.Verts) {
		t.Error("solution not synced")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalMapperPath(t *testing.T) {
	f := newFW(t, 4)
	f.Cfg.Mapper = MapperOptimal
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.7}, adapt.MarkRefine)
	f.A.Refine()
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repartitioned && rep.ReassignOps < int64(4*4*4) {
		t.Errorf("optimal ops = %d, want ≥ n³", rep.ReassignOps)
	}
}

func TestFGreaterThanOne(t *testing.T) {
	f := newFW(t, 4)
	f.Cfg.F = 4
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.7}, adapt.MarkRefine)
	f.A.Refine()
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repartitioned {
		t.Skip("no repartition on fixture")
	}
	if rep.ImbalanceAfter > rep.ImbalanceBefore {
		t.Error("F=4 worsened balance")
	}
}

func TestImprovementBound(t *testing.T) {
	// 8P/(P+7): 1 at P=1, ≈7.2 at P=64, →8 as P→∞.
	if b := ImprovementBound(1); math.Abs(b-1) > 1e-12 {
		t.Errorf("bound(1) = %g", b)
	}
	if b := ImprovementBound(64); math.Abs(b-8*64.0/71.0) > 1e-12 {
		t.Errorf("bound(64) = %g", b)
	}
	if ImprovementBound(1024) >= 8 {
		t.Error("bound must stay below 8")
	}
	if SolverImprovement(800, 100) != 8 {
		t.Error("SolverImprovement ratio")
	}
	if SolverImprovement(800, 0) != 1 {
		t.Error("SolverImprovement zero guard")
	}
}

func TestMapperString(t *testing.T) {
	if MapperHeuristic.String() != "heuristic" || MapperOptimal.String() != "optimal" {
		t.Error("mapper names")
	}
}

// TestBalanceChargesEveryPartitioner pins the honest-cost contract closed
// by the parallel-SFC PR: after a repartition, every backend — graph and
// SFC alike — reports nonzero total and critical-path op counts, and the
// modeled repartitioning time lands on the cost side of the acceptance
// rule.
func TestBalanceChargesEveryPartitioner(t *testing.T) {
	for _, meth := range partition.Methods {
		f := newFW(t, 8)
		f.Cfg.Method = meth
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		f.A.Refine()
		rep, err := f.Balance()
		if err != nil {
			t.Fatalf("%v: %v", meth, err)
		}
		if !rep.Repartitioned {
			t.Fatalf("%v: fixture did not trigger repartitioning", meth)
		}
		if rep.RepartitionOps <= 0 || rep.RepartitionCritOps <= 0 {
			t.Errorf("%v: zero repartition cost reported (ops=%d crit=%d)",
				meth, rep.RepartitionOps, rep.RepartitionCritOps)
		}
		if rep.RepartitionCritOps > rep.RepartitionOps {
			t.Errorf("%v: critical path %d exceeds total %d",
				meth, rep.RepartitionCritOps, rep.RepartitionOps)
		}
		if rep.RepartitionTime <= 0 {
			t.Errorf("%v: repartition time not charged", meth)
		}
		// The remap execution's scatter work is predicted before the
		// decision and sits on the cost side too.
		if rep.RemapOps <= 0 || rep.RemapCritOps <= 0 || rep.RemapCritOps > rep.RemapOps {
			t.Errorf("%v: bad remap ops %d/%d", meth, rep.RemapOps, rep.RemapCritOps)
		}
		if rep.RemapExecTime <= 0 {
			t.Errorf("%v: remap execution time not charged", meth)
		}
		// The acceptance rule must see the whole balancing overhead: the
		// reported cost is redistribution + repartition + reassignment +
		// remap execution.
		wantCost := f.Cfg.Cost.RedistCost(rep.MoveC, rep.MoveN) +
			rep.RepartitionTime + rep.ReassignTime + rep.RemapExecTime
		if math.Abs(rep.Cost-wantCost) > 1e-12 {
			t.Errorf("%v: cost %.6g does not include the balancing overhead (want %.6g)",
				meth, rep.Cost, wantCost)
		}
		// The pre-decision prediction must be exactly what the executed
		// remap reports (MoveStats' C and N are ExecuteRemap's Moved and
		// Sets).
		if rep.Accepted &&
			(rep.Remap.Ops.Total != rep.RemapOps || rep.Remap.Ops.Crit != rep.RemapCritOps) {
			t.Errorf("%v: executed remap ops %d/%d differ from predicted %d/%d",
				meth, rep.Remap.Ops.Total, rep.Remap.Ops.Crit, rep.RemapOps, rep.RemapCritOps)
		}
	}
}

// TestBalanceSplitsMemCompTime pins the MemOp/CompOp machine-model
// split: the refinement share of the repartition ops is reported
// separately, charged at Model.MemOp, and the compute-bound remainder at
// Model.CompOp, with RepartitionTime their exact sum.
func TestBalanceSplitsMemCompTime(t *testing.T) {
	f := newFW(t, 8)
	f.Cfg.Method = partition.MethodHilbertSFC
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	f.A.Refine()
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	f.A.Refine()
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repartitioned {
		t.Fatal("fixture did not trigger repartitioning")
	}
	if rep.RefineOps <= 0 || rep.RefineCritOps <= 0 {
		t.Errorf("refinement share not reported: %d/%d", rep.RefineOps, rep.RefineCritOps)
	}
	if rep.RefineOps > rep.RepartitionOps || rep.RefineCritOps > rep.RepartitionCritOps {
		t.Errorf("refinement share %d/%d exceeds repartition totals %d/%d",
			rep.RefineOps, rep.RefineCritOps, rep.RepartitionOps, rep.RepartitionCritOps)
	}
	wantComp := float64(rep.RepartitionCritOps-rep.RefineCritOps) * f.Cfg.Model.CompOp
	wantMem := float64(rep.RefineCritOps) * f.Cfg.Model.MemOp
	if math.Abs(rep.RepartitionCompTime-wantComp) > 1e-15 ||
		math.Abs(rep.RepartitionMemTime-wantMem) > 1e-15 {
		t.Errorf("time split %.3g/%.3g, want %.3g/%.3g",
			rep.RepartitionCompTime, rep.RepartitionMemTime, wantComp, wantMem)
	}
	if math.Abs(rep.RepartitionTime-(wantComp+wantMem)) > 1e-15 {
		t.Errorf("RepartitionTime %.3g != comp+mem %.3g", rep.RepartitionTime, wantComp+wantMem)
	}
	if rep.ReassignTime != float64(rep.ReassignOps)*f.Cfg.Model.MemOp {
		t.Errorf("reassignment not charged at MemOp")
	}
}

// TestRefinerKnob runs the balance pipeline under every refinement
// backend and rejects unknown names at construction.
func TestRefinerKnob(t *testing.T) {
	for _, name := range refine.Names {
		f := newFW(t, 8)
		f.Cfg.Refiner = name
		f.Cfg.Method = partition.MethodHilbertSFC
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		f.A.Refine()
		rep, err := f.Balance()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Repartitioned && rep.Accepted && rep.ImbalanceAfter >= rep.ImbalanceBefore {
			t.Errorf("%s: accepted remap did not improve balance: %.3f -> %.3f",
				name, rep.ImbalanceBefore, rep.ImbalanceAfter)
		}
	}
	if _, err := New(meshgen.SmallBox(), nil, Config{P: 2, F: 1, Refiner: "nope"}); err == nil {
		t.Error("accepted unknown refiner")
	}
}

// TestBalanceWorkerCountInvariance runs the full SFC pipeline at several
// worker counts and demands identical ownership — the framework-level
// restatement of the psort determinism guarantee. The refiner is forced
// by name: the adaptive default (refine.Default) intentionally switches
// between band-FM and classic FM as the effective worker count crosses
// 1, so only a named backend carries the cross-worker-count invariance
// this test asserts.
func TestBalanceWorkerCountInvariance(t *testing.T) {
	var ref []int32
	for _, workers := range []int{1, 2, 5} {
		f := newFW(t, 8)
		f.Cfg.Method = partition.MethodHilbertSFC
		f.Cfg.Workers = workers
		f.Cfg.Refiner = "bandfm"
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		f.A.Refine()
		if _, err := f.Balance(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		owners := f.D.Owners()
		if ref == nil {
			ref = owners
			continue
		}
		for v := range owners {
			if owners[v] != ref[v] {
				t.Fatalf("workers=%d: ownership diverges at vertex %d", workers, v)
			}
		}
	}
}
