// Package core implements the paper's framework for parallel adaptive flow
// computation (its Fig. 1): a flow solver and mesh adaptor coupled to a
// partitioner and mapper that redistribute the computational mesh when
// necessary. Each cycle runs the solver, adapts the mesh, evaluates the
// load balance on the dual graph, and — if the imbalance exceeds the
// threshold — repartitions, reassigns partitions to processors so as to
// minimize data movement, and accepts the remap only when the expected
// computational gain exceeds the redistribution cost.
package core

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"plum/internal/adapt"
	"plum/internal/ckpt"
	"plum/internal/dual"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/obs"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/propagate"
	"plum/internal/refine"
	"plum/internal/remap"
	"plum/internal/solver"
)

// Mapper selects the processor-reassignment algorithm.
type Mapper int

// Available mappers.
const (
	MapperHeuristic Mapper = iota
	MapperOptimal
)

// String implements fmt.Stringer.
func (mp Mapper) String() string {
	if mp == MapperOptimal {
		return "optimal"
	}
	return "heuristic"
}

// Config parameterizes the framework.
type Config struct {
	// P is the number of processors; F is the number of partitions per
	// processor (the paper's granularity factor; F=1 suffices for most
	// practical applications).
	P, F int
	// ImbalanceThreshold triggers repartitioning when Wmax/Wavg exceeds
	// it.
	ImbalanceThreshold float64
	// Method is the repartitioning algorithm.
	Method partition.Method
	// Mapper chooses heuristic or optimal processor reassignment.
	Mapper Mapper
	// Model is the machine model for timing.
	Model machine.Model
	// Cost holds the gain/cost decision constants.
	Cost remap.CostModel
	// Seed drives any randomized components.
	Seed int64
	// Workers bounds the worker-goroutine count of the parallel
	// partitioning and refinement phases (SFC key generation, sample
	// sort, chunked weighted cut, band-FM gain scatter). ≤ 0 means
	// runtime.GOMAXPROCS. Partition assignments are identical at every
	// worker count; only wall time changes.
	Workers int
	// Refiner names the boundary-refinement backend applied after every
	// repartition: "bandfm" (the deterministic band-limited parallel
	// FM), "diffusion" (Jostle-style weighted diffusion), or "fm" (the
	// classic serial sweep). "" keeps each backend's own default —
	// band-FM for the parallel SFC path, classic FM inside Multilevel.
	// See internal/refine.
	Refiner string
	// Propagator names the frontier-propagation backend driving the
	// parallel adaption phases: "bulksync" (the paper's per-pair
	// exchange) or "aggregated" (per-rank message aggregation for high
	// processor counts). "" selects bulksync. See internal/propagate.
	Propagator string
	// Exchange names the remap payload exchange schedule: "flat" (one
	// message per flow — the paper's semantics and the legacy path),
	// "aggregated" (one combined frame per source rank), or
	// "hierarchical" (two-level per-node gather / inter-node exchange /
	// scatter; requires Topology.RanksPerNode > 1). "" selects flat. The
	// owner array and payload bytes are identical under every schedule;
	// only the modeled communication charges and the wire framing differ.
	// See internal/machine.Exchange.
	Exchange string
	// Topology is the machine's node structure: RanksPerNode consecutive
	// ranks share a node with cheap intra-node message rates. The zero
	// value is a flat machine on which every pair pays the interconnect
	// rates — the legacy model, bit for bit. See machine.NodeTopology.
	Topology machine.Topology
	// SolverIters is the number of proxy flow-solver iterations each
	// cycle runs before adaption, and the multiplier of the modeled
	// CycleReport.SolverTime — a single knob so the proxy solve and the
	// modeled cost can never silently disagree (Cycle used to hardcode
	// Iterate(3) while SolverTime modeled the cost model's Nadapt
	// iterations). 0 selects the default of 3; negative is rejected by
	// New.
	SolverIters int
	// Overlap hides the balance pipeline behind the solver, the paper's
	// latency-tolerance argument: the repartition + reassignment +
	// remap-execution critical path runs concurrently with the modeled
	// solver iterations on the machine clock, the acceptance rule charges
	// only the exposed (post-overlap) cost, and the remap executes
	// through the streaming executor (par.ExecuteRemapStreaming), which
	// bounds peak payload memory to one flow window. False keeps the
	// paper-faithful strict barrier chain and the bulk-synchronous remap.
	// Either way every result byte is identical — overlap changes what
	// the machine clock charges and how the host buffers the payload,
	// never the partitions, owners, or payload bytes.
	Overlap bool
	// PreAdapt uniformly refines the mesh this many times before the
	// dual graph is built, then rebases the refinement history — the
	// paper's remedy when the initial mesh is too small for good
	// partitions ("one can then allow the initial mesh to be adapted one
	// or more times before using the dual graph for all future
	// adaptions").
	PreAdapt int
	// Agglomerate, when > 1, groups roughly this many dual vertices into
	// superelements before partitioning — the paper's remedy when the
	// initial mesh is too *large* and partitioning time would be
	// excessive.
	Agglomerate int
	// Faults is the deterministic fault-injection plan for the balance
	// cycles (internal/fault): the remap payload exchange runs over the
	// reliable transport with real injected faults, and the adaption
	// notification exchanges are charged modeled retry traffic. nil — or
	// a zero-rate plan — keeps every report and every byte of mesh state
	// identical to the fault-free baseline. Each cycle draws an
	// independent schedule (the fault keys carry the cycle index).
	Faults *fault.Plan
	// Retry bounds the recovery effort when Faults is set: send attempts
	// per message and re-executions per failed remap window. The zero
	// value selects fault.DefaultRetry.
	Retry fault.Retry
	// Checkpoint snapshots the recoverable cycle state — ownership,
	// element weights, the fault-cycle scope, the rollback streak — into
	// an internal/ckpt checkpoint before each balance pass, so a rank
	// crash mid-remap restores to an audited pre-pass state before the
	// survivor remap runs. Delta/copy-on-write: a steady cycle writes only
	// the changed words. New force-enables it when the fault plan can
	// crash ranks; it can also be turned on alone to measure the cost.
	Checkpoint bool
	// StageDeadline arms a wall-clock watchdog on every remap exchange
	// stage: a stage whose worker ranks have not all finished within the
	// deadline fails with a typed timeout error instead of hanging the
	// process. Zero (the default) disables the watchdog — wall-clock
	// deadlines are inherently timing-dependent, so determinism-sensitive
	// runs leave this off. Negative is rejected by New.
	StageDeadline time.Duration
	// Trace, when non-nil, records per-stage spans and events on the
	// modeled timeline as the cycles run — solver, adaption phases,
	// repartition, reassignment, remap execution with per-rank
	// send/rebuild tracks, fault retries, checkpoints, crash recovery.
	// Only worker-invariant quantities are recorded, so exports are
	// byte-identical at every worker count. nil (the default) disables
	// tracing at the cost of one pointer compare per stage — zero
	// allocations on the cycle hot path. Not safe for concurrent
	// Frameworks; give each its own Trace.
	Trace *obs.Trace
	// Metrics, when non-nil, accumulates framework counters and gauges
	// (cycles, outcomes, ops, moved elements, retries, checkpoint words,
	// imbalance) after each completed cycle, for Prometheus text dumps.
	// Same determinism and nil-cost contract as Trace.
	Metrics *obs.Registry
}

// DefaultConfig returns the configuration used throughout the experiments:
// F=1, threshold 1.2, multilevel partitioner, heuristic mapper, SP2
// machine constants.
func DefaultConfig(p int) Config {
	return Config{
		P:                  p,
		F:                  1,
		ImbalanceThreshold: 1.2,
		Method:             partition.MethodMultilevel,
		Mapper:             MapperHeuristic,
		Model:              machine.SP2(),
		Cost:               remap.DefaultSP2(),
		Seed:               1,
		SolverIters:        3,
	}
}

// Framework couples the mesh, its dual graph, the distributed view, the
// adaptor, and (optionally) a proxy flow solver.
type Framework struct {
	Cfg Config
	M   *mesh.Mesh
	G   *dual.Graph
	D   *par.Dist
	A   *adapt.Adaptor
	S   *solver.Solver

	// sfcCache holds the curve order for the SFC partitioners. The dual
	// graph's centroids never change, so the order is computed once and
	// every later repartition is an O(n) scan (see partition.SFCPartitioner).
	sfcCache *partition.SFCPartitioner

	// cycles counts completed Cycle calls; it scopes the fault keys so
	// each cycle draws an independent schedule (par.Dist.FaultCycle).
	cycles int
	// rollbackStreak counts consecutive rolled-back balance passes; at
	// DegradedStreak the outcome escalates to OutcomeDegraded. A
	// committed remap resets it.
	rollbackStreak int
	// ck is the cycle checkpoint (Config.Checkpoint); nil when
	// checkpointing is off.
	ck *ckpt.Checkpoint
}

// CheckpointStats returns the cycle checkpoint's capture/restore
// counters (zero when Config.Checkpoint is off). The full-clone vs
// delta-word split is the measured cost of the near-zero steady-state
// claim: after the first capture, a cycle whose ownership barely moved
// writes only the changed words.
func (f *Framework) CheckpointStats() ckpt.Stats {
	if f.ck == nil {
		return ckpt.Stats{}
	}
	return f.ck.Stats()
}

// refiner resolves the boundary-refinement backend for the SFC hot path
// at the framework's worker knob. "" resolves adaptively via
// refine.Default: band-FM when the dual graph and worker knob would
// actually run it parallel, the classic serial sweep otherwise (serial
// hosts don't pay the ~2× band overhead). New validated the name, so the
// fallback is purely defensive.
func (f *Framework) refiner() refine.Refiner {
	if f.Cfg.Refiner != "" {
		if r, ok := refine.ByName(f.Cfg.Refiner, f.Cfg.Workers); ok {
			return r
		}
	}
	return refine.Default(f.G.N, f.Cfg.Workers)
}

// optRefiner returns the refiner forced on every partitioning backend,
// or nil when the config leaves each backend its own default ("").
func optRefiner(cfg Config) refine.Refiner {
	if cfg.Refiner == "" {
		return nil
	}
	r, _ := refine.ByName(cfg.Refiner, cfg.Workers)
	return r
}

// repartition divides the dual graph into k parts with the configured
// method and returns the abstract operation accounting of the
// partitioning itself. Every backend reports honest, nonzero cost: the
// graph partitioners count their matching/eigen-solve/refinement work
// (the paper times only reassignment and remap, which silently flatters
// its spectral partitioner); the SFC methods use the cached curve order,
// so only the first call pays the O(n log n) parallel sort and the
// critical-path count divides the parallel phases across Cfg.Workers.
// Refinement ops land in the Mem share, charged at Model.MemOp.
func (f *Framework) repartition(k int) (partition.Assignment, partition.Ops) {
	c, ok := f.Cfg.Method.Curve()
	if !ok {
		return partition.PartitionCounted(f.G, k, f.Cfg.Method,
			partition.Options{Workers: f.Cfg.Workers, Seed: f.Cfg.Seed, Refiner: optRefiner(f.Cfg)})
	}
	var ops partition.Ops
	if f.sfcCache == nil || f.sfcCache.Curve != c {
		f.sfcCache = partition.NewSFCWorkers(f.G, c, f.Cfg.Workers)
		ops.Total = f.sfcCache.LastOps // the one-time sort
		ops.Crit = f.sfcCache.LastCritOps
	}
	asg := f.sfcCache.Repartition(f.G, k)
	ops.Total += f.sfcCache.LastOps
	ops.Crit += f.sfcCache.LastCritOps
	ops.AddMem(f.refiner().Refine(f.G, asg, k, 2))
	return asg, ops
}

// New builds a framework over m: the dual graph is constructed, an initial
// P-way partition computed and mapped one-to-one onto processors, and the
// adaptor attached. sol may be nil when no solver coupling is needed.
func New(m *mesh.Mesh, sol *solver.Solver, cfg Config) (*Framework, error) {
	if cfg.P < 1 || cfg.F < 1 {
		return nil, fmt.Errorf("core: invalid P=%d F=%d", cfg.P, cfg.F)
	}
	if cfg.SolverIters < 0 {
		return nil, fmt.Errorf("core: invalid SolverIters=%d", cfg.SolverIters)
	}
	if cfg.SolverIters == 0 {
		cfg.SolverIters = 3
	}
	if _, ok := refine.ByName(cfg.Refiner, cfg.Workers); !ok {
		return nil, fmt.Errorf("core: unknown refiner %q (have %v)", cfg.Refiner, refine.Names)
	}
	prop, ok := propagate.ByName(cfg.Propagator, cfg.Workers)
	if !ok {
		return nil, fmt.Errorf("core: unknown propagator %q (have %v)", cfg.Propagator, propagate.Names)
	}
	exch, err := machine.ExchangeByName(cfg.Exchange)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if exch == machine.ExchangeHierarchical && cfg.Topology.Flat() {
		return nil, fmt.Errorf("core: exchange %q needs a node topology (set Config.Topology.RanksPerNode > 1, e.g. -nodesize on the CLIs)", exch)
	}
	// The machine model carries the topology from here on: every CommTime
	// charge in the adaption and remap paths sees the same node structure.
	cfg.Model.Topo = cfg.Topology
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.StageDeadline < 0 {
		return nil, fmt.Errorf("core: negative StageDeadline %v", cfg.StageDeadline)
	}
	if cfg.Faults.CrashEnabled() {
		// Crash recovery restores from the cycle checkpoint before the
		// survivor remap; a crash plan without checkpoints would have no
		// audited state to recover to.
		cfg.Checkpoint = true
	}
	for i := 0; i < cfg.PreAdapt; i++ {
		pa := adapt.New(m)
		pa.MarkRegion(geom.All{}, adapt.MarkRefine)
		pa.Refine()
		if sol != nil {
			sol.SyncAfterAdaption() // interpolate onto the new vertices
		}
		cm := m.Rebase()
		if sol != nil {
			// Rebase compacts vertex ids; carry the field across.
			u := make([]float64, len(m.Verts))
			for old, nv := range cm.Vert {
				if nv >= 0 && old < len(sol.U) {
					u[nv] = sol.U[old]
				}
			}
			sol.U = u
		}
	}
	g := dual.Build(m)
	asg := partitionMaybeAgglomerated(g, cfg)
	d := par.NewDist(m, cfg.P, asg)
	d.Workers = cfg.Workers // the remap scatter and SPL scans share the knob
	d.Prop = prop           // the adaption phases' frontier-propagation backend
	d.Exchange = exch       // the remap payload exchange schedule
	d.Faults = cfg.Faults   // fault plan + recovery budget for the balance cycles
	d.Retry = cfg.Retry
	d.StageDeadline = cfg.StageDeadline
	d.Trace = cfg.Trace // per-rank remap spans + streaming window events
	fw := &Framework{
		Cfg: cfg,
		M:   m,
		G:   g,
		D:   d,
		A:   adapt.New(m),
		S:   sol,
	}
	if cfg.Checkpoint {
		fw.ck = ckpt.New()
	}
	return fw, nil
}

// partitionMaybeAgglomerated partitions g into cfg.P parts, optionally via
// superelement agglomeration for very large duals. New already validated
// cfg.Refiner.
func partitionMaybeAgglomerated(g *dual.Graph, cfg Config) partition.Assignment {
	opt := partition.Options{Workers: cfg.Workers, Seed: cfg.Seed, Refiner: optRefiner(cfg)}
	if cfg.Agglomerate <= 1 {
		asg, _ := partition.PartitionCounted(g, cfg.P, cfg.Method, opt)
		return asg
	}
	coarse, group := g.Agglomerate(cfg.Agglomerate)
	coarseAsg, _ := partition.PartitionCounted(coarse, cfg.P, cfg.Method, opt)
	asg := make(partition.Assignment, g.N)
	for v := range asg {
		asg[v] = coarseAsg[group[v]]
	}
	return asg
}

// Loads returns the per-processor computational weight under the current
// ownership (the projection of the new Wcomp onto the current partitions
// used by the preliminary evaluation).
func (f *Framework) Loads() []int64 {
	loads := make([]int64, f.Cfg.P)
	owners := f.D.Owners()
	for v, o := range owners {
		loads[o] += f.G.Wcomp[v]
	}
	return loads
}

// aliveLoads returns the computational loads of the surviving ranks,
// indexed by position in alive. With every rank alive the values and
// their order equal Loads() exactly, so the imbalance floats are
// bit-identical to the pre-crash-recovery arithmetic.
func (f *Framework) aliveLoads(alive []int32) []int64 {
	full := f.Loads()
	out := make([]int64, len(alive))
	for i, r := range alive {
		out[i] = full[r]
	}
	return out
}

// Evaluate is the preliminary evaluation step: it refreshes the dual
// weights from the mesh and returns the imbalance factor Wmax/Wavg over
// the surviving ranks and whether it exceeds the repartitioning
// threshold.
func (f *Framework) Evaluate() (imbalance float64, needsRepartition bool) {
	f.G.UpdateWeights(f.M)
	imb := par.ImbalanceFactor(f.aliveLoads(f.D.Alive()))
	return imb, imb > f.Cfg.ImbalanceThreshold
}

// BalanceOutcome classifies how one balance pass concluded under the
// fault plan. Without a plan every pass reports Committed.
type BalanceOutcome int

// The balance outcomes, in escalating order of distress.
const (
	// OutcomeCommitted: the pass completed cleanly — no remap attempted,
	// a remap rejected by the cost rule, or a remap executed without a
	// single retry.
	OutcomeCommitted BalanceOutcome = iota
	// OutcomeRetriedCommitted: the remap executed and converged to the
	// fault-free result, but only after transport or window retries.
	OutcomeRetriedCommitted
	// OutcomeRecovered: one or more ranks crashed mid-remap; the pass
	// restored the cycle checkpoint and remapped the dead ranks' elements
	// onto the survivors with the balancer's own partitioner + remap
	// machinery. The run continues on fewer processors with every element
	// survivor-owned and the total weight conserved.
	OutcomeRecovered
	// OutcomeRolledBack: the remap exhausted its retry budget and rolled
	// back; the cycle continues on the old partition (graceful
	// degradation) with the pre-balance ownership verifiably intact.
	OutcomeRolledBack
	// OutcomeDegraded: DegradedStreak consecutive balance passes rolled
	// back — the machine is persistently failing and the imbalance can no
	// longer be corrected. The framework keeps running, but drivers
	// should surface this loudly (cmd/plum exits non-zero).
	OutcomeDegraded
)

// DegradedStreak is the number of consecutive rolled-back balance passes
// that escalates OutcomeRolledBack to OutcomeDegraded.
const DegradedStreak = 2

// String implements fmt.Stringer.
func (o BalanceOutcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeRetriedCommitted:
		return "retried-committed"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeRolledBack:
		return "rolled-back"
	case OutcomeDegraded:
		return "degraded"
	}
	return fmt.Sprintf("BalanceOutcome(%d)", int(o))
}

// BalanceReport records one pass through the load-balancing pipeline.
type BalanceReport struct {
	// ImbalanceBefore is Wmax/Wavg on the current partitions.
	ImbalanceBefore float64
	// Repartitioned reports whether the threshold was exceeded and a new
	// partitioning computed.
	Repartitioned bool
	// ImbalanceAfter is the projected imbalance of the new partitioning
	// (1.0-ish when repartitioned, else equal to ImbalanceBefore).
	ImbalanceAfter float64
	// WmaxOld and WmaxNew are the heaviest processor loads before/after.
	WmaxOld, WmaxNew int64
	// Objective is the mapper's 𝒥; MoveC and MoveN are the cost model's
	// C (elements moved) and N (element sets moved).
	Objective int64
	MoveC     int64
	MoveN     int
	// RepartitionOps and RepartitionCritOps describe the partitioner's
	// work including refinement: total ops summed over all workers, and
	// the critical-path share (what a parallel machine actually waits
	// for — equal for fully serial backends). Every backend reports
	// nonzero cost.
	RepartitionOps     int64
	RepartitionCritOps int64
	// RefineOps and RefineCritOps are the memory-bound refinement share
	// of the figures above (the band-FM/diffusion gain scatter), charged
	// at Model.MemOp; the compute-bound remainder (key encoding, sorts,
	// eigen-solves) is charged at Model.CompOp.
	RefineOps     int64
	RefineCritOps int64
	// RepartitionTime = RepartitionCompTime + RepartitionMemTime: the
	// modeled wall clock of the whole repartition, split across the two
	// machine rates.
	RepartitionTime     float64
	RepartitionCompTime float64
	RepartitionMemTime  float64
	// ReassignOps and ReassignTime describe the mapper's work
	// (similarity-matrix scans: memory-bound, charged at Model.MemOp).
	ReassignOps  int64
	ReassignTime float64
	// RemapOps and RemapCritOps describe the remap execution's scatter,
	// pack, and unpack work (par.PredictRemapOps of the mapping's C and
	// N): total ops over all workers and the critical-path share at the
	// framework's worker knob. They are computed before the gain/cost
	// decision — an executed remap reports the identical figures in
	// Remap.Ops — so RemapExecTime sits on the acceptance rule's cost
	// side next to the repartition and reassignment overheads.
	RemapOps     int64
	RemapCritOps int64
	// RemapExecTime is RemapOps' modeled wall clock: the mem-bound
	// critical path at Model.MemOp, the compute-bound remainder at
	// Model.CompOp.
	RemapExecTime float64
	// AdaptOps, AdaptCritOps, and AdaptExecTime describe the parallel
	// adaption pass that preceded this balance pass
	// (par.PredictAdaptOps of the executed phase quantities), filled by
	// Cycle; zero when Balance is invoked directly. Adaption is
	// mandatory work the cycle performs whatever the remap decision, so
	// these sit beside the pipeline costs for visibility rather than on
	// the acceptance rule's cost side.
	AdaptOps      int64
	AdaptCritOps  int64
	AdaptExecTime float64
	// Gain and Cost are the two sides of the acceptance test; Accepted
	// reports whether the remap was executed. Cost is the *exposed* cost:
	// CostFull minus OverlapTime. Without overlap the two are equal.
	Gain, Cost float64
	Accepted   bool
	// CostFull is the serial (non-overlapped) cost side: the paper's
	// redistribution terms plus the measured repartition, reassignment,
	// and remap-execution overheads. It is what the acceptance rule
	// charges when Config.Overlap is off.
	CostFull float64
	// OverlapTime is the portion of the balance pipeline's critical path
	// (repartition + reassignment + remap execution) hidden behind the
	// cycle's modeled solver iterations when Config.Overlap is on:
	// min(SolverTime, pipeline). The wire redistribution itself
	// (C·M·Tlat + N·Tsetup) stays exposed — element state can only move
	// once the overlapped iterations have finished with it. Zero when
	// overlap is off or when Balance runs outside a cycle (no solve to
	// hide behind).
	OverlapTime float64
	// Exchange is the remap exchange schedule the pass charges and (when
	// accepted) executes under — Config.Exchange, parsed.
	Exchange machine.Exchange
	// RemapSetups and RemapSetupTime are the executed remap's modeled
	// message-setup count and summed setup-time slice
	// (par.RemapResult.Setups / SetupTime) — the quantities the exchange
	// schedule exists to shrink. Zero when no remap executed.
	RemapSetups    int64
	RemapSetupTime float64
	// RemapPeakWords is the executed remap's host-side payload
	// high-water mark in record words (par.RemapResult.PeakWords): the
	// whole buffer on the bulk-synchronous executor, the largest
	// in-flight window on the streaming one. Zero when not accepted.
	RemapPeakWords int64
	// Remap holds the executed migration (zero when not accepted).
	Remap par.RemapResult
	// Outcome classifies the pass under the fault plan: Committed,
	// RetriedCommitted, Recovered, RolledBack, or Degraded. Always
	// Committed without a plan.
	Outcome BalanceOutcome
	// FaultDetail is the failed remap's diagnostic (the RemapError text);
	// empty unless Outcome is Recovered, RolledBack, or Degraded.
	FaultDetail string
	// CrashedRanks names the ranks that died this pass (sorted); nil
	// unless Outcome is Recovered.
	CrashedRanks []int
	// Alive is the surviving processor count the pass balanced over —
	// Config.P until the first crash, fewer after.
	Alive int
	// Recovery holds the survivor remap that repaired a crash: the
	// dead ranks' elements re-sourced from the cycle checkpoint's replica
	// and exchanged onto the P−|crashed| survivors through the ordinary
	// remap executor, with its machine-model charges (ChargeFlows under
	// the configured exchange schedule) intact. Zero unless Outcome is
	// Recovered.
	Recovery par.RemapResult
}

// Balance runs the repartitioning / reassignment / cost-decision /
// remapping pipeline of the framework once. When the current partitions
// are adequately balanced, or when the redistribution cost exceeds the
// expected gain, the mesh distribution is left untouched (the paper
// discards the new partitioning in that case).
//
// A standalone Balance has no solver phase to hide behind, so even with
// Config.Overlap the acceptance rule charges the full cost (OverlapTime
// is zero); Cycle passes its modeled solver time as the overlap window.
func (f *Framework) Balance() (BalanceReport, error) { return f.balance(0) }

// balance is the pipeline with an explicit overlap window: the modeled
// solver time the balance pipeline may hide behind when Config.Overlap is
// on.
func (f *Framework) balance(window float64) (BalanceReport, error) {
	var rep BalanceReport
	rep.Exchange = f.D.Exchange
	f.G.UpdateWeights(f.M)
	// Capture the recoverable cycle state before anything mutates: a rank
	// crash mid-remap restores to exactly this point before the survivor
	// remap runs. Delta-captured, so a steady cycle writes almost nothing.
	if f.ck != nil {
		f.ck.Capture(ckpt.State{Cycle: f.D.FaultCycle, Streak: f.rollbackStreak,
			Owners: f.D.Owners(), Weights: f.G.Wcomp})
		traceCkptCapture(f.Cfg.Trace, f.D.FaultCycle)
	}
	// All balance targets are the surviving ranks: after a crash the run
	// continues on fewer processors, and dead ranks must never appear in
	// an imbalance denominator or receive a partition. With every rank
	// alive the compaction is the identity and every float below is
	// bit-identical to the legacy arithmetic.
	alive := f.D.Alive()
	rep.Alive = len(alive)
	loads := f.aliveLoads(alive)
	rep.ImbalanceBefore = par.ImbalanceFactor(loads)
	rep.ImbalanceAfter = rep.ImbalanceBefore
	rep.WmaxOld = slices.Max(loads)
	if rep.ImbalanceBefore <= f.Cfg.ImbalanceThreshold {
		traceEvaluate(f.Cfg.Trace, rep.ImbalanceBefore, false)
		return rep, nil
	}
	traceEvaluate(f.Cfg.Trace, rep.ImbalanceBefore, true)
	rep.Repartitioned = true

	// Repartition the dual graph into S·F parts over the S survivors.
	nParts := rep.Alive * f.Cfg.F
	newPart, partOps := f.repartition(nParts)
	rep.RepartitionOps = partOps.Total
	rep.RepartitionCritOps = partOps.Crit
	rep.RefineOps = partOps.MemTotal
	rep.RefineCritOps = partOps.MemCrit
	rep.RepartitionCompTime = float64(partOps.Crit-partOps.MemCrit) * f.Cfg.Model.CompOp
	rep.RepartitionMemTime = float64(partOps.MemCrit) * f.Cfg.Model.MemOp
	rep.RepartitionTime = rep.RepartitionCompTime + rep.RepartitionMemTime
	traceRepartition(f.Cfg.Trace, f.Cfg.Model, partOps, nParts)

	// Similarity matrix + processor reassignment, in the compacted
	// survivor index space (identity when every rank is alive).
	sim := remap.Build(f.compactOwners(alive), newPart, f.G.Wremap, rep.Alive, f.Cfg.F)
	var mp remap.Mapping
	if f.Cfg.Mapper == MapperOptimal {
		mp, rep.Objective = sim.Optimal()
	} else {
		mp, rep.Objective = sim.Heuristic()
	}
	if err := sim.Validate(mp); err != nil {
		return rep, err
	}
	rep.ReassignOps = sim.LastOps
	rep.ReassignTime = float64(sim.LastOps) * f.Cfg.Model.MemOp
	traceReassign(f.Cfg.Trace, sim.LastOps, rep.ReassignTime, rep.Objective)

	// Projected new loads under the mapping, one slot per survivor.
	newLoads := make([]int64, rep.Alive)
	for v, p := range newPart {
		newLoads[mp[p]] += f.G.Wcomp[v]
	}
	rep.WmaxNew = slices.Max(newLoads)
	rep.ImbalanceAfter = par.ImbalanceFactor(newLoads)

	// Gain/cost decision. The cost side carries the measured balancing
	// overhead (repartition + reassignment + remap-execution time) on top
	// of the paper's redistribution terms — negligible for the
	// incremental SFC path, which is the point of modeling it. The remap
	// execution's scatter work is predicted from the mapping's C and N
	// (exactly the quantities ExecuteRemap will report), so the decision
	// can weigh it without running the remap; RedistCost models the wire
	// volume, RemapExecTime the CPU-side plan/pack/unpack ops.
	rep.MoveC, rep.MoveN = sim.MoveStats(mp)
	remapOps := par.PredictRemapOps(len(f.M.Elems), rep.MoveC, rep.MoveN, f.Cfg.P, f.Cfg.Workers)
	rep.RemapOps = remapOps.Total
	rep.RemapCritOps = remapOps.Crit
	rep.RemapExecTime = remapOps.Time(f.Cfg.Model)
	rep.Gain = f.Cfg.Cost.Gain(rep.WmaxOld, rep.WmaxNew)
	pipeline := rep.RepartitionTime + rep.ReassignTime + rep.RemapExecTime
	rep.CostFull = redistCost(f.Cfg.Cost, f.Cfg.Model, f.D.Exchange, rep.Alive, rep.MoveC, rep.MoveN) + pipeline
	if f.Cfg.Overlap {
		// Latency tolerance: the CPU-side pipeline hides behind the
		// solver iterations; only the exposed remainder delays the
		// solution. The wire redistribution stays exposed.
		rep.OverlapTime = min(window, pipeline)
	}
	rep.Cost = rep.CostFull - rep.OverlapTime
	// This comparison is remap.CostModel.WorthwhileTotal applied to the
	// reported quantities, so the report can never drift from the decision.
	if rep.Gain <= rep.Cost {
		rep.ImbalanceAfter = rep.ImbalanceBefore // discarded
		traceDecision(f.Cfg.Trace, rep.Gain, rep.MoveC, rep.MoveN, false)
		return rep, nil
	}
	rep.Accepted = true
	traceDecision(f.Cfg.Trace, rep.Gain, rep.MoveC, rep.MoveN, true)

	// Execute the remap: ownership follows the accepted mapping. The
	// overlapped cycle streams the payload one flow window at a time;
	// the paper-faithful baseline keeps the bulk-synchronous exchange.
	// Both produce byte-identical results up to PeakWords.
	newOwner := make([]int32, len(newPart))
	for v, p := range newPart {
		newOwner[v] = alive[mp[p]]
	}
	var res par.RemapResult
	var err error
	if f.Cfg.Overlap {
		res, err = f.D.ExecuteRemapStreaming(newOwner, f.Cfg.Model)
	} else {
		res, err = f.D.ExecuteRemap(newOwner, f.Cfg.Model)
	}
	if err != nil {
		var re *par.RemapError
		if errors.As(err, &re) {
			switch {
			case re.Failure == par.FailCrash:
				// Rank death: restore the cycle checkpoint and remap the
				// dead ranks' elements onto the survivors. The run
				// continues on fewer processors.
				if rerr := f.recoverCrash(&rep, re); rerr != nil {
					return rep, rerr
				}
				return rep, nil
			case re.Failure == par.FailTimeout:
				// A hung worker blew the stage deadline: the worker pool
				// is torn mid-stage and there is no deterministic state to
				// continue from. Surface the typed error.
				return rep, err
			case re.RolledBack:
				// Graceful degradation: the remap exhausted its recovery
				// budget and restored the pre-balance ownership, so the cycle
				// continues on the old partition. The new partitioning is
				// discarded exactly like a cost-rejected one — no remap
				// charge, the imbalance stays — and the failure is reported
				// in the outcome, not as an error.
				rep.Accepted = false
				rep.ImbalanceAfter = rep.ImbalanceBefore
				rep.FaultDetail = re.Error()
				f.rollbackStreak++
				rep.Outcome = OutcomeRolledBack
				if f.rollbackStreak >= DegradedStreak {
					rep.Outcome = OutcomeDegraded
				}
				traceRollback(f.Cfg.Trace, rep.Outcome, rep.FaultDetail)
				return rep, nil
			}
		}
		return rep, err
	}
	f.rollbackStreak = 0
	if res.Retries > 0 || res.WindowRetries > 0 {
		rep.Outcome = OutcomeRetriedCommitted
	}
	traceRemapExec(f.Cfg.Trace, "remap.exec", &res)
	rep.Remap = res
	rep.RemapPeakWords = res.PeakWords
	rep.RemapSetups = res.Setups
	rep.RemapSetupTime = res.SetupTime
	return rep, nil
}

// compactOwners returns the owner array mapped into the compacted
// survivor index space: alive[i] → i, dead ranks → −1 (no similarity
// credit — see remap.Build). With every rank alive it returns the
// owners unchanged.
func (f *Framework) compactOwners(alive []int32) []int32 {
	oldProc := f.D.Owners()
	if len(alive) == f.Cfg.P {
		return oldProc
	}
	compact := make([]int32, f.Cfg.P)
	for i := range compact {
		compact[i] = -1
	}
	for i, r := range alive {
		compact[r] = int32(i)
	}
	for v, o := range oldProc {
		oldProc[v] = compact[o]
	}
	return oldProc
}

// recoverCrash repairs a FailCrash rollback: restore the audited cycle
// checkpoint, mark the dead ranks, and remap their elements onto the
// survivors using the balancer's own machinery — the repartitioner
// produces the survivor partition, the mapper minimizes movement
// relative to the surviving owners (crashed-owned vertices carry no
// similarity, so they move wherever they land), and the ordinary bulk
// remap executor moves the records with its machine-model charges
// intact (par.ExecuteRemapRecovery). Recovery itself runs fault-free: it
// is the repair path, and re-drawing fates inside it could cascade
// forever. The crash set, the survivor plan, and the executed ownership
// are all pure functions of (plan, cycle, survivors), so the recovered
// state is byte-identical at any worker count and across repeat runs.
func (f *Framework) recoverCrash(rep *BalanceReport, re *par.RemapError) error {
	rep.Accepted = false
	rep.Outcome = OutcomeRecovered
	rep.FaultDetail = re.Error()
	rep.CrashedRanks = append([]int(nil), re.Crashed...)
	traceCrash(f.Cfg.Trace, re.Crashed)
	// The executor already rolled its transaction back; the checkpoint
	// restore is the audited path, and also recovers the outcome streak
	// captured before the pass started.
	if f.ck != nil {
		if st, ok := f.ck.Restore(); ok {
			f.D.SetOwners(st.Owners)
			f.rollbackStreak = st.Streak
			traceCkptRestore(f.Cfg.Trace, st.Cycle)
		}
	}
	f.D.MarkDead(re.Crashed)
	alive := f.D.Alive()
	s := len(alive)
	if s < 1 {
		return fmt.Errorf("core: no surviving ranks after crash of %v", re.Crashed)
	}
	rep.Alive = s

	newPart, _ := f.repartition(s * f.Cfg.F)
	sim := remap.Build(f.compactOwners(alive), newPart, f.G.Wremap, s, f.Cfg.F)
	var mp remap.Mapping
	if f.Cfg.Mapper == MapperOptimal {
		mp, _ = sim.Optimal()
	} else {
		mp, _ = sim.Heuristic()
	}
	if err := sim.Validate(mp); err != nil {
		return err
	}
	newOwner := make([]int32, len(newPart))
	for v, p := range newPart {
		newOwner[v] = alive[mp[p]]
	}
	res, err := f.D.ExecuteRemapRecovery(newOwner, f.Cfg.Model)
	if err != nil {
		return fmt.Errorf("core: survivor recovery after crash of %v failed: %w", re.Crashed, err)
	}
	traceRemapExec(f.Cfg.Trace, "remap.recovery", &res)
	rep.Recovery = res
	f.rollbackStreak = 0

	// Report the post-recovery balance over the survivors.
	loads := f.aliveLoads(alive)
	rep.WmaxNew = slices.Max(loads)
	rep.ImbalanceAfter = par.ImbalanceFactor(loads)
	return nil
}

// redistCost is the acceptance rule's wire-redistribution term under the
// configured exchange schedule. Flat keeps the paper's C·M·Tlat + N·Tsetup
// exactly. Aggregated caps the setup term at one combined message per
// source: C·M·Tlat + min(N, P)·Tsetup. Hierarchical moves the payload
// three times — gather and scatter at the cheap intra-node rates, the
// inter-node hop at the interconnect rate — and caps the setups at two
// intra-node messages per source/destination plus one inter-node message
// per communicating node pair. The predictions deliberately mirror how
// machine.ChargeFlows bills the executed remap, so the decision and the
// execution can't price the same schedule differently.
func redistCost(c remap.CostModel, mdl machine.Model, x machine.Exchange, p int, moved int64, sets int) float64 {
	words := float64(moved) * float64(c.M)
	switch x {
	case machine.ExchangeAggregated:
		return words*c.Tlat + float64(min(sets, p))*c.Tsetup
	case machine.ExchangeHierarchical:
		t := mdl.Topo
		nodes := t.Nodes(p)
		interPairs := min(sets, nodes*(nodes-1))
		return words*c.Tlat + 2*words*t.IntraTlat +
			2*float64(min(sets, p))*t.IntraTsetup + float64(interPairs)*c.Tsetup
	default:
		return c.RedistCost(moved, sets)
	}
}

// CycleReport records one full solution/adaption cycle.
type CycleReport struct {
	// SolverTime is the modeled time of the Config.SolverIters solver
	// iterations preceding adaption under the pre-adaption loads — the
	// same iteration count the proxy solver actually runs, and the window
	// the balance pipeline may hide behind when Config.Overlap is on.
	SolverTime float64
	// Refine holds the adaption statistics.
	Refine adapt.RefineStats
	// AdaptTime is the parallel adaption timing breakdown.
	AdaptTime par.AdaptTimings
	// Balance is the load-balancing pipeline report.
	Balance BalanceReport
	// Outcome mirrors Balance.Outcome — the cycle's conclusion under the
	// fault plan, surfaced at the top level for drivers.
	Outcome BalanceOutcome
}

// Cycle executes one pass of the paper's Fig. 1 loop: flow solution, edge
// marking via the supplied function, parallel mesh adaption, solution
// transfer, and the balance pipeline. With Config.Overlap on, the balance
// pipeline's CPU-side critical path is modeled as running concurrently
// with the solver iterations, and the acceptance rule charges only the
// exposed remainder.
func (f *Framework) Cycle(mark func(*adapt.Adaptor)) (CycleReport, error) {
	var rep CycleReport
	// Scope this cycle's fault keys: the adaption exchanges and the remap
	// payload both draw from the cycle's own schedule.
	f.D.FaultCycle = f.cycles
	traceCycleBegin(f.Cfg.Trace, f.cycles)
	f.cycles++
	loads := f.Loads()
	rep.SolverTime = f.Cfg.Cost.SolverTimeIters(slices.Max(loads), f.Cfg.SolverIters)
	if f.S != nil {
		// The proxy solve that produces the error field, running exactly
		// the iterations SolverTime modeled (one knob, see Config).
		f.S.Iterate(f.Cfg.SolverIters)
	}
	traceSolver(f.Cfg.Trace, rep.SolverTime, f.Cfg.SolverIters)
	mark(f.A)
	rep.Refine, rep.AdaptTime = f.D.ParallelRefine(f.A, f.Cfg.Model)
	if f.S != nil {
		f.S.SyncAfterAdaption()
	}
	traceAdapt(f.Cfg.Trace, rep.AdaptTime)
	bal, err := f.balance(rep.SolverTime)
	if err != nil {
		traceCycleError(f.Cfg.Trace, err)
		return rep, err
	}
	bal.AdaptOps = rep.AdaptTime.Ops.Total
	bal.AdaptCritOps = rep.AdaptTime.Ops.Crit
	bal.AdaptExecTime = rep.AdaptTime.Ops.Time(f.Cfg.Model)
	rep.Balance = bal
	rep.Outcome = bal.Outcome
	traceCycleEnd(f.Cfg.Trace, rep.Outcome)
	recordCycleMetrics(f.Cfg.Metrics, f, &rep)
	return rep, nil
}

// SolverImprovement returns the Fig. 12 quantity: the ratio of flow-solver
// execution time on the unbalanced distribution to that on the balanced
// one, together with the theoretical bound 8P/(P+7) for a single
// isotropically refined processor.
func SolverImprovement(wmaxUnbalanced, wmaxBalanced int64) float64 {
	if wmaxBalanced == 0 {
		return 1
	}
	return float64(wmaxUnbalanced) / float64(wmaxBalanced)
}

// ImprovementBound returns the paper's maximum possible improvement for P
// processors when one processor's N elements are all isotropically
// refined: 8P/(P+7).
func ImprovementBound(p int) float64 {
	return 8 * float64(p) / (float64(p) + 7)
}
