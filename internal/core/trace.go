package core

import (
	"plum/internal/machine"
	"plum/internal/obs"
	"plum/internal/par"
	"plum/internal/partition"
)

// The balance pipeline's trace and metrics emission. Every helper takes
// the trace/registry first and checks it for nil before touching its
// arguments, so a disabled observer costs one pointer compare per call
// site and — because the obs.Attr slices are built after the check —
// zero allocations on the cycle hot path (TestTraceDisabledIsFree pins
// this with testing.AllocsPerRun).
//
// Recorded quantities are exclusively worker-invariant: op totals,
// modeled phase times from the canonical flow layout, moved counts,
// imbalances, outcomes. Critical-path figures (Ops.Crit and the
// Crit-priced BalanceReport times such as RepartitionTime) legitimately
// depend on the worker knob and NEVER appear in a span or metric —
// span durations price op totals serially via serialOpTime instead —
// which is what keeps exports byte-identical at any worker count
// (TestTraceWorkerParity).

// serialOpTime prices an op accounting at the machine rates as if run
// serially: the compute share at CompOp, the memory-bound share at
// MemOp. Unlike the Crit-based wall-clock estimates, this figure is a
// pure function of the work done, not of how many workers did it.
func serialOpTime(mdl machine.Model, total, memTotal int64) float64 {
	return float64(total-memTotal)*mdl.CompOp + float64(memTotal)*mdl.MemOp
}

// traceCycleBegin opens the cycle's framework span at the cursor.
func traceCycleBegin(tr *obs.Trace, cycle int) {
	if tr == nil {
		return
	}
	tr.Begin("cycle", obs.Int("cycle", int64(cycle)))
}

// traceCycleEnd closes the cycle span with its outcome.
func traceCycleEnd(tr *obs.Trace, outcome BalanceOutcome) {
	if tr == nil {
		return
	}
	tr.End(obs.String("outcome", outcome.String()))
}

// traceSolver records the modeled solver iterations and advances the
// cursor past them.
func traceSolver(tr *obs.Trace, dur float64, iters int) {
	if tr == nil {
		return
	}
	tr.Span(obs.FrameworkRank, "solver", tr.Now(), dur, obs.Int("iters", int64(iters)))
	tr.Advance(dur)
}

// traceAdapt records the adaption pass: phase children laid end to end
// under an enclosing span of the pass's modeled total, then advances
// the cursor. All AdaptTimings phase times are worker-invariant (the
// adapt parity tests mask only Ops.Crit/MemCrit).
func traceAdapt(tr *obs.Trace, tm par.AdaptTimings) {
	if tr == nil {
		return
	}
	t0 := tr.Now()
	tr.Span(obs.FrameworkRank, "adapt", t0, tm.Total,
		obs.Int("visits", tm.Visits), obs.Int("marked", tm.Marked),
		obs.Int("ops", tm.Ops.Total), obs.Int("retries", tm.Retries), obs.Int("backoff", tm.Backoff))
	tr.Span(obs.FrameworkRank, "adapt.target", t0, tm.Target)
	tr.Span(obs.FrameworkRank, "adapt.propagate", t0+tm.Target, tm.Propagate,
		obs.Int("rounds", int64(tm.CommRounds)), obs.Int("msgs", tm.Msgs), obs.Int("words", tm.Words))
	tr.Span(obs.FrameworkRank, "adapt.execute", t0+tm.Target+tm.Propagate, tm.Execute)
	tr.Span(obs.FrameworkRank, "adapt.classify", t0+tm.Target+tm.Propagate+tm.Execute, tm.Classify)
	tr.Advance(tm.Total)
}

// traceCycleError closes the cycle span after a hard pipeline error
// (timeout, structural failure) so the span stack stays balanced.
func traceCycleError(tr *obs.Trace, err error) {
	if tr == nil {
		return
	}
	tr.Event("error", "cycle.error", obs.String("err", err.Error()))
	tr.End(obs.String("outcome", "error"))
}

// traceCkptCapture records a cycle-checkpoint capture.
func traceCkptCapture(tr *obs.Trace, cycle int) {
	if tr == nil {
		return
	}
	tr.Event("info", "ckpt.capture", obs.Int("cycle", int64(cycle)))
}

// traceCkptRestore records a cycle-checkpoint restore during crash
// recovery.
func traceCkptRestore(tr *obs.Trace, cycle int) {
	if tr == nil {
		return
	}
	tr.Event("info", "ckpt.restore", obs.Int("cycle", int64(cycle)))
}

// traceEvaluate records the preliminary-evaluation verdict.
func traceEvaluate(tr *obs.Trace, imbalance float64, repartition bool) {
	if tr == nil {
		return
	}
	tr.Event("info", "balance.evaluate",
		obs.Float("imbalance", imbalance), obs.Bool("repartition", repartition))
}

// traceRepartition records the repartitioning stage, priced serially
// from its op totals, and advances the cursor.
func traceRepartition(tr *obs.Trace, mdl machine.Model, ops partition.Ops, parts int) {
	if tr == nil {
		return
	}
	dur := serialOpTime(mdl, ops.Total, ops.MemTotal)
	tr.Span(obs.FrameworkRank, "repartition", tr.Now(), dur,
		obs.Int("parts", int64(parts)), obs.Int("ops", ops.Total), obs.Int("mem_ops", ops.MemTotal))
	tr.Advance(dur)
}

// traceReassign records the processor-reassignment stage (the mapper's
// similarity scans run serially, so ReassignTime is already invariant)
// and advances the cursor.
func traceReassign(tr *obs.Trace, ops int64, dur float64, objective int64) {
	if tr == nil {
		return
	}
	tr.Span(obs.FrameworkRank, "reassign", tr.Now(), dur,
		obs.Int("ops", ops), obs.Int("objective", objective))
	tr.Advance(dur)
}

// traceDecision records the gain/cost verdict. The modeled cost side is
// Crit-priced and worker-dependent, so only the worker-invariant inputs
// (gain, movement quantities) and the verdict itself are recorded.
func traceDecision(tr *obs.Trace, gain float64, moved int64, sets int, accepted bool) {
	if tr == nil {
		return
	}
	tr.Event("info", "remap.decide",
		obs.Float("gain", gain), obs.Int("moved", moved), obs.Int("sets", int64(sets)),
		obs.Bool("accepted", accepted))
}

// traceRemapExec records the executed remap's enclosing span with its
// phase children (all from the canonical flow layout, byte-identical at
// every worker count) and advances the cursor past the remap. The
// per-rank send/rebuild spans were already emitted against the same
// base cursor by par's accounting.
func traceRemapExec(tr *obs.Trace, stage string, res *par.RemapResult) {
	if tr == nil {
		return
	}
	t0 := tr.Now()
	tr.Span(obs.FrameworkRank, stage, t0, res.Total,
		obs.Int("moved", res.Moved), obs.Int("sets", int64(res.Sets)),
		obs.Int("words", res.WordsMoved), obs.Int("setups", res.Setups),
		obs.Int("retries", res.Retries), obs.Int("window_retries", int64(res.WindowRetries)))
	tr.Span(obs.FrameworkRank, stage+".pack", t0, res.PackTime)
	tr.Span(obs.FrameworkRank, stage+".comm", t0+res.PackTime, res.CommTime,
		obs.Float("setup_s", res.SetupTime))
	tr.Span(obs.FrameworkRank, stage+".rebuild", t0+res.PackTime+res.CommTime, res.RebuildTime)
	tr.Advance(res.Total)
}

// traceRollback records a rolled-back (or degraded) balance pass.
func traceRollback(tr *obs.Trace, outcome BalanceOutcome, detail string) {
	if tr == nil {
		return
	}
	level := "warn"
	if outcome == OutcomeDegraded {
		level = "error"
	}
	tr.Event(level, "balance.rollback",
		obs.String("outcome", outcome.String()), obs.String("detail", detail))
}

// traceCrash records the rank deaths that aborted a remap.
func traceCrash(tr *obs.Trace, crashed []int) {
	if tr == nil {
		return
	}
	for _, r := range crashed {
		tr.Event("error", "rank.crash", obs.Int("rank", int64(r)))
	}
}

// recordCycleMetrics accumulates one completed cycle's counters and
// gauges. Every figure is worker-invariant, so metrics dumps are
// byte-identical at any worker count.
func recordCycleMetrics(reg *obs.Registry, f *Framework, rep *CycleReport) {
	if reg == nil {
		return
	}
	b := &rep.Balance
	reg.Inc("plum_cycles_total")
	reg.Inc(`plum_outcomes_total{outcome="` + rep.Outcome.String() + `"}`)
	reg.Add("plum_modeled_seconds_total{stage=\"solver\"}", rep.SolverTime)
	reg.Add("plum_modeled_seconds_total{stage=\"adapt\"}", rep.AdaptTime.Total)
	reg.Add("plum_ops_total{stage=\"adapt\"}", float64(rep.AdaptTime.Ops.Total))
	reg.Add("plum_adapt_retries_total", float64(rep.AdaptTime.Retries))
	reg.Add("plum_adapt_backoff_total", float64(rep.AdaptTime.Backoff))
	if b.Repartitioned {
		reg.Inc("plum_repartitions_total")
		reg.Add("plum_ops_total{stage=\"repartition\"}", float64(b.RepartitionOps))
		reg.Add("plum_ops_total{stage=\"reassign\"}", float64(b.ReassignOps))
		reg.Add("plum_ops_total{stage=\"remap\"}", float64(b.RemapOps))
		if b.Accepted {
			reg.Inc("plum_remaps_accepted_total")
			reg.Add("plum_elements_moved_total", float64(b.Remap.Moved))
			reg.Add("plum_element_sets_total", float64(b.Remap.Sets))
			reg.Add("plum_words_moved_total", float64(b.Remap.WordsMoved))
			reg.Add("plum_remap_setups_total", float64(b.Remap.Setups))
			reg.Add("plum_modeled_seconds_total{stage=\"remap\"}", b.Remap.Total)
		} else {
			reg.Inc("plum_remaps_rejected_total")
		}
	}
	reg.Add("plum_msg_retries_total", float64(b.Remap.Retries))
	reg.Add("plum_retry_words_total", float64(b.Remap.RetryWords))
	reg.Add("plum_window_retries_total", float64(b.Remap.WindowRetries))
	switch rep.Outcome {
	case OutcomeRolledBack, OutcomeDegraded:
		reg.Inc("plum_rollbacks_total")
	case OutcomeRecovered:
		reg.Inc("plum_recoveries_total")
		reg.Add("plum_crashed_ranks_total", float64(len(b.CrashedRanks)))
		reg.Add("plum_elements_moved_total", float64(b.Recovery.Moved))
		reg.Add("plum_words_moved_total", float64(b.Recovery.WordsMoved))
	}
	reg.Set("plum_imbalance_before", b.ImbalanceBefore)
	reg.Set("plum_imbalance_after", b.ImbalanceAfter)
	reg.Set("plum_alive_ranks", float64(b.Alive))
	reg.Set("plum_mesh_elements", float64(f.M.NumActiveElems()))
	st := f.CheckpointStats()
	reg.Set("plum_checkpoint_captures", float64(st.Captures))
	reg.Set("plum_checkpoint_restores", float64(st.Restores))
	reg.Set("plum_checkpoint_full_words", float64(st.FullWords))
	reg.Set("plum_checkpoint_delta_words", float64(st.DeltaWords))
}

// RegisterHelp attaches the framework's metric HELP strings to reg, for
// drivers that export Prometheus dumps.
func RegisterHelp(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("plum_cycles_total", "Completed solution/adaption cycles.")
	reg.SetHelp("plum_outcomes_total", "Balance-pass conclusions by outcome.")
	reg.SetHelp("plum_modeled_seconds_total", "Modeled machine time by pipeline stage.")
	reg.SetHelp("plum_ops_total", "Abstract op totals by pipeline stage.")
	reg.SetHelp("plum_repartitions_total", "Balance passes that exceeded the imbalance threshold.")
	reg.SetHelp("plum_remaps_accepted_total", "Remaps executed after the gain/cost decision.")
	reg.SetHelp("plum_remaps_rejected_total", "Repartitions discarded by the gain/cost decision.")
	reg.SetHelp("plum_elements_moved_total", "Elements migrated by executed remaps (incl. recoveries).")
	reg.SetHelp("plum_element_sets_total", "Element sets migrated by executed remaps.")
	reg.SetHelp("plum_words_moved_total", "Modeled words moved by executed remaps (incl. recoveries).")
	reg.SetHelp("plum_remap_setups_total", "Message setups of executed remap exchanges.")
	reg.SetHelp("plum_msg_retries_total", "Remap transport frames resent recovering injected faults.")
	reg.SetHelp("plum_retry_words_total", "Payload words of resent remap frames.")
	reg.SetHelp("plum_window_retries_total", "Remap window re-executions.")
	reg.SetHelp("plum_adapt_retries_total", "Modeled adaption-exchange retries.")
	reg.SetHelp("plum_adapt_backoff_total", "Modeled adaption-exchange backoff units.")
	reg.SetHelp("plum_rollbacks_total", "Balance passes rolled back after exhausted retries.")
	reg.SetHelp("plum_recoveries_total", "Crash recoveries completed onto survivors.")
	reg.SetHelp("plum_crashed_ranks_total", "Ranks lost to injected crashes.")
	reg.SetHelp("plum_imbalance_before", "Wmax/Wavg before the last balance pass.")
	reg.SetHelp("plum_imbalance_after", "Wmax/Wavg after the last balance pass.")
	reg.SetHelp("plum_alive_ranks", "Surviving processor count.")
	reg.SetHelp("plum_mesh_elements", "Active mesh elements.")
	reg.SetHelp("plum_checkpoint_captures", "Cycle-checkpoint captures.")
	reg.SetHelp("plum_checkpoint_restores", "Cycle-checkpoint restores.")
	reg.SetHelp("plum_checkpoint_full_words", "Checkpoint words written by whole-slice clones.")
	reg.SetHelp("plum_checkpoint_delta_words", "Checkpoint words written by delta patches.")
}
