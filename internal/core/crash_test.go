package core

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// runCrashScenario is runFaultScenario plus the framework itself, so
// callers can inspect dead ranks and survivor loads after the run.
func runCrashScenario(t *testing.T, cfg Config, cycles int) ([]CycleReport, []int32, *Framework) {
	t.Helper()
	f, err := New(meshgen.SmallBox(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	radius := 0.7
	var reps []CycleReport
	for i := 0; i < cycles; i++ {
		r := radius
		rep, err := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
		})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		radius *= 0.8
	}
	return reps, f.D.Owners(), f
}

// crashTrace projects the crash-relevant observables of one cycle — the
// fields that must be worker-invariant under a seeded crash plan.
// (RemapResult Ops.Crit is legitimately worker-dependent, so traces pick
// fields instead of embedding whole reports.)
type crashTrace struct {
	Outcome        BalanceOutcome
	Crashed        []int
	Alive          int
	RecoveredMoved int64
	RecoveredWords int64
	ImbAfter       float64
}

func crashTraceOf(rep CycleReport) crashTrace {
	return crashTrace{
		Outcome:        rep.Outcome,
		Crashed:        rep.Balance.CrashedRanks,
		Alive:          rep.Balance.Alive,
		RecoveredMoved: rep.Balance.Recovery.Moved,
		RecoveredWords: rep.Balance.Recovery.WordsMoved,
		ImbAfter:       rep.Balance.ImbalanceAfter,
	}
}

// verifySurvivorOwnership checks the recovery postcondition: every
// element is owned by a surviving rank and the total computational
// weight over the survivors equals the mesh's total weight.
func verifySurvivorOwnership(t *testing.T, f *Framework, label string) {
	t.Helper()
	dead := make(map[int32]bool)
	for _, r := range f.D.DeadRanks() {
		dead[int32(r)] = true
	}
	for v, o := range f.D.Owners() {
		if o < 0 || int(o) >= f.Cfg.P {
			t.Fatalf("%s: vertex %d owned by out-of-range rank %d", label, v, o)
		}
		if dead[o] {
			t.Fatalf("%s: vertex %d still owned by dead rank %d", label, v, o)
		}
	}
	var want, got int64
	for _, w := range f.G.Wcomp {
		want += w
	}
	for _, l := range f.aliveLoads(f.D.Alive()) {
		got += l
	}
	if got != want {
		t.Fatalf("%s: weight not conserved: survivors hold %d of %d", label, got, want)
	}
}

// TestCrashZeroRateParity is the byte-parity half of the acceptance
// criterion: a present-but-zero-rate crash plan must leave every
// CycleReport — all fields, floats included — and the final ownership
// identical to the nil-plan run, on both the bulk and streaming
// pipelines.
func TestCrashZeroRateParity(t *testing.T) {
	const cycles = 3
	for _, overlap := range []bool{false, true} {
		cfg := DefaultConfig(4)
		cfg.Workers = 2
		cfg.Overlap = overlap
		refReps, refOwners := runFaultScenario(t, cfg, cycles)

		cfg.Faults = &fault.Plan{Seed: 5, Rate: 0, Kinds: []fault.Kind{fault.Crash}}
		cfg.Retry = fault.Budget(2)
		reps, owners := runFaultScenario(t, cfg, cycles)
		if !reflect.DeepEqual(reps, refReps) {
			t.Errorf("overlap=%v: zero-rate crash plan changed the reports:\n got %+v\nwant %+v",
				overlap, reps, refReps)
		}
		if !reflect.DeepEqual(owners, refOwners) {
			t.Errorf("overlap=%v: zero-rate crash plan changed the ownership", overlap)
		}
	}
}

// TestCycleCrashRecovery drives crash-seed sweeps through the full
// pipeline: a cycle that loses a rank must complete with
// OutcomeRecovered, every element survivor-owned and the weight
// conserved, with ownership and crash traces byte-identical at workers
// 1, 2, 4, and 8 and across repeat runs, on both executors.
func TestCycleCrashRecovery(t *testing.T) {
	const cycles = 4
	for _, overlap := range []bool{false, true} {
		for _, seed := range []int64{1, 2} {
			cfg := DefaultConfig(8)
			cfg.Overlap = overlap
			cfg.Faults = &fault.Plan{Seed: seed, Rate: 0.1, Kinds: []fault.Kind{fault.Crash}}

			var refOwners []int32
			var refTraces []crashTrace
			var refDead []int
			for _, w := range []int{1, 2, 4, 8} {
				c := cfg
				c.Workers = w
				reps, owners, f := runCrashScenario(t, c, cycles)
				recovered := 0
				var traces []crashTrace
				for i, rep := range reps {
					if rep.Outcome == OutcomeRecovered {
						recovered++
						if len(rep.Balance.CrashedRanks) == 0 {
							t.Fatalf("overlap=%v seed=%d cycle %d: recovered with no crashed ranks", overlap, seed, i)
						}
						if rep.Balance.Recovery.Moved == 0 {
							t.Errorf("overlap=%v seed=%d cycle %d: recovery moved nothing", overlap, seed, i)
						}
					}
					traces = append(traces, crashTraceOf(rep))
				}
				if recovered == 0 {
					t.Fatalf("overlap=%v seed=%d workers=%d: no cycle recovered from a crash", overlap, seed, w)
				}
				verifySurvivorOwnership(t, f, "post-run")
				if refOwners == nil {
					refOwners, refTraces, refDead = owners, traces, f.D.DeadRanks()
					continue
				}
				if !reflect.DeepEqual(owners, refOwners) {
					t.Errorf("overlap=%v seed=%d workers=%d: post-recovery ownership not worker-invariant", overlap, seed, w)
				}
				if !reflect.DeepEqual(traces, refTraces) {
					t.Errorf("overlap=%v seed=%d workers=%d: crash trace not worker-invariant:\n got %+v\nwant %+v",
						overlap, seed, w, traces, refTraces)
				}
				if !reflect.DeepEqual(f.D.DeadRanks(), refDead) {
					t.Errorf("overlap=%v seed=%d workers=%d: dead set not worker-invariant", overlap, seed, w)
				}
			}

			// Full byte determinism of a repeated identical run.
			r1, o1, _ := runCrashScenario(t, cfg, cycles)
			r2, o2, _ := runCrashScenario(t, cfg, cycles)
			if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(o1, o2) {
				t.Errorf("overlap=%v seed=%d: two identical crash runs differ", overlap, seed)
			}
		}
	}
}

// TestCycleCrashWithMessageFaults mixes rank deaths with message faults:
// the run must still converge — every cycle committed, retried,
// or recovered — with the survivor postcondition intact, and the crash
// draws must not perturb which message faults fire (the crash kind is
// salted out of the message-fate draw).
func TestCycleCrashWithMessageFaults(t *testing.T) {
	const cycles = 3
	cfg := DefaultConfig(8)
	cfg.Workers = 2
	cfg.Overlap = true
	cfg.Faults = &fault.Plan{Seed: 15, Rate: 0.15, Kinds: []fault.Kind{fault.Crash, fault.Drop}}
	cfg.Retry = fault.Budget(8)
	reps, _, f := runCrashScenario(t, cfg, cycles)
	for i, rep := range reps {
		switch rep.Outcome {
		case OutcomeCommitted, OutcomeRetriedCommitted, OutcomeRecovered:
		default:
			t.Fatalf("cycle %d: outcome %v (%s)", i, rep.Outcome, rep.Balance.FaultDetail)
		}
	}
	verifySurvivorOwnership(t, f, "mixed-kind run")
}

// TestCheckpointAutoEnabledAndCounted pins the checkpoint wiring: a
// crash-capable plan force-enables Config.Checkpoint, each balance pass
// captures once, and the stats are visible through CheckpointStats.
func TestCheckpointAutoEnabledAndCounted(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Faults = &fault.Plan{Seed: 3, Rate: 0.05, Kinds: []fault.Kind{fault.Crash}}
	reps, _, f := runCrashScenario(t, cfg, 2)
	if f.ck == nil {
		t.Fatal("crash plan did not auto-enable the cycle checkpoint")
	}
	st := f.CheckpointStats()
	if st.Captures != len(reps) {
		t.Errorf("captures=%d, want one per cycle (%d)", st.Captures, len(reps))
	}
	if st.FullWords == 0 {
		t.Error("no words ever captured")
	}

	// Checkpoint alone (no fault plan) is a valid configuration too.
	cfg2 := DefaultConfig(4)
	cfg2.Checkpoint = true
	_, _, f2 := runCrashScenario(t, cfg2, 2)
	if f2.CheckpointStats().Captures != 2 {
		t.Errorf("standalone checkpoint: captures=%d, want 2", f2.CheckpointStats().Captures)
	}
}
