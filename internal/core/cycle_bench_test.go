package core

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/partition"
)

// cycleBenchFW builds the Box(12,12,12) cycle fixture: a pre-refined
// corner so the cycle's adaption triggers an accepted remap, the Hilbert
// repartitioner on the incremental path.
func cycleBenchFW(b *testing.B, overlap bool) *Framework {
	b.Helper()
	m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
	cfg := DefaultConfig(8)
	cfg.Method = partition.MethodHilbertSFC
	cfg.Overlap = overlap
	f, err := New(m, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	f.A.Refine()
	return f
}

func benchCycle(b *testing.B, overlap bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := cycleBenchFW(b, overlap) // the cycle mutates the mesh: fresh fixture each pass
		b.StartTimer()
		rep, err := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Balance.Accepted {
			b.Fatal("cycle did not accept the remap")
		}
	}
}

// BenchmarkCycleBulk runs the full Fig. 1 cycle with the strict barrier
// chain and the bulk-synchronous remap executor.
func BenchmarkCycleBulk(b *testing.B) { benchCycle(b, false) }

// BenchmarkCycleOverlap runs the same cycle with Config.Overlap on: the
// acceptance rule charges only the exposed cost and the remap streams
// through the windowed executor.
func BenchmarkCycleOverlap(b *testing.B) { benchCycle(b, true) }
