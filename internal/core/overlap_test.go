package core

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/par"
	"plum/internal/partition"
)

// overlapFW builds a framework on a mesh big enough to clear the remap
// scatter's serial cutoff, so the streaming executor exercises real
// multi-window plans.
func overlapFW(t *testing.T, workers int, overlap bool) *Framework {
	t.Helper()
	m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
	cfg := DefaultConfig(8)
	cfg.Method = partition.MethodHilbertSFC
	cfg.Workers = workers
	cfg.Overlap = overlap
	// The adaptive default refiner intentionally switches backends as the
	// effective worker count crosses 1; a named backend carries the
	// cross-worker-count invariance this file asserts.
	cfg.Refiner = "bandfm"
	f, err := New(m, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-refine a corner so the cycle's adaption pushes the imbalance
	// over the threshold and the remap is worth executing.
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	f.A.Refine()
	return f
}

func runOverlapCycle(t *testing.T, f *Framework) CycleReport {
	t.Helper()
	rep, err := f.Cycle(func(a *adapt.Adaptor) {
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Balance.Accepted {
		t.Fatalf("fixture did not accept the remap: gain=%g cost=%g",
			rep.Balance.Gain, rep.Balance.Cost)
	}
	return rep
}

// TestCycleOverlapParity is the determinism contract of the overlapped
// cycle: at every worker count the Overlap=true cycle must produce the
// byte-identical CycleReport and ownership to the strict-barrier baseline,
// except for the fields overlap is *supposed* to change — the exposed cost,
// the hidden time, and the streaming executor's payload peak.
func TestCycleOverlapParity(t *testing.T) {
	var refOwners []int32
	for _, w := range []int{1, 2, 4, 8} {
		off := overlapFW(t, w, false)
		on := overlapFW(t, w, true)
		repOff := runOverlapCycle(t, off)
		repOn := runOverlapCycle(t, on)
		bOff, bOn := repOff.Balance, repOn.Balance

		// The serial baseline charges the full cost and hides nothing.
		if bOff.Cost != bOff.CostFull || bOff.OverlapTime != 0 {
			t.Errorf("workers=%d: Overlap off must charge the full cost: cost=%g full=%g hidden=%g",
				w, bOff.Cost, bOff.CostFull, bOff.OverlapTime)
		}
		// Overlap hides part of the pipeline behind the solve, never more
		// than the solve itself, and charges only the exposed remainder.
		if bOn.OverlapTime <= 0 || bOn.OverlapTime > repOn.SolverTime {
			t.Errorf("workers=%d: OverlapTime %g outside (0, SolverTime=%g]",
				w, bOn.OverlapTime, repOn.SolverTime)
		}
		if bOn.CostFull != bOff.Cost {
			t.Errorf("workers=%d: overlapped CostFull %g != serial Cost %g", w, bOn.CostFull, bOff.Cost)
		}
		if bOn.Cost != bOn.CostFull-bOn.OverlapTime {
			t.Errorf("workers=%d: exposed cost %g != full %g - hidden %g",
				w, bOn.Cost, bOn.CostFull, bOn.OverlapTime)
		}
		// The streaming executor bounds the payload footprint strictly
		// below the bulk path's whole-buffer total.
		total := bOn.Remap.Moved * par.RecordWords
		if bOn.RemapPeakWords <= 0 || bOn.RemapPeakWords >= total {
			t.Errorf("workers=%d: streaming peak %d not strictly below total %d",
				w, bOn.RemapPeakWords, total)
		}
		if bOff.RemapPeakWords != total {
			t.Errorf("workers=%d: bulk peak %d != total payload %d", w, bOff.RemapPeakWords, total)
		}

		// Everything else — partitions, owners, modeled times, op counts,
		// the whole remap result — must be byte-identical.
		repOn.Balance.OverlapTime = bOff.OverlapTime
		repOn.Balance.Cost = bOff.Cost
		repOn.Balance.RemapPeakWords = bOff.RemapPeakWords
		repOn.Balance.Remap.PeakWords = bOff.Remap.PeakWords
		if !reflect.DeepEqual(repOn, repOff) {
			t.Errorf("workers=%d: overlapped cycle diverges beyond the overlap fields:\n on  %+v\n off %+v",
				w, repOn, repOff)
		}
		owners := on.D.Owners()
		if !reflect.DeepEqual(owners, off.D.Owners()) {
			t.Errorf("workers=%d: overlapped ownership diverges from serial", w)
		}
		if refOwners == nil {
			refOwners = owners
		} else if !reflect.DeepEqual(owners, refOwners) {
			t.Errorf("workers=%d: ownership diverges from workers=1", w)
		}
	}
}

// TestStandaloneBalanceHasNoWindow pins that Balance outside a cycle never
// hides cost even with Overlap on: there is no solve to hide behind.
func TestStandaloneBalanceHasNoWindow(t *testing.T) {
	f := overlapFW(t, 2, true)
	f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	f.A.Refine()
	rep, err := f.Balance()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repartitioned {
		t.Fatal("fixture did not trigger repartitioning")
	}
	if rep.OverlapTime != 0 || rep.Cost != rep.CostFull {
		t.Errorf("standalone Balance hid cost: hidden=%g cost=%g full=%g",
			rep.OverlapTime, rep.Cost, rep.CostFull)
	}
}

// TestSolverItersValidation pins the single-knob contract: New rejects a
// negative count, normalizes zero to the default of 3, and Cycle's modeled
// SolverTime scales with the knob.
func TestSolverItersValidation(t *testing.T) {
	m := meshgen.SmallBox()
	bad := DefaultConfig(2)
	bad.SolverIters = -1
	if _, err := New(m, nil, bad); err == nil {
		t.Error("accepted negative SolverIters")
	}
	zero := DefaultConfig(2)
	zero.SolverIters = 0
	f, err := New(meshgen.SmallBox(), nil, zero)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cfg.SolverIters != 3 {
		t.Errorf("zero SolverIters normalized to %d, want 3", f.Cfg.SolverIters)
	}

	mark := func(a *adapt.Adaptor) {}
	rep3, err := f.Cycle(mark)
	if err != nil {
		t.Fatal(err)
	}
	six := DefaultConfig(2)
	six.SolverIters = 6
	f6, err := New(meshgen.SmallBox(), nil, six)
	if err != nil {
		t.Fatal(err)
	}
	rep6, err := f6.Cycle(mark)
	if err != nil {
		t.Fatal(err)
	}
	if rep6.SolverTime != 2*rep3.SolverTime {
		t.Errorf("SolverTime did not scale with SolverIters: 6 iters %g vs 3 iters %g",
			rep6.SolverTime, rep3.SolverTime)
	}
}
