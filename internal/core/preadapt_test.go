package core

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/solver"
)

func TestPreAdaptGrowsInitialMesh(t *testing.T) {
	// A unit cube (6 tets) is far too small for 8-way partitioning; one
	// pre-adaption level gives 48 root elements.
	m := meshgen.UnitCube()
	cfg := DefaultConfig(8)
	cfg.PreAdapt = 1
	fw, err := New(m, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fw.G.N != 48 {
		t.Fatalf("dual has %d vertices, want 48 (rebased pre-adaption)", fw.G.N)
	}
	// Every element is now a level-0 root: coarsening cannot undo the
	// pre-adaption.
	fw.A.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	fw.A.Coarsen()
	if got := m.NumActiveElems(); got != 48 {
		t.Errorf("coarsening undid the pre-adaption: %d elements", got)
	}
}

func TestPreAdaptCarriesSolution(t *testing.T) {
	m := meshgen.UnitCube()
	sol := solver.New(m, func(p geom.Vec3) float64 { return p.X })
	cfg := DefaultConfig(4)
	cfg.PreAdapt = 2
	if _, err := New(m, sol, cfg); err != nil {
		t.Fatal(err)
	}
	if len(sol.U) != len(m.Verts) {
		t.Fatalf("solution has %d entries for %d vertices", len(sol.U), len(m.Verts))
	}
	// The linear field x must be reproduced exactly by linear
	// interpolation at every vertex.
	for i := range m.Verts {
		if m.Verts[i].Dead {
			continue
		}
		if want := m.Verts[i].Pos.X; abs(sol.U[i]-want) > 1e-12 {
			t.Fatalf("vertex %d: field %g, want %g", i, sol.U[i], want)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestAgglomeratedPartitioning(t *testing.T) {
	m := meshgen.SmallBox()
	cfg := DefaultConfig(4)
	cfg.Agglomerate = 8
	fw, err := New(m, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imb, need := fw.Evaluate()
	if need {
		t.Errorf("agglomerated initial partition unbalanced: %.3f", imb)
	}
	// The pipeline must still work end to end.
	fw.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	fw.A.Refine()
	if _, err := fw.Balance(); err != nil {
		t.Fatal(err)
	}
}
