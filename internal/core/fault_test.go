package core

import (
	"reflect"
	"testing"

	"plum/internal/adapt"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

// runFaultScenario drives a fresh framework through `cycles` cycles of
// shrinking-sphere corner refinement — a workload whose growing corner
// imbalance makes the balance pipeline repartition and remap — and
// returns the reports plus the final ownership.
func runFaultScenario(t *testing.T, cfg Config, cycles int) ([]CycleReport, []int32) {
	t.Helper()
	f, err := New(meshgen.SmallBox(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	radius := 0.7
	var reps []CycleReport
	for i := 0; i < cycles; i++ {
		r := radius
		rep, err := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
		})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		radius *= 0.8
	}
	return reps, f.D.Owners()
}

// faultTrace projects the fault-relevant observables out of one cycle
// report — the fields that must be worker-invariant under a seeded plan.
type cycleFaultTrace struct {
	Outcome                                BalanceOutcome
	Accepted                               bool
	AdaptRetries, AdaptBackoff, AdaptExh   int64
	RemapRetries, RemapRetryWords          int64
	RemapWindowRetries                     int
	ImbalanceBefore, ImbalanceAfter, RTime float64
}

func traceOf(rep CycleReport) cycleFaultTrace {
	return cycleFaultTrace{
		Outcome:            rep.Outcome,
		Accepted:           rep.Balance.Accepted,
		AdaptRetries:       rep.AdaptTime.Retries,
		AdaptBackoff:       rep.AdaptTime.Backoff,
		AdaptExh:           rep.AdaptTime.Exhausted,
		RemapRetries:       rep.Balance.Remap.Retries,
		RemapRetryWords:    rep.Balance.Remap.RetryWords,
		RemapWindowRetries: rep.Balance.Remap.WindowRetries,
		ImbalanceBefore:    rep.Balance.ImbalanceBefore,
		ImbalanceAfter:     rep.Balance.ImbalanceAfter,
		RTime:              rep.Balance.Remap.RetryTime,
	}
}

// TestCycleEmptyFaultPlanParity is the byte-parity acceptance criterion
// at the framework level: with a present-but-empty fault plan every
// CycleReport and the final ownership must be identical — bit for bit,
// modeled floats included — to the nil-plan run, at workers 1, 2, 4, and
// 8, on both the bulk-synchronous and the overlapped streaming pipeline.
func TestCycleEmptyFaultPlanParity(t *testing.T) {
	const cycles = 3
	for _, overlap := range []bool{false, true} {
		for _, w := range []int{1, 2, 4, 8} {
			cfg := DefaultConfig(4)
			cfg.Workers = w
			cfg.Overlap = overlap
			refReps, refOwners := runFaultScenario(t, cfg, cycles)

			cfg.Faults = &fault.Plan{Seed: 31, Rate: 0}
			cfg.Retry = fault.Budget(2)
			reps, owners := runFaultScenario(t, cfg, cycles)
			if !reflect.DeepEqual(reps, refReps) {
				t.Errorf("overlap=%v workers=%d: empty plan changed the reports:\n got %+v\nwant %+v",
					overlap, w, reps, refReps)
			}
			if !reflect.DeepEqual(owners, refOwners) {
				t.Errorf("overlap=%v workers=%d: empty plan changed the ownership", overlap, w)
			}
			for _, rep := range refReps {
				if rep.Outcome != OutcomeCommitted {
					t.Errorf("overlap=%v workers=%d: fault-free cycle reported %v", overlap, w, rep.Outcome)
				}
			}
		}
	}
}

// TestCycleFaultSeedsDeterministic pins the seeded half of the acceptance
// criterion at two fault seeds: with a generous recovery budget every
// cycle converges to the fault-free mesh state (same final ownership,
// same kernel stats), the recovery is visible in the retry trace, the
// trace is identical at workers 1, 2, and 4, and a repeated run is
// byte-identical end to end.
func TestCycleFaultSeedsDeterministic(t *testing.T) {
	const cycles = 3
	base := DefaultConfig(4)
	base.Workers = 2
	base.Overlap = true // streaming remap: windows + commits under faults
	refReps, refOwners := runFaultScenario(t, base, cycles)

	for _, seed := range []int64{7, 99} {
		cfg := base
		cfg.Faults = &fault.Plan{Seed: seed, Rate: 0.2}
		cfg.Retry = fault.Budget(8)

		var first []cycleFaultTrace
		for _, w := range []int{1, 2, 4} {
			c := cfg
			c.Workers = w
			reps, owners := runFaultScenario(t, c, cycles)
			if !reflect.DeepEqual(owners, refOwners) {
				t.Fatalf("seed=%d workers=%d: recovered ownership diverges from fault-free", seed, w)
			}
			var traces []cycleFaultTrace
			var retried bool
			for i, rep := range reps {
				if rep.Outcome != OutcomeCommitted && rep.Outcome != OutcomeRetriedCommitted {
					t.Fatalf("seed=%d workers=%d cycle %d: did not converge: %v (%s)",
						seed, w, i, rep.Outcome, rep.Balance.FaultDetail)
				}
				if rep.Outcome == OutcomeRetriedCommitted {
					retried = true
				}
				if rep.Refine != refReps[i].Refine {
					t.Errorf("seed=%d workers=%d cycle %d: faults changed the adaption kernel", seed, w, i)
				}
				traces = append(traces, traceOf(rep))
			}
			if !retried {
				t.Errorf("seed=%d workers=%d: rate 0.2 never left a remap retry trace", seed, w)
			}
			if first == nil {
				first = traces
				continue
			}
			if !reflect.DeepEqual(traces, first) {
				t.Errorf("seed=%d workers=%d: fault trace not worker-invariant:\n got %+v\nwant %+v",
					seed, w, traces, first)
			}
		}

		// Full byte determinism of a repeated identical run.
		r1, o1 := runFaultScenario(t, cfg, cycles)
		r2, o2 := runFaultScenario(t, cfg, cycles)
		if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(o1, o2) {
			t.Errorf("seed=%d: two identical faulted runs differ", seed)
		}
	}
}

// TestBalanceRollbackDegrades drives the pipeline into graceful
// degradation: with every message dropped and no recovery budget, a
// balance pass that would have remapped instead rolls back — old
// partition intact, no error — and a second consecutive rollback
// escalates to Degraded. Clearing the plan afterwards lets the next pass
// commit and reset the streak.
func TestBalanceRollbackDegrades(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		cfg := DefaultConfig(8)
		cfg.Overlap = overlap
		cfg.Faults = &fault.Plan{Seed: 13, Rate: 1, Kinds: []fault.Kind{fault.Drop}}
		cfg.Retry = fault.Budget(0)
		f, err := New(meshgen.SmallBox(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		f.A.Refine()
		before := f.D.Owners()

		rep, err := f.Balance()
		if err != nil {
			t.Fatalf("overlap=%v: rollback surfaced as error: %v", overlap, err)
		}
		if !rep.Repartitioned || rep.Accepted {
			t.Fatalf("overlap=%v: expected an attempted-but-rolled-back remap: %+v", overlap, rep)
		}
		if rep.Outcome != OutcomeRolledBack || rep.FaultDetail == "" {
			t.Fatalf("overlap=%v: outcome %v (%q), want rolled-back", overlap, rep.Outcome, rep.FaultDetail)
		}
		if rep.ImbalanceAfter != rep.ImbalanceBefore {
			t.Errorf("overlap=%v: rolled-back pass claims improved imbalance", overlap)
		}
		if !reflect.DeepEqual(f.D.Owners(), before) {
			t.Fatalf("overlap=%v: rollback left a modified ownership map", overlap)
		}

		rep2, err := f.Balance()
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Outcome != OutcomeDegraded {
			t.Fatalf("overlap=%v: second consecutive rollback reported %v, want degraded", overlap, rep2.Outcome)
		}
		if !reflect.DeepEqual(f.D.Owners(), before) {
			t.Fatal("degraded pass modified the ownership map")
		}

		// The machine heals: the next pass commits and resets the streak.
		f.D.Faults = nil
		rep3, err := f.Balance()
		if err != nil {
			t.Fatal(err)
		}
		if !rep3.Accepted || rep3.Outcome != OutcomeCommitted {
			t.Fatalf("overlap=%v: healed pass did not commit: %+v", overlap, rep3.Outcome)
		}
		if f.rollbackStreak != 0 {
			t.Error("committed remap did not reset the rollback streak")
		}
	}
}

// TestNewRejectsBadFaultPlan pins config validation.
func TestNewRejectsBadFaultPlan(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &fault.Plan{Seed: 1, Rate: 1.5}
	if _, err := New(meshgen.UnitCube(), nil, cfg); err == nil {
		t.Error("accepted out-of-range fault rate")
	}
}
