package core

import (
	"reflect"
	"strings"
	"testing"

	"plum/internal/adapt"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
)

func TestNewValidatesExchange(t *testing.T) {
	base := func() Config { return DefaultConfig(4) }

	cfg := base()
	cfg.Exchange = "nope"
	if _, err := New(meshgen.UnitCube(), nil, cfg); err == nil || !strings.Contains(err.Error(), "exchange") {
		t.Errorf("unknown exchange: got %v", err)
	}

	cfg = base()
	cfg.Exchange = "hierarchical"
	if _, err := New(meshgen.UnitCube(), nil, cfg); err == nil || !strings.Contains(err.Error(), "node topology") {
		t.Errorf("hierarchical on a flat machine: got %v", err)
	}

	cfg = base()
	cfg.Topology = machine.Topology{RanksPerNode: 4} // missing intra rates
	if _, err := New(meshgen.UnitCube(), nil, cfg); err == nil {
		t.Error("invalid topology accepted")
	}

	cfg = base()
	cfg.Exchange = "hierarchical"
	cfg.Topology = machine.NodeTopology(2)
	f, err := New(meshgen.UnitCube(), nil, cfg)
	if err != nil {
		t.Fatalf("valid hierarchical config rejected: %v", err)
	}
	if f.D.Exchange != machine.ExchangeHierarchical {
		t.Errorf("Dist.Exchange = %v", f.D.Exchange)
	}
	if f.Cfg.Model.Topo != cfg.Topology {
		t.Error("topology not threaded into the machine model")
	}
}

// exchangeCycles runs two balance cycles on the corner-refined box under
// the given exchange config and returns the reports.
func exchangeCycles(t *testing.T, exchange string, topo machine.Topology) []CycleReport {
	t.Helper()
	cfg := DefaultConfig(8)
	cfg.Exchange = exchange
	cfg.Topology = topo
	f, err := New(meshgen.Box(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1}), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reps []CycleReport
	radius := 0.7
	for c := 0; c < 2; c++ {
		r := radius
		rep, err := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
		})
		if err != nil {
			t.Fatal(err)
		}
		radius *= 0.8
		reps = append(reps, rep)
	}
	return reps
}

// TestCycleFlatExchangeIsLegacy pins the satellite bugfix contract at the
// framework level: the default config, an explicit "flat" exchange, and a
// flat topology all produce byte-identical cycle reports — Exchange and
// the new setup fields included — so the legacy path cannot have drifted.
func TestCycleFlatExchangeIsLegacy(t *testing.T) {
	ref := exchangeCycles(t, "", machine.Topology{})
	for _, rep := range ref {
		if b := rep.Balance; b.Accepted && (b.RemapSetups != int64(b.MoveN) || b.RemapSetupTime <= 0) {
			t.Fatalf("flat remap setup accounting wrong: %+v", b)
		}
	}
	got := exchangeCycles(t, "flat", machine.Topology{})
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("explicit flat exchange diverges from the default config")
	}
}

// TestCycleExchangeInvariants runs the same workload under all three
// schedules: the mesh evolution and balance decisions must be identical,
// while the setup accounting must shrink under the combined schedules.
func TestCycleExchangeInvariants(t *testing.T) {
	topo := machine.NodeTopology(4)
	flat := exchangeCycles(t, "flat", topo)
	for _, exchange := range []string{"aggregated", "hierarchical"} {
		got := exchangeCycles(t, exchange, topo)
		for c := range flat {
			fb, gb := flat[c].Balance, got[c].Balance
			if gb.ImbalanceBefore != fb.ImbalanceBefore || gb.ImbalanceAfter != fb.ImbalanceAfter ||
				gb.Accepted != fb.Accepted || gb.MoveC != fb.MoveC || gb.MoveN != fb.MoveN ||
				gb.Remap.Moved != fb.Remap.Moved || gb.Remap.WordsMoved != fb.Remap.WordsMoved {
				t.Fatalf("%s cycle %d: schedule changed the physics:\n got %+v\nwant %+v",
					exchange, c, gb, fb)
			}
			if !fb.Accepted {
				continue
			}
			if gb.RemapSetups >= fb.RemapSetups {
				t.Errorf("%s cycle %d: %d setups not below flat's %d",
					exchange, c, gb.RemapSetups, fb.RemapSetups)
			}
			if gb.RemapSetupTime >= fb.RemapSetupTime {
				t.Errorf("%s cycle %d: setup time %g not below flat's %g",
					exchange, c, gb.RemapSetupTime, fb.RemapSetupTime)
			}
			if gb.Exchange.String() != exchange {
				t.Errorf("cycle %d: report says exchange %v, want %s", c, gb.Exchange, exchange)
			}
		}
	}
}
