package core

import (
	"bytes"
	"errors"
	"testing"

	"plum/internal/adapt"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/obs"
	"plum/internal/par"
	"plum/internal/partition"
)

// tracedRun drives a fixture with tracing and metrics attached and
// returns all three exports as byte slices. The fault-free fixture is
// the overlap-parity one (big enough for real multi-window streaming);
// the faulty fixture is the mixed crash+drop scenario, which exercises
// retries, rollbacks, checkpoint restore, and survivor recovery.
func tracedRun(t *testing.T, workers int, overlap, faulty bool) (perfetto, jsonl, prom []byte) {
	t.Helper()
	tr := obs.NewTrace()
	reg := obs.NewRegistry()
	RegisterHelp(reg)

	var f *Framework
	var err error
	if faulty {
		cfg := DefaultConfig(8)
		cfg.Workers = workers
		cfg.Overlap = overlap
		cfg.Faults = &fault.Plan{Seed: 15, Rate: 0.15, Kinds: []fault.Kind{fault.Crash, fault.Drop}}
		cfg.Retry = fault.Budget(8)
		cfg.Trace = tr
		cfg.Metrics = reg
		f, err = New(meshgen.SmallBox(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		radius := 0.7
		sawFault := false
		for c := 0; c < 3; c++ {
			r := radius
			rep, cerr := f.Cycle(func(a *adapt.Adaptor) {
				a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: r}, adapt.MarkRefine)
			})
			if cerr != nil {
				t.Fatal(cerr)
			}
			if rep.Outcome != OutcomeCommitted {
				sawFault = true
			}
			radius *= 0.8
		}
		if !sawFault {
			t.Fatal("faulty fixture never left the committed path; pick a hotter seed")
		}
	} else {
		m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
		cfg := DefaultConfig(8)
		cfg.Method = partition.MethodHilbertSFC
		cfg.Workers = workers
		cfg.Overlap = overlap
		cfg.Refiner = "bandfm"
		cfg.Trace = tr
		cfg.Metrics = reg
		f, err = New(m, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		rep, cerr := f.Cycle(func(a *adapt.Adaptor) {
			a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
		})
		if cerr != nil {
			t.Fatal(cerr)
		}
		if !rep.Balance.Accepted {
			t.Fatalf("fixture did not accept the remap: gain=%g cost=%g",
				rep.Balance.Gain, rep.Balance.Cost)
		}
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("trace recorded no spans")
	}

	var p, j, m bytes.Buffer
	if err := obs.WritePerfetto(&p, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(&j, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(&m, reg); err != nil {
		t.Fatal(err)
	}
	return p.Bytes(), j.Bytes(), m.Bytes()
}

// TestTraceWorkerParity is the determinism contract of the tracing
// layer: every export — Perfetto JSON, JSONL, Prometheus text — must be
// byte-identical at workers 1, 2, 4, and 8, with overlap off and on,
// on the fault-free fixture and on a crash+drop seed that exercises
// retries, checkpoint restore, and survivor recovery.
func TestTraceWorkerParity(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		for _, overlap := range []bool{false, true} {
			refP, refJ, refM := tracedRun(t, 1, overlap, faulty)
			for _, w := range []int{2, 4, 8} {
				p, j, m := tracedRun(t, w, overlap, faulty)
				if !bytes.Equal(p, refP) {
					t.Errorf("faulty=%v overlap=%v workers=%d: perfetto export differs from workers=1",
						faulty, overlap, w)
				}
				if !bytes.Equal(j, refJ) {
					t.Errorf("faulty=%v overlap=%v workers=%d: jsonl export differs from workers=1",
						faulty, overlap, w)
				}
				if !bytes.Equal(m, refM) {
					t.Errorf("faulty=%v overlap=%v workers=%d: prometheus dump differs from workers=1:\n got %s\nwant %s",
						faulty, overlap, w, m, refM)
				}
			}
		}
	}
}

// TestTraceContent spot-checks that the pipeline's stages actually made
// it into the trace and the registry, on the faulty fixture (the richest
// path: solver, adapt phases, remap windows, fault events, recovery).
func TestTraceContent(t *testing.T) {
	_, jsonl, prom := tracedRun(t, 2, true, true)
	for _, want := range []string{
		`"stage":"cycle"`, `"stage":"solver"`, `"stage":"adapt.propagate"`,
		`"stage":"repartition"`, `"stage":"reassign"`, `"msg":"ckpt.capture"`,
		`"msg":"balance.evaluate"`,
	} {
		if !bytes.Contains(jsonl, []byte(want)) {
			t.Errorf("jsonl trace missing %s", want)
		}
	}
	for _, want := range []string{"plum_cycles_total 3", "plum_outcomes_total{outcome=", "plum_alive_ranks"} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("prometheus dump missing %s\n%s", want, prom)
		}
	}
}

// TestTraceDisabledIsFree pins the nil-observer cost contract: with
// Config.Trace and Config.Metrics unset, every instrumentation call the
// cycle hot path makes — all the guarded helpers, with their attribute
// arguments — must allocate nothing. The attr slices are built after
// the nil check, so a disabled observer costs one pointer compare.
func TestTraceDisabledIsFree(t *testing.T) {
	mdl := machine.SP2()
	var ops partition.Ops
	var res par.RemapResult
	var tm par.AdaptTimings
	errBoom := errors.New("boom")
	allocs := testing.AllocsPerRun(200, func() {
		traceCycleBegin(nil, 3)
		traceSolver(nil, 1.0, 3)
		traceAdapt(nil, tm)
		traceCkptCapture(nil, 1)
		traceCkptRestore(nil, 1)
		traceEvaluate(nil, 1.3, true)
		traceRepartition(nil, mdl, ops, 8)
		traceReassign(nil, 10, 0.1, 5)
		traceDecision(nil, 1.0, 10, 2, true)
		traceRemapExec(nil, "remap.exec", &res)
		traceRollback(nil, OutcomeRolledBack, "detail")
		traceCrash(nil, nil)
		traceCycleError(nil, errBoom)
		traceCycleEnd(nil, OutcomeCommitted)
		recordCycleMetrics(nil, nil, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled observer allocated %.1f times per cycle's worth of calls, want 0", allocs)
	}
}
