// Package psort implements a deterministic parallel sample sort over
// (uint64 key, int32 index) pairs — the sorting engine behind the parallel
// space-filling-curve partitioning pipeline.
//
// Sample sort is the classic distributed sorting algorithm (Blelloch et
// al.; Borrell et al. use the same structure for extreme-scale SFC mesh
// partitioning): oversample the input to pick w−1 splitters, scatter every
// element into one of w key-ranged buckets, sort the buckets
// independently, and concatenate. All three phases parallelize over a
// GOMAXPROCS-sized worker pool; below a size cutoff a serial pdqsort wins
// and is used instead.
//
// Determinism: elements are ordered by (key, index) — the index breaks
// ties between equal keys — so the output is the unique total order of the
// input and is byte-identical at every worker count, including 1. This is
// the property the SFC partitioner relies on to produce identical
// partition assignments regardless of parallelism.
package psort

import (
	"slices"
	"sync"

	"plum/internal/chunk"
)

// KV is one sortable element: a 64-bit key and its payload index. The
// index doubles as the deterministic tie-break for equal keys, so inputs
// whose V values are distinct (the partitioner's vertex indices always
// are) have a unique sorted order.
type KV struct {
	K uint64
	V int32
}

// Compare orders pairs by key, then by index — the total order Sort
// establishes.
func Compare(a, b KV) int {
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	}
	return 0
}

// SerialCutoff is the input size below which Sort falls back to a serial
// sort: under ~8k pairs the scatter bookkeeping costs more than the
// parallelism recovers.
const SerialCutoff = 1 << 13

// oversample is the number of splitter candidates sampled per worker.
// Higher oversampling tightens bucket-size variance (±O(n/(w·oversample))
// around n/w) at a negligible serial cost.
const oversample = 16

// SortWorkers returns the worker count Sort actually uses for n pairs
// under the given knob: 1 when the serial fallback wins (n below
// SerialCutoff or a resolved knob of 1), otherwise the knob clamped so
// each worker has enough elements to amortize its scatter pass. Cost
// models must divide the sort's critical path by this figure, not by the
// raw knob. The worker-resolution and range-splitting helpers this sort
// once hosted live in internal/chunk now, shared by every chunked scan.
func SortWorkers(n, workers int) int {
	w := chunk.Workers(workers)
	if max := n / (SerialCutoff / 8); w > max {
		w = max
	}
	if w <= 1 || n < SerialCutoff {
		return 1
	}
	return w
}

// Sort sorts kvs ascending by (K, V) using a parallel sample sort with the
// given worker knob (≤ 0 = GOMAXPROCS). Inputs below SerialCutoff, or a
// resolved worker count of 1, use a serial pdqsort. The result is
// identical at every worker count.
func Sort(kvs []KV, workers int) {
	w := SortWorkers(len(kvs), workers)
	if w <= 1 {
		slices.SortFunc(kvs, Compare)
		return
	}
	sampleSort(kvs, w)
}

// sampleSort runs the three parallel phases: splitter selection, bucket
// scatter, and per-bucket sort. Requires w ≥ 2 and len(kvs) ≥ w·oversample.
func sampleSort(kvs []KV, w int) {
	n := len(kvs)

	// Phase 1 — splitters. Samples are taken at fixed, evenly spaced
	// positions (no RNG: determinism), sorted, and every oversample-th
	// becomes a splitter. Bucket b receives elements x with
	// splitter[b-1] ≤ x < splitter[b] in (K, V) order.
	s := w * oversample
	samples := make([]KV, s)
	for i := range samples {
		samples[i] = kvs[i*n/s]
	}
	slices.SortFunc(samples, Compare)
	splitters := make([]KV, w-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*oversample-1]
	}

	// Phase 2a — count. Each worker classifies its contiguous input chunk
	// by binary search over the splitters, caching the bucket of every
	// element so the scatter pass doesn't search again.
	counts := make([][]int32, w)
	buckets := make([]uint16, n)
	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			c := make([]int32, w)
			lo, hi := t*n/w, (t+1)*n/w
			for i := lo; i < hi; i++ {
				b := bucketOf(kvs[i], splitters)
				buckets[i] = uint16(b)
				c[b]++
			}
			counts[t] = c
		}(t)
	}
	wg.Wait()

	// Phase 2b — offsets. Buckets are laid out contiguously in key order;
	// within a bucket, worker regions follow input-chunk order. Every
	// (worker, bucket) region is disjoint, so the scatter needs no locks.
	offsets := make([][]int32, w)
	for t := range offsets {
		offsets[t] = make([]int32, w)
	}
	bucketStart := make([]int32, w+1)
	var pos int32
	for b := 0; b < w; b++ {
		bucketStart[b] = pos
		for t := 0; t < w; t++ {
			offsets[t][b] = pos
			pos += counts[t][b]
		}
	}
	bucketStart[w] = int32(n)

	// Phase 2c — scatter into scratch, reusing the cached buckets.
	scratch := make([]KV, n)
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			off := offsets[t]
			lo, hi := t*n/w, (t+1)*n/w
			for i := lo; i < hi; i++ {
				b := buckets[i]
				scratch[off[b]] = kvs[i]
				off[b]++
			}
		}(t)
	}
	wg.Wait()

	// Phase 3 — sort each bucket and copy it back in place. Bucket b's
	// destination [bucketStart[b], bucketStart[b+1]) is exactly its
	// position in the final order.
	wg.Add(w)
	for b := 0; b < w; b++ {
		go func(b int) {
			defer wg.Done()
			seg := scratch[bucketStart[b]:bucketStart[b+1]]
			slices.SortFunc(seg, Compare)
			copy(kvs[bucketStart[b]:bucketStart[b+1]], seg)
		}(b)
	}
	wg.Wait()
}

// bucketOf returns the index of the first splitter greater than x — the
// bucket x belongs to. The binary search is inlined key-first (no
// closure, no function call per probe): this runs once per input element
// on the sample sort's hottest loop.
func bucketOf(x KV, splitters []KV) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		s := splitters[mid]
		if x.K < s.K || (x.K == s.K && x.V < s.V) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SortIndexByKey sorts idx so that keys[idx[i]] is ascending, breaking
// equal keys by the smaller index — the curve-order construction of the
// SFC partitioner, exposed here so serial callers share the exact
// ordering semantics. keys is not modified.
func SortIndexByKey(keys []uint64, idx []int32, workers int) {
	kvs := make([]KV, len(idx))
	chunk.For(len(idx), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			kvs[i] = KV{K: keys[idx[i]], V: idx[i]}
		}
	})
	Sort(kvs, workers)
	chunk.For(len(idx), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			idx[i] = kvs[i].V
		}
	})
}
