package psort

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// refSort is the specification Sort must match exactly: the stdlib sort
// over the same (K, V) total order.
func refSort(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].K != kvs[j].K {
			return kvs[i].K < kvs[j].K
		}
		return kvs[i].V < kvs[j].V
	})
}

// randomPairs draws n pairs whose keys collide heavily when dup is small —
// the regime where a non-tie-broken sample sort goes nondeterministic.
func randomPairs(rng *rand.Rand, n int, keySpace uint64) []KV {
	kvs := make([]KV, n)
	for i := range kvs {
		k := rng.Uint64()
		if keySpace > 0 {
			k %= keySpace
		}
		kvs[i] = KV{K: k, V: int32(i)}
	}
	// Shuffle V so index order and input order are uncorrelated.
	rng.Shuffle(n, func(i, j int) { kvs[i].V, kvs[j].V = kvs[j].V, kvs[i].V })
	return kvs
}

// TestSortMatchesReference is the core property test: for random sizes
// straddling SerialCutoff, random duplicate densities, and worker counts
// well beyond GOMAXPROCS, Sort must equal the reference sort exactly.
func TestSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 2, 3, 17, 1000, SerialCutoff - 1, SerialCutoff, SerialCutoff + 1, 3 * SerialCutoff}
	keySpaces := []uint64{0, 1, 2, 7, 1 << 20} // 0 = full 64-bit range
	workerCounts := []int{0, 1, 2, 3, 4, 7, 16}
	for _, n := range sizes {
		for _, ks := range keySpaces {
			in := randomPairs(rng, n, ks)
			want := slices.Clone(in)
			refSort(want)
			for _, w := range workerCounts {
				got := slices.Clone(in)
				Sort(got, w)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d keySpace=%d workers=%d: Sort diverges from reference", n, ks, w)
				}
			}
		}
	}
}

// TestSortDuplicateKeyDeterminism pins the tie-break contract: with every
// key identical, the output must be exactly index order at any worker
// count.
func TestSortDuplicateKeyDeterminism(t *testing.T) {
	const n = 2*SerialCutoff + 5
	for _, w := range []int{1, 2, 5, 8} {
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{K: 42, V: int32(n - 1 - i)}
		}
		Sort(kvs, w)
		for i := range kvs {
			if kvs[i].V != int32(i) {
				t.Fatalf("workers=%d: equal-key tie-break broken at %d: got V=%d", w, i, kvs[i].V)
			}
		}
	}
}

// TestSortAlreadySortedAndReversed covers the pdqsort fast paths through
// the parallel scatter.
func TestSortAlreadySortedAndReversed(t *testing.T) {
	const n = SerialCutoff * 2
	asc := make([]KV, n)
	for i := range asc {
		asc[i] = KV{K: uint64(i), V: int32(i)}
	}
	desc := make([]KV, n)
	for i := range desc {
		desc[i] = KV{K: uint64(n - i), V: int32(i)}
	}
	for _, w := range []int{1, 4} {
		a := slices.Clone(asc)
		Sort(a, w)
		if !slices.Equal(a, asc) {
			t.Fatalf("workers=%d: sorted input perturbed", w)
		}
		d := slices.Clone(desc)
		want := slices.Clone(desc)
		refSort(want)
		Sort(d, w)
		if !slices.Equal(d, want) {
			t.Fatalf("workers=%d: reversed input missorted", w)
		}
	}
}

// TestSortIndexByKey checks the partitioner-facing wrapper: idx ends up in
// (key, index) order and keys is untouched.
func TestSortIndexByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := SerialCutoff + 321
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 64 // dense duplicates
	}
	orig := slices.Clone(keys)
	for _, w := range []int{1, 3, 8} {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		SortIndexByKey(keys, idx, w)
		if !slices.Equal(keys, orig) {
			t.Fatalf("workers=%d: keys modified", w)
		}
		for i := 1; i < n; i++ {
			a, b := idx[i-1], idx[i]
			if keys[a] > keys[b] || (keys[a] == keys[b] && a >= b) {
				t.Fatalf("workers=%d: order violated at %d: (%d,%d) then (%d,%d)",
					w, i, keys[a], a, keys[b], b)
			}
		}
	}
}

// FuzzSortMatchesReference feeds arbitrary key bytes and worker counts;
// Sort must always equal the reference sort.
func FuzzSortMatchesReference(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 1, 255, 1, 255, 1}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, w uint8) {
		kvs := make([]KV, len(data))
		for i, b := range data {
			// 3-bit keys: maximal duplicate pressure.
			kvs[i] = KV{K: uint64(b & 7), V: int32(i)}
		}
		want := slices.Clone(kvs)
		refSort(want)
		got := slices.Clone(kvs)
		Sort(got, int(w%9))
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d n=%d: mismatch", w%9, len(data))
		}
	})
}

// BenchmarkSampleSort compares the parallel sample sort against the serial
// pdqsort baseline on uniformly random keys.
func BenchmarkSampleSort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1 << 16, 1 << 20} {
		in := randomPairs(rng, n, 0)
		b.Run(sizeName(n)+"/serial", func(b *testing.B) {
			buf := make([]KV, n)
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				Sort(buf, 1)
			}
		})
		b.Run(sizeName(n)+"/parallel", func(b *testing.B) {
			buf := make([]KV, n)
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				Sort(buf, 0)
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1<<20 {
		return "1M"
	}
	return "64k"
}
