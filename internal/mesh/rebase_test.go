package mesh

import (
	"math"
	"testing"

	"plum/internal/geom"
)

// buildRefinedFixture makes a single tet, bisects one edge, and manually
// subdivides it 1:2 (without the adapt package, to avoid an import cycle).
func buildRefinedFixture(t *testing.T) *Mesh {
	t.Helper()
	m := New(8, 16, 4)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	el := m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	e01 := m.FindEdge(v0, v1)
	mid := m.BisectEdge(e01)
	m.DeactivateElement(el)
	c1 := m.AddElement(v0, mid, v2, v3, el, el, 1)
	c2 := m.AddElement(mid, v1, v2, v3, el, el, 1)
	m.Elems[el].Children = []ElemID{c1, c2}
	if err := m.Check(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return m
}

func TestRebasePromotesLeaves(t *testing.T) {
	m := buildRefinedFixture(t)
	volBefore := m.TotalVolume()
	m.Rebase()
	if err := m.Check(); err != nil {
		t.Fatalf("Check after rebase: %v", err)
	}
	if got := len(m.Elems); got != 2 {
		t.Fatalf("element slab = %d, want 2 (history dropped)", got)
	}
	for i := range m.Elems {
		el := &m.Elems[i]
		if el.Level != 0 || el.Parent != InvalidElem || el.Root != ElemID(i) || len(el.Children) != 0 {
			t.Fatalf("element %d not rebased: %+v", i, *el)
		}
	}
	for i := range m.Edges {
		e := &m.Edges[i]
		if e.Dead {
			t.Fatalf("dead edge survived compaction")
		}
		if e.Bisected() || e.Parent != InvalidEdge {
			t.Fatalf("edge %d keeps history: %+v", i, *e)
		}
	}
	if math.Abs(m.TotalVolume()-volBefore) > 1e-14 {
		t.Error("volume changed by rebase")
	}
}

func TestRebaseIdempotentOnFreshMesh(t *testing.T) {
	m := New(8, 16, 4)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	s0 := m.Stats()
	m.Rebase()
	if m.Stats() != s0 {
		t.Errorf("rebase of fresh mesh changed stats: %+v -> %+v", s0, m.Stats())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}
