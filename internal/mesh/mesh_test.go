package mesh

import (
	"testing"

	"plum/internal/geom"
)

// singleTet builds one unit right tetrahedron.
func singleTet(t *testing.T) (*Mesh, ElemID) {
	t.Helper()
	m := New(4, 6, 1)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	el := m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	return m, el
}

func TestSingleTetCounts(t *testing.T) {
	m, el := singleTet(t)
	if got := m.NumVerts(); got != 4 {
		t.Errorf("verts = %d", got)
	}
	if got := m.NumActiveEdges(); got != 6 {
		t.Errorf("edges = %d", got)
	}
	if got := m.NumActiveElems(); got != 1 {
		t.Errorf("elems = %d", got)
	}
	if m.Elems[el].Root != el {
		t.Error("initial element should be its own root")
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestElemOrientationNormalized(t *testing.T) {
	m := New(4, 6, 1)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	// Deliberately negative orientation: (v0,v1,v3,v2).
	el := m.AddElement(v0, v1, v3, v2, InvalidElem, InvalidElem, 0)
	if vol := m.ElemVolume(el); vol <= 0 {
		t.Errorf("volume not normalized positive: %g", vol)
	}
}

func TestEdgeDedup(t *testing.T) {
	m := New(8, 20, 2)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	v4 := m.AddVertex(geom.Vec3{X: 1, Y: 1, Z: 1})
	m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	m.AddElement(v1, v2, v3, v4, InvalidElem, InvalidElem, 0)
	// Shared face (v1,v2,v3) must not duplicate its three edges.
	if got := m.NumActiveEdges(); got != 9 {
		t.Errorf("edges = %d, want 9 (6 + 3 new)", got)
	}
	e := m.FindEdge(v2, v1)
	if e == InvalidEdge {
		t.Fatal("FindEdge symmetric lookup failed")
	}
	if got := len(m.Edges[e].Elems); got != 2 {
		t.Errorf("shared edge incidence = %d, want 2", got)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestBisectEdge(t *testing.T) {
	m, _ := singleTet(t)
	e := m.FindEdge(0, 1)
	mid := m.BisectEdge(e)
	if mid == InvalidVert {
		t.Fatal("no midpoint")
	}
	if m.Verts[mid].Pos != (geom.Vec3{X: 0.5}) {
		t.Errorf("midpoint at %v", m.Verts[mid].Pos)
	}
	if !m.Edges[e].Bisected() {
		t.Error("edge not marked bisected")
	}
	// Idempotent.
	if again := m.BisectEdge(e); again != mid {
		t.Error("BisectEdge not idempotent")
	}
	if len(m.Bisections) != 1 {
		t.Errorf("bisection log has %d entries, want 1", len(m.Bisections))
	}
	b := m.Bisections[0]
	if b.Mid != mid || b.Edge != e {
		t.Errorf("log entry %+v", b)
	}
	// Child lookup by endpoint.
	c0 := m.HalfEdge(e, 0)
	if m.Edges[c0].V != [2]VertID{0, mid} && m.Edges[c0].V != [2]VertID{mid, 0} {
		t.Errorf("HalfEdge(0) endpoints %v", m.Edges[c0].V)
	}
	// Active edge count: 6 - 1 bisected + 2 children = 7.
	if got := m.NumActiveEdges(); got != 7 {
		t.Errorf("active edges = %d, want 7", got)
	}
}

func TestLocalEdgeTables(t *testing.T) {
	for le, lv := range ElemEdgeVerts {
		if got := LocalEdge(lv[0], lv[1]); got != le {
			t.Errorf("LocalEdge(%d,%d) = %d, want %d", lv[0], lv[1], got, le)
		}
		if got := LocalEdge(lv[1], lv[0]); got != le {
			t.Errorf("LocalEdge reversed (%d,%d) = %d, want %d", lv[1], lv[0], got, le)
		}
	}
	if LocalEdge(2, 2) != -1 {
		t.Error("LocalEdge of equal vertices should be -1")
	}
	// Each face's edge set must match its vertex set.
	for f, fv := range ElemFaceVerts {
		want := map[int]bool{}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				want[LocalEdge(fv[i], fv[j])] = true
			}
		}
		for _, fe := range ElemFaceEdges[f] {
			if !want[fe] {
				t.Errorf("face %d: edge %d not derived from vertices", f, fe)
			}
		}
	}
}

func TestDeactivateReactivateElement(t *testing.T) {
	m, el := singleTet(t)
	m.DeactivateElement(el)
	if m.NumActiveElems() != 0 {
		t.Error("element still active")
	}
	for _, e := range m.Elems[el].E {
		if len(m.Edges[e].Elems) != 0 {
			t.Error("incidence list not cleared")
		}
	}
	m.ReactivateElement(el)
	if m.NumActiveElems() != 1 {
		t.Error("element not reactivated")
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check after reactivate: %v", err)
	}
}

func TestKillEdgeVertex(t *testing.T) {
	m := New(2, 1, 0)
	a := m.AddVertex(geom.Vec3{})
	b := m.AddVertex(geom.Vec3{X: 1})
	e := m.AddEdge(a, b)
	m.KillEdge(e)
	if !m.Edges[e].Dead {
		t.Error("edge not dead")
	}
	if m.FindEdge(a, b) != InvalidEdge {
		t.Error("dead edge still findable")
	}
	if m.NumActiveEdges() != 0 {
		t.Error("edge counter wrong")
	}
	m.KillVertex(a)
	m.KillVertex(b)
	if m.NumVerts() != 0 {
		t.Error("vertices not dead")
	}
}

func TestCompactRenumbers(t *testing.T) {
	m := New(8, 20, 2)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	v4 := m.AddVertex(geom.Vec3{X: 1, Y: 1, Z: 1})
	e0 := m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	e1 := m.AddElement(v1, v2, v3, v4, InvalidElem, InvalidElem, 0)
	volBefore := m.TotalVolume()

	// Remove the second element entirely and its private objects.
	m.DeactivateElement(e1)
	m.KillElement(e1)
	for _, e := range []EdgeID{m.FindEdge(v1, v4), m.FindEdge(v2, v4), m.FindEdge(v3, v4)} {
		m.KillEdge(e)
	}
	m.KillVertex(v4)

	cm := m.Compact()
	if cm.Elem[e1] != InvalidElem {
		t.Error("dead element survived compaction")
	}
	if cm.Elem[e0] == InvalidElem {
		t.Error("live element dropped")
	}
	if len(m.Verts) != 4 || len(m.Elems) != 1 || len(m.Edges) != 6 {
		t.Errorf("compacted sizes: %d verts %d edges %d elems", len(m.Verts), len(m.Edges), len(m.Elems))
	}
	if err := m.Check(); err != nil {
		t.Fatalf("Check after compact: %v", err)
	}
	if got := m.TotalVolume(); got >= volBefore || got <= 0 {
		t.Errorf("volume after compact = %g", got)
	}
	// Edge lookup must work post-compaction.
	if m.FindEdge(cm.Vert[v0], cm.Vert[v1]) == InvalidEdge {
		t.Error("edge map not rebuilt")
	}
}

func TestEdgeOther(t *testing.T) {
	m := New(2, 1, 0)
	a := m.AddVertex(geom.Vec3{})
	b := m.AddVertex(geom.Vec3{X: 1})
	e := m.AddEdge(a, b)
	if m.Edges[e].Other(a) != b || m.Edges[e].Other(b) != a {
		t.Error("Other endpoint lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint must panic")
		}
	}()
	m.Edges[e].Other(99)
}

func TestStatsString(t *testing.T) {
	m, _ := singleTet(t)
	s := m.Stats()
	if s.Verts != 4 || s.ActiveEdges != 6 || s.ActiveElems != 1 || s.TotalElems != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
