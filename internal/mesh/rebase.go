package mesh

// Rebase forgets the refinement history and promotes every active element
// (and edge) to level 0, making the *current* mesh the new "initial" mesh.
//
// This implements the paper's remedy for very small initial meshes: "one
// can then allow the initial mesh to be adapted one or more times before
// using the dual graph for all future adaptions" — after Rebase, the dual
// graph built from this mesh has one vertex per current element, and
// coarsening can no longer undo the pre-adaption (edges cannot be
// coarsened beyond the new initial mesh).
func (m *Mesh) Rebase() CompactMap {
	// Kill retained parents (inactive, subdivided objects) so compaction
	// drops them, then clear tree linkage on the survivors.
	for i := range m.Elems {
		t := &m.Elems[i]
		if t.Dead {
			continue
		}
		if !t.Active() {
			t.Dead = true
		}
	}
	for i := range m.Faces {
		f := &m.Faces[i]
		if f.Dead {
			continue
		}
		if !f.Active() {
			f.Dead = true
		}
	}
	for i := range m.Edges {
		e := &m.Edges[i]
		if e.Dead {
			continue
		}
		if e.Bisected() {
			// The children survive; the parent's linkage dies with it.
			e.Dead = true
			delete(m.edgeByVerts, edgeKey(e.V[0], e.V[1]))
			for _, v := range e.V {
				lst := m.Verts[v].Edges
				for j, x := range lst {
					if x == EdgeID(i) {
						lst[j] = lst[len(lst)-1]
						m.Verts[v].Edges = lst[:len(lst)-1]
						break
					}
				}
			}
		}
	}

	cm := m.Compact()

	for i := range m.Elems {
		t := &m.Elems[i]
		t.Parent = InvalidElem
		t.Root = ElemID(i)
		t.Level = 0
		t.Children = t.Children[:0]
	}
	for i := range m.Edges {
		e := &m.Edges[i]
		e.Parent = InvalidEdge
		e.Child = [2]EdgeID{InvalidEdge, InvalidEdge}
		e.Mid = InvalidVert
	}
	for i := range m.Faces {
		f := &m.Faces[i]
		f.Parent = InvalidFace
		f.Children = f.Children[:0]
	}
	m.ResetLog()
	return cm
}
