package mesh

import (
	"strings"
	"testing"

	"plum/internal/geom"
)

// These failure-injection tests corrupt a valid mesh in each of the ways
// the consistency checker claims to detect, and verify it actually does.

func validPair(t *testing.T) *Mesh {
	t.Helper()
	m := New(8, 20, 2)
	v0 := m.AddVertex(geom.Vec3{})
	v1 := m.AddVertex(geom.Vec3{X: 1})
	v2 := m.AddVertex(geom.Vec3{Y: 1})
	v3 := m.AddVertex(geom.Vec3{Z: 1})
	v4 := m.AddVertex(geom.Vec3{X: 1, Y: 1, Z: 1})
	m.AddElement(v0, v1, v2, v3, InvalidElem, InvalidElem, 0)
	m.AddElement(v1, v2, v3, v4, InvalidElem, InvalidElem, 0)
	if err := m.Check(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return m
}

func wantCheckError(t *testing.T, m *Mesh, substr string) {
	t.Helper()
	err := m.Check()
	if err == nil {
		t.Fatalf("corruption not detected (want error containing %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("detected wrong violation: %v (want %q)", err, substr)
	}
}

func TestCheckDetectsStaleIncidence(t *testing.T) {
	m := validPair(t)
	// Inject a stale entry into an edge's element list.
	m.Edges[0].Elems = append(m.Edges[0].Elems, 1)
	wantCheckError(t, m, "incidence")
}

func TestCheckDetectsMissingIncidence(t *testing.T) {
	m := validPair(t)
	m.Edges[0].Elems = m.Edges[0].Elems[:0]
	wantCheckError(t, m, "incidence")
}

func TestCheckDetectsDanglingVertexEdge(t *testing.T) {
	m := validPair(t)
	// Vertex incidence listing an edge that does not contain it.
	other := m.FindEdge(2, 3)
	m.Verts[0].Edges = append(m.Verts[0].Edges, other)
	wantCheckError(t, m, "does not contain")
}

func TestCheckDetectsWrongEdgeEndpoints(t *testing.T) {
	m := validPair(t)
	m.Edges[m.Elems[0].E[0]].V = [2]VertID{2, 3}
	wantCheckError(t, m, "endpoints")
}

func TestCheckDetectsActiveElementOnBisectedEdge(t *testing.T) {
	m := validPair(t)
	e := m.Elems[0].E[0]
	// Forge a bisection without subdividing the element.
	mid := m.AddVertex(geom.Vec3{X: 0.5})
	c0 := m.AddEdge(m.Edges[e].V[0], mid)
	c1 := m.AddEdge(mid, m.Edges[e].V[1])
	ed := &m.Edges[e]
	ed.Child = [2]EdgeID{c0, c1}
	ed.Mid = mid
	wantCheckError(t, m, "bisected")
}

func TestCheckDetectsCounterDrift(t *testing.T) {
	m := validPair(t)
	m.nActiveElems++
	wantCheckError(t, m, "counter")
}

func TestCheckDetectsNegativeVolume(t *testing.T) {
	m := validPair(t)
	// Move a vertex so element 0 inverts. Element 0 is (0,1,2,3); push
	// vertex 3 through the opposite face.
	m.Verts[3].Pos = geom.Vec3{X: 0.6, Y: 0.6, Z: -2}
	if err := m.Check(); err == nil {
		t.Fatal("inverted element not detected")
	}
}

func TestCheckDetectsDeadEdgeInUse(t *testing.T) {
	m := validPair(t)
	m.Edges[m.Elems[0].E[0]].Dead = true
	err := m.Check()
	if err == nil {
		t.Fatal("dead edge in use not detected")
	}
}

func TestCheckDetectsFaceOverForeignEdge(t *testing.T) {
	m := validPair(t)
	m.AddBoundaryFace(0, 1, 2, 0)
	// Point the face at an edge with the wrong endpoints.
	m.Faces[0].E[0] = m.FindEdge(2, 3)
	wantCheckError(t, m, "face")
}
