package mesh

// CompactMap records the renumbering performed by Compact: old id → new
// id, with -1 for objects that were dropped.
type CompactMap struct {
	Vert []VertID
	Edge []EdgeID
	Elem []ElemID
	Face []FaceID
}

// Compact drops dead vertices, edges, elements, and boundary faces, and
// renumbers the survivors densely. It models the compaction the paper
// performs during the coarsening phase ("objects are renumbered as a
// result of compaction and all internal and shared data are updated
// accordingly"). It returns the renumbering so callers (solution fields,
// partition assignments, distributed-mesh bookkeeping) can update their
// own arrays.
func (m *Mesh) Compact() CompactMap {
	cm := CompactMap{
		Vert: make([]VertID, len(m.Verts)),
		Edge: make([]EdgeID, len(m.Edges)),
		Elem: make([]ElemID, len(m.Elems)),
		Face: make([]FaceID, len(m.Faces)),
	}

	nv := 0
	for i := range m.Verts {
		if m.Verts[i].Dead {
			cm.Vert[i] = InvalidVert
			continue
		}
		cm.Vert[i] = VertID(nv)
		if nv != i {
			m.Verts[nv] = m.Verts[i]
		}
		nv++
	}
	m.Verts = m.Verts[:nv]

	ne := 0
	for i := range m.Edges {
		if m.Edges[i].Dead {
			cm.Edge[i] = InvalidEdge
			continue
		}
		cm.Edge[i] = EdgeID(ne)
		if ne != i {
			m.Edges[ne] = m.Edges[i]
		}
		ne++
	}
	m.Edges = m.Edges[:ne]

	nt := 0
	for i := range m.Elems {
		if m.Elems[i].Dead {
			cm.Elem[i] = InvalidElem
			continue
		}
		cm.Elem[i] = ElemID(nt)
		if nt != i {
			m.Elems[nt] = m.Elems[i]
		}
		nt++
	}
	m.Elems = m.Elems[:nt]

	nf := 0
	for i := range m.Faces {
		if m.Faces[i].Dead {
			cm.Face[i] = InvalidFace
			continue
		}
		cm.Face[i] = FaceID(nf)
		if nf != i {
			m.Faces[nf] = m.Faces[i]
		}
		nf++
	}
	m.Faces = m.Faces[:nf]

	// Rewrite references.
	for i := range m.Verts {
		es := m.Verts[i].Edges
		for j, e := range es {
			es[j] = cm.Edge[e]
		}
	}
	m.edgeByVerts = make(map[[2]VertID]EdgeID, len(m.Edges))
	for i := range m.Edges {
		ed := &m.Edges[i]
		ed.V[0] = cm.Vert[ed.V[0]]
		ed.V[1] = cm.Vert[ed.V[1]]
		for j, el := range ed.Elems {
			ed.Elems[j] = cm.Elem[el]
		}
		if ed.Parent != InvalidEdge {
			ed.Parent = cm.Edge[ed.Parent]
		}
		if ed.Bisected() {
			ed.Child[0] = cm.Edge[ed.Child[0]]
			ed.Child[1] = cm.Edge[ed.Child[1]]
			ed.Mid = cm.Vert[ed.Mid]
		}
		m.edgeByVerts[edgeKey(ed.V[0], ed.V[1])] = EdgeID(i)
	}
	for i := range m.Elems {
		t := &m.Elems[i]
		for j := range t.V {
			t.V[j] = cm.Vert[t.V[j]]
		}
		for j := range t.E {
			t.E[j] = cm.Edge[t.E[j]]
		}
		if t.Parent != InvalidElem {
			t.Parent = cm.Elem[t.Parent]
		}
		t.Root = cm.Elem[t.Root]
		kept := t.Children[:0]
		for _, c := range t.Children {
			if nc := cm.Elem[c]; nc != InvalidElem {
				kept = append(kept, nc)
			}
		}
		t.Children = kept
	}
	for i := range m.Faces {
		f := &m.Faces[i]
		for j := range f.V {
			f.V[j] = cm.Vert[f.V[j]]
		}
		for j := range f.E {
			f.E[j] = cm.Edge[f.E[j]]
		}
		if f.Parent != InvalidFace {
			f.Parent = cm.Face[f.Parent]
		}
		kept := f.Children[:0]
		for _, c := range f.Children {
			if nc := cm.Face[c]; nc != InvalidFace {
				kept = append(kept, nc)
			}
		}
		f.Children = kept
	}
	for i := range m.Bisections {
		b := &m.Bisections[i]
		b.Edge = cm.Edge[b.Edge]
		b.A = cm.Vert[b.A]
		b.B = cm.Vert[b.B]
		b.Mid = cm.Vert[b.Mid]
	}
	return cm
}
