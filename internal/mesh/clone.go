package mesh

// Restore reconstructs a Mesh from raw object slabs (as read from a
// serialized snapshot), rebuilding the edge-lookup map and the active
// counters. The slabs are adopted, not copied.
func Restore(verts []Vertex, edges []Edge, elems []Element, faces []BoundaryFace) *Mesh {
	m := &Mesh{
		Verts:       verts,
		Edges:       edges,
		Elems:       elems,
		Faces:       faces,
		edgeByVerts: make(map[[2]VertID]EdgeID, len(edges)),
	}
	for i := range edges {
		e := &edges[i]
		if e.Dead {
			continue
		}
		m.edgeByVerts[edgeKey(e.V[0], e.V[1])] = EdgeID(i)
		if !e.Bisected() {
			m.nActiveEdges++
		}
	}
	for i := range elems {
		if elems[i].Active() {
			m.nActiveElems++
		}
	}
	for i := range faces {
		if faces[i].Active() {
			m.nActiveFaces++
		}
	}
	return m
}

// Clone returns a deep copy of the mesh. The experiment harness uses this
// to run one generated mesh through many independent adaption/partition
// scenarios without regenerating it.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		Verts:        make([]Vertex, len(m.Verts)),
		Edges:        make([]Edge, len(m.Edges)),
		Elems:        make([]Element, len(m.Elems)),
		Faces:        make([]BoundaryFace, len(m.Faces)),
		Bisections:   append([]Bisection(nil), m.Bisections...),
		edgeByVerts:  make(map[[2]VertID]EdgeID, len(m.edgeByVerts)),
		nActiveElems: m.nActiveElems,
		nActiveEdges: m.nActiveEdges,
		nActiveFaces: m.nActiveFaces,
	}
	for i := range m.Verts {
		c.Verts[i] = m.Verts[i]
		c.Verts[i].Edges = append([]EdgeID(nil), m.Verts[i].Edges...)
	}
	for i := range m.Edges {
		c.Edges[i] = m.Edges[i]
		c.Edges[i].Elems = append([]ElemID(nil), m.Edges[i].Elems...)
	}
	for i := range m.Elems {
		c.Elems[i] = m.Elems[i]
		c.Elems[i].Children = append([]ElemID(nil), m.Elems[i].Children...)
	}
	for i := range m.Faces {
		c.Faces[i] = m.Faces[i]
		c.Faces[i].Children = append([]FaceID(nil), m.Faces[i].Children...)
	}
	for k, v := range m.edgeByVerts {
		c.edgeByVerts[k] = v
	}
	return c
}
