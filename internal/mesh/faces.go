package mesh

// AddChildFace creates an active boundary face over the three vertices as
// a child of parent, inheriting its patch. The caller must deactivate the
// parent (DeactivateFace) once all children are added.
func (m *Mesh) AddChildFace(parent FaceID, v0, v1, v2 VertID) FaceID {
	id := m.AddBoundaryFace(v0, v1, v2, m.Faces[parent].Patch)
	m.Faces[id].Parent = parent
	m.Faces[parent].Children = append(m.Faces[parent].Children, id)
	return id
}

// DeactivateFace marks a face as subdivided (it must have children by the
// time the mesh is validated).
func (m *Mesh) DeactivateFace(f FaceID) { m.nActiveFaces-- }

// ReactivateFace clears the child list of a subdivided face, making it an
// active leaf again (coarsening reinstatement).
func (m *Mesh) ReactivateFace(f FaceID) {
	m.Faces[f].Children = m.Faces[f].Children[:0]
	m.nActiveFaces++
}

// KillFace marks an active leaf face dead so compaction drops it.
func (m *Mesh) KillFace(f FaceID) {
	if m.Faces[f].Active() {
		m.nActiveFaces--
	}
	m.Faces[f].Dead = true
}
