package mesh

import "fmt"

// Check verifies the structural invariants of the mesh and returns the
// first violation found, or nil. It is O(mesh size) and intended for tests
// and debugging, not hot paths.
//
// Invariants checked:
//   - every active element references 6 live, unbisected edges whose
//     endpoints match the element's vertices per ElemEdgeVerts;
//   - every edge's element incidence list contains exactly the active
//     elements referencing it;
//   - every edge appears on both endpoints' vertex incidence lists;
//   - bisected edges have consistent children and midpoint;
//   - active elements have non-negative volume;
//   - active boundary faces reference live edges of the face's vertices;
//   - size counters match a full recount.
func (m *Mesh) Check() error {
	// Recount incidence from scratch.
	inc := make(map[EdgeID][]ElemID)
	nActiveElems := 0
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		nActiveElems++
		for le, lv := range ElemEdgeVerts {
			e := t.E[le]
			if e == InvalidEdge {
				return fmt.Errorf("elem %d: missing edge %d", i, le)
			}
			ed := &m.Edges[e]
			if ed.Dead {
				return fmt.Errorf("elem %d: edge %d (local %d) is dead", i, e, le)
			}
			if ed.Bisected() {
				return fmt.Errorf("elem %d: edge %d (local %d) is bisected but element is active", i, e, le)
			}
			a, b := t.V[lv[0]], t.V[lv[1]]
			if edgeKey(a, b) != edgeKey(ed.V[0], ed.V[1]) {
				return fmt.Errorf("elem %d: edge %d endpoints %v != element vertices (%d,%d)", i, e, ed.V, a, b)
			}
			inc[e] = append(inc[e], ElemID(i))
		}
		if v := m.ElemVolume(ElemID(i)); v < 0 {
			return fmt.Errorf("elem %d: negative volume %g", i, v)
		}
	}
	if nActiveElems != m.nActiveElems {
		return fmt.Errorf("active element counter %d != recount %d", m.nActiveElems, nActiveElems)
	}

	nActiveEdges := 0
	for i := range m.Edges {
		ed := &m.Edges[i]
		if ed.Dead {
			if len(ed.Elems) != 0 {
				return fmt.Errorf("edge %d: dead but has %d incident elements", i, len(ed.Elems))
			}
			continue
		}
		if !ed.Bisected() {
			nActiveEdges++
		}
		want := inc[EdgeID(i)]
		if len(want) != len(ed.Elems) {
			return fmt.Errorf("edge %d: incidence list has %d entries, recount %d", i, len(ed.Elems), len(want))
		}
		seen := make(map[ElemID]bool, len(want))
		for _, el := range want {
			seen[el] = true
		}
		for _, el := range ed.Elems {
			if !seen[el] {
				return fmt.Errorf("edge %d: stale incidence entry elem %d", i, el)
			}
		}
		if ed.Bisected() {
			if ed.Mid == InvalidVert {
				return fmt.Errorf("edge %d: bisected without midpoint", i)
			}
			c0, c1 := &m.Edges[ed.Child[0]], &m.Edges[ed.Child[1]]
			if edgeKey(c0.V[0], c0.V[1]) != edgeKey(ed.V[0], ed.Mid) {
				return fmt.Errorf("edge %d: child 0 endpoints wrong", i)
			}
			if edgeKey(c1.V[0], c1.V[1]) != edgeKey(ed.Mid, ed.V[1]) {
				return fmt.Errorf("edge %d: child 1 endpoints wrong", i)
			}
			if len(ed.Elems) != 0 {
				return fmt.Errorf("edge %d: bisected but still bounds %d active elements", i, len(ed.Elems))
			}
		}
		// Vertex incidence must contain this edge.
		for _, v := range ed.V {
			found := false
			for _, e := range m.Verts[v].Edges {
				if e == EdgeID(i) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("edge %d: missing from vertex %d incidence list", i, v)
			}
		}
	}
	if nActiveEdges != m.nActiveEdges {
		return fmt.Errorf("active edge counter %d != recount %d", m.nActiveEdges, nActiveEdges)
	}

	nActiveFaces := 0
	for i := range m.Faces {
		f := &m.Faces[i]
		if !f.Active() {
			continue
		}
		nActiveFaces++
		pairs := [3][2]VertID{{f.V[0], f.V[1]}, {f.V[0], f.V[2]}, {f.V[1], f.V[2]}}
		for j, p := range pairs {
			e := f.E[j]
			if e == InvalidEdge {
				return fmt.Errorf("face %d: missing edge %d", i, j)
			}
			ed := &m.Edges[e]
			if ed.Dead {
				return fmt.Errorf("face %d: edge %d dead", i, e)
			}
			if edgeKey(p[0], p[1]) != edgeKey(ed.V[0], ed.V[1]) {
				return fmt.Errorf("face %d: edge %d endpoints mismatch", i, e)
			}
		}
	}
	if nActiveFaces != m.nActiveFaces {
		return fmt.Errorf("active face counter %d != recount %d", m.nActiveFaces, nActiveFaces)
	}

	// Vertex incidence lists must reference live edges that contain the vertex.
	for i := range m.Verts {
		v := &m.Verts[i]
		if v.Dead {
			if len(v.Edges) != 0 {
				return fmt.Errorf("vertex %d: dead but has incident edges", i)
			}
			continue
		}
		for _, e := range v.Edges {
			ed := &m.Edges[e]
			if ed.Dead {
				return fmt.Errorf("vertex %d: incident edge %d is dead", i, e)
			}
			if ed.V[0] != VertID(i) && ed.V[1] != VertID(i) {
				return fmt.Errorf("vertex %d: incident edge %d does not contain it", i, e)
			}
		}
	}
	return nil
}
