// Package mesh implements the edge-based tetrahedral mesh data structures
// of the 3D_TAG adaption scheme (Biswas & Strawn; Biswas, Oliker & Sohn,
// SC'96).
//
// Elements and boundary faces are defined by their edges rather than only
// by their vertices, and two incidence lists are maintained — every vertex
// keeps the list of edges incident upon it, and every edge keeps the list
// of elements that share it. The paper notes these lists "eliminate
// extensive searches and are crucial to the efficiency of the overall
// adaption scheme".
//
// Refinement history is retained: when an element is subdivided or an edge
// is bisected, the parent object is deactivated but kept so that
// coarsening can reinstate it without reconstruction ("the parent edges
// and elements are retained at each refinement step"). The Compact method
// models the renumbering compaction the paper performs after coarsening.
package mesh

import (
	"fmt"

	"plum/internal/geom"
)

// VertID identifies a vertex within a Mesh.
type VertID int32

// EdgeID identifies an edge within a Mesh.
type EdgeID int32

// ElemID identifies a tetrahedral element within a Mesh.
type ElemID int32

// FaceID identifies an external boundary face within a Mesh.
type FaceID int32

// Invalid marks an absent object reference (no parent, no child, …).
const (
	InvalidVert VertID = -1
	InvalidEdge EdgeID = -1
	InvalidElem ElemID = -1
	InvalidFace FaceID = -1
)

// ElemEdgeVerts maps the canonical local edge number of a tetrahedron to
// the pair of local vertex numbers it connects:
//
//	edge 0: (0,1)  edge 1: (0,2)  edge 2: (0,3)
//	edge 3: (1,2)  edge 4: (1,3)  edge 5: (2,3)
var ElemEdgeVerts = [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}

// ElemFaceVerts maps the canonical local face number of a tetrahedron to
// its three local vertex numbers. Face f is opposite vertex (3-f) under
// this numbering:
//
//	face 0: (0,1,2)  face 1: (0,1,3)  face 2: (0,2,3)  face 3: (1,2,3)
var ElemFaceVerts = [4][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}

// ElemFaceEdges maps the canonical local face number to its three local
// edge numbers (consistent with ElemEdgeVerts and ElemFaceVerts).
var ElemFaceEdges = [4][3]int{{0, 1, 3}, {0, 2, 4}, {1, 2, 5}, {3, 4, 5}}

// LocalEdge returns the local edge number (0..5) connecting local vertices
// a and b of a tetrahedron, or -1 if a == b.
func LocalEdge(a, b int) int {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == 0 && b == 1:
		return 0
	case a == 0 && b == 2:
		return 1
	case a == 0 && b == 3:
		return 2
	case a == 1 && b == 2:
		return 3
	case a == 1 && b == 3:
		return 4
	case a == 2 && b == 3:
		return 5
	}
	return -1
}

// Vertex is a mesh vertex. Pos is its position; Edges is the incidence
// list of all edges meeting at this vertex.
type Vertex struct {
	Pos   geom.Vec3
	Edges []EdgeID
	Dead  bool
}

// Edge is a mesh edge connecting two vertices. It records the elements
// sharing it (incidence list), and — once bisected — the midpoint vertex
// and its two child edges. An edge with children is inactive: it no longer
// bounds any active element, but it is retained for coarsening.
type Edge struct {
	V      [2]VertID
	Elems  []ElemID // active elements sharing this edge
	Parent EdgeID
	Child  [2]EdgeID // (V[0],Mid) and (Mid,V[1]); InvalidEdge if not bisected
	Mid    VertID    // midpoint vertex; InvalidVert if not bisected
	Dead   bool
}

// Bisected reports whether the edge has been split into two child edges.
func (e *Edge) Bisected() bool { return e.Child[0] != InvalidEdge }

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e *Edge) Other(v VertID) VertID {
	switch v {
	case e.V[0]:
		return e.V[1]
	case e.V[1]:
		return e.V[0]
	}
	panic("mesh: vertex not an endpoint of edge")
}

// Element is a tetrahedron defined by 4 vertices and, canonically, by its
// 6 edges (see ElemEdgeVerts). Parent/Children record the refinement tree;
// Root is the initial-mesh ancestor used as the dual-graph vertex the
// element contributes weight to. An element with children is inactive.
type Element struct {
	V        [4]VertID
	E        [6]EdgeID
	Parent   ElemID
	Children []ElemID
	Root     ElemID
	Level    int32
	Dead     bool
}

// Active reports whether the element is a live leaf of the refinement
// forest (participates in the computational mesh).
func (t *Element) Active() bool { return !t.Dead && len(t.Children) == 0 }

// BoundaryFace is a triangular face on the external boundary of the mesh.
// Patch labels the boundary patch it belongs to (inflow, wall, …).
type BoundaryFace struct {
	V        [3]VertID
	E        [3]EdgeID
	Patch    int32
	Parent   FaceID
	Children []FaceID
	Dead     bool
}

// Active reports whether the boundary face is a live leaf.
func (f *BoundaryFace) Active() bool { return !f.Dead && len(f.Children) == 0 }

// Bisection records one edge bisection, in creation order, so that
// vertex-stored solution fields can be interpolated after adaption: the
// value at Mid is the average of the values at A and B (the paper linearly
// interpolates the solution vector at the mid-point).
type Bisection struct {
	Edge EdgeID
	A, B VertID
	Mid  VertID
}

// Mesh is an adaptive tetrahedral mesh with full refinement history.
// The zero value is not usable; call New.
type Mesh struct {
	Verts []Vertex
	Edges []Edge
	Elems []Element
	Faces []BoundaryFace

	// Bisections is the ordered log of edge bisections since the last
	// call to ResetLog, used for solution interpolation.
	Bisections []Bisection

	edgeByVerts map[[2]VertID]EdgeID

	nActiveElems int
	nActiveEdges int
	nActiveFaces int
}

// New returns an empty mesh with capacity hints for nv vertices, ne edges
// and nt elements.
func New(nv, ne, nt int) *Mesh {
	return &Mesh{
		Verts:       make([]Vertex, 0, nv),
		Edges:       make([]Edge, 0, ne),
		Elems:       make([]Element, 0, nt),
		edgeByVerts: make(map[[2]VertID]EdgeID, ne),
	}
}

// AddVertex appends a vertex at p and returns its id.
func (m *Mesh) AddVertex(p geom.Vec3) VertID {
	m.Verts = append(m.Verts, Vertex{Pos: p})
	return VertID(len(m.Verts) - 1)
}

func edgeKey(a, b VertID) [2]VertID {
	if a > b {
		a, b = b, a
	}
	return [2]VertID{a, b}
}

// FindEdge returns the edge connecting a and b, or InvalidEdge if none
// exists.
func (m *Mesh) FindEdge(a, b VertID) EdgeID {
	if id, ok := m.edgeByVerts[edgeKey(a, b)]; ok {
		return id
	}
	return InvalidEdge
}

// AddEdge returns the id of the edge connecting a and b, creating it if it
// does not exist. New edges are active and registered on both vertices'
// incidence lists.
func (m *Mesh) AddEdge(a, b VertID) EdgeID {
	if a == b {
		panic("mesh: degenerate edge")
	}
	key := edgeKey(a, b)
	if id, ok := m.edgeByVerts[key]; ok {
		return id
	}
	id := EdgeID(len(m.Edges))
	m.Edges = append(m.Edges, Edge{
		V:      key,
		Parent: InvalidEdge,
		Child:  [2]EdgeID{InvalidEdge, InvalidEdge},
		Mid:    InvalidVert,
	})
	m.edgeByVerts[key] = id
	m.Verts[a].Edges = append(m.Verts[a].Edges, id)
	m.Verts[b].Edges = append(m.Verts[b].Edges, id)
	m.nActiveEdges++
	return id
}

// AddElement creates an active tetrahedron over the four vertices,
// creating any missing edges, and registers it on the incidence lists of
// its six edges. The vertex order is normalized so the signed volume is
// non-negative. root is the dual-graph vertex the element belongs to; pass
// InvalidElem to make the element its own root (initial-mesh elements).
func (m *Mesh) AddElement(v0, v1, v2, v3 VertID, parent ElemID, root ElemID, level int32) ElemID {
	vol := geom.TetVolume(m.Verts[v0].Pos, m.Verts[v1].Pos, m.Verts[v2].Pos, m.Verts[v3].Pos)
	if vol < 0 {
		v2, v3 = v3, v2
	}
	id := ElemID(len(m.Elems))
	if root == InvalidElem {
		root = id
	}
	el := Element{
		V:      [4]VertID{v0, v1, v2, v3},
		Parent: parent,
		Root:   root,
		Level:  level,
	}
	for i, lv := range ElemEdgeVerts {
		e := m.AddEdge(el.V[lv[0]], el.V[lv[1]])
		el.E[i] = e
		m.Edges[e].Elems = append(m.Edges[e].Elems, id)
	}
	m.Elems = append(m.Elems, el)
	m.nActiveElems++
	return id
}

// AddBoundaryFace creates an active boundary triangle over the three
// vertices (whose edges must already exist) with the given patch label.
func (m *Mesh) AddBoundaryFace(v0, v1, v2 VertID, patch int32) FaceID {
	id := FaceID(len(m.Faces))
	f := BoundaryFace{
		V:      [3]VertID{v0, v1, v2},
		Patch:  patch,
		Parent: InvalidFace,
	}
	pairs := [3][2]VertID{{v0, v1}, {v0, v2}, {v1, v2}}
	for i, p := range pairs {
		e := m.FindEdge(p[0], p[1])
		if e == InvalidEdge {
			panic("mesh: boundary face over missing edge")
		}
		f.E[i] = e
	}
	m.Faces = append(m.Faces, f)
	m.nActiveFaces++
	return id
}

// removeFromElemList removes el from edge e's incidence list.
func (m *Mesh) removeFromElemList(e EdgeID, el ElemID) {
	lst := m.Edges[e].Elems
	for i, x := range lst {
		if x == el {
			lst[i] = lst[len(lst)-1]
			m.Edges[e].Elems = lst[:len(lst)-1]
			return
		}
	}
}

// BisectEdge splits edge e at its midpoint, creating the midpoint vertex
// and two active child edges, and deactivating e. It is idempotent: if e
// is already bisected it returns the existing midpoint. The bisection is
// appended to the Bisections log.
func (m *Mesh) BisectEdge(e EdgeID) VertID {
	ed := &m.Edges[e]
	if ed.Bisected() {
		return ed.Mid
	}
	a, b := ed.V[0], ed.V[1]
	mid := m.AddVertex(m.Verts[a].Pos.Mid(m.Verts[b].Pos))
	c0 := m.AddEdge(a, mid)
	c1 := m.AddEdge(mid, b)
	ed = &m.Edges[e] // AddEdge may have grown the slice
	ed.Child = [2]EdgeID{c0, c1}
	ed.Mid = mid
	m.Edges[c0].Parent = e
	m.Edges[c1].Parent = e
	m.nActiveEdges-- // e becomes inactive
	m.Bisections = append(m.Bisections, Bisection{Edge: e, A: a, B: b, Mid: mid})
	return mid
}

// HalfEdge returns the child of bisected edge e that has v as an endpoint.
func (m *Mesh) HalfEdge(e EdgeID, v VertID) EdgeID {
	ed := &m.Edges[e]
	if !ed.Bisected() {
		panic("mesh: HalfEdge on unbisected edge")
	}
	if v == ed.V[0] {
		return ed.Child[0]
	}
	if v == ed.V[1] {
		return ed.Child[1]
	}
	panic("mesh: HalfEdge vertex not an endpoint")
}

// DeactivateElement removes el from its edges' incidence lists. The caller
// is responsible for recording children (subdivision) or marking it dead
// (coarsening removal).
func (m *Mesh) DeactivateElement(el ElemID) {
	for _, e := range m.Elems[el].E {
		m.removeFromElemList(e, el)
	}
	m.nActiveElems--
}

// ReactivateElement re-registers a previously subdivided element el on its
// edges' incidence lists and clears its child list. Its six edges must be
// active again (or about to be re-marked for refinement by the caller).
func (m *Mesh) ReactivateElement(el ElemID) {
	t := &m.Elems[el]
	t.Children = t.Children[:0]
	for _, e := range t.E {
		m.Edges[e].Elems = append(m.Edges[e].Elems, el)
	}
	m.nActiveElems++
}

// KillElement marks a (deactivated) element dead so compaction drops it.
func (m *Mesh) KillElement(el ElemID) {
	m.Elems[el].Dead = true
}

// ReactivateEdge makes a bisected edge active again, discarding its
// children (which must already be unused) and midpoint linkage.
func (m *Mesh) ReactivateEdge(e EdgeID) {
	ed := &m.Edges[e]
	if !ed.Bisected() {
		return
	}
	ed.Child = [2]EdgeID{InvalidEdge, InvalidEdge}
	ed.Mid = InvalidVert
	m.nActiveEdges++
}

// KillEdge marks edge e dead and removes it from its endpoints' incidence
// lists. The edge must not bound any active element.
func (m *Mesh) KillEdge(e EdgeID) {
	ed := &m.Edges[e]
	if len(ed.Elems) != 0 {
		panic("mesh: killing edge still in use")
	}
	if !ed.Dead && !ed.Bisected() {
		m.nActiveEdges--
	}
	ed.Dead = true
	for _, v := range ed.V {
		lst := m.Verts[v].Edges
		for i, x := range lst {
			if x == e {
				lst[i] = lst[len(lst)-1]
				m.Verts[v].Edges = lst[:len(lst)-1]
				break
			}
		}
	}
	delete(m.edgeByVerts, edgeKey(ed.V[0], ed.V[1]))
}

// KillVertex marks vertex v dead. Its incidence list must be empty.
func (m *Mesh) KillVertex(v VertID) {
	if len(m.Verts[v].Edges) != 0 {
		panic("mesh: killing vertex with live edges")
	}
	m.Verts[v].Dead = true
}

// NumVerts returns the number of live vertices.
func (m *Mesh) NumVerts() int {
	n := 0
	for i := range m.Verts {
		if !m.Verts[i].Dead {
			n++
		}
	}
	return n
}

// NumActiveElems returns the number of active (leaf) elements — the
// "Elements" column of the paper's Table 1.
func (m *Mesh) NumActiveElems() int { return m.nActiveElems }

// NumActiveEdges returns the number of active edges — the "Edges" column
// of the paper's Table 1.
func (m *Mesh) NumActiveEdges() int { return m.nActiveEdges }

// NumActiveFaces returns the number of active boundary faces.
func (m *Mesh) NumActiveFaces() int { return m.nActiveFaces }

// NumElemsTotal returns the total number of non-dead elements in all
// refinement trees (leaves plus retained parents); per element root this
// is the Wremap weight of the paper's dual graph.
func (m *Mesh) NumElemsTotal() int {
	n := 0
	for i := range m.Elems {
		if !m.Elems[i].Dead {
			n++
		}
	}
	return n
}

// ElemVolume returns the volume of element el.
func (m *Mesh) ElemVolume(el ElemID) float64 {
	t := &m.Elems[el]
	return geom.TetVolume(m.Verts[t.V[0]].Pos, m.Verts[t.V[1]].Pos, m.Verts[t.V[2]].Pos, m.Verts[t.V[3]].Pos)
}

// ElemCentroid returns the centroid of element el.
func (m *Mesh) ElemCentroid(el ElemID) geom.Vec3 {
	t := &m.Elems[el]
	return geom.TetCentroid(m.Verts[t.V[0]].Pos, m.Verts[t.V[1]].Pos, m.Verts[t.V[2]].Pos, m.Verts[t.V[3]].Pos)
}

// EdgeMid returns the midpoint position of edge e.
func (m *Mesh) EdgeMid(e EdgeID) geom.Vec3 {
	ed := &m.Edges[e]
	return m.Verts[ed.V[0]].Pos.Mid(m.Verts[ed.V[1]].Pos)
}

// EdgeLength returns the length of edge e.
func (m *Mesh) EdgeLength(e EdgeID) float64 {
	ed := &m.Edges[e]
	return m.Verts[ed.V[0]].Pos.Dist(m.Verts[ed.V[1]].Pos)
}

// LocalEdgeOf returns the local index (0..5) of edge e within element el,
// or -1 if el does not reference e.
func (m *Mesh) LocalEdgeOf(el ElemID, e EdgeID) int {
	for i, x := range m.Elems[el].E {
		if x == e {
			return i
		}
	}
	return -1
}

// TotalVolume returns the sum of active element volumes.
func (m *Mesh) TotalVolume() float64 {
	v := 0.0
	for i := range m.Elems {
		if m.Elems[i].Active() {
			v += m.ElemVolume(ElemID(i))
		}
	}
	return v
}

// ResetLog clears the bisection log (call after consuming it for solution
// interpolation).
func (m *Mesh) ResetLog() { m.Bisections = m.Bisections[:0] }

// Stats summarizes mesh size.
type Stats struct {
	Verts, ActiveEdges, ActiveElems, ActiveFaces int
	TotalElems                                   int
}

// Stats returns current size counters.
func (m *Mesh) Stats() Stats {
	return Stats{
		Verts:       m.NumVerts(),
		ActiveEdges: m.nActiveEdges,
		ActiveElems: m.nActiveElems,
		ActiveFaces: m.nActiveFaces,
		TotalElems:  m.NumElemsTotal(),
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("verts=%d edges=%d elems=%d faces=%d (tree total %d)",
		s.Verts, s.ActiveEdges, s.ActiveElems, s.ActiveFaces, s.TotalElems)
}
