// Quickstart: the smallest complete tour of the library — build a mesh,
// refine a region, watch the load imbalance appear, and let the framework
// repartition, reassign, and remap it away.
package main

import (
	"fmt"
	"log"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/geom"
	"plum/internal/meshgen"
)

func main() {
	// An 8×8×8 box of tetrahedra (3,072 elements) on 8 processors.
	m := meshgen.Box(8, 8, 8, geom.Vec3{X: 1, Y: 1, Z: 1})
	fw, err := core.New(m, nil, core.DefaultConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial:", m.Stats())

	// Refine a corner twice — the classic way to unbalance a partition.
	corner := geom.Sphere{Center: geom.Vec3{}, Radius: 0.5}
	rep, err := fw.Cycle(func(a *adapt.Adaptor) { a.MarkRegion(corner, adapt.MarkRefine) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adaption: %s\n", m.Stats())
	fmt.Printf("imbalance Wmax/Wavg: %.2f\n", rep.Balance.ImbalanceBefore)

	if rep.Balance.Accepted {
		fmt.Printf("rebalanced to %.2f by moving %d elements in %d sets\n",
			rep.Balance.ImbalanceAfter, rep.Balance.MoveC, rep.Balance.MoveN)
		fmt.Printf("decision: gain %.3gs > cost %.3gs on the SP2 model\n",
			rep.Balance.Gain, rep.Balance.Cost)
	} else if rep.Balance.Repartitioned {
		fmt.Println("repartitioning computed but the remap was not worth its cost")
	} else {
		fmt.Println("load already balanced; nothing to do")
	}

	// Coarsening restores the initial mesh exactly.
	fw.A.MarkRegion(geom.All{}, adapt.MarkCoarsen)
	fw.A.Coarsen()
	fmt.Println("after full coarsening:", m.Stats())
}
