// Shock: an unsteady computation with a travelling planar shock — the
// workload that motivates *dynamic* load balancing. The refined band must
// follow the front: each cycle refines ahead of the shock and coarsens
// behind it, so the load distribution keeps shifting and the balancer is
// exercised repeatedly (the paper: "with repeated adaption, the gains
// realized with load balancing may be even more significant").
package main

import (
	"fmt"
	"log"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/solver"
)

func main() {
	m := meshgen.Box(10, 10, 10, geom.Vec3{X: 4, Y: 1, Z: 1})
	front := 0.5
	sol := solver.New(m, solver.PlanarShock(front, 0.08))

	cfg := core.DefaultConfig(8)
	fw, err := core.New(m, sol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shock tube: %s, P=%d\n", m.Stats(), cfg.P)

	var accepted, rejected int
	for step := 1; step <= 6; step++ {
		// Advance the front and rebuild the solution around it (the
		// proxy for time integration).
		front += 0.5
		x0 := front
		for i := range m.Verts {
			if !m.Verts[i].Dead {
				sol.U[i] = solver.PlanarShock(x0, 0.08)(m.Verts[i].Pos)
			}
		}

		rep, err := fw.Cycle(func(a *adapt.Adaptor) {
			errv := sol.EdgeError()
			hi := 0.0
			for _, e := range errv {
				if e > hi {
					hi = e
				}
			}
			a.MarkError(errv, 0.3*hi, 0.01*hi)
		})
		if err != nil {
			log.Fatal(err)
		}
		// Coarsen the wake the front left behind.
		wake := geom.AABB{Min: geom.Vec3{X: 0}, Max: geom.Vec3{X: x0 - 0.6, Y: 1, Z: 1}}
		fw.A.MarkRegion(wake, adapt.MarkCoarsen)
		fw.A.Coarsen()
		fw.S.SyncAfterAdaption()

		b := rep.Balance
		state := "balanced"
		switch {
		case b.Accepted:
			state = fmt.Sprintf("remapped %d elems", b.MoveC)
			accepted++
		case b.Repartitioned:
			state = "remap rejected"
			rejected++
		}
		fmt.Printf("step %d: front at x=%.1f, %6d elems, imbalance %.2f (%s)\n",
			step, x0, m.NumActiveElems(), b.ImbalanceBefore, state)
	}
	fmt.Printf("summary: %d remaps accepted, %d rejected by the gain/cost rule\n", accepted, rejected)
	if err := m.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh invariants: OK")
}
