// Rotor: the paper's motivating scenario — a helicopter-rotor acoustics
// computation (Purcell's UH-1H experiment as simulated by Strawn, Biswas &
// Garceau) where an acoustic feature near the blade tip demands highly
// localized refinement. Error-indicator-driven adaption concentrates
// elements around the feature, severely unbalancing the processors, and
// the global load balancer repairs it each cycle.
package main

import (
	"fmt"
	"log"
	"math"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/solver"
)

func main() {
	rp := meshgen.RotorParams{
		NR: 12, NTheta: 14, NZ: 12,
		R0: 0.4, R1: 2.4, Sweep: 1.25 * math.Pi, Height: 1.2,
	}
	m := meshgen.RotorDisk(rp)

	// Acoustic source at the blade-tip region: three-quarters radius,
	// mid-sweep.
	tip := geom.Vec3{
		X: 0.75 * rp.R1 * math.Cos(rp.Sweep/2),
		Y: 0.75 * rp.R1 * math.Sin(rp.Sweep/2),
	}
	sol := solver.New(m, solver.GaussianPulse(tip, 0.25))

	cfg := core.DefaultConfig(16)
	fw, err := core.New(m, sol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rotor mesh: %s, P=%d\n", m.Stats(), cfg.P)

	for cycle := 1; cycle <= 3; cycle++ {
		rep, err := fw.Cycle(func(a *adapt.Adaptor) {
			errv := sol.EdgeError()
			hi := 0.0
			for _, e := range errv {
				if e > hi {
					hi = e
				}
			}
			// Refine the sharpest 'shock-like' edges, coarsen the
			// quietest far field (never below the initial mesh).
			a.MarkError(errv, 0.35*hi, 0.005*hi)
		})
		if err != nil {
			log.Fatal(err)
		}
		b := rep.Balance
		fmt.Printf("cycle %d: %7d elems, +%d refined, imbalance %.2f",
			cycle, m.NumActiveElems(), rep.Refine.NewElems, b.ImbalanceBefore)
		if b.Accepted {
			fmt.Printf(" -> %.2f (moved %d elements)", b.ImbalanceAfter, b.MoveC)
		}
		fmt.Println()
	}

	// The finalization phase of the paper: reassemble a global mesh on
	// the host for post-processing/visualization.
	res, err := fw.D.Finalize(cfg.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finalized global mesh: %d elements gathered (%.3g s on the SP2 model)\n",
		res.Elems, res.Time)
	if err := m.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh invariants: OK")
}
