// Remapdemo: a worked similarity-matrix example in the style of the
// paper's Figs. 5-7. It builds a small unbalanced scenario, prints the
// similarity matrix S, runs both the heuristic mark-and-map algorithm and
// the optimal Hungarian matching, and walks through the movement cost
// C = ΣS − 𝒥 and set count N that feed the gain/cost acceptance rule.
package main

import (
	"fmt"
	"log"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/meshgen"
	"plum/internal/partition"
	"plum/internal/remap"
)

func main() {
	const P, F = 4, 2

	// A refined corner on a small box gives a naturally skewed Wremap
	// distribution.
	m := meshgen.Box(6, 6, 6, geom.Vec3{X: 1, Y: 1, Z: 1})
	g := dual.Build(m)
	oldAsg := partition.Partition(g, P, partition.MethodInertial)
	a := adapt.New(m)
	a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
	a.Refine()
	g.UpdateWeights(m)

	newPart := partition.Partition(g, P*F, partition.MethodInertial)
	sim := remap.Build(oldAsg, newPart, g.Wremap, P, F)

	fmt.Printf("similarity matrix S (%d processors × %d partitions):\n", P, P*F)
	for i, row := range sim.S {
		fmt.Printf("  proc %d:", i)
		for _, w := range row {
			fmt.Printf("%7d", w)
		}
		fmt.Println()
	}
	fmt.Printf("total remapping weight ΣS = %d\n\n", sim.Total())

	mpH, objH := sim.Heuristic()
	cH, nH := sim.MoveStats(mpH)
	fmt.Printf("heuristic mapping (partition -> processor): %v\n", mpH)
	fmt.Printf("  objective 𝒥 = %d, moved C = %d, sets N = %d (%d matrix ops)\n\n",
		objH, cH, nH, sim.LastOps)

	mpO, objO := sim.Optimal()
	cO, nO := sim.MoveStats(mpO)
	fmt.Printf("optimal mapping   (partition -> processor): %v\n", mpO)
	fmt.Printf("  objective 𝒥 = %d, moved C = %d, sets N = %d (%d matrix ops)\n\n",
		objO, cO, nO, sim.LastOps)

	fmt.Printf("heuristic is within %.2f%% of the optimal objective\n",
		100*(1-float64(objH)/float64(objO)))

	// The acceptance rule with SP2 constants.
	cost := remap.DefaultSP2()
	gain := cost.Gain(1200, 800) // example Wmax improvement
	rc := cost.RedistCost(cH, nH)
	fmt.Printf("example decision: gain %.4gs vs redistribution cost %.4gs -> accept=%v\n",
		gain, rc, gain > rc)

	if err := sim.Validate(mpH); err != nil {
		log.Fatal(err)
	}
	if err := sim.Validate(mpO); err != nil {
		log.Fatal(err)
	}
}
