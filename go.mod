module plum

go 1.24
