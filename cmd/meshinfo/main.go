// Command meshinfo generates a mesh and prints its statistics: object
// counts, element quality histogram, dual-graph structure, and — for a
// given processor count — the shared-object overhead of the paper's
// initialization phase.
//
//	go run ./cmd/meshinfo                 # paper-scale rotor mesh
//	go run ./cmd/meshinfo -box 8          # 8×8×8 unit box
//	go run ./cmd/meshinfo -p 16           # include distribution stats
package main

import (
	"flag"
	"fmt"
	"log"

	"plum/internal/dual"
	"plum/internal/geom"
	"plum/internal/mesh"
	"plum/internal/meshgen"
	"plum/internal/par"
	"plum/internal/partition"
)

func main() {
	log.SetFlags(0)
	var (
		box = flag.Int("box", 0, "generate an n×n×n unit box instead of the rotor mesh")
		p   = flag.Int("p", 0, "processors for distribution statistics (0 = skip)")
	)
	flag.Parse()

	var m *mesh.Mesh
	if *box > 0 {
		m = meshgen.Box(*box, *box, *box, geom.Vec3{X: 1, Y: 1, Z: 1})
		fmt.Printf("mesh: %dx%dx%d unit box\n", *box, *box, *box)
	} else {
		m = meshgen.PaperMesh()
		fmt.Println("mesh: paper-scale rotor disk (UH-1H stand-in)")
	}
	fmt.Printf("  %s\n", m.Stats())
	fmt.Printf("  total volume: %.6g\n", m.TotalVolume())

	// Quality histogram (longest/shortest edge ratio).
	var buckets [6]int
	lims := []float64{1.5, 2, 3, 5, 10}
	for i := range m.Elems {
		t := &m.Elems[i]
		if !t.Active() {
			continue
		}
		ar := geom.TetAspectRatio(
			m.Verts[t.V[0]].Pos, m.Verts[t.V[1]].Pos,
			m.Verts[t.V[2]].Pos, m.Verts[t.V[3]].Pos)
		k := len(lims)
		for j, l := range lims {
			if ar <= l {
				k = j
				break
			}
		}
		buckets[k]++
	}
	fmt.Println("  aspect-ratio histogram:")
	labels := []string{"≤1.5", "≤2", "≤3", "≤5", "≤10", ">10"}
	for i, n := range buckets {
		fmt.Printf("    %-5s %d\n", labels[i], n)
	}

	g := dual.Build(m)
	fmt.Printf("dual graph: %d vertices, %d edges, ΣWcomp=%d ΣWremap=%d\n",
		g.N, g.NumEdges(), g.TotalWcomp(), g.TotalWremap())

	if *p > 1 {
		asg := partition.Partition(g, *p, partition.MethodMultilevel)
		d := par.NewDist(m, *p, asg)
		st := d.Init()
		fmt.Printf("distribution over P=%d:\n", *p)
		fmt.Printf("  imbalance Wmax/Wavg: %.4f\n", partition.Imbalance(g, asg, *p))
		fmt.Printf("  edge cut: %d\n", partition.EdgeCut(g, asg))
		fmt.Printf("  shared edges: %d, shared vertices: %d (%.1f%% of objects)\n",
			st.SharedEdges, st.SharedVerts, 100*st.SharedFraction)
	}

	if err := m.Check(); err != nil {
		log.Fatalf("mesh invariant violated: %v", err)
	}
	fmt.Println("mesh invariants: OK")
}
