// Command plum runs the full PLUM pipeline of the paper's Fig. 1 — flow
// solution, mesh adaption, preliminary evaluation, repartitioning,
// processor reassignment, gain/cost decision, and remapping — for a
// configurable number of cycles on the rotor-disk mesh, printing one
// report line per cycle.
//
//	go run ./cmd/plum -p 16 -cycles 3 -strategy local1
//	go run ./cmd/plum -p 64 -f 4 -mapper optimal -partitioner spectral
package main

import (
	_ "expvar" // /debug/vars on the -pprof server
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -pprof server
	"os"

	"plum/internal/adapt"
	"plum/internal/chunk"
	"plum/internal/core"
	"plum/internal/fault"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/meshgen"
	"plum/internal/obs"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/propagate"
	"plum/internal/refine"
	"plum/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plum: ")

	var (
		p       = flag.Int("p", 8, "number of processors")
		f       = flag.Int("f", 1, "partitions per processor (granularity factor)")
		cycles  = flag.Int("cycles", 3, "solution/adaption cycles to run")
		strat   = flag.String("strategy", "local1", "edge-marking strategy: local1, local2, random, error")
		thresh  = flag.Float64("threshold", 1.2, "imbalance threshold Wmax/Wavg for repartitioning")
		mapper  = flag.String("mapper", "heuristic", "processor reassignment: heuristic, optimal")
		parter  = flag.String("partitioner", "multilevel", "repartitioner: graphgrow, inertial, spectral, multilevel, morton, hilbert")
		refiner = flag.String("refiner", "", "boundary-refinement backend: bandfm, diffusion, fm (default: adaptive — band-FM when the effective worker count exceeds 1, classic FM on serial hosts and inside multilevel)")
		propg   = flag.String("propagator", "", "adaption frontier-propagation backend: bulksync, aggregated (default: bulksync)")
		exch    = flag.String("exchange", "", "remap payload exchange schedule: flat, aggregated, hierarchical (default: flat; hierarchical needs -nodesize > 1)")
		nodesz  = flag.Int("nodesize", 0, "ranks per node of the machine topology (0 = flat machine; >1 prices intra-node messages at the cheap node rates)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker goroutines for parallel partitioning and refinement phases (0 = GOMAXPROCS)")
		overlap = flag.Bool("overlap", false, "hide the balance pipeline behind the solver iterations and stream the remap payload one flow window at a time")
		faults  = flag.String("faults", "", "deterministic fault-injection plan, e.g. seed=7,rate=0.1,kinds=drop+corrupt or kinds=crash (empty = faults off)")
		retries = flag.Int("retries", -1, "recovery budget with -faults: extra send attempts per message and re-executions per failed remap window (-1 = default policy: 3 attempts, 2 window retries)")
		ckpt    = flag.Bool("checkpoint", false, "capture a copy-on-write cycle checkpoint before every balance pass (forced on by a crash-capable -faults plan)")
		deadln  = flag.Duration("deadline", 0, "wall-clock watchdog per comm stage; a stage that exceeds it aborts with a timeout error (0 = no watchdog)")
		scale   = flag.Float64("scale", 1.0, "mesh scale factor (1.0 = paper's 61k elements)")
		verbose = flag.Bool("v", false, "print adaption phase breakdowns")
		traceF  = flag.String("trace", "", "write the run's deterministic per-stage trace to this file (byte-identical at any -workers)")
		traceFm = flag.String("trace-format", "perfetto", "trace export format: perfetto (Chrome/Perfetto trace-event JSON) or jsonl")
		metricF = flag.String("metrics", "", "write a Prometheus text-format metrics dump to this file")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *traceFm != "perfetto" && *traceFm != "jsonl" {
		log.Fatalf("unknown -trace-format %q (have perfetto, jsonl)", *traceFm)
	}
	if *pprofA != "" {
		go func() { log.Printf("pprof server: %v", http.ListenAndServe(*pprofA, nil)) }()
	}

	cfg := core.DefaultConfig(*p)
	cfg.F = *f
	cfg.ImbalanceThreshold = *thresh
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Overlap = *overlap
	switch *mapper {
	case "heuristic":
		cfg.Mapper = core.MapperHeuristic
	case "optimal":
		cfg.Mapper = core.MapperOptimal
	default:
		log.Fatalf("unknown mapper %q", *mapper)
	}
	method, ok := partition.MethodByName(*parter)
	if !ok {
		log.Fatalf("unknown partitioner %q", *parter)
	}
	cfg.Method = method
	if _, ok := refine.ByName(*refiner, *workers); !ok {
		log.Fatalf("unknown refiner %q (have %v)", *refiner, refine.Names)
	}
	cfg.Refiner = *refiner
	if _, ok := propagate.ByName(*propg, *workers); !ok {
		log.Fatalf("unknown propagator %q (have %v)", *propg, propagate.Names)
	}
	cfg.Propagator = *propg
	if _, err := machine.ExchangeByName(*exch); err != nil {
		log.Fatalf("unknown exchange %q (have %v)", *exch, machine.ExchangeNames)
	}
	cfg.Exchange = *exch
	if *nodesz < 0 {
		log.Fatalf("invalid -nodesize %d: need 0 (flat machine) or a positive ranks-per-node", *nodesz)
	}
	if *nodesz > 1 {
		cfg.Topology = machine.NodeTopology(*nodesz)
	}
	plan, err := fault.Parse(*faults)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Faults = plan
	if *retries >= 0 {
		cfg.Retry = fault.Budget(*retries)
	}
	cfg.Checkpoint = *ckpt
	cfg.StageDeadline = *deadln

	// The observability hooks. Both stay nil (and cost nothing) unless
	// asked for; flushObs writes them out on every exit path, so degraded
	// runs still leave a trace behind — that is when it matters most.
	var tr *obs.Trace
	var reg *obs.Registry
	if *traceF != "" {
		tr = obs.NewTrace()
		cfg.Trace = tr
	}
	if *metricF != "" {
		reg = obs.NewRegistry()
		core.RegisterHelp(reg)
		cfg.Metrics = reg
	}
	flushObs := func() {
		if tr != nil {
			if err := writeObsFile(*traceF, func(w *os.File) error {
				if *traceFm == "jsonl" {
					return obs.WriteJSONL(w, tr)
				}
				return obs.WritePerfetto(w, tr)
			}); err != nil {
				log.Printf("trace: %v", err)
			}
		}
		if reg != nil {
			if err := writeObsFile(*metricF, func(w *os.File) error {
				return obs.WritePrometheus(w, reg)
			}); err != nil {
				log.Printf("metrics: %v", err)
			}
		}
	}
	// notify routes the run's stderr one-liners through the trace event
	// stream as well — same text, same destination, same exit codes.
	notify := func(level, msg string) {
		tr.Event(level, msg)
		fmt.Fprintln(os.Stderr, msg)
	}

	rp := meshgen.DefaultRotor()
	if *scale != 1.0 {
		s := math.Cbrt(*scale)
		rp.NR = maxInt(2, int(float64(rp.NR)*s))
		rp.NTheta = maxInt(2, int(float64(rp.NTheta)*s))
		rp.NZ = maxInt(2, int(float64(rp.NZ)*s))
	}
	m := meshgen.RotorDisk(rp)
	// Feature at the mid-radius, mid-sweep point of the annulus (the
	// blade-tip region of the acoustics experiment).
	r := (rp.R0 + rp.R1) / 2
	th := rp.Sweep / 2
	feature := geom.Vec3{X: r * math.Cos(th), Y: r * math.Sin(th)}
	sol := solver.New(m, solver.GaussianPulse(feature, 0.3))
	fw, err := core.New(m, sol, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %s\n", m.Stats())
	refName := cfg.Refiner
	if refName == "" {
		refName = "auto"
	}
	propName, _ := propagate.ByName(cfg.Propagator, cfg.Workers)
	fmt.Printf("config: P=%d F=%d threshold=%.2f mapper=%s partitioner=%s refiner=%s propagator=%s exchange=%s nodesize=%d workers=%d overlap=%v\n",
		cfg.P, cfg.F, cfg.ImbalanceThreshold, cfg.Mapper, cfg.Method, refName, propName.Name(),
		fw.D.Exchange, cfg.Topology.RanksPerNode, chunk.Workers(cfg.Workers), cfg.Overlap)
	if plan.Enabled() {
		r := cfg.Retry.Normalize()
		fmt.Printf("faults: %s attempts=%d window-retries=%d\n", plan, r.MsgAttempts, r.WindowRetries)
	}
	if fw.Cfg.Checkpoint {
		fmt.Printf("checkpoint: copy-on-write cycle snapshots on (deadline=%v)\n", fw.Cfg.StageDeadline)
	}

	var stratFn func(a *adapt.Adaptor)
	switch *strat {
	case "local1":
		stratFn = func(a *adapt.Adaptor) { a.MarkStrategyRefine(adapt.Local1, cfg.Seed) }
	case "local2":
		stratFn = func(a *adapt.Adaptor) { a.MarkStrategyRefine(adapt.Local2, cfg.Seed) }
	case "random":
		stratFn = func(a *adapt.Adaptor) { a.MarkStrategyRefine(adapt.Random, cfg.Seed) }
	case "error":
		stratFn = func(a *adapt.Adaptor) {
			errv := sol.EdgeError()
			hi := 0.0
			for _, e := range errv {
				if e > hi {
					hi = e
				}
			}
			a.MarkError(errv, 0.4*hi, -1)
		}
	default:
		log.Fatalf("unknown strategy %q", *strat)
	}

	var crashed []int
	for c := 1; c <= *cycles; c++ {
		rep, err := fw.Cycle(stratFn)
		if err != nil {
			log.Fatal(err)
		}
		b := rep.Balance
		crashed = append(crashed, b.CrashedRanks...)
		fmt.Printf("cycle %d: elems=%d refined=%d adaptT=%.3fs imb %.2f",
			c, m.NumActiveElems(), rep.Refine.TotalSubdivided(), rep.AdaptTime.Total, b.ImbalanceBefore)
		switch {
		case !b.Repartitioned:
			fmt.Printf(" (balanced, no repartition)")
		case b.Outcome == core.OutcomeRecovered:
			fmt.Printf(" -> remap lost ranks %v, RECOVERED onto %d survivors: moved %d elems, imb %.2f",
				b.CrashedRanks, fw.D.AliveCount(), b.Recovery.Moved, b.ImbalanceAfter)
		case b.Outcome == core.OutcomeRolledBack || b.Outcome == core.OutcomeDegraded:
			fmt.Printf(" -> repartitioned, remap ROLLED BACK, continuing on old partition (%s)", b.FaultDetail)
		case !b.Accepted:
			fmt.Printf(" -> repartitioned, remap REJECTED (gain %.3g ≤ cost %.3g)", b.Gain, b.Cost)
		default:
			fmt.Printf(" -> %.2f, moved %d elems in %d sets (gain %.3g > cost %.3g), remapT=%.3fs",
				b.ImbalanceAfter, b.MoveC, b.MoveN, b.Gain, b.Cost, b.Remap.Total)
			if b.Outcome == core.OutcomeRetriedCommitted {
				fmt.Printf(" [recovered: %d msg retries, %d window retries]",
					b.Remap.Retries, b.Remap.WindowRetries)
			}
		}
		fmt.Printf(" outcome=%s\n", rep.Outcome)
		if rep.Outcome == core.OutcomeDegraded {
			notify("error", fmt.Sprintf("plum: degraded at cycle %d: %d consecutive balance rollbacks under plan %q: %s",
				c, core.DegradedStreak, plan, b.FaultDetail))
			flushObs()
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("         target=%.4f propagate=%.4f execute=%.4f classify=%.4f rounds=%d msgs=%d words=%d\n",
				rep.AdaptTime.Target, rep.AdaptTime.Propagate, rep.AdaptTime.Execute,
				rep.AdaptTime.Classify, rep.AdaptTime.CommRounds, rep.AdaptTime.Msgs, rep.AdaptTime.Words)
			fmt.Printf("         adapt ops=%d crit=%d execT=%.3gs visits=%d marked=%d\n",
				b.AdaptOps, b.AdaptCritOps, b.AdaptExecTime,
				rep.AdaptTime.Visits, rep.AdaptTime.Marked)
			if b.Repartitioned {
				fmt.Printf("         repart ops=%d crit=%d (refine %d/%d) compT=%.3gs memT=%.3gs reassign ops=%d t=%.3gs\n",
					b.RepartitionOps, b.RepartitionCritOps, b.RefineOps, b.RefineCritOps,
					b.RepartitionCompTime, b.RepartitionMemTime,
					b.ReassignOps, b.ReassignTime)
				fmt.Printf("         remap ops=%d crit=%d execT=%.3gs", b.RemapOps, b.RemapCritOps, b.RemapExecTime)
				if b.Accepted {
					fmt.Printf(" pack=%.3gs comm=%.3gs rebuild=%.3gs setups=%d setupT=%.3gs",
						b.Remap.PackTime, b.Remap.CommTime, b.Remap.RebuildTime, b.RemapSetups, b.RemapSetupTime)
				}
				fmt.Println()
				if cfg.Overlap {
					fmt.Printf("         overlap hidden=%.3gs cost full=%.3gs exposed=%.3gs", b.OverlapTime, b.CostFull, b.Cost)
					if b.Accepted {
						fmt.Printf(" peak=%d/%d words", b.RemapPeakWords, b.Remap.Moved*par.RecordWords)
					}
					fmt.Println()
				}
			}
		}
	}
	if err := m.Check(); err != nil {
		notify("error", fmt.Sprintf("FINAL MESH INVALID: %v", err))
		flushObs()
		os.Exit(1)
	}
	if len(crashed) > 0 {
		// Rank deaths the run survived are a success, not a failure: the
		// note records the reduced capacity, and the exit stays 0.
		notify("warn", fmt.Sprintf("plum: recovered from crashes of ranks %v: %d of %d ranks remain",
			crashed, fw.D.AliveCount(), cfg.P))
	}
	fmt.Printf("final mesh valid: %s\n", m.Stats())
	flushObs()
}

// writeObsFile creates path and streams one export into it, reporting
// create, write, and close errors alike.
func writeObsFile(path string, write func(*os.File) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
