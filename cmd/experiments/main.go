// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Select a single experiment with -exp or run all.
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -exp fig8  # one figure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

import (
	"plum/internal/core"
	"plum/internal/experiments"
	"plum/internal/machine"
	"plum/internal/obs"
	"plum/internal/propagate"
	"plum/internal/refine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig8, fig9, fig10, fig11, fig12, extension, partitioners, remap, adapt, overlap, faults, recover, comm, all")
	k := flag.Int("k", 16, "partition count for -exp partitioners")
	faultSeed := flag.Int64("fault-seed", 7, "fault schedule seed for -exp faults")
	workers := flag.Int("workers", 0, "worker goroutines for parallel partitioning, refinement, and adaption phases (0 = GOMAXPROCS)")
	refiner := flag.String("refiner", "", "boundary-refinement backend for -exp partitioners: "+strings.Join(refine.Names, ", ")+" ('' = per-backend default)")
	propg := flag.String("propagator", "", "frontier-propagation backend for -exp adapt: "+strings.Join(propagate.Names, ", ")+" ('' = bulksync)")
	exchange := flag.String("exchange", "", "remap exchange schedule for -exp comm: "+strings.Join(machine.ExchangeNames, ", ")+" ('' = sweep all)")
	nodesize := flag.Int("nodesize", 0, "ranks per node for -exp comm (0 = sweep the default axis)")
	jsonOut := flag.Bool("json", false, "emit the selected experiments as one JSON object keyed by name instead of text tables")
	traceF := flag.String("trace", "", "write a combined deterministic trace of the cycle-driving experiments (faults, recover, overlap) to this file")
	traceFm := flag.String("trace-format", "perfetto", "trace export format: perfetto or jsonl")
	metricF := flag.String("metrics", "", "write a Prometheus text-format metrics dump of the cycle-driving experiments to this file")
	flag.Parse()
	if *traceFm != "perfetto" && *traceFm != "jsonl" {
		fmt.Fprintf(os.Stderr, "unknown -trace-format %q (have perfetto, jsonl)\n", *traceFm)
		os.Exit(2)
	}
	if *k < 1 {
		fmt.Fprintf(os.Stderr, "invalid -k %d: need at least 1 partition\n", *k)
		os.Exit(2)
	}
	if _, ok := refine.ByName(*refiner, *workers); !ok {
		fmt.Fprintf(os.Stderr, "unknown refiner %q (have %s)\n", *refiner, strings.Join(refine.Names, ", "))
		os.Exit(2)
	}
	if _, ok := propagate.ByName(*propg, *workers); !ok {
		fmt.Fprintf(os.Stderr, "unknown propagator %q (have %s)\n", *propg, strings.Join(propagate.Names, ", "))
		os.Exit(2)
	}
	if _, err := machine.ExchangeByName(*exchange); err != nil {
		fmt.Fprintf(os.Stderr, "unknown exchange %q (have %s)\n", *exchange, strings.Join(machine.ExchangeNames, ", "))
		os.Exit(2)
	}
	if *nodesize < 0 {
		fmt.Fprintf(os.Stderr, "invalid -nodesize %d: need 0 (sweep) or a positive ranks-per-node\n", *nodesize)
		os.Exit(2)
	}

	runners := []struct {
		name string
		run  func() fmt.Stringer
	}{
		{"table1", func() fmt.Stringer { return experiments.RunTable1() }},
		{"fig8", func() fmt.Stringer { return experiments.RunFig8() }},
		{"fig9", func() fmt.Stringer { return experiments.RunFig9() }},
		{"fig10", func() fmt.Stringer { return experiments.RunFig10() }},
		{"fig11", func() fmt.Stringer { return experiments.RunFig11() }},
		{"fig12", func() fmt.Stringer { return experiments.RunFig12() }},
		{"extension", func() fmt.Stringer { return experiments.RunExtensionRepeated(8, 6) }},
		{"partitioners", func() fmt.Stringer { return experiments.RunPartitionerTable(*k, *workers, *refiner) }},
		{"remap", func() fmt.Stringer { return experiments.RunRemapExecTable(*workers) }},
		{"adapt", func() fmt.Stringer { return experiments.RunAdaptTable(*workers, *propg) }},
		{"overlap", func() fmt.Stringer { return experiments.RunOverlapTable(*workers) }},
		{"faults", func() fmt.Stringer { return experiments.RunFaultTable(*faultSeed, *workers) }},
		{"recover", func() fmt.Stringer { return experiments.RunRecoverTable(*faultSeed, *workers) }},
		{"comm", func() fmt.Stringer { return experiments.RunCommTable(*exchange, *nodesize) }},
	}

	// The observability sinks: the cycle-driving runners (faults, recover,
	// overlap) attach them to every framework they build.
	var tr *obs.Trace
	var reg *obs.Registry
	if *traceF != "" {
		tr = obs.NewTrace()
	}
	if *metricF != "" {
		reg = obs.NewRegistry()
		core.RegisterHelp(reg)
	}
	experiments.SetObs(tr, reg)

	ran := false
	results := map[string]any{}
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		t0 := time.Now()
		out := r.run()
		if *jsonOut {
			// One object keyed by experiment name; the rows are the same
			// structs the text tables render.
			results[r.name] = out
			fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n", r.name, time.Since(t0).Round(time.Millisecond))
			continue
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", r.name, time.Since(t0).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
	if tr != nil {
		if err := writeObsFile(*traceF, func(w *os.File) error {
			if *traceFm == "jsonl" {
				return obs.WriteJSONL(w, tr)
			}
			return obs.WritePerfetto(w, tr)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		if err := writeObsFile(*metricF, func(w *os.File) error {
			return obs.WritePrometheus(w, reg)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeObsFile creates path and streams one export into it, reporting
// create, write, and close errors alike.
func writeObsFile(path string, write func(*os.File) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
