// Command benchjson measures the parallel SFC partitioning pipeline and
// writes the results as machine-readable JSON, so successive PRs can
// track the perf trajectory without parsing `go test -bench` text.
//
//	go run ./cmd/benchjson                  # writes BENCH_sfc.json
//	go run ./cmd/benchjson -out - -k 32     # JSON to stdout, k=32 cuts
//
// Every exhibit is run at workers=1 (the serial baseline) and, when the
// host has more than one CPU, workers=GOMAXPROCS; the derived speedup
// fields are the acceptance figures of the parallel-pipeline PR. The
// partition assignments are identical at every worker count, so the
// comparison is pure wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/experiments"
	"plum/internal/partition"
	"plum/internal/psort"
	"plum/internal/sfc"
)

// Bench is one measured exhibit.
type Bench struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	N       int     `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the BENCH_sfc.json schema.
type Report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	MeshElems  int     `json:"mesh_elements"`
	K          int     `json:"k"`
	Benches    []Bench `json:"benches"`
	// Speedups maps exhibit name → ns/op(workers=1) / ns/op(workers=P);
	// only present when the host has more than one CPU.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_sfc.json", "output path ('-' for stdout)")
	k := flag.Int("k", 16, "partition count for the cut benches")
	flag.Parse()

	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		MeshElems:  g.N,
		K:          *k,
	}
	workerCounts := []int{1}
	if rep.GoMaxProcs > 1 {
		workerCounts = append(workerCounts, rep.GoMaxProcs)
	}

	// Pre-built inputs shared by the micro exhibits.
	keys := sfc.Keys(sfc.Hilbert, g.Centroid)
	kvs := make([]psort.KV, len(keys))
	for i, key := range keys {
		kvs[i] = psort.KV{K: key, V: int32(i)}
	}
	incr := map[int]*partition.SFCPartitioner{}
	for _, w := range workerCounts {
		incr[w] = partition.NewSFCWorkers(g, sfc.Hilbert, w)
	}

	exhibits := []struct {
		name string
		run  func(w int, b *testing.B)
	}{
		{"SFCKeys/hilbert", func(w int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := sfc.KeysWorkers(sfc.Hilbert, g.Centroid, w); len(got) != g.N {
					b.Fatal("bad keys")
				}
			}
		}},
		{"SampleSort", func(w int, b *testing.B) {
			buf := make([]psort.KV, len(kvs))
			for i := 0; i < b.N; i++ {
				copy(buf, kvs)
				psort.Sort(buf, w)
			}
		}},
		{"NewSFC/hilbert", func(w int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := partition.NewSFCWorkers(g, sfc.Hilbert, w)
				if asg := s.Repartition(g, *k); len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		}},
		{"Repartition", func(w int, b *testing.B) {
			s := incr[w]
			for i := 0; i < b.N; i++ {
				if asg := s.Repartition(g, *k); len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		}},
	}

	nsPerOp := map[string]map[int]float64{}
	for _, ex := range exhibits {
		nsPerOp[ex.name] = map[int]float64{}
		for _, w := range workerCounts {
			w := w
			res := testing.Benchmark(func(b *testing.B) { ex.run(w, b) })
			ns := float64(res.NsPerOp())
			nsPerOp[ex.name][w] = ns
			rep.Benches = append(rep.Benches, Bench{
				Name: ex.name, Workers: w, N: res.N, NsPerOp: ns,
			})
			log.Printf("%-18s workers=%-2d %12.0f ns/op (%d iters)", ex.name, w, ns, res.N)
		}
	}
	if rep.GoMaxProcs > 1 {
		rep.Speedups = map[string]float64{}
		p := rep.GoMaxProcs
		for name, byW := range nsPerOp {
			if byW[p] > 0 {
				rep.Speedups[name] = byW[1] / byW[p]
			}
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
