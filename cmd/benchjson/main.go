// Command benchjson measures the parallel partitioning, refinement, and
// remap-execution pipelines and writes the results as machine-readable
// JSON, so successive PRs can track the perf trajectory without parsing
// `go test -bench` text.
//
//	go run ./cmd/benchjson                  # writes BENCH_{sfc,adapt,cycle,comm,refine,remap}.json
//	go run ./cmd/benchjson -out - -k 32     # SFC JSON to stdout, k=32 cuts
//
// Alongside the per-suite files, a merged BENCH_all.json keyed by suite
// name collects every report the invocation produced (an empty -allout
// skips it).
//
// Every exhibit is run at workers=1 (the serial baseline) and, when the
// host has more than one CPU, workers=GOMAXPROCS; the derived speedup
// fields are the acceptance figures of the parallel-pipeline PRs. The
// partition assignments and refined assignments are identical at every
// worker count, so the comparison is pure wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/experiments"
	"plum/internal/geom"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/meshgen"
	"plum/internal/par"
	"plum/internal/partition"
	"plum/internal/propagate"
	"plum/internal/psort"
	"plum/internal/refine"
	"plum/internal/sfc"
)

// Bench is one measured exhibit.
type Bench struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	N       int     `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the schema shared by BENCH_sfc.json and BENCH_refine.json.
type Report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	MeshElems  int     `json:"mesh_elements"`
	K          int     `json:"k"`
	Benches    []Bench `json:"benches"`
	// Speedups maps exhibit name → ns/op(workers=1) / ns/op(workers=P);
	// only present when the host has more than one CPU.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// Modeled holds machine-model figures that accompany the wall-time
	// benches (the overlapped cycle's exposed-cost anatomy); identical at
	// every worker count by the determinism contract.
	Modeled map[string]float64 `json:"modeled,omitempty"`
}

// exhibit is one named benchmark body, parameterized by worker count.
type exhibit struct {
	name string
	run  func(w int, b *testing.B)
}

// measure runs every exhibit at every worker count, filling the report's
// bench rows and speedup map.
func measure(rep *Report, exhibits []exhibit, workerCounts []int) {
	nsPerOp := map[string]map[int]float64{}
	for _, ex := range exhibits {
		nsPerOp[ex.name] = map[int]float64{}
		for _, w := range workerCounts {
			w := w
			res := testing.Benchmark(func(b *testing.B) { ex.run(w, b) })
			ns := float64(res.NsPerOp())
			nsPerOp[ex.name][w] = ns
			rep.Benches = append(rep.Benches, Bench{
				Name: ex.name, Workers: w, N: res.N, NsPerOp: ns,
			})
			log.Printf("%-18s workers=%-2d %12.0f ns/op (%d iters)", ex.name, w, ns, res.N)
		}
	}
	if rep.GoMaxProcs > 1 {
		rep.Speedups = map[string]float64{}
		p := rep.GoMaxProcs
		for name, byW := range nsPerOp {
			if byW[p] > 0 {
				rep.Speedups[name] = byW[1] / byW[p]
			}
		}
	}
}

// suites collects every written report, keyed by suite name, for the
// merged BENCH_all.json — one file downstream tooling can ingest
// without knowing which per-suite outputs a given invocation produced.
var suites = map[string]*Report{}

// write records the report under its suite key and emits it to path
// ('-' for stdout).
func write(rep *Report, suite, path string) {
	suites[suite] = rep
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		fmt.Print(string(enc))
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// writeAll emits the merged suite map (empty path = skip). Called on every
// exit path of main, so the merged file reflects exactly the suites
// this invocation ran.
func writeAll(path string) {
	if path == "" {
		return
	}
	enc, err := json.MarshalIndent(suites, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d suites)", path, len(suites))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_sfc.json", "SFC pipeline output path ('-' for stdout)")
	refineOut := flag.String("refineout", "BENCH_refine.json", "refinement output path ('-' for stdout, '' to skip)")
	remapOut := flag.String("remapout", "BENCH_remap.json", "remap execution output path ('-' for stdout, '' to skip)")
	adaptOut := flag.String("adaptout", "BENCH_adapt.json", "adaption engine output path ('-' for stdout, '' to skip)")
	cycleOut := flag.String("cycleout", "BENCH_cycle.json", "overlapped-cycle output path ('-' for stdout, '' to skip)")
	commOut := flag.String("commout", "BENCH_comm.json", "exchange-schedule output path ('-' for stdout, '' to skip)")
	allOut := flag.String("allout", "BENCH_all.json", "merged all-suite output path, keyed by suite ('' to skip)")
	k := flag.Int("k", 16, "partition count for the cut and refinement benches")
	flag.Parse()
	defer writeAll(*allOut)

	m := experiments.BaseMesh()
	g := dual.Build(m)
	a := adapt.New(m)
	a.MarkStrategyRefine(adapt.Local2, experiments.Seed)
	a.Refine()
	g.UpdateWeights(m)

	newReport := func() Report {
		return Report{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			MeshElems:  g.N,
			K:          *k,
		}
	}
	sfcRep := newReport()
	workerCounts := []int{1}
	if sfcRep.GoMaxProcs > 1 {
		workerCounts = append(workerCounts, sfcRep.GoMaxProcs)
	}

	// Pre-built inputs shared by the micro exhibits.
	keys := sfc.Keys(sfc.Hilbert, g.Centroid)
	kvs := make([]psort.KV, len(keys))
	for i, key := range keys {
		kvs[i] = psort.KV{K: key, V: int32(i)}
	}
	incr := map[int]*partition.SFCPartitioner{}
	for _, w := range workerCounts {
		incr[w] = partition.NewSFCWorkers(g, sfc.Hilbert, w)
	}

	measure(&sfcRep, []exhibit{
		{"SFCKeys/hilbert", func(w int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := sfc.KeysWorkers(sfc.Hilbert, g.Centroid, w); len(got) != g.N {
					b.Fatal("bad keys")
				}
			}
		}},
		{"SampleSort", func(w int, b *testing.B) {
			buf := make([]psort.KV, len(kvs))
			for i := 0; i < b.N; i++ {
				copy(buf, kvs)
				psort.Sort(buf, w)
			}
		}},
		{"NewSFC/hilbert", func(w int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := partition.NewSFCWorkers(g, sfc.Hilbert, w)
				if asg := s.Repartition(g, *k); len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		}},
		{"Repartition", func(w int, b *testing.B) {
			s := incr[w]
			for i := 0; i < b.N; i++ {
				if asg := s.Repartition(g, *k); len(asg) != g.N {
					b.Fatal("bad assignment")
				}
			}
		}},
	}, workerCounts)
	write(&sfcRep, "sfc", *out)

	if *adaptOut != "" {
		runAdapt(newReport, workerCounts, *adaptOut)
	}
	if *cycleOut != "" {
		runCycle(newReport, workerCounts, *cycleOut)
	}
	if *commOut != "" {
		runComm(newReport, workerCounts, *commOut)
	}
	if *refineOut == "" && *remapOut == "" {
		return
	}

	// Refinement exhibits: smooth a fresh copy of the raw Hilbert cut
	// each iteration (the exact call the framework makes after every
	// incremental repartition). The raw cut is computed once; refiners
	// mutate only the copy.
	raw := incr[1].Repartition(g, *k)
	buf := make([]int32, len(raw))
	if *refineOut == "" {
		runRemap(newReport, m, raw, *k, workerCounts, *remapOut)
		return
	}
	refineRep := newReport()
	measure(&refineRep, []exhibit{
		{"BandFM", func(w int, b *testing.B) {
			r := refine.NewBandFM(w)
			for i := 0; i < b.N; i++ {
				copy(buf, raw)
				if ops := r.Refine(g, buf, *k, 2); ops.Total <= 0 {
					b.Fatal("no refinement work reported")
				}
			}
		}},
		{"Diffusion", func(w int, b *testing.B) {
			r := refine.NewDiffusion(w)
			for i := 0; i < b.N; i++ {
				copy(buf, raw)
				if ops := r.Refine(g, buf, *k, 2); ops.Total <= 0 {
					b.Fatal("no refinement work reported")
				}
			}
		}},
		// The classic serial sweep ignores the worker knob — its row at
		// workers=P is the flat baseline the parallel backends beat.
		{"FMSerial", func(w int, b *testing.B) {
			var r refine.FM
			for i := 0; i < b.N; i++ {
				copy(buf, raw)
				if ops := r.Refine(g, buf, *k, 2); ops.Total <= 0 {
					b.Fatal("no refinement work reported")
				}
			}
		}},
	}, workerCounts)
	write(&refineRep, "refine", *refineOut)

	if *remapOut != "" {
		runRemap(newReport, m, raw, *k, workerCounts, *remapOut)
	}
}

// runCycle measures the full Fig. 1 cycle with the strict barrier chain
// versus Config.Overlap, on the Box(12,12,12) corner-refinement fixture
// (the cycle mutates the mesh, so the fixture is rebuilt outside the
// timer). The wall-time rows compare the two executors on this host; the
// Modeled map carries the exposed-cost anatomy of one overlapped cycle —
// the speedup figure the overlap PR claims — which is identical at every
// worker count.
func runCycle(newReport func() Report, workerCounts []int, path string) {
	mkFW := func(w int, overlap bool) *core.Framework {
		m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
		cfg := core.DefaultConfig(8)
		cfg.Method = partition.MethodHilbertSFC
		cfg.Workers = w
		cfg.Overlap = overlap
		f, err := core.New(m, nil, cfg)
		if err != nil {
			log.Fatal(err)
		}
		f.A.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.6}, adapt.MarkRefine)
		f.A.Refine()
		return f
	}
	mark := func(a *adapt.Adaptor) {
		a.MarkRegion(geom.Sphere{Center: geom.Vec3{}, Radius: 0.4}, adapt.MarkRefine)
	}
	run := func(overlap bool) func(w int, b *testing.B) {
		return func(w int, b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f := mkFW(w, overlap)
				b.StartTimer()
				r, err := f.Cycle(mark)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Balance.Accepted {
					b.Fatal("cycle did not accept the remap")
				}
			}
		}
	}
	rep := newReport()
	measure(&rep, []exhibit{
		{"CycleBulk", run(false)},
		{"CycleOverlap", run(true)},
	}, workerCounts)

	f := mkFW(1, true)
	r, err := f.Cycle(mark)
	if err != nil {
		log.Fatal(err)
	}
	bal := r.Balance
	critBulk := r.SolverTime + bal.CostFull
	critOverlap := r.SolverTime + bal.Cost
	rep.Modeled = map[string]float64{
		"solver_s":          r.SolverTime,
		"cost_full_s":       bal.CostFull,
		"cost_exposed_s":    bal.Cost,
		"hidden_s":          bal.OverlapTime,
		"crit_bulk_s":       critBulk,
		"crit_overlap_s":    critOverlap,
		"exposed_speedup":   critBulk / critOverlap,
		"remap_peak_words":  float64(bal.RemapPeakWords),
		"remap_total_words": float64(bal.Remap.Moved * par.RecordWords),
	}
	write(&rep, "cycle", path)
}

// runAdapt measures the parallel adaption engine: one full ParallelRefine
// pass (chunked target/propagate/execute/classify scans through the
// propagation engine) per iteration, on a fresh parallel-scale fixture —
// the pass mutates the mesh, so setup is rebuilt outside the timer. The
// marks, stats, and modeled timings are identical at every worker count;
// the speedup fields compare pure wall time, for each backend.
func runAdapt(newReport func() Report, workerCounts []int, path string) {
	mdl := machine.SP2()
	rep := newReport()
	var exhibits []exhibit
	for _, name := range propagate.Names {
		name := name
		exhibits = append(exhibits, exhibit{"ParallelRefine/" + name, func(w int, b *testing.B) {
			prop, _ := propagate.ByName(name, w)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := meshgen.Box(12, 12, 12, geom.Vec3{X: 1, Y: 1, Z: 1})
				g := dual.Build(m)
				d := par.NewDist(m, 8, partition.Partition(g, 8, partition.MethodInertial))
				d.Workers = w
				d.Prop = prop
				a := adapt.New(m)
				a.MarkRandom(0.25, adapt.MarkRefine, 97)
				b.StartTimer()
				if _, tm := d.ParallelRefine(a, mdl); tm.Total <= 0 {
					b.Fatal("no adaption timing")
				}
			}
		}})
	}
	measure(&rep, exhibits, workerCounts)
	write(&rep, "adapt", path)
}

// runComm measures the exchange-schedule layer: one full ExecuteRemap per
// schedule on a node-topology machine (4 ranks per node), against a
// half-rotated ownership on a k=16 box fixture. The owner array and
// payload bytes are identical across the three schedules — only the wire
// framing and the modeled charges differ — so the wall-time rows compare
// the schedules' host overhead. The Modeled map carries the high-P sweep
// of -exp comm (machine.ChargeFlows on the synthetic SFC + hypercube flow
// set): per (P, ranks-per-node, exchange) cell the setup count, the
// modeled setup seconds, and the exchange's elapsed seconds — the
// crossover figures this PR claims, identical at every worker count.
func runComm(newReport func() Report, workerCounts []int, path string) {
	const k = 16
	m := meshgen.Box(10, 10, 10, geom.Vec3{X: 1, Y: 1, Z: 1})
	g := dual.Build(m)
	raw := partition.Partition(g, k, partition.MethodHilbertSFC)
	d := par.NewDist(m, k, raw)
	orig := d.Owners()
	newOwner := append([]int32(nil), orig...)
	for v := range newOwner {
		if v%2 == 0 {
			newOwner[v] = (newOwner[v] + 1) % int32(k)
		}
	}
	mdl := machine.SP2()
	mdl.Topo = machine.NodeTopology(4)
	var exhibits []exhibit
	for _, name := range machine.ExchangeNames {
		x, err := machine.ExchangeByName(name)
		if err != nil {
			log.Fatal(err)
		}
		exhibits = append(exhibits, exhibit{"ExecuteRemap/" + name, func(w int, b *testing.B) {
			d.Workers = w
			d.Exchange = x
			for i := 0; i < b.N; i++ {
				d.SetOwners(orig)
				if _, err := d.ExecuteRemap(newOwner, mdl); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	rep := newReport()
	measure(&rep, exhibits, workerCounts)
	rep.Modeled = map[string]float64{}
	for _, r := range experiments.RunCommTable("", 0).Rows {
		key := fmt.Sprintf("P%d/rpn%d/%s", r.P, r.RPN, r.Exchange)
		rep.Modeled[key+"/setups"] = float64(r.Setups)
		rep.Modeled[key+"/setup_s"] = r.SetupTime
		rep.Modeled[key+"/comm_s"] = r.CommTime
	}
	write(&rep, "comm", path)
}

// runRemap measures the remap-execution subsystem: the full ExecuteRemap
// (CSR flow scatter + real payload exchange + canonical model accounting)
// against a half-rotated ownership, plus the chunked Init and RankLoads
// scans. The payload buffer and stats are identical at every worker
// count, so the speedup fields compare pure wall time.
func runRemap(newReport func() Report, m *mesh.Mesh, raw partition.Assignment, k int, workerCounts []int, path string) {
	mdl := machine.SP2()
	d := par.NewDist(m, k, raw)
	orig := d.Owners()
	newOwner := append([]int32(nil), orig...)
	for v := range newOwner {
		if v%2 == 0 {
			newOwner[v] = (newOwner[v] + 1) % int32(k)
		}
	}
	rep := newReport()
	measure(&rep, []exhibit{
		{"ExecuteRemap", func(w int, b *testing.B) {
			d.Workers = w
			for i := 0; i < b.N; i++ {
				d.SetOwners(orig)
				if _, err := d.ExecuteRemap(newOwner, mdl); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"InitScan", func(w int, b *testing.B) {
			d.Workers = w
			for i := 0; i < b.N; i++ {
				if st := d.Init(); st.LocalElems[0] == 0 {
					b.Fatal("empty rank 0")
				}
			}
		}},
		{"RankLoads", func(w int, b *testing.B) {
			d.Workers = w
			for i := 0; i < b.N; i++ {
				if loads := d.RankLoads(); len(loads) != k {
					b.Fatal("bad loads")
				}
			}
		}},
	}, workerCounts)
	write(&rep, "remap", path)
}
